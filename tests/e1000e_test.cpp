// kop::e1000e: the driver template in both builds — probe, transmit,
// ring management, copybreak path, counters, and the guarded build's
// guard accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/region_table.hpp"

namespace kop::e1000e {
namespace {

constexpr uint64_t kMmio = kernel::kVmallocBase;

class DriverTest : public ::testing::Test {
 protected:
  DriverTest() : device_(&kernel_.mem(), &sink_) {
    EXPECT_TRUE(device_.MapAt(kMmio).ok());
    auto policy = policy::PolicyModule::Insert(
        &kernel_, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok());
    policy_ = std::move(*policy);
  }

  /// Put a frame of `len` patterned bytes into simulated memory.
  uint64_t StageFrame(uint32_t len, uint8_t seed = 0x40) {
    auto addr = kernel_.heap().Kmalloc(2048, 64);
    EXPECT_TRUE(addr.ok());
    std::vector<uint8_t> bytes(len);
    for (uint32_t i = 0; i < len; ++i) bytes[i] = uint8_t(seed + i);
    EXPECT_TRUE(kernel_.mem().Write(*addr, bytes.data(), len).ok());
    return *addr;
  }

  kernel::Kernel kernel_;
  nic::CountingSink sink_;
  nic::E1000Device device_;
  std::unique_ptr<policy::PolicyModule> policy_;
};

TEST_F(DriverTest, ProbeBringsUpDevice) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  // Link is up and transmit enabled.
  auto status = kernel_.mem().Read32(kMmio + nic::REG_STATUS);
  ASSERT_TRUE(status.ok());
  EXPECT_NE(*status & nic::STATUS_LU, 0u);
  auto tctl = kernel_.mem().Read32(kMmio + nic::REG_TCTL);
  ASSERT_TRUE(tctl.ok());
  EXPECT_NE(*tctl & nic::TCTL_EN, 0u);
}

TEST_F(DriverTest, ProbeRejectsBadRingSize) {
  EXPECT_FALSE(BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 100).ok());
  EXPECT_FALSE(BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 4).ok());
}

TEST_F(DriverTest, TransmitDeliversExactBytes) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(256);
  ASSERT_TRUE(driver->XmitFrame(frame, 256).ok());
  ASSERT_EQ(sink_.packets(), 1u);
  const auto delivered = sink_.RecentFrames()[0];
  ASSERT_EQ(delivered.size(), 256u);
  for (uint32_t i = 0; i < 256; ++i) {
    ASSERT_EQ(delivered[i], uint8_t(0x40 + i)) << i;
  }
}

TEST_F(DriverTest, CopybreakPathPadsShortFrames) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(20);
  ASSERT_TRUE(driver->XmitFrame(frame, 20).ok());
  ASSERT_EQ(sink_.packets(), 1u);
  const auto delivered = sink_.RecentFrames()[0];
  ASSERT_EQ(delivered.size(), kEthZlen);  // padded to 60
  EXPECT_EQ(delivered[0], 0x40);
  EXPECT_EQ(delivered[19], uint8_t(0x40 + 19));
  for (uint32_t i = 20; i < kEthZlen; ++i) {
    ASSERT_EQ(delivered[i], 0u) << "pad byte " << i;
  }
}

TEST_F(DriverTest, CopybreakBoundary) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  // At exactly kTxCopybreak the direct DMA path is used (no padding).
  const uint64_t frame = StageFrame(kTxCopybreak);
  ASSERT_TRUE(driver->XmitFrame(frame, kTxCopybreak).ok());
  EXPECT_EQ(sink_.RecentFrames()[0].size(), kTxCopybreak);
  // One under goes through the bounce buffer but is already >= 60.
  const uint64_t frame2 = StageFrame(kTxCopybreak - 1);
  ASSERT_TRUE(driver->XmitFrame(frame2, kTxCopybreak - 1).ok());
  EXPECT_EQ(sink_.RecentFrames()[1].size(), kTxCopybreak - 1);
}

TEST_F(DriverTest, RejectsBadLengths) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  EXPECT_FALSE(driver->XmitFrame(StageFrame(64), 0).ok());
  EXPECT_FALSE(driver->XmitFrame(StageFrame(64), kEthFrameLen + 1).ok());
}

TEST_F(DriverTest, CountersTrackTraffic) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(128);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(driver->XmitFrame(frame, 128).ok());
  }
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_packets, 5u);
  EXPECT_EQ(counters->tx_bytes, 5u * 128);
  auto hw = driver->HwGoodPacketsTransmitted();
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(*hw, 5u);
}

TEST_F(DriverTest, CleanReclaimsCompletedDescriptors) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(64);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(driver->XmitFrame(frame, 64).ok());
  }
  auto cleaned = driver->CleanTxRing();
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(*cleaned, 10u);  // device completed everything synchronously
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_cleaned, 10u);
}

TEST_F(DriverTest, RingFullReportsBusyWhenDeviceStalled) {
  device_.set_auto_process(false);  // device never drains
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 8);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(64);
  // 7 fit (ring keeps one slot open), the 8th is BUSY.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(driver->XmitFrame(frame, 64).ok()) << i;
  }
  const Status status = driver->XmitFrame(frame, 64);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kBusy);
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_busy, 1u);
  // Drain the device; the next xmit succeeds.
  device_.ProcessTransmitRing();
  EXPECT_TRUE(driver->XmitFrame(frame, 64).ok());
}

TEST_F(DriverTest, RemoveFreesAllAllocations) {
  const uint64_t live_before = kernel_.heap().Stats().allocation_count;
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  EXPECT_EQ(kernel_.heap().Stats().allocation_count, live_before + 6);
  ASSERT_TRUE(driver->Remove().ok());
  EXPECT_EQ(kernel_.heap().Stats().allocation_count, live_before);
}

// ------------------------------------------------- legacy pin battery --
// Byte-exact pre-refactor pins: a fixed driver-level sweep with every
// DeviceStats field and driver counter hardcoded. The multi-queue
// device in legacy mode (driver never touches queue >0 or MSI-X
// registers) must reproduce these numbers bit-for-bit.

TEST_F(DriverTest, LegacyPinDriverSweepStatsByteExact) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 32);
  ASSERT_TRUE(driver.ok());
  const uint32_t kSizes[] = {64, 128, 256, 1514, 60, 100, 512, 1024, 200, 333};
  for (uint32_t size : kSizes) {
    ASSERT_TRUE(driver->XmitFrame(StageFrame(size), size).ok()) << size;
  }
  const nic::DeviceStats s = device_.stats();
  EXPECT_EQ(s.descriptors_processed, 10u);
  EXPECT_EQ(s.frames_transmitted, 10u);
  EXPECT_EQ(s.bytes_transmitted, 4191u);
  EXPECT_EQ(s.dma_descriptor_reads, 10u);
  EXPECT_EQ(s.dma_payload_reads, 10u);
  EXPECT_EQ(s.writebacks, 10u);  // the driver always sets RS
  EXPECT_EQ(s.tail_writes, 11u);  // probe's TDT=0 plus 10 kicks
  EXPECT_EQ(s.bad_descriptors, 0u);
  EXPECT_EQ(s.bad_doorbells, 0u);
  EXPECT_EQ(s.rx_dropped, 0u);
  EXPECT_EQ(sink_.packets(), 10u);
  EXPECT_EQ(sink_.bytes(), 4191u);
  auto hw = driver->HwGoodPacketsTransmitted();
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(*hw, 10u);
  auto cleaned = driver->CleanTxRing();
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(*cleaned, 10u);
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_packets, 10u);
  EXPECT_EQ(counters->tx_bytes, 4191u);
  EXPECT_EQ(counters->tx_busy, 0u);
  EXPECT_EQ(counters->tx_cleaned, 10u);
}

TEST_F(DriverTest, LegacyPinDoorbellWedgeThroughDriver) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  // A corrupted store lands an out-of-range tail on the doorbell: the
  // device refuses it (PR-4: it used to spin the TX sweep forever).
  ASSERT_TRUE(kernel_.mem().Write32(kMmio + nic::REG_TDT, 999).ok());
  EXPECT_EQ(device_.stats().bad_doorbells, 1u);
  EXPECT_EQ(sink_.packets(), 0u);
  // The driver's next honest kick writes a sane tail and recovers.
  ASSERT_TRUE(driver->XmitFrame(StageFrame(256), 256).ok());
  EXPECT_EQ(device_.stats().bad_doorbells, 1u);
  EXPECT_EQ(sink_.packets(), 1u);
  EXPECT_EQ(device_.stats().frames_transmitted, 1u);
}

// ------------------------------------------------------- guarded build --

TEST_F(DriverTest, GuardedBuildCountsGuardsPerPacket) {
  auto driver = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(128);
  policy_->engine().ResetStats();
  const int kPackets = 100;
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(driver->XmitFrame(frame, 128).ok());
  }
  const double guards_per_packet =
      static_cast<double>(policy_->engine().stats().guard_calls) / kPackets;
  // Hot path only (the ring never wraps in 100 packets): exactly 17
  // guarded accesses per xmit. Steady state adds ~2.3 amortized from the
  // periodic ring reclaim (see machine.cpp's calibration notes).
  EXPECT_DOUBLE_EQ(guards_per_packet, 17.0);
}

TEST_F(DriverTest, GuardedCopybreakMultipliesGuards) {
  auto driver = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(64);
  policy_->engine().ResetStats();
  ASSERT_TRUE(driver->XmitFrame(frame, 64).ok());
  // 64-byte frames take the bounce path: 64 loads + 64 stores on top of
  // the ~19 hot-path guards.
  EXPECT_GT(policy_->engine().stats().guard_calls, 64u + 64u);
}

TEST_F(DriverTest, BothBuildsProduceIdenticalWireBytes) {
  auto baseline = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(baseline.ok());
  const uint64_t frame = StageFrame(200, 0x77);
  ASSERT_TRUE(baseline->XmitFrame(frame, 200).ok());
  const auto base_wire = sink_.RecentFrames().back();
  ASSERT_TRUE(baseline->Remove().ok());

  auto carat = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio);
  ASSERT_TRUE(carat.ok());
  const uint64_t frame2 = StageFrame(200, 0x77);
  ASSERT_TRUE(carat->XmitFrame(frame2, 200).ok());
  EXPECT_EQ(sink_.RecentFrames().back(), base_wire);
}

TEST_F(DriverTest, GuardedBuildChargesMoreCycles) {
  auto baseline = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(baseline.ok());
  const uint64_t frame = StageFrame(128);
  const double t0 = kernel_.clock().NowCycles();
  ASSERT_TRUE(baseline->XmitFrame(frame, 128).ok());
  const double baseline_cycles = kernel_.clock().NowCycles() - t0;
  ASSERT_TRUE(baseline->Remove().ok());

  auto carat = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio);
  ASSERT_TRUE(carat.ok());
  const double t1 = kernel_.clock().NowCycles();
  ASSERT_TRUE(carat->XmitFrame(frame, 128).ok());
  const double carat_cycles = kernel_.clock().NowCycles() - t1;

  EXPECT_GT(carat_cycles, baseline_cycles);
  // The delta is exactly guards * GuardCycles(n) with n = 0 regions here.
  const double expected = carat_cycles - baseline_cycles;
  EXPECT_NEAR(expected,
              19.0 * kernel_.machine().GuardCycles(0), 3.0);
}

TEST_F(DriverTest, MemOpsStatsDistinguishMmio) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  driver->ops().ResetStats();
  const uint64_t frame = StageFrame(256);
  ASSERT_TRUE(driver->XmitFrame(frame, 256).ok());
  const MemOpsStats& stats = driver->ops().stats();
  EXPECT_EQ(stats.mmio_writes, 1u);  // the TDT kick
  EXPECT_EQ(stats.mmio_reads, 0u);   // hot path never reads MMIO
  EXPECT_GT(stats.loads, 5u);
  EXPECT_GT(stats.stores, 5u);
}

TEST_F(DriverTest, ProbeReadsMacFromNvm) {
  const uint8_t mac[6] = {0x02, 0x11, 0x22, 0x33, 0x44, 0x55};
  device_.SetNvmMac(mac);
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  uint8_t programmed[6] = {};
  device_.ReceiveAddress(programmed);
  EXPECT_EQ(0, std::memcmp(programmed, mac, 6));
}

TEST_F(DriverTest, ReceivePathDeliversInjectedFrames) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  std::vector<uint8_t> nothing;
  auto empty = driver->ReceiveFrame(&nothing);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(*empty);

  std::vector<uint8_t> wire(90);
  for (size_t i = 0; i < wire.size(); ++i) wire[i] = uint8_t(0x80 + i);
  ASSERT_TRUE(device_.ReceiveFrame(wire));

  std::vector<uint8_t> received;
  auto got = driver->ReceiveFrame(&received);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_EQ(received, wire);

  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->rx_packets, 1u);
  EXPECT_EQ(counters->rx_bytes, 90u);
}

TEST_F(DriverTest, ReceiveRingSustainsManyFrames) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  // More frames than the ring holds, drained as we go (wraps twice).
  for (int i = 0; i < 40; ++i) {
    std::vector<uint8_t> wire(64, uint8_t(i));
    ASSERT_TRUE(device_.ReceiveFrame(wire)) << i;
    std::vector<uint8_t> received;
    auto got = driver->ReceiveFrame(&received);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got) << i;
    EXPECT_EQ(received, wire) << i;
  }
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->rx_packets, 40u);
}

TEST_F(DriverTest, GuardedReceiveCountsGuards) {
  auto driver = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  ASSERT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(128, 0x42)));
  policy_->engine().ResetStats();
  std::vector<uint8_t> received;
  auto got = driver->ReceiveFrame(&received);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  // RX poll: 9 loads (ring, count, ntc, status, len, buffer, mmio base,
  // 2 counters) + 4 stores (status clear, ntc, 2 counters) + the RDT
  // MMIO kick = 14 guarded accesses.
  EXPECT_EQ(policy_->engine().stats().guard_calls, 14u);
}


// ------------------------------------------------------- multi-queue --

TEST_F(DriverTest, ProbeMqAllocatesPerQueueState) {
  const uint64_t live_before = kernel_.heap().Stats().allocation_count;
  auto driver =
      BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 16, 4);
  ASSERT_TRUE(driver.ok());
  EXPECT_EQ(driver->num_queues(), 4u);
  // Legacy probe's 6 blocks + 6 per extra queue.
  EXPECT_EQ(kernel_.heap().Stats().allocation_count, live_before + 6 + 3 * 6);
  // Each extra queue's register block was programmed at the 0x100 stride.
  for (uint32_t q = 1; q < 4; ++q) {
    auto tdlen = kernel_.mem().Read32(kMmio + nic::QReg(nic::REG_TDLEN, q));
    ASSERT_TRUE(tdlen.ok());
    EXPECT_EQ(*tdlen, 16u * nic::kTxDescBytes);
    auto rdt = kernel_.mem().Read32(kMmio + nic::QReg(nic::REG_RDT, q));
    ASSERT_TRUE(rdt.ok());
    EXPECT_EQ(*rdt, 15u);
  }
  // RSS on, 4 queues.
  auto mrqc = kernel_.mem().Read32(kMmio + nic::REG_MRQC);
  ASSERT_TRUE(mrqc.ok());
  EXPECT_EQ(*mrqc, nic::MRQC_ENABLE | (4u << nic::MRQC_QUEUES_SHIFT));
  ASSERT_TRUE(driver->Remove().ok());
  EXPECT_EQ(kernel_.heap().Stats().allocation_count, live_before);
}

TEST_F(DriverTest, ProbeMqRejectsBadQueueCounts) {
  EXPECT_FALSE(BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 16, 0).ok());
  EXPECT_FALSE(BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 16, 9).ok());
}

TEST_F(DriverTest, XmitFrameOnKeepsQueuesIndependent) {
  auto driver =
      BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 16, 4);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(300);
  ASSERT_TRUE(driver->XmitFrameOn(0, frame, 300).ok());
  ASSERT_TRUE(driver->XmitFrameOn(2, frame, 300).ok());
  ASSERT_TRUE(driver->XmitFrameOn(2, frame, 300).ok());
  ASSERT_TRUE(driver->XmitFrameOn(3, frame, 300).ok());
  EXPECT_EQ(sink_.packets(), 4u);
  auto c0 = driver->CountersOn(0);
  auto c2 = driver->CountersOn(2);
  auto c3 = driver->CountersOn(3);
  ASSERT_TRUE(c0.ok() && c2.ok() && c3.ok());
  EXPECT_EQ(c0->tx_packets, 1u);
  EXPECT_EQ(c2->tx_packets, 2u);
  EXPECT_EQ(c3->tx_packets, 1u);
  EXPECT_EQ(c2->tx_bytes, 600u);
  // Device folds the per-queue hardware counters into the legacy shape.
  auto hw = driver->HwGoodPacketsTransmitted();
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(*hw, 4u);
  EXPECT_FALSE(driver->XmitFrameOn(4, frame, 300).ok());
}

TEST_F(DriverTest, QueueZeroEntryPointsMatchLegacy) {
  // XmitFrameOn(0)/CleanTxRingOn(0)/ReceiveFrameFrom(0) are the legacy
  // entry points exactly — same counters, same wire bytes.
  auto driver =
      BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 16, 2);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(200);
  ASSERT_TRUE(driver->XmitFrameOn(0, frame, 200).ok());
  auto legacy = driver->Counters();
  auto q0 = driver->CountersOn(0);
  ASSERT_TRUE(legacy.ok() && q0.ok());
  EXPECT_EQ(legacy->tx_packets, q0->tx_packets);
  EXPECT_EQ(legacy->tx_bytes, q0->tx_bytes);
  device_.ReceiveFrameOn(0, std::vector<uint8_t>(128, 0x5a));
  std::vector<uint8_t> got;
  auto r = driver->ReceiveFrameFrom(0, &got);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_EQ(got.size(), 128u);
}

TEST_F(DriverTest, XmitBatchAmortizesGuardsPerPacket) {
  auto driver = CaratDriver::ProbeMq(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio, 64, 2);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(300);
  std::vector<TxFrame> batch(16, TxFrame{frame, 300});
  policy_->engine().ResetStats();
  uint32_t queued = 0;
  ASSERT_TRUE(driver->XmitBatch(1, batch.data(), 16, &queued).ok());
  EXPECT_EQ(queued, 16u);
  // 6 prologue loads + 5 stores per frame + 4 epilogue accesses + the
  // single TDT doorbell: (6 + 16*5 + 4 + 1) / 16 ≈ 5.7 guards/packet,
  // versus the pinned 17 on the one-doorbell-per-frame path.
  const double per_packet =
      static_cast<double>(policy_->engine().stats().guard_calls) / 16.0;
  EXPECT_LT(per_packet, 6.0);
  EXPECT_GT(per_packet, 5.0);
  auto counters = driver->CountersOn(1);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_packets, 16u);
  EXPECT_EQ(counters->tx_bytes, 16u * 300u);
  EXPECT_EQ(sink_.packets(), 16u);
}

TEST_F(DriverTest, XmitBatchRejectsSubMinimumFrames) {
  auto driver =
      BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 16, 2);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(300);
  TxFrame bad[] = {{frame, 300}, {frame, 32}};
  uint32_t queued = 7;
  EXPECT_FALSE(driver->XmitBatch(1, bad, 2, &queued).ok());
  EXPECT_EQ(queued, 0u);  // rejected up front, nothing staged
  auto counters = driver->CountersOn(1);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_packets, 0u);
}

TEST_F(DriverTest, XmitBatchStopsEarlyWhenRingFills) {
  device_.set_auto_process(false);
  auto driver =
      BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 8, 2);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(300);
  std::vector<TxFrame> batch(12, TxFrame{frame, 300});
  uint32_t queued = 0;
  ASSERT_TRUE(driver->XmitBatch(1, batch.data(), 12, &queued).ok());
  // 8-entry ring, device stalled: 7 slots usable, no reclaim possible.
  EXPECT_EQ(queued, 7u);
  device_.set_auto_process(true);
  device_.ProcessTransmitRing(1);
  EXPECT_EQ(sink_.packets(), 7u);
  // With the device running again the rest of the batch fits.
  ASSERT_TRUE(driver->XmitBatch(1, batch.data(), 5, &queued).ok());
  EXPECT_EQ(queued, 5u);
  EXPECT_EQ(sink_.packets(), 12u);
}

TEST_F(DriverTest, NapiPollDrainsBudgetAndManagesVectors) {
  auto driver =
      BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 32, 2);
  ASSERT_TRUE(driver.ok());
  // 10 frames for queue 1's RX ring; its vector (1+8=9) latches.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        device_.ReceiveFrameOn(1, std::vector<uint8_t>(256, uint8_t(i))));
  }
  EXPECT_NE(device_.PendingMsix() & (1u << 9), 0u);

  // Budget 4: poll stays at budget, so the vectors stay masked (the
  // handler would re-poll) and EICR keeps the latched cause.
  std::vector<std::vector<uint8_t>> frames;
  auto work = driver->NapiPoll(1, 4, &frames);
  ASSERT_TRUE(work.ok());
  EXPECT_EQ(*work, 4u);
  EXPECT_EQ(frames.size(), 4u);
  auto eims = kernel_.mem().Read32(kMmio + nic::REG_EIMS);
  ASSERT_TRUE(eims.ok());
  EXPECT_EQ(*eims & (1u << 9), 0u);

  // Budget 16 drains the remaining 6: under budget, napi_complete_done
  // re-enables the vectors and acks the latched cause.
  work = driver->NapiPoll(1, 16, &frames);
  ASSERT_TRUE(work.ok());
  EXPECT_EQ(*work, 6u);
  EXPECT_EQ(frames.size(), 10u);
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].size(), 256u);
    EXPECT_EQ(frames[i][0], uint8_t(i));
  }
  eims = kernel_.mem().Read32(kMmio + nic::REG_EIMS);
  ASSERT_TRUE(eims.ok());
  EXPECT_NE(*eims & (1u << 9), 0u);
  EXPECT_EQ(device_.PendingMsix() & (1u << 9), 0u);
  auto counters = driver->CountersOn(1);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->rx_packets, 10u);
  EXPECT_EQ(counters->rx_bytes, 2560u);
}

TEST_F(DriverTest, NapiPollReclaimsTxToo) {
  device_.set_auto_process(false);
  auto driver =
      BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 16, 2);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(300);
  std::vector<TxFrame> batch(6, TxFrame{frame, 300});
  uint32_t queued = 0;
  ASSERT_TRUE(driver->XmitBatch(1, batch.data(), 6, &queued).ok());
  ASSERT_EQ(queued, 6u);
  device_.set_auto_process(true);
  device_.ProcessTransmitRing(1);
  auto work = driver->NapiPoll(1, 64, nullptr);
  ASSERT_TRUE(work.ok());
  EXPECT_EQ(*work, 6u);  // all TX reclaim, no RX
  auto counters = driver->CountersOn(1);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_cleaned, 6u);
}

TEST_F(DriverTest, BothBuildsMqProduceIdenticalWireBytes) {
  auto baseline =
      BaselineDriver::ProbeMq(RawMemOps(&kernel_), kMmio, 16, 4);
  ASSERT_TRUE(baseline.ok());
  const uint64_t frame = StageFrame(500, 0x11);
  std::vector<TxFrame> batch(3, TxFrame{frame, 500});
  uint32_t queued = 0;
  ASSERT_TRUE(baseline->XmitBatch(2, batch.data(), 3, &queued).ok());
  auto raw_frames = sink_.RecentFrames();

  sink_.Reset();
  device_.ResetStats();
  auto guarded = CaratDriver::ProbeMq(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio, 16, 4);
  ASSERT_TRUE(guarded.ok());
  const uint64_t gframe = StageFrame(500, 0x11);
  std::vector<TxFrame> gbatch(3, TxFrame{gframe, 500});
  ASSERT_TRUE(guarded->XmitBatch(2, gbatch.data(), 3, &queued).ok());
  EXPECT_EQ(sink_.RecentFrames(), raw_frames);
}

TEST_F(DriverTest, GuardedProbeDeniedByPolicyPanics) {
  policy_->engine().SetMode(policy::PolicyMode::kDefaultDeny);
  EXPECT_THROW((void)CaratDriver::Probe(
                   GuardedMemOps(&kernel_, &policy_->engine()), kMmio),
               kernel::KernelPanic);
}

}  // namespace
}  // namespace kop::e1000e
