// kop::e1000e: the driver template in both builds — probe, transmit,
// ring management, copybreak path, counters, and the guarded build's
// guard accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/region_table.hpp"

namespace kop::e1000e {
namespace {

constexpr uint64_t kMmio = kernel::kVmallocBase;

class DriverTest : public ::testing::Test {
 protected:
  DriverTest() : device_(&kernel_.mem(), &sink_) {
    EXPECT_TRUE(device_.MapAt(kMmio).ok());
    auto policy = policy::PolicyModule::Insert(
        &kernel_, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok());
    policy_ = std::move(*policy);
  }

  /// Put a frame of `len` patterned bytes into simulated memory.
  uint64_t StageFrame(uint32_t len, uint8_t seed = 0x40) {
    auto addr = kernel_.heap().Kmalloc(2048, 64);
    EXPECT_TRUE(addr.ok());
    std::vector<uint8_t> bytes(len);
    for (uint32_t i = 0; i < len; ++i) bytes[i] = uint8_t(seed + i);
    EXPECT_TRUE(kernel_.mem().Write(*addr, bytes.data(), len).ok());
    return *addr;
  }

  kernel::Kernel kernel_;
  nic::CountingSink sink_;
  nic::E1000Device device_;
  std::unique_ptr<policy::PolicyModule> policy_;
};

TEST_F(DriverTest, ProbeBringsUpDevice) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  // Link is up and transmit enabled.
  auto status = kernel_.mem().Read32(kMmio + nic::REG_STATUS);
  ASSERT_TRUE(status.ok());
  EXPECT_NE(*status & nic::STATUS_LU, 0u);
  auto tctl = kernel_.mem().Read32(kMmio + nic::REG_TCTL);
  ASSERT_TRUE(tctl.ok());
  EXPECT_NE(*tctl & nic::TCTL_EN, 0u);
}

TEST_F(DriverTest, ProbeRejectsBadRingSize) {
  EXPECT_FALSE(BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 100).ok());
  EXPECT_FALSE(BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 4).ok());
}

TEST_F(DriverTest, TransmitDeliversExactBytes) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(256);
  ASSERT_TRUE(driver->XmitFrame(frame, 256).ok());
  ASSERT_EQ(sink_.packets(), 1u);
  const auto delivered = sink_.RecentFrames()[0];
  ASSERT_EQ(delivered.size(), 256u);
  for (uint32_t i = 0; i < 256; ++i) {
    ASSERT_EQ(delivered[i], uint8_t(0x40 + i)) << i;
  }
}

TEST_F(DriverTest, CopybreakPathPadsShortFrames) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(20);
  ASSERT_TRUE(driver->XmitFrame(frame, 20).ok());
  ASSERT_EQ(sink_.packets(), 1u);
  const auto delivered = sink_.RecentFrames()[0];
  ASSERT_EQ(delivered.size(), kEthZlen);  // padded to 60
  EXPECT_EQ(delivered[0], 0x40);
  EXPECT_EQ(delivered[19], uint8_t(0x40 + 19));
  for (uint32_t i = 20; i < kEthZlen; ++i) {
    ASSERT_EQ(delivered[i], 0u) << "pad byte " << i;
  }
}

TEST_F(DriverTest, CopybreakBoundary) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  // At exactly kTxCopybreak the direct DMA path is used (no padding).
  const uint64_t frame = StageFrame(kTxCopybreak);
  ASSERT_TRUE(driver->XmitFrame(frame, kTxCopybreak).ok());
  EXPECT_EQ(sink_.RecentFrames()[0].size(), kTxCopybreak);
  // One under goes through the bounce buffer but is already >= 60.
  const uint64_t frame2 = StageFrame(kTxCopybreak - 1);
  ASSERT_TRUE(driver->XmitFrame(frame2, kTxCopybreak - 1).ok());
  EXPECT_EQ(sink_.RecentFrames()[1].size(), kTxCopybreak - 1);
}

TEST_F(DriverTest, RejectsBadLengths) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  EXPECT_FALSE(driver->XmitFrame(StageFrame(64), 0).ok());
  EXPECT_FALSE(driver->XmitFrame(StageFrame(64), kEthFrameLen + 1).ok());
}

TEST_F(DriverTest, CountersTrackTraffic) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(128);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(driver->XmitFrame(frame, 128).ok());
  }
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_packets, 5u);
  EXPECT_EQ(counters->tx_bytes, 5u * 128);
  auto hw = driver->HwGoodPacketsTransmitted();
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(*hw, 5u);
}

TEST_F(DriverTest, CleanReclaimsCompletedDescriptors) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(64);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(driver->XmitFrame(frame, 64).ok());
  }
  auto cleaned = driver->CleanTxRing();
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(*cleaned, 10u);  // device completed everything synchronously
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_cleaned, 10u);
}

TEST_F(DriverTest, RingFullReportsBusyWhenDeviceStalled) {
  device_.set_auto_process(false);  // device never drains
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 8);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(64);
  // 7 fit (ring keeps one slot open), the 8th is BUSY.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(driver->XmitFrame(frame, 64).ok()) << i;
  }
  const Status status = driver->XmitFrame(frame, 64);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kBusy);
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tx_busy, 1u);
  // Drain the device; the next xmit succeeds.
  device_.ProcessTransmitRing();
  EXPECT_TRUE(driver->XmitFrame(frame, 64).ok());
}

TEST_F(DriverTest, RemoveFreesAllAllocations) {
  const uint64_t live_before = kernel_.heap().Stats().allocation_count;
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  EXPECT_EQ(kernel_.heap().Stats().allocation_count, live_before + 6);
  ASSERT_TRUE(driver->Remove().ok());
  EXPECT_EQ(kernel_.heap().Stats().allocation_count, live_before);
}

// ------------------------------------------------------- guarded build --

TEST_F(DriverTest, GuardedBuildCountsGuardsPerPacket) {
  auto driver = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(128);
  policy_->engine().ResetStats();
  const int kPackets = 100;
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(driver->XmitFrame(frame, 128).ok());
  }
  const double guards_per_packet =
      static_cast<double>(policy_->engine().stats().guard_calls) / kPackets;
  // Hot path only (the ring never wraps in 100 packets): exactly 17
  // guarded accesses per xmit. Steady state adds ~2.3 amortized from the
  // periodic ring reclaim (see machine.cpp's calibration notes).
  EXPECT_DOUBLE_EQ(guards_per_packet, 17.0);
}

TEST_F(DriverTest, GuardedCopybreakMultipliesGuards) {
  auto driver = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio);
  ASSERT_TRUE(driver.ok());
  const uint64_t frame = StageFrame(64);
  policy_->engine().ResetStats();
  ASSERT_TRUE(driver->XmitFrame(frame, 64).ok());
  // 64-byte frames take the bounce path: 64 loads + 64 stores on top of
  // the ~19 hot-path guards.
  EXPECT_GT(policy_->engine().stats().guard_calls, 64u + 64u);
}

TEST_F(DriverTest, BothBuildsProduceIdenticalWireBytes) {
  auto baseline = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(baseline.ok());
  const uint64_t frame = StageFrame(200, 0x77);
  ASSERT_TRUE(baseline->XmitFrame(frame, 200).ok());
  const auto base_wire = sink_.RecentFrames().back();
  ASSERT_TRUE(baseline->Remove().ok());

  auto carat = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio);
  ASSERT_TRUE(carat.ok());
  const uint64_t frame2 = StageFrame(200, 0x77);
  ASSERT_TRUE(carat->XmitFrame(frame2, 200).ok());
  EXPECT_EQ(sink_.RecentFrames().back(), base_wire);
}

TEST_F(DriverTest, GuardedBuildChargesMoreCycles) {
  auto baseline = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(baseline.ok());
  const uint64_t frame = StageFrame(128);
  const double t0 = kernel_.clock().NowCycles();
  ASSERT_TRUE(baseline->XmitFrame(frame, 128).ok());
  const double baseline_cycles = kernel_.clock().NowCycles() - t0;
  ASSERT_TRUE(baseline->Remove().ok());

  auto carat = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio);
  ASSERT_TRUE(carat.ok());
  const double t1 = kernel_.clock().NowCycles();
  ASSERT_TRUE(carat->XmitFrame(frame, 128).ok());
  const double carat_cycles = kernel_.clock().NowCycles() - t1;

  EXPECT_GT(carat_cycles, baseline_cycles);
  // The delta is exactly guards * GuardCycles(n) with n = 0 regions here.
  const double expected = carat_cycles - baseline_cycles;
  EXPECT_NEAR(expected,
              19.0 * kernel_.machine().GuardCycles(0), 3.0);
}

TEST_F(DriverTest, MemOpsStatsDistinguishMmio) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  driver->ops().ResetStats();
  const uint64_t frame = StageFrame(256);
  ASSERT_TRUE(driver->XmitFrame(frame, 256).ok());
  const MemOpsStats& stats = driver->ops().stats();
  EXPECT_EQ(stats.mmio_writes, 1u);  // the TDT kick
  EXPECT_EQ(stats.mmio_reads, 0u);   // hot path never reads MMIO
  EXPECT_GT(stats.loads, 5u);
  EXPECT_GT(stats.stores, 5u);
}

TEST_F(DriverTest, ProbeReadsMacFromNvm) {
  const uint8_t mac[6] = {0x02, 0x11, 0x22, 0x33, 0x44, 0x55};
  device_.SetNvmMac(mac);
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  uint8_t programmed[6] = {};
  device_.ReceiveAddress(programmed);
  EXPECT_EQ(0, std::memcmp(programmed, mac, 6));
}

TEST_F(DriverTest, ReceivePathDeliversInjectedFrames) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  std::vector<uint8_t> nothing;
  auto empty = driver->ReceiveFrame(&nothing);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(*empty);

  std::vector<uint8_t> wire(90);
  for (size_t i = 0; i < wire.size(); ++i) wire[i] = uint8_t(0x80 + i);
  ASSERT_TRUE(device_.ReceiveFrame(wire));

  std::vector<uint8_t> received;
  auto got = driver->ReceiveFrame(&received);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_EQ(received, wire);

  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->rx_packets, 1u);
  EXPECT_EQ(counters->rx_bytes, 90u);
}

TEST_F(DriverTest, ReceiveRingSustainsManyFrames) {
  auto driver = BaselineDriver::Probe(RawMemOps(&kernel_), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  // More frames than the ring holds, drained as we go (wraps twice).
  for (int i = 0; i < 40; ++i) {
    std::vector<uint8_t> wire(64, uint8_t(i));
    ASSERT_TRUE(device_.ReceiveFrame(wire)) << i;
    std::vector<uint8_t> received;
    auto got = driver->ReceiveFrame(&received);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got) << i;
    EXPECT_EQ(received, wire) << i;
  }
  auto counters = driver->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->rx_packets, 40u);
}

TEST_F(DriverTest, GuardedReceiveCountsGuards) {
  auto driver = CaratDriver::Probe(
      GuardedMemOps(&kernel_, &policy_->engine()), kMmio, 16);
  ASSERT_TRUE(driver.ok());
  ASSERT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(128, 0x42)));
  policy_->engine().ResetStats();
  std::vector<uint8_t> received;
  auto got = driver->ReceiveFrame(&received);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  // RX poll: 9 loads (ring, count, ntc, status, len, buffer, mmio base,
  // 2 counters) + 4 stores (status clear, ntc, 2 counters) + the RDT
  // MMIO kick = 14 guarded accesses.
  EXPECT_EQ(policy_->engine().stats().guard_calls, 14u);
}

TEST_F(DriverTest, GuardedProbeDeniedByPolicyPanics) {
  policy_->engine().SetMode(policy::PolicyMode::kDefaultDeny);
  EXPECT_THROW((void)CaratDriver::Probe(
                   GuardedMemOps(&kernel_, &policy_->engine()), kMmio),
               kernel::KernelPanic);
}

}  // namespace
}  // namespace kop::e1000e
