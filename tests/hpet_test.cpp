// kop::hpet: the timer device's register/comparator semantics and the
// heartbeat module in both builds.
#include <gtest/gtest.h>

#include "kop/hpet/heartbeat.hpp"
#include "kop/hpet/timer_device.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/policy/policy_module.hpp"

namespace kop::hpet {
namespace {

constexpr uint64_t kMmio = kernel::kVmallocBase + 0x100000;

// ---------------------------------------------------------- device --

class TimerDeviceTest : public ::testing::Test {
 protected:
  TimerDeviceTest() {
    EXPECT_TRUE(mem_.MapRam("ram", 0x1000, 0x1000).ok());
    EXPECT_TRUE(timer_.MapAt(&mem_, kMmio).ok());
  }

  uint64_t Read(uint64_t reg, uint32_t size = 4) {
    uint64_t value = 0;
    EXPECT_TRUE(mem_.Read(kMmio + reg, &value, size).ok());
    return value;
  }
  void Write(uint64_t reg, uint64_t value, uint32_t size = 4) {
    EXPECT_TRUE(mem_.Write(kMmio + reg, &value, size).ok());
  }

  kernel::AddressSpace mem_;
  TimerDevice timer_;
};

TEST_F(TimerDeviceTest, CapabilityAndDisabledCounter) {
  EXPECT_EQ(Read(REG_CAP), kCounterPeriodFs);
  timer_.Tick(100);  // not enabled: nothing moves
  EXPECT_EQ(Read(REG_COUNTER, 8), 0u);
}

TEST_F(TimerDeviceTest, CounterAdvancesWhenEnabled) {
  Write(REG_CONFIG, CONFIG_ENABLE);
  timer_.Tick(123);
  EXPECT_EQ(Read(REG_COUNTER, 8), 123u);
  timer_.Tick(7);
  EXPECT_EQ(Read(REG_COUNTER, 8), 130u);
}

TEST_F(TimerDeviceTest, OneShotComparatorFiresOnce) {
  int fired = 0;
  timer_.SetIsr([&] { ++fired; });
  Write(REG_T0_CONFIG, T0_INT_ENB);
  Write(REG_T0_CMP, 50, 8);
  Write(REG_CONFIG, CONFIG_ENABLE);
  timer_.Tick(49);
  EXPECT_EQ(fired, 0);
  timer_.Tick(1);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(timer_.interrupt_pending());
  timer_.Tick(1000);
  EXPECT_EQ(fired, 1);  // one-shot
  // Acknowledge via write-1-to-clear.
  Write(REG_ISR, ISR_T0);
  EXPECT_FALSE(timer_.interrupt_pending());
}

TEST_F(TimerDeviceTest, PeriodicComparatorRefires) {
  int fired = 0;
  timer_.SetIsr([&] { ++fired; });
  Write(REG_T0_CONFIG, T0_INT_ENB | T0_PERIODIC);
  Write(REG_T0_CMP, 100, 8);  // latches period 100
  Write(REG_CONFIG, CONFIG_ENABLE);
  timer_.Tick(1000);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(Read(REG_T0_CMP, 8), 1100u);  // re-armed past the counter
  timer_.Tick(250);
  EXPECT_EQ(fired, 12);
}

TEST_F(TimerDeviceTest, BatchTickCrossingsAreExact) {
  // A single large Tick must deliver every crossing in order.
  std::vector<uint64_t> fire_counters;
  timer_.SetIsr([&] { fire_counters.push_back(timer_.counter()); });
  Write(REG_T0_CONFIG, T0_INT_ENB | T0_PERIODIC);
  Write(REG_T0_CMP, 10, 8);
  Write(REG_CONFIG, CONFIG_ENABLE);
  timer_.Tick(35);
  ASSERT_EQ(fire_counters.size(), 3u);
  EXPECT_EQ(fire_counters[0], 10u);
  EXPECT_EQ(fire_counters[1], 20u);
  EXPECT_EQ(fire_counters[2], 30u);
  EXPECT_EQ(timer_.counter(), 35u);
}

TEST_F(TimerDeviceTest, SuppressedInterruptsAreCounted) {
  Write(REG_T0_CONFIG, T0_PERIODIC);  // no INT_ENB
  Write(REG_T0_CMP, 10, 8);
  Write(REG_CONFIG, CONFIG_ENABLE);
  timer_.Tick(100);
  EXPECT_EQ(timer_.stats().interrupts_raised, 0u);
  EXPECT_EQ(timer_.stats().interrupts_suppressed, 10u);
  EXPECT_FALSE(timer_.interrupt_pending());
}

// -------------------------------------------------------- heartbeat --

class HeartbeatTest : public ::testing::Test {
 protected:
  HeartbeatTest() {
    EXPECT_TRUE(timer_.MapAt(&kernel_.mem(), kMmio).ok());
    auto policy = policy::PolicyModule::Insert(
        &kernel_, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok());
    policy_ = std::move(*policy);
  }

  kernel::Kernel kernel_;
  TimerDevice timer_;
  std::unique_ptr<policy::PolicyModule> policy_;
};

TEST_F(HeartbeatTest, BeatsAccumulateAtThePeriod) {
  auto module = BaselineHeartbeat::Probe(modrt::RawMemOps(&kernel_), kMmio,
                                         1000);
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  timer_.SetIsr([&] { EXPECT_TRUE(module->Isr().ok()); });
  timer_.Tick(10 * 1000);
  auto counters = module->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->beats, 10u);
  EXPECT_EQ(counters->overruns, 0u);
  EXPECT_EQ(counters->last_counter, 10000u);
}

TEST_F(HeartbeatTest, GuardedBuildBehavesIdentically) {
  auto module = CaratHeartbeat::Probe(
      modrt::GuardedMemOps(&kernel_, &policy_->engine()), kMmio, 500);
  ASSERT_TRUE(module.ok());
  timer_.SetIsr([&] { EXPECT_TRUE(module->Isr().ok()); });
  policy_->engine().ResetStats();
  timer_.Tick(5000);
  auto counters = module->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->beats, 10u);
  // The ISR does exactly 9 guarded accesses per beat (see
  // GuardedIsrCountsExactly), plus the Counters() readout: 10*9 + 3.
  EXPECT_EQ(policy_->engine().stats().guard_calls, 10u * 9 + 3);
  EXPECT_EQ(policy_->engine().stats().denied, 0u);
}

TEST_F(HeartbeatTest, GuardedIsrCountsExactly) {
  auto module = CaratHeartbeat::Probe(
      modrt::GuardedMemOps(&kernel_, &policy_->engine()), kMmio, 100);
  ASSERT_TRUE(module.ok());
  policy_->engine().ResetStats();
  ASSERT_TRUE(module->Isr().ok());
  // 1 state load (timer base) + ISR ack + counter read (MMIO) + 3 state
  // loads + 3 stores (no overrun path) = 9 guards.
  EXPECT_EQ(policy_->engine().stats().guard_calls, 9u);
}

TEST_F(HeartbeatTest, OverrunsDetectedWhenIsrDelayed) {
  auto module = BaselineHeartbeat::Probe(modrt::RawMemOps(&kernel_), kMmio,
                                         100);
  ASSERT_TRUE(module.ok());
  // Deliver the first beats on time, then "mask interrupts" for a while
  // (ticks pass with no ISR) and deliver one late beat manually.
  timer_.SetIsr([&] { EXPECT_TRUE(module->Isr().ok()); });
  timer_.Tick(300);  // beats at 100, 200, 300 — on time
  timer_.SetIsr(nullptr);
  timer_.Tick(500);  // beats missed at 400..800
  timer_.SetIsr([&] { EXPECT_TRUE(module->Isr().ok()); });
  timer_.Tick(100);  // beat at 900, deadline was 400: overrun
  auto counters = module->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->beats, 4u);
  EXPECT_EQ(counters->overruns, 1u);
}

TEST_F(HeartbeatTest, PolicyBlocksTimerMmioFromModule) {
  policy_->engine().SetMode(policy::PolicyMode::kDefaultDeny);
  // Allow the heap (module state) but not the timer's MMIO window.
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(policy::Region{kernel_.direct_map_base(),
                                      kernel_.direct_map_size(),
                                      policy::kProtRW})
                  .ok());
  EXPECT_THROW(
      (void)CaratHeartbeat::Probe(
          modrt::GuardedMemOps(&kernel_, &policy_->engine()), kMmio, 100),
      kernel::KernelPanic);
  EXPECT_TRUE(kernel_.log().Contains("forbidden"));
}

TEST_F(HeartbeatTest, RemoveDisablesTimerAndFrees) {
  const uint64_t live_before = kernel_.heap().Stats().allocation_count;
  auto module = BaselineHeartbeat::Probe(modrt::RawMemOps(&kernel_), kMmio,
                                         100);
  ASSERT_TRUE(module.ok());
  int fired = 0;
  timer_.SetIsr([&] { ++fired; });
  ASSERT_TRUE(module->Remove().ok());
  timer_.Tick(1000);
  EXPECT_EQ(fired, 0);  // timer disabled
  EXPECT_EQ(kernel_.heap().Stats().allocation_count, live_before);
}

TEST_F(HeartbeatTest, RejectsZeroPeriod) {
  EXPECT_FALSE(
      BaselineHeartbeat::Probe(modrt::RawMemOps(&kernel_), kMmio, 0).ok());
}

}  // namespace
}  // namespace kop::hpet
