// Module-loader edge cases and failure injection: resource exhaustion at
// insmod, runaway modules, wild pointers, oops-not-panic semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kernel/procfs.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/kir/parser.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/attestation.hpp"
#include "kop/transform/compiler.hpp"

namespace kop {
namespace {

using kernel::Kernel;
using kernel::KernelConfig;
using kernel::ModuleLoader;

signing::SignedModule CompileAndSign(const std::string& source) {
  auto compiled = transform::CompileModuleText(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

signing::Keyring TrustedKeyring() {
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  return keyring;
}

KernelConfig SmallKernel(uint64_t module_area_bytes) {
  KernelConfig config;
  config.ram_bytes = 4ull << 20;
  config.kernel_text_bytes = 1ull << 20;
  config.module_area_bytes = module_area_bytes;
  config.user_bytes = 1ull << 20;
  return config;
}

TEST(LoaderFailureTest, InsmodFailsCleanlyWhenModuleAreaExhausted) {
  // 16 KiB module area: too small for the 64 KiB interpreter stack.
  Kernel kernel(SmallKernel(16 * 1024));
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  auto loaded = loader.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kOutOfMemory);
  EXPECT_FALSE(kernel.panicked());
  EXPECT_TRUE(loader.LoadedNames().empty());
}

TEST(LoaderFailureTest, SequentialInsmodUntilFullThenRecover) {
  // Fill the module area with synthetic modules until insmod fails, then
  // rmmod one and verify a new insmod fits again.
  Kernel kernel(SmallKernel(512 * 1024));
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());

  // Each module: 64 KiB stack + text + globals; ~6-7 fit in 512 KiB.
  int loaded_count = 0;
  std::string first_name;
  for (int i = 0; i < 32; ++i) {
    std::string source = kirmods::SyntheticModuleSource(2, 4);
    // Rename so each loads as a distinct module.
    const std::string name = "kop_synth_" + std::to_string(i);
    const size_t pos = source.find("kop_synth");
    source.replace(pos, strlen("kop_synth"), name);
    auto loaded = loader.Insmod(CompileAndSign(source));
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), ErrorCode::kOutOfMemory);
      break;
    }
    if (loaded_count == 0) first_name = name;
    ++loaded_count;
  }
  ASSERT_GT(loaded_count, 2);
  ASSERT_LT(loaded_count, 32);

  // Free one slot; the next insmod succeeds.
  ASSERT_TRUE(loader.Rmmod(first_name).ok());
  std::string source = kirmods::SyntheticModuleSource(2, 4);
  source.replace(source.find("kop_synth"), strlen("kop_synth"),
                 "kop_synth_retry");
  EXPECT_TRUE(loader.Insmod(CompileAndSign(source)).ok());
}

TEST(LoaderFailureTest, RmmodReturnsAllModuleAreaMemory) {
  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  const uint64_t live_before = kernel.module_area().Stats().allocation_count;
  ASSERT_TRUE(loader.Insmod(CompileAndSign(kirmods::MemcopySource())).ok());
  EXPECT_GT(kernel.module_area().Stats().allocation_count, live_before);
  ASSERT_TRUE(loader.Rmmod("kop_memcopy").ok());
  EXPECT_EQ(kernel.module_area().Stats().allocation_count, live_before);
}

TEST(LoaderFailureTest, RunawayRecursionFailsWithoutPanic) {
  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  auto loaded = loader.Insmod(CompileAndSign(R"(module "kop_runaway"
func @spin(i64 %n) -> i64 {
entry:
  %m = add i64 %n, 1
  %r = call i64 @spin(i64 %m)
  ret i64 %r
}
)"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto result = (*loaded)->Call("spin", {0});
  ASSERT_FALSE(result.ok());  // call-depth limit, an oops not a crash
  EXPECT_FALSE(kernel.panicked());
  // The module and kernel remain usable.
  EXPECT_TRUE(loader.Rmmod("kop_runaway").ok());
}

TEST(LoaderFailureTest, InfiniteLoopHitsExecutionBudget) {
  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  // Pin quarantine semantics regardless of the KOP_RECOVERY env default.
  loader.set_recovery_policy(resilience::RecoveryPolicy::kQuarantine);
  auto loaded = loader.Insmod(CompileAndSign(R"(module "kop_looper"
func @forever() -> void {
entry:
  jmp entry
}
)"));
  ASSERT_TRUE(loaded.ok());
  auto result = (*loaded)->Call("forever", {});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("budget"), std::string::npos);
  // lsmod pins the incident: the quarantine that ended it, stamped on
  // the virtual clock, in the LastEvent column.
  const std::string lsmod = kernel::ProcModules(loader);
  EXPECT_NE(lsmod.find("LastEvent"), std::string::npos);
  const std::string expect =
      "quarantine@" + std::to_string((*loaded)->last_event_tsc());
  EXPECT_NE(lsmod.find(expect), std::string::npos) << lsmod;
}

TEST(LoaderFailureTest, WildPointerIsAnOopsNotACrash) {
  // Default-allow policy: the guard permits the access, but the address
  // is unmapped — the simulated fault surfaces as an error return, the
  // kernel survives, and the module stays loaded (a Linux oops).
  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  auto loaded = loader.Insmod(CompileAndSign(kirmods::ScribblerSource()));
  ASSERT_TRUE(loaded.ok());
  auto result = (*loaded)->Call("peek", {0xdead00000000ull});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kOutOfRange);
  EXPECT_FALSE(kernel.panicked());
  // Still usable afterwards.
  auto heap = kernel.heap().Kmalloc(64);
  ASSERT_TRUE(heap.ok());
  EXPECT_TRUE((*loaded)->Call("peek", {*heap}).ok());
}

TEST(LoaderFailureTest, CallIntoMissingEntryPointFails) {
  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  auto loaded = loader.Insmod(CompileAndSign(kirmods::HelloSource()));
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE((*loaded)->Call("does_not_exist", {}).ok());
  EXPECT_FALSE((*loaded)->Call("init", {1, 2, 3}).ok());  // arity mismatch
}

TEST(LoaderFailureTest, GlobalAddressLookup) {
  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  auto loaded = loader.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_TRUE(loaded.ok());
  auto buf = (*loaded)->GlobalAddress("buf");
  ASSERT_TRUE(buf.ok());
  EXPECT_GE(*buf, kernel.module_area_base());
  EXPECT_FALSE((*loaded)->GlobalAddress("nonexistent").ok());
}

// ------------------------------------------------- static verification --

/// Sign `source` as a hostile toolchain would: the attestation claims
/// complete (and optimized, so adjacency is not re-checked) guards no
/// matter what the IR contains. The signature itself is genuine.
signing::SignedModule ForgeAttestationAndSign(const std::string& source) {
  auto module = kir::ParseModule(source);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  transform::AttestationRecord attestation = transform::Attest(**module);
  attestation.guards_complete = true;
  attestation.guards_optimized = true;
  return signing::SignModule(source, attestation,
                             signing::SigningKey::DevelopmentKey());
}

TEST(LoaderStaticVerifyTest, ForgedAttestationRejectedUnderStaticAndBoth) {
  for (const kernel::VerifyMode mode :
       {kernel::VerifyMode::kBoth, kernel::VerifyMode::kStatic}) {
    Kernel kernel;
    auto policy = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    ASSERT_TRUE(policy.ok());
    ModuleLoader loader(&kernel, TrustedKeyring());
    loader.set_verify_mode(mode);
    trace::GlobalTracer().Reset();

    auto loaded = loader.Insmod(
        ForgeAttestationAndSign(kirmods::AdversarialUnguardedSource()));
    ASSERT_FALSE(loaded.ok()) << kernel::VerifyModeName(mode);
    EXPECT_EQ(loaded.status().code(), ErrorCode::kPermissionDenied);
    EXPECT_NE(loaded.status().ToString().find("static verifier"),
              std::string::npos)
        << loaded.status().ToString();
    EXPECT_TRUE(loader.LoadedNames().empty());
#if KOP_TRACE_ENABLED
    EXPECT_EQ(trace::GlobalTracer().event_count(
                  trace::EventId::kModuleStaticReject),
              1u);
#endif
    trace::GlobalTracer().Reset();
  }
}

TEST(LoaderStaticVerifyTest, ForgedAttestationSlipsThroughAttestMode) {
  // The trust gap the static verifier closes: a forged guards-optimized
  // attestation over unguarded IR passes attestation-only validation.
  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  loader.set_verify_mode(kernel::VerifyMode::kAttest);
  auto loaded = loader.Insmod(
      ForgeAttestationAndSign(kirmods::AdversarialUnguardedSource()));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST(LoaderStaticVerifyTest, EachAdversarialModuleRejectedByDefault) {
  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  // The loader honours KOP_VERIFY (the CI matrix sets it); any mode that
  // runs the static verifier must reject these, so only skip under attest.
  ASSERT_EQ(loader.verify_mode(), kernel::DefaultVerifyMode());
  if (loader.verify_mode() == kernel::VerifyMode::kAttest) {
    loader.set_verify_mode(kernel::VerifyMode::kBoth);
  }
  for (const kirmods::CorpusEntry& entry :
       kirmods::AdversarialCorpusModules()) {
    auto loaded = loader.Insmod(ForgeAttestationAndSign(entry.source));
    ASSERT_FALSE(loaded.ok()) << entry.name;
    // Two rejection layers are acceptable: the validator (kBadModule —
    // e.g. a CFI-claiming module with no attested table) or the static
    // verifier (kPermissionDenied). Either way the module never loads.
    EXPECT_TRUE(loaded.status().code() == ErrorCode::kPermissionDenied ||
                loaded.status().code() == ErrorCode::kBadModule)
        << entry.name << ": " << loaded.status().ToString();
  }
}

TEST(LoaderStaticVerifyTest, StaticModeAcceptsProofWithoutAttestedClaim) {
  // A module whose attestation does NOT claim guard completeness but
  // whose IR is provably guarded: rejected when the attestation is the
  // authority (kBoth), accepted when the static proof is (kStatic).
  auto compiled = transform::CompileModuleText(kirmods::RingbufSource());
  ASSERT_TRUE(compiled.ok());
  transform::AttestationRecord attestation = compiled->attestation;
  attestation.guards_complete = false;
  const signing::SignedModule image = signing::SignModule(
      compiled->text, attestation, signing::SigningKey::DevelopmentKey());

  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());

  loader.set_verify_mode(kernel::VerifyMode::kBoth);
  EXPECT_FALSE(loader.Insmod(image).ok());

  loader.set_verify_mode(kernel::VerifyMode::kStatic);
  auto loaded = loader.Insmod(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->Call("rb_init", {}).ok());
}

TEST(LoaderStaticVerifyTest, WidenedCfiSetRejectedInEveryVerifyMode) {
  transform::CompileOptions options;
  options.inject_cfi_checks = true;  // pin: must not follow KOP_CFI
  auto compiled =
      transform::CompileModuleText(kirmods::IcallSource(), options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_TRUE(compiled->attestation.cfi_gated);
  ASSERT_FALSE(compiled->attestation.cfi_sets.empty());

  // Widen set 0 with @h_spare — signature-compatible but never
  // address-taken — and re-sign with a trusted key. The signature is
  // genuine; the claim is wider than the proof, which is exactly the
  // attack the insmod re-derivation exists to stop. CFI provenance is
  // re-proven in EVERY verify mode (a forged table corrupts enforcement
  // even when attestation-only trust is acceptable for guards).
  transform::AttestationRecord forged = compiled->attestation;
  forged.cfi_sets[0].members.push_back("h_spare");
  std::sort(forged.cfi_sets[0].members.begin(),
            forged.cfi_sets[0].members.end());
  const signing::SignedModule image = signing::SignModule(
      compiled->text, forged, signing::SigningKey::DevelopmentKey());

  for (const kernel::VerifyMode mode :
       {kernel::VerifyMode::kStatic, kernel::VerifyMode::kBoth,
        kernel::VerifyMode::kAttest}) {
    Kernel kernel;
    auto policy = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    ASSERT_TRUE(policy.ok());
    ModuleLoader loader(&kernel, TrustedKeyring());
    loader.set_verify_mode(mode);
    auto loaded = loader.Insmod(image);
    ASSERT_FALSE(loaded.ok()) << kernel::VerifyModeName(mode);
    EXPECT_NE(loaded.status().ToString().find("cfi attestation"),
              std::string::npos)
        << loaded.status().ToString();
    EXPECT_TRUE(loader.LoadedNames().empty());
  }

  // The untampered image loads and dispatches through its gate in every
  // mode: honest modules pay no admission cost for CFI.
  const signing::SignedModule good =
      signing::SignModule(compiled->text, compiled->attestation,
                          signing::SigningKey::DevelopmentKey());
  for (const kernel::VerifyMode mode :
       {kernel::VerifyMode::kStatic, kernel::VerifyMode::kBoth,
        kernel::VerifyMode::kAttest}) {
    Kernel kernel;
    auto policy = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    ASSERT_TRUE(policy.ok());
    ModuleLoader loader(&kernel, TrustedKeyring());
    loader.set_verify_mode(mode);
    auto loaded = loader.Insmod(good);
    ASSERT_TRUE(loaded.ok())
        << kernel::VerifyModeName(mode) << ": " << loaded.status().ToString();
    ASSERT_TRUE((*loaded)->Call("vt_init", {}).ok());
    auto r = (*loaded)->Call("vt_call", {0, 5, 3});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, 8u);  // slot 0 is h_add
  }
}

TEST(LoaderStaticVerifyTest, RenumberedCfiSiteRejected) {
  transform::CompileOptions options;
  options.inject_cfi_checks = true;
  auto compiled =
      transform::CompileModuleText(kirmods::IcallSource(), options);
  ASSERT_TRUE(compiled.ok());
  ASSERT_GE(compiled->attestation.cfi_sites.size(), 2u);

  // Point the first icall at the second (narrower) set: a stale or
  // maliciously renumbered site table.
  transform::AttestationRecord forged = compiled->attestation;
  forged.cfi_sites[0].set_id = forged.cfi_sites[1].set_id;

  Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  ModuleLoader loader(&kernel, TrustedKeyring());
  loader.set_verify_mode(kernel::VerifyMode::kBoth);
  auto loaded = loader.Insmod(signing::SignModule(
      compiled->text, forged, signing::SigningKey::DevelopmentKey()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("cfi attestation"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(LoaderStaticVerifyTest, VerifyModeNamesAndDefault) {
  EXPECT_EQ(kernel::VerifyModeName(kernel::VerifyMode::kAttest), "attest");
  EXPECT_EQ(kernel::VerifyModeName(kernel::VerifyMode::kStatic), "static");
  EXPECT_EQ(kernel::VerifyModeName(kernel::VerifyMode::kBoth), "both");
}

}  // namespace
}  // namespace kop
