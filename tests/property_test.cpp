// Property-based and differential tests: randomized sweeps checking
// invariants across modules rather than single behaviours.
#include <gtest/gtest.h>

#include <map>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/kmalloc.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kir/kir.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/net/packet_gun.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/policy/rbtree_store.hpp"
#include "kop/policy/rules.hpp"
#include "kop/policy/splay_store.hpp"
#include "kop/policy/sorted_table.hpp"
#include "kop/signing/sha256.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/util/rng.hpp"

namespace kop {
namespace {

// ----------------------------------------- synthetic module round trips --

class SyntheticModuleProperty
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(SyntheticModuleProperty, ParsePrintRoundTripStable) {
  const auto [functions, accesses] = GetParam();
  const std::string source =
      kirmods::SyntheticModuleSource(functions, accesses);
  auto module = kir::ParseModule(source);
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  ASSERT_TRUE(kir::VerifyModule(**module).ok());
  const std::string once = kir::PrintModule(**module);
  auto reparsed = kir::ParseModule(once);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(kir::PrintModule(**reparsed), once);
}

TEST_P(SyntheticModuleProperty, GuardCountEqualsAccessCount) {
  const auto [functions, accesses] = GetParam();
  auto output = transform::CompileModuleText(
      kirmods::SyntheticModuleSource(functions, accesses));
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->attestation.guard_count,
            uint64_t{functions} * accesses);
  EXPECT_TRUE(output->attestation.guards_complete);
  EXPECT_TRUE(kir::VerifyModule(*output->module).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SyntheticModuleProperty,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 16u),
                      std::make_pair(4u, 8u), std::make_pair(16u, 4u),
                      std::make_pair(8u, 32u), std::make_pair(32u, 16u)));

// ------------------------------------- interpreter vs host arithmetic --

struct BinOpCase {
  const char* op;
  kir::Type type;
};

class ArithmeticProperty : public ::testing::TestWithParam<BinOpCase> {};

uint64_t HostEval(const std::string& op, kir::Type type, uint64_t a,
                  uint64_t b) {
  using kir::ClampToType;
  using kir::SignExtend;
  const unsigned bits = kir::BitWidth(type);
  a = ClampToType(a, type);
  b = ClampToType(b, type);
  uint64_t r = 0;
  if (op == "add") r = a + b;
  else if (op == "sub") r = a - b;
  else if (op == "mul") r = a * b;
  else if (op == "and") r = a & b;
  else if (op == "or") r = a | b;
  else if (op == "xor") r = a ^ b;
  else if (op == "shl") r = (b >= bits) ? 0 : a << b;
  else if (op == "lshr") r = (b >= bits) ? 0 : a >> b;
  else if (op == "udiv") r = b == 0 ? 0 : a / b;
  else if (op == "urem") r = b == 0 ? 0 : a % b;
  else if (op == "sdiv")
    r = b == 0 ? 0
               : static_cast<uint64_t>(SignExtend(a, type) /
                                       SignExtend(b, type));
  else if (op == "srem")
    r = b == 0 ? 0
               : static_cast<uint64_t>(SignExtend(a, type) %
                                       SignExtend(b, type));
  return ClampToType(r, type);
}

class NullMemory : public kir::MemoryInterface {
 public:
  Result<uint64_t> Load(uint64_t, uint32_t) override {
    return Internal("no memory");
  }
  Status Store(uint64_t, uint64_t, uint32_t) override {
    return Internal("no memory");
  }
};

class NullResolver : public kir::ExternalResolver {
 public:
  Result<uint64_t> CallExternal(const std::string&,
                                const std::vector<uint64_t>&) override {
    return Internal("no externals");
  }
};

TEST_P(ArithmeticProperty, InterpreterMatchesHostSemantics) {
  const BinOpCase param = GetParam();
  const std::string type_name(kir::TypeName(param.type));
  const std::string source = "module \"m\"\nfunc @f(" + type_name + " %a, " +
                             type_name + " %b) -> " + type_name +
                             " {\nentry:\n  %r = " + param.op + " " +
                             type_name + " %a, %b\n  ret " + type_name +
                             " %r\n}\n";
  auto module = kir::ParseModule(source);
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  NullMemory memory;
  NullResolver resolver;
  kir::Interpreter interp(**module, memory, resolver, {});

  Xoshiro256 rng(0xc0ffee);
  for (int i = 0; i < 300; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    // Mix in interesting edge values.
    if (i % 7 == 0) a = 0;
    if (i % 11 == 0) b = 0;
    if (i % 13 == 0) a = ~0ull;
    if (i % 17 == 0) b = 1;
    const bool div_like = std::string(param.op) == "udiv" ||
                          std::string(param.op) == "sdiv" ||
                          std::string(param.op) == "urem" ||
                          std::string(param.op) == "srem";
    auto result = interp.Call("f", {a, b});
    if (div_like && kir::ClampToType(b, param.type) == 0) {
      EXPECT_FALSE(result.ok());
      continue;
    }
    ASSERT_TRUE(result.ok()) << param.op << " a=" << a << " b=" << b;
    EXPECT_EQ(*result, HostEval(param.op, param.type, a, b))
        << param.op << " " << type_name << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ArithmeticProperty,
    ::testing::Values(BinOpCase{"add", kir::Type::kI64},
                      BinOpCase{"add", kir::Type::kI8},
                      BinOpCase{"sub", kir::Type::kI32},
                      BinOpCase{"mul", kir::Type::kI16},
                      BinOpCase{"udiv", kir::Type::kI64},
                      BinOpCase{"sdiv", kir::Type::kI32},
                      BinOpCase{"urem", kir::Type::kI16},
                      BinOpCase{"srem", kir::Type::kI8},
                      BinOpCase{"and", kir::Type::kI64},
                      BinOpCase{"or", kir::Type::kI32},
                      BinOpCase{"xor", kir::Type::kI8},
                      BinOpCase{"shl", kir::Type::kI64},
                      BinOpCase{"shl", kir::Type::kI8},
                      BinOpCase{"lshr", kir::Type::kI32}),
    [](const ::testing::TestParamInfo<BinOpCase>& info) {
      return std::string(info.param.op) + "_" +
             std::string(kir::TypeName(info.param.type));
    });

// --------------------------------- differential policy store sequences --

TEST(PolicyDifferentialProperty, RandomOpsAgreeAcrossStores) {
  // Drive the linear table (reference) and the non-overlapping stores
  // through the same random add/remove/lookup sequence built from a
  // non-overlapping region grid so every store can represent it.
  Xoshiro256 rng(2024);
  policy::RegionTable64 reference;
  policy::SortedRegionTable sorted;
  policy::RbTreeRegionStore rbtree;
  policy::SplayRegionTree splay;
  std::map<uint64_t, bool> present;  // slot -> in stores

  auto slot_base = [](uint64_t slot) { return 0x40000 + slot * 0x1000; };

  for (int step = 0; step < 3000; ++step) {
    const uint64_t slot = rng.NextBelow(48);
    const int action = static_cast<int>(rng.NextBelow(3));
    if (action == 0 && !present[slot]) {
      const policy::Region region{slot_base(slot),
                                  0x400 + rng.NextBelow(0xc00),
                                  static_cast<uint32_t>(1 + rng.NextBelow(3))};
      ASSERT_TRUE(reference.Add(region).ok());
      ASSERT_TRUE(sorted.Add(region).ok());
      ASSERT_TRUE(rbtree.Add(region).ok());
      ASSERT_TRUE(splay.Add(region).ok());
      present[slot] = true;
    } else if (action == 1 && present[slot]) {
      ASSERT_TRUE(reference.Remove(slot_base(slot)).ok());
      ASSERT_TRUE(sorted.Remove(slot_base(slot)).ok());
      ASSERT_TRUE(rbtree.Remove(slot_base(slot)).ok());
      ASSERT_TRUE(splay.Remove(slot_base(slot)).ok());
      present[slot] = false;
    } else {
      const uint64_t addr = 0x40000 + rng.NextBelow(49 * 0x1000);
      const uint64_t size = 1 + rng.NextBelow(32);
      const auto expected = reference.Lookup(addr, size);
      EXPECT_EQ(sorted.Lookup(addr, size), expected) << step;
      EXPECT_EQ(rbtree.Lookup(addr, size), expected) << step;
      EXPECT_EQ(splay.Lookup(addr, size), expected) << step;
    }
  }
}

// -------------------------------------------------- kmalloc invariants --

TEST(KmallocProperty, RandomAllocFreeNeverOverlapsAndConserves) {
  kernel::KmallocArena arena(0x100000, 1 << 20);
  Xoshiro256 rng(77);
  std::map<uint64_t, uint64_t> live;  // addr -> size
  uint64_t live_bytes = 0;

  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.NextBernoulli(0.6)) {
      const uint64_t size = 8 + rng.NextBelow(4096);
      auto addr = arena.Kmalloc(size);
      if (!addr.ok()) continue;  // exhaustion is legal
      const uint64_t rounded = (size + 7) & ~7ull;
      // In-range.
      ASSERT_GE(*addr, arena.base());
      ASSERT_LE(*addr + rounded, arena.base() + arena.size());
      // No overlap with any live allocation.
      for (const auto& [base, len] : live) {
        ASSERT_FALSE(RangesOverlap(*addr, rounded, base, len))
            << "overlap at step " << step;
      }
      live[*addr] = rounded;
      live_bytes += rounded;
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      ASSERT_TRUE(arena.Kfree(it->first).ok());
      live_bytes -= it->second;
      live.erase(it);
    }
    ASSERT_EQ(arena.Stats().allocated_bytes, live_bytes);
    ASSERT_EQ(arena.Stats().allocation_count, live.size());
  }
  // Free everything: the arena must coalesce back to one chunk.
  for (const auto& [base, len] : live) ASSERT_TRUE(arena.Kfree(base).ok());
  EXPECT_EQ(arena.Stats().largest_free_chunk, arena.size());
}

// ------------------------------------------------ sha256 chunking prop --

TEST(Sha256Property, ArbitraryChunkingMatchesOneShot) {
  Xoshiro256 rng(5);
  std::string message;
  for (int i = 0; i < 4096; ++i) {
    message.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  const auto expected = signing::Sha256::Hash(message);
  for (int trial = 0; trial < 30; ++trial) {
    signing::Sha256 hasher;
    size_t pos = 0;
    while (pos < message.size()) {
      const size_t chunk =
          std::min(message.size() - pos, 1 + rng.NextBelow(300));
      hasher.Update(message.substr(pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(hasher.Finish(), expected) << "trial " << trial;
  }
}

// ---------------------------------- guard-opt semantic preservation --

TEST(GuardOptProperty, OptimizedModuleComputesSameResults) {
  // Compile memcopy twice (unoptimized / dominated guards), load both
  // into kernels with permissive policies, and check the module's
  // observable behaviour is identical.
  auto run = [&](bool optimize) -> std::vector<uint64_t> {
    transform::CompileOptions options;
    options.dominate_guards = optimize;
    options.coalesce_guards = optimize;
    auto compiled =
        transform::CompileModuleText(kirmods::MemcopySource(), options);
    EXPECT_TRUE(compiled.ok());
    auto image = signing::SignModule(compiled->text, compiled->attestation,
                                     signing::SigningKey::DevelopmentKey());
    kernel::Kernel kernel;
    signing::Keyring keyring;
    keyring.Trust(signing::SigningKey::DevelopmentKey());
    kernel::ModuleLoader loader(&kernel, keyring);
    auto policy = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok());
    auto loaded = loader.Insmod(image);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::vector<uint64_t> outputs;
    EXPECT_TRUE((*loaded)->Call("fill", {64, 3}).ok());
    auto copied = (*loaded)->Call("copy", {64});
    EXPECT_TRUE(copied.ok());
    outputs.push_back(*copied);
    auto checksum = (*loaded)->Call("checksum", {64});
    EXPECT_TRUE(checksum.ok());
    outputs.push_back(*checksum);
    return outputs;
  };
  EXPECT_EQ(run(false), run(true));
}

// -------------------------------------------- robustness (fuzz-style) --

TEST(RobustnessProperty, MutatedModuleTextNeverCrashesTheToolchain) {
  // Random single-byte mutations of valid module text: the parser +
  // verifier must either reject cleanly or accept a still-verifiable
  // module — never crash, hang or accept garbage IR.
  Xoshiro256 rng(31337);
  const std::string original = kirmods::RingbufSource();
  int parsed_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = original;
    const int edits = 1 + static_cast<int>(rng.NextBelow(3));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:  // flip to random printable byte
          mutated[pos] = static_cast<char>(0x20 + rng.NextBelow(95));
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // duplicate
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    auto module = kir::ParseModule(mutated);
    if (module.ok() && kir::VerifyModule(**module).ok()) {
      ++parsed_ok;
      // Anything the verifier accepts must print/reparse stably.
      const std::string printed = kir::PrintModule(**module);
      auto reparsed = kir::ParseModule(printed);
      ASSERT_TRUE(reparsed.ok()) << "trial " << trial;
    }
  }
  // Some mutations (comments, names) legitimately survive.
  EXPECT_GE(parsed_ok, 0);
}

TEST(RobustnessProperty, MutatedContainersNeverValidate) {
  // Any mutation of a signed container must be rejected by the validator
  // (or fail to deserialize) — and must never crash it.
  auto compiled = transform::CompileModuleText(kirmods::RingbufSource());
  ASSERT_TRUE(compiled.ok());
  const auto image =
      signing::SignModule(compiled->text, compiled->attestation,
                          signing::SigningKey::DevelopmentKey());
  const std::string container = image.Serialize();
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());

  Xoshiro256 rng(2718);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = container;
    const size_t pos = rng.NextBelow(mutated.size());
    const char before = mutated[pos];
    mutated[pos] = static_cast<char>(rng.Next() & 0xff);
    if (mutated[pos] == before) continue;
    auto parsed = signing::SignedModule::Deserialize(mutated);
    if (!parsed.ok()) continue;  // framing broken: fine
    auto validated = signing::ValidateSignedModule(*parsed, keyring);
    EXPECT_FALSE(validated.ok())
        << "mutation at " << pos << " slipped past the validator";
  }
}

TEST(RobustnessProperty, RandomRuleFilesNeverCrashParser) {
  kernel::Kernel kernel;
  const auto names = policy::DefaultNamedRanges(kernel);
  Xoshiro256 rng(99991);
  const char* words[] = {"mode",  "allow", "deny",   "restrict", "intrinsic",
                         "rw",    "r",     "w",      "none",     "0x1000",
                         "+0x10", "cli",   "kernel-half", "#x",  "0x1-0x2"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const int lines = 1 + static_cast<int>(rng.NextBelow(5));
    for (int l = 0; l < lines; ++l) {
      const int tokens = static_cast<int>(rng.NextBelow(5));
      for (int t = 0; t < tokens; ++t) {
        text += words[rng.NextBelow(std::size(words))];
        text += ' ';
      }
      text += '\n';
    }
    auto spec = policy::ParsePolicyRules(text, names);
    if (spec.ok()) {
      // Whatever parses must apply cleanly to a fresh engine.
      policy::PolicyEngine engine(&kernel,
                                  std::make_unique<policy::RegionTable64>());
      (void)policy::ApplyPolicySpec(*spec, engine);
    }
  }
  SUCCEED();
}

// ------------------------------- simplify semantic-preservation prop --

TEST(SimplifyProperty, SimplifiedSyntheticModulesComputeSameResults) {
  // Random synthetic modules (straight-line arithmetic over a global)
  // must compute identical results before and after SimplifyPass, and
  // after guard injection on top.
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    const std::string source =
        kirmods::SyntheticModuleSource(3, 8 + seed * 2);
    auto run = [&](bool simplify) -> std::vector<uint64_t> {
      transform::CompileOptions options;
      options.simplify = simplify;
      auto compiled = transform::CompileModuleText(source, options);
      EXPECT_TRUE(compiled.ok());
      auto image = signing::SignModule(compiled->text,
                                       compiled->attestation,
                                       signing::SigningKey::DevelopmentKey());
      kernel::Kernel kernel;
      signing::Keyring keyring;
      keyring.Trust(signing::SigningKey::DevelopmentKey());
      kernel::ModuleLoader loader(&kernel, keyring);
      auto policy = policy::PolicyModule::Insert(
          &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
      EXPECT_TRUE(policy.ok());
      auto loaded = loader.Insmod(image);
      EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
      std::vector<uint64_t> outputs;
      for (uint64_t arg : {0ull, 1ull, 42ull, ~0ull}) {
        auto result = (*loaded)->Call("work0", {arg});
        EXPECT_TRUE(result.ok());
        outputs.push_back(result.value_or(0));
        auto result2 = (*loaded)->Call("work2", {arg});
        EXPECT_TRUE(result2.ok());
        outputs.push_back(result2.value_or(0));
      }
      return outputs;
    };
    EXPECT_EQ(run(false), run(true)) << "seed " << seed;
  }
}

// ------------------------------------ driver wire-equality over sizes --

class WireEqualityProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WireEqualityProperty, BaselineAndCaratEmitIdenticalFrames) {
  const uint32_t size = GetParam();
  auto run = [&](bool guarded) -> std::vector<uint8_t> {
    kernel::Kernel kernel;
    nic::CountingSink sink;
    nic::E1000Device device(&kernel.mem(), &sink);
    EXPECT_TRUE(device.MapAt(kernel::kVmallocBase).ok());
    auto policy = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok());
    auto frame_addr = kernel.heap().Kmalloc(2048, 64);
    EXPECT_TRUE(frame_addr.ok());
    std::vector<uint8_t> bytes(size);
    for (uint32_t i = 0; i < size; ++i) bytes[i] = uint8_t(i * 7 + 1);
    EXPECT_TRUE(kernel.mem().Write(*frame_addr, bytes.data(), size).ok());
    if (guarded) {
      auto driver = e1000e::CaratDriver::Probe(
          e1000e::GuardedMemOps(&kernel, &(*policy)->engine()),
          kernel::kVmallocBase);
      EXPECT_TRUE(driver.ok());
      EXPECT_TRUE(driver->XmitFrame(*frame_addr, size).ok());
    } else {
      auto driver = e1000e::BaselineDriver::Probe(e1000e::RawMemOps(&kernel),
                                                  kernel::kVmallocBase);
      EXPECT_TRUE(driver.ok());
      EXPECT_TRUE(driver->XmitFrame(*frame_addr, size).ok());
    }
    EXPECT_EQ(sink.packets(), 1u);
    return sink.RecentFrames()[0];
  };
  EXPECT_EQ(run(false), run(true)) << "size " << size;
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireEqualityProperty,
                         ::testing::Values(14u, 20u, 59u, 60u, 61u, 64u,
                                           127u, 128u, 129u, 256u, 512u,
                                           1024u, 1500u, 1514u));

// --------------------------------------- throughput overhead property --

class OverheadProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OverheadProperty, GuardOverheadScalesWithRegionCountButStaysSmall) {
  const uint32_t regions = GetParam();
  auto measure = [&](bool guarded) -> double {
    kernel::Kernel kernel;
    nic::CountingSink sink;
    nic::E1000Device device(&kernel.mem(), &sink);
    EXPECT_TRUE(device.MapAt(kernel::kVmallocBase).ok());
    auto policy = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultDeny);
    EXPECT_TRUE(policy.ok());
    // First region allows the whole kernel half; the rest are far-away
    // decoys so the scan length is `regions`.
    EXPECT_TRUE((*policy)
                    ->engine()
                    .store()
                    .Add(policy::Region{kernel::kKernelHalfBase,
                                        ~0ull - kernel::kKernelHalfBase,
                                        policy::kProtRW})
                    .ok());
    for (uint32_t i = 1; i < regions; ++i) {
      EXPECT_TRUE((*policy)
                      ->engine()
                      .store()
                      .Add(policy::Region{0x1000 + i * 0x10000, 0x100,
                                          policy::kProtRead})
                      .ok());
    }
    net::TrialConfig config;
    config.packets = 400;
    config.frame_bytes = 128;
    double cycles = 0.0;
    if (guarded) {
      auto driver = e1000e::CaratDriver::Probe(
          e1000e::GuardedMemOps(&kernel, &(*policy)->engine()),
          kernel::kVmallocBase);
      EXPECT_TRUE(driver.ok());
      net::DriverNetDevice<e1000e::CaratDriver> netdev(&*driver);
      net::PacketSocket socket(&kernel, &netdev, 5);
      socket.set_noise_enabled(false);
      net::PacketGun gun(&kernel, &socket);
      auto trial = gun.RunTrial(config);
      EXPECT_TRUE(trial.ok());
      cycles = trial->cycles_per_packet;
    } else {
      auto driver = e1000e::BaselineDriver::Probe(e1000e::RawMemOps(&kernel),
                                                  kernel::kVmallocBase);
      EXPECT_TRUE(driver.ok());
      net::DriverNetDevice<e1000e::BaselineDriver> netdev(&*driver);
      net::PacketSocket socket(&kernel, &netdev, 5);
      socket.set_noise_enabled(false);
      net::PacketGun gun(&kernel, &socket);
      auto trial = gun.RunTrial(config);
      EXPECT_TRUE(trial.ok());
      cycles = trial->cycles_per_packet;
    }
    return cycles;
  };

  const double baseline = measure(false);
  const double carat = measure(true);
  const double overhead = (carat - baseline) / baseline;
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 0.01) << "regions=" << regions;  // paper: <1%
}

INSTANTIATE_TEST_SUITE_P(Regions, OverheadProperty,
                         ::testing::Values(1u, 2u, 8u, 16u, 32u, 64u));

}  // namespace
}  // namespace kop
