// KIR: types, builder, printer/parser round-trip, verifier, interpreter.
#include <gtest/gtest.h>

#include <map>

#include "kop/kir/kir.hpp"
#include "kop/kirmods/corpus.hpp"

namespace kop::kir {
namespace {

// ------------------------------------------------------------ type tests --

TEST(TypeTest, BitWidthsAndStoreSizes) {
  EXPECT_EQ(BitWidth(Type::kVoid), 0u);
  EXPECT_EQ(BitWidth(Type::kI1), 1u);
  EXPECT_EQ(BitWidth(Type::kI8), 8u);
  EXPECT_EQ(BitWidth(Type::kI16), 16u);
  EXPECT_EQ(BitWidth(Type::kI32), 32u);
  EXPECT_EQ(BitWidth(Type::kI64), 64u);
  EXPECT_EQ(BitWidth(Type::kPtr), 64u);
  EXPECT_EQ(StoreSize(Type::kI1), 1u);
  EXPECT_EQ(StoreSize(Type::kI16), 2u);
  EXPECT_EQ(StoreSize(Type::kPtr), 8u);
}

TEST(TypeTest, ClampToType) {
  EXPECT_EQ(ClampToType(0x1ff, Type::kI8), 0xffu);
  EXPECT_EQ(ClampToType(2, Type::kI1), 0u);
  EXPECT_EQ(ClampToType(3, Type::kI1), 1u);
  EXPECT_EQ(ClampToType(~0ull, Type::kI64), ~0ull);
  EXPECT_EQ(ClampToType(0x12345678, Type::kI16), 0x5678u);
}

TEST(TypeTest, SignExtend) {
  EXPECT_EQ(SignExtend(0xff, Type::kI8), -1);
  EXPECT_EQ(SignExtend(0x7f, Type::kI8), 127);
  EXPECT_EQ(SignExtend(0x8000, Type::kI16), -32768);
  EXPECT_EQ(SignExtend(5, Type::kI64), 5);
}

TEST(TypeTest, ParseTypeNameRoundTrip) {
  for (Type t : {Type::kVoid, Type::kI1, Type::kI8, Type::kI16, Type::kI32,
                 Type::kI64, Type::kPtr}) {
    auto parsed = ParseTypeName(TypeName(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(ParseTypeName("i128").has_value());
  EXPECT_FALSE(ParseTypeName("float").has_value());
}

// --------------------------------------------------------- builder tests --

TEST(BuilderTest, BuildsVerifiableFunction) {
  Module module("test");
  Function* fn = module.CreateFunction(
      "double_it", Type::kI64, {{Type::kI64, "x"}});
  ASSERT_NE(fn, nullptr);
  BasicBlock* entry = fn->CreateBlock("entry");
  IRBuilder builder(&module);
  builder.SetInsertPoint(entry);
  Value* sum = builder.CreateAdd(fn->arg(0), fn->arg(0));
  builder.CreateRet(sum);
  EXPECT_TRUE(VerifyModule(module).ok());
}

TEST(BuilderTest, ConstantsAreUniqued) {
  Module module("test");
  EXPECT_EQ(module.GetI64(42), module.GetI64(42));
  EXPECT_NE(module.GetI64(42), module.GetI64(43));
  EXPECT_NE(module.GetConstant(Type::kI32, 42), module.GetI64(42));
}

TEST(BuilderTest, DuplicateFunctionRejected) {
  Module module("test");
  EXPECT_NE(module.CreateFunction("f", Type::kVoid, {}), nullptr);
  EXPECT_EQ(module.CreateFunction("f", Type::kVoid, {}), nullptr);
}

TEST(BuilderTest, DuplicateGlobalRejected) {
  Module module("test");
  EXPECT_NE(module.AddGlobal("g", 8, true), nullptr);
  EXPECT_EQ(module.AddGlobal("g", 16, false), nullptr);
}

TEST(BuilderTest, InsertBeforePlacesInstructionAhead) {
  Module module("test");
  Function* fn = module.CreateFunction("f", Type::kVoid, {});
  BasicBlock* entry = fn->CreateBlock("entry");
  IRBuilder builder(&module);
  builder.SetInsertPoint(entry);
  builder.CreateCall("kir.cli", Type::kVoid, {});
  builder.CreateRet();
  // Insert before the ret.
  auto it = entry->begin();
  ++it;
  builder.SetInsertPoint(entry, it);
  builder.CreateCall("kir.sti", Type::kVoid, {});
  std::vector<std::string> order;
  for (const auto& inst : *entry) order.push_back(inst->callee());
  ASSERT_EQ(entry->size(), 3u);
  EXPECT_EQ(order[0], "kir.cli");
  EXPECT_EQ(order[1], "kir.sti");
}

// ------------------------------------------------- parser/printer tests --

TEST(ParserTest, ParsesCorpusModules) {
  for (const auto& entry : kirmods::AllCorpusModules()) {
    auto module = ParseModule(entry.source);
    ASSERT_TRUE(module.ok()) << entry.name << ": "
                             << module.status().ToString();
    EXPECT_EQ((*module)->name(), entry.name);
    EXPECT_TRUE(VerifyModule(**module).ok()) << entry.name;
  }
}

TEST(ParserTest, RoundTripIsStable) {
  for (const auto& entry : kirmods::AllCorpusModules()) {
    auto module = ParseModule(entry.source);
    ASSERT_TRUE(module.ok());
    const std::string once = PrintModule(**module);
    auto reparsed = ParseModule(once);
    ASSERT_TRUE(reparsed.ok()) << entry.name << ": "
                               << reparsed.status().ToString();
    const std::string twice = PrintModule(**reparsed);
    EXPECT_EQ(once, twice) << entry.name;
  }
}

TEST(ParserTest, RejectsUnknownInstruction) {
  auto result = ParseModule(
      "module \"m\"\nfunc @f() -> void {\nentry:\n  frobnicate 1\n}\n");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, RejectsUndefinedLocal) {
  auto result = ParseModule(
      "module \"m\"\nfunc @f() -> i64 {\nentry:\n  ret i64 %nope\n}\n");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, RejectsUndefinedGlobal) {
  auto result = ParseModule(
      "module \"m\"\nfunc @f() -> i64 {\nentry:\n  %v = load i64, @nope\n"
      "  ret i64 %v\n}\n");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, RejectsDuplicateLabel) {
  auto result = ParseModule(
      "module \"m\"\nfunc @f() -> void {\nentry:\n  ret void\nentry:\n"
      "  ret void\n}\n");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, RejectsUnknownLabelTarget) {
  auto result = ParseModule(
      "module \"m\"\nfunc @f() -> void {\nentry:\n  jmp nowhere\n}\n");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, ParsesHexIntegersAndComments) {
  auto result = ParseModule(
      "module \"m\"  ; a comment\n"
      "func @f() -> i64 {\n"
      "entry:  ; entry block\n"
      "  %v = add i64 0x10, 0x20\n"
      "  ret i64 %v\n"
      "}\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ParserTest, ParsesGlobalInitBytes) {
  auto result = ParseModule(
      "module \"m\"\nglobal @g size 8 ro init x\"deadbeef\"\n");
  ASSERT_TRUE(result.ok());
  GlobalVariable* g = (*result)->FindGlobal("g");
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->writable());
  ASSERT_EQ(g->init_bytes().size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(g->init_bytes()[0]), 0xde);
  EXPECT_EQ(static_cast<uint8_t>(g->init_bytes()[3]), 0xef);
}

TEST(ParserTest, RejectsInitLongerThanGlobal) {
  auto result = ParseModule(
      "module \"m\"\nglobal @g size 2 ro init x\"deadbeef\"\n");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, ParsesInlineAsm) {
  auto result = ParseModule(
      "module \"m\"\nfunc @f() -> void {\nentry:\n  asm \"cli\"\n"
      "  ret void\n}\n");
  ASSERT_TRUE(result.ok());
  const auto& entry = *(*result)->FindFunction("f")->blocks()[0];
  EXPECT_EQ((*entry.begin())->opcode(), Opcode::kInlineAsm);
  EXPECT_EQ((*entry.begin())->asm_text(), "cli");
}

// -------------------------------------------------------- verifier tests --

TEST(VerifierTest, RejectsMissingTerminator) {
  Module module("m");
  Function* fn = module.CreateFunction("f", Type::kVoid, {});
  fn->CreateBlock("entry");  // empty block, no terminator
  EXPECT_FALSE(VerifyModule(module).ok());
}

TEST(VerifierTest, RejectsBadCallSignature) {
  auto result = ParseModule(
      "module \"m\"\n"
      "extern func @g(i64) -> void\n"
      "func @f() -> void {\nentry:\n"
      "  call void @g(i64 1, i64 2)\n  ret void\n}\n");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(VerifyModule(**result).ok());
}

TEST(VerifierTest, RejectsRetTypeMismatch) {
  Module module("m");
  Function* fn = module.CreateFunction("f", Type::kI64, {});
  BasicBlock* entry = fn->CreateBlock("entry");
  IRBuilder builder(&module);
  builder.SetInsertPoint(entry);
  builder.CreateRet();  // void ret in i64 function
  EXPECT_FALSE(VerifyModule(module).ok());
}

TEST(VerifierTest, RejectsUseNotDominatedByDef) {
  // %v is defined only on one path but used after the merge.
  auto result = ParseModule(R"(module "m"
func @f(i1 %c) -> i64 {
entry:
  br %c, then, done
then:
  %v = add i64 1, 2
  jmp done
done:
  ret i64 %v
}
)");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(VerifyModule(**result).ok());
}

TEST(VerifierTest, AcceptsPhiMerge) {
  auto result = ParseModule(R"(module "m"
func @f(i1 %c) -> i64 {
entry:
  br %c, then, other
then:
  %a = add i64 1, 2
  jmp done
other:
  %b = add i64 3, 4
  jmp done
done:
  %v = phi i64 [ %a, then ], [ %b, other ]
  ret i64 %v
}
)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(VerifyModule(**result).ok())
      << VerifyModule(**result).ToString();
}

TEST(VerifierTest, RejectsPhiFromNonPredecessor) {
  auto result = ParseModule(R"(module "m"
func @f(i1 %c) -> i64 {
entry:
  br %c, then, done
then:
  jmp done
done:
  %v = phi i64 [ 1, then ], [ 2, entry ]
  ret i64 %v
}
)");
  ASSERT_TRUE(result.ok());
  // This one is actually fine: entry IS a predecessor of done.
  EXPECT_TRUE(VerifyModule(**result).ok());

  auto bad = ParseModule(R"(module "m"
func @f() -> i64 {
entry:
  jmp mid
mid:
  jmp done
done:
  %v = phi i64 [ 1, entry ]
  ret i64 %v
}
)");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(VerifyModule(**bad).ok());
}

TEST(VerifierTest, ComputesDominators) {
  auto result = ParseModule(R"(module "m"
func @f(i1 %c) -> void {
entry:
  br %c, left, right
left:
  jmp merge
right:
  jmp merge
merge:
  ret void
}
)");
  ASSERT_TRUE(result.ok());
  const Function* fn = (*result)->FindFunction("f");
  auto idom = ComputeImmediateDominators(*fn);
  const BasicBlock* entry = fn->blocks()[0].get();
  const BasicBlock* merge = fn->blocks()[3].get();
  // merge's immediate dominator is entry (not left or right).
  EXPECT_EQ(idom[3], entry);
  EXPECT_TRUE(BlockDominates(*fn, idom, entry, merge));
  EXPECT_FALSE(BlockDominates(*fn, idom, fn->blocks()[1].get(), merge));
}

// ----------------------------------------------------- interpreter tests --

/// Flat test memory: 64 KiB at address 0x1000.
class FlatMemory : public MemoryInterface {
 public:
  static constexpr uint64_t kBase = 0x1000;
  FlatMemory() : bytes_(64 * 1024, 0) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    if (addr < kBase || addr + size > kBase + bytes_.size()) {
      return OutOfRange("load out of test memory");
    }
    uint64_t value = 0;
    for (uint32_t i = 0; i < size; ++i) {
      value |= uint64_t{bytes_[addr - kBase + i]} << (8 * i);
    }
    return value;
  }

  Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    if (addr < kBase || addr + size > kBase + bytes_.size()) {
      return OutOfRange("store out of test memory");
    }
    for (uint32_t i = 0; i < size; ++i) {
      bytes_[addr - kBase + i] = static_cast<uint8_t>(value >> (8 * i));
    }
    return OkStatus();
  }

 private:
  std::vector<uint8_t> bytes_;
};

class RecordingResolver : public ExternalResolver {
 public:
  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args) override {
    calls.emplace_back(name, args);
    return uint64_t{0};
  }
  std::vector<std::pair<std::string, std::vector<uint64_t>>> calls;
};

struct InterpFixture {
  explicit InterpFixture(const std::string& source,
                         std::unordered_map<std::string, uint64_t> globals =
                             {}) {
    auto parsed = ParseModule(source);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    module = std::move(*parsed);
    InterpConfig config;
    config.stack_base = FlatMemory::kBase + 32 * 1024;
    config.stack_size = 32 * 1024;
    interp = std::make_unique<Interpreter>(*module, memory, resolver,
                                           std::move(globals), config);
  }
  FlatMemory memory;
  RecordingResolver resolver;
  std::unique_ptr<Module> module;
  std::unique_ptr<Interpreter> interp;
};

TEST(InterpTest, Arithmetic) {
  InterpFixture fx(R"(module "m"
func @calc(i64 %a, i64 %b) -> i64 {
entry:
  %s = add i64 %a, %b
  %d = mul i64 %s, 3
  %e = sub i64 %d, 1
  ret i64 %e
}
)");
  auto result = fx.interp->Call("calc", {10, 4});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, (10 + 4) * 3 - 1);
}

TEST(InterpTest, SignedOperations) {
  InterpFixture fx(R"(module "m"
func @sd(i64 %a, i64 %b) -> i64 {
entry:
  %q = sdiv i64 %a, %b
  ret i64 %q
}
)");
  auto result = fx.interp->Call(
      "sd", {static_cast<uint64_t>(-12), static_cast<uint64_t>(4)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<int64_t>(*result), -3);
}

TEST(InterpTest, DivisionByZeroFails) {
  InterpFixture fx(R"(module "m"
func @dz(i64 %a) -> i64 {
entry:
  %q = udiv i64 %a, 0
  ret i64 %q
}
)");
  EXPECT_FALSE(fx.interp->Call("dz", {1}).ok());
}

TEST(InterpTest, LoadStoreThroughMemory) {
  InterpFixture fx(R"(module "m"
func @roundtrip(ptr %p, i64 %v) -> i64 {
entry:
  store i64 %v, %p
  %r = load i64, %p
  ret i64 %r
}
)");
  auto result = fx.interp->Call("roundtrip", {FlatMemory::kBase, 0xabcdef});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0xabcdefu);
  EXPECT_EQ(fx.interp->stats().loads, 1u);
  EXPECT_EQ(fx.interp->stats().stores, 1u);
}

TEST(InterpTest, NarrowStoresClampAndExtend) {
  InterpFixture fx(R"(module "m"
func @narrow(ptr %p) -> i64 {
entry:
  store i16 0x1234, %p
  %lo = load i8, %p
  %z = zext i8 %lo to i64
  ret i64 %z
}
)");
  auto result = fx.interp->Call("narrow", {FlatMemory::kBase});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0x34u);  // little-endian low byte
}

TEST(InterpTest, LoopWithPhi) {
  InterpFixture fx(R"(module "m"
func @sum(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %s = phi i64 [ 0, entry ], [ %s1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %s1 = add i64 %s, %i
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret i64 %s
}
)");
  auto result = fx.interp->Call("sum", {10});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 45u);
}

TEST(InterpTest, InternalCallsAndRecursion) {
  InterpFixture fx(R"(module "m"
func @fib(i64 %n) -> i64 {
entry:
  %small = icmp ult i64 %n, 2
  br %small, base, rec
base:
  ret i64 %n
rec:
  %n1 = sub i64 %n, 1
  %n2 = sub i64 %n, 2
  %a = call i64 @fib(i64 %n1)
  %b = call i64 @fib(i64 %n2)
  %s = add i64 %a, %b
  ret i64 %s
}
)");
  auto result = fx.interp->Call("fib", {12});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 144u);
  EXPECT_GT(fx.interp->stats().calls_internal, 0u);
}

TEST(InterpTest, ExternalCallGoesToResolver) {
  InterpFixture fx(R"(module "m"
extern func @helper(i64, i64) -> i64
func @f() -> i64 {
entry:
  %r = call i64 @helper(i64 7, i64 9)
  ret i64 %r
}
)");
  auto result = fx.interp->Call("f", {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(fx.resolver.calls.size(), 1u);
  EXPECT_EQ(fx.resolver.calls[0].first, "helper");
  EXPECT_EQ(fx.resolver.calls[0].second, (std::vector<uint64_t>{7, 9}));
}

TEST(InterpTest, AllocaProvidesScratchSpace) {
  InterpFixture fx(R"(module "m"
func @scratch(i64 %v) -> i64 {
entry:
  %p = alloca 16
  store i64 %v, %p
  %q = gep %p, i64 1, 8, 0
  store i64 99, %q
  %r = load i64, %p
  ret i64 %r
}
)");
  auto result = fx.interp->Call("scratch", {1234});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 1234u);
}

TEST(InterpTest, SelectAndComparisons) {
  InterpFixture fx(R"(module "m"
func @max(i64 %a, i64 %b) -> i64 {
entry:
  %c = icmp sgt i64 %a, %b
  %m = select %c, i64 %a, %b
  ret i64 %m
}
)");
  auto r1 = fx.interp->Call("max", {5, 9});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 9u);
  auto r2 = fx.interp->Call(
      "max", {static_cast<uint64_t>(-5), static_cast<uint64_t>(-9)});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(static_cast<int64_t>(*r2), -5);
}

TEST(InterpTest, StepBudgetStopsInfiniteLoop) {
  InterpFixture fx(R"(module "m"
func @spin() -> void {
entry:
  jmp entry
}
)");
  // Tighten the budget via a fresh interpreter.
  InterpConfig config;
  config.stack_base = FlatMemory::kBase;
  config.stack_size = 1024;
  config.max_steps = 1000;
  Interpreter interp(*fx.module, fx.memory, fx.resolver, {}, config);
  EXPECT_FALSE(interp.Call("spin", {}).ok());
}

TEST(InterpTest, InlineAsmFaults) {
  InterpFixture fx(R"(module "m"
func @bad() -> void {
entry:
  asm "cli"
  ret void
}
)");
  auto result = fx.interp->Call("bad", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kPermissionDenied);
}

TEST(InterpTest, OutOfBoundsAccessFails) {
  InterpFixture fx(R"(module "m"
func @wild(ptr %p) -> i64 {
entry:
  %v = load i64, %p
  ret i64 %v
}
)");
  EXPECT_FALSE(fx.interp->Call("wild", {0xdead0000}).ok());
}

TEST(InterpTest, GlobalAddressesResolve) {
  std::unordered_map<std::string, uint64_t> globals{
      {"counter", FlatMemory::kBase + 256}};
  InterpFixture fx(R"(module "m"
global @counter size 8 rw
func @bump() -> i64 {
entry:
  %v = load i64, @counter
  %v1 = add i64 %v, 1
  store i64 %v1, @counter
  ret i64 %v1
}
)",
                   globals);
  auto r1 = fx.interp->Call("bump", {});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 1u);
  auto r2 = fx.interp->Call("bump", {});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 2u);
}

TEST(InterpTest, PtrIntCastsRoundTrip) {
  InterpFixture fx(R"(module "m"
func @roundtrip(ptr %p) -> i64 {
entry:
  %i = ptrtoint ptr %p to i64
  %i2 = add i64 %i, 8
  %q = inttoptr i64 %i2 to ptr
  store i64 77, %q
  %r = load i64, %q
  %back = ptrtoint ptr %q to i64
  %delta = sub i64 %back, %i
  %sum = add i64 %r, %delta
  ret i64 %sum
}
)");
  auto result = fx.interp->Call("roundtrip", {FlatMemory::kBase});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 77u + 8u);
}

TEST(VerifierTest, PtrIntCastTypeRules) {
  auto bad1 = ParseModule(R"(module "m"
func @f(i64 %x) -> i64 {
entry:
  %p = ptrtoint i64 %x to i64
  ret i64 %p
}
)");
  ASSERT_TRUE(bad1.ok());
  EXPECT_FALSE(VerifyModule(**bad1).ok());
  auto bad2 = ParseModule(R"(module "m"
func @f(ptr %p) -> ptr {
entry:
  %q = inttoptr ptr %p to ptr
  ret ptr %q
}
)");
  ASSERT_TRUE(bad2.ok());
  EXPECT_FALSE(VerifyModule(**bad2).ok());
}

TEST(InterpTest, RingbufModuleBehaves) {
  std::unordered_map<std::string, uint64_t> globals{
      {"buf", FlatMemory::kBase + 0x100},
      {"head", FlatMemory::kBase + 0x400},
      {"tail", FlatMemory::kBase + 0x408},
      {"count", FlatMemory::kBase + 0x410},
  };
  InterpFixture fx(kirmods::RingbufSource(), globals);
  ASSERT_TRUE(fx.interp->Call("rb_init", {}).ok());
  for (uint64_t i = 0; i < 64; ++i) {
    auto pushed = fx.interp->Call("rb_push", {i * 3});
    ASSERT_TRUE(pushed.ok());
    EXPECT_EQ(*pushed, 1u) << "push " << i;
  }
  // 65th push fails: buffer full.
  auto overflow = fx.interp->Call("rb_push", {999});
  ASSERT_TRUE(overflow.ok());
  EXPECT_EQ(*overflow, 0u);
  auto size = fx.interp->Call("rb_size", {});
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 64u);
  for (uint64_t i = 0; i < 64; ++i) {
    auto popped = fx.interp->Call("rb_pop", {});
    ASSERT_TRUE(popped.ok());
    EXPECT_EQ(*popped, i * 3) << "pop " << i;
  }
  auto empty = fx.interp->Call("rb_pop", {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0u);
}

}  // namespace
}  // namespace kop::kir
