// kop::sim: virtual clock, machine models, statistics.
#include <gtest/gtest.h>

#include "kop/sim/clock.hpp"
#include "kop/sim/machine.hpp"
#include "kop/sim/stats.hpp"

namespace kop::sim {
namespace {

// ----------------------------------------------------------------- clock --

TEST(ClockTest, AdvancesAndReads) {
  VirtualClock clock;
  EXPECT_EQ(clock.ReadTsc(), 0u);
  clock.Advance(100.5);
  clock.Advance(0.25);
  EXPECT_DOUBLE_EQ(clock.NowCycles(), 100.75);
  EXPECT_EQ(clock.ReadTsc(), 100u);  // truncated like rdtsc sampling
}

TEST(ClockTest, FractionalChargesAccumulate) {
  VirtualClock clock;
  for (int i = 0; i < 1000; ++i) clock.Advance(0.09);
  EXPECT_NEAR(clock.NowCycles(), 90.0, 1e-9);
}

TEST(ClockTest, CyclesToSeconds) {
  EXPECT_DOUBLE_EQ(VirtualClock::CyclesToSeconds(2.8e9, 2.8e9), 1.0);
  EXPECT_DOUBLE_EQ(VirtualClock::CyclesToSeconds(1.1e9, 2.2e9), 0.5);
}

TEST(ClockTest, Reset) {
  VirtualClock clock;
  clock.Advance(5);
  clock.Reset();
  EXPECT_EQ(clock.ReadTsc(), 0u);
}

// --------------------------------------------------------------- machine --

TEST(MachineTest, PresetsMatchTestbeds) {
  const MachineModel r415 = MachineModel::R415();
  const MachineModel r350 = MachineModel::R350();
  EXPECT_DOUBLE_EQ(r415.freq_hz, 2.2e9);
  EXPECT_DOUBLE_EQ(r350.freq_hz, 2.8e9);
  EXPECT_NE(r415.name.find("R415"), std::string::npos);
  EXPECT_NE(r350.name.find("R350"), std::string::npos);
}

TEST(MachineTest, OldMachineHasCostlierGuards) {
  const MachineModel r415 = MachineModel::R415();
  const MachineModel r350 = MachineModel::R350();
  EXPECT_GT(r415.GuardCycles(2), r350.GuardCycles(2));
  EXPECT_GT(r415.GuardCycles(64), r350.GuardCycles(64));
}

TEST(MachineTest, GuardCostGrowsWithRegions) {
  const MachineModel m = MachineModel::R350();
  EXPECT_LT(m.GuardCycles(2), m.GuardCycles(16));
  EXPECT_LT(m.GuardCycles(16), m.GuardCycles(64));
  EXPECT_NEAR(m.GuardCycles(64) - m.GuardCycles(2),
              62 * m.guard_per_region_cycles, 1e-12);
}

TEST(MachineTest, CalibrationTargetsHold) {
  // ~19.3 guarded accesses per 128 B packet (see e1000e_test): the
  // per-packet guard overhead must land on the paper's deltas.
  const double kGuardsPerPacket = 19.3;
  const MachineModel r350 = MachineModel::R350();
  const MachineModel r415 = MachineModel::R415();
  // Fig 7: carat-baseline median latency delta ~8 cycles on R350.
  EXPECT_NEAR(kGuardsPerPacket * r350.GuardCycles(2), 8.0, 2.0);
  // Fig 3: ~0.8% of ~18.6k cycles/packet on R415 -> ~150 cycles.
  EXPECT_NEAR(kGuardsPerPacket * r415.GuardCycles(2), 150.0, 20.0);
  // Fig 5: n=64 on R350 stays well under 1% of ~24.8k cycles/packet.
  EXPECT_LT(kGuardsPerPacket * r350.GuardCycles(64), 248.0);
}

// ----------------------------------------------------------------- stats --

TEST(StatsTest, AccumulatorMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(StatsTest, AccumulatorEdgeCases) {
  Accumulator acc;
  EXPECT_EQ(acc.variance(), 0.0);
  acc.Add(3.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 3.0);
  EXPECT_EQ(acc.max(), 3.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> values{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 17.5);
}

TEST(StatsTest, QuantileSingleSample) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.3), 7.0);
}

TEST(StatsTest, SummaryFields) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const Summary s = Summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(StatsTest, SummaryEmptyIsZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(StatsTest, EmpiricalCdfMonotone) {
  std::vector<double> values{5, 1, 3, 2, 4};
  const auto cdf = EmpiricalCdf(values, 100);
  ASSERT_EQ(cdf.size(), 5u);  // capped at sample count
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  EXPECT_DOUBLE_EQ(cdf.front().percentile, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().percentile, 100.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].percentile, cdf[i - 1].percentile);
  }
}

TEST(StatsTest, EmpiricalCdfDownsamples) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i);
  const auto cdf = EmpiricalCdf(values, 50);
  EXPECT_EQ(cdf.size(), 50u);
}

TEST(StatsTest, HistogramBucketsAndBounds) {
  Histogram hist(0.0, 100.0, 10);
  hist.Add(5);     // bin 0
  hist.Add(15);    // bin 1
  hist.Add(99.9);  // bin 9
  hist.Add(-1);    // underflow
  hist.Add(100);   // overflow (hi is exclusive)
  hist.Add(1e9);   // overflow
  EXPECT_EQ(hist.bin_count(0), 1u);
  EXPECT_EQ(hist.bin_count(1), 1u);
  EXPECT_EQ(hist.bin_count(9), 1u);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(1), 20.0);
}

TEST(StatsTest, HistogramCsvHasAllRows) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(1);
  const std::string csv = hist.ToCsv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_NE(csv.find("0.0,2.0,1"), std::string::npos);
}

}  // namespace
}  // namespace kop::sim
