// kop::analysis: the CFG utilities, the generic dataflow solver, the
// guard-availability lattice and the three static analyses built on it,
// plus the diagnostics renderings the `kopcc check` CLI exposes.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kop/analysis/cfi.hpp"
#include "kop/analysis/dataflow.hpp"
#include "kop/analysis/diagnostics.hpp"
#include "kop/analysis/guard_coverage.hpp"
#include "kop/analysis/guard_lattice.hpp"
#include "kop/analysis/privileged_lint.hpp"
#include "kop/analysis/provenance.hpp"
#include "kop/analysis/static_verifier.hpp"
#include "kop/kir/cfg.hpp"
#include "kop/kir/kir.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::analysis {
namespace {

std::unique_ptr<kir::Module> Parse(const std::string& source) {
  auto module = kir::ParseModule(source);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_TRUE(kir::VerifyModule(**module).ok())
      << kir::VerifyModule(**module).ToString();
  return std::move(*module);
}

std::unique_ptr<kir::Module> Compile(const std::string& source,
                                     const transform::CompileOptions&
                                         options = {}) {
  auto compiled = transform::CompileModuleText(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled->module);
}

constexpr const char* kDiamondSource = R"(module "m"
global @g size 8 rw
func @f(i64 %x) -> i64 {
entry:
  %cond = icmp ne i64 %x, 0
  br %cond, left, right
left:
  jmp merge
right:
  jmp merge
merge:
  %v = load i64, @g
  ret i64 %v
}
)";

// ---------------------------------------------------------------- CFG --

TEST(CfgTest, EdgesAndReversePostorderOnDiamond) {
  auto module = Parse(kDiamondSource);
  const kir::Function* fn = module->FindFunction("f");
  ASSERT_NE(fn, nullptr);
  const kir::Cfg cfg(*fn);
  ASSERT_EQ(cfg.size(), 4u);

  const kir::BasicBlock* entry = fn->blocks()[0].get();
  const kir::BasicBlock* left = fn->blocks()[1].get();
  const kir::BasicBlock* right = fn->blocks()[2].get();
  const kir::BasicBlock* merge = fn->blocks()[3].get();

  EXPECT_TRUE(cfg.preds(entry).empty());
  EXPECT_EQ(cfg.succs(entry).size(), 2u);
  EXPECT_EQ(cfg.preds(merge).size(), 2u);
  EXPECT_TRUE(cfg.succs(merge).empty());
  EXPECT_EQ(cfg.preds(left).size(), 1u);
  EXPECT_EQ(cfg.succs(right).size(), 1u);

  const auto& rpo = cfg.ReversePostorder();
  ASSERT_EQ(rpo.size(), 4u);
  EXPECT_EQ(rpo.front(), entry);
  EXPECT_EQ(rpo.back(), merge);
  for (const auto& block : fn->blocks()) {
    EXPECT_TRUE(cfg.IsReachable(block.get()));
  }
}

TEST(CfgTest, UnreachableBlockExcludedFromRpo) {
  auto module = Parse(R"(module "m"
func @f() -> i64 {
entry:
  ret i64 0
island:
  ret i64 1
}
)");
  const kir::Function* fn = module->FindFunction("f");
  const kir::Cfg cfg(*fn);
  EXPECT_FALSE(cfg.IsReachable(fn->blocks()[1].get()));
  EXPECT_EQ(cfg.ReversePostorder().size(), 1u);
}

TEST(CfgTest, DominatorTreeOnDiamond) {
  auto module = Parse(kDiamondSource);
  const kir::Function* fn = module->FindFunction("f");
  const kir::Cfg cfg(*fn);
  const kir::DominatorTree domtree(cfg);

  const kir::BasicBlock* entry = fn->blocks()[0].get();
  const kir::BasicBlock* left = fn->blocks()[1].get();
  const kir::BasicBlock* merge = fn->blocks()[3].get();

  EXPECT_EQ(domtree.Idom(entry), entry);
  EXPECT_EQ(domtree.Idom(left), entry);
  EXPECT_EQ(domtree.Idom(merge), entry);  // neither branch dominates merge
  EXPECT_TRUE(domtree.Dominates(entry, merge));
  EXPECT_FALSE(domtree.Dominates(left, merge));
  EXPECT_TRUE(domtree.Dominates(merge, merge));
}

// ----------------------------------------------------- dataflow solver --

TEST(DataflowTest, ForwardGuardAvailabilityThroughLoop) {
  // Guard hoisted above the loop; nothing in the loop kills it, so it is
  // available at the access inside the body on every iteration.
  auto module = Parse(R"(module "m"
global @g size 8 rw
extern func @carat_guard(ptr, i64, i64) -> void
func @f(i64 %n) -> i64 {
entry:
  call void @carat_guard(ptr @g, i64 8, i64 3)
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %v = load i64, @g
  store i64 %v, @g
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret i64 0
}
)");
  const kir::Function* fn = module->FindFunction("f");
  const kir::Cfg cfg(*fn);
  const auto result = SolveGuardAvailability(cfg);

  const kir::BasicBlock* body = fn->blocks()[2].get();
  const kir::GlobalVariable* g = module->FindGlobal("g");
  const GuardSet& at_body = result.in.at(body);
  EXPECT_FALSE(at_body.is_universe());
  EXPECT_TRUE(at_body.CoversAccess(g, 8, kGuardAccessRead));
  EXPECT_TRUE(at_body.CoversAccess(g, 8, kGuardAccessWrite));

  const kir::BasicBlock* entry = fn->blocks()[0].get();
  EXPECT_FALSE(result.in.at(entry).CoversAccess(g, 8, kGuardAccessRead));
}

TEST(DataflowTest, BackwardSolverComputesReachableLabels) {
  // A may-analysis (union meet) run backward: which block labels can
  // execute at-or-after each block.
  struct ReachProblem {
    using State = std::set<std::string>;
    State Boundary() const { return {}; }
    State Top() const { return {}; }  // union identity
    bool MeetInto(State& dst, const State& src) const {
      const size_t before = dst.size();
      dst.insert(src.begin(), src.end());
      return dst.size() != before;
    }
    bool Equal(const State& a, const State& b) const { return a == b; }
    State Transfer(const kir::BasicBlock& block, State state) const {
      state.insert(block.label());
      return state;
    }
  };

  auto module = Parse(kDiamondSource);
  const kir::Function* fn = module->FindFunction("f");
  const kir::Cfg cfg(*fn);
  const auto result = SolveBackward(cfg, ReachProblem{});

  const kir::BasicBlock* entry = fn->blocks()[0].get();
  const kir::BasicBlock* merge = fn->blocks()[3].get();
  EXPECT_EQ(result.in.at(entry),
            (std::set<std::string>{"entry", "left", "right", "merge"}));
  EXPECT_EQ(result.in.at(merge), (std::set<std::string>{"merge"}));
  EXPECT_EQ(result.out.at(merge), (std::set<std::string>{}));
}

// --------------------------------------------------------- guard lattice --

TEST(GuardLatticeTest, CoveringIsSizeAndFlagDirectional) {
  kir::Module module("m");
  auto* g = module.AddGlobal("g", 8, true);
  GuardFact big{g, 16, kGuardAccessRead | kGuardAccessWrite, nullptr};
  EXPECT_TRUE(big.Covers(g, 8, kGuardAccessRead));
  EXPECT_TRUE(big.Covers(g, 16, kGuardAccessWrite));
  EXPECT_FALSE(big.Covers(g, 32, kGuardAccessRead));

  GuardFact small{g, 4, kGuardAccessRead, nullptr};
  EXPECT_FALSE(small.Covers(g, 8, kGuardAccessRead));
  EXPECT_FALSE(small.Covers(g, 4, kGuardAccessWrite));
}

TEST(GuardLatticeTest, MeetKeepsFactsCoveredByBothSides) {
  kir::Module module("m");
  auto* g = module.AddGlobal("g", 8, true);
  auto* h = module.AddGlobal("h", 8, true);

  GuardSet a = GuardSet::MakeEmpty();
  a.AddGuard(GuardFact{g, 8, kGuardAccessWrite, nullptr});
  a.AddGuard(GuardFact{h, 8, kGuardAccessRead, nullptr});
  GuardSet b = GuardSet::MakeEmpty();
  b.AddGuard(GuardFact{g, 16, kGuardAccessRead | kGuardAccessWrite, nullptr});

  EXPECT_TRUE(a.MeetInto(b));
  // g's 8-byte write fact is covered by b's larger fact and survives;
  // h is absent on the b side and dies.
  EXPECT_TRUE(a.CoversAccess(g, 8, kGuardAccessWrite));
  EXPECT_FALSE(a.CoversAccess(h, 8, kGuardAccessRead));
  // b's 16-byte fact is NOT covered by a's smaller one: it must not
  // survive into the meet (a path through a only guarded 8 bytes).
  EXPECT_FALSE(a.CoversAccess(g, 16, kGuardAccessRead));
}

TEST(GuardLatticeTest, UniverseIsMeetIdentity) {
  kir::Module module("m");
  auto* g = module.AddGlobal("g", 8, true);
  GuardSet top = GuardSet::MakeUniverse();
  GuardSet facts = GuardSet::MakeEmpty();
  facts.AddGuard(GuardFact{g, 8, kGuardAccessRead, nullptr});

  GuardSet meet = top;
  EXPECT_TRUE(meet.MeetInto(facts));
  EXPECT_TRUE(meet == facts);
  EXPECT_FALSE(facts.MeetInto(top));  // ⊤ changes nothing
}

TEST(GuardLatticeTest, ExternalCallKillsButKirIntrinsicDoesNot) {
  auto module = Parse(R"(module "m"
global @g size 8 rw
extern func @carat_guard(ptr, i64, i64) -> void
extern func @helper() -> void
func @f() -> i64 {
entry:
  call void @carat_guard(ptr @g, i64 8, i64 1)
  call void @kir.invlpg(i64 0)
  call void @helper()
  ret i64 0
}
)");
  const kir::Function* fn = module->FindFunction("f");
  const kir::GlobalVariable* g = module->FindGlobal("g");
  const kir::BasicBlock* entry = fn->blocks()[0].get();

  GuardSet state = GuardSet::MakeEmpty();
  auto it = entry->begin();
  ApplyGuardStep(**it, state);  // guard
  EXPECT_TRUE(state.CoversAccess(g, 8, kGuardAccessRead));
  ++it;
  ApplyGuardStep(**it, state);  // kir.invlpg: intrinsic-table dispatch,
  EXPECT_TRUE(state.CoversAccess(g, 8, kGuardAccessRead));  // no kill
  ++it;
  ApplyGuardStep(**it, state);  // helper(): may mutate the policy table
  EXPECT_FALSE(state.CoversAccess(g, 8, kGuardAccessRead));
}

// -------------------------------------------------------- guard coverage --

TEST(GuardCoverageTest, EveryCompiledCorpusModuleProvesClean) {
  for (const kirmods::CorpusEntry& entry : kirmods::AllCorpusModules()) {
    auto module = Compile(entry.source);
    AnalysisReport report;
    report.module_name = module->name();
    CheckGuardCoverage(*module, report);
    EXPECT_EQ(report.errors(), 0u)
        << entry.name << ":\n" << RenderText(report);
  }
}

TEST(GuardCoverageTest, OptimizedModulesStillProveComplete) {
  // The optimizer and the verifier share one availability lattice: every
  // guard the optimizer deletes must still be provably covered.
  transform::CompileOptions options;
  options.coalesce_guards = true;
  options.dominate_guards = true;
  for (const kirmods::CorpusEntry& entry : kirmods::AllCorpusModules()) {
    auto module = Compile(entry.source, options);
    AnalysisReport report;
    CheckGuardCoverage(*module, report);
    EXPECT_EQ(report.errors(), 0u)
        << entry.name << ":\n" << RenderText(report);
  }
}

TEST(GuardCoverageTest, RejectsUnguardedStoreWithPreciseLocation) {
  auto module = Parse(kirmods::AdversarialUnguardedSource());
  AnalysisReport report;
  CheckGuardCoverage(*module, report);
  ASSERT_EQ(report.errors(), 1u) << RenderText(report);
  const Diagnostic& d = report.diagnostics[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.analysis, "guard-coverage");
  EXPECT_EQ(d.function, "poke");
  EXPECT_EQ(d.block, "entry");
  EXPECT_EQ(d.inst_index, 3u);  // guard, load, gep, then the store
  EXPECT_EQ(d.guard_site, -1);  // the guard is for a different address
  EXPECT_NE(d.message.find("unguarded store"), std::string::npos);
}

TEST(GuardCoverageTest, AttributesUndersizedGuardBySite) {
  auto module = Parse(kirmods::AdversarialUndersizedSource());
  AnalysisReport report;
  CheckGuardCoverage(*module, report);
  ASSERT_EQ(report.errors(), 1u) << RenderText(report);
  const Diagnostic& d = report.diagnostics[0];
  EXPECT_EQ(d.function, "poke");
  EXPECT_EQ(d.guard_site, 0);  // the undersized guard is call ordinal 0
  EXPECT_NE(d.message.find("covers size 4"), std::string::npos);
}

TEST(GuardCoverageTest, RejectsNonDominatingGuard) {
  auto module = Parse(kirmods::AdversarialWrongBranchSource());
  AnalysisReport report;
  CheckGuardCoverage(*module, report);
  ASSERT_EQ(report.errors(), 1u) << RenderText(report);
  const Diagnostic& d = report.diagnostics[0];
  EXPECT_EQ(d.function, "poke");
  EXPECT_EQ(d.block, "merge");
  EXPECT_NE(d.message.find("every path"), std::string::npos);
}

TEST(GuardCoverageTest, GuardAfterAccessDoesNotCount) {
  auto module = Parse(R"(module "m"
global @g size 8 rw
extern func @carat_guard(ptr, i64, i64) -> void
func @f() -> i64 {
entry:
  %v = load i64, @g
  call void @carat_guard(ptr @g, i64 8, i64 1)
  ret i64 %v
}
)");
  AnalysisReport report;
  CheckGuardCoverage(*module, report);
  EXPECT_EQ(report.errors(), 1u) << RenderText(report);
}

// ----------------------------------------------------------- provenance --

TEST(ProvenanceTest, ClassifiesRootsAndPropagatesThroughGep) {
  auto module = Parse(R"(module "m"
global @g size 64 rw
func @f(ptr %p, i64 %raw) -> i64 {
entry:
  %local = alloca 16
  %slot = gep @g, i64 1, 8, 0
  %kslot = gep %p, i64 0, 8, 0
  %forged = inttoptr i64 %raw to ptr
  ret i64 0
}
)");
  const kir::Function* fn = module->FindFunction("f");
  const auto classes = ClassifyPointers(*fn);

  const kir::Value* arg = fn->args()[0].get();
  EXPECT_EQ(classes.at(arg), Provenance::kKernel);
  const kir::BasicBlock* entry = fn->blocks()[0].get();
  auto it = entry->begin();
  EXPECT_EQ(classes.at(it->get()), Provenance::kLocal);   // alloca
  ++it;
  EXPECT_EQ(classes.at(it->get()), Provenance::kGlobal);  // gep @g
  ++it;
  EXPECT_EQ(classes.at(it->get()), Provenance::kKernel);  // gep %p
  ++it;
  EXPECT_EQ(classes.at(it->get()), Provenance::kUnknown);  // inttoptr
}

TEST(ProvenanceTest, WarnsOnStoreThroughForgedPointer) {
  auto module = Parse(R"(module "m"
func @f(i64 %raw) -> i64 {
entry:
  %forged = inttoptr i64 %raw to ptr
  store i64 7, %forged
  %v = load i64, %forged
  ret i64 %v
}
)");
  AnalysisReport report;
  CheckProvenance(*module, report);
  ASSERT_EQ(report.diagnostics.size(), 2u) << RenderText(report);
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kWarning);  // store
  EXPECT_EQ(report.diagnostics[1].severity, Severity::kNote);     // load
  EXPECT_EQ(report.errors(), 0u);  // advisory, never rejecting
}

TEST(ProvenanceTest, KernelSuppliedPointersAreNotFlagged) {
  auto module = Parse(kirmods::ScribblerSource());
  AnalysisReport report;
  CheckProvenance(*module, report);
  EXPECT_TRUE(report.diagnostics.empty()) << RenderText(report);
}

// ------------------------------------------------------ privileged lint --

TEST(PrivilegedLintTest, UnwrappedIntrinsicWarnsWrappedIsClean) {
  auto unwrapped = Compile(kirmods::PrivuserSource());
  AnalysisReport report;
  CheckPrivileged(*unwrapped, report);
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.warnings(), 4u) << RenderText(report);

  transform::CompileOptions options;
  options.wrap_privileged_intrinsics = true;
  auto wrapped = Compile(kirmods::PrivuserSource(), options);
  AnalysisReport wrapped_report;
  CheckPrivileged(*wrapped, wrapped_report);
  EXPECT_EQ(wrapped_report.warnings(), 0u) << RenderText(wrapped_report);
}

TEST(PrivilegedLintTest, RequireWrappedEscalatesToError) {
  auto module = Compile(kirmods::PrivuserSource());
  PrivilegedLintOptions options;
  options.require_wrapped = true;
  AnalysisReport report;
  CheckPrivileged(*module, report, options);
  EXPECT_EQ(report.errors(), 4u) << RenderText(report);
}

TEST(PrivilegedLintTest, FlagsExternalCalleeOutsideWhitelist) {
  const std::string source = R"(module "m"
extern func @mystery_symbol() -> i64
func @f() -> i64 {
entry:
  %v = call i64 @mystery_symbol()
  ret i64 %v
}
)";
  auto module = Parse(source);
  AnalysisReport report;
  CheckPrivileged(*module, report);
  ASSERT_EQ(report.warnings(), 1u) << RenderText(report);
  EXPECT_NE(report.diagnostics[0].message.find("mystery_symbol"),
            std::string::npos);

  PrivilegedLintOptions options;
  options.extra_allowed_externals.push_back("mystery_symbol");
  AnalysisReport allowed;
  CheckPrivileged(*module, allowed, options);
  EXPECT_TRUE(allowed.diagnostics.empty());
}

// ---------------------------------------------------------------- CFI --

bool HasDiagnostic(const AnalysisReport& report, Severity severity,
                   const std::string& fragment) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == severity &&
        d.message.find(fragment) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(CfiDerivationTest, IcallCorpusModuleDerivesTheTwoKnownSets) {
  auto module = Parse(kirmods::IcallSource());
  const CfiSummary cfi = DeriveCfi(*module);

  ASSERT_EQ(cfi.sets.size(), 2u);
  // vt_call launders the pointer through memory: ⊤, resolved to every
  // address-taken signature-compatible function.
  EXPECT_EQ(cfi.sets[0].members,
            (std::vector<std::string>{"h_add", "h_sub", "h_xor"}));
  // vt_pick selects between two funcaddr roots: a finite set.
  EXPECT_EQ(cfi.sets[1].members, (std::vector<std::string>{"h_add", "h_sub"}));
  EXPECT_EQ(cfi.address_taken,
            (std::vector<std::string>{"h_add", "h_sub", "h_xor"}));

  ASSERT_EQ(cfi.sites.size(), 2u);
  EXPECT_EQ(cfi.sites[0].function, "vt_call");
  EXPECT_TRUE(cfi.sites[0].derived_top);
  EXPECT_FALSE(cfi.sites[0].gate);
  EXPECT_EQ(cfi.sites[0].set_id, 0u);
  EXPECT_EQ(cfi.sites[1].function, "vt_pick");
  EXPECT_FALSE(cfi.sites[1].derived_top);
  EXPECT_EQ(cfi.sites[1].set_id, 1u);
  // The raw source ships no checks; that is the injection pass's job.
  EXPECT_FALSE(cfi.sites[0].has_check);
  EXPECT_FALSE(cfi.sites[1].has_check);
}

TEST(CfiDerivationTest, DerivationInvariantUnderCompilation) {
  // Guards and CFI checks are plain calls that never feed the pointer
  // lattice, so compiling (guard injection + CFI injection) must leave
  // the derived sets and per-site numbering untouched — the exact
  // property the insmod verifier's table comparison relies on.
  auto raw = Parse(kirmods::IcallSource());
  transform::CompileOptions options;
  options.inject_cfi_checks = true;  // pin: this test must not follow KOP_CFI
  auto compiled = Compile(kirmods::IcallSource(), options);
  const CfiSummary before = DeriveCfi(*raw);
  const CfiSummary after = DeriveCfi(*compiled);

  ASSERT_EQ(before.sets.size(), after.sets.size());
  for (size_t i = 0; i < before.sets.size(); ++i) {
    EXPECT_EQ(before.sets[i].members, after.sets[i].members) << "set " << i;
  }
  ASSERT_EQ(before.sites.size(), after.sites.size());
  for (size_t i = 0; i < before.sites.size(); ++i) {
    EXPECT_EQ(before.sites[i].set_id, after.sites[i].set_id) << "site " << i;
    // The injection pass placed a correct adjacent check at every site.
    EXPECT_TRUE(after.sites[i].has_check) << "site " << i;
    EXPECT_TRUE(after.sites[i].check_covers_target) << "site " << i;
    EXPECT_EQ(after.sites[i].check_set_id,
              static_cast<int64_t>(after.sites[i].set_id))
        << "site " << i;
  }
}

TEST(CfiCheckTest, UncheckedIcallInClaimingModuleIsAnError) {
  auto module = Parse(kirmods::AdversarialIcallUncheckedSource());
  AnalysisReport report;
  report.module_name = module->name();
  CheckCfi(*module, report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, Severity::kError,
                            "indirect call without an adjacent "
                            "carat_cfi_check"))
      << RenderText(report);
}

TEST(CfiCheckTest, CheckGuardingTheWrongValueIsAnError) {
  auto module = Parse(kirmods::AdversarialCfiWrongValueSource());
  AnalysisReport report;
  report.module_name = module->name();
  CheckCfi(*module, report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(
      report, Severity::kError,
      "carat_cfi_check does not cover the indirect call's target value"))
      << RenderText(report);
}

TEST(CfiCheckTest, FuncaddrOfNonExportedExternalIsAnError) {
  auto module = Parse(kirmods::AdversarialFuncaddrExternSource());
  AnalysisReport report;
  report.module_name = module->name();
  CheckCfi(*module, report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, Severity::kError,
                            "funcaddr of external symbol `ioremap` which is "
                            "not an exported kernel entry point"))
      << RenderText(report);
}

TEST(CfiCheckTest, CompiledCorpusIsCfiClean) {
  for (const kirmods::CorpusEntry& entry : kirmods::AllCorpusModules()) {
    SCOPED_TRACE(entry.name);
    auto module = Compile(entry.source);
    AnalysisReport report;
    report.module_name = module->name();
    CheckCfi(*module, report);
    EXPECT_TRUE(report.ok()) << RenderText(report);
  }
}

// ------------------------------------------------- aggregate + renderings --

TEST(StaticVerifierTest, AnalyzeModuleAggregatesAllChecks) {
  auto module = Parse(kirmods::AdversarialUndersizedSource());
  const AnalysisReport report = AnalyzeModule(*module);
  EXPECT_EQ(report.module_name, "kop_adv_undersized");
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.errors(), 1u);
}

TEST(StaticVerifierTest, CleanModulePassesEndToEnd) {
  auto module = Compile(kirmods::RingbufSource());
  const AnalysisReport report = AnalyzeModule(*module);
  EXPECT_TRUE(report.ok()) << RenderText(report);
  EXPECT_TRUE(report.diagnostics.empty()) << RenderText(report);
}

TEST(DiagnosticsTest, JsonRenderingIsStable) {
  AnalysisReport report;
  report.module_name = "m";
  Diagnostic d;
  d.severity = Severity::kError;
  d.analysis = "guard-coverage";
  d.function = "poke";
  d.block = "entry";
  d.inst_index = 3;
  d.guard_site = 0;
  d.message = "unguarded store";
  report.diagnostics.push_back(d);

  EXPECT_EQ(RenderJson(report),
            "{\"module\":\"m\",\"errors\":1,\"warnings\":0,\"notes\":0,"
            "\"diagnostics\":[{\"severity\":\"error\","
            "\"analysis\":\"guard-coverage\",\"function\":\"poke\","
            "\"block\":\"entry\",\"inst_index\":3,\"guard_site\":0,"
            "\"message\":\"unguarded store\"}]}");
}

TEST(DiagnosticsTest, JsonEscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(DiagnosticsTest, TextRenderingNamesEverything) {
  AnalysisReport report;
  report.module_name = "m";
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.analysis = "provenance";
  d.function = "f";
  d.block = "b";
  d.inst_index = 2;
  d.message = "msg";
  report.diagnostics.push_back(d);
  const std::string text = RenderText(report);
  EXPECT_NE(text.find("warning: [provenance] @f, block b, inst 2: msg"),
            std::string::npos);
  EXPECT_NE(text.find("1 warning(s)"), std::string::npos);
}

}  // namespace
}  // namespace kop::analysis
