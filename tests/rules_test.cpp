// The policy rules language: parsing, application, rendering, and the
// end-to-end "operator writes a firewall file" flow.
#include <gtest/gtest.h>

#include "kop/kernel/kernel.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/rules.hpp"
#include "kop/transform/privileged.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::policy {
namespace {

class RulesTest : public ::testing::Test {
 protected:
  RulesTest() : names_(DefaultNamedRanges(kernel_)) {
    auto module = PolicyModule::Insert(&kernel_);
    EXPECT_TRUE(module.ok());
    module_ = std::move(*module);
    module_->engine().SetViolationAction(ViolationAction::kLogOnly);
  }

  Result<PolicySpec> Parse(const std::string& text) {
    return ParsePolicyRules(text, names_);
  }

  kernel::Kernel kernel_;
  NamedRanges names_;
  std::unique_ptr<PolicyModule> module_;
};

TEST_F(RulesTest, ParsesModeLine) {
  auto allow = Parse("mode allow\n");
  ASSERT_TRUE(allow.ok());
  EXPECT_TRUE(allow->mode_set);
  EXPECT_EQ(allow->mode, PolicyMode::kDefaultAllow);
  auto deny = Parse("mode deny\n");
  ASSERT_TRUE(deny.ok());
  EXPECT_EQ(deny->mode, PolicyMode::kDefaultDeny);
  EXPECT_FALSE(Parse("mode maybe\n").ok());
  EXPECT_FALSE(Parse("mode\n").ok());
}

TEST_F(RulesTest, ParsesExplicitRanges) {
  auto spec = Parse(
      "allow 0x1000 +0x100 r\n"
      "allow 0x2000-0x3000 w\n"
      "deny 0x4000 +0x10\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->regions.size(), 3u);
  EXPECT_EQ(spec->regions[0].base, 0x1000u);
  EXPECT_EQ(spec->regions[0].len, 0x100u);
  EXPECT_EQ(spec->regions[0].prot, kProtRead);
  EXPECT_EQ(spec->regions[1].base, 0x2000u);
  EXPECT_EQ(spec->regions[1].len, 0x1000u);
  EXPECT_EQ(spec->regions[1].prot, kProtWrite);
  EXPECT_EQ(spec->regions[2].prot, kProtNone);
}

TEST_F(RulesTest, ParsesNamedRanges) {
  auto spec = Parse("allow kernel-half rw\ndeny user-half\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->regions.size(), 2u);
  EXPECT_EQ(spec->regions[0].base, kernel::kKernelHalfBase);
  EXPECT_EQ(spec->regions[1].base, 0u);
  EXPECT_EQ(spec->regions[1].len, kernel::kUserSpaceEnd);
}

TEST_F(RulesTest, AllowDefaultsToReadWrite) {
  auto spec = Parse("allow module-area\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->regions[0].prot, kProtRW);
}

TEST_F(RulesTest, CommentsAndBlanksIgnored) {
  auto spec = Parse(
      "# a policy file\n"
      "\n"
      "mode deny   # trailing comment\n"
      "allow direct-map r  # read-only heap\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->regions.size(), 1u);
}

TEST_F(RulesTest, ParsesIntrinsicRules) {
  auto spec = Parse(
      "intrinsic allow wrmsr\n"
      "intrinsic deny kir.cli\n"
      "intrinsic deny 8\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->intrinsics.size(), 3u);
  EXPECT_TRUE(spec->intrinsics[0].allow);
  EXPECT_EQ(spec->intrinsics[0].intrinsic_id,
            static_cast<uint64_t>(transform::PrivilegedIntrinsic::kWrmsr));
  EXPECT_FALSE(spec->intrinsics[1].allow);
  EXPECT_EQ(spec->intrinsics[1].intrinsic_id,
            static_cast<uint64_t>(transform::PrivilegedIntrinsic::kCli));
  EXPECT_EQ(spec->intrinsics[2].intrinsic_id, 8u);
}

TEST_F(RulesTest, ErrorsCarryLineNumbers) {
  const auto result = Parse("mode deny\nfrobnicate everything\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST_F(RulesTest, RejectsMalformedRanges) {
  EXPECT_FALSE(Parse("allow\n").ok());
  EXPECT_FALSE(Parse("allow 0x1000\n").ok());            // missing +len
  EXPECT_FALSE(Parse("allow 0x3000-0x2000 rw\n").ok());  // end <= base
  EXPECT_FALSE(Parse("allow 0x1000 +0 rw\n").ok());      // empty
  EXPECT_FALSE(Parse("allow nowhere-land rw\n").ok());
  EXPECT_FALSE(Parse("deny 0x1000 +0x10 rw\n").ok());    // deny takes no prot
  EXPECT_FALSE(Parse("restrict 0x1000 +0x10\n").ok());   // restrict needs one
  EXPECT_FALSE(Parse("allow 0x1000 +0x10 rwx\n").ok());
  EXPECT_FALSE(Parse("intrinsic allow levitate\n").ok());
}

TEST_F(RulesTest, ApplyConfiguresEngine) {
  auto spec = Parse(
      "mode allow\n"
      "deny user-half\n"
      "allow direct-map r\n"
      "intrinsic deny cli\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ApplyPolicySpec(*spec, module_->engine()).ok());

  auto& engine = module_->engine();
  EXPECT_EQ(engine.mode(), PolicyMode::kDefaultAllow);
  EXPECT_EQ(engine.store().Size(), 2u);
  // user half: denied.
  EXPECT_FALSE(engine.Check(0x400000, 8, kGuardAccessRead));
  // direct map: read ok, write blocked.
  EXPECT_TRUE(engine.Check(kernel_.direct_map_base(), 8, kGuardAccessRead));
  EXPECT_FALSE(engine.Check(kernel_.direct_map_base(), 8, kGuardAccessWrite));
  // untouched kernel text region: default-allow.
  EXPECT_TRUE(engine.Check(kernel_.kernel_text_base(), 8, kGuardAccessRead));
  // intrinsic table.
  EXPECT_FALSE(engine.IntrinsicGuard(
      static_cast<uint64_t>(transform::PrivilegedIntrinsic::kCli)));
}

TEST_F(RulesTest, ApplyReplacesPreviousPolicy) {
  ASSERT_TRUE(module_->engine()
                  .store()
                  .Add(Region{0x9000, 0x100, kProtRW})
                  .ok());
  auto spec = Parse("mode deny\nallow module-area rw\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ApplyPolicySpec(*spec, module_->engine()).ok());
  EXPECT_EQ(module_->engine().store().Size(), 1u);
  EXPECT_FALSE(module_->engine().Check(0x9000, 8, kGuardAccessRead));
}

TEST_F(RulesTest, FileOrderIsMatchOrder) {
  // First-match semantics: the earlier, more specific rule wins.
  auto spec = Parse(
      "mode deny\n"
      "deny 0xffff888000000000 +0x1000\n"   // carve-out first
      "allow direct-map rw\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ApplyPolicySpec(*spec, module_->engine()).ok());
  EXPECT_FALSE(module_->engine().Check(0xffff888000000800ull, 8,
                                       kGuardAccessRead));
  EXPECT_TRUE(module_->engine().Check(0xffff888000002000ull, 8,
                                      kGuardAccessWrite));
}

TEST_F(RulesTest, RenderRoundTrips) {
  auto spec = Parse(
      "mode allow\n"
      "allow 0x1000 +0x100 r\n"
      "deny 0x2000 +0x200\n"
      "allow 0x3000 +0x300 rw\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ApplyPolicySpec(*spec, module_->engine()).ok());
  const std::string rendered = RenderPolicyRules(module_->engine());

  // Re-parse and re-apply onto a fresh engine: identical behaviour.
  auto reparsed = Parse(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(reparsed->regions.size(), spec->regions.size());
  for (size_t i = 0; i < spec->regions.size(); ++i) {
    EXPECT_EQ(reparsed->regions[i].base, spec->regions[i].base);
    EXPECT_EQ(reparsed->regions[i].len, spec->regions[i].len);
    EXPECT_EQ(reparsed->regions[i].prot, spec->regions[i].prot);
  }
  EXPECT_EQ(reparsed->mode, spec->mode);
}

TEST_F(RulesTest, SynthesizeCoalescesPagesAndUnionsFlags) {
  std::vector<ViolationRecord> trace{
      {0x10000, 8, kGuardAccessRead, 1, false},
      {0x10800, 8, kGuardAccessWrite, 2, false},   // same page: union
      {0x11000, 8, kGuardAccessRead | kGuardAccessWrite, 3, false},
      {0x13000, 4, kGuardAccessRead, 4, false},    // gap -> new region
      {0x13ffe, 4, kGuardAccessRead, 5, false},    // straddles into 0x14xxx
  };
  const PolicySpec spec = SynthesizePolicy(trace, 4096);
  EXPECT_EQ(spec.mode, PolicyMode::kDefaultDeny);
  ASSERT_EQ(spec.regions.size(), 2u);
  // Pages 0x10 and 0x11 coalesce (both end up rw).
  EXPECT_EQ(spec.regions[0].base, 0x10000u);
  EXPECT_EQ(spec.regions[0].len, 0x2000u);
  EXPECT_EQ(spec.regions[0].prot, kProtRW);
  // Pages 0x13 and 0x14 coalesce (both r).
  EXPECT_EQ(spec.regions[1].base, 0x13000u);
  EXPECT_EQ(spec.regions[1].len, 0x2000u);
  EXPECT_EQ(spec.regions[1].prot, kProtRead);
}

TEST_F(RulesTest, SynthesizeHandlesIntrinsics) {
  std::vector<ViolationRecord> trace{
      {1 /*cli*/, 0, 0, 1, true},
      {4 /*wrmsr*/, 0, 0, 2, true},
      {1, 0, 0, 3, true},  // duplicate
  };
  const PolicySpec spec = SynthesizePolicy(trace);
  EXPECT_TRUE(spec.regions.empty());
  ASSERT_EQ(spec.intrinsics.size(), 2u);
  EXPECT_TRUE(spec.intrinsics[0].allow);
}

TEST_F(RulesTest, SynthesizedPolicyAllowsExactlyTheTrace) {
  std::vector<ViolationRecord> trace{
      {0x50000, 64, kGuardAccessWrite, 1, false},
      {0x51000, 8, kGuardAccessRead, 2, false},
  };
  const PolicySpec spec = SynthesizePolicy(trace, 4096);
  ASSERT_TRUE(ApplyPolicySpec(spec, module_->engine()).ok());
  auto& engine = module_->engine();
  EXPECT_TRUE(engine.Check(0x50000, 64, kGuardAccessWrite));
  EXPECT_TRUE(engine.Check(0x51000, 8, kGuardAccessRead));
  EXPECT_FALSE(engine.Check(0x51000, 8, kGuardAccessWrite));  // not traced
  EXPECT_FALSE(engine.Check(0x52000, 8, kGuardAccessRead));   // outside
}

TEST_F(RulesTest, PaperTwoRegionRuleAsFile) {
  // Footnote 5 of the paper, as the operator would write it.
  auto spec = Parse(
      "mode deny\n"
      "allow kernel-half rw\n"
      "deny user-half\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ApplyPolicySpec(*spec, module_->engine()).ok());
  EXPECT_TRUE(module_->engine().Check(kernel::kDirectMapBase, 8,
                                      kGuardAccessWrite));
  EXPECT_FALSE(module_->engine().Check(0x400000, 1, kGuardAccessRead));
}

}  // namespace
}  // namespace kop::policy
