// kop::fault — the deterministic fault-injection campaign. The promises
// under test: a seeded campaign replays bit-identically, both execution
// engines produce the same campaign verdicts, no injected fault breaks a
// kernel invariant, and every contained fault is visible in the trace.
#include <gtest/gtest.h>

#include <string>

#include "kop/fault/campaign.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"

namespace kop {
namespace {

using fault::CampaignConfig;
using fault::CampaignReport;
using fault::FaultKind;
using fault::RunCampaign;
using kernel::ExecEngine;
using resilience::RecoveryPolicy;

TEST(FaultCampaignTest, CampaignMeetsTheFloorWithZeroInvariantViolations) {
  CampaignConfig config;
  config.seed = 1;
  CampaignReport report = RunCampaign(config);
  EXPECT_GE(report.trials.size(), 200u);
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.contained, 0u);
  EXPECT_GT(report.absorbed, 0u);
  EXPECT_EQ(report.contained + report.absorbed, report.trials.size());
  for (const auto& trial : report.trials) {
    EXPECT_TRUE(trial.invariant_failures.empty())
        << "trial " << trial.index << ": " << trial.invariant_failures[0];
  }
}

TEST(FaultCampaignTest, SameSeedReplaysBitIdentically) {
  CampaignConfig config;
  config.seed = 7;
  const std::string first = RunCampaign(config).ToJson();
  const std::string second = RunCampaign(config).ToJson();
  EXPECT_EQ(first, second);
}

TEST(FaultCampaignTest, BothEnginesReachIdenticalVerdicts) {
  CampaignConfig config;
  config.seed = 7;
  config.engine = ExecEngine::kBytecode;
  CampaignReport vm = RunCampaign(config);
  config.engine = ExecEngine::kInterp;
  CampaignReport interp = RunCampaign(config);

  ASSERT_EQ(vm.trials.size(), interp.trials.size());
  EXPECT_EQ(vm.contained, interp.contained);
  EXPECT_EQ(vm.absorbed, interp.absorbed);
  EXPECT_EQ(vm.invariant_violations, interp.invariant_violations);
  for (size_t i = 0; i < vm.trials.size(); ++i) {
    EXPECT_EQ(vm.trials[i].contained, interp.trials[i].contained)
        << "trial " << i << " (" << fault::FaultKindName(vm.trials[i].plan.kind)
        << " " << vm.trials[i].plan.scenario << ")";
    EXPECT_EQ(vm.trials[i].outcome, interp.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(vm.trials[i].target, interp.trials[i].target) << "trial " << i;
  }
}

TEST(FaultCampaignTest, DifferentSeedsMaterializeDifferentPlans) {
  CampaignConfig config;
  config.seed = 1;
  const std::string one = RunCampaign(config).ToJson();
  config.seed = 2;
  const std::string two = RunCampaign(config).ToJson();
  EXPECT_NE(one, two);
}

TEST(FaultCampaignTest, RestartRecoverySurvivesTheCampaignToo) {
  CampaignConfig config;
  config.seed = 11;
  config.recovery = RecoveryPolicy::kRestart;
  CampaignReport report = RunCampaign(config);
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_TRUE(report.ok());
}

TEST(FaultCampaignTest, EverySpuriousViolationIsContained) {
  CampaignConfig config;
  config.seed = 3;
  CampaignReport report = RunCampaign(config);
  size_t spurious = 0;
  for (const auto& trial : report.trials) {
    if (trial.plan.kind != FaultKind::kSpuriousViolation) continue;
    ++spurious;
    EXPECT_TRUE(trial.contained)
        << "spurious violation at " << trial.target << " escaped containment";
  }
  EXPECT_GT(spurious, 0u);
}

TEST(FaultCampaignTest, EveryContainedFaultIsVisibleInTheTrace) {
  const uint64_t rollbacks_before =
      trace::GlobalTracer().event_count(trace::EventId::kModuleRollback);
  CampaignConfig config;
  config.seed = 5;
  CampaignReport report = RunCampaign(config);
  const uint64_t rollbacks =
      trace::GlobalTracer().event_count(trace::EventId::kModuleRollback) -
      rollbacks_before;
  // Each contained trial rolled back at least once (restart re-inits can
  // add more rollbacks, never fewer).
  EXPECT_GE(rollbacks, report.contained);
}

TEST(FaultCampaignTest, JsonReportIsWellFormedAndSelfDescribing) {
  CampaignConfig config;
  config.seed = 9;
  CampaignReport report = RunCampaign(config);
  const std::string json = report.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"seed\":9"), std::string::npos);
  EXPECT_NE(json.find("\"engine\":"), std::string::npos);
  EXPECT_NE(json.find("\"invariant_violations\":0"), std::string::npos);
  EXPECT_NE(json.find("\"results\":["), std::string::npos);
  const std::string text = report.ToText();
  EXPECT_NE(text.find("fault campaign: seed 9"), std::string::npos);
  EXPECT_NE(text.find("contained"), std::string::npos);
}

TEST(FaultCampaignTest, ControlFlowCorruptionFamilyBehavesPerCfiMode) {
  CampaignConfig config;
  config.seed = 13;
  CampaignReport report = RunCampaign(config);
  size_t flips = 0;
  size_t forges = 0;
  size_t forges_contained = 0;
  for (const auto& trial : report.trials) {
    const bool is_flip = trial.plan.kind == FaultKind::kCallTargetFlip;
    const bool is_forge = trial.plan.kind == FaultKind::kCallTargetForge;
    if (!is_flip && !is_forge) continue;
    flips += is_flip ? 1 : 0;
    forges += is_forge ? 1 : 0;
    forges_contained += (is_forge && trial.contained) ? 1 : 0;
    // RunTrial itself asserts that every contained control-flow trial's
    // postmortem carries reason "cfi" — a failure there surfaces here.
    EXPECT_TRUE(trial.invariant_failures.empty())
        << "trial " << trial.index << ": " << trial.invariant_failures[0];
  }
  EXPECT_GT(flips, 0u);
  EXPECT_GT(forges, 0u);
  if (transform::DefaultCfiChecks()) {
    // A forged target is never a legal-set member, so with CFI enforced
    // every forge trial must be contained. (A bit flip can land on another
    // legal member and be absorbed; flips carry no such guarantee.)
    EXPECT_EQ(forges_contained, forges);
  } else {
    // The ablation: with KOP_CFI=off the corrupted call is an absorbed
    // oops — or a silent hijack — never a containment event.
    EXPECT_EQ(forges_contained, 0u);
  }
}

TEST(FaultCampaignTest, FaultKindNamesAreDistinct) {
  const FaultKind kinds[] = {
      FaultKind::kSpuriousViolation, FaultKind::kGuardTableCorrupt,
      FaultKind::kStoreBitFlip,      FaultKind::kLoadBitFlip,
      FaultKind::kKmallocFail,       FaultKind::kWatchdogExpiry,
      FaultKind::kNicTxError,      FaultKind::kNicQueueDma,
      FaultKind::kNicDoorbellRange, FaultKind::kCallTargetFlip,
      FaultKind::kCallTargetForge};
  std::set<std::string> names;
  for (FaultKind kind : kinds) {
    const std::string name(fault::FaultKindName(kind));
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(kinds));
}

}  // namespace
}  // namespace kop
