// kop::net: frames, the socket layer's cost accounting, the packet gun.
#include <gtest/gtest.h>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/net/frame.hpp"
#include "kop/net/packet_gun.hpp"
#include "kop/net/socket.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"

namespace kop::net {
namespace {

// ----------------------------------------------------------------- frame --

TEST(FrameTest, SerializeLayout) {
  EthernetFrame frame;
  frame.dst = MacFromString("aa:bb:cc:dd:ee:ff");
  frame.src = MacFromString("11:22:33:44:55:66");
  frame.ethertype = 0x0800;
  frame.payload = {1, 2, 3};
  const auto wire = frame.Serialize();
  ASSERT_EQ(wire.size(), 17u);
  EXPECT_EQ(wire[0], 0xaa);
  EXPECT_EQ(wire[5], 0xff);
  EXPECT_EQ(wire[6], 0x11);
  EXPECT_EQ(wire[12], 0x08);
  EXPECT_EQ(wire[13], 0x00);
  EXPECT_EQ(wire[16], 3);
}

TEST(FrameTest, ParseRoundTrip) {
  EthernetFrame frame = MakeTestFrame(128);
  EthernetFrame parsed;
  ASSERT_TRUE(EthernetFrame::Parse(frame.Serialize(), &parsed));
  EXPECT_EQ(parsed.dst, frame.dst);
  EXPECT_EQ(parsed.src, frame.src);
  EXPECT_EQ(parsed.ethertype, frame.ethertype);
  EXPECT_EQ(parsed.payload, frame.payload);
}

TEST(FrameTest, ParseRejectsShortWire) {
  EthernetFrame parsed;
  EXPECT_FALSE(EthernetFrame::Parse({1, 2, 3}, &parsed));
}

TEST(FrameTest, MacStringRoundTrip) {
  const MacAddress mac = MacFromString("02:00:00:00:00:fe");
  EXPECT_EQ(MacToString(mac), "02:00:00:00:00:fe");
}

TEST(FrameTest, TestFrameDeterministicAndSized) {
  const EthernetFrame a = MakeTestFrame(256);
  const EthernetFrame b = MakeTestFrame(256);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  EXPECT_EQ(a.WireSize(), 256u);
  const EthernetFrame c = MakeTestFrame(256, 0x11);
  EXPECT_NE(a.Serialize(), c.Serialize());
}

// ---------------------------------------------------------------- socket --

class FakeNetDevice : public NetDevice {
 public:
  Status Xmit(uint64_t frame_addr, uint32_t len) override {
    ++xmits;
    last_addr = frame_addr;
    last_len = len;
    if (busy_times > 0) {
      --busy_times;
      return Busy("ring full");
    }
    return OkStatus();
  }
  Status CleanTx() override {
    ++cleans;
    return OkStatus();
  }
  int xmits = 0;
  int cleans = 0;
  int busy_times = 0;
  uint64_t last_addr = 0;
  uint32_t last_len = 0;
};

class SocketTest : public ::testing::Test {
 protected:
  kernel::Kernel kernel_;
  FakeNetDevice device_;
};

TEST_F(SocketTest, SendmsgCopiesFrameIntoSkb) {
  PacketSocket socket(&kernel_, &device_, 1);
  socket.set_noise_enabled(false);
  const auto wire = MakeTestFrame(64).Serialize();
  auto result = socket.Sendmsg(wire);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(device_.xmits, 1);
  EXPECT_EQ(device_.last_len, 64u);
  std::vector<uint8_t> skb(64);
  ASSERT_TRUE(kernel_.mem().Read(socket.skb_addr(), skb.data(), 64).ok());
  EXPECT_EQ(skb, wire);
}

TEST_F(SocketTest, DeterministicCostWithoutNoise) {
  PacketSocket socket(&kernel_, &device_, 1);
  socket.set_noise_enabled(false);
  const auto wire = MakeTestFrame(128).Serialize();
  auto first = socket.Sendmsg(wire);
  ASSERT_TRUE(first.ok());
  auto second = socket.Sendmsg(wire);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->latency_cycles, second->latency_cycles);
  // Interior = syscall + per-byte copy (fake device adds nothing).
  const auto& machine = kernel_.machine();
  EXPECT_NEAR(static_cast<double>(first->latency_cycles),
              machine.syscall_cycles + 128 * machine.copy_cycles_per_byte,
              2.0);
}

TEST_F(SocketTest, LargerFramesCostMore) {
  PacketSocket socket(&kernel_, &device_, 1);
  socket.set_noise_enabled(false);
  auto small = socket.Sendmsg(MakeTestFrame(64).Serialize());
  auto large = socket.Sendmsg(MakeTestFrame(1500).Serialize());
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->latency_cycles, small->latency_cycles);
}

TEST_F(SocketTest, BusyDeviceBlocksAndRetries) {
  PacketSocket socket(&kernel_, &device_, 1);
  socket.set_noise_enabled(false);
  device_.busy_times = 1;
  auto result = socket.Sendmsg(MakeTestFrame(64).Serialize());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->blocked);
  EXPECT_EQ(device_.xmits, 2);   // retried
  EXPECT_EQ(device_.cleans, 1);  // reclaimed in between
  // Blocking shows up as a huge latency (the ring-full outlier).
  EXPECT_GT(result->latency_cycles,
            static_cast<uint64_t>(kernel_.machine().outlier_cycles));
}

TEST_F(SocketTest, RejectsOversizeAndEmptyFrames) {
  PacketSocket socket(&kernel_, &device_, 1);
  EXPECT_FALSE(socket.Sendmsg({}).ok());
  EXPECT_FALSE(socket.Sendmsg(std::vector<uint8_t>(4096)).ok());
}

TEST_F(SocketTest, NoiseIsSeedDeterministic) {
  const auto wire = MakeTestFrame(128).Serialize();
  auto run = [&](uint64_t seed) {
    kernel::Kernel kernel;
    FakeNetDevice device;
    PacketSocket socket(&kernel, &device, seed);
    std::vector<uint64_t> latencies;
    for (int i = 0; i < 50; ++i) {
      auto result = socket.Sendmsg(wire);
      EXPECT_TRUE(result.ok());
      latencies.push_back(result->latency_cycles);
    }
    return latencies;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// ------------------------------------------------------------ packet gun --

class GunTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kMmio = kernel::kVmallocBase;

  GunTest() : device_(&kernel_.mem(), &sink_) {
    EXPECT_TRUE(device_.MapAt(kMmio).ok());
    auto policy = policy::PolicyModule::Insert(
        &kernel_, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok());
    policy_ = std::move(*policy);
  }

  kernel::Kernel kernel_;
  nic::CountingSink sink_;
  nic::E1000Device device_;
  std::unique_ptr<policy::PolicyModule> policy_;
};

TEST_F(GunTest, TrialMetersThroughput) {
  auto driver = e1000e::BaselineDriver::Probe(
      e1000e::RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  DriverNetDevice<e1000e::BaselineDriver> netdev(&*driver);
  PacketSocket socket(&kernel_, &netdev, 3);
  socket.set_noise_enabled(false);
  PacketGun gun(&kernel_, &socket);
  TrialConfig config;
  config.packets = 1000;
  config.frame_bytes = 128;
  auto trial = gun.RunTrial(config);
  ASSERT_TRUE(trial.ok());
  EXPECT_EQ(trial->packets, 1000u);
  EXPECT_EQ(sink_.packets(), 1000u);
  // Baseline R350 calibration: ~112k pps at 128 B.
  EXPECT_NEAR(trial->packets_per_second, 112000.0, 4000.0);
  EXPECT_GT(trial->cycles_per_packet,
            kernel_.machine().inter_call_cycles);
}

TEST_F(GunTest, LatencyCollectionOptIn) {
  auto driver = e1000e::BaselineDriver::Probe(
      e1000e::RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  DriverNetDevice<e1000e::BaselineDriver> netdev(&*driver);
  PacketSocket socket(&kernel_, &netdev, 3);
  PacketGun gun(&kernel_, &socket);
  TrialConfig config;
  config.packets = 100;
  auto no_latency = gun.RunTrial(config);
  ASSERT_TRUE(no_latency.ok());
  EXPECT_TRUE(no_latency->latencies_cycles.empty());
  config.collect_latencies = true;
  auto with_latency = gun.RunTrial(config);
  ASSERT_TRUE(with_latency.ok());
  EXPECT_EQ(with_latency->latencies_cycles.size(), 100u);
}

TEST_F(GunTest, RejectsSubHeaderFrames) {
  auto driver = e1000e::BaselineDriver::Probe(
      e1000e::RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  DriverNetDevice<e1000e::BaselineDriver> netdev(&*driver);
  PacketSocket socket(&kernel_, &netdev, 3);
  PacketGun gun(&kernel_, &socket);
  TrialConfig config;
  config.frame_bytes = 8;
  EXPECT_FALSE(gun.RunTrial(config).ok());
}

TEST_F(GunTest, BaselineLatencyMatchesPaperMedian) {
  // Fig 7 calibration: baseline sendmsg median ~686 cycles on R350.
  auto driver = e1000e::BaselineDriver::Probe(
      e1000e::RawMemOps(&kernel_), kMmio);
  ASSERT_TRUE(driver.ok());
  DriverNetDevice<e1000e::BaselineDriver> netdev(&*driver);
  PacketSocket socket(&kernel_, &netdev, 11);
  PacketGun gun(&kernel_, &socket);
  TrialConfig config;
  config.packets = 5000;
  config.frame_bytes = 128;
  config.collect_latencies = true;
  auto trial = gun.RunTrial(config);
  ASSERT_TRUE(trial.ok());
  std::vector<double> latencies = trial->latencies_cycles;
  std::sort(latencies.begin(), latencies.end());
  const double median = latencies[latencies.size() / 2];
  EXPECT_NEAR(median, 686.0, 60.0);
}

}  // namespace
}  // namespace kop::net
