// kop::kernel: address space, kmalloc, printk, symbols, chardev, panic,
// and the module loader's kernel-side behaviours not already covered by
// the integration suite.
#include <gtest/gtest.h>

#include "kop/kernel/address_space.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/kmalloc.hpp"
#include "kop/kernel/memory_map.hpp"
#include "kop/kernel/printk.hpp"
#include "kop/kernel/procfs.hpp"

namespace kop::kernel {
namespace {

// ----------------------------------------------------------- memory map --

TEST(MemoryMapTest, HalvesClassifyCorrectly) {
  EXPECT_TRUE(IsUserAddress(0x400000));
  EXPECT_FALSE(IsKernelAddress(0x400000));
  EXPECT_TRUE(IsKernelAddress(kDirectMapBase));
  EXPECT_TRUE(IsKernelAddress(kModuleBase));
  EXPECT_FALSE(IsUserAddress(kKernelTextBase));
  EXPECT_FALSE(IsUserAddress(kUserSpaceEnd));
}

// --------------------------------------------------------- address space --

TEST(AddressSpaceTest, MapReadWrite) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("test", 0x1000, 0x1000).ok());
  ASSERT_TRUE(mem.Write32(0x1100, 0xdeadbeef).ok());
  auto value = mem.Read32(0x1100);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0xdeadbeefu);
  // Fresh RAM is zeroed.
  auto zero = mem.Read64(0x1200);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero, 0u);
}

TEST(AddressSpaceTest, RejectsOverlappingMappings) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("a", 0x1000, 0x1000).ok());
  EXPECT_FALSE(mem.MapRam("b", 0x1800, 0x1000).ok());
  EXPECT_FALSE(mem.MapRam("c", 0x0800, 0x1000).ok());
  EXPECT_TRUE(mem.MapRam("d", 0x2000, 0x1000).ok());  // adjacent is fine
}

TEST(AddressSpaceTest, RejectsEmptyAndWrappingRegions) {
  AddressSpace mem;
  EXPECT_FALSE(mem.MapRam("empty", 0x1000, 0).ok());
  EXPECT_FALSE(mem.MapRam("wrap", ~0ull - 10, 100).ok());
}

TEST(AddressSpaceTest, UnmappedAccessFails) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("test", 0x1000, 0x100).ok());
  EXPECT_FALSE(mem.Read8(0x0fff).ok());
  EXPECT_FALSE(mem.Read8(0x1100).ok());
  // Access straddling the end of the region fails.
  EXPECT_FALSE(mem.Read64(0x10fc).ok());
  EXPECT_TRUE(mem.Read32(0x10fc).ok());
}

TEST(AddressSpaceTest, ReadOnlyRegionRejectsWrites) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("text", 0x1000, 0x100, /*writable=*/false).ok());
  EXPECT_TRUE(mem.Read32(0x1000).ok());
  const Status status = mem.Write32(0x1000, 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(AddressSpaceTest, UnmapRemovesRegion) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("tmp", 0x1000, 0x100).ok());
  ASSERT_TRUE(mem.Unmap(0x1000).ok());
  EXPECT_FALSE(mem.Read8(0x1000).ok());
  EXPECT_FALSE(mem.Unmap(0x1000).ok());
  // Space can be remapped afterwards.
  EXPECT_TRUE(mem.MapRam("tmp2", 0x1000, 0x200).ok());
}

TEST(AddressSpaceTest, BulkReadWrite) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("buf", 0x1000, 0x1000).ok());
  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i);
  ASSERT_TRUE(mem.Write(0x1400, data.data(), data.size()).ok());
  std::vector<uint8_t> readback(data.size());
  ASSERT_TRUE(mem.Read(0x1400, readback.data(), readback.size()).ok());
  EXPECT_EQ(readback, data);
}

TEST(AddressSpaceTest, MemsetFillsRam) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("buf", 0x1000, 0x100).ok());
  ASSERT_TRUE(mem.Memset(0x1010, 0xab, 16).ok());
  auto value = mem.Read8(0x101f);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0xab);
  auto outside = mem.Read8(0x1020);
  ASSERT_TRUE(outside.ok());
  EXPECT_EQ(*outside, 0u);
}

TEST(AddressSpaceTest, RawHostPointerOnlyForRam) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("buf", 0x1000, 0x100).ok());
  uint8_t* p = mem.RawHostPointer(0x1010, 8);
  ASSERT_NE(p, nullptr);
  p[0] = 0x7e;
  auto value = mem.Read8(0x1010);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0x7e);
  EXPECT_EQ(mem.RawHostPointer(0x2000, 8), nullptr);
}

class ScratchMmio : public MmioDevice {
 public:
  uint64_t MmioRead(uint64_t offset, uint32_t size) override {
    reads.emplace_back(offset, size);
    return 0x12345678 + offset;
  }
  void MmioWrite(uint64_t offset, uint64_t value, uint32_t size) override {
    writes.emplace_back(offset, value);
    (void)size;
  }
  std::vector<std::pair<uint64_t, uint32_t>> reads;
  std::vector<std::pair<uint64_t, uint64_t>> writes;
};

TEST(AddressSpaceTest, MmioDispatchesToDevice) {
  AddressSpace mem;
  ScratchMmio device;
  ASSERT_TRUE(mem.MapMmio("dev", 0x10000, 0x1000, &device).ok());
  auto value = mem.Read32(0x10010);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0x12345688u);
  ASSERT_TRUE(mem.Write32(0x10020, 42).ok());
  ASSERT_EQ(device.reads.size(), 1u);
  EXPECT_EQ(device.reads[0], (std::pair<uint64_t, uint32_t>{0x10, 4}));
  ASSERT_EQ(device.writes.size(), 1u);
  EXPECT_EQ(device.writes[0], (std::pair<uint64_t, uint64_t>{0x20, 42}));
}

TEST(AddressSpaceTest, MmioRequiresAlignedPowerOfTwoAccess) {
  AddressSpace mem;
  ScratchMmio device;
  ASSERT_TRUE(mem.MapMmio("dev", 0x10000, 0x1000, &device).ok());
  uint8_t buf[3];
  EXPECT_FALSE(mem.Read(0x10000, buf, 3).ok());   // size 3
  EXPECT_FALSE(mem.Read32(0x10002).ok());          // misaligned
  EXPECT_TRUE(mem.Read16(0x10002).ok());
  EXPECT_EQ(mem.RawHostPointer(0x10000, 4), nullptr);
}

TEST(AddressSpaceTest, RegionsIntrospection) {
  AddressSpace mem;
  ASSERT_TRUE(mem.MapRam("b", 0x2000, 0x100).ok());
  ASSERT_TRUE(mem.MapRam("a", 0x1000, 0x100).ok());
  const auto regions = mem.Regions();
  ASSERT_EQ(regions.size(), 2u);
  // Sorted by base.
  EXPECT_EQ(regions[0].name, "a");
  EXPECT_EQ(regions[1].name, "b");
}

// ----------------------------------------------------------------- kmalloc --

TEST(KmallocTest, AllocateFreeReuse) {
  KmallocArena arena(0x1000, 0x1000);
  auto a = arena.Kmalloc(100);
  ASSERT_TRUE(a.ok());
  auto b = arena.Kmalloc(100);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  ASSERT_TRUE(arena.Kfree(*a).ok());
  auto c = arena.Kmalloc(50);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // first fit reuses the freed block
}

TEST(KmallocTest, AlignmentHonored) {
  KmallocArena arena(0x1001, 0x2000);  // deliberately misaligned base
  auto a = arena.Kmalloc(10, 64);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a % 64, 0u);
  auto b = arena.Kmalloc(10, 256);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b % 256, 0u);
}

TEST(KmallocTest, RejectsBadArguments) {
  KmallocArena arena(0x1000, 0x1000);
  EXPECT_FALSE(arena.Kmalloc(0).ok());
  EXPECT_FALSE(arena.Kmalloc(8, 3).ok());   // non-power-of-two alignment
  EXPECT_FALSE(arena.Kmalloc(8, 4).ok());   // < 8
}

TEST(KmallocTest, ExhaustionFailsGracefully) {
  KmallocArena arena(0x1000, 256);
  auto a = arena.Kmalloc(200);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(arena.Kmalloc(200).ok());
  EXPECT_EQ(arena.Stats().failed_allocs, 1u);
  ASSERT_TRUE(arena.Kfree(*a).ok());
  EXPECT_TRUE(arena.Kmalloc(200).ok());
}

TEST(KmallocTest, DoubleFreeAndWildFreeRejected) {
  KmallocArena arena(0x1000, 0x1000);
  auto a = arena.Kmalloc(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(arena.Kfree(*a).ok());
  EXPECT_FALSE(arena.Kfree(*a).ok());
  EXPECT_FALSE(arena.Kfree(0x1008).ok());
}

TEST(KmallocTest, CoalescingRebuildsLargeChunk) {
  KmallocArena arena(0x1000, 0x1000);
  std::vector<uint64_t> blocks;
  for (int i = 0; i < 8; ++i) {
    auto a = arena.Kmalloc(256, 8);
    if (a.ok()) blocks.push_back(*a);
  }
  // Arena is (nearly) full; free everything in mixed order.
  for (size_t i : {1u, 3u, 5u, 0u, 2u, 4u, 6u}) {
    if (i < blocks.size()) {
      ASSERT_TRUE(arena.Kfree(blocks[i]).ok());
    }
  }
  if (blocks.size() > 7) {
    ASSERT_TRUE(arena.Kfree(blocks[7]).ok());
  }
  const KmallocStats stats = arena.Stats();
  EXPECT_EQ(stats.allocation_count, 0u);
  EXPECT_EQ(stats.largest_free_chunk, 0x1000u);  // fully coalesced
}

TEST(KmallocTest, StatsTrackUsage) {
  KmallocArena arena(0x1000, 0x1000);
  auto a = arena.Kmalloc(100);  // rounded to 104
  ASSERT_TRUE(a.ok());
  const KmallocStats stats = arena.Stats();
  EXPECT_EQ(stats.total_allocs, 1u);
  EXPECT_EQ(stats.allocation_count, 1u);
  EXPECT_EQ(stats.allocated_bytes, 104u);
  EXPECT_EQ(stats.total_bytes, 0x1000u);
  auto size = arena.AllocationSize(*a);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 104u);
}

// ------------------------------------------------------------------ printk --

TEST(PrintkTest, FormatsAndStores) {
  PrintkRing ring(8);
  ring.Printk(KernLevel::kInfo, "value is %d", 42);
  ring.Printk(KernLevel::kErr, "oops %s", "here");
  const auto records = ring.Dmesg();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].text, "value is 42");
  EXPECT_EQ(records[1].level, KernLevel::kErr);
  EXPECT_TRUE(ring.Contains("oops here"));
  EXPECT_FALSE(ring.Contains("absent"));
}

TEST(PrintkTest, RingDropsOldest) {
  PrintkRing ring(2);
  ring.Emit(KernLevel::kInfo, "one");
  ring.Emit(KernLevel::kInfo, "two");
  ring.Emit(KernLevel::kInfo, "three");
  EXPECT_FALSE(ring.Contains("one"));
  EXPECT_TRUE(ring.Contains("three"));
  EXPECT_EQ(ring.total_emitted(), 3u);
}

TEST(PrintkTest, DmesgTextIncludesLevels) {
  PrintkRing ring(4);
  ring.Emit(KernLevel::kAlert, "bad thing");
  EXPECT_NE(ring.DmesgText().find("ALERT: bad thing"), std::string::npos);
}

TEST(PrintkTest, SequenceNumbersMonotone) {
  PrintkRing ring(2);
  for (int i = 0; i < 5; ++i) ring.Emit(KernLevel::kInfo, "x");
  const auto records = ring.Dmesg();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq + 1, records[1].seq);
  EXPECT_EQ(records[1].seq, 4u);
}

// ------------------------------------------------------------- kernel core --

TEST(KernelTest, StandardMapPresent) {
  Kernel kernel;
  EXPECT_TRUE(kernel.mem().IsMapped(kDirectMapBase, 4096));
  EXPECT_TRUE(kernel.mem().IsMapped(kKernelTextBase, 4096));
  EXPECT_TRUE(kernel.mem().IsMapped(kModuleBase, 4096));
  EXPECT_TRUE(kernel.mem().IsMapped(kernel.config().user_base, 4096));
  // Kernel text is read-only.
  EXPECT_FALSE(kernel.mem().Write8(kKernelTextBase, 1).ok());
}

TEST(KernelTest, HeapAllocatesInsideDirectMap) {
  Kernel kernel;
  auto addr = kernel.heap().Kmalloc(128);
  ASSERT_TRUE(addr.ok());
  EXPECT_GE(*addr, kDirectMapBase);
  EXPECT_LT(*addr, kDirectMapBase + kernel.config().ram_bytes);
  EXPECT_TRUE(kernel.mem().Write64(*addr, 7).ok());
}

TEST(KernelTest, PanicThrowsAndLogs) {
  Kernel kernel;
  EXPECT_THROW(kernel.Panic("test reason"), KernelPanic);
  EXPECT_TRUE(kernel.panicked());
  EXPECT_EQ(kernel.panic_reason(), "test reason");
  EXPECT_TRUE(kernel.log().Contains("Kernel panic - not syncing"));
  kernel.ClearPanic();
  EXPECT_FALSE(kernel.panicked());
}

TEST(KernelTest, BaselineSymbolsExported) {
  Kernel kernel;
  EXPECT_TRUE(kernel.symbols().HasFunction("printk_str"));
  EXPECT_TRUE(kernel.symbols().HasFunction("kmalloc"));
  EXPECT_TRUE(kernel.symbols().HasFunction("kfree"));
}

TEST(KernelTest, KmallocSymbolAllocatesUsableMemory) {
  Kernel kernel;
  auto addr = kernel.symbols().Call("kmalloc", {64});
  ASSERT_TRUE(addr.ok());
  ASSERT_NE(*addr, 0u);
  EXPECT_TRUE(kernel.mem().Write64(*addr, 0x1234).ok());
  EXPECT_TRUE(kernel.symbols().Call("kfree", {*addr}).ok());
}

TEST(KernelTest, PrintkStrReadsSimulatedString) {
  Kernel kernel;
  auto addr = kernel.heap().Kmalloc(32);
  ASSERT_TRUE(addr.ok());
  const char* message = "from module";
  ASSERT_TRUE(kernel.mem().Write(*addr, message, strlen(message) + 1).ok());
  ASSERT_TRUE(kernel.symbols().Call("printk_str", {*addr}).ok());
  EXPECT_TRUE(kernel.log().Contains("from module"));
}

TEST(KernelTest, MachineSwappable) {
  Kernel kernel;
  EXPECT_DOUBLE_EQ(kernel.machine().freq_hz, 2.8e9);  // default R350
  kernel.SetMachine(sim::MachineModel::R415());
  EXPECT_DOUBLE_EQ(kernel.machine().freq_hz, 2.2e9);
}

// ------------------------------------------------------------ procfs --

TEST(ProcfsTest, IomemShowsCanonicalMap) {
  Kernel kernel;
  const std::string iomem = ProcIomem(kernel);
  EXPECT_NE(iomem.find("direct-map"), std::string::npos);
  EXPECT_NE(iomem.find("kernel-text (ram, ro)"), std::string::npos);
  EXPECT_NE(iomem.find("module-area"), std::string::npos);
}

TEST(ProcfsTest, KallsymsListsExports) {
  Kernel kernel;
  ASSERT_TRUE(kernel.symbols().ExportData("jiffies", 0x1000).ok());
  const std::string kallsyms = ProcKallsyms(kernel);
  EXPECT_NE(kallsyms.find("T printk_str"), std::string::npos);
  EXPECT_NE(kallsyms.find("T kmalloc"), std::string::npos);
  EXPECT_NE(kallsyms.find("D jiffies"), std::string::npos);
}

TEST(ProcfsTest, MeminfoTracksAllocations) {
  Kernel kernel;
  auto addr = kernel.heap().Kmalloc(4096);
  ASSERT_TRUE(addr.ok());
  const std::string meminfo = ProcMeminfo(kernel);
  EXPECT_NE(meminfo.find("heap:"), std::string::npos);
  EXPECT_NE(meminfo.find("module-area:"), std::string::npos);
  EXPECT_NE(meminfo.find("in 1 allocations"), std::string::npos);
}

// ----------------------------------------------------- machine state --

TEST(MsrFileTest, BootDefaultsAndReadWrite) {
  MsrFile msrs;
  EXPECT_EQ(msrs.Read(MSR_APIC_BASE), 0xfee00900u);
  EXPECT_EQ(msrs.Read(MSR_EFER), 0xd01u);
  EXPECT_EQ(msrs.Read(0x9999), 0u);  // unknown MSR reads zero
  msrs.Write(MSR_LSTAR, 0xffffffff81000000ull);
  EXPECT_EQ(msrs.Read(MSR_LSTAR), 0xffffffff81000000ull);
  EXPECT_EQ(msrs.reads(), 4u);
  EXPECT_EQ(msrs.writes(), 1u);
}

TEST(PortBusTest, ClaimInOutRelease) {
  PortBus bus;
  uint8_t last_out = 0;
  ASSERT_TRUE(bus.Claim(0x60, 4,
                        [](uint16_t port) {
                          return static_cast<uint8_t>(port & 0xff);
                        },
                        [&](uint16_t, uint8_t value) { last_out = value; })
                  .ok());
  EXPECT_EQ(bus.In(0x60), 0x60);
  EXPECT_EQ(bus.In(0x63), 0x63);
  bus.Out(0x61, 0xab);
  EXPECT_EQ(last_out, 0xab);
  // Unclaimed port floats.
  EXPECT_EQ(bus.In(0x70), 0xff);
  bus.Out(0x70, 1);  // swallowed
  // Overlapping claim rejected.
  EXPECT_FALSE(bus.Claim(0x62, 2, nullptr, nullptr).ok());
  bus.Release(0x60);
  EXPECT_EQ(bus.In(0x60), 0xff);
  EXPECT_TRUE(bus.Claim(0x62, 2, nullptr, nullptr).ok());
}

TEST(CpuFlagsTest, InterruptFlagTracking) {
  CpuFlags cpu;
  EXPECT_TRUE(cpu.interrupts_enabled());
  cpu.Cli();
  EXPECT_FALSE(cpu.interrupts_enabled());
  cpu.Sti();
  EXPECT_TRUE(cpu.interrupts_enabled());
  cpu.Halt();
  EXPECT_EQ(cpu.cli_count(), 1u);
  EXPECT_EQ(cpu.sti_count(), 1u);
  EXPECT_EQ(cpu.halt_count(), 1u);
}

// ----------------------------------------------------------------- symbols --

TEST(SymbolTableTest, ExportCallUnexport) {
  SymbolTable table;
  ASSERT_TRUE(table
                  .ExportFunction("double",
                                  [](const std::vector<uint64_t>& args) {
                                    return args[0] * 2;
                                  })
                  .ok());
  auto result = table.Call("double", {21});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42u);
  EXPECT_FALSE(table.ExportFunction("double", [](const auto&) {
    return uint64_t{0};
  }).ok());
  ASSERT_TRUE(table.Unexport("double").ok());
  EXPECT_FALSE(table.Call("double", {1}).ok());
  EXPECT_FALSE(table.Unexport("double").ok());
}

TEST(SymbolTableTest, DataSymbols) {
  SymbolTable table;
  ASSERT_TRUE(table.ExportData("jiffies", 0xffff888000001000ull).ok());
  EXPECT_TRUE(table.HasData("jiffies"));
  auto addr = table.DataAddress("jiffies");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(*addr, 0xffff888000001000ull);
  // Function and data share a namespace.
  EXPECT_FALSE(table.ExportFunction("jiffies", [](const auto&) {
    return uint64_t{0};
  }).ok());
}

TEST(SymbolTableTest, NamesSorted) {
  SymbolTable table;
  ASSERT_TRUE(table.ExportData("zzz", 1).ok());
  ASSERT_TRUE(table.ExportData("aaa", 2).ok());
  const auto names = table.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "aaa");
  EXPECT_EQ(names[1], "zzz");
}

// ----------------------------------------------------------------- chardev --

TEST(CharDevTest, RegisterIoctlUnregister) {
  CharDeviceRegistry devices;
  int calls = 0;
  ASSERT_TRUE(devices
                  .Register("/dev/test",
                            [&](uint32_t cmd, std::vector<uint8_t>& arg) {
                              ++calls;
                              arg.assign(4, static_cast<uint8_t>(cmd));
                              return OkStatus();
                            })
                  .ok());
  EXPECT_TRUE(devices.Exists("/dev/test"));
  std::vector<uint8_t> arg;
  ASSERT_TRUE(devices.Ioctl("/dev/test", 7, arg).ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(arg, std::vector<uint8_t>(4, 7));
  EXPECT_FALSE(devices.Register("/dev/test", [](auto, auto&) {
    return OkStatus();
  }).ok());
  ASSERT_TRUE(devices.Unregister("/dev/test").ok());
  EXPECT_FALSE(devices.Ioctl("/dev/test", 7, arg).ok());
}

TEST(CharDevTest, UnknownNodeFails) {
  CharDeviceRegistry devices;
  std::vector<uint8_t> arg;
  const Status status = devices.Ioctl("/dev/nothing", 1, arg);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace kop::kernel
