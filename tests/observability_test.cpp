// Acceptance for the observability stack (kop::trace): a violation run
// must attribute the denial to the exact injected guard site, fill the
// guard-latency histogram, and leave a Chrome trace with events from
// every instrumented subsystem — guard, loader, NIC, and ioctl.
#include <gtest/gtest.h>

#include <string>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kernel/procfs.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/ioctl_abi.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/procfs.hpp"
#include "kop/signing/signer.hpp"
#include "kop/trace/exporters.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop {
namespace {

using kernel::Kernel;
using kernel::ModuleLoader;
using policy::PolicyMode;
using policy::PolicyModule;
using policy::Region;

signing::SignedModule CompileAndSign(const std::string& source) {
  auto compiled = transform::CompileModuleText(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

signing::Keyring TrustedKeyring() {
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  return keyring;
}

/// The rogue_module scenario, instrumented: load the scribbler under a
/// read-only direct map, let one read through, deny one write.
class ObservabilityTest : public ::testing::Test {
 protected:
  ObservabilityTest() : kernel_(), loader_(&kernel_, TrustedKeyring()) {
    trace::GlobalTracer().Reset();
    trace::GlobalMetrics().Reset();
    auto policy =
        PolicyModule::Insert(&kernel_, nullptr, PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok()) << policy.status().ToString();
    policy_ = std::move(*policy);
    policy_->engine().SetViolationAction(policy::ViolationAction::kLogOnly);
    EXPECT_TRUE(policy_->engine()
                    .store()
                    .Add(Region{kernel_.direct_map_base(),
                                kernel_.direct_map_size(),
                                policy::kProtRead})
                    .ok());
  }

  /// Loads the scribbler and runs one allowed read + one denied write
  /// against core kernel data. Returns the violating address.
  uint64_t RunScribbleScenario() {
    auto loaded = loader_.Insmod(CompileAndSign(kirmods::ScribblerSource()));
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto core_data = kernel_.heap().Kmalloc(4096);
    EXPECT_TRUE(core_data.ok());
    EXPECT_TRUE((*loaded)->Call("peek", {*core_data}).ok());
    EXPECT_TRUE(
        (*loaded)->Call("scribble", {*core_data, 0x41414141}).ok());
    return *core_data;
  }

  Kernel kernel_;
  ModuleLoader loader_;
  std::unique_ptr<PolicyModule> policy_;
};

TEST_F(ObservabilityTest, DenialAttributedToExactGuardSite) {
  const uint64_t addr = RunScribbleScenario();

  const auto violations = policy_->engine().RecentViolations();
  ASSERT_FALSE(violations.empty());
  const auto& violation = violations.back();
  EXPECT_EQ(violation.addr, addr);
  ASSERT_NE(violation.site, trace::kUnknownSite)
      << "denial carried no guard-site token";

  // The token resolves to the exact guard the compiler injected: the
  // store guard inside @scribble of the scribbler module.
  auto info = trace::GlobalSites().Find(violation.site);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->module_name, "kop_scribbler");
  EXPECT_EQ(info->function, "scribble");
  EXPECT_EQ(info->detail, "store size=8");

  // And the hot-site table charges exactly one denial to that site.
  bool found = false;
  for (const policy::HotSite& row : policy_->engine().HotSites()) {
    if (row.site != violation.site) continue;
    found = true;
    EXPECT_EQ(row.denied, 1u);
    EXPECT_GE(row.hits, 1u);
  }
  EXPECT_TRUE(found);

  // The proc view renders the same attribution for the operator.
  const std::string proc = policy::ProcHotSites(policy_->engine());
  EXPECT_NE(proc.find("kop_scribbler:scribble"), std::string::npos) << proc;
}

TEST_F(ObservabilityTest, GuardLatencyHistogramFills) {
  RunScribbleScenario();
  const trace::Log2Histogram* hist =
      trace::GlobalMetrics().GetHistogram("guard.latency_cycles");
  EXPECT_GT(hist->count(), 0u);
  EXPECT_GT(hist->NonZeroBuckets(), 0u);
  EXPECT_GT(hist->mean(), 0.0);

  const std::string proc = policy::ProcGuardStats(policy_->engine());
  EXPECT_NE(proc.find("guard.latency_cycles"), std::string::npos);
  EXPECT_NE(proc.find("denied:"), std::string::npos);
}

#if KOP_TRACE_ENABLED

TEST_F(ObservabilityTest, ChromeTraceCoversEverySubsystem) {
  RunScribbleScenario();

  // NIC leg: a real device behind the knic module's transmit path.
  nic::CountingSink sink;
  nic::E1000Device device(&kernel_.mem(), &sink);
  ASSERT_TRUE(device.MapAt(kernel::kVmallocBase).ok());
  auto knic = loader_.Insmod(CompileAndSign(kirmods::KnicSource()));
  ASSERT_TRUE(knic.ok()) << knic.status().ToString();
  ASSERT_TRUE((*knic)->Call("knic_init", {kernel::kVmallocBase}).ok());
  ASSERT_TRUE((*knic)->Call("knic_fill", {64, 0x20}).ok());
  ASSERT_TRUE((*knic)->Call("knic_send", {kernel::kVmallocBase, 64}).ok());
  EXPECT_EQ(sink.packets(), 1u);

  // ioctl leg: the policy-manager stats call through /dev/carat.
  policy::CaratStatsArg stats;
  auto arg = policy::PackArg(stats);
  ASSERT_TRUE(kernel_.devices()
                  .Ioctl(policy::kCaratDevicePath,
                         policy::CARAT_IOC_GET_STATS, arg)
                  .ok());

  const std::string json =
      trace::ExportChromeTrace(trace::GlobalTracer());
  for (const char* category : {"guard", "loader", "nic", "ioctl"}) {
    EXPECT_NE(json.find("\"cat\":\"" + std::string(category) + "\""),
              std::string::npos)
        << "no " << category << " events in the trace";
  }
  // The denial itself is in the ring, attributed.
  EXPECT_NE(json.find("\"name\":\"guard.deny\""), std::string::npos);
  EXPECT_GT(trace::GlobalTracer().event_count(trace::EventId::kNicXmit), 0u);
  EXPECT_GT(trace::GlobalTracer().event_count(trace::EventId::kIoctl), 0u);

  // The ftrace-style proc view counts every subsystem too.
  const std::string proc = kernel::ProcTracepoints();
  EXPECT_NE(proc.find("guard.deny"), std::string::npos);
  EXPECT_NE(proc.find("nic.xmit"), std::string::npos);
}

TEST_F(ObservabilityTest, TraceAndHotSiteIoctls) {
  RunScribbleScenario();

  policy::CaratTraceArg trace_reply;
  auto trace_arg = policy::PackArg(trace_reply);
  ASSERT_TRUE(kernel_.devices()
                  .Ioctl(policy::kCaratDevicePath,
                         policy::CARAT_IOC_READ_TRACE, trace_arg)
                  .ok());
  ASSERT_TRUE(policy::UnpackArg(trace_arg, &trace_reply));
  ASSERT_GT(trace_reply.count, 0u);
  EXPECT_GT(trace_reply.total, 0u);
  // Records come out oldest-first with monotonic sequence numbers.
  for (uint32_t i = 1; i < trace_reply.count; ++i) {
    EXPECT_LT(trace_reply.records[i - 1].seq, trace_reply.records[i].seq);
  }

  policy::CaratHotSitesArg sites_reply;
  auto sites_arg = policy::PackArg(sites_reply);
  ASSERT_TRUE(kernel_.devices()
                  .Ioctl(policy::kCaratDevicePath,
                         policy::CARAT_IOC_GET_HOT_SITES, sites_arg)
                  .ok());
  ASSERT_TRUE(policy::UnpackArg(sites_arg, &sites_reply));
  ASSERT_GT(sites_reply.count, 0u);
  bool attributed = false;
  for (uint32_t i = 0; i < sites_reply.count; ++i) {
    if (sites_reply.sites[i].denied > 0 &&
        std::string(sites_reply.sites[i].label).find("kop_scribbler") !=
            std::string::npos) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);
}

#endif  // KOP_TRACE_ENABLED

}  // namespace
}  // namespace kop
