// Differential test between the two KIR execution engines: the
// tree-walking reference interpreter and the bytecode register VM. The
// loader may wire either one; nothing observable is allowed to differ —
// return values, error statuses, memory effects, the external-call
// sequence (names, arguments, call ordinals), and the InterpStats
// counters must be bit-identical. Every corpus module runs under both
// engines at the kir level (through the real guard-injecting transform)
// and the knic driver runs under both at the loader level against the
// simulated e1000 device.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kir/bytecode.hpp"
#include "kop/kir/engine.hpp"
#include "kop/kir/interp.hpp"
#include "kop/kir/parser.hpp"
#include "kop/kir/vm.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/engine.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/attestation.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/transform/guard_sites.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"
#include "kop/util/bits.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop {
namespace {

using kir::ExecutionEngine;
using kir::InterpConfig;
using kir::InterpStats;
using kir::Interpreter;
using kir::Module;
using kir::ParseModule;
using kir::VM;

// ---------------------------------------------------------------------------
// kir-level differential harness
// ---------------------------------------------------------------------------

class FlatMemory : public kir::MemoryInterface {
 public:
  static constexpr uint64_t kBase = 0x1000;
  FlatMemory() : bytes_(64 * 1024, 0) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    if (addr < kBase || addr + size > kBase + bytes_.size()) {
      return OutOfRange("load out of test memory");
    }
    uint64_t value = 0;
    for (uint32_t i = 0; i < size; ++i) {
      value |= uint64_t{bytes_[addr - kBase + i]} << (8 * i);
    }
    return value;
  }

  Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    if (addr < kBase || addr + size > kBase + bytes_.size()) {
      return OutOfRange("store out of test memory");
    }
    for (uint32_t i = 0; i < size; ++i) {
      bytes_[addr - kBase + i] = static_cast<uint8_t>(value >> (8 * i));
    }
    return OkStatus();
  }

  std::vector<uint8_t>& bytes() { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

struct CallRecord {
  std::string name;
  std::vector<uint64_t> args;
  uint64_t ordinal = 0;

  bool operator==(const CallRecord&) const = default;
};

/// Records every external call with its ordinal and returns a
/// deterministic per-call value (so result clamping is exercised). When
/// `offer_bindings` is true it hands out handles through BindExternal, so
/// a VM run through it covers the bound fast path; when false the VM must
/// take the name-keyed fallback. Either way the recorded sequence must
/// match the interpreter's.
class RecordingResolver : public kir::ExternalResolver {
 public:
  explicit RecordingResolver(bool offer_bindings)
      : offer_bindings_(offer_bindings) {}

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args) override {
    return Record(name, args, 0);
  }

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args,
                                uint64_t call_ordinal) override {
    return Record(name, args, call_ordinal);
  }

  std::optional<uint64_t> BindExternal(const std::string& name) override {
    if (!offer_bindings_) return std::nullopt;
    bound_names_.push_back(name);
    return bound_names_.size() - 1;
  }

  Result<uint64_t> CallBound(uint64_t handle,
                             const std::vector<uint64_t>& args,
                             uint64_t call_ordinal) override {
    return Record(bound_names_[handle], args, call_ordinal);
  }

  std::vector<CallRecord> calls;

 private:
  Result<uint64_t> Record(const std::string& name,
                          const std::vector<uint64_t>& args,
                          uint64_t ordinal) {
    calls.push_back({name, args, ordinal});
    ++sequence_;
    return sequence_ * 0x9e3779b97f4a7c15ull;  // deterministic, full 64 bits
  }

  bool offer_bindings_;
  uint64_t sequence_ = 0;
  std::vector<std::string> bound_names_;
};

struct ScriptCall {
  std::string function;
  std::vector<uint64_t> args;
};

/// Memory layout for kir-level runs: globals at kGlobalBase, alloca stack
/// in the top quarter. (The knic script uses kBase itself as the MMIO
/// base, which stays below kGlobalBase.)
constexpr uint64_t kGlobalBase = FlatMemory::kBase + 0x5000;
constexpr uint64_t kStackBase = FlatMemory::kBase + 0xc000;
constexpr uint64_t kStackSize = 0x4000;

enum class EngineKind { kInterp, kVmBound, kVmUnbound };

/// One engine instance with everything it runs against.
struct EngineRun {
  std::unique_ptr<Module> module;
  std::unique_ptr<FlatMemory> memory;
  std::unique_ptr<RecordingResolver> resolver;
  std::unique_ptr<ExecutionEngine> engine;
};

EngineRun MakeRun(const std::string& text, EngineKind kind,
                  const InterpConfig& base_config) {
  EngineRun run;
  auto parsed = ParseModule(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  run.module = std::move(*parsed);
  run.memory = std::make_unique<FlatMemory>();
  run.resolver =
      std::make_unique<RecordingResolver>(kind == EngineKind::kVmBound);

  // Deterministic global layout, identical across engines; initializers
  // written straight into the flat memory the way the loader would.
  std::unordered_map<std::string, uint64_t> globals;
  uint64_t next = kGlobalBase;
  for (const auto& global : run.module->globals()) {
    globals[global->name()] = next;
    const std::string& init = global->init_bytes();
    for (size_t i = 0; i < init.size(); ++i) {
      run.memory->bytes()[next - FlatMemory::kBase + i] =
          static_cast<uint8_t>(init[i]);
    }
    next += AlignUp(std::max<uint64_t>(global->size_bytes(), 8), 16);
  }
  EXPECT_LE(next, kStackBase) << "globals overflow the test data region";

  InterpConfig config = base_config;
  config.stack_base = kStackBase;
  config.stack_size = kStackSize;

  if (kind == EngineKind::kInterp) {
    run.engine = std::make_unique<Interpreter>(
        *run.module, *run.memory, *run.resolver, std::move(globals), config);
    return run;
  }
  auto bytecode = kir::CompileToBytecode(*run.module);
  EXPECT_TRUE(bytecode.ok()) << bytecode.status().ToString();
  auto vm = VM::Create(std::move(*bytecode), *run.memory, *run.resolver,
                       globals, config);
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  run.engine = std::move(*vm);
  return run;
}

void ExpectStatsEqual(const InterpStats& a, const InterpStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.loads, b.loads) << label;
  EXPECT_EQ(a.stores, b.stores) << label;
  EXPECT_EQ(a.calls_internal, b.calls_internal) << label;
  EXPECT_EQ(a.calls_external, b.calls_external) << label;
}

/// Per-call observations ("value" or status string) keyed by run tag, so
/// the two VM variants can be compared against each other as well as
/// against the oracle.
std::map<std::string, std::vector<std::string>> results_by_tag_;

/// Drive the script through the interpreter and through the VM (once with
/// pre-bound externs, once over the name fallback) and require the three
/// to be observationally identical.
void RunDifferential(const std::string& text,
                     const std::vector<ScriptCall>& script,
                     const std::string& label,
                     const InterpConfig& config = InterpConfig()) {
  EngineRun oracle = MakeRun(text, EngineKind::kInterp, config);
  for (EngineKind kind : {EngineKind::kVmBound, EngineKind::kVmUnbound}) {
    EngineRun vm = MakeRun(text, kind, config);
    const std::string tag =
        label + (kind == EngineKind::kVmBound ? " [bound]" : " [unbound]");
    ASSERT_NE(vm.engine, nullptr) << tag;
    EXPECT_EQ(vm.engine->engine_name(), "bytecode");

    for (size_t i = 0; i < script.size(); ++i) {
      // Re-running the oracle per VM variant would double-count its
      // stats; run it only alongside the first variant and replay its
      // recorded observations for the second.
      auto expected = (kind == EngineKind::kVmBound)
                          ? oracle.engine->Call(script[i].function,
                                                script[i].args)
                          : Result<uint64_t>(uint64_t{0});
      auto actual = vm.engine->Call(script[i].function, script[i].args);
      if (kind == EngineKind::kVmBound) {
        ASSERT_EQ(expected.ok(), actual.ok())
            << tag << " call " << i << " @" << script[i].function << ": "
            << (expected.ok() ? actual.status().ToString()
                              : expected.status().ToString());
        if (expected.ok()) {
          EXPECT_EQ(*expected, *actual)
              << tag << " call " << i << " @" << script[i].function;
        } else {
          EXPECT_EQ(expected.status().ToString(), actual.status().ToString())
              << tag << " call " << i;
        }
      }
      results_by_tag_[tag].push_back(
          actual.ok() ? std::to_string(*actual) : actual.status().ToString());
    }

    EXPECT_EQ(oracle.memory->bytes(), vm.memory->bytes()) << tag;
    EXPECT_EQ(oracle.resolver->calls.size(), vm.resolver->calls.size()) << tag;
    const size_t n =
        std::min(oracle.resolver->calls.size(), vm.resolver->calls.size());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(oracle.resolver->calls[i], vm.resolver->calls[i])
          << tag << " external call " << i << " ("
          << oracle.resolver->calls[i].name << " vs "
          << vm.resolver->calls[i].name << ")";
    }
    ExpectStatsEqual(oracle.engine->stats(), vm.engine->stats(), tag);
  }
  // The two VM variants must agree with each other too (the unbound one
  // was not compared against the oracle call-by-call above).
  EXPECT_EQ(results_by_tag_[label + " [bound]"],
            results_by_tag_[label + " [unbound]"])
      << label;
  results_by_tag_.clear();
}

/// Per-corpus-module call scripts. Addresses are within the flat test
/// memory; the knic script uses the memory base itself as its "MMIO" BAR
/// (no device at kir level — both engines just see plain memory).
std::vector<ScriptCall> ScriptFor(const std::string& module_name) {
  if (module_name == "kop_hello") {
    return {{"init", {}}};
  }
  if (module_name == "kop_ringbuf") {
    std::vector<ScriptCall> script{{"rb_init", {}}};
    for (uint64_t i = 0; i < 10; ++i) script.push_back({"rb_push", {i * 17}});
    script.push_back({"rb_pop", {}});
    script.push_back({"rb_pop", {}});
    script.push_back({"rb_size", {}});
    return script;
  }
  if (module_name == "kop_scribbler") {
    return {{"scribble", {0x2000, 0xdeadbeef}},
            {"peek", {0x2000}},
            {"scribble_range", {0x2100, 8, 0x55}},
            {"peek", {0x2110}}};
  }
  if (module_name == "kop_memcopy") {
    return {{"fill", {32, 9}}, {"copy", {32}}, {"checksum", {32}}};
  }
  if (module_name == "kop_privuser") {
    return {{"disable_interrupts", {}}, {"write_msr", {0x1b, 0x1234}},
            {"halt", {}}};
  }
  if (module_name == "kop_knic") {
    return {{"knic_init", {FlatMemory::kBase}},
            {"knic_fill", {64, 0x20}},
            {"knic_send", {FlatMemory::kBase, 64}},
            {"knic_send", {FlatMemory::kBase, 64}},
            {"knic_send", {FlatMemory::kBase, 64}},
            {"knic_sent_hw", {FlatMemory::kBase}}};
  }
  if (module_name == "kop_knic_mq") {
    std::vector<ScriptCall> script{{"mq_init", {FlatMemory::kBase, 4}},
                                   {"mq_fill", {64, 0x20}}};
    script.push_back({"mq_send", {FlatMemory::kBase, 0, 64}});
    script.push_back({"mq_send", {FlatMemory::kBase, 2, 64}});
    script.push_back({"mq_send_batch", {FlatMemory::kBase, 1, 64, 5}});
    script.push_back({"mq_send_batch", {FlatMemory::kBase, 3, 60, 2}});
    for (uint64_t q = 0; q < 4; ++q) script.push_back({"mq_sent", {q}});
    script.push_back({"mq_sent_hw", {FlatMemory::kBase}});
    return script;
  }
  if (module_name == "kop_icall") {
    std::vector<ScriptCall> script{{"vt_init", {}}};
    for (uint64_t i = 0; i < 9; ++i) {
      script.push_back({"vt_call", {i % 3, i * 5 + 3, i + 1}});
    }
    script.push_back({"vt_pick", {0, 7, 2}});
    script.push_back({"vt_pick", {1, 7, 2}});
    script.push_back({"vt_acc", {}});
    return script;
  }
  ADD_FAILURE() << "no script for corpus module " << module_name;
  return {};
}

// ---------------------------------------------------------------------------
// kir-level differential: transformed corpus modules
// ---------------------------------------------------------------------------

TEST(EngineDifferentialTest, TransformedCorpusModulesMatchUnderBothEngines) {
  for (const kirmods::CorpusEntry& entry : kirmods::AllCorpusModules()) {
    SCOPED_TRACE(entry.name);
    auto compiled = transform::CompileModuleText(entry.source);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    RunDifferential(compiled->text, ScriptFor(entry.name), entry.name);
  }
}

TEST(EngineDifferentialTest, UntransformedCorpusModulesMatchToo) {
  // No guards, so the bytecode path sees modules whose only externals are
  // printk-style symbols and raw intrinsics.
  for (const kirmods::CorpusEntry& entry : kirmods::AllCorpusModules()) {
    SCOPED_TRACE(entry.name);
    RunDifferential(entry.source, ScriptFor(entry.name),
                    entry.name + " (untransformed)");
  }
}

// ---------------------------------------------------------------------------
// kir-level differential: targeted semantics and error paths
// ---------------------------------------------------------------------------

TEST(EngineDifferentialTest, NarrowTypeArithmeticAndComparisons) {
  const std::string text = R"(module "m"
func @mix(i64 %x, i64 %y) -> i64 {
entry:
  %a8 = trunc i64 %x to i8
  %b8 = trunc i64 %y to i8
  %lt = icmp slt i8 %a8, %b8
  %ult = icmp ult i8 %a8, %b8
  %sx = sext i8 %a8 to i64
  %zx = zext i8 %a8 to i64
  %sh = shl i8 %a8, %b8
  %sr = ashr i8 %a8, %b8
  %lr = lshr i8 %a8, %b8
  %sum0 = add i64 %sx, %zx
  %t1 = zext i1 %lt to i64
  %t2 = zext i1 %ult to i64
  %s1 = zext i8 %sh to i64
  %s2 = zext i8 %sr to i64
  %s3 = zext i8 %lr to i64
  %sum1 = add i64 %sum0, %t1
  %sum2 = add i64 %sum1, %t2
  %sum3 = add i64 %sum2, %s1
  %sum4 = add i64 %sum3, %s2
  %sum5 = add i64 %sum4, %s3
  ret i64 %sum5
}
)";
  std::vector<ScriptCall> script;
  const uint64_t samples[] = {0,    1,    2,     7,      0x7f, 0x80,
                              0xff, 0x100, 0xdead, ~uint64_t{0}};
  for (uint64_t x : samples) {
    for (uint64_t y : samples) script.push_back({"mix", {x, y}});
  }
  RunDifferential(text, script, "narrow-arith");
}

TEST(EngineDifferentialTest, PhiLoopsAndSelect) {
  const std::string text = R"(module "m"
func @collatz_steps(i64 %n) -> i64 {
entry:
  jmp head
head:
  %v = phi i64 [ %n, entry ], [ %next, body ]
  %steps = phi i64 [ 0, entry ], [ %steps1, body ]
  %done = icmp ule i64 %v, 1
  br %done, out, body
body:
  %bit = and i64 %v, 1
  %odd = icmp eq i64 %bit, 1
  %half = lshr i64 %v, 1
  %trip0 = mul i64 %v, 3
  %trip = add i64 %trip0, 1
  %next = select %odd, i64 %trip, %half
  %steps1 = add i64 %steps, 1
  jmp head
out:
  ret i64 %steps
}
)";
  std::vector<ScriptCall> script;
  for (uint64_t n : {0, 1, 2, 6, 7, 27, 97}) script.push_back(
      {"collatz_steps", {n}});
  RunDifferential(text, script, "phi-loops");
}

TEST(EngineDifferentialTest, InternalCallsAndRecursion) {
  const std::string text = R"(module "m"
func @fib(i64 %n) -> i64 {
entry:
  %small = icmp ult i64 %n, 2
  br %small, base, rec
base:
  ret i64 %n
rec:
  %n1 = sub i64 %n, 1
  %n2 = sub i64 %n, 2
  %a = call i64 @fib(i64 %n1)
  %b = call i64 @fib(i64 %n2)
  %s = add i64 %a, %b
  ret i64 %s
}
func @entry(i64 %n) -> i64 {
entry:
  %r = call i64 @fib(i64 %n)
  ret i64 %r
}
)";
  RunDifferential(text, {{"entry", {10}}, {"fib", {15}}}, "recursion");
}

TEST(EngineDifferentialTest, ErrorPathsAreIdentical) {
  const std::string text = R"(module "m"
func @div(i64 %a, i64 %b) -> i64 {
entry:
  %q = sdiv i64 %a, %b
  ret i64 %q
}
func @spin() -> i64 {
entry:
  jmp loop
loop:
  jmp loop
}
func @deep(i64 %n) -> i64 {
entry:
  %r = call i64 @deep(i64 %n)
  ret i64 %r
}
func @bigalloc() -> i64 {
entry:
  %p = alloca 1048576
  %v = ptrtoint ptr %p to i64
  ret i64 %v
}
)";
  InterpConfig config;
  config.max_steps = 1000;
  RunDifferential(text,
                  {{"div", {10, 0}},
                   {"div", {10, 3}},
                   {"bigalloc", {}},
                   {"missing", {}},
                   {"div", {1}},
                   {"deep", {1}},
                   {"spin", {}}},
                  "errors", config);
}

TEST(EngineDifferentialTest, InlineAsmTrapsIdentically) {
  const std::string text = R"(module "m"
func @bad() -> i64 {
entry:
  asm "cli; mov cr0, rax"
  ret i64 0
}
)";
  RunDifferential(text, {{"bad", {}}}, "inline-asm");
}

// ---------------------------------------------------------------------------
// Bytecode artifacts: guard-site reconstruction and the disassembler
// ---------------------------------------------------------------------------

TEST(BytecodeTest, GuardSiteTableSurvivesLoweringForWholeCorpus) {
  for (const kirmods::CorpusEntry& entry : kirmods::AllCorpusModules()) {
    SCOPED_TRACE(entry.name);
    auto compiled = transform::CompileModuleText(entry.source);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    auto parsed = ParseModule(compiled->text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto bytecode = kir::CompileToBytecode(**parsed);
    ASSERT_TRUE(bytecode.ok()) << bytecode.status().ToString();

    const auto from_ir = transform::EnumerateGuardSites(**parsed);
    const auto from_bc = transform::EnumerateGuardSites(*bytecode);
    EXPECT_EQ(from_ir, from_bc);
    // kop_hello only calls printk_str, so zero sites is correct there.
    if (entry.name != "kop_hello") {
      EXPECT_FALSE(from_ir.empty());
    }
  }
}

TEST(BytecodeTest, DisassemblyListsGuardsAndFunctions) {
  auto compiled = transform::CompileModuleText(kirmods::RingbufSource());
  ASSERT_TRUE(compiled.ok());
  auto parsed = ParseModule(compiled->text);
  ASSERT_TRUE(parsed.ok());
  auto bytecode = kir::CompileToBytecode(**parsed);
  ASSERT_TRUE(bytecode.ok());
  const std::string listing = kir::DisassembleBytecode(*bytecode);
  EXPECT_NE(listing.find("func @rb_push"), std::string::npos);
  EXPECT_NE(listing.find("[guard]"), std::string::npos);
  EXPECT_NE(listing.find("guard.inline @carat_guard"), std::string::npos);
}

TEST(BytecodeTest, DisassemblyListsRangeGuardCovers) {
  // memcopy's duplicate @copied loads widen into carat_guard_range
  // covers, which must lower to the dedicated guard.range op.
  transform::CompileOptions options;
  options.elide_guards = true;
  auto compiled =
      transform::CompileModuleText(kirmods::MemcopySource(), options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto parsed = ParseModule(compiled->text);
  ASSERT_TRUE(parsed.ok());
  auto bytecode = kir::CompileToBytecode(**parsed);
  ASSERT_TRUE(bytecode.ok());
  const std::string listing = kir::DisassembleBytecode(*bytecode);
  EXPECT_NE(listing.find("[range-guard]"), std::string::npos);
  EXPECT_NE(listing.find("guard.range @carat_guard_range"),
            std::string::npos);
}

TEST(BytecodeTest, CompileRejectsNothingInCorpus) {
  for (const kirmods::CorpusEntry& entry : kirmods::AllCorpusModules()) {
    auto parsed = ParseModule(entry.source);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(kir::CompileToBytecode(**parsed).ok()) << entry.name;
  }
}

// ---------------------------------------------------------------------------
// Loader-level differential: full pipeline, real device
// ---------------------------------------------------------------------------

signing::SignedModule CompileAndSign(const std::string& source) {
  auto compiled = transform::CompileModuleText(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

signing::Keyring TrustedKeyring() {
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  return keyring;
}

/// One full simulated-kernel stack wired to a chosen engine.
struct Stack {
  explicit Stack(kernel::ExecEngine engine)
      : loader(&kernel, TrustedKeyring()) {
    loader.set_engine(engine);
    auto inserted = policy::PolicyModule::Insert(&kernel, nullptr,
                                                 policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(inserted.ok()) << inserted.status().ToString();
    policy = std::move(*inserted);
  }

  kernel::Kernel kernel;
  kernel::ModuleLoader loader;
  std::unique_ptr<policy::PolicyModule> policy;
};

/// Per-guard-site attribution rows for one module, keyed by a stable
/// label (tokens are process-global and differ between stacks).
std::map<std::string, std::pair<uint64_t, uint64_t>> SiteHits(
    policy::PolicyModule& policy, const std::string& module_name) {
  std::map<std::string, std::pair<uint64_t, uint64_t>> rows;
  for (const policy::HotSite& row : policy.engine().HotSites()) {
    auto info = trace::GlobalSites().Find(row.site);
    if (!info || info->module_name != module_name) continue;
    rows[info->Label()] = {row.hits, row.denied};
  }
  return rows;
}

TEST(EngineLoaderDifferentialTest, KnicDriverIsIdenticalUnderBothEngines) {
  Stack interp(kernel::ExecEngine::kInterp);
  Stack bytecode(kernel::ExecEngine::kBytecode);

  nic::CountingSink interp_sink, bytecode_sink;
  nic::E1000Device interp_device(&interp.kernel.mem(), &interp_sink);
  nic::E1000Device bytecode_device(&bytecode.kernel.mem(), &bytecode_sink);
  ASSERT_TRUE(interp_device.MapAt(kernel::kVmallocBase).ok());
  ASSERT_TRUE(bytecode_device.MapAt(kernel::kVmallocBase).ok());

  const signing::SignedModule image = CompileAndSign(kirmods::KnicSource());
  auto interp_mod = interp.loader.Insmod(image);
  auto bytecode_mod = bytecode.loader.Insmod(image);
  ASSERT_TRUE(interp_mod.ok()) << interp_mod.status().ToString();
  ASSERT_TRUE(bytecode_mod.ok()) << bytecode_mod.status().ToString();
  EXPECT_EQ((*interp_mod)->engine_name(), "interp");
  EXPECT_EQ((*bytecode_mod)->engine_name(), "bytecode");

  const std::vector<ScriptCall> script = {
      {"knic_init", {kernel::kVmallocBase}},
      {"knic_fill", {64, 0x20}},
      {"knic_send", {kernel::kVmallocBase, 64}},
      {"knic_send", {kernel::kVmallocBase, 64}},
      {"knic_send", {kernel::kVmallocBase, 64}},
      {"knic_sent_hw", {kernel::kVmallocBase}},
  };
  for (const ScriptCall& call : script) {
    auto a = (*interp_mod)->Call(call.function, call.args);
    auto b = (*bytecode_mod)->Call(call.function, call.args);
    ASSERT_EQ(a.ok(), b.ok()) << call.function;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << call.function;
    } else {
      EXPECT_EQ(a.status().ToString(), b.status().ToString());
    }
  }

  // Same frames crossed the simulated wire.
  EXPECT_EQ(interp_sink.packets(), 3u);
  EXPECT_EQ(interp_sink.packets(), bytecode_sink.packets());
  EXPECT_EQ(interp_sink.bytes(), bytecode_sink.bytes());
  EXPECT_EQ(interp_sink.RecentFrames(), bytecode_sink.RecentFrames());

  // Same guard traffic into the policy engine...
  const policy::GuardStats interp_stats = interp.policy->engine().stats();
  const policy::GuardStats bytecode_stats = bytecode.policy->engine().stats();
  EXPECT_GT(interp_stats.guard_calls, 0u);
  EXPECT_EQ(interp_stats.guard_calls, bytecode_stats.guard_calls);
  EXPECT_EQ(interp_stats.allowed, bytecode_stats.allowed);
  EXPECT_EQ(interp_stats.denied, bytecode_stats.denied);
  EXPECT_EQ(interp_stats.intrinsic_calls, bytecode_stats.intrinsic_calls);

  // ...attributed to exactly the same guard sites.
  const auto interp_sites = SiteHits(*interp.policy, "kop_knic");
  const auto bytecode_sites = SiteHits(*bytecode.policy, "kop_knic");
  EXPECT_FALSE(interp_sites.empty());
  EXPECT_EQ(interp_sites, bytecode_sites);

  // And identical execution counters.
  ExpectStatsEqual((*interp_mod)->exec_stats(), (*bytecode_mod)->exec_stats(),
                   "knic loader stats");
}

TEST(EngineLoaderDifferentialTest, QuarantineBehavesIdentically) {
  Stack interp(kernel::ExecEngine::kInterp);
  Stack bytecode(kernel::ExecEngine::kBytecode);
  interp.policy->engine().SetViolationAction(
      policy::ViolationAction::kQuarantine);
  bytecode.policy->engine().SetViolationAction(
      policy::ViolationAction::kQuarantine);
  interp.policy->engine().SetMode(policy::PolicyMode::kDefaultDeny);
  bytecode.policy->engine().SetMode(policy::PolicyMode::kDefaultDeny);
  // This test pins quarantine semantics regardless of KOP_RECOVERY.
  interp.loader.set_recovery_policy(resilience::RecoveryPolicy::kQuarantine);
  bytecode.loader.set_recovery_policy(resilience::RecoveryPolicy::kQuarantine);

  const signing::SignedModule image =
      CompileAndSign(kirmods::ScribblerSource());
  auto interp_mod = interp.loader.Insmod(image);
  auto bytecode_mod = bytecode.loader.Insmod(image);
  ASSERT_TRUE(interp_mod.ok());
  ASSERT_TRUE(bytecode_mod.ok());

  auto a = (*interp_mod)->Call("scribble", {0x10, 0x42});
  auto b = (*bytecode_mod)->Call("scribble", {0x10, 0x42});
  EXPECT_FALSE(a.ok());
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(a.status().ToString(), b.status().ToString());
  EXPECT_TRUE((*interp_mod)->quarantined());
  EXPECT_TRUE((*bytecode_mod)->quarantined());
  EXPECT_EQ((*interp_mod)->quarantine_reason(),
            (*bytecode_mod)->quarantine_reason());
}

TEST(EngineLoaderDifferentialTest,
     PolicyUnloadIsObservedThroughCachedBindings) {
  // The VM binds carat_guard once at insmod. Unloading the policy module
  // unexports the symbol; the generation check must notice and fail the
  // next guarded call exactly like the interpreter's name lookup does.
  Stack interp(kernel::ExecEngine::kInterp);
  Stack bytecode(kernel::ExecEngine::kBytecode);

  const signing::SignedModule image = CompileAndSign(kirmods::RingbufSource());
  auto interp_mod = interp.loader.Insmod(image);
  auto bytecode_mod = bytecode.loader.Insmod(image);
  ASSERT_TRUE(interp_mod.ok());
  ASSERT_TRUE(bytecode_mod.ok());
  ASSERT_TRUE((*interp_mod)->Call("rb_init", {}).ok());
  ASSERT_TRUE((*bytecode_mod)->Call("rb_init", {}).ok());

  interp.policy.reset();    // unexports carat_guard
  bytecode.policy.reset();

  auto a = (*interp_mod)->Call("rb_push", {1});
  auto b = (*bytecode_mod)->Call("rb_push", {1});
  EXPECT_FALSE(a.ok());
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(a.status().ToString(), b.status().ToString());
}

// ---------------------------------------------------------------------------
// Elision differential: covers must be observationally invisible
// ---------------------------------------------------------------------------

signing::SignedModule CompileAndSignElide(const std::string& source,
                                          bool elide) {
  transform::CompileOptions options;
  options.elide_guards = elide;
  auto compiled = transform::CompileModuleText(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

// Every (engine, elision) leg must return the same values and verdicts,
// and the elided accounting must make the access totals line up: for
// widening-only modules, guard_calls + elided on an elided build equals
// guard_calls on the unelided build of the same workload.
TEST(ElisionDifferentialTest, ResultsAndAccountingMatchAcrossLegs) {
  const std::pair<std::string, std::string> modules[] = {
      {"kop_memcopy", kirmods::MemcopySource()},
      {"kop_ringbuf", kirmods::RingbufSource()},
  };
  for (const auto& [name, source] : modules) {
    SCOPED_TRACE(name);

    struct Leg {
      kernel::ExecEngine engine;
      bool elide;
    };
    const Leg legs[] = {
        {kernel::ExecEngine::kInterp, false},
        {kernel::ExecEngine::kInterp, true},
        {kernel::ExecEngine::kBytecode, false},
        {kernel::ExecEngine::kBytecode, true},
    };
    std::vector<std::vector<std::string>> results;
    std::vector<policy::GuardStats> stats;
    for (const Leg& leg : legs) {
      Stack stack(leg.engine);
      auto loaded =
          stack.loader.Insmod(CompileAndSignElide(source, leg.elide));
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      std::vector<std::string> out;
      for (const ScriptCall& call : ScriptFor(name)) {
        auto r = (*loaded)->Call(call.function, call.args);
        out.push_back(r.ok() ? std::to_string(*r)
                             : r.status().ToString());
      }
      results.push_back(std::move(out));
      stats.push_back(stack.policy->engine().stats());
    }
    for (size_t i = 1; i < 4; ++i) {
      EXPECT_EQ(results[0], results[i]) << "leg " << i;
      EXPECT_EQ(stats[0].denied, stats[i].denied) << "leg " << i;
    }
    // Unelided legs never credit elided accesses; elided legs must
    // account for every access the unelided build guarded one by one.
    EXPECT_EQ(stats[0].elided, 0u);
    EXPECT_EQ(stats[2].elided, 0u);
    EXPECT_EQ(stats[0].guard_calls, stats[2].guard_calls);
    EXPECT_EQ(stats[1].guard_calls, stats[3].guard_calls);
    EXPECT_EQ(stats[1].guard_calls + stats[1].elided, stats[0].guard_calls);
    EXPECT_EQ(stats[3].guard_calls + stats[3].elided, stats[2].guard_calls);
    if (name == "kop_memcopy") {
      // memcopy's duplicate @copied loads widen: covers must actually
      // have fired, or this test proves nothing.
      EXPECT_GT(stats[1].elided, 0u);
      EXPECT_GT(stats[3].elided, 0u);
    }
  }
}

// Containment with elision on and off: a denial that lands mid-loop
// must roll back every journaled write identically, quarantine the
// module identically, and report the same violating access.
TEST(ElisionDifferentialTest, ContainmentRollbackIdenticalWithElision) {
  struct Leg {
    std::string error;
    std::string reason;
    std::vector<uint8_t> dst;
    uint64_t copied = 0;
    bool quarantined = false;
  };
  std::vector<Leg> legs;
  for (const bool elide : {false, true}) {
    for (const kernel::ExecEngine engine :
         {kernel::ExecEngine::kInterp, kernel::ExecEngine::kBytecode}) {
      Stack stack(engine);
      auto& engine_ref = stack.policy->engine();
      engine_ref.SetViolationAction(policy::ViolationAction::kQuarantine);
      stack.loader.set_recovery_policy(
          resilience::RecoveryPolicy::kQuarantine);
      auto loaded = stack.loader.Insmod(
          CompileAndSignElide(kirmods::MemcopySource(), elide));
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

      auto src = (*loaded)->GlobalAddress("src");
      auto dst = (*loaded)->GlobalAddress("dst");
      auto copied = (*loaded)->GlobalAddress("copied");
      ASSERT_TRUE(src.ok() && dst.ok() && copied.ok());
      // Allow src and the counter fully, but only the first 64 bytes of
      // dst: copy(16) denies on its 9th store, after 8 journaled
      // iterations that containment must undo.
      engine_ref.SetMode(policy::PolicyMode::kDefaultDeny);
      ASSERT_TRUE(engine_ref.store()
                      .Add(policy::Region{*src, 4096, policy::kProtRW})
                      .ok());
      ASSERT_TRUE(engine_ref.store()
                      .Add(policy::Region{*copied, 8, policy::kProtRW})
                      .ok());
      ASSERT_TRUE(engine_ref.store()
                      .Add(policy::Region{*dst, 64, policy::kProtRW})
                      .ok());

      ASSERT_TRUE((*loaded)->Call("fill", {16, 7}).ok());
      auto denied = (*loaded)->Call("copy", {16});
      ASSERT_FALSE(denied.ok());

      Leg leg;
      leg.error = denied.status().ToString();
      leg.reason = (*loaded)->quarantine_reason();
      leg.quarantined = (*loaded)->quarantined();
      leg.dst.resize(128);
      ASSERT_TRUE(
          stack.kernel.mem().Read(*dst, leg.dst.data(), leg.dst.size()).ok());
      auto counter = stack.kernel.mem().Read64(*copied);
      ASSERT_TRUE(counter.ok());
      leg.copied = *counter;
      legs.push_back(std::move(leg));
    }
  }
  ASSERT_EQ(legs.size(), 4u);
  for (const Leg& leg : legs) {
    EXPECT_TRUE(leg.quarantined);
    // Rollback restored call-entry state: no dst bytes survive, and the
    // counter is back to zero despite 8 committed-then-undone bumps.
    EXPECT_EQ(leg.dst, std::vector<uint8_t>(128, 0));
    EXPECT_EQ(leg.copied, 0u);
  }
  // Same engine, different elision: the violating access (addr, size,
  // flags) is identical; only the site label may differ because site
  // numbering shifts when member guards vanish.
  const auto access_of = [](const std::string& error) {
    return error.substr(0, error.find(" from "));
  };
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(access_of(legs[0].error), access_of(legs[i].error)) << i;
  }
  // Within one elision setting the engines must agree byte for byte.
  EXPECT_EQ(legs[0].error, legs[1].error);
  EXPECT_EQ(legs[2].error, legs[3].error);
  EXPECT_EQ(legs[0].reason, legs[1].reason);
  EXPECT_EQ(legs[2].reason, legs[3].reason);
}

// ---------------------------------------------------------------------------
// The pin/deopt protocol, deterministically
// ---------------------------------------------------------------------------

// A store mutation between two inline checks must deopt exactly once:
// the stale pin fails closed (the slow path re-decides), the refresh
// re-arms the fast path for the rest of the call.
TEST(ElisionDeoptTest, StoreMutationUnderPinDeoptsOnceThenRecovers) {
  kernel::Kernel kernel;
  policy::PolicyEngine engine(&kernel,
                              std::make_unique<policy::RegionTable64>(),
                              policy::PolicyMode::kDefaultAllow);
  engine.SetChargeCycles(false);
  trace::Counter* deopts = trace::GlobalMetrics().GetCounter("guard.deopt");
  const uint64_t before = deopts->value();

  // Unpinned: the fast path refuses (not a deopt — there is no pin).
  EXPECT_FALSE(engine.FastGuard(0x9000, 8, kGuardAccessRead, 0));
  EXPECT_EQ(deopts->value(), before);

  ASSERT_TRUE(engine.PinFrame());
  EXPECT_TRUE(engine.FastGuard(0x9000, 8, kGuardAccessRead, 0));
  EXPECT_TRUE(engine.FastGuardRange(0x9000, 16, kGuardAccessRead, 1, 0));

  // Mutating the live store bumps its generation: the next inline check
  // must notice the stale pin and bail to the slow path.
  ASSERT_TRUE(engine.store()
                  .Add(policy::Region{0x1000, 0x100, policy::kProtNone})
                  .ok());
  EXPECT_FALSE(engine.FastGuard(0x9000, 8, kGuardAccessRead, 0));
  EXPECT_EQ(deopts->value(), before + 1);
  // The deopt refreshed the pin: fast again, against the new frame.
  EXPECT_TRUE(engine.FastGuard(0x9000, 8, kGuardAccessRead, 0));
  EXPECT_FALSE(engine.FastGuard(0x1000, 8, kGuardAccessWrite, 0));
  engine.UnpinFrame();

  // Elided accesses surfaced in the fold.
  EXPECT_EQ(engine.stats().elided, 1u);
}

// ---------------------------------------------------------------------------
// Forged elision provenance is rejected at insmod
// ---------------------------------------------------------------------------

TEST(ElisionProvenanceTest, ForgedAttestationRejectedUnderStaticVerify) {
  transform::CompileOptions options;
  options.elide_guards = true;
  auto compiled =
      transform::CompileModuleText(kirmods::MemcopySource(), options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_FALSE(compiled->attestation.elisions.empty());

  // Forge the cover's span: the claim no longer matches the shipped IR,
  // so even KOP_VERIFY=static (which re-proves coverage instead of
  // trusting the attestation) must refuse the module.
  transform::AttestationRecord forged = compiled->attestation;
  forged.elisions[0].span += 8;
  const signing::SignedModule image = signing::SignModule(
      compiled->text, forged, signing::SigningKey::DevelopmentKey());

  for (const kernel::VerifyMode mode :
       {kernel::VerifyMode::kStatic, kernel::VerifyMode::kBoth,
        kernel::VerifyMode::kAttest}) {
    Stack stack(kernel::ExecEngine::kBytecode);
    stack.loader.set_verify_mode(mode);
    auto loaded = stack.loader.Insmod(image);
    EXPECT_FALSE(loaded.ok()) << kernel::VerifyModeName(mode);
  }

  // The untampered image loads in every mode.
  const signing::SignedModule good = signing::SignModule(
      compiled->text, compiled->attestation,
      signing::SigningKey::DevelopmentKey());
  for (const kernel::VerifyMode mode :
       {kernel::VerifyMode::kStatic, kernel::VerifyMode::kBoth,
        kernel::VerifyMode::kAttest}) {
    Stack stack(kernel::ExecEngine::kBytecode);
    stack.loader.set_verify_mode(mode);
    EXPECT_TRUE(stack.loader.Insmod(good).ok())
        << kernel::VerifyModeName(mode);
  }
}

// ---------------------------------------------------------------------------
// CFI differential: gating must be observationally invisible for honest
// modules and the only thing standing between a forged pointer and a jump
// ---------------------------------------------------------------------------

signing::SignedModule CompileAndSignCfi(const std::string& source, bool cfi) {
  transform::CompileOptions options;
  options.inject_cfi_checks = cfi;
  auto compiled = transform::CompileModuleText(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

// Every (engine, cfi) leg of the honest icall module must return the same
// values; CFI-on legs route every indirect call through carat_cfi_check
// with zero denials, CFI-off legs never consult it.
TEST(CfiDifferentialTest, HonestModuleIsIdenticalWithCfiOnAndOff) {
  struct Leg {
    kernel::ExecEngine engine;
    bool cfi;
  };
  const Leg legs[] = {
      {kernel::ExecEngine::kInterp, false},
      {kernel::ExecEngine::kInterp, true},
      {kernel::ExecEngine::kBytecode, false},
      {kernel::ExecEngine::kBytecode, true},
  };
  std::vector<std::vector<std::string>> results;
  std::vector<policy::GuardStats> stats;
  for (const Leg& leg : legs) {
    Stack stack(leg.engine);
    auto loaded =
        stack.loader.Insmod(CompileAndSignCfi(kirmods::IcallSource(), leg.cfi));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::vector<std::string> out;
    for (const ScriptCall& call : ScriptFor("kop_icall")) {
      auto r = (*loaded)->Call(call.function, call.args);
      out.push_back(r.ok() ? std::to_string(*r) : r.status().ToString());
    }
    results.push_back(std::move(out));
    stats.push_back(stack.policy->engine().stats());
  }
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(results[0], results[i]) << "leg " << i;
  }
  EXPECT_EQ(stats[0].cfi_checks, 0u);
  EXPECT_EQ(stats[2].cfi_checks, 0u);
  // 9 vt_call + 2 vt_pick indirect calls, each gated exactly once.
  EXPECT_EQ(stats[1].cfi_checks, 11u);
  EXPECT_EQ(stats[1].cfi_checks, stats[3].cfi_checks);
  for (const policy::GuardStats& s : stats) {
    EXPECT_EQ(s.cfi_denied, 0u);
  }
}

// A forged vtable entry pointing at a real, signature-compatible function
// that is outside every attested legal-target set: with CFI the call is
// contained under the "cfi" reason identically on both engines; without
// CFI it SUCCEEDS — a silent control-flow hijack the memory guards never
// see.
TEST(CfiDifferentialTest, ForgedVtableEntryContainedOnlyUnderCfi) {
  for (const kernel::ExecEngine engine :
       {kernel::ExecEngine::kInterp, kernel::ExecEngine::kBytecode}) {
    SCOPED_TRACE(kernel::ExecEngineName(engine));
    for (const bool cfi : {true, false}) {
      Stack stack(engine);
      stack.policy->engine().SetViolationAction(
          policy::ViolationAction::kQuarantine);
      stack.loader.set_recovery_policy(
          resilience::RecoveryPolicy::kQuarantine);
      auto loaded = stack.loader.Insmod(
          CompileAndSignCfi(kirmods::IcallSource(), cfi));
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ASSERT_TRUE((*loaded)->Call("vt_init", {}).ok());

      // Scribble slot 0 with @h_spare — compatible signature, never
      // address-taken, so it belongs to no legal-target set.
      const int spare = (*loaded)->ir().FunctionIndex("h_spare");
      ASSERT_GE(spare, 0);
      auto vtable = (*loaded)->GlobalAddress("vtable");
      ASSERT_TRUE(vtable.ok());
      ASSERT_TRUE(stack.kernel.mem()
                      .Write64(*vtable, kir::FunctionAddressForIndex(
                                            static_cast<uint32_t>(spare)))
                      .ok());

      auto hijacked = (*loaded)->Call("vt_call", {0, 5, 3});
      if (cfi) {
        ASSERT_FALSE(hijacked.ok());
        EXPECT_TRUE((*loaded)->quarantined());
        EXPECT_NE((*loaded)->quarantine_reason().find("cfi violation"),
                  std::string::npos)
            << (*loaded)->quarantine_reason();
        EXPECT_GT(stack.policy->engine().stats().cfi_denied, 0u);
      } else {
        // h_spare(5, 3) runs to completion: returns %b and side-effects
        // @acc — the hijack is invisible without CFI.
        ASSERT_TRUE(hijacked.ok()) << hijacked.status().ToString();
        EXPECT_EQ(*hijacked, 3u);
        EXPECT_FALSE((*loaded)->quarantined());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine selection plumbing
// ---------------------------------------------------------------------------

TEST(EngineSelectionTest, EnvVarSelectsEngine) {
  ::setenv("KOP_ENGINE", "interp", 1);
  EXPECT_EQ(kernel::DefaultExecEngine(), kernel::ExecEngine::kInterp);
  ::setenv("KOP_ENGINE", "bytecode", 1);
  EXPECT_EQ(kernel::DefaultExecEngine(), kernel::ExecEngine::kBytecode);
  ::unsetenv("KOP_ENGINE");
  EXPECT_EQ(kernel::DefaultExecEngine(), kernel::ExecEngine::kBytecode);
  EXPECT_EQ(kernel::ExecEngineName(kernel::ExecEngine::kInterp), "interp");
  EXPECT_EQ(kernel::ExecEngineName(kernel::ExecEngine::kBytecode),
            "bytecode");
}

}  // namespace
}  // namespace kop
