// kop::nic: register file semantics, descriptor-ring DMA engine,
// writeback, interrupts, packet sink.
#include <gtest/gtest.h>

#include <cstring>

#include "kop/kernel/address_space.hpp"
#include "kop/nic/e1000_device.hpp"

namespace kop::nic {
namespace {

class NicTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kMmio = 0xffffc90000000000ull;
  static constexpr uint64_t kRam = 0xffff888000000000ull;
  static constexpr uint32_t kRingEntries = 16;

  NicTest() : device_(&mem_, &sink_) {
    EXPECT_TRUE(mem_.MapRam("ram", kRam, 1 << 20).ok());
    EXPECT_TRUE(device_.MapAt(kMmio).ok());
  }

  uint32_t Read32(uint64_t reg) {
    auto value = mem_.Read32(kMmio + reg);
    EXPECT_TRUE(value.ok());
    return value.ok() ? *value : 0;
  }
  void Write32(uint64_t reg, uint32_t value) {
    EXPECT_TRUE(mem_.Write32(kMmio + reg, value).ok());
  }

  /// Bring the transmitter up with a ring at kRam.
  void SetupRing() {
    Write32(REG_CTRL, CTRL_SLU);
    Write32(REG_TDBAL, static_cast<uint32_t>(kRam));
    Write32(REG_TDBAH, static_cast<uint32_t>(kRam >> 32));
    Write32(REG_TDLEN, kRingEntries * kTxDescBytes);
    Write32(REG_TDH, 0);
    Write32(REG_TDT, 0);
    Write32(REG_TCTL, TCTL_EN | TCTL_PSP);
  }

  /// Stage a descriptor at ring index `i` pointing at `payload`.
  void StageDescriptor(uint32_t i, uint64_t buffer, uint16_t length,
                       uint8_t cmd) {
    LegacyTxDescriptor desc{};
    desc.buffer_addr = buffer;
    desc.length = length;
    desc.cmd = cmd;
    uint8_t raw[kTxDescBytes];
    std::memcpy(raw, &desc, sizeof(desc));
    ASSERT_TRUE(mem_.Write(kRam + i * kTxDescBytes, raw, sizeof(raw)).ok());
  }

  void WritePayload(uint64_t addr, const std::vector<uint8_t>& bytes) {
    ASSERT_TRUE(mem_.Write(addr, bytes.data(), bytes.size()).ok());
  }

  uint8_t DescriptorStatus(uint32_t i) {
    auto value = mem_.Read8(kRam + i * kTxDescBytes + 12);
    EXPECT_TRUE(value.ok());
    return value.ok() ? *value : 0;
  }

  kernel::AddressSpace mem_;
  CountingSink sink_;
  E1000Device device_;
};

TEST_F(NicTest, ResetClearsState) {
  Write32(REG_CTRL, CTRL_SLU);
  EXPECT_EQ(Read32(REG_STATUS) & STATUS_LU, STATUS_LU);
  Write32(REG_CTRL, CTRL_RST);
  EXPECT_EQ(Read32(REG_STATUS) & STATUS_LU, 0u);
  EXPECT_EQ(Read32(REG_TDT), 0u);
}

TEST_F(NicTest, LinkUpSetsStatusAndCause) {
  Write32(REG_IMS, ICR_LSC);
  Write32(REG_CTRL, CTRL_SLU);
  EXPECT_EQ(Read32(REG_STATUS) & STATUS_LU, STATUS_LU);
  EXPECT_EQ(device_.PendingInterrupts() & ICR_LSC, ICR_LSC);
  // ICR is read-to-clear.
  EXPECT_NE(Read32(REG_ICR) & ICR_LSC, 0u);
  EXPECT_EQ(Read32(REG_ICR), 0u);
}

TEST_F(NicTest, TransmitsSingleFrame) {
  SetupRing();
  const uint64_t payload = kRam + 0x8000;
  std::vector<uint8_t> frame(64);
  for (size_t i = 0; i < frame.size(); ++i) frame[i] = uint8_t(i);
  WritePayload(payload, frame);
  StageDescriptor(0, payload, 64, TXD_CMD_EOP | TXD_CMD_RS);
  Write32(REG_TDT, 1);  // tail bump triggers processing

  EXPECT_EQ(sink_.packets(), 1u);
  EXPECT_EQ(sink_.bytes(), 64u);
  EXPECT_EQ(sink_.RecentFrames()[0], frame);
  EXPECT_EQ(Read32(REG_TDH), 1u);
  EXPECT_EQ(Read32(REG_GPTC), 1u);
  EXPECT_EQ(Read32(REG_GOTCL), 64u);
  // DD written back because RS was set.
  EXPECT_EQ(DescriptorStatus(0) & TXD_STAT_DD, TXD_STAT_DD);
}

TEST_F(NicTest, NoWritebackWithoutRs) {
  SetupRing();
  const uint64_t payload = kRam + 0x8000;
  WritePayload(payload, std::vector<uint8_t>(32, 0xaa));
  StageDescriptor(0, payload, 32, TXD_CMD_EOP);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 1u);
  EXPECT_EQ(DescriptorStatus(0) & TXD_STAT_DD, 0u);
  EXPECT_EQ(device_.stats().writebacks, 0u);
}

TEST_F(NicTest, MultiDescriptorFrameConcatenates) {
  SetupRing();
  const uint64_t part1 = kRam + 0x8000;
  const uint64_t part2 = kRam + 0x9000;
  WritePayload(part1, std::vector<uint8_t>(10, 0x11));
  WritePayload(part2, std::vector<uint8_t>(20, 0x22));
  StageDescriptor(0, part1, 10, 0);                        // no EOP yet
  StageDescriptor(1, part2, 20, TXD_CMD_EOP | TXD_CMD_RS);
  Write32(REG_TDT, 2);
  ASSERT_EQ(sink_.packets(), 1u);
  const auto frame = sink_.RecentFrames()[0];
  ASSERT_EQ(frame.size(), 30u);
  EXPECT_EQ(frame[0], 0x11);
  EXPECT_EQ(frame[29], 0x22);
}

TEST_F(NicTest, RingWrapsAround) {
  SetupRing();
  const uint64_t payload = kRam + 0x8000;
  WritePayload(payload, std::vector<uint8_t>(16, 0x5a));
  uint32_t tail = 0;
  // Send 2.5 rings worth of packets one at a time.
  for (int i = 0; i < 40; ++i) {
    StageDescriptor(tail, payload, 16, TXD_CMD_EOP | TXD_CMD_RS);
    tail = (tail + 1) % kRingEntries;
    Write32(REG_TDT, tail);
  }
  EXPECT_EQ(sink_.packets(), 40u);
  EXPECT_EQ(Read32(REG_TDH), 40u % kRingEntries);
}

TEST_F(NicTest, DisabledTransmitterDoesNothing) {
  SetupRing();
  Write32(REG_TCTL, 0);  // disable
  StageDescriptor(0, kRam + 0x8000, 16, TXD_CMD_EOP);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);
  EXPECT_EQ(Read32(REG_TDH), 0u);
  // Re-enable and kick: processes now.
  Write32(REG_TCTL, TCTL_EN);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 1u);
}

TEST_F(NicTest, NoLinkNoTransmit) {
  SetupRing();
  Write32(REG_CTRL, 0);  // does not clear SLU... set up without link:
  Write32(REG_CTRL, CTRL_RST);
  // After reset everything is down; re-program without SLU.
  Write32(REG_TDBAL, static_cast<uint32_t>(kRam));
  Write32(REG_TDBAH, static_cast<uint32_t>(kRam >> 32));
  Write32(REG_TDLEN, kRingEntries * kTxDescBytes);
  Write32(REG_TCTL, TCTL_EN);
  StageDescriptor(0, kRam + 0x8000, 16, TXD_CMD_EOP);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);
}

TEST_F(NicTest, TxInterruptsAccumulateAndMask) {
  SetupRing();
  Write32(REG_IMS, ICR_TXDW);
  WritePayload(kRam + 0x8000, std::vector<uint8_t>(16, 1));
  StageDescriptor(0, kRam + 0x8000, 16, TXD_CMD_EOP | TXD_CMD_RS);
  Write32(REG_TDT, 1);
  EXPECT_NE(device_.PendingInterrupts() & ICR_TXDW, 0u);
  // TXQE raised when the ring drained.
  EXPECT_NE(Read32(REG_ICR) & ICR_TXQE, 0u);
  // Mask clear: no pending even if causes accumulate.
  Write32(REG_IMC, ICR_TXDW | ICR_TXQE);
  StageDescriptor(1, kRam + 0x8000, 16, TXD_CMD_EOP | TXD_CMD_RS);
  Write32(REG_TDT, 2);
  EXPECT_EQ(device_.PendingInterrupts(), 0u);
}

TEST_F(NicTest, BadDescriptorAddressCountsAndStops) {
  SetupRing();
  StageDescriptor(0, 0xdeadbeef0000ull, 64, TXD_CMD_EOP);  // unmapped
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);
  EXPECT_EQ(device_.stats().bad_descriptors, 1u);
}

TEST_F(NicTest, UnmappedRingStallsDevice) {
  Write32(REG_CTRL, CTRL_SLU);
  Write32(REG_TDBAL, 0x12340000u);  // nowhere
  Write32(REG_TDBAH, 0);
  Write32(REG_TDLEN, kRingEntries * kTxDescBytes);
  Write32(REG_TCTL, TCTL_EN);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);
  EXPECT_EQ(device_.stats().bad_descriptors, 1u);
}

TEST_F(NicTest, GoodOctetCounterIs64Bit) {
  SetupRing();
  WritePayload(kRam + 0x8000, std::vector<uint8_t>(1024, 7));
  for (int i = 0; i < 8; ++i) {
    StageDescriptor(i, kRam + 0x8000, 1024, TXD_CMD_EOP);
    Write32(REG_TDT, i + 1);
  }
  EXPECT_EQ(Read32(REG_GOTCL), 8u * 1024);
  EXPECT_EQ(Read32(REG_GOTCH), 0u);
}

TEST_F(NicTest, EepromReadProtocol) {
  const uint8_t mac[6] = {0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xf0};
  device_.SetNvmMac(mac);
  // Read word 0 through EERD: START|(0<<8) -> DONE + data in [31:16].
  Write32(REG_EERD, EERD_START);
  uint32_t eerd = Read32(REG_EERD);
  EXPECT_NE(eerd & EERD_DONE, 0u);
  EXPECT_EQ(eerd >> EERD_DATA_SHIFT, 0xbbaau);
  Write32(REG_EERD, EERD_START | (2u << EERD_ADDR_SHIFT));
  eerd = Read32(REG_EERD);
  EXPECT_EQ(eerd >> EERD_DATA_SHIFT, 0xf0eeu);
  // Out-of-range NVM word reads as erased flash.
  Write32(REG_EERD, EERD_START | (200u << EERD_ADDR_SHIFT));
  EXPECT_EQ(Read32(REG_EERD) >> EERD_DATA_SHIFT, 0xffffu);
  // Clearing START clears the latch.
  Write32(REG_EERD, 0);
  EXPECT_EQ(Read32(REG_EERD), 0u);
}

TEST_F(NicTest, MacAddressRegistersStick) {
  Write32(REG_RAL0, 0x12345678);
  Write32(REG_RAH0, 0x00009abc);
  EXPECT_EQ(Read32(REG_RAL0), 0x12345678u);
  EXPECT_EQ(Read32(REG_RAH0), 0x00009abcu);
}

TEST_F(NicTest, ManualProcessingMode) {
  device_.set_auto_process(false);
  SetupRing();
  WritePayload(kRam + 0x8000, std::vector<uint8_t>(16, 3));
  StageDescriptor(0, kRam + 0x8000, 16, TXD_CMD_EOP);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);  // not yet
  device_.ProcessTransmitRing();
  EXPECT_EQ(sink_.packets(), 1u);
}

class NicRxTest : public NicTest {
 protected:
  static constexpr uint64_t kRxRing = kRam + 0x40000;
  static constexpr uint64_t kRxBufs = kRam + 0x50000;

  void SetupRxRing() {
    Write32(REG_CTRL, CTRL_SLU);
    Write32(REG_RDBAL, static_cast<uint32_t>(kRxRing));
    Write32(REG_RDBAH, static_cast<uint32_t>(kRxRing >> 32));
    Write32(REG_RDLEN, kRingEntries * kRxDescBytes);
    Write32(REG_RDH, 0);
    // Arm all descriptors with buffers; classic one-slot gap.
    for (uint32_t i = 0; i < kRingEntries; ++i) {
      LegacyRxDescriptor desc{};
      desc.buffer_addr = kRxBufs + uint64_t{i} * 2048;
      uint8_t raw[kRxDescBytes];
      std::memcpy(raw, &desc, sizeof(desc));
      ASSERT_TRUE(
          mem_.Write(kRxRing + i * kRxDescBytes, raw, sizeof(raw)).ok());
    }
    Write32(REG_RDT, kRingEntries - 1);
    Write32(REG_RCTL, RCTL_EN | RCTL_BAM);
  }

  LegacyRxDescriptor ReadRxDescriptor(uint32_t i) {
    LegacyRxDescriptor desc{};
    uint8_t raw[kRxDescBytes];
    EXPECT_TRUE(mem_.Read(kRxRing + i * kRxDescBytes, raw, sizeof(raw)).ok());
    std::memcpy(&desc, raw, sizeof(desc));
    return desc;
  }
};

TEST_F(NicRxTest, ReceivesFrameIntoArmedBuffer) {
  SetupRxRing();
  Write32(REG_IMS, ICR_RXT0);
  std::vector<uint8_t> frame(100);
  for (size_t i = 0; i < frame.size(); ++i) frame[i] = uint8_t(i * 3);
  ASSERT_TRUE(device_.ReceiveFrame(frame));

  const LegacyRxDescriptor desc = ReadRxDescriptor(0);
  EXPECT_EQ(desc.length, 100u);
  EXPECT_EQ(desc.status & RXD_STAT_DD, RXD_STAT_DD);
  EXPECT_EQ(desc.status & RXD_STAT_EOP, RXD_STAT_EOP);
  std::vector<uint8_t> stored(100);
  ASSERT_TRUE(mem_.Read(kRxBufs, stored.data(), stored.size()).ok());
  EXPECT_EQ(stored, frame);
  EXPECT_EQ(Read32(REG_RDH), 1u);
  EXPECT_EQ(Read32(REG_GPRC), 1u);
  EXPECT_NE(device_.PendingInterrupts() & ICR_RXT0, 0u);
}

TEST_F(NicRxTest, DropsWhenReceiverDisabled) {
  Write32(REG_CTRL, CTRL_SLU);
  EXPECT_FALSE(device_.ReceiveFrame(std::vector<uint8_t>(64, 1)));
  EXPECT_EQ(device_.stats().rx_dropped, 1u);
}

TEST_F(NicRxTest, DropsWhenRingExhausted) {
  SetupRxRing();
  // Consume all count-1 available slots.
  for (uint32_t i = 0; i + 1 < kRingEntries; ++i) {
    ASSERT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(64, uint8_t(i))))
        << i;
  }
  EXPECT_FALSE(device_.ReceiveFrame(std::vector<uint8_t>(64, 0xff)));
  EXPECT_EQ(device_.stats().rx_dropped, 1u);
  EXPECT_NE(Read32(REG_ICR) & ICR_RXO, 0u);
  // Software returns one slot: the next frame fits again.
  Write32(REG_RDT, 0);
  EXPECT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(64, 0xaa)));
}

TEST_F(NicRxTest, DropsOversizeFrames) {
  SetupRxRing();
  EXPECT_FALSE(device_.ReceiveFrame(std::vector<uint8_t>(4096, 1)));
  EXPECT_EQ(device_.stats().rx_dropped, 1u);
}

TEST_F(NicTest, SinkRetainsRecentFrames) {
  CountingSink sink(2);
  sink.Deliver({1});
  sink.Deliver({2});
  sink.Deliver({3});
  const auto recent = sink.RecentFrames();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0], std::vector<uint8_t>{2});
  EXPECT_EQ(recent[1], std::vector<uint8_t>{3});
  EXPECT_EQ(sink.packets(), 3u);
  sink.Reset();
  EXPECT_EQ(sink.packets(), 0u);
}

}  // namespace
}  // namespace kop::nic
