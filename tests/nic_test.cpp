// kop::nic: register file semantics, descriptor-ring DMA engine,
// writeback, interrupts, packet sink.
#include <gtest/gtest.h>

#include <cstring>

#include "kop/kernel/address_space.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/sim/clock.hpp"

namespace kop::nic {
namespace {

class NicTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kMmio = 0xffffc90000000000ull;
  static constexpr uint64_t kRam = 0xffff888000000000ull;
  static constexpr uint32_t kRingEntries = 16;

  NicTest() : device_(&mem_, &sink_) {
    EXPECT_TRUE(mem_.MapRam("ram", kRam, 1 << 20).ok());
    EXPECT_TRUE(device_.MapAt(kMmio).ok());
  }

  uint32_t Read32(uint64_t reg) {
    auto value = mem_.Read32(kMmio + reg);
    EXPECT_TRUE(value.ok());
    return value.ok() ? *value : 0;
  }
  void Write32(uint64_t reg, uint32_t value) {
    EXPECT_TRUE(mem_.Write32(kMmio + reg, value).ok());
  }

  /// Bring the transmitter up with a ring at kRam.
  void SetupRing() {
    Write32(REG_CTRL, CTRL_SLU);
    Write32(REG_TDBAL, static_cast<uint32_t>(kRam));
    Write32(REG_TDBAH, static_cast<uint32_t>(kRam >> 32));
    Write32(REG_TDLEN, kRingEntries * kTxDescBytes);
    Write32(REG_TDH, 0);
    Write32(REG_TDT, 0);
    Write32(REG_TCTL, TCTL_EN | TCTL_PSP);
  }

  /// Stage a descriptor at ring index `i` pointing at `payload`.
  void StageDescriptor(uint32_t i, uint64_t buffer, uint16_t length,
                       uint8_t cmd) {
    LegacyTxDescriptor desc{};
    desc.buffer_addr = buffer;
    desc.length = length;
    desc.cmd = cmd;
    uint8_t raw[kTxDescBytes];
    std::memcpy(raw, &desc, sizeof(desc));
    ASSERT_TRUE(mem_.Write(kRam + i * kTxDescBytes, raw, sizeof(raw)).ok());
  }

  void WritePayload(uint64_t addr, const std::vector<uint8_t>& bytes) {
    ASSERT_TRUE(mem_.Write(addr, bytes.data(), bytes.size()).ok());
  }

  uint8_t DescriptorStatus(uint32_t i) {
    auto value = mem_.Read8(kRam + i * kTxDescBytes + 12);
    EXPECT_TRUE(value.ok());
    return value.ok() ? *value : 0;
  }

  kernel::AddressSpace mem_;
  CountingSink sink_;
  E1000Device device_;
};

TEST_F(NicTest, ResetClearsState) {
  Write32(REG_CTRL, CTRL_SLU);
  EXPECT_EQ(Read32(REG_STATUS) & STATUS_LU, STATUS_LU);
  Write32(REG_CTRL, CTRL_RST);
  EXPECT_EQ(Read32(REG_STATUS) & STATUS_LU, 0u);
  EXPECT_EQ(Read32(REG_TDT), 0u);
}

TEST_F(NicTest, LinkUpSetsStatusAndCause) {
  Write32(REG_IMS, ICR_LSC);
  Write32(REG_CTRL, CTRL_SLU);
  EXPECT_EQ(Read32(REG_STATUS) & STATUS_LU, STATUS_LU);
  EXPECT_EQ(device_.PendingInterrupts() & ICR_LSC, ICR_LSC);
  // ICR is read-to-clear.
  EXPECT_NE(Read32(REG_ICR) & ICR_LSC, 0u);
  EXPECT_EQ(Read32(REG_ICR), 0u);
}

TEST_F(NicTest, TransmitsSingleFrame) {
  SetupRing();
  const uint64_t payload = kRam + 0x8000;
  std::vector<uint8_t> frame(64);
  for (size_t i = 0; i < frame.size(); ++i) frame[i] = uint8_t(i);
  WritePayload(payload, frame);
  StageDescriptor(0, payload, 64, TXD_CMD_EOP | TXD_CMD_RS);
  Write32(REG_TDT, 1);  // tail bump triggers processing

  EXPECT_EQ(sink_.packets(), 1u);
  EXPECT_EQ(sink_.bytes(), 64u);
  EXPECT_EQ(sink_.RecentFrames()[0], frame);
  EXPECT_EQ(Read32(REG_TDH), 1u);
  EXPECT_EQ(Read32(REG_GPTC), 1u);
  EXPECT_EQ(Read32(REG_GOTCL), 64u);
  // DD written back because RS was set.
  EXPECT_EQ(DescriptorStatus(0) & TXD_STAT_DD, TXD_STAT_DD);
}

TEST_F(NicTest, NoWritebackWithoutRs) {
  SetupRing();
  const uint64_t payload = kRam + 0x8000;
  WritePayload(payload, std::vector<uint8_t>(32, 0xaa));
  StageDescriptor(0, payload, 32, TXD_CMD_EOP);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 1u);
  EXPECT_EQ(DescriptorStatus(0) & TXD_STAT_DD, 0u);
  EXPECT_EQ(device_.stats().writebacks, 0u);
}

TEST_F(NicTest, MultiDescriptorFrameConcatenates) {
  SetupRing();
  const uint64_t part1 = kRam + 0x8000;
  const uint64_t part2 = kRam + 0x9000;
  WritePayload(part1, std::vector<uint8_t>(10, 0x11));
  WritePayload(part2, std::vector<uint8_t>(20, 0x22));
  StageDescriptor(0, part1, 10, 0);                        // no EOP yet
  StageDescriptor(1, part2, 20, TXD_CMD_EOP | TXD_CMD_RS);
  Write32(REG_TDT, 2);
  ASSERT_EQ(sink_.packets(), 1u);
  const auto frame = sink_.RecentFrames()[0];
  ASSERT_EQ(frame.size(), 30u);
  EXPECT_EQ(frame[0], 0x11);
  EXPECT_EQ(frame[29], 0x22);
}

TEST_F(NicTest, RingWrapsAround) {
  SetupRing();
  const uint64_t payload = kRam + 0x8000;
  WritePayload(payload, std::vector<uint8_t>(16, 0x5a));
  uint32_t tail = 0;
  // Send 2.5 rings worth of packets one at a time.
  for (int i = 0; i < 40; ++i) {
    StageDescriptor(tail, payload, 16, TXD_CMD_EOP | TXD_CMD_RS);
    tail = (tail + 1) % kRingEntries;
    Write32(REG_TDT, tail);
  }
  EXPECT_EQ(sink_.packets(), 40u);
  EXPECT_EQ(Read32(REG_TDH), 40u % kRingEntries);
}

TEST_F(NicTest, DisabledTransmitterDoesNothing) {
  SetupRing();
  Write32(REG_TCTL, 0);  // disable
  StageDescriptor(0, kRam + 0x8000, 16, TXD_CMD_EOP);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);
  EXPECT_EQ(Read32(REG_TDH), 0u);
  // Re-enable and kick: processes now.
  Write32(REG_TCTL, TCTL_EN);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 1u);
}

TEST_F(NicTest, NoLinkNoTransmit) {
  SetupRing();
  Write32(REG_CTRL, 0);  // does not clear SLU... set up without link:
  Write32(REG_CTRL, CTRL_RST);
  // After reset everything is down; re-program without SLU.
  Write32(REG_TDBAL, static_cast<uint32_t>(kRam));
  Write32(REG_TDBAH, static_cast<uint32_t>(kRam >> 32));
  Write32(REG_TDLEN, kRingEntries * kTxDescBytes);
  Write32(REG_TCTL, TCTL_EN);
  StageDescriptor(0, kRam + 0x8000, 16, TXD_CMD_EOP);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);
}

TEST_F(NicTest, TxInterruptsAccumulateAndMask) {
  SetupRing();
  Write32(REG_IMS, ICR_TXDW);
  WritePayload(kRam + 0x8000, std::vector<uint8_t>(16, 1));
  StageDescriptor(0, kRam + 0x8000, 16, TXD_CMD_EOP | TXD_CMD_RS);
  Write32(REG_TDT, 1);
  EXPECT_NE(device_.PendingInterrupts() & ICR_TXDW, 0u);
  // TXQE raised when the ring drained.
  EXPECT_NE(Read32(REG_ICR) & ICR_TXQE, 0u);
  // Mask clear: no pending even if causes accumulate.
  Write32(REG_IMC, ICR_TXDW | ICR_TXQE);
  StageDescriptor(1, kRam + 0x8000, 16, TXD_CMD_EOP | TXD_CMD_RS);
  Write32(REG_TDT, 2);
  EXPECT_EQ(device_.PendingInterrupts(), 0u);
}

TEST_F(NicTest, BadDescriptorAddressCountsAndStops) {
  SetupRing();
  StageDescriptor(0, 0xdeadbeef0000ull, 64, TXD_CMD_EOP);  // unmapped
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);
  EXPECT_EQ(device_.stats().bad_descriptors, 1u);
}

TEST_F(NicTest, UnmappedRingStallsDevice) {
  Write32(REG_CTRL, CTRL_SLU);
  Write32(REG_TDBAL, 0x12340000u);  // nowhere
  Write32(REG_TDBAH, 0);
  Write32(REG_TDLEN, kRingEntries * kTxDescBytes);
  Write32(REG_TCTL, TCTL_EN);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);
  EXPECT_EQ(device_.stats().bad_descriptors, 1u);
}

TEST_F(NicTest, GoodOctetCounterIs64Bit) {
  SetupRing();
  WritePayload(kRam + 0x8000, std::vector<uint8_t>(1024, 7));
  for (int i = 0; i < 8; ++i) {
    StageDescriptor(i, kRam + 0x8000, 1024, TXD_CMD_EOP);
    Write32(REG_TDT, i + 1);
  }
  EXPECT_EQ(Read32(REG_GOTCL), 8u * 1024);
  EXPECT_EQ(Read32(REG_GOTCH), 0u);
}

TEST_F(NicTest, EepromReadProtocol) {
  const uint8_t mac[6] = {0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xf0};
  device_.SetNvmMac(mac);
  // Read word 0 through EERD: START|(0<<8) -> DONE + data in [31:16].
  Write32(REG_EERD, EERD_START);
  uint32_t eerd = Read32(REG_EERD);
  EXPECT_NE(eerd & EERD_DONE, 0u);
  EXPECT_EQ(eerd >> EERD_DATA_SHIFT, 0xbbaau);
  Write32(REG_EERD, EERD_START | (2u << EERD_ADDR_SHIFT));
  eerd = Read32(REG_EERD);
  EXPECT_EQ(eerd >> EERD_DATA_SHIFT, 0xf0eeu);
  // Out-of-range NVM word reads as erased flash.
  Write32(REG_EERD, EERD_START | (200u << EERD_ADDR_SHIFT));
  EXPECT_EQ(Read32(REG_EERD) >> EERD_DATA_SHIFT, 0xffffu);
  // Clearing START clears the latch.
  Write32(REG_EERD, 0);
  EXPECT_EQ(Read32(REG_EERD), 0u);
}

TEST_F(NicTest, MacAddressRegistersStick) {
  Write32(REG_RAL0, 0x12345678);
  Write32(REG_RAH0, 0x00009abc);
  EXPECT_EQ(Read32(REG_RAL0), 0x12345678u);
  EXPECT_EQ(Read32(REG_RAH0), 0x00009abcu);
}

TEST_F(NicTest, ManualProcessingMode) {
  device_.set_auto_process(false);
  SetupRing();
  WritePayload(kRam + 0x8000, std::vector<uint8_t>(16, 3));
  StageDescriptor(0, kRam + 0x8000, 16, TXD_CMD_EOP);
  Write32(REG_TDT, 1);
  EXPECT_EQ(sink_.packets(), 0u);  // not yet
  device_.ProcessTransmitRing();
  EXPECT_EQ(sink_.packets(), 1u);
}

class NicRxTest : public NicTest {
 protected:
  static constexpr uint64_t kRxRing = kRam + 0x40000;
  static constexpr uint64_t kRxBufs = kRam + 0x50000;

  void SetupRxRing() {
    Write32(REG_CTRL, CTRL_SLU);
    Write32(REG_RDBAL, static_cast<uint32_t>(kRxRing));
    Write32(REG_RDBAH, static_cast<uint32_t>(kRxRing >> 32));
    Write32(REG_RDLEN, kRingEntries * kRxDescBytes);
    Write32(REG_RDH, 0);
    // Arm all descriptors with buffers; classic one-slot gap.
    for (uint32_t i = 0; i < kRingEntries; ++i) {
      LegacyRxDescriptor desc{};
      desc.buffer_addr = kRxBufs + uint64_t{i} * 2048;
      uint8_t raw[kRxDescBytes];
      std::memcpy(raw, &desc, sizeof(desc));
      ASSERT_TRUE(
          mem_.Write(kRxRing + i * kRxDescBytes, raw, sizeof(raw)).ok());
    }
    Write32(REG_RDT, kRingEntries - 1);
    Write32(REG_RCTL, RCTL_EN | RCTL_BAM);
  }

  LegacyRxDescriptor ReadRxDescriptor(uint32_t i) {
    LegacyRxDescriptor desc{};
    uint8_t raw[kRxDescBytes];
    EXPECT_TRUE(mem_.Read(kRxRing + i * kRxDescBytes, raw, sizeof(raw)).ok());
    std::memcpy(&desc, raw, sizeof(desc));
    return desc;
  }
};

TEST_F(NicRxTest, ReceivesFrameIntoArmedBuffer) {
  SetupRxRing();
  Write32(REG_IMS, ICR_RXT0);
  std::vector<uint8_t> frame(100);
  for (size_t i = 0; i < frame.size(); ++i) frame[i] = uint8_t(i * 3);
  ASSERT_TRUE(device_.ReceiveFrame(frame));

  const LegacyRxDescriptor desc = ReadRxDescriptor(0);
  EXPECT_EQ(desc.length, 100u);
  EXPECT_EQ(desc.status & RXD_STAT_DD, RXD_STAT_DD);
  EXPECT_EQ(desc.status & RXD_STAT_EOP, RXD_STAT_EOP);
  std::vector<uint8_t> stored(100);
  ASSERT_TRUE(mem_.Read(kRxBufs, stored.data(), stored.size()).ok());
  EXPECT_EQ(stored, frame);
  EXPECT_EQ(Read32(REG_RDH), 1u);
  EXPECT_EQ(Read32(REG_GPRC), 1u);
  EXPECT_NE(device_.PendingInterrupts() & ICR_RXT0, 0u);
}

TEST_F(NicRxTest, DropsWhenReceiverDisabled) {
  Write32(REG_CTRL, CTRL_SLU);
  EXPECT_FALSE(device_.ReceiveFrame(std::vector<uint8_t>(64, 1)));
  EXPECT_EQ(device_.stats().rx_dropped, 1u);
}

TEST_F(NicRxTest, DropsWhenRingExhausted) {
  SetupRxRing();
  // Consume all count-1 available slots.
  for (uint32_t i = 0; i + 1 < kRingEntries; ++i) {
    ASSERT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(64, uint8_t(i))))
        << i;
  }
  EXPECT_FALSE(device_.ReceiveFrame(std::vector<uint8_t>(64, 0xff)));
  EXPECT_EQ(device_.stats().rx_dropped, 1u);
  EXPECT_NE(Read32(REG_ICR) & ICR_RXO, 0u);
  // Software returns one slot: the next frame fits again.
  Write32(REG_RDT, 0);
  EXPECT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(64, 0xaa)));
}

TEST_F(NicRxTest, DropsOversizeFrames) {
  SetupRxRing();
  EXPECT_FALSE(device_.ReceiveFrame(std::vector<uint8_t>(4096, 1)));
  EXPECT_EQ(device_.stats().rx_dropped, 1u);
}

// ------------------------------------------------- legacy pin battery --
// Byte-exact pins of the single-queue device captured before the
// multi-queue refactor. Every DeviceStats field, the hardware counters,
// and the accumulated interrupt causes are hardcoded: the refactored
// device in legacy mode (queue 0 only, no MSI-X programming) must
// reproduce this run bit-for-bit.

TEST_F(NicTest, LegacyPinTxSweepStatsByteExact) {
  SetupRing();
  const uint64_t payload = kRam + 0x8000;
  WritePayload(payload, std::vector<uint8_t>(2048, 0x33));
  // Four rounds of a mixed trio: 64B single-descriptor RS frame, a
  // 10B+20B split frame (RS on the EOP half), and a 128B frame without
  // RS. 16 descriptors exactly fill (and wrap) the 16-entry ring.
  uint32_t tail = 0;
  auto doorbell = [&](uint32_t next) {
    tail = next % kRingEntries;
    Write32(REG_TDT, tail);
  };
  for (int round = 0; round < 4; ++round) {
    StageDescriptor(tail, payload, 64, TXD_CMD_EOP | TXD_CMD_RS);
    doorbell(tail + 1);
    StageDescriptor(tail, payload, 10, 0);
    StageDescriptor((tail + 1) % kRingEntries, payload + 10, 20,
                    TXD_CMD_EOP | TXD_CMD_RS);
    doorbell(tail + 2);
    StageDescriptor(tail, payload, 128, TXD_CMD_EOP);
    doorbell(tail + 1);
  }
  const DeviceStats s = device_.stats();
  EXPECT_EQ(s.descriptors_processed, 16u);
  EXPECT_EQ(s.frames_transmitted, 12u);
  EXPECT_EQ(s.bytes_transmitted, 888u);  // 4 * (64 + 30 + 128)
  EXPECT_EQ(s.dma_descriptor_reads, 16u);
  EXPECT_EQ(s.dma_payload_reads, 16u);
  EXPECT_EQ(s.writebacks, 8u);
  EXPECT_EQ(s.tail_writes, 13u);  // SetupRing's TDT=0 plus 12 doorbells
  EXPECT_EQ(s.bad_descriptors, 0u);
  EXPECT_EQ(s.bad_doorbells, 0u);
  EXPECT_EQ(s.frames_received, 0u);
  EXPECT_EQ(s.bytes_received, 0u);
  EXPECT_EQ(s.rx_dropped, 0u);
  EXPECT_EQ(sink_.packets(), 12u);
  EXPECT_EQ(sink_.bytes(), 888u);
  EXPECT_EQ(Read32(REG_TDH), 0u);  // wrapped exactly once
  EXPECT_EQ(Read32(REG_GPTC), 12u);
  EXPECT_EQ(Read32(REG_GOTCL), 888u);
  EXPECT_EQ(Read32(REG_GOTCH), 0u);
  // Accumulated causes: LSC from SetupRing's link-up, TXDW and TXQE
  // from the sweeps. Read-to-clear.
  EXPECT_EQ(Read32(REG_ICR), ICR_LSC | ICR_TXDW | ICR_TXQE);
  EXPECT_EQ(Read32(REG_ICR), 0u);
}

TEST_F(NicTest, LegacyPinDoorbellWedgeByteExact) {
  SetupRing();
  WritePayload(kRam + 0x8000, std::vector<uint8_t>(64, 0x44));
  StageDescriptor(0, kRam + 0x8000, 64, TXD_CMD_EOP | TXD_CMD_RS);
  // Out-of-range tail: the doorbell is refused, nothing is processed,
  // nothing is delivered — the PR-4 regression (head could never meet
  // an out-of-range tail, so the sweep would spin forever).
  Write32(REG_TDT, kRingEntries + 5);
  EXPECT_EQ(device_.stats().bad_doorbells, 1u);
  EXPECT_EQ(device_.stats().descriptors_processed, 0u);
  EXPECT_EQ(sink_.packets(), 0u);
  EXPECT_EQ(Read32(REG_TDH), 0u);
  // Software rewrites a sane tail: the device recovers and sweeps.
  Write32(REG_TDT, 1);
  EXPECT_EQ(device_.stats().bad_doorbells, 1u);
  EXPECT_EQ(sink_.packets(), 1u);
  // An out-of-range *head* wedges the same counter.
  Write32(REG_TDH, 99);
  StageDescriptor(1, kRam + 0x8000, 64, TXD_CMD_EOP);
  Write32(REG_TDT, 2);
  EXPECT_EQ(device_.stats().bad_doorbells, 2u);
  EXPECT_EQ(sink_.packets(), 1u);
  EXPECT_EQ(device_.stats().tail_writes, 4u);  // setup + 3 doorbells
}

TEST_F(NicRxTest, LegacyPinRxStatsByteExact) {
  SetupRxRing();
  ASSERT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(100, 0x01)));
  ASSERT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(60, 0x02)));
  ASSERT_TRUE(device_.ReceiveFrame(std::vector<uint8_t>(1514, 0x03)));
  EXPECT_FALSE(device_.ReceiveFrame(std::vector<uint8_t>(4096, 0x04)));
  const DeviceStats s = device_.stats();
  EXPECT_EQ(s.dma_descriptor_reads, 3u);
  EXPECT_EQ(s.writebacks, 3u);
  EXPECT_EQ(s.frames_received, 3u);
  EXPECT_EQ(s.bytes_received, 1674u);  // 100 + 60 + 1514
  EXPECT_EQ(s.rx_dropped, 1u);
  EXPECT_EQ(s.bad_descriptors, 0u);
  EXPECT_EQ(s.frames_transmitted, 0u);
  EXPECT_EQ(Read32(REG_RDH), 3u);
  EXPECT_EQ(Read32(REG_GPRC), 3u);
  EXPECT_EQ(Read32(REG_ICR), ICR_LSC | ICR_RXO | ICR_RXT0);
}

// --------------------------------------------------- multi-queue model --

class NicMqTest : public NicTest {
 protected:
  /// Bring TX queue `q` up with its own ring carved out of RAM.
  void SetupTxQueue(uint32_t q) {
    Write32(REG_CTRL, CTRL_SLU);
    const uint64_t ring = TxRingBase(q);
    Write32(QReg(REG_TDBAL, q), static_cast<uint32_t>(ring));
    Write32(QReg(REG_TDBAH, q), static_cast<uint32_t>(ring >> 32));
    Write32(QReg(REG_TDLEN, q), kRingEntries * kTxDescBytes);
    Write32(QReg(REG_TDH, q), 0);
    Write32(QReg(REG_TDT, q), 0);
    Write32(REG_TCTL, TCTL_EN | TCTL_PSP);
  }

  void SetupRxQueue(uint32_t q) {
    Write32(REG_CTRL, CTRL_SLU);
    const uint64_t ring = RxRingBase(q);
    Write32(QReg(REG_RDBAL, q), static_cast<uint32_t>(ring));
    Write32(QReg(REG_RDBAH, q), static_cast<uint32_t>(ring >> 32));
    Write32(QReg(REG_RDLEN, q), kRingEntries * kRxDescBytes);
    Write32(QReg(REG_RDH, q), 0);
    for (uint32_t i = 0; i < kRingEntries; ++i) {
      LegacyRxDescriptor desc{};
      desc.buffer_addr = RxBufBase(q) + uint64_t{i} * 2048;
      uint8_t raw[kRxDescBytes];
      std::memcpy(raw, &desc, sizeof(desc));
      ASSERT_TRUE(
          mem_.Write(ring + i * kRxDescBytes, raw, sizeof(raw)).ok());
    }
    Write32(QReg(REG_RDT, q), kRingEntries - 1);
    Write32(REG_RCTL, RCTL_EN | RCTL_BAM);
  }

  uint64_t TxRingBase(uint32_t q) const { return kRam + 0x1000 * q; }
  uint64_t RxRingBase(uint32_t q) const { return kRam + 0x20000 + 0x1000 * q; }
  uint64_t RxBufBase(uint32_t q) const { return kRam + 0x40000 + 0x10000 * q; }

  void StageDescriptorOn(uint32_t q, uint32_t i, uint64_t buffer,
                         uint16_t length, uint8_t cmd) {
    LegacyTxDescriptor desc{};
    desc.buffer_addr = buffer;
    desc.length = length;
    desc.cmd = cmd;
    uint8_t raw[kTxDescBytes];
    std::memcpy(raw, &desc, sizeof(desc));
    ASSERT_TRUE(mem_.Write(TxRingBase(q) + i * kTxDescBytes, raw,
                           sizeof(raw)).ok());
  }

  /// Stage + doorbell one patterned frame on queue q.
  void SendOn(uint32_t q, uint32_t slot, uint16_t len, uint8_t fill) {
    const uint64_t payload = kRam + 0x80000 + 0x800 * q;
    WritePayload(payload, std::vector<uint8_t>(len, fill));
    StageDescriptorOn(q, slot, payload, len, TXD_CMD_EOP | TXD_CMD_RS);
    Write32(QReg(REG_TDT, q), (slot + 1) % kRingEntries);
  }
};

TEST_F(NicMqTest, QueueZeroBlockIsTheLegacyBlock) {
  EXPECT_EQ(QReg(REG_TDBAL, 0), REG_TDBAL);
  EXPECT_EQ(QReg(REG_TDT, 0), REG_TDT);
  EXPECT_EQ(QReg(REG_TDBAL, 1), 0x3900u);  // real 82571 TDBAL1
  EXPECT_EQ(QReg(REG_RDBAL, 1), 0x2900u);
  // Writing queue 1's ring registers is visible at the strided offsets
  // and leaves the legacy block untouched.
  Write32(QReg(REG_TDBAL, 1), 0x12340000u);
  EXPECT_EQ(Read32(QReg(REG_TDBAL, 1)), 0x12340000u);
  EXPECT_EQ(Read32(REG_TDBAL), 0u);
}

TEST_F(NicMqTest, IndependentQueuesTransmitAndFoldStats) {
  for (uint32_t q : {0u, 1u, 3u, 7u}) SetupTxQueue(q);
  SendOn(0, 0, 64, 0x10);
  SendOn(1, 0, 128, 0x11);
  SendOn(3, 0, 256, 0x13);
  SendOn(7, 0, 512, 0x17);
  SendOn(1, 1, 100, 0x21);
  EXPECT_EQ(sink_.packets(), 5u);
  EXPECT_EQ(sink_.bytes(), 64u + 128 + 256 + 512 + 100);
  EXPECT_EQ(device_.QueueStats(0).frames_transmitted, 1u);
  EXPECT_EQ(device_.QueueStats(1).frames_transmitted, 2u);
  EXPECT_EQ(device_.QueueStats(1).bytes_transmitted, 228u);
  EXPECT_EQ(device_.QueueStats(3).frames_transmitted, 1u);
  EXPECT_EQ(device_.QueueStats(7).frames_transmitted, 1u);
  EXPECT_EQ(device_.QueueStats(2).frames_transmitted, 0u);
  // The fold matches the per-queue sum and the hardware counters.
  EXPECT_EQ(device_.stats().frames_transmitted, 5u);
  EXPECT_EQ(Read32(REG_GPTC), 5u);
  EXPECT_EQ(Read32(REG_GOTCL), 64u + 128 + 256 + 512 + 100);
  // Heads advanced independently.
  EXPECT_EQ(Read32(QReg(REG_TDH, 1)), 2u);
  EXPECT_EQ(Read32(QReg(REG_TDH, 3)), 1u);
}

TEST_F(NicMqTest, PerQueueDoorbellWedgesOnlyThatQueue) {
  SetupTxQueue(0);
  SetupTxQueue(2);
  Write32(QReg(REG_TDT, 2), kRingEntries + 9);  // out of range
  EXPECT_EQ(device_.QueueStats(2).bad_doorbells, 1u);
  EXPECT_EQ(device_.QueueStats(0).bad_doorbells, 0u);
  // Queue 0 still transmits.
  SendOn(0, 0, 64, 0x55);
  EXPECT_EQ(sink_.packets(), 1u);
  // Queue 2 recovers once software writes a sane tail.
  SendOn(2, 0, 64, 0x66);
  EXPECT_EQ(device_.QueueStats(2).frames_transmitted, 1u);
  EXPECT_EQ(device_.stats().bad_doorbells, 1u);
}

TEST_F(NicMqTest, MsixVectorsFollowIvarAndEicrIsReadToClear) {
  SetupTxQueue(1);
  // Route queue 1's TX cause to vector 5; unmask it.
  Write32(IVAR(1), (IVAR_VALID | 5u) << IVAR_TX_SHIFT);
  Write32(REG_EIMS, 1u << 5);
  SendOn(1, 0, 64, 0x42);
  EXPECT_EQ(device_.PendingMsix(), 1u << 5);
  EXPECT_EQ(device_.MsixAsserts(5), 1u);
  EXPECT_EQ(Read32(REG_EICR), 1u << 5);
  EXPECT_EQ(Read32(REG_EICR), 0u);  // read-to-clear
  // Legacy ICR saw nothing from queue 1 (only the link-up cause).
  EXPECT_EQ(Read32(REG_ICR), ICR_LSC);
  // Masked vector: cause latches in EICR but does not assert.
  Write32(REG_EIMC, 1u << 5);
  SendOn(1, 1, 64, 0x43);
  EXPECT_EQ(device_.MsixAsserts(5), 1u);
  EXPECT_EQ(Read32(REG_EICR), 1u << 5);
}

TEST_F(NicMqTest, EitrThrottlesVectorAsserts) {
  sim::VirtualClock clock;
  device_.AttachClock(&clock);
  SetupTxQueue(0);
  Write32(IVAR(0), (IVAR_VALID | 3u) << IVAR_TX_SHIFT);
  Write32(REG_EIMS, 1u << 3);
  Write32(EITR(3), 10000);  // 10k-cycle throttle window
  // A burst within one window: one assert, the rest throttled.
  for (uint32_t i = 0; i < 5; ++i) SendOn(0, i, 64, uint8_t(i));
  EXPECT_EQ(device_.MsixAsserts(3), 1u);
  EXPECT_EQ(device_.MsixThrottled(3), 4u);
  // Let the window elapse: the next cause fires again.
  clock.Advance(20000);
  SendOn(0, 5, 64, 0x99);
  EXPECT_EQ(device_.MsixAsserts(3), 2u);
  // EITR=0 disables mitigation entirely.
  Write32(EITR(3), 0);
  SendOn(0, 6, 64, 0x9a);
  SendOn(0, 7, 64, 0x9b);
  EXPECT_EQ(device_.MsixAsserts(3), 4u);
}

TEST_F(NicMqTest, RssSpreadsFlowsDeterministically) {
  for (uint32_t q = 0; q < 4; ++q) SetupRxQueue(q);
  Write32(REG_MRQC, MRQC_ENABLE | (4u << MRQC_QUEUES_SHIFT));
  // 32 flows (distinct MAC pairs): every frame lands on the queue the
  // hash picks, the same flow always lands on the same queue, and all
  // frames are delivered somewhere.
  uint64_t per_queue[4] = {};
  uint32_t rdt[4] = {kRingEntries - 1, kRingEntries - 1, kRingEntries - 1,
                     kRingEntries - 1};
  for (uint8_t flow = 0; flow < 32; ++flow) {
    std::vector<uint8_t> frame(64, 0);
    frame[5] = flow;        // dst MAC low byte
    frame[11] = uint8_t(flow * 7);  // src MAC low byte
    const uint32_t expect_q = device_.RouteRxQueue(frame);
    ASSERT_LT(expect_q, 4u);
    EXPECT_EQ(device_.RouteRxQueue(frame), expect_q);  // stable
    ASSERT_TRUE(device_.ReceiveFrame(frame)) << int(flow);
    ++per_queue[expect_q];
    // Software re-arms the consumed slot (RDT chases RDH).
    rdt[expect_q] = (rdt[expect_q] + 1) % kRingEntries;
    Write32(QReg(REG_RDT, expect_q), rdt[expect_q]);
  }
  uint64_t total = 0;
  uint32_t used = 0;
  for (uint32_t q = 0; q < 4; ++q) {
    EXPECT_EQ(device_.QueueStats(q).frames_received, per_queue[q]) << q;
    total += per_queue[q];
    if (per_queue[q] > 0) ++used;
  }
  EXPECT_EQ(total, 32u);
  EXPECT_GE(used, 3u);  // 32 flows over 4 queues: hash spreads
  // MRQC disabled: everything routes to queue 0 again.
  Write32(REG_MRQC, 0);
  EXPECT_EQ(device_.RouteRxQueue(std::vector<uint8_t>(64, 0xab)), 0u);
}

TEST_F(NicMqTest, ReceiveFrameOnBypassesRss) {
  SetupRxQueue(3);
  ASSERT_TRUE(device_.ReceiveFrameOn(3, std::vector<uint8_t>(80, 0x71)));
  EXPECT_EQ(device_.QueueStats(3).frames_received, 1u);
  EXPECT_EQ(device_.QueueStats(0).frames_received, 0u);
  EXPECT_EQ(Read32(QReg(REG_RDH, 3)), 1u);
  // Queue with no ring set up drops.
  EXPECT_FALSE(device_.ReceiveFrameOn(5, std::vector<uint8_t>(80, 0x72)));
  EXPECT_EQ(device_.QueueStats(5).rx_dropped, 1u);
}

TEST_F(NicTest, SinkRetainsRecentFrames) {
  CountingSink sink(2);
  sink.Deliver({1});
  sink.Deliver({2});
  sink.Deliver({3});
  const auto recent = sink.RecentFrames();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0], std::vector<uint8_t>{2});
  EXPECT_EQ(recent[1], std::vector<uint8_t>{3});
  EXPECT_EQ(sink.packets(), 3u);
  sink.Reset();
  EXPECT_EQ(sink.packets(), 0u);
}

}  // namespace
}  // namespace kop::nic
