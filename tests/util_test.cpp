// kop::util: status/result, bits, ring buffer, rng, spinlock, hexdump.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <thread>

#include "kop/util/bits.hpp"
#include "kop/util/hexdump.hpp"
#include "kop/util/log.hpp"
#include "kop/util/ring_buffer.hpp"
#include "kop/util/rng.hpp"
#include "kop/util/spinlock.hpp"
#include "kop/util/status.hpp"

namespace kop {
namespace {

// ---------------------------------------------------------------- status --

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "not_found: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(PermissionDenied("").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(OutOfMemory("").code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(OutOfRange("").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(NoSpace("").code(), ErrorCode::kNoSpace);
  EXPECT_EQ(BadModule("").code(), ErrorCode::kBadModule);
  EXPECT_EQ(Busy("").code(), ErrorCode::kBusy);
  EXPECT_EQ(Unimplemented("").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(Internal("").code(), ErrorCode::kInternal);
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

Status FailingHelper() { return Busy("try later"); }
Status ChainedHelper() {
  KOP_RETURN_IF_ERROR(FailingHelper());
  return OkStatus();
}
Result<int> ProducingHelper(bool ok) {
  if (!ok) return InvalidArgument("no");
  return 3;
}
Result<int> AssignChain(bool ok) {
  KOP_ASSIGN_OR_RETURN(int v, ProducingHelper(ok));
  return v * 2;
}

TEST(ResultTest, Macros) {
  EXPECT_EQ(ChainedHelper().code(), ErrorCode::kBusy);
  auto good = AssignChain(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 6);
  EXPECT_FALSE(AssignChain(false).ok());
}

// ------------------------------------------------------------------ bits --

TEST(BitsTest, PowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 63));
}

TEST(BitsTest, Alignment) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignUp(9, 8), 16u);
  EXPECT_EQ(AlignDown(15, 8), 8u);
  EXPECT_TRUE(IsAligned(64, 16));
  EXPECT_FALSE(IsAligned(65, 16));
}

TEST(BitsTest, ExtractBits) {
  EXPECT_EQ(ExtractBits(0xff00, 8, 15), 0xffu);
  EXPECT_EQ(ExtractBits(0b1010, 1, 2), 0b01u);
  EXPECT_EQ(ExtractBits(~0ull, 0, 63), ~0ull);
}

TEST(BitsTest, RangeContains) {
  EXPECT_TRUE(RangeContains(100, 10, 100, 10));
  EXPECT_TRUE(RangeContains(100, 10, 105, 5));
  EXPECT_FALSE(RangeContains(100, 10, 105, 6));
  EXPECT_FALSE(RangeContains(100, 10, 99, 1));
  // Overflow-safety at the top of the address space.
  EXPECT_TRUE(RangeContains(~0ull - 9, 10, ~0ull - 1, 2));
  EXPECT_FALSE(RangeContains(0, 10, ~0ull, 2));
}

TEST(BitsTest, RangesOverlap) {
  EXPECT_TRUE(RangesOverlap(0, 10, 5, 10));
  EXPECT_FALSE(RangesOverlap(0, 10, 10, 10));
  EXPECT_FALSE(RangesOverlap(0, 0, 0, 10));
  EXPECT_TRUE(RangesOverlap(~0ull - 5, 5, ~0ull - 3, 1));
}

TEST(BitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv<uint32_t>(10, 3), 4u);
  EXPECT_EQ(CeilDiv<uint32_t>(9, 3), 3u);
  EXPECT_EQ(CeilDiv<uint64_t>(1, 100), 1u);
}

// ----------------------------------------------------------- ring buffer --

TEST(RingBufferTest, PushPopFifo) {
  RingBuffer<int> ring(4);
  ring.push(1);
  ring.push(2);
  ring.push(3);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_EQ(ring.pop(), 3);
  EXPECT_EQ(ring.pop(), std::nullopt);
}

TEST(RingBufferTest, OverwritesOldestWhenFull) {
  RingBuffer<int> ring(3);
  for (int i = 1; i <= 5; ++i) ring.push(i);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{3, 4, 5}));
}

TEST(RingBufferTest, PushNodropRefusesWhenFull) {
  RingBuffer<int> ring(2);
  EXPECT_TRUE(ring.push_nodrop(1));
  EXPECT_TRUE(ring.push_nodrop(2));
  EXPECT_FALSE(ring.push_nodrop(3));
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{1, 2}));
}

TEST(RingBufferTest, AtIndexesOldestFirst) {
  RingBuffer<int> ring(3);
  for (int i = 1; i <= 4; ++i) ring.push(i);
  EXPECT_EQ(ring.at(0), 2);
  EXPECT_EQ(ring.at(2), 4);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> ring(3);
  ring.push(1);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pop(), std::nullopt);
}

// ------------------------------------------------------------------- rng --

TEST(RngTest, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Xoshiro256 a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, NextBelowStaysInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Xoshiro256 rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoublesInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Xoshiro256 rng(4);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliProbability) {
  Xoshiro256 rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// -------------------------------------------------------------- spinlock --

TEST(SpinlockTest, MutualExclusionUnderContention) {
  Spinlock lock;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<Spinlock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SpinlockTest, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// --------------------------------------------------------------- hexdump --

TEST(HexdumpTest, FormatsBytesAndAscii) {
  const char data[] = "CARAT!";
  const std::string dump = Hexdump(data, 6);
  EXPECT_NE(dump.find("4341 5241 5421"), std::string::npos);
  EXPECT_NE(dump.find("CARAT!"), std::string::npos);
  EXPECT_NE(dump.find("00000000:"), std::string::npos);
}

TEST(HexdumpTest, NonPrintableBecomesDot) {
  const uint8_t data[] = {0x00, 0x1f, 'A'};
  const std::string dump = Hexdump(data, 3);
  EXPECT_NE(dump.find("..A"), std::string::npos);
}

TEST(HexdumpTest, BaseOffsetApplied) {
  const uint8_t data[] = {1, 2, 3};
  const std::string dump = Hexdump(data, 3, 0x1000);
  EXPECT_NE(dump.find("00001000:"), std::string::npos);
}

TEST(HexdumpTest, MultiRow) {
  std::vector<uint8_t> data(40, 0xab);
  const std::string dump = Hexdump(data.data(), data.size());
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 3);
}

// ------------------------------------------------------------------- log --

TEST(LogTest, RespectsSeverityAndStream) {
  std::ostringstream captured;
  SetLogStream(&captured);
  SetLogLevel(LogLevel::kWarn);
  KOP_LOG(kInfo) << "hidden";
  KOP_LOG(kError) << "visible " << 42;
  SetLogStream(nullptr);
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(captured.str().find("hidden"), std::string::npos);
  EXPECT_NE(captured.str().find("visible 42"), std::string::npos);
  EXPECT_NE(captured.str().find("[ERROR]"), std::string::npos);
}

}  // namespace
}  // namespace kop
