// End-to-end integration: the full CARAT KOP story.
//   compile (guard-inject + attest) -> sign -> insmod (validate + link)
//   -> run under a policy -> violations logged + panic.
// Plus the driver-path integration: policy module + e1000e + NIC + socket.
#include <gtest/gtest.h>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kernel/procfs.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/net/packet_gun.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/policy/rules.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/transform/privileged.hpp"
#include "kop/transform/simplify.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop {
namespace {

using kernel::Kernel;
using kernel::KernelPanic;
using kernel::ModuleLoader;
using policy::PolicyMode;
using policy::PolicyModule;
using policy::Region;

signing::SignedModule CompileAndSign(
    const std::string& source,
    const transform::CompileOptions& options = {}) {
  auto compiled = transform::CompileModuleText(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

signing::Keyring TrustedKeyring() {
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  return keyring;
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : kernel_(), loader_(&kernel_, TrustedKeyring()) {
    auto policy =
        PolicyModule::Insert(&kernel_, nullptr, PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok()) << policy.status().ToString();
    policy_ = std::move(*policy);
  }

  Kernel kernel_;
  ModuleLoader loader_;
  std::unique_ptr<PolicyModule> policy_;
};

TEST_F(PipelineTest, HelloModuleLoadsAndPrints) {
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::HelloSource()));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto result = (*loaded)->Call("init", {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(kernel_.log().Contains("hello from CARAT KOP module"));
}

TEST_F(PipelineTest, GuardsActuallyFireAtRuntime) {
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  policy_->engine().ResetStats();
  ASSERT_TRUE((*loaded)->Call("rb_init", {}).ok());
  ASSERT_TRUE((*loaded)->Call("rb_push", {42}).ok());
  // rb_init stores 3 fields; rb_push does 2 loads + 3 stores minimum.
  EXPECT_GE(policy_->engine().stats().guard_calls, 8u);
  EXPECT_EQ(policy_->engine().stats().denied, 0u);
}

TEST_F(PipelineTest, UnsignedModuleRejected) {
  auto compiled = transform::CompileModuleText(kirmods::RingbufSource());
  ASSERT_TRUE(compiled.ok());
  signing::SigningKey rogue{"rogue-key", "not-the-kernel-key"};
  auto image =
      signing::SignModule(compiled->text, compiled->attestation, rogue);
  auto loaded = loader_.Insmod(image);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(PipelineTest, TamperedImageRejected) {
  signing::SignedModule image = CompileAndSign(kirmods::RingbufSource());
  image.module_text[image.module_text.size() / 2] ^= 0x20;
  auto loaded = loader_.Insmod(image);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(PipelineTest, UntransformedModuleRejected) {
  transform::CompileOptions options;
  options.inject_guards = false;  // baseline build must not be insmod-able
  auto compiled =
      transform::CompileModuleText(kirmods::RingbufSource(), options);
  ASSERT_TRUE(compiled.ok());
  auto image = signing::SignModule(compiled->text, compiled->attestation,
                                   signing::SigningKey::DevelopmentKey());
  auto loaded = loader_.Insmod(image);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(PipelineTest, InlineAsmModuleCannotBeCompiled) {
  auto compiled = transform::CompileModuleText(kirmods::InlineAsmSource());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), ErrorCode::kBadModule);
}

TEST_F(PipelineTest, MissingGuardSymbolFailsInsmod) {
  Kernel bare_kernel;  // no policy module inserted -> no carat_guard
  ModuleLoader bare_loader(&bare_kernel, TrustedKeyring());
  auto loaded = bare_loader.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(bare_kernel.log().Contains("Unknown symbol carat_guard"));
}

TEST_F(PipelineTest, DefaultDenyBlocksEverythingUnlisted) {
  policy_->engine().SetMode(PolicyMode::kDefaultDeny);
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_TRUE(loaded.ok());
  EXPECT_THROW((void)(*loaded)->Call("rb_init", {}), KernelPanic);
  EXPECT_TRUE(kernel_.panicked());
  EXPECT_TRUE(kernel_.log().Contains("forbidden write access"));
}

TEST_F(PipelineTest, DefaultDenyWithModuleAreaRegionAllows) {
  policy_->engine().SetMode(PolicyMode::kDefaultDeny);
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(Region{kernel_.module_area_base(),
                              kernel_.module_area_size(), policy::kProtRW})
                  .ok());
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->Call("rb_init", {}).ok());
  EXPECT_TRUE((*loaded)->Call("rb_push", {7}).ok());
  auto popped = (*loaded)->Call("rb_pop", {});
  ASSERT_TRUE(popped.ok());
  EXPECT_EQ(*popped, 7u);
}

TEST_F(PipelineTest, ScribblerBlockedFromUserHalf) {
  // The paper's two-region rule: kernel high half allowed, user low half
  // denied. Default-allow + a no-permission region over the low half.
  policy_->engine().SetMode(PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(Region{0, kernel::kUserSpaceEnd, policy::kProtNone})
                  .ok());
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::ScribblerSource()));
  ASSERT_TRUE(loaded.ok());

  auto heap = kernel_.heap().Kmalloc(64);
  ASSERT_TRUE(heap.ok());
  EXPECT_TRUE((*loaded)->Call("scribble", {*heap, 0xdead}).ok());

  EXPECT_THROW(
      (void)(*loaded)->Call("scribble", {kernel_.config().user_base, 1}),
      KernelPanic);
  EXPECT_TRUE(kernel_.log().Contains("forbidden write access"));
}

TEST_F(PipelineTest, ReadOnlyHeapPolicyBlocksWrites) {
  // "Or, it could restrict access to the heap to be read-only." (§3.1)
  policy_->engine().SetMode(PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(Region{kernel_.direct_map_base(),
                              kernel_.direct_map_size(), policy::kProtRead})
                  .ok());
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::ScribblerSource()));
  ASSERT_TRUE(loaded.ok());
  auto heap = kernel_.heap().Kmalloc(64);
  ASSERT_TRUE(heap.ok());
  EXPECT_TRUE((*loaded)->Call("peek", {*heap}).ok());
  EXPECT_THROW((void)(*loaded)->Call("scribble", {*heap, 5}), KernelPanic);
}

TEST_F(PipelineTest, LogOnlyModeRecordsWithoutPanicking) {
  policy_->engine().SetMode(PolicyMode::kDefaultDeny);
  policy_->engine().SetViolationAction(policy::ViolationAction::kLogOnly);
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->Call("rb_init", {}).ok());  // no throw
  EXPECT_FALSE(kernel_.panicked());
  EXPECT_GT(policy_->engine().stats().denied, 0u);
  EXPECT_TRUE(kernel_.log().Contains("forbidden write access"));
}

TEST_F(PipelineTest, PrivilegedIntrinsicWrappingBlocksCli) {
  transform::CompileOptions options;
  options.wrap_privileged_intrinsics = true;
  auto loaded =
      loader_.Insmod(CompileAndSign(kirmods::PrivuserSource(), options));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  policy_->engine().SetIntrinsicDefaultAllow(false);
  policy_->engine().AllowIntrinsic(
      static_cast<uint64_t>(transform::PrivilegedIntrinsic::kWrmsr));

  EXPECT_TRUE((*loaded)->Call("write_msr", {0x1b, 0xfee00c00}).ok());
  // The permitted wrmsr really changed machine state.
  EXPECT_EQ(kernel_.msrs().Read(0x1b), 0xfee00c00u);
  EXPECT_THROW((void)(*loaded)->Call("disable_interrupts", {}), KernelPanic);
  EXPECT_TRUE(kernel_.log().Contains("forbidden privileged intrinsic"));
  // The blocked cli never reached the interrupt flag.
  EXPECT_TRUE(kernel_.cpu().interrupts_enabled());
  EXPECT_EQ(kernel_.cpu().cli_count(), 0u);
}

TEST_F(PipelineTest, AuditThenSynthesizeThenEnforce) {
  // The operator workflow: (1) audit run under default-deny + log-only,
  // (2) synthesize the minimal policy from the violation trace,
  // (3) apply it and re-run under full enforcement — clean.
  policy_->engine().SetMode(PolicyMode::kDefaultDeny);
  policy_->engine().SetViolationAction(policy::ViolationAction::kLogOnly);
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_TRUE(loaded.ok());

  // (1) audit run: everything is denied but logged.
  ASSERT_TRUE((*loaded)->Call("rb_init", {}).ok());
  ASSERT_TRUE((*loaded)->Call("rb_push", {5}).ok());
  ASSERT_TRUE((*loaded)->Call("rb_pop", {}).ok());
  const auto trace = policy_->engine().RecentViolations();
  ASSERT_FALSE(trace.empty());

  // (2) synthesize and apply.
  const auto spec = policy::SynthesizePolicy(trace);
  ASSERT_TRUE(policy::ApplyPolicySpec(spec, policy_->engine()).ok());
  policy_->engine().SetViolationAction(policy::ViolationAction::kPanic);
  policy_->engine().ResetStats();

  // (3) enforce: the same workload runs violation-free...
  ASSERT_TRUE((*loaded)->Call("rb_init", {}).ok());
  ASSERT_TRUE((*loaded)->Call("rb_push", {5}).ok());
  auto popped = (*loaded)->Call("rb_pop", {});
  ASSERT_TRUE(popped.ok());
  EXPECT_EQ(*popped, 5u);
  EXPECT_EQ(policy_->engine().stats().denied, 0u);

  // ...while anything off-trace still panics.
  auto rogue = loader_.Insmod(CompileAndSign(kirmods::ScribblerSource()));
  ASSERT_TRUE(rogue.ok());
  auto heap = kernel_.heap().Kmalloc(64);
  ASSERT_TRUE(heap.ok());
  EXPECT_THROW((void)(*rogue)->Call("scribble", {*heap, 1}), KernelPanic);
}

TEST_F(PipelineTest, QuarantineStopsModuleWithoutPanicking) {
  policy_->engine().SetMode(PolicyMode::kDefaultAllow);
  policy_->engine().SetViolationAction(policy::ViolationAction::kQuarantine);
  // Pin quarantine semantics regardless of the KOP_RECOVERY env default.
  loader_.set_recovery_policy(resilience::RecoveryPolicy::kQuarantine);
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(Region{0, kernel::kUserSpaceEnd, policy::kProtNone})
                  .ok());
  auto rogue = loader_.Insmod(CompileAndSign(kirmods::ScribblerSource()));
  ASSERT_TRUE(rogue.ok());
  auto good = loader_.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_TRUE(good.ok());

  // The rogue module violates the policy: its call fails, the kernel
  // stays up, and the module is quarantined.
  auto blocked =
      (*rogue)->Call("scribble", {kernel_.config().user_base, 0xbad});
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), ErrorCode::kPermissionDenied);
  EXPECT_FALSE(kernel_.panicked());
  EXPECT_TRUE((*rogue)->quarantined());
  EXPECT_TRUE(kernel_.log().Contains("quarantined module 'kop_scribbler'"));

  // Even legitimate calls to the quarantined module now refuse...
  auto heap = kernel_.heap().Kmalloc(64);
  ASSERT_TRUE(heap.ok());
  auto refused = (*rogue)->Call("peek", {*heap});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kPermissionDenied);

  // ...while other modules keep running normally.
  EXPECT_TRUE((*good)->Call("rb_init", {}).ok());
  EXPECT_TRUE((*good)->Call("rb_push", {3}).ok());
  EXPECT_FALSE((*good)->quarantined());

  // lsmod shows the quarantine state.
  const std::string lsmod = kernel::ProcModules(loader_);
  EXPECT_NE(lsmod.find("kop_scribbler"), std::string::npos);
  EXPECT_NE(lsmod.find("QUARANTINED"), std::string::npos);
  EXPECT_NE(lsmod.find("kop_ringbuf"), std::string::npos);

  // rmmod + fresh insmod clears the quarantine (a new instance).
  ASSERT_TRUE(loader_.Rmmod("kop_scribbler").ok());
  auto fresh = loader_.Insmod(CompileAndSign(kirmods::ScribblerSource()));
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE((*fresh)->quarantined());
  EXPECT_TRUE((*fresh)->Call("peek", {*heap}).ok());
}

TEST_F(PipelineTest, RmmodThenReloadWorks) {
  auto image = CompileAndSign(kirmods::RingbufSource());
  auto loaded = loader_.Insmod(image);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loader_.Insmod(image).ok());  // double insmod
  ASSERT_TRUE(loader_.Rmmod("kop_ringbuf").ok());
  EXPECT_EQ(loader_.Find("kop_ringbuf"), nullptr);
  EXPECT_TRUE(loader_.Insmod(image).ok());
}

TEST_F(PipelineTest, KnicDriverModuleDrivesRealDevice) {
  // The compiler-path driver: a KIR module programs the simulated NIC
  // through guarded MMIO stores and launches frames by DMA from its own
  // (module-area) buffer.
  nic::CountingSink sink;
  nic::E1000Device device(&kernel_.mem(), &sink);
  ASSERT_TRUE(device.MapAt(kernel::kVmallocBase).ok());

  transform::CompileOptions options;
  auto loaded =
      loader_.Insmod(CompileAndSign(kirmods::KnicSource(), options));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  policy_->engine().ResetStats();
  auto init = (*loaded)->Call("knic_init", {kernel::kVmallocBase});
  ASSERT_TRUE(init.ok()) << init.status().ToString();
  ASSERT_TRUE((*loaded)->Call("knic_fill", {64, 0x20}).ok());
  for (uint64_t i = 1; i <= 10; ++i) {
    auto sent = (*loaded)->Call("knic_send", {kernel::kVmallocBase, 64});
    ASSERT_TRUE(sent.ok()) << sent.status().ToString();
    EXPECT_EQ(*sent, i);
  }

  // Frames really crossed the device: sink and hardware counter agree.
  EXPECT_EQ(sink.packets(), 10u);
  EXPECT_EQ(sink.bytes(), 640u);
  auto hw = (*loaded)->Call("knic_sent_hw", {kernel::kVmallocBase});
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(*hw, 10u);

  // The payload is the module's patterned buffer.
  const auto frame = sink.RecentFrames().back();
  ASSERT_EQ(frame.size(), 64u);
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_EQ(frame[i], uint8_t(0x20 + i)) << i;
  }

  // And every driver access — including each MMIO register write — went
  // through the guard.
  EXPECT_GT(policy_->engine().stats().guard_calls, 100u);
  EXPECT_EQ(policy_->engine().stats().denied, 0u);
}

TEST_F(PipelineTest, KnicBlockedFromMmioByPolicy) {
  nic::CountingSink sink;
  nic::E1000Device device(&kernel_.mem(), &sink);
  ASSERT_TRUE(device.MapAt(kernel::kVmallocBase).ok());
  auto loaded = loader_.Insmod(CompileAndSign(kirmods::KnicSource()));
  ASSERT_TRUE(loaded.ok());
  // Policy: the module may touch its own area but not the MMIO window.
  policy_->engine().SetMode(PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(Region{kernel::kVmallocBase, nic::kMmioBarSize,
                              policy::kProtNone})
                  .ok());
  EXPECT_THROW((void)(*loaded)->Call("knic_init", {kernel::kVmallocBase}),
               KernelPanic);
  EXPECT_EQ(sink.packets(), 0u);
}

TEST_F(PipelineTest, SimplifiedModuleBehavesIdentically) {
  transform::CompileOptions simplified;
  simplified.simplify = true;
  auto plain = loader_.Insmod(CompileAndSign(kirmods::RingbufSource()));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE((*plain)->Call("rb_init", {}).ok());
  ASSERT_TRUE((*plain)->Call("rb_push", {11}).ok());
  auto v1 = (*plain)->Call("rb_pop", {});
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(loader_.Rmmod("kop_ringbuf").ok());

  auto opt = loader_.Insmod(CompileAndSign(kirmods::RingbufSource(),
                                           simplified));
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  ASSERT_TRUE((*opt)->Call("rb_init", {}).ok());
  ASSERT_TRUE((*opt)->Call("rb_push", {11}).ok());
  auto v2 = (*opt)->Call("rb_pop", {});
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);
}

// ------------------------------------------------- driver-path end-to-end --

class DriverPathTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kMmioBase = kernel::kVmallocBase;

  DriverPathTest() : device_(&kernel_.mem(), &sink_) {
    EXPECT_TRUE(device_.MapAt(kMmioBase).ok());
    auto policy =
        PolicyModule::Insert(&kernel_, nullptr, PolicyMode::kDefaultDeny);
    EXPECT_TRUE(policy.ok());
    policy_ = std::move(*policy);
    // Paper-style policy: allow the whole kernel high half.
    EXPECT_TRUE(policy_->engine()
                    .store()
                    .Add(Region{kernel::kKernelHalfBase,
                                ~uint64_t{0} - kernel::kKernelHalfBase,
                                policy::kProtRW})
                    .ok());
  }

  Kernel kernel_;
  nic::CountingSink sink_;
  nic::E1000Device device_;
  std::unique_ptr<PolicyModule> policy_;
};

TEST_F(DriverPathTest, GuardedDriverTransmitsThroughFullStack) {
  auto driver = e1000e::CaratDriver::Probe(
      e1000e::GuardedMemOps(&kernel_, &policy_->engine()), kMmioBase);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();

  net::DriverNetDevice<e1000e::CaratDriver> netdev(&*driver);
  net::PacketSocket socket(&kernel_, &netdev, /*noise_seed=*/7);
  socket.set_noise_enabled(false);
  net::PacketGun gun(&kernel_, &socket);

  net::TrialConfig config;
  config.packets = 500;
  config.frame_bytes = 128;
  auto trial = gun.RunTrial(config);
  ASSERT_TRUE(trial.ok()) << trial.status().ToString();

  EXPECT_EQ(sink_.packets(), 500u);
  EXPECT_EQ(sink_.bytes(), 500u * 128);
  EXPECT_GT(policy_->engine().stats().guard_calls, 500u * 10);
  EXPECT_EQ(policy_->engine().stats().denied, 0u);

  auto frames = sink_.RecentFrames();
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.back(), net::MakeTestFrame(128).Serialize());
}

TEST_F(DriverPathTest, BaselineAndCaratDeliverIdenticalTraffic) {
  auto baseline =
      e1000e::BaselineDriver::Probe(e1000e::RawMemOps(&kernel_), kMmioBase);
  ASSERT_TRUE(baseline.ok());
  net::DriverNetDevice<e1000e::BaselineDriver> netdev(&*baseline);
  net::PacketSocket socket(&kernel_, &netdev, 7);
  socket.set_noise_enabled(false);
  net::PacketGun gun(&kernel_, &socket);
  net::TrialConfig config;
  config.packets = 200;
  config.frame_bytes = 256;
  ASSERT_TRUE(gun.RunTrial(config).ok());
  EXPECT_EQ(sink_.packets(), 200u);
  EXPECT_EQ(sink_.bytes(), 200u * 256);
  EXPECT_EQ(policy_->engine().stats().guard_calls, 0u);  // no guards
}

TEST_F(DriverPathTest, CaratCostsMoreCyclesButStaysUnderOnePercent) {
  auto run = [&](bool guarded) -> double {
    Kernel kernel;
    nic::CountingSink sink;
    nic::E1000Device device(&kernel.mem(), &sink);
    EXPECT_TRUE(device.MapAt(kMmioBase).ok());
    auto policy =
        PolicyModule::Insert(&kernel, nullptr, PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok());
    net::TrialConfig config;
    config.packets = 300;
    config.frame_bytes = 128;
    double cycles = 0;
    if (guarded) {
      auto driver = e1000e::CaratDriver::Probe(
          e1000e::GuardedMemOps(&kernel, &(*policy)->engine()), kMmioBase);
      EXPECT_TRUE(driver.ok());
      net::DriverNetDevice<e1000e::CaratDriver> netdev(&*driver);
      net::PacketSocket socket(&kernel, &netdev, 7);
      socket.set_noise_enabled(false);
      net::PacketGun gun(&kernel, &socket);
      auto trial = gun.RunTrial(config);
      EXPECT_TRUE(trial.ok());
      cycles = trial->cycles_per_packet;
    } else {
      auto driver =
          e1000e::BaselineDriver::Probe(e1000e::RawMemOps(&kernel), kMmioBase);
      EXPECT_TRUE(driver.ok());
      net::DriverNetDevice<e1000e::BaselineDriver> netdev(&*driver);
      net::PacketSocket socket(&kernel, &netdev, 7);
      socket.set_noise_enabled(false);
      net::PacketGun gun(&kernel, &socket);
      auto trial = gun.RunTrial(config);
      EXPECT_TRUE(trial.ok());
      cycles = trial->cycles_per_packet;
    }
    EXPECT_EQ(sink.packets(), 300u);
    return cycles;
  };

  const double base_cycles = run(false);
  const double carat_cycles = run(true);
  EXPECT_GT(carat_cycles, base_cycles);
  // Headline result: overhead well under 1% on the (default R350) model.
  EXPECT_LT((carat_cycles - base_cycles) / base_cycles, 0.01);
}

TEST_F(DriverPathTest, BlockingMmioRegionPanicsGuardedDriverOnly) {
  auto baseline =
      e1000e::BaselineDriver::Probe(e1000e::RawMemOps(&kernel_), kMmioBase);
  EXPECT_TRUE(baseline.ok());

  // Carve the MMIO window out of the allowed kernel half. The fixture's
  // allow-all region covers it, so switch to an explicit deny region and
  // rely on first-match table order: put the deny first.
  policy_->engine().store().Clear();
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(Region{kMmioBase, nic::kMmioBarSize, policy::kProtNone})
                  .ok());
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(Region{kernel::kKernelHalfBase,
                              ~uint64_t{0} - kernel::kKernelHalfBase,
                              policy::kProtRW})
                  .ok());
  EXPECT_THROW(
      (void)e1000e::CaratDriver::Probe(
          e1000e::GuardedMemOps(&kernel_, &policy_->engine()), kMmioBase),
      KernelPanic);
  EXPECT_TRUE(kernel_.log().Contains("forbidden"));
}

TEST_F(DriverPathTest, IoctlDrivesPolicyLikePolicyManager) {
  // Reproduce Figure 1: userspace configures the policy via ioctl.
  using namespace policy;
  CaratRegionArg region{kernel::kDirectMapBase, 1ull << 20, kProtRW, 0};
  auto arg = PackArg(region);
  ASSERT_TRUE(kernel_.devices()
                  .Ioctl(kCaratDevicePath, KOP_IOCTL_ADD_REGION, arg)
                  .ok());
  CaratCountArg count;
  auto count_arg = PackArg(count);
  ASSERT_TRUE(kernel_.devices()
                  .Ioctl(kCaratDevicePath, KOP_IOCTL_COUNT_REGIONS, count_arg)
                  .ok());
  ASSERT_TRUE(UnpackArg(count_arg, &count));
  EXPECT_EQ(count.count, 2u);  // fixture region + the one just added
}

}  // namespace
}  // namespace kop
