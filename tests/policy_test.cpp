// kop::policy: every policy store implementation (parameterized over the
// common contract), the bloom filter, the engine and the policy module's
// ioctl surface.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>

#include "kop/kernel/kernel.hpp"
#include "kop/policy/amq.hpp"
#include "kop/policy/cuckoo.hpp"
#include "kop/policy/engine.hpp"
#include "kop/policy/lsh_store.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/rbtree_store.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/policy/sorted_table.hpp"
#include "kop/policy/splay_store.hpp"
#include "kop/policy/wrappers.hpp"
#include "kop/trace/site.hpp"
#include "kop/util/rng.hpp"

namespace kop::policy {
namespace {

using StoreFactory = std::function<std::unique_ptr<PolicyStore>()>;

struct StoreParam {
  std::string name;
  StoreFactory make;
  bool supports_overlap;
};

std::vector<StoreParam> AllStores() {
  return {
      {"linear64", [] { return std::unique_ptr<PolicyStore>(
                            std::make_unique<RegionTable64>()); },
       true},
      {"sorted", [] { return std::unique_ptr<PolicyStore>(
                          std::make_unique<SortedRegionTable>()); },
       false},
      {"rbtree", [] { return std::unique_ptr<PolicyStore>(
                          std::make_unique<RbTreeRegionStore>()); },
       false},
      {"splay", [] { return std::unique_ptr<PolicyStore>(
                         std::make_unique<SplayRegionTree>()); },
       false},
      {"lsh", [] { return std::unique_ptr<PolicyStore>(
                       std::make_unique<LshBucketStore>()); },
       true},
      {"cache+linear",
       [] {
         return std::unique_ptr<PolicyStore>(
             std::make_unique<SingleEntryCacheStore>(
                 std::make_unique<RegionTable64>()));
       },
       true},
      {"bloom+sorted",
       [] {
         return std::unique_ptr<PolicyStore>(std::make_unique<BloomFrontStore>(
             std::make_unique<SortedRegionTable>()));
       },
       false},
      {"cuckoo+rbtree",
       [] {
         return std::unique_ptr<PolicyStore>(
             std::make_unique<CuckooFrontStore>(
                 std::make_unique<RbTreeRegionStore>()));
       },
       false},
  };
}

class StoreContractTest : public ::testing::TestWithParam<StoreParam> {};

TEST_P(StoreContractTest, AddLookupRemove) {
  auto store = GetParam().make();
  EXPECT_EQ(store->Size(), 0u);
  ASSERT_TRUE(store->Add(Region{0x1000, 0x1000, kProtRW}).ok());
  ASSERT_TRUE(store->Add(Region{0x10000, 0x100, kProtRead}).ok());
  EXPECT_EQ(store->Size(), 2u);

  auto hit = store->Lookup(0x1800, 8);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, kProtRW);
  auto ro = store->Lookup(0x10000, 4);
  ASSERT_TRUE(ro.has_value());
  EXPECT_EQ(*ro, kProtRead);
  EXPECT_FALSE(store->Lookup(0x3000, 8).has_value());

  ASSERT_TRUE(store->Remove(0x1000).ok());
  EXPECT_FALSE(store->Lookup(0x1800, 8).has_value());
  EXPECT_EQ(store->Size(), 1u);
  EXPECT_FALSE(store->Remove(0x1000).ok());
}

TEST_P(StoreContractTest, ExactBoundaries) {
  auto store = GetParam().make();
  ASSERT_TRUE(store->Add(Region{0x1000, 0x100, kProtRW}).ok());
  EXPECT_TRUE(store->Lookup(0x1000, 1).has_value());    // first byte
  EXPECT_TRUE(store->Lookup(0x10ff, 1).has_value());    // last byte
  EXPECT_TRUE(store->Lookup(0x1000, 0x100).has_value());  // whole region
  EXPECT_FALSE(store->Lookup(0x0fff, 1).has_value());   // one before
  EXPECT_FALSE(store->Lookup(0x1100, 1).has_value());   // one after
  // Range extending past the region is not covered.
  EXPECT_FALSE(store->Lookup(0x10ff, 2).has_value());
  EXPECT_FALSE(store->Lookup(0x1000, 0x101).has_value());
}

TEST_P(StoreContractTest, RejectsDegenerateRegions) {
  auto store = GetParam().make();
  EXPECT_FALSE(store->Add(Region{0x1000, 0, kProtRW}).ok());
  EXPECT_FALSE(store->Add(Region{~0ull - 10, 100, kProtRW}).ok());
}

TEST_P(StoreContractTest, ClearEmpties) {
  auto store = GetParam().make();
  ASSERT_TRUE(store->Add(Region{0x1000, 0x100, kProtRW}).ok());
  store->Clear();
  EXPECT_EQ(store->Size(), 0u);
  EXPECT_FALSE(store->Lookup(0x1000, 1).has_value());
  // Usable after clear.
  EXPECT_TRUE(store->Add(Region{0x2000, 0x100, kProtRead}).ok());
  EXPECT_TRUE(store->Lookup(0x2000, 1).has_value());
}

TEST_P(StoreContractTest, SnapshotContainsAllRegions) {
  auto store = GetParam().make();
  ASSERT_TRUE(store->Add(Region{0x3000, 0x100, kProtRead}).ok());
  ASSERT_TRUE(store->Add(Region{0x1000, 0x100, kProtRW}).ok());
  ASSERT_TRUE(store->Add(Region{0x2000, 0x100, kProtWrite}).ok());
  const auto snapshot = store->Snapshot();
  EXPECT_EQ(snapshot.size(), 3u);
  bool found = false;
  for (const Region& region : snapshot) {
    if (region.base == 0x2000) {
      found = true;
      EXPECT_EQ(region.prot, kProtWrite);
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(StoreContractTest, AdjacentRegionsDoNotBleed) {
  auto store = GetParam().make();
  ASSERT_TRUE(store->Add(Region{0x1000, 0x100, kProtRead}).ok());
  ASSERT_TRUE(store->Add(Region{0x1100, 0x100, kProtWrite}).ok());
  EXPECT_EQ(*store->Lookup(0x10ff, 1), kProtRead);
  EXPECT_EQ(*store->Lookup(0x1100, 1), kProtWrite);
  // A range spanning both is covered by neither alone.
  EXPECT_FALSE(store->Lookup(0x10f0, 0x20).has_value());
}

TEST_P(StoreContractTest, ManyRegionsAgreeWithReferenceModel) {
  auto store = GetParam().make();
  // Reference: vector of regions, first-match (insertion order).
  std::vector<Region> reference;
  Xoshiro256 rng(99);
  // Non-overlapping regions (so every store can represent them): grid.
  for (uint64_t i = 0; i < 48; ++i) {
    Region region{0x100000 + i * 0x1000,
                  0x200 + rng.NextBelow(0xe00),
                  static_cast<uint32_t>(1 + rng.NextBelow(3))};
    ASSERT_TRUE(store->Add(region).ok());
    reference.push_back(region);
  }
  for (int probe = 0; probe < 4000; ++probe) {
    const uint64_t addr = 0x100000 + rng.NextBelow(48 * 0x1000 + 0x1000);
    const uint64_t size = 1 + rng.NextBelow(16);
    std::optional<uint32_t> expected;
    for (const Region& region : reference) {
      if (region.Contains(addr, size)) {
        expected = region.prot;
        break;
      }
    }
    EXPECT_EQ(store->Lookup(addr, size), expected)
        << GetParam().name << " addr=0x" << std::hex << addr << " size="
        << size;
  }
}

TEST_P(StoreContractTest, OverlapPolicyIsDeclared) {
  auto store = GetParam().make();
  ASSERT_TRUE(store->Add(Region{0x1000, 0x1000, kProtRW}).ok());
  const Status status = store->Add(Region{0x1800, 0x1000, kProtRead});
  if (GetParam().supports_overlap) {
    EXPECT_TRUE(status.ok()) << GetParam().name;
    // First match wins.
    EXPECT_EQ(*store->Lookup(0x1900, 4), kProtRW);
  } else {
    EXPECT_FALSE(status.ok()) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, StoreContractTest, ::testing::ValuesIn(AllStores()),
    [](const ::testing::TestParamInfo<StoreParam>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ------------------------------------------------- structure specifics --

TEST(RegionTable64Test, CapacityIs64) {
  RegionTable64 table;
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(table.Add(Region{i * 0x1000, 0x100, kProtRW}).ok()) << i;
  }
  const Status status = table.Add(Region{65 * 0x1000, 0x100, kProtRW});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNoSpace);
}

TEST(RegionTable64Test, RemovePreservesFirstMatchOrder) {
  RegionTable64 table;
  ASSERT_TRUE(table.Add(Region{0x1000, 0x1000, kProtRW}).ok());
  ASSERT_TRUE(table.Add(Region{0x1800, 0x1000, kProtRead}).ok());  // overlap
  ASSERT_TRUE(table.Add(Region{0x2000, 0x1000, kProtWrite}).ok()); // overlap
  ASSERT_TRUE(table.Remove(0x1000).ok());
  // Now the 0x1800 region is first; a probe in the overlap favors it.
  EXPECT_EQ(*table.Lookup(0x2100, 4), kProtRead);
}

TEST(RegionTable64Test, ScanCountsEntries) {
  RegionTable64 table;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Add(Region{i * 0x1000, 0x100, kProtRW}).ok());
  }
  table.ResetStats();
  (void)table.Lookup(9 * 0x1000, 4);  // last entry -> 10 scans
  EXPECT_EQ(table.stats().entries_scanned, 10u);
  (void)table.Lookup(0, 4);  // first entry -> 1 scan
  EXPECT_EQ(table.stats().entries_scanned, 11u);
}

TEST(SplayTest, HotRegionMovesToRoot) {
  SplayRegionTree tree;
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree.Add(Region{i * 0x1000, 0x800, kProtRW}).ok());
  }
  const uint64_t hot = 40 * 0x1000 + 16;
  (void)tree.Lookup(hot, 4);
  // After splaying, the hot region answers from the root.
  EXPECT_EQ(tree.ProbeDepth(hot), 1u);
  // And repeated hot lookups stay O(1) while the tree still answers
  // everything else correctly.
  (void)tree.Lookup(hot, 4);
  EXPECT_EQ(tree.ProbeDepth(hot), 1u);
  EXPECT_TRUE(tree.Lookup(3 * 0x1000, 4).has_value());
}

TEST(SplayTest, RemoveKeepsTreeConsistent) {
  SplayRegionTree tree;
  for (uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(tree.Add(Region{i * 0x1000, 0x800, kProtRW}).ok());
  }
  for (uint64_t i = 0; i < 32; i += 2) {
    ASSERT_TRUE(tree.Remove(i * 0x1000).ok());
  }
  EXPECT_EQ(tree.Size(), 16u);
  for (uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(tree.Lookup(i * 0x1000 + 4, 4).has_value(), i % 2 == 1) << i;
  }
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1 << 12, 3);
  Xoshiro256 rng(7);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.Next());
  for (uint64_t key : keys) filter.Insert(key);
  for (uint64_t key : keys) EXPECT_TRUE(filter.MaybeContains(key));
}

TEST(BloomFilterTest, FalsePositiveRateReasonable) {
  BloomFilter filter(1 << 14, 3);
  Xoshiro256 rng(8);
  for (int i = 0; i < 500; ++i) filter.Insert(rng.Next());
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MaybeContains(rng.Next() | (1ull << 63))) ++false_positives;
  }
  const double rate = static_cast<double>(false_positives) / probes;
  EXPECT_LT(rate, 0.05);
  EXPECT_LT(filter.EstimatedFalsePositiveRate(), 0.05);
}

TEST(BloomFrontTest, NegativeLookupSkipsInner) {
  auto store = std::make_unique<BloomFrontStore>(
      std::make_unique<SortedRegionTable>());
  ASSERT_TRUE(store->Add(Region{0x100000, 0x1000, kProtRW}).ok());
  store->ResetStats();
  // Far-away address: filter answers definitively.
  EXPECT_FALSE(store->Lookup(0x900000000ull, 8).has_value());
  EXPECT_EQ(store->stats().fast_path_hits, 1u);
}

TEST(BloomFrontTest, RemoveRebuildsFilter) {
  auto store = std::make_unique<BloomFrontStore>(
      std::make_unique<SortedRegionTable>());
  ASSERT_TRUE(store->Add(Region{0x100000, 0x1000, kProtRW}).ok());
  ASSERT_TRUE(store->Add(Region{0x300000, 0x1000, kProtRead}).ok());
  ASSERT_TRUE(store->Remove(0x100000).ok());
  EXPECT_FALSE(store->Lookup(0x100800, 8).has_value());
  EXPECT_TRUE(store->Lookup(0x300800, 8).has_value());
}

TEST(CuckooFilterTest, InsertContainsDelete) {
  CuckooFilter filter(1024);
  Xoshiro256 rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 400; ++i) keys.push_back(rng.Next());
  for (uint64_t key : keys) ASSERT_TRUE(filter.Insert(key));
  for (uint64_t key : keys) EXPECT_TRUE(filter.Contains(key));
  EXPECT_EQ(filter.Size(), 400u);
  // Delete half; the rest must remain, the deleted must (mostly) vanish.
  for (size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(filter.Delete(keys[i]));
  }
  for (size_t i = 1; i < keys.size(); i += 2) {
    EXPECT_TRUE(filter.Contains(keys[i])) << i;
  }
  EXPECT_EQ(filter.Size(), 200u);
}

TEST(CuckooFilterTest, DuplicateInsertsSurviveOneDelete) {
  CuckooFilter filter(256);
  ASSERT_TRUE(filter.Insert(42));
  ASSERT_TRUE(filter.Insert(42));
  ASSERT_TRUE(filter.Delete(42));
  EXPECT_TRUE(filter.Contains(42));  // second copy still present
  ASSERT_TRUE(filter.Delete(42));
  EXPECT_FALSE(filter.Contains(42));
}

TEST(CuckooFilterTest, FalsePositiveRateLow) {
  CuckooFilter filter(1 << 12);
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) filter.Insert(rng.Next());
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.Contains(rng.Next() | (1ull << 63))) ++false_positives;
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.02);
}

TEST(CuckooFilterTest, RefusesWhenOverfull) {
  CuckooFilter filter(64);  // tiny
  Xoshiro256 rng(5);
  bool refused = false;
  for (int i = 0; i < 200 && !refused; ++i) {
    refused = !filter.Insert(rng.Next());
  }
  EXPECT_TRUE(refused);
  EXPECT_GT(filter.LoadFactor(), 0.85);  // refuses only when nearly full
}

TEST(CuckooFrontTest, RemoveKeepsSharedPagesVisible) {
  auto store = std::make_unique<CuckooFrontStore>(
      std::make_unique<RegionTable64>());
  // Two regions share the 0x100000 page.
  ASSERT_TRUE(store->Add(Region{0x100000, 0x200, kProtRW}).ok());
  ASSERT_TRUE(store->Add(Region{0x100800, 0x200, kProtRead}).ok());
  ASSERT_TRUE(store->Remove(0x100000).ok());
  // The second region on the shared page must still be found.
  EXPECT_TRUE(store->Lookup(0x100900, 8).has_value());
  EXPECT_FALSE(store->Lookup(0x100000, 8).has_value());
}

TEST(CuckooFrontTest, NegativeLookupSkipsInner) {
  auto store = std::make_unique<CuckooFrontStore>(
      std::make_unique<RegionTable64>());
  ASSERT_TRUE(store->Add(Region{0x100000, 0x1000, kProtRW}).ok());
  store->ResetStats();
  EXPECT_FALSE(store->Lookup(0x900000000ull, 8).has_value());
  EXPECT_EQ(store->stats().fast_path_hits, 1u);
}

TEST(CacheStoreTest, RepeatHitsUseCache) {
  auto store = std::make_unique<SingleEntryCacheStore>(
      std::make_unique<RegionTable64>());
  ASSERT_TRUE(store->Add(Region{0x1000, 0x1000, kProtRW}).ok());
  (void)store->Lookup(0x1100, 8);
  store->ResetStats();
  for (int i = 0; i < 10; ++i) (void)store->Lookup(0x1200, 8);
  EXPECT_EQ(store->stats().fast_path_hits, 10u);
  // Inner store untouched during cached hits.
  EXPECT_EQ(store->inner().stats().lookups, 1u);
}

TEST(CacheStoreTest, MutationInvalidatesCache) {
  auto store = std::make_unique<SingleEntryCacheStore>(
      std::make_unique<RegionTable64>());
  ASSERT_TRUE(store->Add(Region{0x1000, 0x1000, kProtRW}).ok());
  (void)store->Lookup(0x1100, 8);
  ASSERT_TRUE(store->Remove(0x1000).ok());
  EXPECT_FALSE(store->Lookup(0x1100, 8).has_value());
}

TEST(LshStoreTest, RegionsSpanningBucketsFound) {
  LshBucketStore store(/*bucket_shift=*/12);  // 4 KiB buckets
  // Region spanning three buckets.
  ASSERT_TRUE(store.Add(Region{0x1800, 0x2000, kProtRW}).ok());
  EXPECT_TRUE(store.Lookup(0x1900, 8).has_value());
  EXPECT_TRUE(store.Lookup(0x2800, 8).has_value());
  EXPECT_TRUE(store.Lookup(0x3700, 8).has_value());
  EXPECT_FALSE(store.Lookup(0x3800, 8).has_value());
  EXPECT_GE(store.BucketCount(), 3u);
}

TEST(LshStoreTest, FirstMatchOrderAcrossOverlaps) {
  LshBucketStore store(12);
  ASSERT_TRUE(store.Add(Region{0x1000, 0x2000, kProtRW}).ok());
  ASSERT_TRUE(store.Add(Region{0x1800, 0x2000, kProtRead}).ok());
  EXPECT_EQ(*store.Lookup(0x1900, 4), kProtRW);  // earlier insertion wins
  ASSERT_TRUE(store.Remove(0x1000).ok());
  EXPECT_EQ(*store.Lookup(0x1900, 4), kProtRead);
}

// ------------------------------------------------------------- engine --

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : engine_(&kernel_, std::make_unique<RegionTable64>(),
                PolicyMode::kDefaultDeny) {
    engine_.SetViolationAction(ViolationAction::kLogOnly);
  }
  kernel::Kernel kernel_;
  PolicyEngine engine_;
};

TEST_F(EngineTest, DefaultDenySemantics) {
  EXPECT_FALSE(engine_.Check(0x1000, 8, kGuardAccessRead));
  ASSERT_TRUE(engine_.store().Add(Region{0x1000, 0x100, kProtRead}).ok());
  EXPECT_TRUE(engine_.Check(0x1000, 8, kGuardAccessRead));
  EXPECT_FALSE(engine_.Check(0x1000, 8, kGuardAccessWrite));
  EXPECT_FALSE(engine_.Check(0x2000, 8, kGuardAccessRead));
}

TEST_F(EngineTest, DefaultAllowSemantics) {
  engine_.SetMode(PolicyMode::kDefaultAllow);
  EXPECT_TRUE(engine_.Check(0x9000, 8, kGuardAccessWrite));
  // A restricting region takes away write.
  ASSERT_TRUE(engine_.store().Add(Region{0x9000, 0x100, kProtRead}).ok());
  EXPECT_TRUE(engine_.Check(0x9000, 8, kGuardAccessRead));
  EXPECT_FALSE(engine_.Check(0x9000, 8, kGuardAccessWrite));
}

TEST_F(EngineTest, GuardCountsAndLogs) {
  ASSERT_TRUE(engine_.store().Add(Region{0x1000, 0x100, kProtRW}).ok());
  EXPECT_TRUE(engine_.Guard(0x1000, 8, kGuardAccessRead));
  EXPECT_FALSE(engine_.Guard(0x5000, 8, kGuardAccessWrite));
  EXPECT_EQ(engine_.stats().guard_calls, 2u);
  EXPECT_EQ(engine_.stats().allowed, 1u);
  EXPECT_EQ(engine_.stats().denied, 1u);
  EXPECT_TRUE(kernel_.log().Contains("forbidden write access"));
}

TEST_F(EngineTest, GuardChargesClockByRegionCount) {
  engine_.SetMode(PolicyMode::kDefaultAllow);
  const double before = kernel_.clock().NowCycles();
  EXPECT_TRUE(engine_.Guard(0x1, 8, kGuardAccessRead));
  const double one_guard = kernel_.clock().NowCycles() - before;
  EXPECT_NEAR(one_guard, kernel_.machine().GuardCycles(0), 1e-9);
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        engine_.store().Add(Region{i << 20, 0x1000, kProtRW}).ok());
  }
  const double before64 = kernel_.clock().NowCycles();
  EXPECT_TRUE(engine_.Guard(0x1, 8, kGuardAccessRead));
  EXPECT_NEAR(kernel_.clock().NowCycles() - before64,
              kernel_.machine().GuardCycles(64), 1e-9);
}

TEST_F(EngineTest, PanicActionThrows) {
  engine_.SetViolationAction(ViolationAction::kPanic);
  EXPECT_THROW((void)engine_.Guard(0x5000, 8, kGuardAccessRead),
               kernel::KernelPanic);
  EXPECT_TRUE(kernel_.panicked());
}

TEST_F(EngineTest, SwapStorePreservesPolicy) {
  ASSERT_TRUE(engine_.store().Add(Region{0x1000, 0x100, kProtRW}).ok());
  auto old = engine_.SwapStore(std::make_unique<SplayRegionTree>());
  EXPECT_EQ(engine_.store().name(), "splay-tree");
  EXPECT_TRUE(engine_.Check(0x1000, 8, kGuardAccessRead));
}

TEST_F(EngineTest, IntrinsicTableThreeStates) {
  engine_.SetIntrinsicDefaultAllow(false);
  EXPECT_FALSE(engine_.IntrinsicGuard(1));
  engine_.AllowIntrinsic(1);
  EXPECT_TRUE(engine_.IntrinsicGuard(1));
  engine_.DenyIntrinsic(1);
  EXPECT_FALSE(engine_.IntrinsicGuard(1));
  engine_.SetIntrinsicDefaultAllow(true);
  EXPECT_TRUE(engine_.IntrinsicGuard(2));  // unlisted -> default
  EXPECT_EQ(engine_.stats().intrinsic_calls, 4u);
  EXPECT_EQ(engine_.stats().intrinsic_denied, 2u);
}

TEST_F(EngineTest, ViolationRingRecordsDenials) {
  ASSERT_TRUE(engine_.store().Add(Region{0x1000, 0x100, kProtRead}).ok());
  EXPECT_TRUE(engine_.Guard(0x1000, 8, kGuardAccessRead));   // allowed
  EXPECT_FALSE(engine_.Guard(0x1000, 8, kGuardAccessWrite)); // denied
  EXPECT_FALSE(engine_.Guard(0x9000, 4, kGuardAccessRead));  // denied
  engine_.SetIntrinsicDefaultAllow(false);
  EXPECT_FALSE(engine_.IntrinsicGuard(3));                   // denied

  const auto violations = engine_.RecentViolations();
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_EQ(violations[0].addr, 0x1000u);
  EXPECT_EQ(violations[0].access_flags, kGuardAccessWrite);
  EXPECT_FALSE(violations[0].intrinsic);
  EXPECT_EQ(violations[1].addr, 0x9000u);
  EXPECT_EQ(violations[1].size, 4u);
  EXPECT_TRUE(violations[2].intrinsic);
  EXPECT_EQ(violations[2].addr, 3u);  // intrinsic id in addr field

  engine_.ResetStats();
  EXPECT_TRUE(engine_.RecentViolations().empty());
}

TEST_F(EngineTest, ViolationRingKeepsMostRecent64) {
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(engine_.Guard(0x10000 + i, 1, kGuardAccessRead));
  }
  const auto violations = engine_.RecentViolations();
  ASSERT_EQ(violations.size(), 64u);
  EXPECT_EQ(violations.front().addr, 0x10000u + 36);  // oldest kept
  EXPECT_EQ(violations.back().addr, 0x10000u + 99);
}

TEST_F(EngineTest, ViolationRingWrapKeepsMonotonicSequence) {
  // Log-only audit mode (the fixture default) must still record every
  // denial; sequences are guard-call ordinals, so they stay strictly
  // increasing and contiguous even after the 64-entry ring wraps.
  for (uint64_t i = 0; i < 150; ++i) {
    EXPECT_FALSE(engine_.Guard(0x20000 + i, 1, kGuardAccessWrite));
  }
  const auto violations = engine_.RecentViolations();
  ASSERT_EQ(violations.size(), 64u);
  for (size_t i = 1; i < violations.size(); ++i) {
    EXPECT_EQ(violations[i].sequence, violations[i - 1].sequence + 1);
  }
  EXPECT_EQ(violations.back().sequence, 150u);  // nth guard call overall
  EXPECT_EQ(violations.back().addr, 0x20000u + 149);
  EXPECT_EQ(engine_.stats().denied, 150u);
}

TEST_F(EngineTest, ViolationCarriesPinnedGuardSite) {
  // When a site context is pinned (as the module loader does around
  // interpreted guard calls), the denial and the hot-site table both
  // charge that exact site.
  trace::SiteInfo info;
  info.module_name = "enginetest";
  info.function = "poke";
  const uint64_t token = trace::GlobalSites().Register(info);
  {
    trace::ScopedGuardSite scope(token);
    EXPECT_FALSE(engine_.Guard(0x5000, 8, kGuardAccessWrite));
  }
  EXPECT_FALSE(engine_.Guard(0x6000, 8, kGuardAccessWrite));  // unpinned

  const auto violations = engine_.RecentViolations();
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].site, token);
  EXPECT_EQ(violations[1].site, trace::kUnknownSite);

  uint64_t site_denials = 0;
  for (const HotSite& row : engine_.HotSites()) {
    if (row.site == token) site_denials = row.denied;
  }
  EXPECT_EQ(site_denials, 1u);
}

TEST_F(EngineTest, CfiCheckDecidesMembershipAndCountsDenials) {
  const uint64_t base = engine_.RegisterCfiSets({{0x40, 0x20, 0x30}, {0x10}});
  EXPECT_EQ(engine_.CfiSetCount(), 2u);
  EXPECT_TRUE(engine_.CfiCheck(0x20, base + 0));
  EXPECT_TRUE(engine_.CfiCheck(0x40, base + 0));
  EXPECT_FALSE(engine_.CfiCheck(0x10, base + 0));  // member of the OTHER set
  EXPECT_TRUE(engine_.CfiCheck(0x10, base + 1));
  // An out-of-range set id denies: unknown provenance never licences a jump.
  EXPECT_FALSE(engine_.CfiCheck(0x20, base + 2));
  EXPECT_EQ(engine_.stats().cfi_checks, 5u);
  EXPECT_EQ(engine_.stats().cfi_denied, 2u);
  // CFI misses land in the violation ring flagged as cfi, with the target
  // in the addr field and the set id in the size field.
  const auto violations = engine_.RecentViolations();
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_TRUE(violations[0].cfi);
  EXPECT_EQ(violations[0].addr, 0x10u);
  EXPECT_EQ(violations[0].size, base + 0);
  EXPECT_TRUE(violations[1].cfi);
}

TEST_F(EngineTest, FastCfiCheckNeedsPinAndSendsMissesToSlowPath) {
  const uint64_t base = engine_.RegisterCfiSets({{0x40, 0x20}});
  // Unpinned: the fast path refuses without deciding anything.
  EXPECT_FALSE(engine_.FastCfiCheck(0x20, base, 0));
  EXPECT_EQ(engine_.stats().cfi_checks, 0u);
  ASSERT_TRUE(engine_.PinFrame());
  EXPECT_TRUE(engine_.FastCfiCheck(0x20, base, 0));
  // A miss deopts; the slow path owns violation semantics and must reach
  // the same verdict.
  EXPECT_FALSE(engine_.FastCfiCheck(0x99, base, 0));
  EXPECT_FALSE(engine_.CfiCheck(0x99, base));
  engine_.UnpinFrame();
  EXPECT_EQ(engine_.stats().cfi_denied, 1u);
}

TEST_F(EngineTest, RegisterCfiSetsRebasesPerModule) {
  // Two "modules" register independently; ids are engine-global and the
  // returned base rebases each module's local set 0.
  const uint64_t first = engine_.RegisterCfiSets({{0x100}});
  const uint64_t second = engine_.RegisterCfiSets({{0x200}});
  EXPECT_EQ(second, first + 1);
  EXPECT_TRUE(engine_.CfiCheck(0x100, first));
  EXPECT_TRUE(engine_.CfiCheck(0x200, second));
  EXPECT_FALSE(engine_.CfiCheck(0x200, first));
}

TEST_F(EngineTest, ConcurrentGuardsAndMutationsStaySane) {
  // Hammer the engine from reader threads while a writer churns the
  // table; counts must add up and nothing may crash or deadlock.
  engine_.SetMode(PolicyMode::kDefaultAllow);
  engine_.SetChargeCycles(false);  // the virtual clock is not the SUT here
  constexpr int kReaders = 3;
  constexpr int kGuardsPerReader = 20000;
  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    uint64_t i = 0;
    while (!stop.load()) {
      const uint64_t base = 0x100000 + (i % 32) * 0x1000;
      if (engine_.store().Add(Region{base, 0x800, kProtRW}).ok()) {
        (void)engine_.store().Remove(base);
      }
      ++i;
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      Xoshiro256 rng(uint64_t(t) + 1);
      for (int i = 0; i < kGuardsPerReader; ++i) {
        (void)engine_.Guard(0x100000 + rng.NextBelow(32 * 0x1000), 8,
                            kGuardAccessRead);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(engine_.stats().guard_calls,
            uint64_t(kReaders) * kGuardsPerReader);
  EXPECT_EQ(engine_.stats().allowed + engine_.stats().denied,
            engine_.stats().guard_calls);
}

// ------------------------------------------------------- policy module --

class PolicyModuleTest : public ::testing::Test {
 protected:
  PolicyModuleTest() {
    auto module = PolicyModule::Insert(&kernel_);
    EXPECT_TRUE(module.ok());
    module_ = std::move(*module);
    module_->engine().SetViolationAction(ViolationAction::kLogOnly);
  }

  Status Ioctl(uint32_t cmd, std::vector<uint8_t>& arg) {
    return kernel_.devices().Ioctl(kCaratDevicePath, cmd, arg);
  }

  kernel::Kernel kernel_;
  std::unique_ptr<PolicyModule> module_;
};

TEST_F(PolicyModuleTest, ExportsGuardSymbols) {
  EXPECT_TRUE(kernel_.symbols().HasFunction("carat_guard"));
  EXPECT_TRUE(kernel_.symbols().HasFunction("carat_intrinsic_guard"));
  EXPECT_TRUE(kernel_.devices().Exists(kCaratDevicePath));
  EXPECT_TRUE(kernel_.log().Contains("policy module loaded"));
}

TEST_F(PolicyModuleTest, GuardSymbolRoutesToEngine) {
  auto arg = PackArg(CaratRegionArg{0x5000, 0x100, kProtRead, 0});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_ADD_REGION, arg).ok());
  auto allowed =
      kernel_.symbols().Call("carat_guard", {0x5000, 8, kGuardAccessRead});
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(*allowed, 1u);
  auto denied =
      kernel_.symbols().Call("carat_guard", {0x5000, 8, kGuardAccessWrite});
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(*denied, 0u);
}

TEST_F(PolicyModuleTest, SecondInsertFails) {
  auto second = PolicyModule::Insert(&kernel_);
  EXPECT_FALSE(second.ok());  // carat_guard already exported
}

TEST_F(PolicyModuleTest, RmmodUnexports) {
  module_.reset();
  EXPECT_FALSE(kernel_.symbols().HasFunction("carat_guard"));
  EXPECT_FALSE(kernel_.devices().Exists(kCaratDevicePath));
  // Reinsert works after rmmod.
  auto again = PolicyModule::Insert(&kernel_);
  EXPECT_TRUE(again.ok());
}

TEST_F(PolicyModuleTest, IoctlAddRemoveClearCount) {
  auto add = PackArg(CaratRegionArg{0x1000, 0x100, kProtRW, 0});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_ADD_REGION, add).ok());
  auto add2 = PackArg(CaratRegionArg{0x2000, 0x100, kProtRW, 0});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_ADD_REGION, add2).ok());

  CaratCountArg count;
  auto count_arg = PackArg(count);
  ASSERT_TRUE(Ioctl(KOP_IOCTL_COUNT_REGIONS, count_arg).ok());
  ASSERT_TRUE(UnpackArg(count_arg, &count));
  EXPECT_EQ(count.count, 2u);

  auto remove = PackArg(CaratRegionArg{0x1000, 0, 0, 0});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_REMOVE_REGION, remove).ok());
  std::vector<uint8_t> empty;
  ASSERT_TRUE(Ioctl(KOP_IOCTL_CLEAR_REGIONS, empty).ok());
  count_arg = PackArg(CaratCountArg{});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_COUNT_REGIONS, count_arg).ok());
  ASSERT_TRUE(UnpackArg(count_arg, &count));
  EXPECT_EQ(count.count, 0u);
}

TEST_F(PolicyModuleTest, IoctlListRegions) {
  for (uint64_t i = 0; i < 3; ++i) {
    auto add = PackArg(CaratRegionArg{0x1000 * (i + 1), 0x80, kProtRead, 0});
    ASSERT_TRUE(Ioctl(KOP_IOCTL_ADD_REGION, add).ok());
  }
  CaratListArg list;
  auto list_arg = PackArg(list);
  ASSERT_TRUE(Ioctl(KOP_IOCTL_LIST_REGIONS, list_arg).ok());
  ASSERT_TRUE(UnpackArg(list_arg, &list));
  ASSERT_EQ(list.count, 3u);
  EXPECT_EQ(list.regions[1].base, 0x2000u);
  EXPECT_EQ(list.regions[2].prot, kProtRead);
}

TEST_F(PolicyModuleTest, IoctlSetModeAndStats) {
  auto mode = PackArg(CaratModeArg{1, 0});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_SET_MODE, mode).ok());
  EXPECT_EQ(module_->engine().mode(), PolicyMode::kDefaultAllow);

  (void)module_->engine().Guard(0x1234, 8, kGuardAccessRead);
  CaratStatsArg stats;
  auto stats_arg = PackArg(stats);
  ASSERT_TRUE(Ioctl(KOP_IOCTL_GET_STATS, stats_arg).ok());
  ASSERT_TRUE(UnpackArg(stats_arg, &stats));
  EXPECT_EQ(stats.guard_calls, 1u);
  EXPECT_EQ(stats.allowed, 1u);

  std::vector<uint8_t> empty;
  ASSERT_TRUE(Ioctl(KOP_IOCTL_RESET_STATS, empty).ok());
  stats_arg = PackArg(CaratStatsArg{});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_GET_STATS, stats_arg).ok());
  ASSERT_TRUE(UnpackArg(stats_arg, &stats));
  EXPECT_EQ(stats.guard_calls, 0u);
}

TEST_F(PolicyModuleTest, IoctlIntrinsicControl) {
  auto allow = PackArg(CaratIntrinsicArg{4});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_ALLOW_INTRINSIC, allow).ok());
  EXPECT_TRUE(module_->engine().IntrinsicGuard(4));
  auto deny = PackArg(CaratIntrinsicArg{4});
  ASSERT_TRUE(Ioctl(KOP_IOCTL_DENY_INTRINSIC, deny).ok());
  EXPECT_FALSE(module_->engine().IntrinsicGuard(4));
}

TEST_F(PolicyModuleTest, IoctlGetViolations) {
  (void)module_->engine().Guard(0x1234, 8, kGuardAccessWrite);  // denied
  (void)module_->engine().Guard(0x5678, 2, kGuardAccessRead);   // denied
  CaratViolationsArg reply;
  auto arg = PackArg(reply);
  ASSERT_TRUE(Ioctl(KOP_IOCTL_GET_VIOLATIONS, arg).ok());
  ASSERT_TRUE(UnpackArg(arg, &reply));
  ASSERT_EQ(reply.count, 2u);
  EXPECT_EQ(reply.records[0].addr, 0x1234u);
  EXPECT_EQ(reply.records[0].access_flags, kGuardAccessWrite);
  EXPECT_EQ(reply.records[1].addr, 0x5678u);
  EXPECT_EQ(reply.records[1].size, 2u);
}

TEST_F(PolicyModuleTest, IoctlRejectsBadInput) {
  std::vector<uint8_t> tiny(2);
  EXPECT_FALSE(Ioctl(KOP_IOCTL_ADD_REGION, tiny).ok());
  std::vector<uint8_t> empty;
  EXPECT_FALSE(Ioctl(0x9999, empty).ok());
}

TEST_F(PolicyModuleTest, RegionToStringReadable) {
  const Region region{0x1000, 0x200, kProtRead};
  EXPECT_EQ(region.ToString(), "[0x1000, +0x200) r-");
  const Region rw{0x0, 0x1, kProtRW};
  EXPECT_EQ(rw.ToString(), "[0x0, +0x1) rw");
}

}  // namespace
}  // namespace kop::policy
