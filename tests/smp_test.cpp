// kop::smp — the concurrency battery. Proves the SMP guarded-execution
// claims: per-CPU counters fold to exact global totals, policy updates
// land fully-old-or-fully-new (a guard never decides against a
// half-applied update), concurrent violations elect exactly one
// containment winner with every CPU's journal rolled back, and the
// --cpus 1 path is bit-identical to the non-SMP path. Module tests run
// on both execution engines — the per-CPU slots sit below the engine
// seam, so behavior must match exactly.
//
// Build with -DKOP_SANITIZE=thread to run this battery under TSan; the
// RCU grace-period test doubles as a use-after-free probe under ASan.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/policy/engine.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/signing/signer.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/smp/executor.hpp"
#include "kop/smp/rcu.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"

namespace kop {
namespace {

using kernel::ExecEngine;
using kernel::Kernel;
using kernel::KernelConfig;
using kernel::LoadedModule;
using kernel::ModuleLoader;

constexpr uint64_t kForbiddenAddr = 0x1000;  // inside the denied user range

const char* kSmpSource = R"(module "kop_smp"

global @scratch size 256 rw

func @init() -> i64 {
entry:
  ret i64 1
}

func @bump(ptr %addr, i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %v = load i64, %addr
  %v1 = add i64 %v, 1
  store i64 %v1, %addr
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret i64 %i
}

func @poke(ptr %addr, i64 %v) -> i64 {
entry:
  store i64 %v, %addr
  ret i64 %v
}

func @poke_then_violate(ptr %addr, i64 %v, ptr %bad) -> i64 {
entry:
  store i64 %v, %addr
  store i64 %v, %bad
  ret i64 0
}
)";

signing::SignedModule CompileAndSign(const std::string& source) {
  auto compiled = transform::CompileModuleText(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

signing::Keyring TrustedKeyring() {
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  return keyring;
}

KernelConfig SmallKernel() {
  KernelConfig config;
  config.ram_bytes = 4ull << 20;
  config.kernel_text_bytes = 1ull << 20;
  config.module_area_bytes = 4ull << 20;
  config.user_bytes = 1ull << 20;
  return config;
}

/// One kernel + policy + loader + loaded module, on a chosen engine.
struct Rig {
  explicit Rig(ExecEngine engine)
      : kernel(SmallKernel()), loader(&kernel, TrustedKeyring()) {
    auto inserted = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(inserted.ok()) << inserted.status().ToString();
    policy = std::move(*inserted);
    policy->engine().SetViolationAction(policy::ViolationAction::kQuarantine);
    EXPECT_TRUE(policy->engine()
                    .store()
                    .Add(policy::Region{0, kernel::kUserSpaceEnd,
                                        policy::kProtNone})
                    .ok());
    loader.set_engine(engine);
    auto loaded = loader.Insmod(CompileAndSign(kSmpSource));
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    module = *loaded;
  }

  uint64_t ScratchSlot(uint32_t cpu) {
    auto base = module->GlobalAddress("scratch");
    EXPECT_TRUE(base.ok());
    return *base + uint64_t{cpu} * 8;
  }

  uint64_t ReadSlot(uint32_t cpu) {
    auto value = kernel.mem().Read64(ScratchSlot(cpu));
    EXPECT_TRUE(value.ok());
    return *value;
  }

  Kernel kernel;
  ModuleLoader loader;
  std::unique_ptr<policy::PolicyModule> policy;
  LoadedModule* module = nullptr;
};

const ExecEngine kEngines[] = {ExecEngine::kBytecode, ExecEngine::kInterp};

// --------------------------------------------------- counter exactness

// N CPUs hammer the module concurrently, each on a disjoint scratch
// slot. The per-CPU counter slices must fold to EXACT global totals —
// no lost updates, no double counts — and the per-slot data must show
// every iteration landed.
TEST(SmpTest, PerCpuGuardCountsSumToGlobalExactly) {
  constexpr uint32_t kCpus = 4;
  constexpr uint64_t kIters = 50;
  constexpr int kCallsPerCpu = 2;
  for (ExecEngine engine : kEngines) {
    Rig rig(engine);
    ASSERT_TRUE(rig.loader.PrepareCpus(kCpus).ok());
    ASSERT_EQ(rig.module->prepared_cpus(), kCpus);
    rig.policy->engine().ResetStats();

    smp::RunOnCpus(kCpus, [&](uint32_t cpu) {
      for (int call = 0; call < kCallsPerCpu; ++call) {
        auto result = rig.module->Call("bump", {rig.ScratchSlot(cpu), kIters});
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ASSERT_EQ(*result, kIters);
      }
    });

    // Every CPU's every iteration landed on its own slot.
    for (uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      EXPECT_EQ(rig.ReadSlot(cpu), kIters * kCallsPerCpu)
          << "cpu " << cpu << " engine " << kernel::ExecEngineName(engine);
    }

    // The fold equals the sum of the per-CPU slices, field by field.
    const policy::GuardStats total = rig.policy->engine().stats();
    policy::GuardStats summed;
    for (uint32_t cpu = 0; cpu < smp::kMaxCpus; ++cpu) {
      const policy::GuardStats slice = rig.policy->engine().PerCpuStats(cpu);
      summed.guard_calls += slice.guard_calls;
      summed.allowed += slice.allowed;
      summed.denied += slice.denied;
      summed.intrinsic_calls += slice.intrinsic_calls;
      summed.intrinsic_denied += slice.intrinsic_denied;
      summed.elided += slice.elided;
    }
    EXPECT_EQ(total.guard_calls, summed.guard_calls);
    EXPECT_EQ(total.allowed, summed.allowed);
    EXPECT_EQ(total.denied, summed.denied);
    EXPECT_EQ(total.intrinsic_calls, summed.intrinsic_calls);
    EXPECT_EQ(total.intrinsic_denied, summed.intrinsic_denied);
    EXPECT_EQ(total.elided, summed.elided);

    // bump guards one load + one store per iteration. The load (flags 1)
    // and store (flags 2) never widen into one cover — flags must match
    // exactly — so guard_calls + elided is the exact access total on
    // every elision setting, with elided pinned at zero here.
    EXPECT_EQ(total.guard_calls + total.elided,
              kCpus * kCallsPerCpu * kIters * 2);
    EXPECT_EQ(total.elided, 0u);
    EXPECT_EQ(total.allowed + total.denied, total.guard_calls);
    EXPECT_EQ(total.denied, 0u);
  }
}

// --------------------------------------- inline-guard deopt under swap

// Store structure swaps mid-workload must deopt the pinned inline fast
// path, never corrupt verdicts or counts. Worker CPUs hammer bump()
// back-to-back while CPU 0 swaps the policy store repeatedly; each swap
// republishes a frame with a fresh generation while workers hold pins
// from before the swap, so their next inline guard bails to the slow
// path (counted once there — totals stay exact) and repins.
TEST(SmpTest, StoreSwapMidWorkloadDeoptsInlineGuardsAndStaysExact) {
  constexpr uint32_t kCpus = 4;
  constexpr uint64_t kIters = 20000;  // long calls, so swaps land mid-call
  constexpr uint64_t kCallsPerCpu = 12;
  constexpr int kSwaps = 4;
  constexpr uint64_t kWorkerCalls = (kCpus - 1) * kCallsPerCpu;
  for (ExecEngine engine : kEngines) {
    Rig rig(engine);
    ASSERT_TRUE(rig.loader.PrepareCpus(kCpus).ok());
    rig.policy->engine().ResetStats();
    const uint64_t deopts_before =
        trace::GlobalMetrics().GetCounter("guard.deopt")->value();

    std::atomic<uint64_t> completed{0};
    smp::RunOnCpus(kCpus, [&](uint32_t cpu) {
      if (cpu == 0) {
        uint64_t next_sliver = 0x1000;
        for (int swap = 0; swap < kSwaps; ++swap) {
          // SwapStore blocks for the RCU grace period, which in-flight
          // pinned calls hold for their whole duration — so every swap
          // overlaps the workers' calls by construction.
          (void)rig.policy->engine().SwapStore(
              std::make_unique<policy::RegionTable64>());
          // Distinct per-swap Add counts keep the new store's generation
          // from ever aliasing a worker's pinned generation (ABA). The
          // slivers sit in already-denied user space the workload never
          // touches; bases are globally unique because SwapStore carries
          // regions over and identical regions are rejected.
          for (int add = 0; add <= swap; ++add) {
            ASSERT_TRUE(rig.policy->engine()
                            .store()
                            .Add(policy::Region{next_sliver, 0x8,
                                                policy::kProtNone})
                            .ok());
            next_sliver += 0x10;
          }
          // Pace the swaps across the workload: wait for another worker
          // call to retire (or the whole workload to drain) first.
          const uint64_t seen = completed.load(std::memory_order_acquire);
          while (completed.load(std::memory_order_acquire) == seen &&
                 completed.load(std::memory_order_acquire) < kWorkerCalls) {
            std::this_thread::yield();
          }
        }
        return;
      }
      // Fixed call count (the engine budget is engine-lifetime, not
      // per-call) and no early return: `completed` must always reach
      // kWorkerCalls or the swapper's pacing wait would never drain.
      for (uint64_t call = 0; call < kCallsPerCpu; ++call) {
        auto result = rig.module->Call("bump", {rig.ScratchSlot(cpu), kIters});
        if (result.ok()) {
          EXPECT_EQ(*result, kIters) << "cpu " << cpu;
        } else {
          ADD_FAILURE() << "cpu " << cpu << ": " << result.status().ToString();
        }
        completed.fetch_add(1, std::memory_order_release);
      }
    });

    for (uint32_t cpu = 1; cpu < kCpus; ++cpu) {
      EXPECT_EQ(rig.ReadSlot(cpu), kCallsPerCpu * kIters) << "cpu " << cpu;
    }

    // Deopted guards are re-decided (and counted) out of line exactly
    // once, so the global total stays exact across every swap.
    const policy::GuardStats total = rig.policy->engine().stats();
    EXPECT_EQ(total.guard_calls, kWorkerCalls * kIters * 2);
    EXPECT_EQ(total.denied, 0u);
    EXPECT_GT(trace::GlobalMetrics().GetCounter("guard.deopt")->value(),
              deopts_before)
        << kernel::ExecEngineName(engine);
  }
}

// ------------------------------------------- policy update atomicity

// A writer CPU rewrites the policy (Clear + Adds, plus periodic
// SwapStore structure swaps) while reader CPUs sample the frame the
// guard path decides against. Every sampled frame must equal a store
// state that existed at some instant of the mutation history — {},
// {a1}, {a1,a2}, or {b1} — never a state that never existed (old/new
// unions, reordered subsets). Destroying the swapped-out store while
// readers are mid-frame must be safe (the grace period; ASan/TSan turn
// a violation into a hard failure).
TEST(SmpTest, ConcurrentPolicyRewritePublishesFullyOldOrFullyNew) {
  Kernel kernel(SmallKernel());
  policy::PolicyEngine engine(&kernel,
                              std::make_unique<policy::RegionTable64>());
  engine.SetMode(policy::PolicyMode::kDefaultDeny);
  engine.SetChargeCycles(false);

  const policy::Region a1{0x1000, 0x100, policy::kProtRW};
  const policy::Region a2{0x2000, 0x100, policy::kProtRW};
  const policy::Region b1{0x3000, 0x100, policy::kProtRead};
  auto matches = [](const std::vector<policy::Region>& got,
                    const std::vector<policy::Region>& want) {
    if (got.size() != want.size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].base != want[i].base || got[i].len != want[i].len ||
          got[i].prot != want[i].prot) {
        return false;
      }
    }
    return true;
  };
  const std::vector<std::vector<policy::Region>> valid = {
      {}, {a1}, {a1, a2}, {b1}};

  ASSERT_TRUE(engine.store().Add(a1).ok());
  ASSERT_TRUE(engine.store().Add(a2).ok());

  constexpr uint32_t kCpus = 4;
  constexpr int kRounds = 200;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> mixed_frames{0};
  std::atomic<uint64_t> sampled{0};
  smp::RunOnCpus(kCpus, [&](uint32_t cpu) {
    if (cpu == kCpus - 1) {
      for (int i = 0; i < kRounds; ++i) {
        if (i % 2 == 0) {
          // To B: each mutation is atomic; intermediates are real states.
          engine.store().Clear();
          ASSERT_TRUE(engine.store().Add(b1).ok());
        } else {
          engine.store().Clear();
          ASSERT_TRUE(engine.store().Add(a1).ok());
          ASSERT_TRUE(engine.store().Add(a2).ok());
        }
        if (i % 16 == 0) {
          // Structure swap (carries content). The returned old store is
          // destroyed here, immediately — legal only because SwapStore
          // blocked for the grace period.
          (void)engine.SwapStore(
              std::make_unique<policy::RegionTable64>());
        }
      }
      done.store(true, std::memory_order_release);
      return;
    }
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<policy::Region> frame = engine.FrameSnapshot();
      sampled.fetch_add(1, std::memory_order_relaxed);
      bool ok = false;
      for (const auto& state : valid) ok = ok || matches(frame, state);
      if (!ok) mixed_frames.fetch_add(1, std::memory_order_relaxed);
      // The boolean read path rides the same frame machinery.
      (void)engine.Check(0x1010, 8, kGuardAccessWrite);
      (void)engine.Check(0x3010, 8, kGuardAccessRead);
    }
  });

  EXPECT_EQ(mixed_frames.load(), 0u)
      << "a guard observed a policy state that never existed";
  EXPECT_GT(sampled.load(), 0u);
  // Final configuration: kRounds-1 = 199 is odd -> last write was A.
  EXPECT_TRUE(matches(engine.FrameSnapshot(), {a1, a2}));
  EXPECT_TRUE(engine.Check(0x1010, 8, kGuardAccessWrite));
  EXPECT_FALSE(engine.Check(0x3010, 8, kGuardAccessRead));
}

// ---------------------------------------------- one containment winner

// Every CPU violates at once. Exactly one call may win the containment
// race and drive the quarantine; every CPU's pre-violation write must
// be rolled back by its own journal regardless of who won.
TEST(SmpTest, ConcurrentViolationsElectExactlyOneQuarantineWinner) {
  constexpr uint32_t kCpus = 4;
  for (ExecEngine engine : kEngines) {
    Rig rig(engine);
    ASSERT_TRUE(rig.loader.PrepareCpus(kCpus).ok());

    // Seed every CPU's slot with a known value (single-threaded).
    for (uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      ASSERT_TRUE(
          rig.module->Call("poke", {rig.ScratchSlot(cpu), 7 + cpu}).ok());
    }

    std::vector<Status> results(kCpus, OkStatus());
    smp::RunOnCpus(kCpus, [&](uint32_t cpu) {
      auto result = rig.module->Call(
          "poke_then_violate",
          {rig.ScratchSlot(cpu), 0xDEAD, kForbiddenAddr});
      results[cpu] = result.status();
    });

    EXPECT_TRUE(rig.module->quarantined());
    int winners = 0;
    for (uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      EXPECT_FALSE(results[cpu].ok()) << "cpu " << cpu;
      // The winner's message is "module 'kop_smp' quarantined: ...";
      // losers report interruption, a foreign owner, or the late-entry
      // refusal "is quarantined".
      if (results[cpu].message().find("' quarantined:") !=
          std::string::npos) {
        ++winners;
      }
    }
    EXPECT_EQ(winners, 1) << "engine " << kernel::ExecEngineName(engine);

    // Per-CPU rollback: every slot shows its seed, not 0xDEAD.
    for (uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      EXPECT_EQ(rig.ReadSlot(cpu), 7 + cpu)
          << "cpu " << cpu << " journal residue, engine "
          << kernel::ExecEngineName(engine);
    }
    EXPECT_FALSE(rig.module->journaled_memory().journal().active());
    EXPECT_TRUE(rig.module->heap_allocations().empty());
  }
}

// A CFI violation is a containment event like any guard violation: when
// every CPU dispatches through a corrupted vtable concurrently, exactly
// one wins the containment race, the module quarantines under the "cfi"
// reason, and every CPU's journaled writes roll back.
const char* kSmpCfiSource = R"(module "kop_smp_cfi"

global @vtable size 8 rw
global @scratch size 256 rw

func @h_ok(i64 %x) -> i64 {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}

func @vt_init() -> i64 {
entry:
  %f = funcaddr @h_ok
  %i = ptrtoint ptr %f to i64
  store i64 %i, @vtable
  ret i64 1
}

func @poke_then_icall(ptr %slot, i64 %v, i64 %x) -> i64 {
entry:
  store i64 %v, %slot
  %raw = load i64, @vtable
  %f = inttoptr i64 %raw to ptr
  %r = icall i64 %f(i64 %x)
  ret i64 %r
}
)";

TEST(SmpTest, ConcurrentCfiViolationsElectExactlyOneWinner) {
  constexpr uint32_t kCpus = 4;
  for (ExecEngine engine : kEngines) {
    Kernel kernel(SmallKernel());
    auto inserted = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    auto policy = std::move(*inserted);
    policy->engine().SetViolationAction(policy::ViolationAction::kQuarantine);
    ModuleLoader loader(&kernel, TrustedKeyring());
    loader.set_engine(engine);
    loader.set_recovery_policy(resilience::RecoveryPolicy::kQuarantine);

    transform::CompileOptions options;
    options.inject_cfi_checks = true;  // pin: must not follow KOP_CFI
    auto compiled = transform::CompileModuleText(kSmpCfiSource, options);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    auto loaded = loader.Insmod(
        signing::SignModule(compiled->text, compiled->attestation,
                            signing::SigningKey::DevelopmentKey()));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    LoadedModule* module = *loaded;
    ASSERT_TRUE(loader.PrepareCpus(kCpus).ok());
    ASSERT_TRUE(module->Call("vt_init", {}).ok());

    auto scratch = module->GlobalAddress("scratch");
    ASSERT_TRUE(scratch.ok());
    for (uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      ASSERT_TRUE(
          kernel.mem().Write64(*scratch + uint64_t{cpu} * 8, 7 + cpu).ok());
    }
    // Corrupt the vtable: the target is no legal-set member, so every
    // CPU's gated dispatch must throw a CFI violation.
    auto vtable = module->GlobalAddress("vtable");
    ASSERT_TRUE(vtable.ok());
    ASSERT_TRUE(kernel.mem().Write64(*vtable, 0x1234).ok());

    std::vector<Status> results(kCpus, OkStatus());
    smp::RunOnCpus(kCpus, [&](uint32_t cpu) {
      auto result = module->Call(
          "poke_then_icall", {*scratch + uint64_t{cpu} * 8, 0xDEAD, 1});
      results[cpu] = result.status();
    });

    EXPECT_TRUE(module->quarantined());
    EXPECT_NE(module->quarantine_reason().find("cfi violation"),
              std::string::npos)
        << module->quarantine_reason();
    int winners = 0;
    for (uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      EXPECT_FALSE(results[cpu].ok()) << "cpu " << cpu;
      if (results[cpu].message().find("' quarantined:") !=
          std::string::npos) {
        ++winners;
      }
    }
    EXPECT_EQ(winners, 1) << "engine " << kernel::ExecEngineName(engine);

    // Per-CPU rollback: the poke preceding each denied dispatch is gone.
    for (uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      auto value = kernel.mem().Read64(*scratch + uint64_t{cpu} * 8);
      ASSERT_TRUE(value.ok());
      EXPECT_EQ(*value, 7 + cpu)
          << "cpu " << cpu << " journal residue, engine "
          << kernel::ExecEngineName(engine);
    }
    EXPECT_FALSE(module->journaled_memory().journal().active());
    EXPECT_TRUE(module->heap_allocations().empty());
  }
}

// ------------------------------------------ --cpus 1 differential run

// The SMP dispatcher at --cpus 1 runs on the calling thread against
// slot 0: the trace-event sequence, guard counters, and virtual clock
// must be bit-identical to a plain (pre-SMP) run of the same workload.
TEST(SmpTest, SingleCpuDispatchIsBitIdenticalToDirectRun) {
  struct Capture {
    std::vector<trace::TraceRecord> records;
    policy::GuardStats stats;
    double total_cycles = 0;
    std::vector<uint64_t> slots;
    uint64_t first_site = 0;  // this rig's lowest guard-site token
  };
  auto workload = [](Rig& rig) {
    ASSERT_TRUE(rig.module->Call("init", {}).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(rig.module->Call("bump", {rig.ScratchSlot(0), 20}).ok());
      ASSERT_TRUE(
          rig.module->Call("poke", {rig.ScratchSlot(1), uint64_t(i)}).ok());
    }
  };
  for (ExecEngine engine : kEngines) {
    Capture captures[2];
    for (int smp_path = 0; smp_path < 2; ++smp_path) {
      trace::GlobalTracer().Reset();
      Rig rig(engine);
      if (smp_path == 0) {
        workload(rig);
      } else {
        ASSERT_TRUE(rig.loader.PrepareCpus(1).ok());
        smp::RunOnCpus(1, [&](uint32_t) { workload(rig); });
      }
      Capture& cap = captures[smp_path];
      cap.records = trace::GlobalTracer().ring().Snapshot();
      cap.stats = rig.policy->engine().stats();
      cap.total_cycles = rig.kernel.clock().TotalCycles();
      cap.slots = {rig.ReadSlot(0), rig.ReadSlot(1)};
      const std::vector<uint64_t>& tokens = rig.module->site_tokens();
      cap.first_site = tokens.empty()
                           ? 0
                           : *std::min_element(tokens.begin(), tokens.end());
    }

    // Guard-site tokens are process-global and monotonic, so the second
    // rig's tokens are offset from the first's by a constant. Args that
    // carry a token compare by offset from the rig's first token;
    // everything else must match bit-for-bit.
    auto args_match = [&](uint64_t a, uint64_t b) {
      if (a == b) return true;
      return a >= captures[0].first_site && b >= captures[1].first_site &&
             a - captures[0].first_site == b - captures[1].first_site;
    };
    ASSERT_EQ(captures[0].records.size(), captures[1].records.size())
        << "trace divergence on engine " << kernel::ExecEngineName(engine);
    for (size_t i = 0; i < captures[0].records.size(); ++i) {
      const trace::TraceRecord& a = captures[0].records[i];
      const trace::TraceRecord& b = captures[1].records[i];
      EXPECT_EQ(a.event, b.event) << "record " << i;
      for (int arg = 0; arg < 4; ++arg) {
        EXPECT_TRUE(args_match(a.args[arg], b.args[arg]))
            << "record " << i << " arg " << arg << ": " << a.args[arg]
            << " vs " << b.args[arg];
      }
    }
    EXPECT_EQ(captures[0].stats.guard_calls, captures[1].stats.guard_calls);
    EXPECT_EQ(captures[0].stats.allowed, captures[1].stats.allowed);
    EXPECT_EQ(captures[0].stats.denied, captures[1].stats.denied);
    EXPECT_EQ(captures[0].total_cycles, captures[1].total_cycles);
    EXPECT_EQ(captures[0].slots, captures[1].slots);
  }
}

// ------------------------------------------------ shared-layer churn

// The shared substrate under concurrent load: heap allocate/free and
// symbol export/unexport/lookup from all CPUs at once. Exactness checks
// on the ledgers; TSan turns any locking hole into a failure.
TEST(SmpTest, ConcurrentKmallocAndSymbolChurnStaysConsistent) {
  constexpr uint32_t kCpus = 4;
  constexpr int kRounds = 200;
  Kernel kernel(SmallKernel());
  const uint64_t live_before = kernel.heap().Stats().allocated_bytes;
  smp::RunOnCpus(kCpus, [&](uint32_t cpu) {
    for (int i = 0; i < kRounds; ++i) {
      auto addr = kernel.heap().Kmalloc(64 + 8 * cpu, 16);
      ASSERT_TRUE(addr.ok());
      const std::string sym =
          "churn.cpu" + std::to_string(cpu) + "." + std::to_string(i % 8);
      (void)kernel.symbols().ExportFunction(
          sym, [](const std::vector<uint64_t>&) -> uint64_t { return 1; });
      ASSERT_NE(kernel.symbols().FindFunction("kmalloc"), nullptr);
      (void)kernel.symbols().Unexport(sym);
      ASSERT_TRUE(kernel.heap().Kfree(*addr).ok());
    }
  });
  const kernel::KmallocStats after = kernel.heap().Stats();
  EXPECT_EQ(after.allocated_bytes, live_before);
  EXPECT_EQ(after.total_allocs, after.total_frees + after.allocation_count);
}

// --------------------------------------------------- RCU grace period

// Readers chase a published pointer while a writer retires old values.
// The epoch machinery must keep every value alive until its last
// possible reader has left; ASan/TSan turn a premature free into a
// hard failure. After a final Synchronize, everything retired must
// have been reclaimed.
TEST(SmpTest, RcuRetireWaitsForStragglingReaders) {
  smp::RcuDomain rcu;
  std::atomic<const uint64_t*> published{new uint64_t{0}};
  std::atomic<bool> done{false};
  constexpr uint32_t kCpus = 4;
  smp::RunOnCpus(kCpus, [&](uint32_t cpu) {
    if (cpu == 0) {
      for (uint64_t i = 1; i <= 500; ++i) {
        const uint64_t* fresh = new uint64_t{i};
        const uint64_t* old =
            published.exchange(fresh, std::memory_order_acq_rel);
        rcu.Retire(old);
      }
      done.store(true, std::memory_order_release);
      return;
    }
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      smp::RcuDomain::ReadGuard guard(rcu);
      const uint64_t* current = published.load(std::memory_order_acquire);
      const uint64_t value = *current;  // UAF here if reclamation is early
      ASSERT_GE(value, last);  // monotonic publication order
      last = value;
    }
  });
  rcu.Synchronize();
  EXPECT_EQ(rcu.retired_count(), 0u);
  delete published.load();
}

}  // namespace
}  // namespace kop
