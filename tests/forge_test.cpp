// kop::forge — the coverage-guided adversarial campaign. The promises
// under test: the parallel report is byte-identical to the serial one
// (the serial report is the oracle), the analysis-flagged path is
// reached and — under a deliberately weakened policy — exploited,
// minimization shrinks the exploit to a short deterministic repro whose
// token replays, the synthesized policy tightening verifiably
// re-contains it, and the campaign degrades gracefully when coverage is
// compiled out or the engine has no hooks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kop/fault/campaign.hpp"
#include "kop/fault/forge.hpp"
#include "kop/kir/coverage.hpp"

namespace kop {
namespace {

using fault::ForgeCase;
using fault::ForgeConfig;
using fault::ForgeReport;
using fault::MutOp;
using fault::MutOpKind;
using fault::PolicyFamily;
using fault::RunForge;
using kernel::ExecEngine;
using resilience::RecoveryPolicy;

ForgeConfig SmallConfig(PolicyFamily family,
                        ExecEngine engine = ExecEngine::kBytecode) {
  ForgeConfig config;
  config.seed = 7;
  config.trials = 48;
  config.engine = engine;
  config.policy = family;
  return config;
}

TEST(ForgeTest, ParallelReportIsByteIdenticalToSerial) {
  for (PolicyFamily family : {PolicyFamily::kHardened, PolicyFamily::kWeak}) {
    ForgeConfig serial = SmallConfig(family);
    serial.jobs = 1;
    ForgeConfig parallel = SmallConfig(family);
    parallel.jobs = 8;
    const std::string oracle = RunForge(serial).ToJson();
    EXPECT_EQ(RunForge(parallel).ToJson(), oracle)
        << "jobs=8 diverged from the serial oracle, family "
        << fault::PolicyFamilyName(family);
  }
}

TEST(ForgeTest, HardenedPolicyContainsEveryTrial) {
  ForgeReport report = RunForge(SmallConfig(PolicyFamily::kHardened));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_GT(report.contained, 0u);
  EXPECT_EQ(report.contained + report.absorbed, report.rows.size());
  // The analysis-directed seeds drive the campaign through the
  // provenance-flagged store even when the policy contains it.
  EXPECT_GT(report.flagged_reached, 0u);
  ASSERT_FALSE(report.analysis_targets.empty());
  bool provenance_target = false;
  for (const auto& target : report.analysis_targets) {
    provenance_target |=
        target.find("fg_stash") != std::string::npos;
  }
  EXPECT_TRUE(provenance_target)
      << "kop::analysis did not flag the inttoptr store";
}

TEST(ForgeTest, WeakPolicyYieldsMinimizedReplayableRepro) {
  ForgeConfig config = SmallConfig(PolicyFamily::kWeak);
  ForgeReport report = RunForge(config);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.invariant_violations, 0u);
  ASSERT_FALSE(report.repros.empty());
  for (const auto& repro : report.repros) {
    EXPECT_LE(repro.steps, 10u) << "minimizer left a long trail";
    EXPECT_TRUE(repro.replays) << "minimized case does not replay";
    ASSERT_FALSE(repro.token.empty());

    auto replayed = fault::ReplayForge(config, repro.token);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    EXPECT_TRUE(replayed->scribbled)
        << "token " << repro.token << " lost the violation";
  }
  // The policy-synthesis bridge: a verified tightening in the
  // policy_manager command syntax, covering the scribbled object.
  ASSERT_FALSE(report.suggestions.empty());
  for (const auto& suggestion : report.suggestions) {
    EXPECT_TRUE(suggestion.verified)
        << suggestion.manager_command << " did not re-contain the repro";
    EXPECT_EQ(suggestion.manager_command.rfind("policy_manager add", 0), 0u);
    EXPECT_EQ(suggestion.len, 0x40u);
  }
}

TEST(ForgeTest, CoverageFeedbackMatchesBuildAndEngine) {
  ForgeReport vm = RunForge(SmallConfig(PolicyFamily::kHardened));
  EXPECT_EQ(vm.coverage_compiled_in, kir::CoverageCompiledIn());
  if (kir::CoverageCompiledIn()) {
    EXPECT_GT(vm.covered_edges, 0u);
    EXPECT_NE(vm.coverage_digest, 0u);
    EXPECT_FALSE(vm.corpus.empty());
    EXPECT_FALSE(vm.distilled.empty());
    EXPECT_LE(vm.distilled.size(), vm.corpus.size());
  } else {
    EXPECT_EQ(vm.covered_edges, 0u);
  }

  // The reference interpreter has no hooks: coverage must read zero,
  // and the campaign still finds the weak-policy violation via the
  // analysis-derived hints (graceful degradation, not silence).
  ForgeReport interp =
      RunForge(SmallConfig(PolicyFamily::kWeak, ExecEngine::kInterp));
  EXPECT_EQ(interp.covered_edges, 0u);
  EXPECT_GT(interp.invariant_violations, 0u);
}

TEST(ForgeTest, TokenRoundTripsThroughEncodeAndParse) {
  ForgeCase original;
  original.base_seed = 3;
  original.trail = {
      MutOp{MutOpKind::kSetArg, 1, 0xffff888000000000ULL},
      MutOp{MutOpKind::kFlipBit, 0, 17},
      MutOp{MutOpKind::kAddDelta, 4, static_cast<uint64_t>(-2)},
      MutOp{MutOpKind::kSetByte, 6, 0xa5},
      MutOp{MutOpKind::kPlanKind, 0, 2},
      MutOp{MutOpKind::kPlanPoint, 0, 5},
      MutOp{MutOpKind::kPlanDetail, 0, 0x1234},
  };
  const std::string token =
      fault::EncodeForgeToken(PolicyFamily::kWeak, 99, original);
  auto parsed = fault::ParseForgeToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->first, PolicyFamily::kWeak);
  EXPECT_EQ(parsed->second.first, 99u);
  EXPECT_TRUE(parsed->second.second == original);
  // Re-encoding the parse is the identity (canonical form).
  EXPECT_EQ(fault::EncodeForgeToken(parsed->first, parsed->second.first,
                                    parsed->second.second),
            token);
}

TEST(ForgeTest, MalformedTokensAreRejectedNotCrashed) {
  const char* bad[] = {
      "",
      "forge.v2:weak:7:1:",
      "forge.v1:weak",
      "forge.v1:mediocre:7:1:",
      "forge.v1:weak:zz:1:",
      "forge.v1:weak:7:zz:",
      "forge.v1:weak:7:1:q0.5",
      "forge.v1:weak:7:1:a1",
      "forge.v1:weak:7:1:a1.xyz",
  };
  for (const char* token : bad) {
    EXPECT_FALSE(fault::ParseForgeToken(token).ok())
        << "accepted malformed token: '" << token << "'";
  }
}

TEST(ForgeTest, CoverageMapMergeAndDigestAreOrderIndependent) {
  kir::CoverageMap a;
  kir::CoverageMap b;
  a.HitEdge(1, 0, 4);
  a.HitEdge(1, 4, 9);
  b.HitEdge(1, 4, 9);
  b.HitEdge(2, 0, 3);

  kir::CoverageMap ab;
  EXPECT_EQ(ab.MergeCountingNew(a), 2u);
  EXPECT_EQ(ab.MergeCountingNew(b), 1u);  // shared edge is not "new"
  kir::CoverageMap ba;
  EXPECT_EQ(ba.MergeCountingNew(b), 2u);
  EXPECT_EQ(ba.MergeCountingNew(a), 1u);
  EXPECT_EQ(ab.Digest(), ba.Digest());
  EXPECT_EQ(ab.CoveredSlots(), 3u);

  // Digest compares path sets, not heat: hammering a known edge does
  // not move it.
  const uint64_t digest = ab.Digest();
  for (int i = 0; i < 300; ++i) ab.HitEdge(1, 0, 4);  // also saturates
  EXPECT_EQ(ab.Digest(), digest);
}

// Satellite hardening: CampaignReport::ToJson must survive hostile
// strings (quotes, backslashes, control bytes) and keep its pinned
// field order — downstream CI diffs the raw bytes.
TEST(ForgeTest, CampaignJsonEscapesHostileStringsAndPinsFieldOrder) {
  fault::CampaignReport report;
  report.seed = 5;
  report.engine = "byte\"code\\";
  report.recovery = "qu\narantine";
  fault::TrialResult trial;
  trial.index = 0;
  trial.target = "site \"a\"\t<b>";
  trial.outcome = "contained\x01";
  trial.invariant_failures = {"heap\nresidue \\ leak"};
  report.trials.push_back(trial);
  report.invariant_violations = 1;

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("byte\\\"code\\\\"), std::string::npos) << json;
  EXPECT_NE(json.find("qu\\narantine"), std::string::npos);
  EXPECT_NE(json.find("site \\\"a\\\"\\t<b>"), std::string::npos);
  EXPECT_NE(json.find("contained\\u0001"), std::string::npos);
  EXPECT_NE(json.find("heap\\nresidue \\\\ leak"), std::string::npos);
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte leaked into JSON";
  }

  // Pinned top-level order: seed, engine, recovery, trials, contained,
  // absorbed, invariant_violations, then the trial rows.
  const char* keys[] = {"\"seed\"",      "\"engine\"",
                        "\"recovery\"",  "\"trials\"",
                        "\"contained\"", "\"absorbed\"",
                        "\"invariant_violations\""};
  size_t last = 0;
  for (const char* key : keys) {
    const size_t at = json.find(key);
    ASSERT_NE(at, std::string::npos) << key << " missing: " << json;
    EXPECT_GT(at, last) << key << " out of pinned order";
    last = at;
  }
}

}  // namespace
}  // namespace kop
