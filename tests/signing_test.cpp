// kop::signing: SHA-256 (FIPS vectors), HMAC (RFC 4231 vectors), module
// signing, the container format and the load-time validator.
#include <gtest/gtest.h>

#include "kop/kirmods/corpus.hpp"
#include "kop/signing/hmac.hpp"
#include "kop/signing/sha256.hpp"
#include "kop/signing/signer.hpp"
#include "kop/signing/validator.hpp"
#include "kop/transform/compiler.hpp"

namespace kop::signing {
namespace {

// ---------------------------------------------------------------- sha256 --

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(DigestHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string message = "CARAT KOP protects the core kernel";
  Sha256 hasher;
  for (char c : message) hasher.Update(&c, 1);
  EXPECT_EQ(hasher.Finish(), Sha256::Hash(message));
}

TEST(Sha256Test, BoundaryLengths) {
  // Around the 55/56/64-byte padding boundaries.
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string message(len, 'x');
    Sha256 incremental;
    incremental.Update(message.substr(0, len / 2));
    incremental.Update(message.substr(len / 2));
    EXPECT_EQ(incremental.Finish(), Sha256::Hash(message)) << len;
  }
}

TEST(Sha256Test, HexRoundTrip) {
  const Sha256Digest digest = Sha256::Hash("roundtrip");
  Sha256Digest parsed;
  ASSERT_TRUE(DigestFromHex(DigestHex(digest), &parsed));
  EXPECT_EQ(parsed, digest);
  EXPECT_FALSE(DigestFromHex("zz", &parsed));
  EXPECT_FALSE(DigestFromHex(std::string(63, 'a'), &parsed));
  EXPECT_FALSE(DigestFromHex(std::string(63, 'a') + "g", &parsed));
}

// ------------------------------------------------------------------ hmac --

TEST(HmacTest, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(DigestHex(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(DigestHex(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string message(50, '\xdd');
  EXPECT_EQ(DigestHex(HmacSha256(key, message)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(
      DigestHex(HmacSha256(
          key, "Test Using Larger Than Block-Size Key - Hash Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DigestEqualsConstantTimeSemantics) {
  const Sha256Digest a = Sha256::Hash("a");
  Sha256Digest b = a;
  EXPECT_TRUE(DigestEquals(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(DigestEquals(a, b));
}

// ---------------------------------------------------------------- signer --

transform::CompileOutput Compile(const std::string& source) {
  auto output = transform::CompileModuleText(source);
  EXPECT_TRUE(output.ok()) << output.status().ToString();
  return std::move(*output);
}

TEST(SignerTest, SignAndVerify) {
  auto compiled = Compile(kirmods::RingbufSource());
  const SigningKey key = SigningKey::DevelopmentKey();
  const SignedModule image =
      SignModule(compiled.text, compiled.attestation, key);
  Keyring keyring;
  keyring.Trust(key);
  EXPECT_TRUE(keyring.VerifySignature(image).ok());
}

TEST(SignerTest, WrongKeyFailsVerification) {
  auto compiled = Compile(kirmods::RingbufSource());
  const SignedModule image = SignModule(
      compiled.text, compiled.attestation, SigningKey{"other", "secret-2"});
  Keyring keyring;
  keyring.Trust(SigningKey::DevelopmentKey());
  const Status status = keyring.VerifySignature(image);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("untrusted key"), std::string::npos);
}

TEST(SignerTest, SameKeyIdDifferentSecretFails) {
  auto compiled = Compile(kirmods::HelloSource());
  SigningKey forged = SigningKey::DevelopmentKey();
  forged.secret = "guessed-wrong";
  const SignedModule image =
      SignModule(compiled.text, compiled.attestation, forged);
  Keyring keyring;
  keyring.Trust(SigningKey::DevelopmentKey());
  EXPECT_FALSE(keyring.VerifySignature(image).ok());
}

TEST(SignerTest, TamperedTextFailsVerification) {
  auto compiled = Compile(kirmods::HelloSource());
  SignedModule image = SignModule(compiled.text, compiled.attestation,
                                  SigningKey::DevelopmentKey());
  Keyring keyring;
  keyring.Trust(SigningKey::DevelopmentKey());
  image.module_text += " ";
  EXPECT_FALSE(keyring.VerifySignature(image).ok());
}

TEST(SignerTest, TamperedAttestationFailsVerification) {
  auto compiled = Compile(kirmods::HelloSource());
  SignedModule image = SignModule(compiled.text, compiled.attestation,
                                  SigningKey::DevelopmentKey());
  Keyring keyring;
  keyring.Trust(SigningKey::DevelopmentKey());
  // Swap in an attestation claiming more guards.
  transform::AttestationRecord forged = compiled.attestation;
  forged.guard_count += 1;
  image.attestation_text = forged.Serialize();
  EXPECT_FALSE(keyring.VerifySignature(image).ok());
}

TEST(SignerTest, PayloadFramingPreventsSplicing) {
  // Moving bytes across the text/attestation boundary must change the MAC.
  EXPECT_NE(SignaturePayload("ab", "c"), SignaturePayload("a", "bc"));
}

TEST(SignerTest, KeyringRevocation) {
  Keyring keyring;
  keyring.Trust(SigningKey::DevelopmentKey());
  EXPECT_TRUE(keyring.Trusts("carat-kop-dev-1"));
  keyring.Revoke("carat-kop-dev-1");
  EXPECT_FALSE(keyring.Trusts("carat-kop-dev-1"));
}

TEST(SignerTest, ContainerRoundTrips) {
  auto compiled = Compile(kirmods::MemcopySource());
  const SignedModule image = SignModule(compiled.text, compiled.attestation,
                                        SigningKey::DevelopmentKey());
  auto parsed = SignedModule::Deserialize(image.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->module_text, image.module_text);
  EXPECT_EQ(parsed->attestation_text, image.attestation_text);
  EXPECT_EQ(parsed->key_id, image.key_id);
  EXPECT_EQ(parsed->signature, image.signature);
}

TEST(SignerTest, ContainerRejectsTruncation) {
  auto compiled = Compile(kirmods::HelloSource());
  const SignedModule image = SignModule(compiled.text, compiled.attestation,
                                        SigningKey::DevelopmentKey());
  const std::string container = image.Serialize();
  for (size_t cut : {size_t{10}, size_t{50}, container.size() - 5}) {
    EXPECT_FALSE(SignedModule::Deserialize(container.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(SignedModule::Deserialize("garbage").ok());
}

// ------------------------------------------------------------- validator --

Keyring TrustedKeyring() {
  Keyring keyring;
  keyring.Trust(SigningKey::DevelopmentKey());
  return keyring;
}

TEST(ValidatorTest, AcceptsProperlyCompiledModule) {
  auto compiled = Compile(kirmods::RingbufSource());
  const SignedModule image = SignModule(compiled.text, compiled.attestation,
                                        SigningKey::DevelopmentKey());
  auto validated = ValidateSignedModule(image, TrustedKeyring());
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  EXPECT_EQ(validated->module->name(), "kop_ringbuf");
  EXPECT_EQ(validated->attestation.guard_count,
            compiled.attestation.guard_count);
}

TEST(ValidatorTest, RejectsGuardlessAttestation) {
  transform::CompileOptions options;
  options.inject_guards = false;
  auto compiled = transform::CompileModuleText(kirmods::RingbufSource(),
                                               options);
  ASSERT_TRUE(compiled.ok());
  const SignedModule image = SignModule(
      compiled->text, compiled->attestation, SigningKey::DevelopmentKey());
  EXPECT_FALSE(ValidateSignedModule(image, TrustedKeyring()).ok());
}

TEST(ValidatorTest, RejectsGuardStripping) {
  // An attacker (with the key) signs a module whose text had a guard
  // removed after attestation: guard_count mismatch must be caught.
  auto compiled = Compile(kirmods::RingbufSource());
  // Strip the first guard call line from the text.
  std::string stripped = compiled.text;
  const size_t pos = stripped.find("  call void @carat_guard");
  ASSERT_NE(pos, std::string::npos);
  stripped.erase(pos, stripped.find('\n', pos) - pos + 1);
  const SignedModule image = SignModule(stripped, compiled.attestation,
                                        SigningKey::DevelopmentKey());
  const auto result = ValidateSignedModule(image, TrustedKeyring());
  ASSERT_FALSE(result.ok());
}

TEST(ValidatorTest, RejectsNameMismatch) {
  auto compiled = Compile(kirmods::HelloSource());
  transform::AttestationRecord wrong_name = compiled.attestation;
  wrong_name.module_name = "kop_other";
  const SignedModule image =
      SignModule(compiled.text, wrong_name, SigningKey::DevelopmentKey());
  EXPECT_FALSE(ValidateSignedModule(image, TrustedKeyring()).ok());
}

TEST(ValidatorTest, AcceptsOptimizedGuards) {
  transform::CompileOptions options;
  options.dominate_guards = true;
  auto compiled =
      transform::CompileModuleText(kirmods::MemcopySource(), options);
  ASSERT_TRUE(compiled.ok());
  const SignedModule image = SignModule(
      compiled->text, compiled->attestation, SigningKey::DevelopmentKey());
  auto validated = ValidateSignedModule(image, TrustedKeyring());
  EXPECT_TRUE(validated.ok()) << validated.status().ToString();
}

TEST(ValidatorTest, RejectsUnparseableImage) {
  transform::AttestationRecord attestation;
  attestation.module_name = "junk";
  attestation.guards_complete = true;
  attestation.no_inline_asm = true;
  const SignedModule image =
      SignModule("not KIR at all", attestation, SigningKey::DevelopmentKey());
  EXPECT_FALSE(ValidateSignedModule(image, TrustedKeyring()).ok());
}

}  // namespace
}  // namespace kop::signing
