// kop::transform: guard injection, attestation, privileged wrapping,
// guard-optimization ablations, the pass manager and the compiler driver.
#include <gtest/gtest.h>

#include "kop/kir/kir.hpp"
#include "kop/kirmods/corpus.hpp"
#include <algorithm>

#include "kop/transform/attestation.hpp"
#include "kop/transform/cfi_injection.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/transform/guard_injection.hpp"
#include "kop/transform/guard_opt.hpp"
#include "kop/transform/pass.hpp"
#include "kop/transform/privileged.hpp"
#include "kop/transform/simplify.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::transform {
namespace {

std::unique_ptr<kir::Module> Parse(const std::string& source) {
  auto module = kir::ParseModule(source);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  return std::move(*module);
}

uint64_t CountGuardCalls(const kir::Module& module) {
  uint64_t guards = 0;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall &&
            inst->callee() == kCaratGuardSymbol) {
          ++guards;
        }
      }
    }
  }
  return guards;
}

// -------------------------------------------------------- guard injection --

TEST(GuardInjectionTest, OneGuardPerMemoryAccess) {
  auto module = Parse(kirmods::RingbufSource());
  const size_t accesses = module->MemoryAccessCount();
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  EXPECT_EQ(pass.stats().guards_inserted(), accesses);
  EXPECT_EQ(CountGuardCalls(*module), accesses);
  EXPECT_TRUE(kir::VerifyModule(*module).ok());
}

TEST(GuardInjectionTest, GuardPrecedesEveryAccess) {
  auto module = Parse(kirmods::MemcopySource());
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  EXPECT_TRUE(GuardsComplete(*module));
}

TEST(GuardInjectionTest, LoadGetsReadFlagStoreGetsWriteFlag) {
  auto module = Parse(
      "module \"m\"\nglobal @g size 8 rw\n"
      "func @f() -> i64 {\nentry:\n"
      "  %v = load i64, @g\n  store i64 %v, @g\n  ret i64 %v\n}\n");
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  const auto& entry = *module->FindFunction("f")->blocks()[0];
  std::vector<const kir::Instruction*> insts;
  for (const auto& inst : *&entry) insts.push_back(inst.get());
  ASSERT_EQ(insts.size(), 5u);  // guard, load, guard, store, ret
  ASSERT_EQ(insts[0]->callee(), kCaratGuardSymbol);
  const auto* read_flags = kir::dyn_cast<kir::Constant>(insts[0]->operand(2));
  ASSERT_NE(read_flags, nullptr);
  EXPECT_EQ(read_flags->bits(), kGuardAccessRead);
  ASSERT_EQ(insts[2]->callee(), kCaratGuardSymbol);
  const auto* write_flags =
      kir::dyn_cast<kir::Constant>(insts[2]->operand(2));
  ASSERT_NE(write_flags, nullptr);
  EXPECT_EQ(write_flags->bits(), kGuardAccessWrite);
}

TEST(GuardInjectionTest, GuardSizeMatchesAccessWidth) {
  auto module = Parse(
      "module \"m\"\nglobal @g size 8 rw\n"
      "func @f() -> void {\nentry:\n"
      "  %a = load i8, @g\n  %b = load i32, @g\n"
      "  store i16 1, @g\n  ret void\n}\n");
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  std::vector<uint64_t> sizes;
  for (const auto& inst : *module->FindFunction("f")->blocks()[0]) {
    if (inst->opcode() == kir::Opcode::kCall) {
      sizes.push_back(
          kir::dyn_cast<kir::Constant>(inst->operand(1))->bits());
    }
  }
  EXPECT_EQ(sizes, (std::vector<uint64_t>{1, 4, 2}));
}

TEST(GuardInjectionTest, GuardedPointerIsTheAccessPointer) {
  auto module = Parse(kirmods::ScribblerSource());
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  // GuardsComplete verifies pointer identity between guard and access.
  EXPECT_TRUE(GuardsComplete(*module));
}

TEST(GuardInjectionTest, DeclaresExternalGuardOnce) {
  auto module = Parse(kirmods::RingbufSource());
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  const kir::Function* guard = module->FindFunction(kCaratGuardSymbol);
  ASSERT_NE(guard, nullptr);
  EXPECT_TRUE(guard->is_external());
  EXPECT_EQ(guard->arg_count(), 3u);
  // Idempotent re-run doubles guards but must not redeclare the symbol.
  GuardInjectionPass again;
  ASSERT_TRUE(again.Run(*module).ok());
  size_t decls = 0;
  for (const auto& fn : module->functions()) {
    if (fn->name() == kCaratGuardSymbol) ++decls;
  }
  EXPECT_EQ(decls, 1u);
}

TEST(GuardInjectionTest, RejectsConflictingGuardSignature) {
  auto module = Parse(
      "module \"m\"\nextern func @carat_guard(i64) -> void\n"
      "func @f() -> void {\nentry:\n  ret void\n}\n");
  GuardInjectionPass pass;
  EXPECT_FALSE(pass.Run(*module).ok());
}

TEST(GuardInjectionTest, ModuleWithNoAccessesGetsNoGuards) {
  auto module = Parse(
      "module \"m\"\nfunc @f(i64 %a) -> i64 {\nentry:\n"
      "  %v = add i64 %a, 1\n  ret i64 %v\n}\n");
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  EXPECT_EQ(pass.stats().guards_inserted(), 0u);
  EXPECT_TRUE(GuardsComplete(*module));  // vacuously complete
}

TEST(GuardInjectionTest, TransformIsAbout200Lines) {
  // The paper: "the resulting CARAT KOP transforms constitute only about
  // 200 lines of C++". Keep ours honest (source file under ~250 lines).
  // This is a documentation-style regression: count via the stats of the
  // transformed corpus instead of reading files — every module in the
  // corpus must be fully guarded by the one small pass.
  for (const auto& entry : kirmods::AllCorpusModules()) {
    auto module = Parse(entry.source);
    GuardInjectionPass pass;
    ASSERT_TRUE(pass.Run(*module).ok()) << entry.name;
    EXPECT_TRUE(GuardsComplete(*module)) << entry.name;
  }
}

// ------------------------------------------------------------ attestation --

TEST(AttestationTest, RefusesInlineAsm) {
  auto module = Parse(kirmods::InlineAsmSource());
  AsmAttestationPass pass;
  const Status status = pass.Run(*module);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("inline assembly"), std::string::npos);
}

TEST(AttestationTest, RecordRoundTrips) {
  AttestationRecord record;
  record.module_name = "kop_test";
  record.guards_complete = true;
  record.no_inline_asm = true;
  record.guards_optimized = true;
  record.guard_count = 123;
  auto parsed = AttestationRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->module_name, "kop_test");
  EXPECT_TRUE(parsed->guards_complete);
  EXPECT_TRUE(parsed->no_inline_asm);
  EXPECT_TRUE(parsed->guards_optimized);
  EXPECT_EQ(parsed->guard_count, 123u);
}

TEST(AttestationTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(AttestationRecord::Deserialize("not an attestation").ok());
  EXPECT_FALSE(AttestationRecord::Deserialize(
                   "carat-kop-attestation v1\nmodule: x\n")
                   .ok());
}

TEST(AttestationTest, GuardsCompleteDetectsMissingGuard) {
  auto module = Parse(
      "module \"m\"\nglobal @g size 8 rw\n"
      "func @f() -> void {\nentry:\n  store i64 1, @g\n  ret void\n}\n");
  EXPECT_FALSE(GuardsComplete(*module));
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  EXPECT_TRUE(GuardsComplete(*module));
}

TEST(AttestationTest, GuardsCompleteDetectsWrongPointer) {
  // A guard on a different pointer must not satisfy the checker.
  auto module = Parse(R"(module "m"
global @a size 8 rw
global @b size 8 rw
extern func @carat_guard(ptr, i64, i64) -> void
func @f() -> void {
entry:
  call void @carat_guard(ptr @a, i64 8, i64 2)
  store i64 1, @b
  ret void
}
)");
  EXPECT_FALSE(GuardsComplete(*module));
}

TEST(AttestationTest, GuardsCompleteAcceptsWiderGuard) {
  auto module = Parse(R"(module "m"
global @a size 8 rw
extern func @carat_guard(ptr, i64, i64) -> void
func @f() -> void {
entry:
  call void @carat_guard(ptr @a, i64 8, i64 3)
  store i32 1, @a
  ret void
}
)");
  EXPECT_TRUE(GuardsComplete(*module));
}

TEST(AttestationTest, AttestSummarizesModule) {
  auto module = Parse(kirmods::RingbufSource());
  GuardInjectionPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  const AttestationRecord record = Attest(*module);
  EXPECT_EQ(record.module_name, "kop_ringbuf");
  EXPECT_TRUE(record.no_inline_asm);
  EXPECT_TRUE(record.guards_complete);
  EXPECT_EQ(record.guard_count, pass.stats().guards_inserted());
}

// --------------------------------------------------- privileged wrapping --

TEST(PrivilegedTest, NameMapIsBijective) {
  for (auto intrinsic :
       {PrivilegedIntrinsic::kCli, PrivilegedIntrinsic::kSti,
        PrivilegedIntrinsic::kRdmsr, PrivilegedIntrinsic::kWrmsr,
        PrivilegedIntrinsic::kInb, PrivilegedIntrinsic::kOutb,
        PrivilegedIntrinsic::kInvlpg, PrivilegedIntrinsic::kHlt}) {
    auto name = PrivilegedIntrinsicName(intrinsic);
    auto back = PrivilegedIntrinsicFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, intrinsic);
  }
  EXPECT_FALSE(PrivilegedIntrinsicFromName("kir.nothing").has_value());
  EXPECT_FALSE(PrivilegedIntrinsicFromName("printk_str").has_value());
}

TEST(PrivilegedTest, WrapsEveryIntrinsicCall) {
  auto module = Parse(kirmods::PrivuserSource());
  PrivilegedIntrinsicWrapPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  EXPECT_EQ(pass.stats().intrinsics_wrapped, 4u);  // cli, sti, wrmsr, hlt
  EXPECT_TRUE(kir::VerifyModule(*module).ok());

  // Each intrinsic call must be directly preceded by the intrinsic guard
  // carrying the right id.
  for (const auto& fn : module->functions()) {
    for (const auto& block : fn->blocks()) {
      const kir::Instruction* prev = nullptr;
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall) {
          auto id = PrivilegedIntrinsicFromName(inst->callee());
          if (id) {
            ASSERT_NE(prev, nullptr);
            ASSERT_EQ(prev->callee(), kCaratIntrinsicGuardSymbol);
            EXPECT_EQ(
                kir::dyn_cast<kir::Constant>(prev->operand(0))->bits(),
                static_cast<uint64_t>(*id));
          }
        }
        prev = inst.get();
      }
    }
  }
}

TEST(PrivilegedTest, LeavesOrdinaryCallsAlone) {
  auto module = Parse(kirmods::HelloSource());
  PrivilegedIntrinsicWrapPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  EXPECT_EQ(pass.stats().intrinsics_wrapped, 0u);
}

// ------------------------------------------------------------- guard opt --

TEST(GuardOptTest, CoalesceRemovesDuplicateInBlock) {
  auto module = Parse(
      "module \"m\"\nglobal @g size 8 rw\n"
      "func @f() -> i64 {\nentry:\n"
      "  %a = load i64, @g\n  %b = load i64, @g\n"
      "  %s = add i64 %a, %b\n  ret i64 %s\n}\n");
  GuardInjectionPass inject;
  ASSERT_TRUE(inject.Run(*module).ok());
  ASSERT_EQ(CountGuardCalls(*module), 2u);
  GuardCoalescePass coalesce;
  ASSERT_TRUE(coalesce.Run(*module).ok());
  EXPECT_EQ(coalesce.stats().guards_removed, 1u);
  EXPECT_EQ(CountGuardCalls(*module), 1u);
  EXPECT_TRUE(kir::VerifyModule(*module).ok());
}

TEST(GuardOptTest, CoalesceKeepsGuardsAcrossExternalCalls) {
  // An intervening external call may change the policy; the second guard
  // must survive.
  auto module = Parse(R"(module "m"
global @g size 8 rw
extern func @helper() -> void
func @f() -> i64 {
entry:
  %a = load i64, @g
  call void @helper()
  %b = load i64, @g
  %s = add i64 %a, %b
  ret i64 %s
}
)");
  GuardInjectionPass inject;
  ASSERT_TRUE(inject.Run(*module).ok());
  GuardCoalescePass coalesce;
  ASSERT_TRUE(coalesce.Run(*module).ok());
  EXPECT_EQ(coalesce.stats().guards_removed, 0u);
  EXPECT_EQ(CountGuardCalls(*module), 2u);
}

TEST(GuardOptTest, CoalesceKeepsWorkingAcrossKirIntrinsics) {
  // kir.* intrinsics dispatch through the loader's intrinsic table and
  // cannot mutate the policy table — unlike an arbitrary external call,
  // they must NOT kill available guards.
  auto module = Parse(R"(module "m"
global @g size 8 rw
func @f() -> i64 {
entry:
  %a = load i64, @g
  call void @kir.invlpg(i64 0)
  %b = load i64, @g
  %s = add i64 %a, %b
  ret i64 %s
}
)");
  GuardInjectionPass inject;
  ASSERT_TRUE(inject.Run(*module).ok());
  ASSERT_EQ(CountGuardCalls(*module), 2u);
  GuardCoalescePass coalesce;
  ASSERT_TRUE(coalesce.Run(*module).ok());
  EXPECT_EQ(coalesce.stats().guards_removed, 1u);
  EXPECT_EQ(CountGuardCalls(*module), 1u);
  EXPECT_TRUE(kir::VerifyModule(*module).ok());
}

TEST(GuardOptTest, CoalesceDistinguishesReadAndWrite) {
  auto module = Parse(
      "module \"m\"\nglobal @g size 8 rw\n"
      "func @f() -> i64 {\nentry:\n"
      "  %a = load i64, @g\n  store i64 %a, @g\n  ret i64 %a\n}\n");
  GuardInjectionPass inject;
  ASSERT_TRUE(inject.Run(*module).ok());
  GuardCoalescePass coalesce;
  ASSERT_TRUE(coalesce.Run(*module).ok());
  // A read guard does not cover a write guard.
  EXPECT_EQ(coalesce.stats().guards_removed, 0u);
}

TEST(GuardOptTest, DominationRemovesGuardsAcrossBlocks) {
  auto fixed = Parse(R"(module "m"
global @g size 8 rw
func @f(i1 %c) -> i64 {
entry:
  %a = load i64, @g
  br %c, left, right
left:
  %b = load i64, @g
  jmp merge
right:
  %d = load i64, @g
  jmp merge
merge:
  %m = phi i64 [ %b, left ], [ %d, right ]
  %e = load i64, @g
  %s = add i64 %m, %e
  ret i64 %s
}
)");
  GuardInjectionPass inject;
  ASSERT_TRUE(inject.Run(*fixed).ok());
  ASSERT_EQ(CountGuardCalls(*fixed), 4u);
  GuardDominationPass dominate;
  ASSERT_TRUE(dominate.Run(*fixed).ok());
  // The entry guard dominates all three later identical guards.
  EXPECT_EQ(dominate.stats().guards_removed, 3u);
  EXPECT_EQ(CountGuardCalls(*fixed), 1u);
  EXPECT_TRUE(kir::VerifyModule(*fixed).ok());
}

TEST(GuardOptTest, DominationDoesNotRemoveSiblingGuards) {
  // left/right don't dominate each other: both keep their guards.
  auto module = Parse(R"(module "m"
global @g size 8 rw
func @f(i1 %c) -> i64 {
entry:
  br %c, left, right
left:
  %b = load i64, @g
  jmp merge
right:
  %d = load i64, @g
  jmp merge
merge:
  %m = phi i64 [ %b, left ], [ %d, right ]
  ret i64 %m
}
)");
  GuardInjectionPass inject;
  ASSERT_TRUE(inject.Run(*module).ok());
  GuardDominationPass dominate;
  ASSERT_TRUE(dominate.Run(*module).ok());
  EXPECT_EQ(dominate.stats().guards_removed, 0u);
}

TEST(GuardOptTest, DominationPrunesLoopInvariantGuards) {
  // The same global is guarded every iteration; the loop-body guard is
  // dominated by... nothing before the loop (first access is inside), so
  // only iteration-to-iteration redundancy within one pass over the
  // dominator tree is removed: here the loop body block's guard stays,
  // but the duplicate access to @copied in the same block collapses.
  auto module = Parse(kirmods::MemcopySource());
  GuardInjectionPass inject;
  ASSERT_TRUE(inject.Run(*module).ok());
  const uint64_t before = CountGuardCalls(*module);
  GuardDominationPass dominate;
  ASSERT_TRUE(dominate.Run(*module).ok());
  EXPECT_LT(CountGuardCalls(*module), before);
  EXPECT_TRUE(kir::VerifyModule(*module).ok());
}

// ---------------------------------------------------------- simplify --

TEST(SimplifyTest, FoldsConstantChains) {
  auto module = Parse(R"(module "m"
func @f() -> i64 {
entry:
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  %c = sub i64 %b, 5
  ret i64 %c
}
)");
  SimplifyPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  EXPECT_TRUE(kir::VerifyModule(*module).ok());
  const auto& entry = *module->FindFunction("f")->blocks()[0];
  ASSERT_EQ(entry.size(), 1u);  // just the ret
  const kir::Instruction* ret = entry.begin()->get();
  const auto* folded = kir::dyn_cast<kir::Constant>(ret->operand(0));
  ASSERT_NE(folded, nullptr);
  EXPECT_EQ(folded->bits(), (2u + 3u) * 4u - 5u);
  EXPECT_GE(pass.stats().constants_folded, 3u);
}

TEST(SimplifyTest, AppliesIdentities) {
  auto module = Parse(R"(module "m"
func @f(i64 %x) -> i64 {
entry:
  %a = add i64 %x, 0
  %b = mul i64 %a, 1
  %c = or i64 %b, 0
  ret i64 %c
}
)");
  SimplifyPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  const auto& entry = *module->FindFunction("f")->blocks()[0];
  ASSERT_EQ(entry.size(), 1u);
  // ret operand is the argument itself.
  EXPECT_EQ(entry.begin()->get()->operand(0)->kind(),
            kir::ValueKind::kArgument);
  EXPECT_GE(pass.stats().identities_applied, 3u);
}

TEST(SimplifyTest, NeverRemovesMemoryAccesses) {
  auto module = Parse(R"(module "m"
global @g size 8 rw
func @f() -> void {
entry:
  %dead = add i64 1, 2
  %v = load i64, @g
  store i64 7, @g
  ret void
}
)");
  const size_t accesses_before = module->MemoryAccessCount();
  SimplifyPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  // The unused add folds/dies; the unused load and the store stay.
  EXPECT_EQ(module->MemoryAccessCount(), accesses_before);
  EXPECT_GE(pass.stats().dead_removed, 0u);
  const auto& entry = *module->FindFunction("f")->blocks()[0];
  EXPECT_EQ(entry.size(), 3u);  // load, store, ret
}

TEST(SimplifyTest, FoldsICmpAndSelect) {
  auto module = Parse(R"(module "m"
func @f(i64 %x) -> i64 {
entry:
  %c = icmp ult i64 3, 5
  %v = select %c, i64 %x, 0
  ret i64 %v
}
)");
  SimplifyPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  const auto& entry = *module->FindFunction("f")->blocks()[0];
  ASSERT_EQ(entry.size(), 1u);
  EXPECT_EQ(entry.begin()->get()->operand(0)->kind(),
            kir::ValueKind::kArgument);
}

TEST(SimplifyTest, FoldsSignedExtensionsCorrectly) {
  auto module = Parse(R"(module "m"
func @f() -> i64 {
entry:
  %neg = trunc i64 255 to i8
  %wide = sext i8 %neg to i64
  ret i64 %wide
}
)");
  SimplifyPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  const auto& entry = *module->FindFunction("f")->blocks()[0];
  ASSERT_EQ(entry.size(), 1u);
  const auto* folded =
      kir::dyn_cast<kir::Constant>(entry.begin()->get()->operand(0));
  ASSERT_NE(folded, nullptr);
  EXPECT_EQ(folded->bits(), ~0ull);  // sext(0xff as i8) == -1
}

TEST(SimplifyTest, LeavesDivisionByZeroForRuntime) {
  auto module = Parse(R"(module "m"
func @f() -> i64 {
entry:
  %q = udiv i64 5, 0
  ret i64 %q
}
)");
  SimplifyPass pass;
  ASSERT_TRUE(pass.Run(*module).ok());
  const auto& entry = *module->FindFunction("f")->blocks()[0];
  EXPECT_EQ(entry.size(), 2u);  // the trapping udiv survives
}

TEST(SimplifyTest, PreservesBehaviourOnCorpus) {
  // Simplify then guard-inject across the corpus: IR stays valid and
  // guard count equals the (possibly reduced) access count.
  for (const auto& entry : kirmods::AllCorpusModules()) {
    auto module = Parse(entry.source);
    SimplifyPass simplify;
    ASSERT_TRUE(simplify.Run(*module).ok()) << entry.name;
    ASSERT_TRUE(kir::VerifyModule(*module).ok()) << entry.name;
    const size_t accesses = module->MemoryAccessCount();
    GuardInjectionPass inject;
    ASSERT_TRUE(inject.Run(*module).ok()) << entry.name;
    EXPECT_EQ(inject.stats().guards_inserted(), accesses) << entry.name;
    EXPECT_TRUE(GuardsComplete(*module)) << entry.name;
  }
}

// -------------------------------------------------------- pass manager --

class FailingPass : public ModulePass {
 public:
  std::string_view name() const override { return "failing"; }
  Status Run(kir::Module&) override { return Internal("boom"); }
};

class BreakingPass : public ModulePass {
 public:
  std::string_view name() const override { return "breaking"; }
  Status Run(kir::Module& module) override {
    // Damage the IR: drop the terminator of the first block.
    for (const auto& fn : module.functions()) {
      if (fn->is_external() || fn->blocks().empty()) continue;
      auto* block = fn->blocks()[0].get();
      auto last = block->end();
      --last;
      block->Erase(last);
      return OkStatus();
    }
    return OkStatus();
  }
};

TEST(PassManagerTest, StopsAtFirstFailure) {
  auto module = Parse(kirmods::HelloSource());
  PassManager pm;
  pm.Add(std::make_unique<FailingPass>());
  pm.Add(std::make_unique<GuardInjectionPass>());
  EXPECT_FALSE(pm.Run(*module).ok());
  ASSERT_EQ(pm.records().size(), 1u);
  EXPECT_FALSE(pm.records()[0].ok);
}

TEST(PassManagerTest, CatchesIrBreakage) {
  auto module = Parse(kirmods::HelloSource());
  PassManager pm(/*verify_each=*/true);
  pm.Add(std::make_unique<BreakingPass>());
  const Status status = pm.Run(*module);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("produced invalid IR"), std::string::npos);
}

// ------------------------------------------------------ compiler driver --

TEST(CompilerTest, FullPipelineProducesSignableOutput) {
  auto output = CompileModuleText(kirmods::RingbufSource());
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_TRUE(output->attestation.guards_complete);
  EXPECT_TRUE(output->attestation.no_inline_asm);
  EXPECT_FALSE(output->attestation.guards_optimized);
  EXPECT_GT(output->attestation.guard_count, 0u);
  EXPECT_EQ(output->attestation.guard_count,
            output->guard_stats.guards_inserted());
  // The canonical text reparses to an identical print.
  auto reparsed = kir::ParseModule(output->text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(kir::PrintModule(**reparsed), output->text);
}

TEST(CompilerTest, BaselineBuildSkipsGuards) {
  CompileOptions options;
  options.inject_guards = false;
  auto output = CompileModuleText(kirmods::RingbufSource(), options);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->attestation.guard_count, 0u);
  EXPECT_FALSE(output->attestation.guards_complete);
}

TEST(CompilerTest, OptimizedBuildRemovesGuardsAndMarksAttestation) {
  CompileOptions options;
  options.dominate_guards = true;
  auto output = CompileModuleText(kirmods::MemcopySource(), options);
  ASSERT_TRUE(output.ok());
  EXPECT_TRUE(output->attestation.guards_optimized);
  EXPECT_TRUE(output->attestation.guards_complete);
  EXPECT_GT(output->guards_removed_by_opt, 0u);
  EXPECT_LT(output->attestation.guard_count,
            output->guard_stats.guards_inserted());
}

TEST(CompilerTest, RejectsInlineAsmBeforeTransforming) {
  auto output = CompileModuleText(kirmods::InlineAsmSource());
  EXPECT_FALSE(output.ok());
}

TEST(CompilerTest, RejectsParseErrors) {
  EXPECT_FALSE(CompileModuleText("this is not KIR").ok());
}

TEST(CompilerTest, SyntheticModuleScales) {
  const std::string source = kirmods::SyntheticModuleSource(10, 20);
  auto output = CompileModuleText(source);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->attestation.guard_count, 10u * 20u);
}

// ------------------------------------------------------- guard elision --

TEST(GuardElideTest, MemcopyWidensDuplicateClustersIntoCovers) {
  CompileOptions options;
  options.elide_guards = true;
  auto elided = CompileModuleText(kirmods::MemcopySource(), options);
  ASSERT_TRUE(elided.ok()) << elided.status().ToString();
  options.elide_guards = false;
  auto plain = CompileModuleText(kirmods::MemcopySource(), options);
  ASSERT_TRUE(plain.ok());

  // memcopy has two same-block duplicate-load clusters (@copied in @copy,
  // %p in @checksum); each widens into one cover subsuming one member.
  EXPECT_EQ(elided->elide_stats.clusters_widened, 2u);
  EXPECT_EQ(elided->elide_stats.covers_emitted, 2u);
  EXPECT_EQ(elided->elide_stats.guards_elided, 2u);
  EXPECT_EQ(elided->elide_stats.guards_hoisted, 0u);

  // Every subsumed guard shows up in the site-count delta — elision never
  // makes an access disappear from the attribution table silently.
  EXPECT_EQ(
      elided->attestation.sites.size() + elided->elide_stats.guards_elided,
      plain->attestation.sites.size());

  ASSERT_EQ(elided->attestation.elisions.size(), 2u);
  for (const ElisionRecord& rec : elided->attestation.elisions) {
    EXPECT_EQ(rec.kind, "widen");
    EXPECT_EQ(rec.span, 8u);
    EXPECT_EQ(rec.flags, 1u);  // both clusters are loads
    ASSERT_EQ(rec.members.size(), 2u);
    for (const ElisionMember& member : rec.members) {
      EXPECT_EQ(member.offset, 0u);
      EXPECT_EQ(member.size, 8u);
      EXPECT_EQ(member.flags, 1u);
    }
    // The cover site exists in the table with the matching constants.
    ASSERT_LT(rec.site_id, elided->attestation.sites.size());
    const GuardSite& site = elided->attestation.sites[rec.site_id];
    EXPECT_TRUE(site.is_range);
    EXPECT_EQ(site.access_size, rec.span);
    EXPECT_EQ(site.elided, 1u);
  }

  // The provenance re-proves against sites enumerated from the IR itself.
  const std::vector<GuardSite> sites = EnumerateGuardSites(*elided->module);
  EXPECT_TRUE(VerifyElisionProvenance(elided->attestation, sites).ok());
}

TEST(GuardElideTest, HoistsLoopInvariantHeaderGuardIntoPreheader) {
  // A loop-header guard on a loop-invariant address with a unique
  // preheader: elision moves the check out of the loop as a one-member
  // cover (elided = 0 — nothing subsumed, the check just runs once).
  const char* source = R"(module "m"
global @g size 8 rw

func @spin(i64 %n) -> i64 {
entry:
  jmp head
head:
  %i = phi i64 [ 0, entry ], [ %i1, head ]
  %v = load i64, @g
  %i1 = add i64 %i, 1
  %done = icmp uge i64 %i1, %n
  br %done, out, head
out:
  ret i64 %v
}
)";
  CompileOptions options;
  options.elide_guards = true;
  auto output = CompileModuleText(source, options);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  EXPECT_EQ(output->elide_stats.guards_hoisted, 1u);
  EXPECT_EQ(output->elide_stats.covers_emitted, 1u);
  EXPECT_EQ(output->elide_stats.clusters_widened, 0u);
  EXPECT_EQ(output->elide_stats.guards_elided, 0u);

  ASSERT_EQ(output->attestation.elisions.size(), 1u);
  const ElisionRecord& rec = output->attestation.elisions[0];
  EXPECT_EQ(rec.kind, "hoist");
  EXPECT_EQ(rec.function, "spin");
  EXPECT_EQ(rec.span, 8u);
  EXPECT_EQ(rec.flags, 1u);
  ASSERT_EQ(rec.members.size(), 1u);
  EXPECT_EQ(rec.members[0], (ElisionMember{0, 8, 1}));

  const std::vector<GuardSite> sites = EnumerateGuardSites(*output->module);
  ASSERT_LT(rec.site_id, sites.size());
  EXPECT_TRUE(sites[rec.site_id].is_range);
  EXPECT_EQ(sites[rec.site_id].elided, 0u);
  EXPECT_TRUE(VerifyElisionProvenance(output->attestation, sites).ok());
}

TEST(AttestationTest, ElisionProvenanceRoundTrips) {
  CompileOptions options;
  options.elide_guards = true;
  auto output = CompileModuleText(kirmods::MemcopySource(), options);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_FALSE(output->attestation.elisions.empty());

  auto parsed = AttestationRecord::Deserialize(output->attestation.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sites, output->attestation.sites);
  EXPECT_EQ(parsed->elisions, output->attestation.elisions);
}

TEST(ElisionProvenanceTest, VerifierRejectsForgedRecords) {
  CompileOptions options;
  options.elide_guards = true;
  auto output = CompileModuleText(kirmods::MemcopySource(), options);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  const std::vector<GuardSite> sites = EnumerateGuardSites(*output->module);
  ASSERT_TRUE(VerifyElisionProvenance(output->attestation, sites).ok());

  {  // Claimed span disagrees with the cover in the IR.
    AttestationRecord forged = output->attestation;
    forged.elisions[0].span += 8;
    EXPECT_FALSE(VerifyElisionProvenance(forged, sites).ok());
  }
  {  // Dropped member: elided count no longer matches.
    AttestationRecord forged = output->attestation;
    forged.elisions[0].members.pop_back();
    EXPECT_FALSE(VerifyElisionProvenance(forged, sites).ok());
  }
  {  // Member flags escalate beyond what the cover checks.
    AttestationRecord forged = output->attestation;
    forged.elisions[0].members[0].flags |= 2;
    EXPECT_FALSE(VerifyElisionProvenance(forged, sites).ok());
  }
  {  // Duplicate provenance for one cover.
    AttestationRecord forged = output->attestation;
    forged.elisions.push_back(forged.elisions[0]);
    EXPECT_FALSE(VerifyElisionProvenance(forged, sites).ok());
  }
  {  // Record names a site that does not exist in the shipped IR.
    AttestationRecord forged = output->attestation;
    forged.elisions[0].site_id = 9999;
    EXPECT_FALSE(VerifyElisionProvenance(forged, sites).ok());
  }
}

// ------------------------------------------------------- CFI injection --

TEST(CfiInjectionTest, InjectsOneCheckPerIcallAndIsIdempotent) {
  auto module = Parse(kirmods::IcallSource());
  CfiInjectionPass first;
  ASSERT_TRUE(first.Run(*module).ok());
  EXPECT_EQ(first.stats().checks_injected, 2u);  // vt_call + vt_pick
  EXPECT_EQ(first.stats().sites_already_checked, 0u);
  EXPECT_EQ(first.stats().target_sets, 2u);
  ASSERT_TRUE(kir::VerifyModule(*module).ok())
      << kir::VerifyModule(*module).ToString();

  // Re-running on already-gated IR must insert nothing: the pass is the
  // repair/no-op boundary the --as-shipped verifier mode depends on.
  CfiInjectionPass second;
  ASSERT_TRUE(second.Run(*module).ok());
  EXPECT_EQ(second.stats().checks_injected, 0u);
  EXPECT_EQ(second.stats().sites_already_checked, 2u);
}

TEST(AttestationTest, CfiTableRoundTrips) {
  CompileOptions options;
  options.inject_cfi_checks = true;  // pin: this test must not follow KOP_CFI
  auto output = CompileModuleText(kirmods::IcallSource(), options);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_TRUE(output->attestation.cfi_gated);
  ASSERT_EQ(output->attestation.cfi_sets.size(), 2u);
  ASSERT_EQ(output->attestation.cfi_sites.size(), 2u);

  auto parsed = AttestationRecord::Deserialize(output->attestation.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->cfi_gated, output->attestation.cfi_gated);
  EXPECT_EQ(parsed->cfi_sets, output->attestation.cfi_sets);
  EXPECT_EQ(parsed->cfi_sites, output->attestation.cfi_sites);
}

TEST(CfiProvenanceTest, VerifierRejectsForgedTables) {
  CompileOptions options;
  options.inject_cfi_checks = true;  // pin: this test must not follow KOP_CFI
  auto output = CompileModuleText(kirmods::IcallSource(), options);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_TRUE(VerifyCfiProvenance(output->attestation, *output->module).ok());

  {  // Widened set: an extra legal target the derivation never proved.
    AttestationRecord forged = output->attestation;
    forged.cfi_sets[0].members.push_back("h_spare");
    std::sort(forged.cfi_sets[0].members.begin(),
              forged.cfi_sets[0].members.end());
    EXPECT_FALSE(VerifyCfiProvenance(forged, *output->module).ok());
  }
  {  // Narrowed set: dropping a member is a mismatch too — the table must
    // equal the proof, not merely under-approximate it.
    AttestationRecord forged = output->attestation;
    forged.cfi_sets[0].members.pop_back();
    EXPECT_FALSE(VerifyCfiProvenance(forged, *output->module).ok());
  }
  {  // Renumbered site: the icall claims the wrong set id.
    AttestationRecord forged = output->attestation;
    forged.cfi_sites[0].set_id = 1;
    EXPECT_FALSE(VerifyCfiProvenance(forged, *output->module).ok());
  }
  {  // Dropped site: one gated icall vanishes from the table.
    AttestationRecord forged = output->attestation;
    forged.cfi_sites.pop_back();
    EXPECT_FALSE(VerifyCfiProvenance(forged, *output->module).ok());
  }
  {  // Attested away entirely: the module imports carat_cfi_check, so an
    // empty table is a forgery, not an ungated module.
    AttestationRecord forged = output->attestation;
    forged.cfi_gated = false;
    forged.cfi_sets.clear();
    forged.cfi_sites.clear();
    EXPECT_FALSE(VerifyCfiProvenance(forged, *output->module).ok());
  }
}

}  // namespace
}  // namespace kop::transform
