// kop::fptrap: trap delivery substrate + the FPVM-style handler module.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "kop/fptrap/fpvm_module.hpp"
#include "kop/fptrap/trap_controller.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/policy/policy_module.hpp"

namespace kop::fptrap {
namespace {

uint64_t Bits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double FromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

class FptrapTest : public ::testing::Test {
 protected:
  FptrapTest() : controller_(&kernel_) {
    EXPECT_TRUE(controller_.Init().ok());
    auto policy = policy::PolicyModule::Insert(
        &kernel_, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(policy.ok());
    policy_ = std::move(*policy);
  }

  kernel::Kernel kernel_;
  TrapController controller_;
  std::unique_ptr<policy::PolicyModule> policy_;
};

TEST_F(FptrapTest, UnhandledTrapFallsBackToSigfpe) {
  auto result = controller_.DeliverTrap(0x401000, FpOp::kAdd, Bits(1.0),
                                        Bits(2.0));
  ASSERT_FALSE(result.ok());  // no handler registered
  EXPECT_EQ(result.status().code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(controller_.stats().unhandled, 1u);
}

TEST_F(FptrapTest, ModuleEmulatesArithmetic) {
  auto module = BaselineFpvm::Probe(modrt::RawMemOps(&kernel_));
  ASSERT_TRUE(module.ok());
  controller_.SetHandler(
      [&](uint64_t frame) { return module->HandleTrap(frame); });

  struct Case {
    FpOp op;
    double a, b, expected;
  };
  const Case cases[] = {
      {FpOp::kAdd, 1.5, 2.25, 3.75},
      {FpOp::kSub, 10.0, 0.5, 9.5},
      {FpOp::kMul, -3.0, 7.0, -21.0},
      {FpOp::kDiv, 1.0, 8.0, 0.125},
      {FpOp::kSqrt, 81.0, 0.0, 9.0},
  };
  for (const Case& c : cases) {
    auto result =
        controller_.DeliverTrap(0x401000, c.op, Bits(c.a), Bits(c.b));
    ASSERT_TRUE(result.ok()) << static_cast<int>(c.op);
    EXPECT_DOUBLE_EQ(FromBits(*result), c.expected);
  }
  auto counters = module->Counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->traps_handled, 5u);
  EXPECT_EQ(counters->adds, 1u);
  EXPECT_EQ(counters->divs, 1u);
}

TEST_F(FptrapTest, SpecialValuesFlowThrough) {
  auto module = BaselineFpvm::Probe(modrt::RawMemOps(&kernel_));
  ASSERT_TRUE(module.ok());
  controller_.SetHandler(
      [&](uint64_t frame) { return module->HandleTrap(frame); });

  // Division by zero -> inf; 0/0 -> NaN; denormal survives.
  auto inf = controller_.DeliverTrap(0, FpOp::kDiv, Bits(1.0), Bits(0.0));
  ASSERT_TRUE(inf.ok());
  EXPECT_TRUE(std::isinf(FromBits(*inf)));
  auto nan = controller_.DeliverTrap(0, FpOp::kDiv, Bits(0.0), Bits(0.0));
  ASSERT_TRUE(nan.ok());
  EXPECT_TRUE(std::isnan(FromBits(*nan)));
  const double denormal = 5e-324;
  auto tiny = controller_.DeliverTrap(0, FpOp::kMul, Bits(denormal),
                                      Bits(1.0));
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(FromBits(*tiny), denormal);
}

TEST_F(FptrapTest, GuardedBuildCountsGuardsExactly) {
  auto module = CaratFpvm::Probe(
      modrt::GuardedMemOps(&kernel_, &policy_->engine()));
  ASSERT_TRUE(module.ok());
  controller_.SetHandler(
      [&](uint64_t frame) { return module->HandleTrap(frame); });
  policy_->engine().ResetStats();
  ASSERT_TRUE(
      controller_.DeliverTrap(0, FpOp::kMul, Bits(2.0), Bits(3.0)).ok());
  // 3 frame loads + 2 frame stores + counter load/store = 7 guards (mul
  // touches neither the add nor div counter).
  EXPECT_EQ(policy_->engine().stats().guard_calls, 7u);
  EXPECT_EQ(policy_->engine().stats().denied, 0u);
}

TEST_F(FptrapTest, GuardedAndBaselineAgreeBitExactly) {
  auto baseline = BaselineFpvm::Probe(modrt::RawMemOps(&kernel_));
  auto carat = CaratFpvm::Probe(
      modrt::GuardedMemOps(&kernel_, &policy_->engine()));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(carat.ok());
  for (double a : {0.0, 1.0, -1.5, 1e300, 5e-324}) {
    for (double b : {0.5, -2.0, 3.141592653589793}) {
      controller_.SetHandler(
          [&](uint64_t frame) { return baseline->HandleTrap(frame); });
      auto base_result =
          controller_.DeliverTrap(0, FpOp::kDiv, Bits(a), Bits(b));
      controller_.SetHandler(
          [&](uint64_t frame) { return carat->HandleTrap(frame); });
      auto carat_result =
          controller_.DeliverTrap(0, FpOp::kDiv, Bits(a), Bits(b));
      ASSERT_TRUE(base_result.ok());
      ASSERT_TRUE(carat_result.ok());
      EXPECT_EQ(*base_result, *carat_result) << a << "/" << b;
    }
  }
}

TEST_F(FptrapTest, PolicyBlocksTrapFrameAccess) {
  auto module = CaratFpvm::Probe(
      modrt::GuardedMemOps(&kernel_, &policy_->engine()));
  ASSERT_TRUE(module.ok());
  controller_.SetHandler(
      [&](uint64_t frame) { return module->HandleTrap(frame); });
  // An operator mistake: the policy denies the module the trap-frame
  // page. The very first frame load panics; the core kernel's own frame
  // staging (unguarded) was unaffected.
  ASSERT_TRUE(policy_->engine()
                  .store()
                  .Add(policy::Region{controller_.frame_addr(),
                                      frame::kSize, policy::kProtNone})
                  .ok());
  EXPECT_THROW(
      (void)controller_.DeliverTrap(0, FpOp::kAdd, Bits(1.0), Bits(2.0)),
      kernel::KernelPanic);
  EXPECT_TRUE(kernel_.log().Contains("forbidden read access"));
}

TEST_F(FptrapTest, ThroughputOfTrapStorm) {
  auto module = BaselineFpvm::Probe(modrt::RawMemOps(&kernel_));
  ASSERT_TRUE(module.ok());
  controller_.SetHandler(
      [&](uint64_t frame) { return module->HandleTrap(frame); });
  double acc = 1.0;
  for (int i = 0; i < 10000; ++i) {
    auto result = controller_.DeliverTrap(0x400000 + i, FpOp::kAdd,
                                          Bits(acc), Bits(0.25));
    ASSERT_TRUE(result.ok());
    acc = FromBits(*result);
  }
  EXPECT_DOUBLE_EQ(acc, 1.0 + 0.25 * 10000);
  EXPECT_EQ(controller_.stats().handled, 10000u);
}

}  // namespace
}  // namespace kop::fptrap
