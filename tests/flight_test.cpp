// kop::flight acceptance: span recording and latency percentiles, the
// SMP-merged Chrome-trace export, and the postmortem pipeline — a
// contained module call must leave a deterministic, schema-valid bundle
// behind, surfaced through procfs, the carat ioctl, and lsmod's
// LastEvent column, byte-identical across engines.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kop/fault/campaign.hpp"
#include "kop/flight/postmortem.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kernel/procfs.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/policy/ioctl_abi.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/sim/clock.hpp"
#include "kop/smp/executor.hpp"
#include "kop/trace/exporters.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"

namespace kop {
namespace {

using kernel::ExecEngine;
using kernel::Kernel;
using kernel::KernelConfig;
using kernel::LoadedModule;
using kernel::ModuleLoader;
using resilience::RecoveryPolicy;
using trace::Log2Histogram;
using trace::SpanKind;

constexpr uint64_t kForbiddenAddr = 0x1000;  // inside the denied user range

const char* kVictimSource = R"(module "kop_victim"

global @counter size 8 rw

func @bump() -> i64 {
entry:
  %c = load i64, @counter
  %c1 = add i64 %c, 1
  store i64 %c1, @counter
  ret i64 %c1
}

func @violate(ptr %addr) -> i64 {
entry:
  store i64 1, %addr
  ret i64 0
}
)";

signing::SignedModule CompileAndSign(const std::string& source) {
  auto compiled = transform::CompileModuleText(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

signing::Keyring TrustedKeyring() {
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  return keyring;
}

KernelConfig SmallKernel() {
  KernelConfig config;
  config.ram_bytes = 4ull << 20;
  config.kernel_text_bytes = 1ull << 20;
  config.module_area_bytes = 4ull << 20;
  config.user_bytes = 1ull << 20;
  return config;
}

/// Kernel + default-allow policy (user range denied) + victim module,
/// primed so one Call("violate") is contained on the chosen policy.
struct Rig {
  explicit Rig(ExecEngine engine,
               RecoveryPolicy recovery = RecoveryPolicy::kQuarantine)
      : kernel(SmallKernel()), loader(&kernel, TrustedKeyring()) {
    auto inserted = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(inserted.ok()) << inserted.status().ToString();
    policy = std::move(*inserted);
    policy->engine().SetViolationAction(policy::ViolationAction::kQuarantine);
    EXPECT_TRUE(policy->engine()
                    .store()
                    .Add(policy::Region{0, kernel::kUserSpaceEnd,
                                        policy::kProtNone})
                    .ok());
    loader.set_engine(engine);
    loader.set_recovery_policy(recovery);
    auto loaded = loader.Insmod(CompileAndSign(kVictimSource));
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    module = *loaded;
  }

  Kernel kernel;
  ModuleLoader loader;
  std::unique_ptr<policy::PolicyModule> policy;
  LoadedModule* module = nullptr;
};

const ExecEngine kEngines[] = {ExecEngine::kBytecode, ExecEngine::kInterp};

// ------------------------------------------------- percentile pins --

TEST(Log2HistogramTest, PercentileOnEmptyHistogramIsZero) {
  Log2Histogram hist;
  EXPECT_DOUBLE_EQ(hist.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(99.9), 0.0);
}

TEST(Log2HistogramTest, PercentileInterpolatesWithinOneBucket) {
  // Four observations of 1.0 all land in bucket [1, 2). The interpolated
  // quantile walks k/c of the way through the bucket: rank p/100*4.
  Log2Histogram hist;
  for (int i = 0; i < 4; ++i) hist.Observe(1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(50.0), 1.5);
  EXPECT_DOUBLE_EQ(hist.Percentile(75.0), 1.75);
  EXPECT_DOUBLE_EQ(hist.Percentile(100.0), 2.0);
}

TEST(Log2HistogramTest, PercentileInterpolatesAcrossBuckets) {
  // 4 in [1,2), 4 in [2,4), 2 in [4,8): n = 10.
  Log2Histogram hist;
  for (int i = 0; i < 4; ++i) hist.Observe(1.0);
  for (int i = 0; i < 4; ++i) hist.Observe(2.0);
  for (int i = 0; i < 2; ++i) hist.Observe(5.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(10.0), 1.25);   // rank 1 of 4 in [1,2)
  EXPECT_DOUBLE_EQ(hist.Percentile(50.0), 2.5);    // rank 1 of 4 in [2,4)
  EXPECT_DOUBLE_EQ(hist.Percentile(90.0), 6.0);    // rank 1 of 2 in [4,8)
  EXPECT_DOUBLE_EQ(hist.Percentile(99.0), 7.8);
  EXPECT_DOUBLE_EQ(hist.Percentile(100.0), 8.0);
}

TEST(Log2HistogramTest, PercentileFromBucketsMatchesInstance) {
  Log2Histogram hist;
  for (int i = 0; i < 4; ++i) hist.Observe(1.0);
  for (int i = 0; i < 2; ++i) hist.Observe(5.0);
  std::array<uint64_t, Log2Histogram::kBuckets> folded{};
  for (size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    folded[i] = hist.bucket(i);
  }
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(Log2Histogram::PercentileFromBuckets(folded, p),
                     hist.Percentile(p));
  }
}

// ------------------------------------------------------------ spans --

/// Pins a controllable virtual clock on the global tracer (spans read
/// their timestamps from it) and restores the previous one on exit.
class ScopedSpanClock {
 public:
  ScopedSpanClock() : prev_(trace::GlobalTracer().clock()) {
    trace::GlobalTracer().SetClock(&clock_);
  }
  ~ScopedSpanClock() { trace::GlobalTracer().SetClock(prev_); }
  sim::VirtualClock& clock() { return clock_; }

 private:
  sim::VirtualClock clock_;
  const sim::VirtualClock* prev_;
};

TEST(SpanRecorderTest, NestedSpansRecordDepthDurationAndKind) {
  ScopedSpanClock scoped;
  trace::SpanRecorder recorder(64);

  const uint64_t outer = recorder.BeginSpan();
  scoped.clock().Advance(3.0);
  const uint64_t inner = recorder.BeginSpan();
  scoped.clock().Advance(5.0);
  recorder.EndSpan(SpanKind::kGuardDecision, inner, 0xabc);
  scoped.clock().Advance(2.0);
  recorder.EndSpan(SpanKind::kModuleCall, outer, 0);

  const auto spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Ordered by begin time: the outer call first, the nested guard after.
  EXPECT_EQ(spans[0].kind, SpanKind::kModuleCall);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].duration(), 10u);
  EXPECT_EQ(spans[1].kind, SpanKind::kGuardDecision);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[1].duration(), 5u);
  EXPECT_EQ(spans[1].arg, 0xabcu);

  const auto stats = recorder.Stats(SpanKind::kGuardDecision);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.sum, 5.0);
  EXPECT_EQ(recorder.total_recorded(), 2u);
}

TEST(SpanRecorderTest, TailReturnsNewestOldestFirst) {
  ScopedSpanClock scoped;
  trace::SpanRecorder recorder(64);
  for (int i = 0; i < 10; ++i) {
    const uint64_t begin = recorder.BeginSpan();
    scoped.clock().Advance(1.0);
    recorder.EndSpan(SpanKind::kJournalCommit, begin, static_cast<uint64_t>(i));
  }
  const auto tail = recorder.Tail(0, 4);
  ASSERT_EQ(tail.size(), 4u);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].arg, 6u + i);  // the newest four, oldest first
  }
}

TEST(SpanRecorderTest, DisabledRecorderDropsSpans) {
  trace::SpanRecorder recorder(64);
  recorder.SetEnabled(false);
  // The KOP_SPAN fast path checks the flag before BeginSpan; emulate it.
  if (recorder.enabled()) {
    const uint64_t begin = recorder.BeginSpan();
    recorder.EndSpan(SpanKind::kModuleCall, begin, 0);
  }
  EXPECT_EQ(recorder.total_recorded(), 0u);
  recorder.SetEnabled(true);
}

#if KOP_SPANS_ENABLED
TEST(SpanRecorderTest, KopSpanMacroFeedsGlobalRecorderAndHonorsEnable) {
  trace::GlobalSpans().Reset();
  const uint64_t before = trace::GlobalSpans().total_recorded();
  { KOP_SPAN(kModuleCall); }
  EXPECT_EQ(trace::GlobalSpans().total_recorded(), before + 1);

  trace::GlobalSpans().SetEnabled(false);
  { KOP_SPAN(kModuleCall); }
  EXPECT_EQ(trace::GlobalSpans().total_recorded(), before + 1);
  trace::GlobalSpans().SetEnabled(true);
}

TEST(SpanRecorderTest, ModuleCallEmitsTheInstrumentedSeams) {
  trace::GlobalSpans().Reset();
  Rig rig(ExecEngine::kBytecode);
  ASSERT_TRUE(rig.module->Call("bump", {}).ok());
  EXPECT_GE(trace::GlobalSpans().Stats(SpanKind::kModuleCall).count, 1u);
  EXPECT_GE(trace::GlobalSpans().Stats(SpanKind::kEngineDispatch).count, 1u);
  EXPECT_GE(trace::GlobalSpans().Stats(SpanKind::kGuardDecision).count, 1u);
  EXPECT_GE(trace::GlobalSpans().Stats(SpanKind::kJournalCommit).count, 1u);
  // Prometheus exposition names the folded summaries.
  const std::string prom = trace::GlobalSpans().RenderPrometheus();
  EXPECT_NE(prom.find("kop_span_duration_cycles{span=\"span.module_call\""),
            std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
}
#endif

// --------------------------------------- chrome export under SMP --

TEST(ChromeTraceSmpTest, FourCpuExportMergesMonotonicallyWithTid) {
  ScopedSpanClock scoped;
  auto& tracer = trace::GlobalTracer();
  tracer.Reset();
  tracer.ring().SetShards(4);
  trace::GlobalSpans().Reset();

  // Each CPU advances its own virtual clock at a different rate, so the
  // shards interleave: a pure shard concatenation would NOT be sorted.
  smp::RunOnCpus(4, [&](uint32_t cpu) {
    for (uint64_t i = 0; i < 32; ++i) {
      scoped.clock().Advance(1.0 + cpu);
      tracer.Record(trace::EventId::kGuardCheck, cpu, i);
#if KOP_SPANS_ENABLED
      KOP_SPAN(kGuardDecision, cpu);
#endif
    }
  });

  const auto records = tracer.ring().Snapshot();
  ASSERT_EQ(records.size(), 4u * 32u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].tsc, records[i].tsc)
        << "merged stream not monotonic at " << i;
    if (records[i - 1].tsc == records[i].tsc) {
      EXPECT_LT(records[i - 1].seq, records[i].seq);
    }
  }

  const std::string json =
      trace::ExportChromeTrace(records, trace::GlobalSpans().Snapshot());
  for (uint32_t cpu = 0; cpu < 4; ++cpu) {
    EXPECT_NE(json.find("\"tid\":" + std::to_string(cpu)),
              std::string::npos)
        << "cpu " << cpu << " missing from export";
  }
#if KOP_SPANS_ENABLED
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "spans should export as real-duration events";
#endif

  tracer.ring().SetShards(1);
  tracer.Reset();
}

// ----------------------------------------------- postmortem bundles --

const char* const kSchemaKeys[] = {
    "\"schema\":\"kop.flight.postmortem/v1\"", "\"module\":",
    "\"engine\":", "\"reason\":", "\"what\":", "\"recovery\":", "\"cpu\":",
    "\"tsc\":", "\"violation\":", "\"vm\":", "\"journal\":{", "\"heap\":{",
    "\"restarts\":{", "\"policy\":", "\"heatmap\":[", "\"trace\":[",
};

TEST(PostmortemTest, ContainmentCapturesBundlePresentIffContained) {
  for (ExecEngine engine : kEngines) {
    flight::GlobalPostmortems().Reset();
    Rig rig(engine);

    // A clean call contains nothing and captures nothing.
    ASSERT_TRUE(rig.module->Call("bump", {}).ok());
    EXPECT_EQ(flight::GlobalPostmortems().incidents(), 0u);

    // A violation is contained and captures exactly one bundle.
    ASSERT_FALSE(rig.module->Call("violate", {kForbiddenAddr}).ok());
    EXPECT_EQ(flight::GlobalPostmortems().incidents(), 1u);

    flight::PostmortemBundle bundle;
    ASSERT_TRUE(flight::GlobalPostmortems().Latest(&bundle));
    EXPECT_EQ(bundle.module, "kop_victim");
    EXPECT_EQ(bundle.reason, "violation");
    EXPECT_EQ(bundle.recovery, "quarantine");
    EXPECT_TRUE(bundle.has_violation);
    EXPECT_EQ(bundle.violation_addr, kForbiddenAddr);
    EXPECT_NE(bundle.site_label.find("kop_victim:violate"),
              std::string::npos)
        << bundle.site_label;
    ASSERT_TRUE(bundle.vm.valid);
    EXPECT_EQ(bundle.vm.function, "violate");
    EXPECT_GE(bundle.journal_rollbacks, 1u);
    EXPECT_FALSE(bundle.tails.empty());
    EXPECT_TRUE(bundle.policy.present);

    const std::string json = bundle.ToJson();
    for (const char* key : kSchemaKeys) {
      EXPECT_NE(json.find(key), std::string::npos)
          << "missing schema key " << key;
    }
  }
}

TEST(PostmortemTest, RestartRecoveryRecordsRestartDecision) {
  flight::GlobalPostmortems().Reset();
  Rig rig(ExecEngine::kBytecode, RecoveryPolicy::kRestart);
  ASSERT_FALSE(rig.module->Call("violate", {kForbiddenAddr}).ok());
  EXPECT_GE(flight::GlobalPostmortems().incidents(), 1u);
  // The first bundle of the incident carries the containment decision.
  const auto all = flight::GlobalPostmortems().All();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().reason, "violation");
  EXPECT_EQ(all.front().recovery, "restart");
}

TEST(PostmortemTest, DemoBundleIsDeterministicAndEngineIdentical) {
  fault::CampaignConfig config;
  config.seed = 11;

  std::string normalized[2];
  for (int e = 0; e < 2; ++e) {
    config.engine = kEngines[e];
    auto bundle = fault::RunPostmortemDemo(config);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
    EXPECT_TRUE(bundle->has_violation);
    EXPECT_FALSE(bundle->site_label.empty());
    EXPECT_FALSE(bundle->tails.empty());
    flight::PostmortemBundle neutral = *bundle;
    neutral.engine = "(normalized)";
    normalized[e] = neutral.ToJson();
  }
  // The engine name is the only sanctioned cross-engine difference.
  EXPECT_EQ(normalized[0], normalized[1]);

  // Same seed, same engine, run again: byte-identical without help.
  config.engine = kEngines[0];
  auto again = fault::RunPostmortemDemo(config);
  ASSERT_TRUE(again.ok());
  flight::PostmortemBundle neutral = *again;
  neutral.engine = "(normalized)";
  EXPECT_EQ(neutral.ToJson(), normalized[0]);
}

TEST(PostmortemTest, CampaignInvariantHoldsAcrossRecoveryModes) {
  // The campaign asserts present-iff-contained per trial internally; a
  // clean report means the invariant held for every injection.
  for (RecoveryPolicy recovery :
       {RecoveryPolicy::kQuarantine, RecoveryPolicy::kRestart}) {
    fault::CampaignConfig config;
    config.seed = 5;
    config.min_trials = 24;
    config.recovery = recovery;
    const auto report = fault::RunCampaign(config);
    EXPECT_TRUE(report.ok()) << report.ToText();
    bool saw_contained_with_bundle = false;
    for (const auto& trial : report.trials) {
      EXPECT_EQ(trial.contained, trial.postmortem)
          << trial.outcome << " (" << trial.target << ")";
      saw_contained_with_bundle |= trial.contained && trial.postmortem;
    }
    EXPECT_TRUE(saw_contained_with_bundle);
  }
}

// ------------------------------------------------ kernel surfacing --

TEST(PostmortemTest, ProcfsAndIoctlSurfaceTheLatestBundle) {
  flight::GlobalPostmortems().Reset();
  EXPECT_EQ(kernel::ProcPostmortem(), "none\n");

  Rig rig(ExecEngine::kBytecode);
  ASSERT_FALSE(rig.module->Call("violate", {kForbiddenAddr}).ok());

  const std::string proc = kernel::ProcPostmortem();
  EXPECT_NE(proc.find("kop.flight.postmortem/v1"), std::string::npos);
  EXPECT_NE(proc.find("kop_victim"), std::string::npos);

  policy::CaratPostmortemArg reply;
  auto arg = policy::PackArg(reply);
  ASSERT_TRUE(rig.kernel.devices()
                  .Ioctl(policy::kCaratDevicePath,
                         policy::CARAT_IOC_READ_POSTMORTEM, arg)
                  .ok());
  ASSERT_TRUE(policy::UnpackArg(arg, &reply));
  EXPECT_EQ(reply.present, 1u);
  EXPECT_EQ(reply.truncated, 0u);
  EXPECT_GE(reply.incidents, 1u);
  const std::string json(reply.json);
  EXPECT_EQ(json.size(), reply.total_len);
  EXPECT_NE(json.find("kop.flight.postmortem/v1"), std::string::npos);
}

TEST(PostmortemTest, LsmodShowsLastEventColumn) {
  Rig rig(ExecEngine::kBytecode);

  std::string lsmod = kernel::ProcModules(rig.loader);
  EXPECT_NE(lsmod.find("LastEvent"), std::string::npos);
  EXPECT_EQ(rig.module->last_event_reason(), nullptr);

  ASSERT_FALSE(rig.module->Call("violate", {kForbiddenAddr}).ok());
  // Quarantine is the final transition of the incident, stamped on the
  // virtual clock.
  ASSERT_NE(rig.module->last_event_reason(), nullptr);
  EXPECT_STREQ(rig.module->last_event_reason(), "quarantine");
  lsmod = kernel::ProcModules(rig.loader);
  const std::string expect =
      "quarantine@" + std::to_string(rig.module->last_event_tsc());
  EXPECT_NE(lsmod.find(expect), std::string::npos) << lsmod;
}

}  // namespace
}  // namespace kop
