// kop::resilience — transactional module calls. Containment (guard
// violation, watchdog expiry) must roll the write journal back so kernel
// memory is byte-identical to call entry, and the recovery policy
// (quarantine / restart-with-backoff) must leave nothing behind: no heap
// allocations, no exported symbols, no open journal. Every test runs on
// both execution engines — the transaction seam sits below them, so the
// observable behavior must match exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kop/flight/postmortem.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kernel/procfs.hpp"
#include "kop/fault/campaign.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/net/socket.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/nic/packet_sink.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"

namespace kop {
namespace {

using kernel::ExecEngine;
using kernel::Kernel;
using kernel::KernelConfig;
using kernel::LoadedModule;
using kernel::ModuleLoader;
using resilience::BackoffPolicy;
using resilience::ModuleState;
using resilience::RecoveryPolicy;

constexpr uint64_t kForbiddenAddr = 0x1000;  // inside the denied user range

const char* kVictimSource = R"(module "kop_victim"

global @data size 32 rw
global @counter size 8 rw

func @init() -> i64 {
entry:
  store i64 7, @counter
  ret i64 1
}

func @bump() -> i64 {
entry:
  %c = load i64, @counter
  %c1 = add i64 %c, 1
  store i64 %c1, @counter
  ret i64 %c1
}

func @touch_then_violate(ptr %addr, i64 %v) -> i64 {
entry:
  store i64 %v, @data
  store i64 %v, @counter
  store i64 %v, %addr
  ret i64 0
}

func @spin(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %acc = load i64, @counter
  %acc1 = add i64 %acc, 1
  store i64 %acc1, @counter
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret i64 %i
}
)";

signing::SignedModule CompileAndSign(const std::string& source) {
  auto compiled = transform::CompileModuleText(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

signing::Keyring TrustedKeyring() {
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  return keyring;
}

KernelConfig SmallKernel() {
  KernelConfig config;
  config.ram_bytes = 4ull << 20;
  config.kernel_text_bytes = 1ull << 20;
  config.module_area_bytes = 4ull << 20;
  config.user_bytes = 1ull << 20;
  return config;
}

/// One kernel + policy + loader + loaded module, on a chosen engine.
struct Rig {
  explicit Rig(ExecEngine engine, const std::string& source = kVictimSource,
               RecoveryPolicy recovery = RecoveryPolicy::kQuarantine)
      : kernel(SmallKernel()), loader(&kernel, TrustedKeyring()) {
    auto inserted = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(inserted.ok()) << inserted.status().ToString();
    policy = std::move(*inserted);
    policy->engine().SetViolationAction(policy::ViolationAction::kQuarantine);
    EXPECT_TRUE(policy->engine()
                    .store()
                    .Add(policy::Region{0, kernel::kUserSpaceEnd,
                                        policy::kProtNone})
                    .ok());
    loader.set_engine(engine);
    loader.set_recovery_policy(recovery);
    auto loaded = loader.Insmod(CompileAndSign(source));
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    module = *loaded;
  }

  std::vector<uint8_t> GlobalBytes(const std::string& name) {
    auto addr = module->GlobalAddress(name);
    EXPECT_TRUE(addr.ok());
    const kir::GlobalVariable* global = nullptr;
    for (const auto& g : module->ir().globals()) {
      if (g->name() == name) global = g.get();
    }
    EXPECT_NE(global, nullptr);
    const uint8_t* host =
        kernel.mem().RawHostPointer(*addr, global->size_bytes());
    EXPECT_NE(host, nullptr);
    return std::vector<uint8_t>(host, host + global->size_bytes());
  }

  Kernel kernel;
  ModuleLoader loader;
  std::unique_ptr<policy::PolicyModule> policy;
  LoadedModule* module = nullptr;
};

const ExecEngine kEngines[] = {ExecEngine::kBytecode, ExecEngine::kInterp};

TEST(ResilienceTest, ViolationMidCallLeavesNoJournalResidue) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine);
    ASSERT_TRUE(rig.module->Call("init", {}).ok());
    const auto data_before = rig.GlobalBytes("data");
    const auto counter_before = rig.GlobalBytes("counter");

    auto result = rig.module->Call("touch_then_violate", {kForbiddenAddr, 99});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::kPermissionDenied);

    // The two in-policy stores that preceded the violation were undone.
    EXPECT_EQ(rig.GlobalBytes("data"), data_before)
        << "journal residue on engine " << kernel::ExecEngineName(engine);
    EXPECT_EQ(rig.GlobalBytes("counter"), counter_before);
    EXPECT_FALSE(rig.module->journaled_memory().journal().active());
    EXPECT_GE(rig.module->journaled_memory().journal().total_rollbacks(), 1u);
    EXPECT_TRUE(rig.module->quarantined());
  }
}

TEST(ResilienceTest, QuarantinedModuleRefusesFurtherCalls) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine);
    ASSERT_FALSE(rig.module->Call("touch_then_violate", {kForbiddenAddr, 1})
                     .ok());
    ASSERT_TRUE(rig.module->quarantined());
    auto refused = rig.module->Call("bump", {});
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), ErrorCode::kPermissionDenied);
    EXPECT_NE(refused.status().message().find("quarantined"),
              std::string::npos);
  }
}

TEST(ResilienceTest, WatchdogExpiryContainsRunawayCallOnBothEngines) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine);
    ASSERT_TRUE(rig.module->Call("init", {}).ok());
    const auto counter_before = rig.GlobalBytes("counter");
    rig.module->set_watchdog_steps(200);

    auto result = rig.module->Call("spin", {1'000'000});
    ASSERT_FALSE(result.ok());
    // The containment path converts the engine's kTimeout into the
    // recovery policy's verdict; the loop's partial stores are undone.
    EXPECT_EQ(rig.GlobalBytes("counter"), counter_before);
    EXPECT_TRUE(rig.module->quarantined());
    EXPECT_NE(rig.module->quarantine_reason().find("budget"),
              std::string::npos);
  }
}

TEST(ResilienceTest, WatchdogBudgetIsPerCallNotPerLifetime) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine);
    rig.module->set_watchdog_steps(5'000);
    // Each call fits the per-call budget; together they exceed it. A
    // lifetime budget would trip, a per-call watchdog must not.
    for (int i = 0; i < 5; ++i) {
      auto ok = rig.module->Call("spin", {300});
      ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    }
    EXPECT_EQ(rig.module->state(), ModuleState::kLive);
  }
}

TEST(ResilienceTest, RestartRecoversTheModule) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine, kVictimSource, RecoveryPolicy::kRestart);
    ASSERT_TRUE(rig.module->Call("init", {}).ok());

    auto contained =
        rig.module->Call("touch_then_violate", {kForbiddenAddr, 5});
    ASSERT_FALSE(contained.ok());
    EXPECT_NE(contained.status().message().find("restarted"),
              std::string::npos);
    EXPECT_EQ(rig.module->state(), ModuleState::kRestarted);
    EXPECT_EQ(rig.module->restart_count(), 1u);

    // The restart re-ran @init: the module is serviceable again.
    auto after = rig.module->Call("bump", {});
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(*after, 8u);  // init stores 7, bump returns 8
  }
}

TEST(ResilienceTest, RestartSucceedsAfterFailedRetries) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine, kVictimSource, RecoveryPolicy::kRestart);
    rig.module->set_backoff(BackoffPolicy{3, 1'000, 8'000});
    // First two attempts re-run an entry that does not exist and fail;
    // before the third (last budgeted) attempt the entry is fixed.
    rig.module->set_restart_entry("no_such_entry", {});

    ASSERT_FALSE(
        rig.module->Call("touch_then_violate", {kForbiddenAddr, 1}).ok());
    EXPECT_EQ(rig.module->state(), ModuleState::kNeedsRestart);
    ASSERT_FALSE(rig.module->Call("bump", {}).ok());  // attempt 2 fails
    EXPECT_EQ(rig.module->state(), ModuleState::kNeedsRestart);
    EXPECT_EQ(rig.module->restart_attempts(), 2u);

    rig.module->set_restart_entry("init", {});
    auto result = rig.module->Call("bump", {});  // attempt 3 succeeds
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(rig.module->state(), ModuleState::kRestarted);
    EXPECT_EQ(rig.module->restart_attempts(), 3u);
    EXPECT_EQ(rig.module->restart_count(), 1u);
    EXPECT_EQ(*result, 8u);
  }
}

TEST(ResilienceTest, BackoffBudgetExhaustionQuarantinesForGood) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine, kVictimSource, RecoveryPolicy::kRestart);
    rig.module->set_backoff(BackoffPolicy{2, 1'000, 8'000});
    rig.module->set_restart_entry("no_such_entry", {});

    ASSERT_FALSE(
        rig.module->Call("touch_then_violate", {kForbiddenAddr, 1}).ok());
    ASSERT_FALSE(rig.module->Call("bump", {}).ok());  // burns attempt 2
    EXPECT_EQ(rig.module->restart_attempts(), 2u);

    auto final_call = rig.module->Call("bump", {});  // budget exhausted
    ASSERT_FALSE(final_call.ok());
    EXPECT_TRUE(rig.module->quarantined());
    EXPECT_NE(
        rig.module->quarantine_reason().find("restart budget exhausted"),
        std::string::npos);
    // Permanent: later calls refuse without another restart attempt.
    ASSERT_FALSE(rig.module->Call("bump", {}).ok());
    EXPECT_EQ(rig.module->restart_attempts(), 2u);
  }
}

TEST(ResilienceTest, RestartChargesExponentialBackoffDowntime) {
  Rig rig(ExecEngine::kBytecode, kVictimSource, RecoveryPolicy::kRestart);
  const BackoffPolicy backoff{3, 10'000, 1'000'000};
  rig.module->set_backoff(backoff);
  rig.module->set_restart_entry("no_such_entry", {});

  ASSERT_FALSE(
      rig.module->Call("touch_then_violate", {kForbiddenAddr, 1}).ok());
  const double after_first = rig.kernel.clock().NowCycles();
  ASSERT_FALSE(rig.module->Call("bump", {}).ok());
  const double after_second = rig.kernel.clock().NowCycles();
  // Attempt 2 costs base << 1 cycles of simulated downtime on top of
  // whatever the failed init consumed.
  EXPECT_GE(after_second - after_first,
            static_cast<double>(backoff.CyclesFor(2)));
}

// The exhaustion path end to end, under a fault that never clears:
// every guard site forced to deny, so the init entry fails each restart
// attempt. The backoff schedule must be exponential (attempt n charges
// at least base << (n-1) cycles of simulated downtime), every attempt
// must be visible as a failed kModuleRestart trace event and a
// resilience.restart_failures count, and the ladder must end in a
// permanent quarantine carrying the "restart-exhausted" postmortem.
TEST(ResilienceTest, PersistentFaultWalksFullBackoffLadderToQuarantine) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine, kVictimSource, RecoveryPolicy::kRestart);
    const BackoffPolicy backoff{3, 50'000, 50'000'000};
    rig.module->set_backoff(backoff);
    rig.module->set_restart_entry("init", {});
    // The persistent fault: policy walls off the module's own @counter
    // global, so the workload call AND each restart's re-init violate
    // on their first store. (ForceDenyAtSite holds only one site, and a
    // single site cannot fail both bump and init.)
    auto counter_addr = rig.module->GlobalAddress("counter");
    ASSERT_TRUE(counter_addr.ok());
    ASSERT_TRUE(rig.policy->engine()
                    .store()
                    .Add(policy::Region{*counter_addr, 8, policy::kProtNone})
                    .ok());

#if KOP_TRACE_ENABLED
    uint64_t seq_before = 0;
    for (const auto& record : trace::GlobalTracer().ring().Snapshot()) {
      seq_before = std::max(seq_before, record.seq);
    }
#endif
    const uint64_t restarts_before =
        trace::GlobalMetrics().GetCounter("resilience.restarts")->value();
    const uint64_t failures_before = trace::GlobalMetrics()
                                         .GetCounter(
                                             "resilience.restart_failures")
                                         ->value();

    // Attempts 1..max: each call burns one restart attempt and charges
    // its rung of the exponential ladder before re-running init.
    double previous = rig.kernel.clock().NowCycles();
    for (uint32_t attempt = 1; attempt <= backoff.max_attempts; ++attempt) {
      ASSERT_FALSE(rig.module->Call("bump", {}).ok());
      EXPECT_EQ(rig.module->state(), ModuleState::kNeedsRestart);
      EXPECT_EQ(rig.module->restart_attempts(), attempt);
      const double now = rig.kernel.clock().NowCycles();
      EXPECT_GE(now - previous,
                static_cast<double>(backoff.CyclesFor(attempt)))
          << "attempt " << attempt << " skipped its backoff rung";
      previous = now;
    }
    EXPECT_EQ(backoff.CyclesFor(1), 50'000u);
    EXPECT_EQ(backoff.CyclesFor(2), 100'000u);
    EXPECT_EQ(backoff.CyclesFor(3), 200'000u);

    // Budget exhausted: the next call quarantines for good.
    ASSERT_FALSE(rig.module->Call("bump", {}).ok());
    EXPECT_TRUE(rig.module->quarantined());
    EXPECT_EQ(rig.module->state(), ModuleState::kQuarantined);
    EXPECT_NE(
        rig.module->quarantine_reason().find("restart budget exhausted"),
        std::string::npos);
    // Permanent: no further attempts are spent.
    ASSERT_FALSE(rig.module->Call("bump", {}).ok());
    EXPECT_EQ(rig.module->restart_attempts(), backoff.max_attempts);

    // Counter story: only failures moved, by exactly the budget.
    EXPECT_EQ(trace::GlobalMetrics()
                  .GetCounter("resilience.restart_failures")
                  ->value(),
              failures_before + backoff.max_attempts);
    EXPECT_EQ(
        trace::GlobalMetrics().GetCounter("resilience.restarts")->value(),
        restarts_before);

#if KOP_TRACE_ENABLED
    // Trace story: this rig's kModuleRestart records are the ladder,
    // attempts 1..max in order, every one marked failed. Records are
    // picked by the process-global seq (each engine iteration builds a
    // fresh kernel whose virtual clock restarts at zero, so Snapshot's
    // timestamp order interleaves the two runs).
    std::vector<trace::TraceRecord> restarts;
    for (const auto& record : trace::GlobalTracer().ring().Snapshot()) {
      if (record.event == trace::EventId::kModuleRestart &&
          record.seq > seq_before) {
        restarts.push_back(record);
      }
    }
    std::sort(restarts.begin(), restarts.end(),
              [](const trace::TraceRecord& a, const trace::TraceRecord& b) {
                return a.seq < b.seq;
              });
    ASSERT_EQ(restarts.size(), static_cast<size_t>(backoff.max_attempts));
    for (uint32_t attempt = 1; attempt <= backoff.max_attempts; ++attempt) {
      const trace::TraceRecord& record = restarts[attempt - 1];
      EXPECT_EQ(record.args[0], attempt);
      EXPECT_EQ(record.args[1], 0u) << "attempt " << attempt
                                    << " unexpectedly succeeded";
    }
#endif  // KOP_TRACE_ENABLED

    // Flight-recorder story: the final bundle is the exhaustion record.
    flight::PostmortemBundle bundle;
    ASSERT_TRUE(flight::GlobalPostmortems().Latest(&bundle));
    EXPECT_EQ(bundle.reason, "restart-exhausted");
    EXPECT_EQ(bundle.recovery, "quarantine");
    EXPECT_EQ(bundle.restart_attempts, backoff.max_attempts);
  }
}

TEST(ResilienceTest, QuarantineReclaimsHeapAndUnexportsSymbols) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine, fault::FaultTargetSource());
    const uint64_t heap_before =
        rig.kernel.heap().Stats().allocation_count -
        rig.module->heap_allocations().size();
    ASSERT_TRUE(rig.module->Call("init", {}).ok());
    ASSERT_TRUE(rig.module->Call("grab", {128}).ok());
    ASSERT_TRUE(rig.module->Call("grab", {64}).ok());
    EXPECT_EQ(rig.module->heap_allocations().size(), 2u);
    EXPECT_TRUE(rig.kernel.symbols().HasFunction("kop_faulty.grab"));

    // poke() dereferences an arbitrary pointer: aim it at user space.
    ASSERT_FALSE(rig.module->Call("poke", {kForbiddenAddr, 1}).ok());
    ASSERT_TRUE(rig.module->quarantined());
    EXPECT_TRUE(rig.module->heap_allocations().empty());
    EXPECT_EQ(rig.kernel.heap().Stats().allocation_count, heap_before);
    EXPECT_FALSE(rig.kernel.symbols().HasFunction("kop_faulty.grab"));
    EXPECT_FALSE(rig.kernel.symbols().HasFunction("kop_faulty.init"));
  }
}

TEST(ResilienceTest, ContainmentIsVisibleInTraceAndPrintk) {
  Rig rig(ExecEngine::kBytecode);
#if KOP_TRACE_ENABLED
  const uint64_t rollbacks_before =
      trace::GlobalTracer().event_count(trace::EventId::kModuleRollback);
  const uint64_t quarantines_before =
      trace::GlobalTracer().event_count(trace::EventId::kModuleQuarantine);
#endif

  ASSERT_FALSE(
      rig.module->Call("touch_then_violate", {kForbiddenAddr, 3}).ok());

#if KOP_TRACE_ENABLED
  EXPECT_GT(trace::GlobalTracer().event_count(trace::EventId::kModuleRollback),
            rollbacks_before);
  EXPECT_GT(
      trace::GlobalTracer().event_count(trace::EventId::kModuleQuarantine),
      quarantines_before);
#endif
  EXPECT_TRUE(
      rig.kernel.log().Contains("quarantined module 'kop_victim'"));
}

TEST(ResilienceTest, GuardViolationCarriesSiteAttribution) {
  Rig rig(ExecEngine::kBytecode);
  ASSERT_FALSE(
      rig.module->Call("touch_then_violate", {kForbiddenAddr, 3}).ok());
  auto violations = rig.policy->engine().RecentViolations();
  ASSERT_FALSE(violations.empty());
  const auto& record = violations.back();
  EXPECT_EQ(record.addr, kForbiddenAddr);
  EXPECT_NE(record.site, 0u);
  // The site token resolves to module:@function attribution.
  const std::string label = trace::GlobalSites().Label(record.site);
  EXPECT_NE(label.find("kop_victim"), std::string::npos) << label;
  EXPECT_NE(label.find("touch_then_violate"), std::string::npos) << label;
  // ... and the loader folded that attribution into the caller's error.
  EXPECT_NE(rig.module->quarantine_reason().find("kop_victim"),
            std::string::npos)
      << rig.module->quarantine_reason();
}

TEST(ResilienceTest, ProcfsShowsQuarantinedAndRestartedStates) {
  Rig rig(ExecEngine::kBytecode);
  EXPECT_NE(kernel::ProcModules(rig.loader).find("Live"),
            std::string::npos);
  ASSERT_FALSE(
      rig.module->Call("touch_then_violate", {kForbiddenAddr, 1}).ok());
  EXPECT_NE(kernel::ProcModules(rig.loader).find("QUARANTINED"),
            std::string::npos);

  Rig restarting(ExecEngine::kBytecode, kVictimSource,
                 RecoveryPolicy::kRestart);
  ASSERT_FALSE(
      restarting.module->Call("touch_then_violate", {kForbiddenAddr, 1})
          .ok());
  const std::string lsmod = kernel::ProcModules(restarting.loader);
  EXPECT_NE(lsmod.find("RESTARTED"), std::string::npos) << lsmod;
  EXPECT_NE(lsmod.find(" 1 "), std::string::npos) << lsmod;  // restarts col
}

TEST(ResilienceTest, EnginesReportIdenticalContainmentErrors) {
  std::vector<std::string> messages;
  for (ExecEngine engine : kEngines) {
    Rig rig(engine);
    auto result = rig.module->Call("touch_then_violate", {kForbiddenAddr, 9});
    ASSERT_FALSE(result.ok());
    messages.push_back(std::string(result.status().message()));
  }
  EXPECT_EQ(messages[0], messages[1]);
}

TEST(ResilienceTest, QuarantinedDriverDegradesToSoftNetError) {
  for (ExecEngine engine : kEngines) {
    Rig rig(engine, kirmods::KnicSource());
    nic::CountingSink sink;
    nic::E1000Device device(&rig.kernel.mem(), &sink);
    ASSERT_TRUE(device.MapAt(kernel::kVmallocBase).ok());
    ASSERT_TRUE(rig.module->Call("knic_init", {kernel::kVmallocBase}).ok());

    net::ModuleNetDevice netdev(rig.module, kernel::kVmallocBase);
    ASSERT_TRUE(netdev.Xmit(0, 64).ok());
    EXPECT_EQ(sink.packets(), 1u);

    // Quarantine the driver mid-flight: force a deny at one of
    // knic_send's own guard sites so the next transmit is contained.
    uint64_t send_site = 0;
    for (uint64_t token : rig.module->site_tokens()) {
      if (trace::GlobalSites().Label(token).find("knic_send") !=
          std::string::npos) {
        send_site = token;
        break;
      }
    }
    ASSERT_NE(send_site, 0u);
    rig.policy->engine().ForceDenyAtSite(send_site);
    Status contained = netdev.Xmit(0, 64);
    EXPECT_FALSE(contained.ok());
    EXPECT_EQ(contained.code(), ErrorCode::kPermissionDenied);
    ASSERT_TRUE(rig.module->quarantined());

    // Every later xmit is an ENETDOWN-style soft error — no exception,
    // no dereference of the quarantined driver.
    Status down = netdev.Xmit(0, 64);
    EXPECT_FALSE(down.ok());
    EXPECT_EQ(down.code(), ErrorCode::kPermissionDenied);
    EXPECT_NE(down.message().find("netdev down"), std::string::npos);
    EXPECT_EQ(sink.packets(), 1u);
    EXPECT_FALSE(rig.kernel.panicked());
  }
}

TEST(ResilienceTest, RmmodAfterQuarantineLeavesNoHeapResidue) {
  for (ExecEngine engine : kEngines) {
    Kernel kernel(SmallKernel());
    ModuleLoader loader(&kernel, TrustedKeyring());
    auto inserted = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    ASSERT_TRUE(inserted.ok());
    (*inserted)->engine().SetViolationAction(
        policy::ViolationAction::kQuarantine);
    ASSERT_TRUE((*inserted)
                    ->engine()
                    .store()
                    .Add(policy::Region{0, kernel::kUserSpaceEnd,
                                        policy::kProtNone})
                    .ok());
    loader.set_engine(engine);
    // Pin quarantine semantics regardless of the KOP_RECOVERY env default.
    loader.set_recovery_policy(resilience::RecoveryPolicy::kQuarantine);
    const uint64_t baseline = kernel.heap().Stats().allocation_count;

    auto loaded = loader.Insmod(CompileAndSign(fault::FaultTargetSource()));
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE((*loaded)->Call("init", {}).ok());
    ASSERT_TRUE((*loaded)->Call("grab", {256}).ok());
    ASSERT_FALSE((*loaded)->Call("poke", {kForbiddenAddr, 1}).ok());
    ASSERT_TRUE(loader.Rmmod("kop_faulty").ok());
    EXPECT_EQ(kernel.heap().Stats().allocation_count, baseline);
  }
}

}  // namespace
}  // namespace kop
