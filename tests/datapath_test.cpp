// The datapath battery: pins the multi-queue NIC + NAPI datapath across
// every seam the tentpole touches. Three layers of proof:
//
//  1. Engine differential — the kop_knic_mq KIR driver produces
//     observationally identical multi-queue transmissions under the
//     interpreter and the bytecode VM: same wire bytes, same per-queue
//     device stats, same guard traffic, same NIC trace-event sequence.
//  2. --cpus 1 bit-identity — dispatching the MQ driver through the SMP
//     executor at one CPU is bit-identical to a plain direct run (trace
//     records, guard stats, virtual clock), mirroring the kop::smp
//     contract for the single-queue workloads.
//  3. Saturation soak — a seeded multi-flow soak over the native guarded
//     driver at 4 queues × 4 CPUs: no descriptor leaks after drain,
//     head/tail always in range, per-queue counters fold exactly across
//     CPUs, and a containment mid-burst rolls the module's memory back
//     byte-identically.
//
// Build with -DKOP_SANITIZE=thread to run the soak under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/net/frame.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/engine.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/signing/signer.hpp"
#include "kop/smp/affinity.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/smp/executor.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"

namespace kop {
namespace {

using e1000e::CaratDriver;
using e1000e::GuardedMemOps;
using e1000e::TxFrame;
using kernel::ExecEngine;
using kernel::Kernel;
using kernel::LoadedModule;
using kernel::ModuleLoader;

constexpr uint64_t kMmio = kernel::kVmallocBase;

signing::SignedModule CompileAndSign(const std::string& source) {
  auto compiled = transform::CompileModuleText(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return signing::SignModule(compiled->text, compiled->attestation,
                             signing::SigningKey::DevelopmentKey());
}

signing::Keyring TrustedKeyring() {
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  return keyring;
}

/// One full stack — kernel, policy, loader, NIC — with the kop_knic_mq
/// driver loaded on a chosen engine.
struct MqStack {
  explicit MqStack(ExecEngine engine)
      : device(&kernel.mem(), &sink), loader(&kernel, TrustedKeyring()) {
    EXPECT_TRUE(device.MapAt(kMmio).ok());
    loader.set_engine(engine);
    auto inserted = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
    EXPECT_TRUE(inserted.ok()) << inserted.status().ToString();
    policy = std::move(*inserted);
    auto loaded = loader.Insmod(CompileAndSign(kirmods::KnicMqSource()));
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    module = *loaded;
  }

  Kernel kernel;
  nic::CountingSink sink;
  nic::E1000Device device;
  ModuleLoader loader;
  std::unique_ptr<policy::PolicyModule> policy;
  LoadedModule* module = nullptr;
};

struct ScriptCall {
  std::string function;
  std::vector<uint64_t> args;
};

/// The canonical multi-queue workload: bring up 4 queues, then mix
/// per-frame sends and batched sends across them.
std::vector<ScriptCall> MqScript() {
  std::vector<ScriptCall> script{{"mq_init", {kMmio, 4}},
                                 {"mq_fill", {96, 0x31}}};
  for (uint64_t q = 0; q < 4; ++q) {
    script.push_back({"mq_send", {kMmio, q, 96}});
  }
  script.push_back({"mq_send_batch", {kMmio, 1, 96, 5}});
  script.push_back({"mq_send_batch", {kMmio, 3, 96, 3}});
  script.push_back({"mq_send", {kMmio, 0, 96}});
  for (uint64_t q = 0; q < 4; ++q) script.push_back({"mq_sent", {q}});
  script.push_back({"mq_sent_hw", {kMmio}});
  return script;
}

/// The NIC-side trace events a run emitted, in order. Device events
/// carry no process-global tokens, so these compare bit-for-bit across
/// stacks and engines.
std::vector<trace::TraceRecord> NicEvents() {
  std::vector<trace::TraceRecord> out;
  for (const trace::TraceRecord& record :
       trace::GlobalTracer().ring().Snapshot()) {
    if (record.event == trace::EventId::kNicDescFetch ||
        record.event == trace::EventId::kNicXmit) {
      out.push_back(record);
    }
  }
  return out;
}

/// Per-guard-site attribution rows keyed by stable label.
std::map<std::string, std::pair<uint64_t, uint64_t>> SiteHits(
    policy::PolicyModule& policy, const std::string& module_name) {
  std::map<std::string, std::pair<uint64_t, uint64_t>> rows;
  for (const policy::HotSite& row : policy.engine().HotSites()) {
    auto info = trace::GlobalSites().Find(row.site);
    if (!info || info->module_name != module_name) continue;
    rows[info->Label()] = {row.hits, row.denied};
  }
  return rows;
}

// ---------------------------------------------------------------------------
// 1. Engine differential on the multi-queue driver
// ---------------------------------------------------------------------------

TEST(DatapathDifferentialTest, KnicMqIsIdenticalUnderBothEngines) {
  struct Observed {
    std::vector<std::pair<bool, uint64_t>> results;
    uint64_t packets = 0, bytes = 0;
    std::vector<std::vector<uint8_t>> frames;
    policy::GuardStats guard_stats;
    std::map<std::string, std::pair<uint64_t, uint64_t>> sites;
    std::vector<nic::DeviceStats> queue_stats;
    std::vector<trace::TraceRecord> nic_events;
  };

  const ExecEngine engines[] = {ExecEngine::kInterp, ExecEngine::kBytecode};
  Observed observed[2];
  for (int i = 0; i < 2; ++i) {
    trace::GlobalTracer().Reset();
    MqStack stack(engines[i]);
    for (const ScriptCall& call : MqScript()) {
      auto result = stack.module->Call(call.function, call.args);
      observed[i].results.push_back(
          {result.ok(), result.ok() ? *result : 0});
    }
    observed[i].packets = stack.sink.packets();
    observed[i].bytes = stack.sink.bytes();
    observed[i].frames = stack.sink.RecentFrames();
    observed[i].guard_stats = stack.policy->engine().stats();
    observed[i].sites = SiteHits(*stack.policy, "kop_knic_mq");
    for (uint32_t q = 0; q < nic::kMaxQueues; ++q) {
      observed[i].queue_stats.push_back(stack.device.QueueStats(q));
    }
    observed[i].nic_events = NicEvents();
  }

  const Observed& a = observed[0];
  const Observed& b = observed[1];
  EXPECT_EQ(a.results, b.results);
  // 4 per-frame sends + 5-batch + 3-batch + 1 more = 13 frames.
  EXPECT_EQ(a.packets, 13u);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_GT(a.guard_stats.guard_calls, 0u);
  EXPECT_EQ(a.guard_stats.guard_calls, b.guard_stats.guard_calls);
  EXPECT_EQ(a.guard_stats.allowed, b.guard_stats.allowed);
  EXPECT_EQ(a.guard_stats.denied, b.guard_stats.denied);
  EXPECT_FALSE(a.sites.empty());
  EXPECT_EQ(a.sites, b.sites);

  // Per-queue device stats: the batch sends target queues 1 and 3, so
  // the per-queue split must be exact, not just the fold.
  for (uint32_t q = 0; q < nic::kMaxQueues; ++q) {
    SCOPED_TRACE(q);
    EXPECT_EQ(a.queue_stats[q].frames_transmitted,
              b.queue_stats[q].frames_transmitted);
    EXPECT_EQ(a.queue_stats[q].descriptors_processed,
              b.queue_stats[q].descriptors_processed);
    EXPECT_EQ(a.queue_stats[q].bytes_transmitted,
              b.queue_stats[q].bytes_transmitted);
    EXPECT_EQ(a.queue_stats[q].tail_writes, b.queue_stats[q].tail_writes);
  }
  EXPECT_EQ(a.queue_stats[0].frames_transmitted, 2u);
  EXPECT_EQ(a.queue_stats[1].frames_transmitted, 6u);
  EXPECT_EQ(a.queue_stats[2].frames_transmitted, 1u);
  EXPECT_EQ(a.queue_stats[3].frames_transmitted, 4u);

  // The NIC trace-event sequence (descriptor fetches + transmissions)
  // matches record-for-record, argument-for-argument.
  ASSERT_EQ(a.nic_events.size(), b.nic_events.size());
  for (size_t i = 0; i < a.nic_events.size(); ++i) {
    EXPECT_EQ(a.nic_events[i].event, b.nic_events[i].event) << i;
    for (int arg = 0; arg < 4; ++arg) {
      EXPECT_EQ(a.nic_events[i].args[arg], b.nic_events[i].args[arg])
          << "record " << i << " arg " << arg;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. --cpus 1 dispatch is bit-identical to a direct run
// ---------------------------------------------------------------------------

TEST(DatapathSmpTest, SingleCpuDispatchIsBitIdenticalOnMqDriver) {
  struct Capture {
    std::vector<trace::TraceRecord> records;
    policy::GuardStats stats;
    double total_cycles = 0;
    std::vector<std::pair<bool, uint64_t>> results;
    uint64_t first_site = 0;
  };
  const ExecEngine engines[] = {ExecEngine::kBytecode, ExecEngine::kInterp};
  for (ExecEngine engine : engines) {
    Capture captures[2];
    for (int smp_path = 0; smp_path < 2; ++smp_path) {
      trace::GlobalTracer().Reset();
      MqStack stack(engine);
      auto workload = [&] {
        for (const ScriptCall& call : MqScript()) {
          auto result = stack.module->Call(call.function, call.args);
          captures[smp_path].results.push_back(
              {result.ok(), result.ok() ? *result : 0});
        }
      };
      if (smp_path == 0) {
        workload();
      } else {
        ASSERT_TRUE(stack.loader.PrepareCpus(1).ok());
        smp::RunOnCpus(1, [&](uint32_t) { workload(); });
      }
      Capture& cap = captures[smp_path];
      cap.records = trace::GlobalTracer().ring().Snapshot();
      cap.stats = stack.policy->engine().stats();
      cap.total_cycles = stack.kernel.clock().TotalCycles();
      const std::vector<uint64_t>& tokens = stack.module->site_tokens();
      cap.first_site = tokens.empty()
                           ? 0
                           : *std::min_element(tokens.begin(), tokens.end());
    }

    // Guard-site tokens are process-global and monotonic; args carrying
    // a token compare by offset from the stack's first token.
    auto args_match = [&](uint64_t a, uint64_t b) {
      if (a == b) return true;
      return a >= captures[0].first_site && b >= captures[1].first_site &&
             a - captures[0].first_site == b - captures[1].first_site;
    };
    EXPECT_EQ(captures[0].results, captures[1].results);
    ASSERT_EQ(captures[0].records.size(), captures[1].records.size())
        << "trace divergence on engine " << kernel::ExecEngineName(engine);
    for (size_t i = 0; i < captures[0].records.size(); ++i) {
      const trace::TraceRecord& a = captures[0].records[i];
      const trace::TraceRecord& b = captures[1].records[i];
      EXPECT_EQ(a.event, b.event) << "record " << i;
      for (int arg = 0; arg < 4; ++arg) {
        EXPECT_TRUE(args_match(a.args[arg], b.args[arg]))
            << "record " << i << " arg " << arg << ": " << a.args[arg]
            << " vs " << b.args[arg];
      }
    }
    EXPECT_EQ(captures[0].stats.guard_calls, captures[1].stats.guard_calls);
    EXPECT_EQ(captures[0].stats.allowed, captures[1].stats.allowed);
    EXPECT_EQ(captures[0].stats.denied, captures[1].stats.denied);
    EXPECT_EQ(captures[0].total_cycles, captures[1].total_cycles);
  }
}

// ---------------------------------------------------------------------------
// 3. Saturation soak: seeded multi-flow, 4 queues × 4 CPUs
// ---------------------------------------------------------------------------

TEST(DatapathSaturationTest, SoakHoldsRingAndCounterInvariants) {
  constexpr uint32_t kCpus = 4;
  constexpr uint32_t kQueues = 4;
  constexpr uint32_t kRing = 64;
  constexpr uint64_t kBurstsPerCpu = 40;
  constexpr uint32_t kBurst = 8;

  Kernel kernel;
  nic::CountingSink sink;
  nic::E1000Device device(&kernel.mem(), &sink);
  ASSERT_TRUE(device.MapAt(kMmio).ok());
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  ASSERT_TRUE(policy.ok());
  auto driver = CaratDriver::ProbeMq(
      GuardedMemOps(&kernel, &(*policy)->engine()), kMmio, kRing, kQueues);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();

  // Seeded flows: every CPU transmits its own flows' frames from its own
  // staging area, on the queue it owns under the round-robin affinity.
  const net::FlowSet flows(kCpus * 4, /*seed=*/7);
  std::vector<uint64_t> staging(kCpus);
  std::vector<uint32_t> staged_len(kCpus);
  for (uint32_t cpu = 0; cpu < kCpus; ++cpu) {
    auto addr = kernel.heap().Kmalloc(2048, 64);
    ASSERT_TRUE(addr.ok());
    staging[cpu] = *addr;
    const auto wire = flows.MakeWire(cpu, 0);
    staged_len[cpu] = static_cast<uint32_t>(
        std::max<size_t>(wire.size(), e1000e::kEthZlen));
    std::vector<uint8_t> padded(wire);
    padded.resize(staged_len[cpu], 0);
    ASSERT_TRUE(
        kernel.mem().Write(staging[cpu], padded.data(), padded.size()).ok());
  }

  std::vector<uint64_t> sent_per_cpu(kCpus, 0);
  smp::RunOnCpus(kCpus, [&](uint32_t cpu) {
    const uint32_t queue = smp::QueueForCpu(cpu, kQueues);
    std::vector<TxFrame> burst(kBurst,
                               TxFrame{staging[cpu], staged_len[cpu]});
    for (uint64_t i = 0; i < kBurstsPerCpu; ++i) {
      uint32_t queued = 0;
      auto status =
          driver->XmitBatch(queue, burst.data(), kBurst, &queued);
      ASSERT_TRUE(status.ok()) << status.ToString();
      sent_per_cpu[cpu] += queued;
      // NAPI poll interleaved with the bursts, as the IRQ handler would.
      auto work = driver->NapiPoll(queue, 16, nullptr);
      ASSERT_TRUE(work.ok());
    }
    // Drain: reclaim until the queue reports no work at all.
    for (int spins = 0; spins < 8; ++spins) {
      auto work = driver->NapiPoll(queue, 64, nullptr);
      ASSERT_TRUE(work.ok());
      if (*work == 0) break;
    }
  });

  const uint64_t total_sent =
      sent_per_cpu[0] + sent_per_cpu[1] + sent_per_cpu[2] + sent_per_cpu[3];
  EXPECT_EQ(total_sent, uint64_t{kCpus} * kBurstsPerCpu * kBurst)
      << "a burst stalled on a full ring that reclaim should have drained";

  uint64_t folded_tx = 0, folded_frames = 0;
  for (uint32_t q = 0; q < kQueues; ++q) {
    SCOPED_TRACE(q);
    // Head/tail in range, and equal after the drain (no descriptor
    // leaks: everything staged was consumed and reclaimed).
    auto tdh = kernel.mem().Read32(kMmio + nic::QReg(nic::REG_TDH, q));
    auto tdt = kernel.mem().Read32(kMmio + nic::QReg(nic::REG_TDT, q));
    ASSERT_TRUE(tdh.ok() && tdt.ok());
    EXPECT_LT(*tdh, kRing);
    EXPECT_LT(*tdt, kRing);
    EXPECT_EQ(*tdh, *tdt);
    auto counters = driver->CountersOn(q);
    ASSERT_TRUE(counters.ok());
    EXPECT_EQ(counters->tx_cleaned, counters->tx_packets)
        << "descriptors still in flight after drain";
    folded_tx += counters->tx_packets;
    folded_frames += device.QueueStats(q).frames_transmitted;
    EXPECT_EQ(device.QueueStats(q).bad_doorbells, 0u);
  }
  // Per-queue counters fold exactly across CPUs: driver totals, device
  // per-queue stats, the legacy folded stats block, and the wire all
  // agree packet-for-packet.
  EXPECT_EQ(folded_tx, total_sent);
  EXPECT_EQ(folded_frames, total_sent);
  EXPECT_EQ(device.stats().frames_transmitted, total_sent);
  EXPECT_EQ(sink.packets(), total_sent);
  auto hw = driver->HwGoodPacketsTransmitted();
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(*hw, total_sent);
}

TEST(DatapathSaturationTest, ContainmentMidBurstRollsBackByteIdentically) {
  // A denied MMIO store mid-batch contains the module after it has
  // staged descriptors into its globals; the journal must roll every
  // byte back. kForbiddenAddr sits inside the denied user range.
  const ExecEngine engines[] = {ExecEngine::kBytecode, ExecEngine::kInterp};
  for (ExecEngine engine : engines) {
    SCOPED_TRACE(kernel::ExecEngineName(engine));
    MqStack stack(engine);
    stack.policy->engine().SetViolationAction(
        policy::ViolationAction::kQuarantine);
    ASSERT_TRUE(stack.policy->engine()
                    .store()
                    .Add(policy::Region{0, kernel::kUserSpaceEnd,
                                        policy::kProtNone})
                    .ok());
    ASSERT_TRUE(stack.module->Call("mq_init", {kMmio, 4}).ok());
    ASSERT_TRUE(stack.module->Call("mq_fill", {96, 0x31}).ok());
    ASSERT_TRUE(stack.module->Call("mq_send", {kMmio, 1, 96}).ok());

    // Snapshot every module global (rings, buffer, tails, counters).
    const std::pair<const char*, uint64_t> globals[] = {
        {"txrings", 512}, {"txbuf", 256}, {"tails", 32}, {"sents", 32}};
    auto snapshot = [&]() {
      std::vector<uint8_t> bytes;
      for (const auto& [name, size] : globals) {
        auto base = stack.module->GlobalAddress(name);
        EXPECT_TRUE(base.ok()) << name;
        std::vector<uint8_t> chunk(size);
        EXPECT_TRUE(
            stack.kernel.mem().Read(*base, chunk.data(), size).ok());
        bytes.insert(bytes.end(), chunk.begin(), chunk.end());
      }
      return bytes;
    };
    const std::vector<uint8_t> before = snapshot();
    const uint64_t packets_before = stack.sink.packets();

    // The doorbell store at the end of the batch hits user space and is
    // denied — after the batch loop has rewritten ring slots and tails.
    auto burst =
        stack.module->Call("mq_send_batch", {0x100, 1, 96, 5});
    EXPECT_FALSE(burst.ok());
    EXPECT_TRUE(stack.module->quarantined());

    const std::vector<uint8_t> after = snapshot();
    EXPECT_EQ(before, after) << "journal rollback left residue";
    EXPECT_EQ(stack.sink.packets(), packets_before)
        << "contained burst reached the wire";
  }
}

}  // namespace
}  // namespace kop
