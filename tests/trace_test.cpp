// kop::trace: the tracepoint ring, metrics registry, guard-site
// directory, and the Chrome-trace/CSV exporters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "kop/sim/clock.hpp"
#include "kop/trace/exporters.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"

namespace kop::trace {
namespace {

// ---------------------------------------------------------- event ids --

TEST(TraceEventTest, EveryEventHasNameAndCategory) {
  for (size_t i = 1; i < kEventCount; ++i) {
    const auto id = static_cast<EventId>(i);
    EXPECT_FALSE(EventName(id).empty()) << i;
    const std::string_view category = EventCategory(id);
    EXPECT_TRUE(category == "guard" || category == "loader" ||
                category == "nic" || category == "kernel" ||
                category == "ioctl" || category == "resilience" ||
                category == "fault" || category == "flight")
        << "event " << i << " has unexpected category " << category;
  }
}

// --------------------------------------------------------------- ring --

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 64u);
  EXPECT_EQ(TraceRing(64).capacity(), 64u);
  EXPECT_EQ(TraceRing(65).capacity(), 128u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRingTest, WraparoundKeepsNewestInOrder) {
  TraceRing ring(64);
  for (uint64_t i = 0; i < 200; ++i) {
    TraceRecord record;
    record.event = EventId::kGuardCheck;
    record.args[0] = i;  // payload marker: the append ordinal
    ring.Append(record);
  }
  EXPECT_EQ(ring.total_appended(), 200u);
  EXPECT_EQ(ring.dropped(), 200u - 64u);

  const auto records = ring.Snapshot();
  ASSERT_EQ(records.size(), 64u);
  // The newest 64 survive, oldest first, with monotonic sequence numbers
  // that keep counting across the wrap.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 136u + i);
    EXPECT_EQ(records[i].args[0], 136u + i);
  }
}

TEST(TraceRingTest, ClearEmptiesRing) {
  TraceRing ring(64);
  for (int i = 0; i < 10; ++i) ring.Append(TraceRecord{});
  ring.Clear();
  EXPECT_EQ(ring.total_appended(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

// ------------------------------------------------------------- tracer --

TEST(TracerTest, RecordStampsVirtualCycles) {
  Tracer tracer;
  sim::VirtualClock clock;
  tracer.SetClock(&clock);
  clock.Advance(100.0);
  tracer.Record(EventId::kGuardCheck, 0x1000, 8);
  clock.Advance(50.0);
  tracer.Record(EventId::kGuardDeny, 0x2000, 4);
  tracer.SetClock(nullptr);

  const auto records = tracer.ring().Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].tsc, 100u);
  EXPECT_EQ(records[0].event, EventId::kGuardCheck);
  EXPECT_EQ(records[0].args[0], 0x1000u);
  EXPECT_EQ(records[1].tsc, 150u);
  EXPECT_EQ(tracer.event_count(EventId::kGuardCheck), 1u);
  EXPECT_EQ(tracer.event_count(EventId::kGuardDeny), 1u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.SetEnabled(false);
  tracer.Record(EventId::kPanic);
  EXPECT_EQ(tracer.ring().total_appended(), 0u);
  EXPECT_EQ(tracer.event_count(EventId::kPanic), 0u);
  tracer.SetEnabled(true);
  tracer.Record(EventId::kPanic);
  EXPECT_EQ(tracer.ring().total_appended(), 1u);
}

TEST(TracerTest, MacroFiresIntoGlobalTracer) {
  GlobalTracer().Reset();
  KOP_TRACE(kPanic);
  KOP_TRACE(kIoctl, 0x4b05, 0);
#if KOP_TRACE_ENABLED
  EXPECT_EQ(GlobalTracer().event_count(EventId::kPanic), 1u);
  EXPECT_EQ(GlobalTracer().event_count(EventId::kIoctl), 1u);
#else
  // Compiled out: nothing recorded, and the macro must still parse.
  EXPECT_EQ(GlobalTracer().ring().total_appended(), 0u);
#endif
  GlobalTracer().Reset();
}

// ------------------------------------------------------------ metrics --

TEST(MetricsTest, CountersAreSharedByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Add();
  a->Add(4);
  EXPECT_EQ(b->value(), 5u);
}

TEST(MetricsTest, GaugeTracksHighWatermark) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(3);
  gauge->Set(17);
  gauge->Set(5);
  EXPECT_EQ(gauge->value(), 5);
  EXPECT_EQ(gauge->max(), 17);
}

TEST(MetricsTest, Log2HistogramBucketsByPowerOfTwo) {
  MetricsRegistry registry;
  Log2Histogram* hist = registry.GetHistogram("test.hist");
  hist->Observe(0.0);     // bucket 0: < 1
  hist->Observe(1.0);     // bucket 1: [1, 2)
  hist->Observe(3.0);     // bucket 2: [2, 4)
  hist->Observe(1024.0);  // bucket 11: [1024, 2048)
  EXPECT_EQ(hist->bucket(0), 1u);
  EXPECT_EQ(hist->bucket(1), 1u);
  EXPECT_EQ(hist->bucket(2), 1u);
  EXPECT_EQ(hist->bucket(11), 1u);
  EXPECT_EQ(hist->count(), 4u);
  EXPECT_DOUBLE_EQ(hist->mean(), (0.0 + 1.0 + 3.0 + 1024.0) / 4.0);
  EXPECT_EQ(hist->NonZeroBuckets(), 4u);
  EXPECT_DOUBLE_EQ(Log2Histogram::BucketLo(0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Histogram::BucketLo(1), 1.0);
  EXPECT_DOUBLE_EQ(Log2Histogram::BucketLo(11), 1024.0);
}

TEST(MetricsTest, CsvSnapshotAndReset) {
  MetricsRegistry registry;
  registry.GetCounter("alpha.count")->Add(7);
  registry.GetGauge("beta.level")->Set(3);
  registry.GetHistogram("gamma.lat")->Observe(2.0);

  const std::string csv = registry.RenderCsv();
  EXPECT_NE(csv.find("alpha.count,counter,value,7"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("beta.level,gauge,value,3"), std::string::npos);
  EXPECT_NE(csv.find("gamma.lat,histogram,count,1"), std::string::npos);

  registry.Reset();
  EXPECT_EQ(registry.GetCounter("alpha.count")->value(), 0u);
  // Registrations survive a reset; snapshot still lists all three.
  EXPECT_EQ(registry.Snapshot().size(), 3u);
}

// -------------------------------------------------------------- sites --

TEST(SiteTest, RegistryAssignsTokensAndLabels) {
  // The global registry is append-only; register fresh entries and only
  // assert on those.
  SiteInfo info;
  info.module_name = "testmod";
  info.function = "@poke";
  info.site_id = 2;
  info.inst_index = 5;
  const uint64_t token = GlobalSites().Register(info);
  EXPECT_GT(token, kUnknownSite);

  auto found = GlobalSites().Find(token);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->module_name, "testmod");
  EXPECT_EQ(found->token, token);
  EXPECT_EQ(GlobalSites().Label(token), "testmod:@poke+5");
  EXPECT_EQ(GlobalSites().Label(kUnknownSite), "<unattributed>");
  EXPECT_FALSE(GlobalSites().Find(token + 1000000).has_value());
}

TEST(SiteTest, ScopedGuardSiteNestsAndRestores) {
  EXPECT_EQ(CurrentGuardSite(), kUnknownSite);
  {
    ScopedGuardSite outer(11);
    EXPECT_EQ(CurrentGuardSite(), 11u);
    {
      ScopedGuardSite inner(22);
      EXPECT_EQ(CurrentGuardSite(), 22u);
    }
    EXPECT_EQ(CurrentGuardSite(), 11u);
  }
  EXPECT_EQ(CurrentGuardSite(), kUnknownSite);
}

// ---------------------------------------------------------- exporters --

/// Minimal structural JSON check: balanced braces/brackets outside
/// strings, with escape handling. Not a full parser, but catches the
/// classic exporter bugs (trailing comma text, unescaped quote).
bool JsonBalanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::vector<TraceRecord> SampleRecords() {
  std::vector<TraceRecord> records;
  const EventId ids[] = {EventId::kGuardCheck, EventId::kModuleLoad,
                         EventId::kNicXmit, EventId::kIoctl};
  uint64_t tsc = 100;
  uint64_t seq = 0;
  for (EventId id : ids) {
    TraceRecord record;
    record.tsc = tsc;
    record.seq = seq++;
    record.event = id;
    record.args[0] = 0xdeadbeef;
    records.push_back(record);
    tsc += 2800;  // 1us at the default 2.8 GHz scale
  }
  return records;
}

TEST(ExporterTest, ChromeTraceIsStructurallyValidJson) {
  const std::string json = ExportChromeTrace(SampleRecords());
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // One instant event per record, each with its category.
  for (const char* category : {"guard", "loader", "nic", "ioctl"}) {
    EXPECT_NE(json.find("\"cat\":\"" + std::string(category) + "\""),
              std::string::npos)
        << "missing category " << category << " in:\n"
        << json;
  }
  // Addresses exported as hex strings (JSON numbers would lose bits).
  EXPECT_NE(json.find("0xdeadbeef"), std::string::npos);
}

TEST(ExporterTest, ChromeTraceTimestampsMonotonicMicroseconds) {
  const std::string json = ExportChromeTrace(SampleRecords());
  std::vector<double> timestamps;
  size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    timestamps.push_back(std::strtod(json.c_str() + pos, nullptr));
  }
  ASSERT_EQ(timestamps.size(), 4u);
  for (size_t i = 1; i < timestamps.size(); ++i) {
    EXPECT_GT(timestamps[i], timestamps[i - 1]);
  }
  // 2800 cycles at 2800 cycles/us = 1us apart.
  EXPECT_NEAR(timestamps[1] - timestamps[0], 1.0, 1e-6);
}

TEST(ExporterTest, CsvHasHeaderAndOneRowPerRecord) {
  const auto records = SampleRecords();
  const std::string csv = ExportTraceCsv(records);
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u + records.size());
  EXPECT_EQ(csv.rfind("seq,tsc,event,category,", 0), 0u) << csv;
  EXPECT_NE(csv.find("guard.check"), std::string::npos);
  EXPECT_NE(csv.find("nic.xmit"), std::string::npos);
}

}  // namespace
}  // namespace kop::trace
