// Extension 3: what resilience costs. Every module call now runs inside
// a write-journal transaction with a step-budget watchdog armed; this
// bench prices that on the guarded knic xmit hot path against the
// pre-resilience configuration (journal off, watchdog off — the PR-2
// bytecode baseline), isolating each mechanism:
//
//   pr2-baseline     journal off, watchdog off
//   watchdog-only    journal off, watchdog armed (default 8M-step budget)
//   journal-only     journal on,  watchdog off
//   full-resilience  journal on,  watchdog armed (the shipped default)
//
// All four variants run the same signed module through the real loader
// path (Insmod + LoadedModule::Call) on the bytecode engine, so the
// numbers include the transaction bookkeeping the loader itself adds.
// Timed rounds interleave across variants and keep the per-variant
// minimum, so co-tenant noise lands on every column equally. Expected:
// single-digit-percent overhead for the full stack — the journal records
// only RAM stores (a handful per send) and the watchdog is one counter
// compare per step.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/nic/packet_sink.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/compiler.hpp"

#include "common/experiment.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using kop::kernel::Kernel;
using kop::kernel::LoadedModule;
using kop::kernel::ModuleLoader;

struct Variant {
  const char* label;
  bool journal;
  bool watchdog;

  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<kop::policy::PolicyModule> policy;
  std::unique_ptr<ModuleLoader> loader;
  std::unique_ptr<kop::nic::CountingSink> sink;
  std::unique_ptr<kop::nic::E1000Device> nic;
  LoadedModule* module = nullptr;
  double best_ns = 0.0;

  bool Build(const kop::signing::SignedModule& image) {
    kernel = std::make_unique<Kernel>();
    auto inserted = kop::policy::PolicyModule::Insert(
        kernel.get(), nullptr, kop::policy::PolicyMode::kDefaultAllow);
    if (!inserted.ok()) return false;
    policy = std::move(*inserted);
    kop::signing::Keyring keyring;
    keyring.Trust(kop::signing::SigningKey::DevelopmentKey());
    loader = std::make_unique<ModuleLoader>(kernel.get(), std::move(keyring));
    loader->set_engine(kop::kernel::ExecEngine::kBytecode);
    sink = std::make_unique<kop::nic::CountingSink>();
    nic = std::make_unique<kop::nic::E1000Device>(&kernel->mem(), sink.get());
    if (!nic->MapAt(kop::kernel::kVmallocBase).ok()) return false;
    auto loaded = loader->Insmod(image);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s: insmod failed: %s\n", label,
                   loaded.status().ToString().c_str());
      return false;
    }
    module = *loaded;
    module->set_journaling_enabled(journal);
    module->set_watchdog_steps(watchdog ? kop::resilience::DefaultWatchdogSteps()
                                        : 0);
    return true;
  }

  double TimeSends(uint64_t sends) {
    const uint64_t mmio = kop::kernel::kVmallocBase;
    const auto start = Clock::now();
    for (uint64_t i = 0; i < sends; ++i) {
      auto result = module->Call("knic_send", {mmio, 64});
      if (!result.ok()) {
        std::fprintf(stderr, "%s: send failed: %s\n", label,
                     result.status().ToString().c_str());
        return -1.0;
      }
    }
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  }

  void KeepBest(double ns) {
    if (ns > 0 && (best_ns == 0.0 || ns < best_ns)) best_ns = ns;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const uint64_t sends = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 7;

  auto compiled = kop::transform::CompileModuleText(kop::kirmods::KnicSource());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  const auto image = kop::signing::SignModule(
      compiled->text, compiled->attestation,
      kop::signing::SigningKey::DevelopmentKey());

  Variant variants[] = {
      {"pr2-baseline", false, false},
      {"watchdog-only", false, true},
      {"journal-only", true, false},
      {"full-resilience", true, true},
  };
  const uint64_t mmio = kop::kernel::kVmallocBase;
  for (Variant& v : variants) {
    if (!v.Build(image)) return 1;
    (void)v.module->Call("knic_init", {mmio});
    (void)v.module->Call("knic_fill", {64, 0x20});
    (void)v.TimeSends(sends / 4 + 1);  // warmup
  }
  for (int r = 0; r < rounds; ++r) {
    for (Variant& v : variants) v.KeepBest(v.TimeSends(sends));
  }

  // Correctness anchor: every variant transmitted the same frames, and
  // the journaling variants committed one transaction per call with no
  // rollbacks (this is the fault-free path).
  for (const Variant& v : variants) {
    if (v.sink->packets() != variants[0].sink->packets()) {
      std::fprintf(stderr, "%s changed module behaviour!\n", v.label);
      return 1;
    }
    const auto& journal = v.module->journaled_memory().journal();
    if (journal.total_rollbacks() != 0 || journal.active()) {
      std::fprintf(stderr, "%s: unexpected journal state\n", v.label);
      return 1;
    }
  }

  const double base = variants[0].best_ns;
  std::printf("%-18s %12s %12s %18s\n", "variant", "ns_per_send",
              "overhead_pct", "journal_entries");
  std::string csv = "variant,journal,watchdog,ns_per_send,overhead_pct,"
                    "journal_entries_total\n";
  for (Variant& v : variants) {
    const double ns_per_send = v.best_ns / static_cast<double>(sends);
    const double overhead = (v.best_ns - base) / base * 100.0;
    const unsigned long long entries = static_cast<unsigned long long>(
        v.module->journaled_memory().journal().total_entries_recorded());
    std::printf("%-18s %12.1f %+11.2f%% %18llu\n", v.label, ns_per_send,
                overhead, entries);
    char line[160];
    std::snprintf(line, sizeof(line), "%s,%s,%s,%.1f,%.2f,%llu\n", v.label,
                  v.journal ? "on" : "off", v.watchdog ? "on" : "off",
                  ns_per_send, overhead, entries);
    csv += line;
  }
  kop::bench::WriteResultsFile("ext3_resilience.csv", csv);
  return 0;
}
