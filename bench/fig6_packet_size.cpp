// Figure 6: effect on throughput of varying packet size (R350, 2
// regions). For each size the bench reports the average slowdown
// baseline/carat. Expected shape: largely size-independent, with the
// visible slowdown (up to ~1.02x) concentrated on small packets — the
// driver's copybreak/bounce path is the only per-byte CPU work, and its
// cold-path guards cost real cycles on the carat build.
#include <cstdio>

#include "common/experiment.hpp"

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const auto machine = kop::sim::MachineModel::R350();

  PrintFigureHeader("Figure 6",
                    "Effect of packet size on throughput slowdown",
                    machine.name + ", 2 regions, " +
                        std::to_string(args.trials) + " trials x " +
                        std::to_string(args.packets) + " packets");

  const uint32_t sizes[] = {64, 128, 256, 512, 1024, 1500};

  std::string csv = "packet_size,baseline_pps,carat_pps,slowdown\n";
  std::printf("%-12s %-14s %-14s %s\n", "packet_size", "baseline_pps",
              "carat_pps", "slowdown");
  for (uint32_t size : sizes) {
    double means[2] = {0.0, 0.0};
    for (Technique technique : {Technique::kBaseline, Technique::kCarat}) {
      RigConfig config;
      config.machine = machine;
      config.technique = technique;
      config.regions = 2;
      config.seed = 31;  // common random numbers across techniques
      Rig rig(config);
      kop::sim::Accumulator acc;
      for (uint32_t trial = 0; trial < args.trials; ++trial) {
        acc.Add(rig.ThroughputTrial(args.packets, size, trial));
      }
      means[technique == Technique::kCarat ? 1 : 0] = acc.mean();
    }
    const double slowdown = means[0] / means[1];
    std::printf("%-12u %-14.0f %-14.0f %.4f\n", size, means[0], means[1],
                slowdown);
    char line[128];
    std::snprintf(line, sizeof(line), "%u,%.0f,%.0f,%.4f\n", size, means[0],
                  means[1], slowdown);
    csv += line;
  }
  std::printf("\n(paper: slowdown <= ~1.025, concentrated on small packets,"
              " ~1.00 by 1024+)\n");
  WriteResultsFile("fig6_packet_size.csv", csv);
  return 0;
}
