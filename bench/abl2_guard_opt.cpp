// Ablation 2 (paper §3.3): CARAT KOP deliberately ships *without* the
// CARAT CAKE guard optimizations ("every memory access results in a
// guard, even if it would be redundant... the performance impact is
// minor"). Quantify the road not taken: compile the loop-heavy corpus
// module with no optimization / block-local coalescing / dominance-based
// dedup, load each, run the same workload, and compare static guard
// counts, dynamic guard executions and simulated cycles.
#include <cstdio>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/compiler.hpp"

#include "common/experiment.hpp"

namespace {

struct Variant {
  const char* label;
  bool coalesce;
  bool dominate;
};

struct Outcome {
  uint64_t static_guards = 0;
  uint64_t dynamic_guards = 0;
  double cycles = 0.0;
  uint64_t copy_result = 0;
  uint64_t checksum_result = 0;
};

Outcome RunVariant(const Variant& variant, uint64_t iterations) {
  kop::transform::CompileOptions options;
  options.coalesce_guards = variant.coalesce;
  options.dominate_guards = variant.dominate;
  auto compiled = kop::transform::CompileModuleText(
      kop::kirmods::MemcopySource(), options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    std::abort();
  }
  const auto image = kop::signing::SignModule(
      compiled->text, compiled->attestation,
      kop::signing::SigningKey::DevelopmentKey());

  kop::kernel::Kernel kernel;
  kop::signing::Keyring keyring;
  keyring.Trust(kop::signing::SigningKey::DevelopmentKey());
  kop::kernel::ModuleLoader loader(&kernel, keyring);
  auto policy = kop::policy::PolicyModule::Insert(
      &kernel, nullptr, kop::policy::PolicyMode::kDefaultAllow);
  auto loaded = loader.Insmod(image);
  if (!loaded.ok()) {
    std::fprintf(stderr, "insmod: %s\n", loaded.status().ToString().c_str());
    std::abort();
  }

  Outcome outcome;
  outcome.static_guards = compiled->attestation.guard_count;
  const double start = kernel.clock().NowCycles();
  (void)(*loaded)->Call("fill", {iterations, 7});
  auto copied = (*loaded)->Call("copy", {iterations});
  auto checksum = (*loaded)->Call("checksum", {iterations});
  outcome.cycles = kernel.clock().NowCycles() - start;
  outcome.dynamic_guards = (*policy)->engine().stats().guard_calls;
  outcome.copy_result = copied.ok() ? *copied : 0;
  outcome.checksum_result = checksum.ok() ? *checksum : 0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint64_t iterations = std::min<uint64_t>(args.packets, 512);

  PrintFigureHeader(
      "Ablation 2", "Guard optimization: the road CARAT KOP didn't take",
      "kop_memcopy workload, " + std::to_string(iterations) +
          " loop iterations per entry point, R350 model");

  const Variant variants[] = {
      {"kop-unoptimized", false, false},
      {"coalesce", true, false},
      {"dominate", false, true},
      {"coalesce+dominate", true, true},
  };

  std::string csv =
      "variant,static_guards,dynamic_guards,cycles,cycles_vs_unopt\n";
  std::printf("%-19s %13s %14s %12s %s\n", "variant", "static_guards",
              "dynamic_guards", "cycles", "vs_unopt");
  double unopt_cycles = 0.0;
  Outcome reference{};
  for (const Variant& variant : variants) {
    const Outcome outcome = RunVariant(variant, iterations);
    if (unopt_cycles == 0.0) {
      unopt_cycles = outcome.cycles;
      reference = outcome;
    }
    // Semantic preservation across variants.
    if (outcome.copy_result != reference.copy_result ||
        outcome.checksum_result != reference.checksum_result) {
      std::fprintf(stderr, "variant %s changed module behaviour!\n",
                   variant.label);
      return 1;
    }
    const double ratio = outcome.cycles / unopt_cycles;
    std::printf("%-19s %13llu %14llu %12.0f %.4f\n", variant.label,
                static_cast<unsigned long long>(outcome.static_guards),
                static_cast<unsigned long long>(outcome.dynamic_guards),
                outcome.cycles, ratio);
    char line[160];
    std::snprintf(line, sizeof(line), "%s,%llu,%llu,%.0f,%.4f\n",
                  variant.label,
                  static_cast<unsigned long long>(outcome.static_guards),
                  static_cast<unsigned long long>(outcome.dynamic_guards),
                  outcome.cycles, ratio);
    csv += line;
  }
  std::printf("\n(paper's position: unoptimized guards are cheap enough for "
              "kernel modules; the optimizations exist in CARAT CAKE for "
              "application code)\n");
  WriteResultsFile("abl2_guard_opt.csv", csv);
  return 0;
}
