// Extension 7: end-to-end datapath throughput on the multi-queue NIC.
// Each point builds a fresh stack — kernel, e1000 device model, policy
// engine, native Driver<Ops> probed with ProbeMq — and drives a NAPI-
// style transmit loop from N simulated CPUs: every CPU owns the queues
// where queue % cpus == cpu (kop::smp's round-robin affinity), stages
// descriptor batches with XmitBatch (one doorbell per burst), and
// reclaims with NapiPoll, exactly as the datapath tests pin it.
//
// Two techniques per point:
//
//   raw       Driver<RawMemOps> — module memory ops hit simulated
//             memory directly (the unguarded baseline build)
//   guarded   Driver<GuardedMemOps> — every load/store runs the CARAT
//             KOP policy check first
//
// Throughput is packets per second on the virtual clock: the elapsed
// time of an SMP run is MaxCycles() (CPUs advance in parallel), so
// pps = packets / (MaxCycles / freq). Per-point NAPI latency comes from
// the kNapiPoll span histogram (p50/p99 in virtual cycles). Wall-clock
// ns is reported as the noisy host-side sanity number; the virtual
// clock is the contract.
//
// Acceptance (gates checked at the end, per technique):
//   - >= 6x pps going 1 -> 8 CPUs on the 8-queue sweep (>= 4 queues in
//     play; KOP_EXT7_GATE overrides the 6.0 for reduced CI smokes)
//   - guarded/raw elapsed-cycles ratio <= 1.3x at every point
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/net/frame.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/smp/affinity.hpp"
#include "kop/smp/executor.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"

#include "common/experiment.hpp"

namespace {

using WallClock = std::chrono::steady_clock;
using kop::e1000e::BaselineDriver;
using kop::e1000e::CaratDriver;
using kop::e1000e::GuardedMemOps;
using kop::e1000e::RawMemOps;
using kop::e1000e::TxFrame;
using kop::kernel::Kernel;

constexpr uint64_t kMmio = kop::kernel::kVmallocBase;
constexpr uint32_t kRingEntries = 256;
constexpr uint64_t kFlowSeed = 7;

struct Point {
  uint64_t packets = 0;
  double max_cycles = 0;
  double total_cycles = 0;
  double pps = 0;          // packets/sec on the virtual clock
  double napi_p50 = 0;     // kNapiPoll span percentiles, virtual cycles
  double napi_p99 = 0;
  double wall_ns = 0;
};

// One measured point: `cpus` CPUs drive `queues` queues (each CPU owns
// the queues congruent to it mod `cpus`), each queue receiving
// `bursts` bursts of `burst` frames through XmitBatch + NapiPoll.
// Templated over the driver so raw and guarded runs share every byte of
// the workload.
template <typename DriverT, typename OpsFn>
bool MeasurePoint(uint32_t queues, uint32_t cpus, uint64_t bursts,
                  uint32_t burst, int rounds, OpsFn make_ops, Point* out) {
  Point best;
  for (int round = 0; round < rounds; ++round) {
    Kernel kernel;
    kop::nic::CountingSink sink;
    kop::nic::E1000Device device(&kernel.mem(), &sink);
    device.AttachClock(&kernel.clock());
    if (!device.MapAt(kMmio).ok()) return false;
    auto policy = kop::policy::PolicyModule::Insert(
        &kernel, nullptr, kop::policy::PolicyMode::kDefaultAllow);
    if (!policy.ok()) return false;
    auto driver = DriverT::ProbeMq(make_ops(&kernel, &(*policy)->engine()),
                                   kMmio, kRingEntries, queues);
    if (!driver.ok()) {
      std::fprintf(stderr, "probe failed: %s\n",
                   driver.status().ToString().c_str());
      return false;
    }

    // Per-queue staging frames from the seeded flow population (stable
    // sizes spanning the copybreak boundary; XmitBatch needs >= 60B).
    const kop::net::FlowSet flows(queues, kFlowSeed);
    std::vector<uint64_t> staging(queues);
    std::vector<uint32_t> staged_len(queues);
    for (uint32_t q = 0; q < queues; ++q) {
      auto addr = kernel.heap().Kmalloc(2048, 64);
      if (!addr.ok()) return false;
      staging[q] = *addr;
      auto wire = flows.MakeWire(q, 0);
      wire.resize(std::max<size_t>(wire.size(), kop::e1000e::kEthZlen), 0);
      staged_len[q] = static_cast<uint32_t>(wire.size());
      if (!kernel.mem().Write(staging[q], wire.data(), wire.size()).ok()) {
        return false;
      }
    }

    kop::trace::GlobalTracer().ring().SetShards(cpus);
    kop::trace::GlobalSpans().Reset();

    auto& clock = kernel.clock();
    const double max_before = clock.MaxCycles();
    const double total_before = clock.TotalCycles();
    const auto wall_begin = WallClock::now();

    std::vector<uint64_t> sent_per_cpu(cpus, 0);
    bool failed = false;
    kop::smp::RunOnCpus(cpus, [&](uint32_t cpu) {
      for (uint64_t i = 0; i < bursts; ++i) {
        for (uint32_t q = cpu; q < queues; q += cpus) {
          std::vector<TxFrame> frames(burst,
                                      TxFrame{staging[q], staged_len[q]});
          uint32_t queued = 0;
          auto status =
              (*driver).XmitBatch(q, frames.data(), burst, &queued);
          if (!status.ok() || queued != burst) {
            failed = true;
            return;
          }
          sent_per_cpu[cpu] += queued;
          auto work = (*driver).NapiPoll(q, 32, nullptr);
          if (!work.ok()) {
            failed = true;
            return;
          }
        }
      }
      // Drain the owned queues until reclaim reports no work.
      for (uint32_t q = cpu; q < queues; q += cpus) {
        for (int spins = 0; spins < 8; ++spins) {
          auto work = (*driver).NapiPoll(q, 64, nullptr);
          if (!work.ok() || *work == 0) break;
        }
      }
    });
    if (failed) return false;

    Point m;
    m.wall_ns = std::chrono::duration<double, std::nano>(WallClock::now() -
                                                         wall_begin)
                    .count();
    m.max_cycles = clock.MaxCycles() - max_before;
    m.total_cycles = clock.TotalCycles() - total_before;
    for (uint32_t cpu = 0; cpu < cpus; ++cpu) m.packets += sent_per_cpu[cpu];
    if (m.packets != uint64_t{queues} * bursts * burst) {
      std::fprintf(stderr, "short run: %llu packets\n",
                   (unsigned long long)m.packets);
      return false;
    }
    const double freq = kernel.machine().freq_hz;
    m.pps = m.packets / (m.max_cycles / freq);
    const auto napi =
        kop::trace::GlobalSpans().Stats(kop::trace::SpanKind::kNapiPoll);
    m.napi_p50 = napi.p50;
    m.napi_p99 = napi.p99;
    if (sink.packets() != m.packets) return false;

    // The virtual clock is deterministic; rounds only tighten wall_ns.
    if (best.packets == 0 || m.wall_ns < best.wall_ns) best = m;
  }
  *out = best;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t bursts = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  uint32_t burst = argc > 2 ? (uint32_t)std::strtoul(argv[2], nullptr, 10) : 16;
  int rounds = argc > 3 ? std::atoi(argv[3]) : 2;

  // KOP_EXT7_GATE overrides the 8-CPU speedup floor (CI smokes run far
  // fewer bursts, where fixed probe cost eats into scaling).
  double min_speedup = 6.0;
  if (const char* gate = std::getenv("KOP_EXT7_GATE")) {
    min_speedup = std::atof(gate);
  }

  const uint32_t queue_points[] = {1, 4, 8};
  const uint32_t cpu_points[] = {1, 2, 4, 8};

  std::printf(
      "ext7_datapath: multi-queue NAPI datapath, %llu bursts x %u frames "
      "per queue, %d round(s)\n",
      (unsigned long long)bursts, burst, rounds);
  std::printf("%-8s %3s %5s %9s %14s %12s %9s %9s %9s\n", "tech", "q", "cpus",
              "packets", "max_cycles", "pps_virtual", "speedup", "napi_p50",
              "napi_p99");

  std::string csv =
      "technique,queues,cpus,packets,max_cycles,total_cycles,pps_virtual,"
      "speedup_vs_1cpu,napi_p50_cycles,napi_p99_cycles,wall_ns\n";

  bool failed = false;
  double speedup_8cpu[2] = {0, 0};  // [raw, guarded] on the 8-queue sweep
  double worst_overhead = 0;        // max guarded/raw elapsed-cycle ratio

  for (uint32_t queues : queue_points) {
    double base_pps[2] = {0, 0};
    for (uint32_t cpus : cpu_points) {
      // A CPU with no queue to own would idle; sharing a queue across
      // CPUs is not part of the datapath contract (one poller per queue).
      if (cpus > queues) continue;
      Point pts[2];
      const char* names[2] = {"raw", "guarded"};
      if (!MeasurePoint<BaselineDriver>(
              queues, cpus, bursts, burst, rounds,
              [](Kernel* k, kop::policy::PolicyEngine*) {
                return RawMemOps(k);
              },
              &pts[0])) {
        return 1;
      }
      if (!MeasurePoint<CaratDriver>(
              queues, cpus, bursts, burst, rounds,
              [](Kernel* k, kop::policy::PolicyEngine* e) {
                return GuardedMemOps(k, e);
              },
              &pts[1])) {
        return 1;
      }
      const double overhead = pts[0].max_cycles > 0
                                  ? pts[1].max_cycles / pts[0].max_cycles
                                  : 0;
      if (overhead > worst_overhead) worst_overhead = overhead;
      for (int t = 0; t < 2; ++t) {
        const Point& m = pts[t];
        if (cpus == 1) base_pps[t] = m.pps;
        const double speedup = base_pps[t] > 0 ? m.pps / base_pps[t] : 0;
        if (queues == 8 && cpus == 8) speedup_8cpu[t] = speedup;
        char line[256];
        std::snprintf(line, sizeof(line),
                      "%s,%u,%u,%llu,%.1f,%.1f,%.0f,%.3f,%.1f,%.1f,%.0f\n",
                      names[t], queues, cpus, (unsigned long long)m.packets,
                      m.max_cycles, m.total_cycles, m.pps, speedup,
                      m.napi_p50, m.napi_p99, m.wall_ns);
        csv += line;
        std::printf("%-8s %3u %5u %9llu %14.1f %12.3e %8.2fx %9.1f %9.1f\n",
                    names[t], queues, cpus, (unsigned long long)m.packets,
                    m.max_cycles, m.pps, speedup, m.napi_p50, m.napi_p99);
      }
    }
  }

  std::printf(
      "guarded 8-queue 8-CPU speedup %.2fx (need >= %.2fx), raw %.2fx; "
      "worst guarded/raw elapsed ratio %.3fx (need <= 1.3x)\n",
      speedup_8cpu[1], min_speedup, speedup_8cpu[0], worst_overhead);
  if (speedup_8cpu[1] < min_speedup) failed = true;
  if (worst_overhead > 1.3) failed = true;

  kop::bench::WriteResultsFile("ext7_datapath.csv", csv);
  return failed ? 1 : 0;
}
