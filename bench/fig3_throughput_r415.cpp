// Figure 3: CARAT KOP effect on packet launch throughput on the slow
// R415 machine. Two regions, 128 B packets. Expected shape: the carat
// CDF sits ~1000 pps (<0.8%) left of baseline at the median.
#include "common/figures.hpp"

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::string table = RunThroughputCdfFigure(
      "Figure 3", kop::sim::MachineModel::R415(), args);
  WriteResultsFile("fig3_throughput_r415.csv", table);
  return 0;
}
