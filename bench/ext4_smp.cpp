// Extension 4: SMP guarded-execution scaling. N simulated CPUs issue
// LoadedModule::Call concurrently into per-CPU execution contexts; every
// load/store inside the module runs through the lock-free policy read
// path. This bench sweeps CPUs 1 -> 8 on both engines against two policy
// shapes:
//
//   partitioned   eight regions, one per CPU stripe; each CPU's guards
//                 match its own region (the per-CPU table layout)
//   contended     one shared region; every CPU's guards resolve against
//                 the SAME table entry and the same published frame
//
// Throughput is guards per kilocycle on the virtual clock: elapsed time
// of an SMP run is MaxCycles() (CPUs advance in parallel, the run is as
// long as its busiest CPU), so near-linear scaling here proves the read
// path adds no serialization — there is no lock for the contended shape
// to queue on. Wall-clock guards/sec is reported alongside as the
// host-thread sanity number (noisy; the virtual clock is the contract).
//
// The baseline-direct rows price the SMP seam when unused: the same
// 1-CPU workload through the plain (pre-SMP) Call path. Acceptance:
// >= 4x guard throughput at 8 CPUs vs 1 on the partitioned shape, and
// <= 2% regression of the 1-CPU SMP dispatch vs baseline-direct.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/smp/executor.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"

#include "common/experiment.hpp"

namespace {

using WallClock = std::chrono::steady_clock;
using kop::kernel::ExecEngine;
using kop::kernel::Kernel;
using kop::kernel::LoadedModule;
using kop::kernel::ModuleLoader;

constexpr uint32_t kMaxCpus = 8;
constexpr uint64_t kStripeBytes = 512;

// Guard-dense kernel: each iteration is one guarded load plus one
// guarded store against the caller-supplied address.
const char* kBenchSource = R"(module "ext4_smp"

func @bump(ptr %addr, i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %v = load i64, %addr
  %v1 = add i64 %v, 1
  store i64 %v1, %addr
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret i64 %i
}
)";

struct Shape {
  const char* label;
  bool partitioned;
};

struct Measurement {
  uint64_t guards = 0;
  double max_cycles = 0;
  double total_cycles = 0;
  double wall_ns = 0;

  double GuardsPerKcycle() const {
    return max_cycles > 0 ? guards / max_cycles * 1000.0 : 0.0;
  }
};

// One kernel + policy + loader + module, with per-CPU target stripes
// carved out of the kernel heap.
struct Rig {
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<kop::policy::PolicyModule> policy;
  std::unique_ptr<ModuleLoader> loader;
  LoadedModule* module = nullptr;
  uint64_t stripes[kMaxCpus] = {};

  bool Build(ExecEngine engine, const Shape& shape, uint32_t cpus,
             const kop::signing::SignedModule& image) {
    kernel = std::make_unique<Kernel>();
    auto inserted = kop::policy::PolicyModule::Insert(
        kernel.get(), nullptr, kop::policy::PolicyMode::kDefaultAllow);
    if (!inserted.ok()) return false;
    policy = std::move(*inserted);
    // The table shape is fixed across CPU counts so only concurrency
    // varies between sweep points.
    if (shape.partitioned) {
      for (uint32_t cpu = 0; cpu < kMaxCpus; ++cpu) {
        auto addr = kernel->heap().Kmalloc(kStripeBytes, 64);
        if (!addr.ok()) return false;
        stripes[cpu] = *addr;
        if (!policy->engine()
                 .store()
                 .Add({*addr, kStripeBytes, kop::policy::kProtRW})
                 .ok()) {
          return false;
        }
      }
    } else {
      auto block = kernel->heap().Kmalloc(kStripeBytes * kMaxCpus, 64);
      if (!block.ok()) return false;
      for (uint32_t cpu = 0; cpu < kMaxCpus; ++cpu) {
        stripes[cpu] = *block + cpu * kStripeBytes;
      }
      if (!policy->engine()
               .store()
               .Add({*block, kStripeBytes * kMaxCpus, kop::policy::kProtRW})
               .ok()) {
        return false;
      }
    }
    kop::signing::Keyring keyring;
    keyring.Trust(kop::signing::SigningKey::DevelopmentKey());
    loader = std::make_unique<ModuleLoader>(kernel.get(), std::move(keyring));
    loader->set_engine(engine);
    auto loaded = loader->Insmod(image);
    if (!loaded.ok()) {
      std::fprintf(stderr, "insmod failed: %s\n",
                   loaded.status().ToString().c_str());
      return false;
    }
    module = *loaded;
    if (cpus > 1 && !loader->PrepareCpus(cpus).ok()) return false;
    kop::trace::GlobalTracer().ring().SetShards(cpus);
    return true;
  }
};

bool RunCalls(LoadedModule* module, uint64_t stripe, uint64_t calls,
              uint64_t iters) {
  for (uint64_t c = 0; c < calls; ++c) {
    auto result = module->Call("bump", {stripe, iters});
    if (!result.ok()) {
      std::fprintf(stderr, "bump failed: %s\n",
                   result.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

Measurement MeasureSmp(Rig& rig, uint32_t cpus, uint64_t calls,
                       uint64_t iters) {
  auto& engine = rig.policy->engine();
  auto& clock = rig.kernel->clock();
  const uint64_t guards_before = engine.stats().guard_calls;
  const double max_before = clock.MaxCycles();
  const double total_before = clock.TotalCycles();
  const auto start = WallClock::now();
  std::vector<bool> ok(cpus, false);
  kop::smp::RunOnCpus(cpus, [&](uint32_t cpu) {
    ok[cpu] = RunCalls(rig.module, rig.stripes[cpu], calls, iters);
  });
  Measurement m;
  m.wall_ns =
      std::chrono::duration<double, std::nano>(WallClock::now() - start)
          .count();
  for (uint32_t cpu = 0; cpu < cpus; ++cpu) {
    if (!ok[cpu]) return m;  // guards = 0 marks the failure
  }
  m.guards = engine.stats().guard_calls - guards_before;
  m.max_cycles = clock.MaxCycles() - max_before;
  m.total_cycles = clock.TotalCycles() - total_before;
  return m;
}

Measurement MeasureDirect(Rig& rig, uint64_t calls, uint64_t iters) {
  auto& engine = rig.policy->engine();
  auto& clock = rig.kernel->clock();
  const uint64_t guards_before = engine.stats().guard_calls;
  const double max_before = clock.MaxCycles();
  const auto start = WallClock::now();
  const bool ok = RunCalls(rig.module, rig.stripes[0], calls, iters);
  Measurement m;
  m.wall_ns =
      std::chrono::duration<double, std::nano>(WallClock::now() - start)
          .count();
  if (!ok) return m;
  m.guards = engine.stats().guard_calls - guards_before;
  m.max_cycles = clock.MaxCycles() - max_before;
  m.total_cycles = m.max_cycles;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t calls = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const uint64_t iters = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  const int rounds = argc > 3 ? std::atoi(argv[3]) : 3;

  auto compiled = kop::transform::CompileModuleText(kBenchSource);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  const auto image = kop::signing::SignModule(
      compiled->text, compiled->attestation,
      kop::signing::SigningKey::DevelopmentKey());

  const ExecEngine engines[] = {ExecEngine::kBytecode, ExecEngine::kInterp};
  const Shape shapes[] = {{"partitioned", true}, {"contended", false}};
  const uint32_t cpu_points[] = {1, 2, 4, 8};

  std::printf("%-9s %-12s %4s %12s %14s %16s %12s\n", "engine", "shape",
              "cpus", "guards", "max_kcycles", "guards_per_kcyc", "speedup");
  std::string csv =
      "engine,shape,cpus,guards,max_cycles,total_cycles,guards_per_kcycle,"
      "speedup_vs_1cpu,wall_ns\n";
  bool failed = false;
  double partitioned_8cpu_speedup[2] = {0, 0};
  double onecpu_overhead_pct[2] = {0, 0};

  for (int e = 0; e < 2; ++e) {
    const ExecEngine engine = engines[e];
    const std::string engine_str(kop::kernel::ExecEngineName(engine));
    const char* engine_name = engine_str.c_str();

    // Baseline-direct: the pre-SMP single-threaded Call path, same
    // workload as the 1-CPU SMP point. Wall time keeps the round
    // minimum; virtual cycles are deterministic so one round would do.
    Measurement direct;
    for (const Shape& shape : shapes) {
      Rig rig;
      if (!rig.Build(engine, shape, 1, image)) return 1;
      (void)RunCalls(rig.module, rig.stripes[0], calls / 4 + 1, iters);
      for (int r = 0; r < rounds; ++r) {
        Measurement m = MeasureDirect(rig, calls, iters);
        if (m.guards == 0) return 1;
        if (direct.guards == 0 || m.wall_ns < direct.wall_ns) {
          if (shape.partitioned) direct = m;
        }
      }
      if (!shape.partitioned) continue;
      char line[256];
      std::snprintf(line, sizeof(line),
                    "%s,baseline-direct,1,%llu,%.1f,%.1f,%.3f,1.000,%.0f\n",
                    engine_name, (unsigned long long)direct.guards,
                    direct.max_cycles, direct.total_cycles,
                    direct.GuardsPerKcycle(), direct.wall_ns);
      csv += line;
      std::printf("%-9s %-12s %4d %12llu %14.1f %16.3f %12s\n", engine_name,
                  "direct", 1, (unsigned long long)direct.guards,
                  direct.max_cycles / 1000.0, direct.GuardsPerKcycle(), "-");
    }

    for (const Shape& shape : shapes) {
      double base_throughput = 0;
      for (uint32_t cpus : cpu_points) {
        Rig rig;
        if (!rig.Build(engine, shape, cpus, image)) return 1;
        // Warmup primes every CPU's context and publishes the frame.
        kop::smp::RunOnCpus(cpus, [&](uint32_t cpu) {
          (void)RunCalls(rig.module, rig.stripes[cpu], calls / 4 + 1, iters);
        });
        Measurement best;
        for (int r = 0; r < rounds; ++r) {
          Measurement m = MeasureSmp(rig, cpus, calls, iters);
          if (m.guards == 0) return 1;
          if (best.guards == 0 || m.wall_ns < best.wall_ns) best = m;
        }
        const double throughput = best.GuardsPerKcycle();
        if (cpus == 1) base_throughput = throughput;
        const double speedup =
            base_throughput > 0 ? throughput / base_throughput : 0.0;
        if (shape.partitioned && cpus == 8) {
          partitioned_8cpu_speedup[e] = speedup;
        }
        if (shape.partitioned && cpus == 1 && direct.max_cycles > 0) {
          onecpu_overhead_pct[e] =
              (direct.GuardsPerKcycle() - throughput) /
              direct.GuardsPerKcycle() * 100.0;
        }
        char line[256];
        std::snprintf(line, sizeof(line),
                      "%s,%s,%u,%llu,%.1f,%.1f,%.3f,%.3f,%.0f\n", engine_name,
                      shape.label, cpus, (unsigned long long)best.guards,
                      best.max_cycles, best.total_cycles, throughput, speedup,
                      best.wall_ns);
        csv += line;
        std::printf("%-9s %-12s %4u %12llu %14.1f %16.3f %11.2fx\n",
                    engine_name, shape.label, cpus,
                    (unsigned long long)best.guards, best.max_cycles / 1000.0,
                    throughput, speedup);
      }
    }
  }

  for (int e = 0; e < 2; ++e) {
    std::printf(
        "%s: partitioned 8-CPU speedup %.2fx (need >= 4x), 1-CPU SMP "
        "dispatch overhead %+.2f%% of direct (need <= 2%%)\n",
        std::string(kop::kernel::ExecEngineName(engines[e])).c_str(),
        partitioned_8cpu_speedup[e],
        onecpu_overhead_pct[e]);
    if (partitioned_8cpu_speedup[e] < 4.0) failed = true;
    if (onecpu_overhead_pct[e] > 2.0) failed = true;
  }

  kop::bench::WriteResultsFile("ext4_smp.csv", csv);
  return failed ? 1 : 0;
}
