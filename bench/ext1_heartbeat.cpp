// Extension 1: the paper's *motivating* workload (§1) — "fast timer
// delivery for heartbeat scheduling" as a kernel module — measured under
// CARAT KOP. The heartbeat ISR is the latency-critical path: this bench
// reports per-beat ISR cost (simulated cycles) for the baseline and
// carat builds across policy sizes and both machine models, i.e. "what
// does protecting our own HPC module cost?".
#include <cstdio>

#include "kop/hpet/heartbeat.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/policy/policy_module.hpp"

#include "common/experiment.hpp"

namespace {

using namespace kop;

constexpr uint64_t kMmio = kernel::kVmallocBase + 0x100000;

struct Row {
  double baseline_cycles = 0;
  double carat_cycles = 0;
};

double MeasureIsr(kernel::Kernel& kernel, hpet::TimerDevice& timer,
                  uint64_t beats) {
  const double start = kernel.clock().NowCycles();
  timer.Tick(beats * 1000);
  return (kernel.clock().NowCycles() - start) / static_cast<double>(beats);
}

Row RunMachine(const sim::MachineModel& machine, uint32_t regions,
               uint64_t beats) {
  Row row;
  for (bool guarded : {false, true}) {
    kernel::KernelConfig config;
    config.ram_bytes = 4ull << 20;
    config.kernel_text_bytes = 1ull << 20;
    config.module_area_bytes = 4ull << 20;
    config.user_bytes = 1ull << 20;
    config.machine = machine;
    kernel::Kernel kernel(config);
    hpet::TimerDevice timer;
    if (!timer.MapAt(&kernel.mem(), kMmio).ok()) std::abort();
    auto policy = policy::PolicyModule::Insert(
        &kernel, nullptr,
        regions == 0 ? policy::PolicyMode::kDefaultAllow
                     : policy::PolicyMode::kDefaultDeny);
    if (!policy.ok()) std::abort();
    auto& store = (*policy)->engine().store();
    if (regions >= 1) {
      (void)store.Add(policy::Region{kernel::kKernelHalfBase,
                                     ~uint64_t{0} - kernel::kKernelHalfBase,
                                     policy::kProtRW});
    }
    for (uint32_t i = 1; i < regions; ++i) {
      (void)store.Add(policy::Region{0x1000 + (uint64_t{i} << 20), 0x100,
                                     policy::kProtRead});
    }
    if (guarded) {
      auto module = hpet::CaratHeartbeat::Probe(
          modrt::GuardedMemOps(&kernel, &(*policy)->engine()), kMmio, 1000);
      if (!module.ok()) std::abort();
      timer.SetIsr([&] { (void)module->Isr(); });
      row.carat_cycles = MeasureIsr(kernel, timer, beats);
    } else {
      auto module = hpet::BaselineHeartbeat::Probe(
          modrt::RawMemOps(&kernel), kMmio, 1000);
      if (!module.ok()) std::abort();
      timer.SetIsr([&] { (void)module->Isr(); });
      row.baseline_cycles = MeasureIsr(kernel, timer, beats);
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint64_t beats = std::max<uint64_t>(args.packets / 4, 1000);

  PrintFigureHeader("Extension 1",
                    "Heartbeat-scheduling module (the paper's §1 use case) "
                    "under CARAT KOP",
                    "per-beat ISR cost over " + std::to_string(beats) +
                        " beats; periodic HPET timer, period 1000 ticks");

  std::string csv =
      "machine,regions,baseline_cycles,carat_cycles,overhead_cycles,"
      "overhead_pct\n";
  std::printf("%-10s %8s %16s %13s %10s %9s\n", "machine", "regions",
              "baseline_cyc/beat", "carat_cyc/beat", "overhead", "pct");
  for (const auto& machine :
       {kop::sim::MachineModel::R350(), kop::sim::MachineModel::R415()}) {
    for (uint32_t regions : {2u, 16u, 64u}) {
      const Row row = RunMachine(machine, regions, beats);
      const double overhead = row.carat_cycles - row.baseline_cycles;
      const double pct = overhead / row.baseline_cycles * 100.0;
      const char* name = machine.freq_hz > 2.5e9 ? "R350" : "R415";
      std::printf("%-10s %8u %16.1f %13.1f %10.1f %8.2f%%\n", name, regions,
                  row.baseline_cycles, row.carat_cycles, overhead, pct);
      char line[160];
      std::snprintf(line, sizeof(line), "%s,%u,%.1f,%.1f,%.1f,%.2f\n", name,
                    regions, row.baseline_cycles, row.carat_cycles, overhead,
                    pct);
      csv += line;
    }
  }
  std::printf(
      "\n(new finding, consistent with the paper's model: on the packet "
      "path guards hide behind a ~25k-cycle syscall, but a lean ~190-"
      "cycle ISR has nowhere to amortize them — the same ~9 guards cost "
      "2-11%% on the modern machine and up to ~70%% on the old one. "
      "Guarding ISR-style modules wants the paper's §3.1 lookup "
      "optimizations much sooner than the e1000e numbers suggest)\n");
  WriteResultsFile("ext1_heartbeat.csv", csv);
  return 0;
}
