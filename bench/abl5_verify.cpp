// Ablation 5: what does load-time *static* verification cost relative to
// attestation-only validation? KOP_VERIFY=both runs the full dataflow
// analyses (guard coverage, provenance, privileged lint) at every insmod;
// the paper's design point trusts the signed attestation instead. Time
// both paths over the corpus plus synthetic modules of growing size, so
// the CSV shows how verification scales with instruction count.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "kop/analysis/static_verifier.hpp"
#include "kop/kir/parser.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/signing/signer.hpp"
#include "kop/signing/validator.hpp"
#include "kop/transform/compiler.hpp"

#include "common/experiment.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double MicrosPerRun(const std::function<void()>& body, uint32_t runs) {
  // One warm-up, then the timed runs.
  body();
  const auto start = Clock::now();
  for (uint32_t i = 0; i < runs; ++i) body();
  const std::chrono::duration<double, std::micro> elapsed =
      Clock::now() - start;
  return elapsed.count() / runs;
}

struct Row {
  std::string name;
  size_t insts = 0;
  size_t accesses = 0;
  double attest_us = 0.0;
  double static_us = 0.0;
};

Row Measure(const std::string& name, const std::string& source,
            uint32_t runs) {
  auto compiled = kop::transform::CompileModuleText(source);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile %s: %s\n", name.c_str(),
                 compiled.status().ToString().c_str());
    std::abort();
  }
  const auto image = kop::signing::SignModule(
      compiled->text, compiled->attestation,
      kop::signing::SigningKey::DevelopmentKey());
  kop::signing::Keyring keyring;
  keyring.Trust(kop::signing::SigningKey::DevelopmentKey());

  Row row;
  row.name = name;
  row.insts = compiled->module->InstructionCount();
  row.accesses = compiled->module->MemoryAccessCount();

  // Attestation-only path: the full insmod-time validator (signature,
  // attestation cross-checks, parse + verify).
  row.attest_us = MicrosPerRun(
      [&] {
        auto validated = kop::signing::ValidateSignedModule(image, keyring);
        if (!validated.ok()) std::abort();
      },
      runs);

  // Static path: parse once per run (apples to apples with the validator,
  // which also parses) plus the full analysis suite.
  row.static_us = MicrosPerRun(
      [&] {
        auto module = kop::kir::ParseModule(image.module_text);
        if (!module.ok()) std::abort();
        const auto report = kop::analysis::AnalyzeModule(**module);
        if (!report.ok()) std::abort();
      },
      runs);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint32_t runs =
      static_cast<uint32_t>(std::min<uint64_t>(args.trials * 4, 256));

  PrintFigureHeader("Ablation 5",
                    "Static verification cost vs attestation-only",
                    std::to_string(runs) + " timed runs per module");

  std::vector<std::pair<std::string, std::string>> modules;
  for (const kop::kirmods::CorpusEntry& entry :
       kop::kirmods::AllCorpusModules()) {
    modules.emplace_back(entry.name, entry.source);
  }
  for (const uint32_t functions : {4u, 16u, 64u}) {
    const std::string name = "synthetic_f" + std::to_string(functions);
    modules.emplace_back(
        name, kop::kirmods::SyntheticModuleSource(functions, 8));
  }

  std::string csv = "module,insts,accesses,attest_us,static_us,ratio\n";
  std::printf("%-16s %7s %9s %11s %11s %7s\n", "module", "insts", "accesses",
              "attest_us", "static_us", "ratio");
  for (const auto& [name, source] : modules) {
    const Row row = Measure(name, source, runs);
    const double ratio =
        row.attest_us > 0.0 ? row.static_us / row.attest_us : 0.0;
    std::printf("%-16s %7zu %9zu %11.1f %11.1f %7.3f\n", row.name.c_str(),
                row.insts, row.accesses, row.attest_us, row.static_us, ratio);
    char line[160];
    std::snprintf(line, sizeof(line), "%s,%zu,%zu,%.1f,%.1f,%.3f\n",
                  row.name.c_str(), row.insts, row.accesses, row.attest_us,
                  row.static_us, ratio);
    csv += line;
  }
  std::printf("\n(static verification replaces trust in the compiler's "
              "attestation with a proof over the IR the kernel actually "
              "received)\n");
  WriteResultsFile("abl5_verify.csv", csv);
  return 0;
}
