// Ablation 3 (paper §5, future work — implemented): the two extensions
// the paper sketches.
//   (a) Privileged-intrinsic guarding: wrap cli/wrmsr/hlt/... calls with
//       carat_intrinsic_guard and enforce an intrinsic permission table.
//   (b) Kernel-object protection beyond "memory in general": guard the
//       memory regions holding file-system metadata (inode table) and
//       IPC structures (message-queue headers) so unauthorized file/IPC
//       operations surface as guard violations.
#include <cstdio>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/transform/privileged.hpp"

#include "common/experiment.hpp"

namespace {

using kop::transform::PrivilegedIntrinsic;

struct IntrinsicCase {
  const char* entry_point;
  std::vector<uint64_t> args;
  /// Every intrinsic the entry point executes (all must be permitted for
  /// the call to complete).
  std::vector<PrivilegedIntrinsic> intrinsics;
};

}  // namespace

int main() {
  using namespace kop::bench;
  PrintFigureHeader("Ablation 3", "§5 extensions: privileged intrinsics "
                    "and kernel-object (file/IPC) protection",
                    "kop_privuser + kop_scribbler modules, R350 model");

  std::string csv = "experiment,case,outcome\n";

  // ---- (a) privileged intrinsics --------------------------------------
  std::printf("(a) privileged-intrinsic guarding\n");
  std::printf("%-24s %-10s %s\n", "entry_point", "intrinsic", "outcome");
  {
    kop::transform::CompileOptions options;
    options.wrap_privileged_intrinsics = true;
    auto compiled = kop::transform::CompileModuleText(
        kop::kirmods::PrivuserSource(), options);
    if (!compiled.ok()) return 1;
    const auto image = kop::signing::SignModule(
        compiled->text, compiled->attestation,
        kop::signing::SigningKey::DevelopmentKey());

    const IntrinsicCase cases[] = {
        {"write_msr", {0x1b, 0xfee00000}, {PrivilegedIntrinsic::kWrmsr}},
        {"disable_interrupts",
         {},
         {PrivilegedIntrinsic::kCli, PrivilegedIntrinsic::kSti}},
        {"halt", {}, {PrivilegedIntrinsic::kHlt}},
    };
    for (bool allowed : {true, false}) {
      for (const IntrinsicCase& c : cases) {
        kop::kernel::Kernel kernel;
        kop::signing::Keyring keyring;
        keyring.Trust(kop::signing::SigningKey::DevelopmentKey());
        kop::kernel::ModuleLoader loader(&kernel, keyring);
        auto policy = kop::policy::PolicyModule::Insert(
            &kernel, nullptr, kop::policy::PolicyMode::kDefaultAllow);
        if (allowed) {
          for (PrivilegedIntrinsic intrinsic : c.intrinsics) {
            (*policy)->engine().AllowIntrinsic(
                static_cast<uint64_t>(intrinsic));
          }
        }
        auto loaded = loader.Insmod(image);
        if (!loaded.ok()) return 1;
        const char* outcome;
        try {
          auto result = (*loaded)->Call(c.entry_point, c.args);
          outcome = result.ok() ? "executed" : "error";
        } catch (const kop::kernel::KernelPanic&) {
          outcome = "BLOCKED (panic)";
        }
        std::printf(
            "%-24s %-10s %s -> %s\n", c.entry_point,
            std::string(PrivilegedIntrinsicName(c.intrinsics[0])).c_str(),
            allowed ? "allowed" : "denied ", outcome);
        csv += std::string("intrinsic,") + c.entry_point + "/" +
               (allowed ? "allowed" : "denied") + "," + outcome + "\n";
      }
    }
  }

  // ---- (b) file/IPC kernel-object protection --------------------------
  std::printf("\n(b) kernel-object protection: inode table & IPC queues\n");
  {
    kop::kernel::Kernel kernel;
    kop::signing::Keyring keyring;
    keyring.Trust(kop::signing::SigningKey::DevelopmentKey());
    kop::kernel::ModuleLoader loader(&kernel, keyring);
    auto policy = kop::policy::PolicyModule::Insert(
        &kernel, nullptr, kop::policy::PolicyMode::kDefaultAllow);

    // Carve out simulated kernel objects in the direct map.
    auto inode_table = kernel.heap().Kmalloc(4096, 64);
    auto msg_queue = kernel.heap().Kmalloc(1024, 64);
    auto scratch = kernel.heap().Kmalloc(256, 64);
    if (!inode_table.ok() || !msg_queue.ok() || !scratch.ok()) return 1;

    // Policy: inode table read-only to modules, IPC queue untouchable.
    (void)(*policy)->engine().store().Add(
        kop::policy::Region{*inode_table, 4096, kop::policy::kProtRead});
    (void)(*policy)->engine().store().Add(
        kop::policy::Region{*msg_queue, 1024, kop::policy::kProtNone});

    auto compiled = kop::transform::CompileModuleText(
        kop::kirmods::ScribblerSource());
    if (!compiled.ok()) return 1;
    auto loaded = loader.Insmod(kop::signing::SignModule(
        compiled->text, compiled->attestation,
        kop::signing::SigningKey::DevelopmentKey()));
    if (!loaded.ok()) return 1;

    struct ObjectCase {
      const char* label;
      const char* entry_point;
      std::vector<uint64_t> args;
      const char* expected;
    };
    const ObjectCase cases[] = {
        {"scratch write", "scribble", {*scratch, 1}, "allowed"},
        {"inode read", "peek", {*inode_table}, "allowed"},
        {"inode overwrite", "scribble", {*inode_table, 0xbad}, "blocked"},
        {"ipc queue read", "peek", {*msg_queue}, "blocked"},
        {"ipc queue write", "scribble", {*msg_queue, 0xbad}, "blocked"},
    };
    std::printf("%-16s %-10s %s\n", "case", "expected", "outcome");
    for (const ObjectCase& c : cases) {
      const char* outcome;
      try {
        auto result = (*loaded)->Call(c.entry_point, c.args);
        outcome = result.ok() ? "allowed" : "error";
      } catch (const kop::kernel::KernelPanic&) {
        outcome = "blocked";
        kernel.ClearPanic();
      }
      std::printf("%-16s %-10s %s%s\n", c.label, c.expected, outcome,
                  std::string(outcome) == c.expected ? "" : "  <-- MISMATCH");
      csv += std::string("kernel-object,") + c.label + "," + outcome + "\n";
    }
    std::printf("\ndmesg tail:\n");
    auto records = kernel.log().Dmesg();
    for (size_t i = records.size() >= 3 ? records.size() - 3 : 0;
         i < records.size(); ++i) {
      std::printf("  %s\n", records[i].text.c_str());
    }
  }

  WriteResultsFile("abl3_extensions.csv", csv);
  return 0;
}
