// Extension 5: what the flight recorder costs. Every module call now
// runs under KOP_SPAN scopes (call -> dispatch -> guard -> commit) that
// feed per-CPU span rings and latency histograms, and every guard
// decision stamps the always-on flight recorder. This bench prices that
// on the guarded knic xmit hot path at 1 and 8 CPUs, on both engines:
//
//   spans-off   trace::GlobalSpans().SetEnabled(false) — each KOP_SPAN
//               site costs one relaxed load and a branch
//   spans-on    the shipped default: rings + histograms recording
//
// Cost has two currencies. The virtual clock is the contract: span
// instrumentation never charges simulated cycles (it observes the clock,
// it does not advance it), so cycles/send must be IDENTICAL between the
// legs — the acceptance gate is <= 2% and the expected delta is exactly
// 0 on both engines at both CPU counts. Host wall-ns/send is reported
// alongside as the noisy sanity sidecar for the real recording cost.
// When the build sets -DKOP_SPANS_ENABLED=OFF both legs compile to the
// same object code and the delta is 0% by construction.
//
// The second half exercises the payoff: a fixed-seed forced-violation
// trial (fault::RunPostmortemDemo) must yield a postmortem bundle that
// is schema-valid, names the triggering guard site, carries per-CPU
// flight-recorder tails, and is byte-identical across engines once the
// engine name — the one sanctioned difference — is normalized.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "kop/fault/campaign.hpp"
#include "kop/flight/postmortem.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/nic/packet_sink.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/smp/executor.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"

#include "common/experiment.hpp"

namespace {

using WallClock = std::chrono::steady_clock;
using kop::kernel::ExecEngine;
using kop::kernel::Kernel;
using kop::kernel::LoadedModule;
using kop::kernel::ModuleLoader;

// One independent guarded-knic testbed per CPU: the SMP leg measures
// instrumentation under concurrency, not cross-CPU sharing, so each CPU
// gets its own kernel + NIC + policy and its own virtual clock.
struct CpuRig {
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<kop::policy::PolicyModule> policy;
  std::unique_ptr<ModuleLoader> loader;
  std::unique_ptr<kop::nic::CountingSink> sink;
  std::unique_ptr<kop::nic::E1000Device> nic;
  LoadedModule* module = nullptr;

  bool Build(ExecEngine engine, const kop::signing::SignedModule& image) {
    kernel = std::make_unique<Kernel>();
    auto inserted = kop::policy::PolicyModule::Insert(
        kernel.get(), nullptr, kop::policy::PolicyMode::kDefaultAllow);
    if (!inserted.ok()) return false;
    policy = std::move(*inserted);
    kop::signing::Keyring keyring;
    keyring.Trust(kop::signing::SigningKey::DevelopmentKey());
    loader = std::make_unique<ModuleLoader>(kernel.get(), std::move(keyring));
    loader->set_engine(engine);
    sink = std::make_unique<kop::nic::CountingSink>();
    nic = std::make_unique<kop::nic::E1000Device>(&kernel->mem(), sink.get());
    if (!nic->MapAt(kop::kernel::kVmallocBase).ok()) return false;
    auto loaded = loader->Insmod(image);
    if (!loaded.ok()) {
      std::fprintf(stderr, "insmod failed: %s\n",
                   loaded.status().ToString().c_str());
      return false;
    }
    module = *loaded;
    (void)module->Call("knic_init", {kop::kernel::kVmallocBase});
    (void)module->Call("knic_fill", {64, 0x20});
    return true;
  }

  bool Sends(uint64_t sends) {
    for (uint64_t i = 0; i < sends; ++i) {
      auto result = module->Call("knic_send", {kop::kernel::kVmallocBase, 64});
      if (!result.ok()) {
        std::fprintf(stderr, "send failed: %s\n",
                     result.status().ToString().c_str());
        return false;
      }
    }
    return true;
  }
};

struct Measurement {
  double cycles_per_send = 0.0;  // busiest CPU, virtual clock
  double wall_ns_per_send = 0.0;
  bool ok = false;
};

Measurement Measure(std::vector<CpuRig>& rigs, uint32_t cpus, uint64_t sends) {
  std::vector<double> before(cpus);
  for (uint32_t cpu = 0; cpu < cpus; ++cpu) {
    before[cpu] = rigs[cpu].kernel->clock().MaxCycles();
  }
  std::vector<bool> ok(cpus, false);
  const auto start = WallClock::now();
  kop::smp::RunOnCpus(cpus, [&](uint32_t cpu) {
    ok[cpu] = rigs[cpu].Sends(sends);
  });
  const double wall_ns =
      std::chrono::duration<double, std::nano>(WallClock::now() - start)
          .count();
  Measurement m;
  for (uint32_t cpu = 0; cpu < cpus; ++cpu) {
    if (!ok[cpu]) return m;
    const double cycles = rigs[cpu].kernel->clock().MaxCycles() - before[cpu];
    m.cycles_per_send =
        std::max(m.cycles_per_send, cycles / static_cast<double>(sends));
  }
  m.wall_ns_per_send = wall_ns / static_cast<double>(sends);
  m.ok = true;
  return m;
}

// The documented bundle schema, as `kopcc postmortem --check-schema`
// pins it (DESIGN.md §14).
const char* const kSchemaKeys[] = {
    "\"schema\":\"kop.flight.postmortem/v1\"",
    "\"module\":",
    "\"engine\":",
    "\"reason\":",
    "\"what\":",
    "\"recovery\":",
    "\"cpu\":",
    "\"tsc\":",
    "\"violation\":",
    "\"vm\":",
    "\"journal\":{",
    "\"heap\":{",
    "\"restarts\":{",
    "\"policy\":",
    "\"heatmap\":[",
    "\"trace\":[",
};

bool CheckBundle(const kop::flight::PostmortemBundle& bundle,
                 const char* engine_name) {
  const std::string json = bundle.ToJson();
  bool ok = true;
  for (const char* key : kSchemaKeys) {
    if (json.find(key) == std::string::npos) {
      std::fprintf(stderr, "%s bundle: missing schema key %s\n", engine_name,
                   key);
      ok = false;
    }
  }
  if (!bundle.has_violation || bundle.site_label.empty() ||
      json.find(bundle.site_label) == std::string::npos) {
    std::fprintf(stderr, "%s bundle: triggering guard site not identified\n",
                 engine_name);
    ok = false;
  }
  if (bundle.tails.empty()) {
    std::fprintf(stderr, "%s bundle: no per-CPU flight-recorder tails\n",
                 engine_name);
    ok = false;
  }
  for (const auto& tail : bundle.tails) {
    if (tail.records.empty()) {
      std::fprintf(stderr, "%s bundle: cpu %u tail is empty\n", engine_name,
                   tail.cpu);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t sends = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 3;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  auto compiled = kop::transform::CompileModuleText(kop::kirmods::KnicSource());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  const auto image = kop::signing::SignModule(
      compiled->text, compiled->attestation,
      kop::signing::SigningKey::DevelopmentKey());

  const ExecEngine engines[] = {ExecEngine::kBytecode, ExecEngine::kInterp};
  const uint32_t cpu_points[] = {1, 8};

  std::printf("%-9s %4s %-9s %16s %14s %13s\n", "engine", "cpus", "spans",
              "cycles_per_send", "wall_ns_send", "overhead_pct");
  std::string csv =
      "engine,cpus,spans,cycles_per_send,wall_ns_per_send,"
      "cycle_overhead_pct\n";
  bool failed = false;

  for (const ExecEngine engine : engines) {
    const std::string engine_str(kop::kernel::ExecEngineName(engine));
    for (const uint32_t cpus : cpu_points) {
      // Each leg gets freshly built rigs, so both start from the exact
      // same machine state (the knic TX ring's per-send cost depends on
      // ring phase — interleaving legs on shared rigs would compare
      // different phases, not span cost). Cycles come from round 1 of
      // each leg — same construction + same warmup means the readings
      // are directly comparable and deterministic; later rounds only
      // chase the best wall time.
      Measurement off, on;
      for (const bool spans_on : {false, true}) {
        std::vector<CpuRig> rigs(cpus);
        for (uint32_t cpu = 0; cpu < cpus; ++cpu) {
          if (!rigs[cpu].Build(engine, image)) return 1;
        }
        kop::trace::GlobalTracer().ring().SetShards(cpus);
        kop::trace::GlobalSpans().SetEnabled(spans_on);
        kop::smp::RunOnCpus(cpus, [&](uint32_t cpu) {
          (void)rigs[cpu].Sends(sends / 4 + 1);  // warmup
        });
        Measurement& leg = spans_on ? on : off;
        for (int r = 0; r < rounds; ++r) {
          Measurement m = Measure(rigs, cpus, sends);
          if (!m.ok) return 1;
          if (!leg.ok) {
            leg = m;
          } else if (m.wall_ns_per_send < leg.wall_ns_per_send) {
            leg.wall_ns_per_send = m.wall_ns_per_send;
          }
        }
        kop::trace::GlobalSpans().SetEnabled(true);
      }

      const double overhead_pct =
          off.cycles_per_send > 0
              ? (on.cycles_per_send - off.cycles_per_send) /
                    off.cycles_per_send * 100.0
              : 0.0;
      struct Leg {
        const char* label;
        const Measurement& m;
        double overhead;
      } legs[] = {{"off", off, 0.0}, {"on", on, overhead_pct}};
      for (const Leg& leg : legs) {
        std::printf("%-9s %4u %-9s %16.1f %14.1f %+12.2f%%\n",
                    engine_str.c_str(), cpus, leg.label, leg.m.cycles_per_send,
                    leg.m.wall_ns_per_send, leg.overhead);
        char line[192];
        std::snprintf(line, sizeof(line), "%s,%u,%s,%.1f,%.1f,%.3f\n",
                      engine_str.c_str(), cpus, leg.label,
                      leg.m.cycles_per_send, leg.m.wall_ns_per_send,
                      leg.overhead);
        csv += line;
      }
      if (overhead_pct > 2.0) {
        std::fprintf(stderr,
                     "%s @ %u cpus: span overhead %.2f%% exceeds the 2%% "
                     "budget\n",
                     engine_str.c_str(), cpus, overhead_pct);
        failed = true;
      }
    }
  }
#if !KOP_SPANS_ENABLED
  std::printf("(KOP_SPANS_ENABLED=OFF: both legs are the same object code)\n");
#endif

  // Postmortem acceptance: the same fixed seed must contain the same
  // forced violation on both engines and capture equivalent bundles.
  kop::fault::CampaignConfig config;
  config.seed = seed;
  std::string normalized[2];
  for (int e = 0; e < 2; ++e) {
    config.engine = engines[e];
    const std::string engine_str(kop::kernel::ExecEngineName(engines[e]));
    auto bundle = kop::fault::RunPostmortemDemo(config);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: postmortem demo failed: %s\n",
                   engine_str.c_str(), bundle.status().ToString().c_str());
      return 1;
    }
    if (!CheckBundle(*bundle, engine_str.c_str())) failed = true;
    kop::flight::PostmortemBundle neutral = *bundle;
    neutral.engine = "(normalized)";
    normalized[e] = neutral.ToJson();
  }
  if (normalized[0] != normalized[1]) {
    std::fprintf(stderr,
                 "postmortem bundles differ across engines beyond the engine "
                 "name\n");
    failed = true;
  } else {
    std::printf(
        "postmortem(seed=%llu): schema OK, guard site attributed, per-CPU "
        "tails present, engine-identical\n",
        (unsigned long long)seed);
  }

  kop::bench::WriteResultsFile("ext5_flight.csv", csv);
  return failed ? 1 : 0;
}
