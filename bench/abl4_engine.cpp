// Ablation 4: the execution-engine tentpole. The module loader can run a
// protected module on the reference tree-walking interpreter or on the
// register VM over load-time-compiled bytecode. This bench measures HOST
// wall-clock time (not simulated cycles — both engines charge the virtual
// clock identically) for the knic xmit hot path under both engines,
// guarded and unguarded. An unguarded module can never pass the insmod
// validator (attestation must certify guard completeness), so the bench
// wires the engines directly the way the loader does — kernel address
// space, module-area globals, real policy engine behind carat_guard —
// which also lets all four variants share one harness.
//
// Two kinds of numbers come out:
//  - end-to-end ns/send on the xmit path: what a driver call costs. Both
//    engines pay the same policy-check, trace, and MMIO floor here, so
//    this ratio understates the engine gap.
//  - ns/step on a pure-dispatch workload: the engine cost alone, where
//    the interpreter's per-node overhead is not hidden behind shared
//    observability work.
// Timed rounds are interleaved across variants and the per-variant
// minimum is kept, so a noisy co-tenant burst lands on every variant
// equally instead of skewing one column.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kir/bytecode.hpp"
#include "kop/kir/engine.hpp"
#include "kop/kir/interp.hpp"
#include "kop/kir/parser.hpp"
#include "kop/kir/vm.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/engine.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/util/carat_abi.hpp"

#include "common/experiment.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Pure-dispatch workload: integer mixing in a tight loop, no memory
/// traffic beyond one final store, no externals. Per-iteration work is 8
/// instructions, so ns/step isolates decode+dispatch cost.
constexpr char kDispatchSource[] = R"(module "abl4_dispatch"

global @out size 8 rw

func @spin(i64 %n) -> i64 {
entry:
  jmp head
head:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %s = phi i64 [ 0, entry ], [ %s2, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %x = mul i64 %i, 1099511628211
  %y = xor i64 %s, %x
  %z = lshr i64 %y, 7
  %s2 = add i64 %y, %z
  %i1 = add i64 %i, 1
  jmp head
out:
  store i64 %s, @out
  ret i64 %s
}
)";

/// kir memory over the kernel address space, charging the machine model
/// like the module loader's adapter does.
class KernelMemory final : public kop::kir::MemoryInterface {
 public:
  explicit KernelMemory(kop::kernel::Kernel* kernel) : kernel_(kernel) {}

  kop::Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_read_cycles);
    switch (size) {
      case 1: {
        auto v = kernel_->mem().Read8(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 2: {
        auto v = kernel_->mem().Read16(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 4: {
        auto v = kernel_->mem().Read32(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      default:
        return kernel_->mem().Read64(addr);
    }
  }

  kop::Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_write_cycles);
    switch (size) {
      case 1:
        return kernel_->mem().Write8(addr, static_cast<uint8_t>(value));
      case 2:
        return kernel_->mem().Write16(addr, static_cast<uint16_t>(value));
      case 4:
        return kernel_->mem().Write32(addr, static_cast<uint32_t>(value));
      default:
        return kernel_->mem().Write64(addr, value);
    }
  }

 private:
  kop::kernel::Kernel* kernel_;
};

/// Guard calls go to the real policy engine; nothing else is resolvable
/// (knic imports no kernel symbols). Supports both the interpreter's
/// name-keyed path and the VM's bind-once path.
class GuardResolver final : public kop::kir::ExternalResolver {
 public:
  explicit GuardResolver(kop::policy::PolicyEngine* engine)
      : engine_(engine) {}

  kop::Result<uint64_t> CallExternal(const std::string& name,
                                     const std::vector<uint64_t>& args)
      override {
    return CallExternal(name, args, 0);
  }

  kop::Result<uint64_t> CallExternal(const std::string& name,
                                     const std::vector<uint64_t>& args,
                                     uint64_t /*call_ordinal*/) override {
    if (name == kop::kCaratGuardSymbol && args.size() == 3) {
      return uint64_t{engine_->Guard(args[0], args[1], args[2]) ? 1u : 0u};
    }
    if (name == kop::kCaratIntrinsicGuardSymbol && args.size() == 1) {
      return uint64_t{engine_->IntrinsicGuard(args[0]) ? 1u : 0u};
    }
    return kop::NotFound("undefined symbol in bench harness: " + name);
  }

  std::optional<uint64_t> BindExternal(const std::string& name) override {
    if (name == kop::kCaratGuardSymbol) return uint64_t{0};
    if (name == kop::kCaratIntrinsicGuardSymbol) return uint64_t{1};
    return std::nullopt;
  }

  kop::Result<uint64_t> CallBound(uint64_t handle,
                                  const std::vector<uint64_t>& args,
                                  uint64_t /*call_ordinal*/) override {
    if (handle == 0 && args.size() == 3) {
      return uint64_t{engine_->Guard(args[0], args[1], args[2]) ? 1u : 0u};
    }
    if (handle == 1 && args.size() == 1) {
      return uint64_t{engine_->IntrinsicGuard(args[0]) ? 1u : 0u};
    }
    return kop::Internal("bad bound handle in bench harness");
  }

 private:
  kop::policy::PolicyEngine* engine_;
};

/// One engine wired to its own kernel + device + policy, the way insmod
/// lays a module out. Kept alive across interleaved timing rounds.
struct Harness {
  const char* label;
  bool bytecode;
  bool guards;

  std::unique_ptr<kop::kir::Module> module;  // interpreter walks the IR live
  std::unique_ptr<kop::kernel::Kernel> kernel;
  std::unique_ptr<kop::policy::PolicyEngine> policy;
  std::unique_ptr<kop::nic::CountingSink> sink;
  std::unique_ptr<kop::nic::E1000Device> device;
  std::unique_ptr<KernelMemory> memory;
  std::unique_ptr<GuardResolver> resolver;
  std::unique_ptr<kop::kir::ExecutionEngine> engine;

  double best_ns = 0.0;

  void Build(const std::string& text) {
    auto parsed = kop::kir::ParseModule(text);
    if (!parsed.ok()) std::abort();
    module = std::move(*parsed);

    kernel = std::make_unique<kop::kernel::Kernel>();
    policy = std::make_unique<kop::policy::PolicyEngine>(
        kernel.get(), std::make_unique<kop::policy::RegionTable64>(),
        kop::policy::PolicyMode::kDefaultAllow);
    sink = std::make_unique<kop::nic::CountingSink>();
    device = std::make_unique<kop::nic::E1000Device>(&kernel->mem(),
                                                     sink.get());
    if (!device->MapAt(kop::kernel::kVmallocBase).ok()) std::abort();

    // Globals and the alloca stack live in the module area, like insmod
    // lays them out.
    std::unordered_map<std::string, uint64_t> globals;
    for (const auto& global : module->globals()) {
      auto addr = kernel->module_area().Kmalloc(
          std::max<uint64_t>(global->size_bytes(), 8));
      if (!addr.ok()) std::abort();
      globals[global->name()] = *addr;
    }
    auto stack = kernel->module_area().Kmalloc(64 * 1024);
    if (!stack.ok()) std::abort();
    kop::kir::InterpConfig config;
    config.stack_base = *stack;
    config.stack_size = 64 * 1024;
    config.max_steps = ~uint64_t{0};

    memory = std::make_unique<KernelMemory>(kernel.get());
    resolver = std::make_unique<GuardResolver>(policy.get());
    if (bytecode) {
      auto compiled = kop::kir::CompileToBytecode(*module);
      if (!compiled.ok()) std::abort();
      auto vm = kop::kir::VM::Create(std::move(*compiled), *memory,
                                     *resolver, globals, config);
      if (!vm.ok()) std::abort();
      engine = std::move(*vm);
    } else {
      engine = std::make_unique<kop::kir::Interpreter>(
          *module, *memory, *resolver, globals, config);
    }
  }

  double TimeCall(const std::string& fn, const std::vector<uint64_t>& args,
                  uint64_t calls) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < calls; ++i) (void)engine->Call(fn, args);
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  }

  void KeepBest(double ns) {
    best_ns = best_ns == 0.0 ? ns : std::min(best_ns, ns);
  }
};

std::string GuardedKnic(bool guards) {
  kop::transform::CompileOptions options;
  options.inject_guards = guards;
  auto compiled = kop::transform::CompileModuleText(
      kop::kirmods::KnicSource(), options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    std::abort();
  }
  return compiled->text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  // Short interleaved rounds: each round times every variant once, so a
  // co-tenant CPU burst degrades all columns instead of one. min() over
  // rounds approximates the unpreempted time on a shared host.
  const uint64_t sends =
      std::clamp<uint64_t>(args.packets / 4, 1000, 10000);
  const int rounds = 9;

  PrintFigureHeader(
      "Ablation 4", "Execution engine: bytecode VM vs reference interpreter",
      "kop_knic xmit, " + std::to_string(sends) + " sends per round, " +
          std::to_string(rounds) + " interleaved rounds, host wall clock");

  Harness variants[4] = {
      {"interp-guarded", false, true, {}, {}, {}, {}, {}, {}, {}, {}, 0.0},
      {"interp-unguarded", false, false, {}, {}, {}, {}, {}, {}, {}, {}, 0.0},
      {"bytecode-guarded", true, true, {}, {}, {}, {}, {}, {}, {}, {}, 0.0},
      {"bytecode-unguarded", true, false, {}, {}, {}, {}, {}, {}, {}, {}, 0.0},
  };
  const std::string guarded_text = GuardedKnic(true);
  const std::string unguarded_text = GuardedKnic(false);
  const uint64_t mmio = kop::kernel::kVmallocBase;
  for (Harness& h : variants) {
    h.Build(h.guards ? guarded_text : unguarded_text);
    (void)h.engine->Call("knic_init", {mmio});
    (void)h.engine->Call("knic_fill", {64, 0x20});
    (void)h.TimeCall("knic_send", {mmio, 64}, sends / 4 + 1);  // warmup
  }
  for (int r = 0; r < rounds; ++r) {
    for (Harness& h : variants) {
      h.KeepBest(h.TimeCall("knic_send", {mmio, 64}, sends));
    }
  }

  // Correctness anchors: every variant moved the same frames. Read the
  // hardware counter once per variant — the read itself runs (guarded)
  // module code and must hit each engine the same number of times.
  uint64_t sent[4];
  for (int i = 0; i < 4; ++i) {
    auto result = variants[i].engine->Call("knic_sent_hw", {mmio});
    sent[i] = result.ok() ? *result : 0;
    if (sent[i] != sent[0] ||
        variants[i].sink->packets() != variants[0].sink->packets()) {
      std::fprintf(stderr, "variant %s changed module behaviour!\n",
                   variants[i].label);
      return 1;
    }
  }

  std::printf("%-20s %14s %12s %12s %10s\n", "variant", "ns_per_send",
              "guard_calls", "steps", "hw_sent");
  std::string csv =
      "workload,engine,guards,unit,ns,guard_calls,steps\n";
  for (int i = 0; i < 4; ++i) {
    Harness& h = variants[i];
    const double ns_per_send = h.best_ns / static_cast<double>(sends);
    std::printf("%-20s %14.1f %12llu %12llu %10llu\n", h.label, ns_per_send,
                static_cast<unsigned long long>(h.policy->stats().guard_calls),
                static_cast<unsigned long long>(h.engine->stats().steps),
                static_cast<unsigned long long>(sent[i]));
    char line[192];
    std::snprintf(line, sizeof(line), "xmit,%s,%s,ns_per_send,%.1f,%llu,%llu\n",
                  h.bytecode ? "bytecode" : "interp", h.guards ? "on" : "off",
                  ns_per_send,
                  static_cast<unsigned long long>(
                      h.policy->stats().guard_calls),
                  static_cast<unsigned long long>(h.engine->stats().steps));
    csv += line;
  }

  // Pure-dispatch workload: same interleaving, constant work per round.
  const uint64_t spin_iters = 200000;
  const double spin_steps = 8.0 * static_cast<double>(spin_iters);
  Harness dispatch[2] = {
      {"interp-dispatch", false, false, {}, {}, {}, {}, {}, {}, {}, {}, 0.0},
      {"bytecode-dispatch", true, false, {}, {}, {}, {}, {}, {}, {}, {}, 0.0},
  };
  for (Harness& h : dispatch) {
    h.Build(kDispatchSource);
    (void)h.TimeCall("spin", {spin_iters / 10}, 1);  // warmup
  }
  for (int r = 0; r < rounds; ++r) {
    for (Harness& h : dispatch) {
      h.KeepBest(h.TimeCall("spin", {spin_iters}, 1));
    }
  }
  std::printf("\n%-20s %14s\n", "dispatch", "ns_per_step");
  for (Harness& h : dispatch) {
    const double ns_per_step = h.best_ns / spin_steps;
    std::printf("%-20s %14.2f\n", h.label, ns_per_step);
    char line[128];
    std::snprintf(line, sizeof(line), "dispatch,%s,off,ns_per_step,%.2f,0,%llu\n",
                  h.bytecode ? "bytecode" : "interp", ns_per_step,
                  static_cast<unsigned long long>(h.engine->stats().steps));
    csv += line;
  }

  const double guarded_speedup =
      variants[0].best_ns / variants[2].best_ns;
  const double unguarded_speedup =
      variants[1].best_ns / variants[3].best_ns;
  const double dispatch_speedup = dispatch[0].best_ns / dispatch[1].best_ns;
  const double interp_ratio = variants[0].best_ns / variants[1].best_ns;
  const double bytecode_ratio = variants[2].best_ns / variants[3].best_ns;
  std::printf(
      "\nbytecode speedup: %.1fx guarded xmit, %.1fx unguarded xmit, "
      "%.1fx pure dispatch\n",
      guarded_speedup, unguarded_speedup, dispatch_speedup);
  std::printf(
      "guarded/unguarded overhead ratio: interp %.3f, bytecode %.3f\n",
      interp_ratio, bytecode_ratio);
  char line[256];
  std::snprintf(line, sizeof(line),
                "# speedup_guarded,%.2f\n# speedup_unguarded,%.2f\n"
                "# speedup_dispatch,%.2f\n"
                "# guard_overhead_interp,%.3f\n# guard_overhead_bytecode,"
                "%.3f\n",
                guarded_speedup, unguarded_speedup, dispatch_speedup,
                interp_ratio, bytecode_ratio);
  csv += line;
  WriteResultsFile("abl4_engine.csv", csv);
  return 0;
}
