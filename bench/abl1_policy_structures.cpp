// Ablation 1 (paper §3.1/§4.2 discussion): race the policy-store
// implementations the paper considers — the shipped 64-entry linear
// table, sorted-table binary search, the kernel-style red-black tree,
// the splay tree, the CARAT-CAKE-style single-entry cache, the Bloom
// front filter and LSH buckets — across region counts and address mixes.
// Host-measured with google-benchmark: this is the one experiment where
// real cache behaviour is the point ("optimized for cache-friendly
// search of a small number of regions").
#include <benchmark/benchmark.h>

#include <memory>

#include "kop/policy/cuckoo.hpp"
#include "kop/policy/lsh_store.hpp"
#include "kop/policy/rbtree_store.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/policy/sorted_table.hpp"
#include "kop/policy/splay_store.hpp"
#include "kop/policy/wrappers.hpp"
#include "kop/util/rng.hpp"

namespace {

using namespace kop::policy;

enum class StoreKind : int {
  kLinear = 0,
  kSorted,
  kRbTree,
  kSplay,
  kCacheLinear,
  kBloomSorted,
  kCuckooRb,
  kLsh,
};

std::unique_ptr<PolicyStore> MakeStore(StoreKind kind) {
  switch (kind) {
    case StoreKind::kLinear: return std::make_unique<RegionTable64>();
    case StoreKind::kSorted: return std::make_unique<SortedRegionTable>();
    case StoreKind::kRbTree: return std::make_unique<RbTreeRegionStore>();
    case StoreKind::kSplay: return std::make_unique<SplayRegionTree>();
    case StoreKind::kCacheLinear:
      return std::make_unique<SingleEntryCacheStore>(
          std::make_unique<RegionTable64>());
    case StoreKind::kBloomSorted:
      return std::make_unique<BloomFrontStore>(
          std::make_unique<SortedRegionTable>());
    case StoreKind::kCuckooRb:
      return std::make_unique<CuckooFrontStore>(
          std::make_unique<RbTreeRegionStore>(), 1 << 16);
    case StoreKind::kLsh: return std::make_unique<LshBucketStore>();
  }
  return nullptr;
}

/// Fill with n non-overlapping regions (grid layout). The linear table
/// caps at 64; larger n only runs on the scalable structures.
void Fill(PolicyStore& store, int n) {
  for (int i = 0; i < n; ++i) {
    benchmark::DoNotOptimize(
        store.Add(Region{0x100000 + uint64_t(i) * 0x10000, 0x8000,
                         kProtRW}));
  }
}

/// Guard-like probe streams.
enum class Mix : int {
  kHotRegion = 0,   // the common case: nearly every access in one region
  kUniform,         // accesses spread across all regions
  kMisses,          // accesses that match nothing (default-allow traffic)
};

void RegisterAll() {
  static const struct {
    StoreKind kind;
    const char* name;
  } kStores[] = {
      {StoreKind::kLinear, "linear64"},
      {StoreKind::kSorted, "sorted"},
      {StoreKind::kRbTree, "rbtree"},
      {StoreKind::kSplay, "splay"},
      {StoreKind::kCacheLinear, "cache+linear"},
      {StoreKind::kBloomSorted, "bloom+sorted"},
      {StoreKind::kCuckooRb, "cuckoo+rbtree"},
      {StoreKind::kLsh, "lsh"},
  };
  static const struct {
    Mix mix;
    const char* name;
  } kMixes[] = {
      {Mix::kHotRegion, "hot"},
      {Mix::kUniform, "uniform"},
      {Mix::kMisses, "miss"},
  };
  for (const auto& store : kStores) {
    for (const auto& mix : kMixes) {
      for (int regions : {2, 16, 64, 512, 4096}) {
        if ((store.kind == StoreKind::kLinear ||
             store.kind == StoreKind::kCacheLinear) &&
            regions > 64) {
          continue;
        }
        const std::string name = std::string("Lookup/") + store.name + "/" +
                                 mix.name + "/n=" +
                                 std::to_string(regions);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [kind = store.kind, regions, mix = mix.mix](
                benchmark::State& state) {
              auto store_ptr = MakeStore(kind);
              Fill(*store_ptr, regions);
              kop::Xoshiro256 rng(1234);
              std::vector<uint64_t> probes(4096);
              for (uint64_t& probe : probes) {
                switch (mix) {
                  case Mix::kHotRegion:
                    probe = 0x100000 + (uint64_t(regions) / 2) * 0x10000 +
                            rng.NextBelow(0x8000 - 8);
                    break;
                  case Mix::kUniform:
                    probe = 0x100000 +
                            rng.NextBelow(uint64_t(regions)) * 0x10000 +
                            rng.NextBelow(0x8000 - 8);
                    break;
                  case Mix::kMisses:
                    probe = 0x100000 +
                            rng.NextBelow(uint64_t(regions)) * 0x10000 +
                            0x8000 + rng.NextBelow(0x7000);
                    break;
                }
              }
              size_t i = 0;
              for (auto _ : state) {
                benchmark::DoNotOptimize(store_ptr->Lookup(probes[i], 8));
                i = (i + 1) & (probes.size() - 1);
              }
              state.SetItemsProcessed(state.iterations());
            });
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
