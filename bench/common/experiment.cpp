#include "experiment.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "kop/net/socket.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/util/rng.hpp"

namespace kop::bench {
namespace {

constexpr uint64_t kMmioBase = kernel::kVmallocBase;

/// Bench kernels are built per figure; keep the RAM map small so rig
/// construction is cheap.
kernel::KernelConfig BenchKernelConfig(const sim::MachineModel& machine) {
  kernel::KernelConfig config;
  config.ram_bytes = 8ull << 20;
  config.kernel_text_bytes = 1ull << 20;
  config.module_area_bytes = 8ull << 20;
  config.user_bytes = 1ull << 20;
  config.machine = machine;
  return config;
}

}  // namespace

Rig::Rig(const RigConfig& config) : config_(config) {
  kernel_ = std::make_unique<kernel::Kernel>(
      BenchKernelConfig(config.machine));
  sink_ = std::make_unique<nic::CountingSink>(/*retain=*/1);
  device_ = std::make_unique<nic::E1000Device>(&kernel_->mem(), sink_.get());
  Status status = device_->MapAt(kMmioBase);
  if (!status.ok()) {
    std::fprintf(stderr, "rig: %s\n", status.ToString().c_str());
    std::abort();
  }

  auto policy = policy::PolicyModule::Insert(
      kernel_.get(), nullptr,
      config.regions == 0 ? policy::PolicyMode::kDefaultAllow
                          : policy::PolicyMode::kDefaultDeny);
  if (!policy.ok()) {
    std::fprintf(stderr, "rig: %s\n", policy.status().ToString().c_str());
    std::abort();
  }
  policy_ = std::move(*policy);

  // The paper's two-region rule, extended with decoys for larger n:
  //   region 0: the kernel high half, read-write (the rule that matches),
  //   region 1: the user low half, no permissions (the rule that denies),
  //   regions 2..n-1: far-apart decoy restrictions that never match the
  //   driver's accesses but lengthen the scan.
  auto& store = policy_->engine().store();
  if (config.regions >= 1) {
    (void)store.Add(policy::Region{kernel::kKernelHalfBase,
                                   ~uint64_t{0} - kernel::kKernelHalfBase,
                                   policy::kProtRW});
  }
  if (config.regions >= 2) {
    (void)store.Add(
        policy::Region{0, kernel::kUserSpaceEnd, policy::kProtNone});
  }
  for (uint32_t i = 2; i < config.regions; ++i) {
    (void)store.Add(policy::Region{kernel::kUserSpaceEnd +
                                       (uint64_t{i} << 24),
                                   0x1000, policy::kProtRead});
  }

  if (config.technique == Technique::kCarat) {
    auto driver = e1000e::CaratDriver::Probe(
        e1000e::GuardedMemOps(kernel_.get(), &policy_->engine()), kMmioBase);
    if (!driver.ok()) {
      std::fprintf(stderr, "rig: %s\n", driver.status().ToString().c_str());
      std::abort();
    }
    carat_driver_ = std::make_unique<e1000e::CaratDriver>(*driver);
    netdev_ = std::make_unique<net::DriverNetDevice<e1000e::CaratDriver>>(
        carat_driver_.get());
  } else {
    auto driver = e1000e::BaselineDriver::Probe(
        e1000e::RawMemOps(kernel_.get()), kMmioBase);
    if (!driver.ok()) {
      std::fprintf(stderr, "rig: %s\n", driver.status().ToString().c_str());
      std::abort();
    }
    baseline_driver_ = std::make_unique<e1000e::BaselineDriver>(*driver);
    netdev_ =
        std::make_unique<net::DriverNetDevice<e1000e::BaselineDriver>>(
            baseline_driver_.get());
  }
}

Rig::~Rig() = default;

double Rig::ThroughputTrial(uint64_t packets, uint32_t frame_bytes,
                            uint32_t trial_index) {
  // Fresh socket per trial: independent per-packet noise stream.
  net::PacketSocket socket(kernel_.get(), netdev_.get(),
                           config_.seed * 7919 + trial_index);
  net::PacketGun gun(kernel_.get(), &socket);
  net::TrialConfig config;
  config.packets = packets;
  config.frame_bytes = frame_bytes;
  auto trial = gun.RunTrial(config);
  if (!trial.ok()) {
    std::fprintf(stderr, "trial: %s\n", trial.status().ToString().c_str());
    std::abort();
  }
  // Per-trial multiplicative jitter: frequency scaling, background load,
  // cache state — what spreads the paper's CDFs across trials.
  Xoshiro256 rng(config_.seed * 104729 + trial_index);
  const double jitter = std::exp(config_.machine.trial_jitter_sigma *
                                 rng.NextGaussian());
  return trial->packets_per_second / jitter;
}

std::vector<double> Rig::LatencyTrial(uint64_t packets,
                                      uint32_t frame_bytes) {
  net::PacketSocket socket(kernel_.get(), netdev_.get(), config_.seed);
  net::PacketGun gun(kernel_.get(), &socket);
  net::TrialConfig config;
  config.packets = packets;
  config.frame_bytes = frame_bytes;
  config.collect_latencies = true;
  auto trial = gun.RunTrial(config);
  if (!trial.ok()) {
    std::fprintf(stderr, "trial: %s\n", trial.status().ToString().c_str());
    std::abort();
  }
  return std::move(trial->latencies_cycles);
}

uint64_t Rig::GuardCalls() const {
  return policy_->engine().stats().guard_calls;
}

std::string RenderCdfTable(const std::vector<CdfSeries>& series,
                           size_t points) {
  std::string out = "percentile";
  for (const CdfSeries& s : series) out += "," + s.label + "_pps";
  out += "\n";
  std::vector<std::vector<double>> sorted;
  for (const CdfSeries& s : series) {
    std::vector<double> values = s.trial_pps;
    std::sort(values.begin(), values.end());
    sorted.push_back(std::move(values));
  }
  char buf[64];
  for (size_t i = 0; i < points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(points - 1);
    std::snprintf(buf, sizeof(buf), "%.0f", q * 100.0);
    out += buf;
    for (const auto& values : sorted) {
      std::snprintf(buf, sizeof(buf), ",%.0f",
                    sim::QuantileSorted(values, q));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

void PrintFigureHeader(const std::string& figure, const std::string& title,
                       const std::string& setup) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", figure.c_str(), title.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("==============================================================="
              "=\n");
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      args.trials = static_cast<uint32_t>(std::strtoul(argv[i] + 9,
                                                       nullptr, 10));
    } else if (std::strncmp(argv[i], "--packets=", 10) == 0) {
      args.packets = std::strtoull(argv[i] + 10, nullptr, 10);
    }
  }
  return args;
}

void WriteResultsFile(const std::string& name, const std::string& content) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + name;
  std::ofstream out(path);
  if (out) {
    out << content;
    std::printf("[results written to %s]\n", path.c_str());
  }
  // Alongside each figure table, snapshot the metrics registry (guard
  // latency histogram, lookup depth, ring occupancies) accumulated while
  // the bench ran — the raw material behind the medians.
  const size_t dot = name.rfind('.');
  const std::string metrics_path =
      "bench_results/" + name.substr(0, dot) + ".metrics.csv";
  if (metrics_path != path) {
    std::ofstream metrics(metrics_path);
    if (metrics) {
      metrics << trace::GlobalMetrics().RenderCsv();
      std::printf("[metrics snapshot written to %s]\n",
                  metrics_path.c_str());
    }
  }
}

}  // namespace kop::bench
