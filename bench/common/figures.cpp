#include "figures.hpp"

#include <cstdio>

#include "kop/kernel/module_loader.hpp"

namespace kop::bench {

std::string RunThroughputCdfFigure(const std::string& figure,
                                   const sim::MachineModel& machine,
                                   const BenchArgs& args) {
  PrintFigureHeader(
      figure, "CARAT KOP effect on packet launch throughput",
      machine.name + ", 2 regions, 128 B packets, " +
          std::to_string(args.trials) + " trials x " +
          std::to_string(args.packets) + " packets");

  std::vector<CdfSeries> series;
  for (Technique technique : {Technique::kCarat, Technique::kBaseline}) {
    RigConfig config;
    config.machine = machine;
    config.technique = technique;
    config.regions = 2;
    // Common random numbers: both techniques see the same jitter and
    // noise streams, so the CDF shift isolates the guard overhead (the
    // paper's interleaved runs achieve the same in expectation).
    config.seed = 11;
    Rig rig(config);
    CdfSeries s;
    s.label = TechniqueName(technique);
    for (uint32_t trial = 0; trial < args.trials; ++trial) {
      s.trial_pps.push_back(rig.ThroughputTrial(args.packets, 128, trial));
    }
    series.push_back(std::move(s));
  }

  const std::string table = EngineAnnotation() + RenderCdfTable(series);
  std::fputs(table.c_str(), stdout);

  const sim::Summary carat = sim::Summarize(series[0].trial_pps);
  const sim::Summary baseline = sim::Summarize(series[1].trial_pps);
  const double delta =
      (baseline.median - carat.median) / baseline.median * 100.0;
  std::printf("\nmedian baseline: %.0f pps\n", baseline.median);
  std::printf("median carat:    %.0f pps\n", carat.median);
  std::printf("median delta:    %.3f%% (paper: %s)\n", delta,
              machine.freq_hz > 2.5e9 ? "<0.1%, almost unmeasurable"
                                      : "~1000 pps, <0.8%");
  return table;
}

std::string EngineAnnotation() {
  return "# kir_engine: " +
         std::string(kernel::ExecEngineName(kernel::DefaultExecEngine())) +
         "\n";
}

}  // namespace kop::bench
