// Shared experiment rig for the figure benches: assembles the simulated
// testbed (kernel + machine model + NIC + policy module + driver +
// socket + packet gun), runs throughput/latency trials the way §4.2
// describes, and renders the series each figure plots.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/net/packet_gun.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/sim/machine.hpp"
#include "kop/sim/stats.hpp"

namespace kop::bench {

enum class Technique { kBaseline, kCarat };

inline const char* TechniqueName(Technique technique) {
  return technique == Technique::kBaseline ? "baseline" : "carat";
}

struct RigConfig {
  sim::MachineModel machine = sim::MachineModel::R350();
  Technique technique = Technique::kCarat;
  /// Number of regions in the policy. Region 1 is the paper's two-region
  /// rule's "allow the kernel high half"; regions beyond are decoys so
  /// the guard scans exactly `regions` entries. 0 means default-allow
  /// with an empty table.
  uint32_t regions = 2;
  uint64_t seed = 1;
};

/// A fully assembled testbed. Construction order matters; keep fields in
/// dependency order.
class Rig {
 public:
  explicit Rig(const RigConfig& config);
  ~Rig();
  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  /// One trial: launch `packets` frames of `frame_bytes`, with per-trial
  /// jitter applied (trial index seeds the noise). Returns packets/s.
  double ThroughputTrial(uint64_t packets, uint32_t frame_bytes,
                         uint32_t trial_index);

  /// Collect per-packet sendmsg latencies (cycles).
  std::vector<double> LatencyTrial(uint64_t packets, uint32_t frame_bytes);

  uint64_t GuardCalls() const;

  kernel::Kernel& kernel() { return *kernel_; }

 private:
  RigConfig config_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<nic::CountingSink> sink_;
  std::unique_ptr<nic::E1000Device> device_;
  std::unique_ptr<policy::PolicyModule> policy_;
  std::unique_ptr<e1000e::BaselineDriver> baseline_driver_;
  std::unique_ptr<e1000e::CaratDriver> carat_driver_;
  std::unique_ptr<net::NetDevice> netdev_;
};

/// CDF experiment output for one technique.
struct CdfSeries {
  std::string label;
  std::vector<double> trial_pps;
};

/// Render one or more CDF series as the table the paper's figures plot:
/// rows of "percentile,<label1>,<label2>,..." (values = pps at that
/// percentile).
std::string RenderCdfTable(const std::vector<CdfSeries>& series,
                           size_t points = 21);

/// Print a header for a figure bench.
void PrintFigureHeader(const std::string& figure, const std::string& title,
                       const std::string& setup);

/// Parse "--trials=N --packets=N" style overrides (very small parser for
/// the bench binaries; unknown flags are ignored).
struct BenchArgs {
  uint32_t trials = 31;
  uint64_t packets = 20000;
  static BenchArgs Parse(int argc, char** argv);
};

/// Write `content` to bench_results/<name> (best effort; prints a note).
void WriteResultsFile(const std::string& name, const std::string& content);

}  // namespace kop::bench
