// Shared figure runners (Figures 3 and 4 differ only in machine).
#pragma once

#include "experiment.hpp"

namespace kop::bench {

/// Figures 3/4: throughput CDF, carat vs baseline, 2 regions, 128 B.
/// Prints the CDF table, the medians and the relative delta; returns the
/// rendered table for bench_results.
std::string RunThroughputCdfFigure(const std::string& figure,
                                   const sim::MachineModel& machine,
                                   const BenchArgs& args);

}  // namespace kop::bench
