// Shared figure runners (Figures 3 and 4 differ only in machine).
#pragma once

#include "experiment.hpp"

namespace kop::bench {

/// Figures 3/4: throughput CDF, carat vs baseline, 2 regions, 128 B.
/// Prints the CDF table, the medians and the relative delta; returns the
/// rendered table for bench_results.
std::string RunThroughputCdfFigure(const std::string& figure,
                                   const sim::MachineModel& machine,
                                   const BenchArgs& args);

/// "# kir_engine: <name>\n" — records which execution engine protected
/// modules default to when a figure is recorded. Throughput figures are
/// simulated-cycle results and engine-independent; the annotation makes
/// that provenance explicit in the CSV.
std::string EngineAnnotation();

}  // namespace kop::bench
