// Figure 4: CARAT KOP effect on packet launch throughput on the faster
// R350 machine. Two regions, 128 B packets. Expected shape: the curves
// nearly coincide — median delta <0.1%, "almost unmeasurable".
#include "common/figures.hpp"

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::string table = RunThroughputCdfFigure(
      "Figure 4", kop::sim::MachineModel::R350(), args);
  WriteResultsFile("fig4_throughput_r350.csv", table);
  return 0;
}
