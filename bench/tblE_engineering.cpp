// Table E (the paper's §4.1 engineering-effort narrative, Figure 2's
// compilation process, rendered as a table): for every module in the
// corpus plus synthetic modules of increasing size, run the full CARAT
// KOP compilation (attest -> guard-inject -> verify -> sign) and report
// the numbers the paper talks about: source size, memory accesses,
// guards injected (always 1:1 — no optimization), image growth, and
// that zero source changes were needed.
#include <cstdio>
#include <sstream>

#include "kop/kirmods/corpus.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/compiler.hpp"

#include "common/experiment.hpp"

namespace {

struct Row {
  std::string name;
  size_t source_lines = 0;
  size_t instructions = 0;
  size_t accesses = 0;
  uint64_t guards = 0;
  size_t image_bytes = 0;
  size_t guarded_image_bytes = 0;
};

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

Row CompileOne(const std::string& name, const std::string& source) {
  Row row;
  row.name = name;
  row.source_lines = CountLines(source);

  kop::transform::CompileOptions baseline;
  baseline.inject_guards = false;
  auto base = kop::transform::CompileModuleText(source, baseline);
  if (base.ok()) {
    row.instructions = base->module->InstructionCount();
    row.accesses = base->module->MemoryAccessCount();
    row.image_bytes = base->text.size();
  }

  auto carat = kop::transform::CompileModuleText(source);
  if (carat.ok()) {
    row.guards = carat->attestation.guard_count;
    const auto image = kop::signing::SignModule(
        carat->text, carat->attestation,
        kop::signing::SigningKey::DevelopmentKey());
    row.guarded_image_bytes = image.Serialize().size();
  }
  return row;
}

}  // namespace

int main() {
  using namespace kop::bench;
  PrintFigureHeader(
      "Table E", "Engineering effort: the CARAT KOP compilation process",
      "attest -> guard-inject -> verify -> sign over the module corpus; "
      "no module source was modified (paper: 19 kLoC e1000e recompiled "
      "unchanged; transform itself ~200 LoC)");

  std::vector<Row> rows;
  for (const auto& entry : kop::kirmods::AllCorpusModules()) {
    rows.push_back(CompileOne(entry.name, entry.source));
  }
  for (auto [functions, accesses] :
       {std::pair<uint32_t, uint32_t>{16, 16},
        std::pair<uint32_t, uint32_t>{64, 32},
        std::pair<uint32_t, uint32_t>{128, 64}}) {
    std::ostringstream name;
    name << "kop_synth_" << functions << "x" << accesses;
    rows.push_back(CompileOne(
        name.str(),
        kop::kirmods::SyntheticModuleSource(functions, accesses)));
  }

  std::string csv =
      "module,source_lines,instructions,mem_accesses,guards,"
      "image_bytes,guarded_signed_bytes\n";
  std::printf("%-18s %9s %7s %9s %7s %9s %13s\n", "module", "src_lines",
              "insts", "accesses", "guards", "image_B", "signed_img_B");
  for (const Row& row : rows) {
    std::printf("%-18s %9zu %7zu %9zu %7llu %9zu %13zu\n", row.name.c_str(),
                row.source_lines, row.instructions, row.accesses,
                static_cast<unsigned long long>(row.guards),
                row.image_bytes, row.guarded_image_bytes);
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%zu,%zu,%zu,%llu,%zu,%zu\n",
                  row.name.c_str(), row.source_lines, row.instructions,
                  row.accesses, static_cast<unsigned long long>(row.guards),
                  row.image_bytes, row.guarded_image_bytes);
    csv += line;
  }
  std::printf("\ninvariant: guards == mem_accesses for every module "
              "(unoptimized 1:1 injection, paper §3.3)\n");
  std::printf("e1000e driver path: same source builds as baseline and "
              "carat (Driver<RawMemOps> / Driver<GuardedMemOps>), 17 "
              "guarded accesses per 128 B transmit\n");
  WriteResultsFile("tblE_engineering.csv", csv);
  return 0;
}
