// Extension 2: the paper's other §1 motivating module — FPVM-style
// floating-point trap delivery ("fast high-performance floating point
// trap delivery as part of FPVM"). Measures the trap round trip
// (deliver -> emulate -> patch) with the handler module in baseline and
// carat builds, across policy sizes and machines — the second data point
// for "what does CARAT KOP cost the modules that motivated it?".
#include <cstdio>
#include <cstring>

#include "kop/fptrap/fpvm_module.hpp"
#include "kop/fptrap/trap_controller.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/policy/policy_module.hpp"

#include "common/experiment.hpp"

namespace {

using namespace kop;

uint64_t Bits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

struct Row {
  double baseline_cycles = 0;
  double carat_cycles = 0;
};

template <typename ModuleT, typename OpsT>
double MeasureTraps(kernel::Kernel& kernel, OpsT ops, uint64_t traps) {
  fptrap::TrapController controller(&kernel);
  if (!controller.Init().ok()) std::abort();
  auto module = ModuleT::Probe(ops);
  if (!module.ok()) std::abort();
  controller.SetHandler(
      [&](uint64_t frame) { return module->HandleTrap(frame); });
  const double start = kernel.clock().NowCycles();
  for (uint64_t i = 0; i < traps; ++i) {
    const fptrap::FpOp op = static_cast<fptrap::FpOp>(i % 4);
    if (!controller.DeliverTrap(0x400000 + i, op, Bits(1.5 + double(i & 7)),
                                Bits(2.0))
             .ok()) {
      std::abort();
    }
  }
  return (kernel.clock().NowCycles() - start) / static_cast<double>(traps);
}

Row RunMachine(const sim::MachineModel& machine, uint32_t regions,
               uint64_t traps) {
  Row row;
  for (bool guarded : {false, true}) {
    kernel::KernelConfig config;
    config.ram_bytes = 4ull << 20;
    config.kernel_text_bytes = 1ull << 20;
    config.module_area_bytes = 4ull << 20;
    config.user_bytes = 1ull << 20;
    config.machine = machine;
    kernel::Kernel kernel(config);
    auto policy = policy::PolicyModule::Insert(
        &kernel, nullptr, policy::PolicyMode::kDefaultDeny);
    if (!policy.ok()) std::abort();
    auto& store = (*policy)->engine().store();
    (void)store.Add(policy::Region{kernel::kKernelHalfBase,
                                   ~uint64_t{0} - kernel::kKernelHalfBase,
                                   policy::kProtRW});
    for (uint32_t i = 1; i < regions; ++i) {
      (void)store.Add(policy::Region{0x1000 + (uint64_t{i} << 20), 0x100,
                                     policy::kProtRead});
    }
    if (guarded) {
      row.carat_cycles = MeasureTraps<fptrap::CaratFpvm>(
          kernel, modrt::GuardedMemOps(&kernel, &(*policy)->engine()),
          traps);
    } else {
      row.baseline_cycles = MeasureTraps<fptrap::BaselineFpvm>(
          kernel, modrt::RawMemOps(&kernel), traps);
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint64_t traps = std::max<uint64_t>(args.packets, 5000);

  PrintFigureHeader("Extension 2",
                    "FPVM-style FP trap delivery (the paper's §1 use case) "
                    "under CARAT KOP",
                    "per-trap round-trip cost over " +
                        std::to_string(traps) + " traps");

  std::string csv =
      "machine,regions,baseline_cycles,carat_cycles,overhead_cycles,"
      "overhead_pct\n";
  std::printf("%-10s %8s %16s %13s %10s %9s\n", "machine", "regions",
              "baseline_cyc/trap", "carat_cyc/trap", "overhead", "pct");
  for (const auto& machine :
       {kop::sim::MachineModel::R350(), kop::sim::MachineModel::R415()}) {
    for (uint32_t regions : {2u, 16u, 64u}) {
      const Row row = RunMachine(machine, regions, traps);
      const double overhead = row.carat_cycles - row.baseline_cycles;
      const double pct = overhead / row.baseline_cycles * 100.0;
      const char* name = machine.freq_hz > 2.5e9 ? "R350" : "R415";
      std::printf("%-10s %8u %16.1f %13.1f %10.1f %8.2f%%\n", name, regions,
                  row.baseline_cycles, row.carat_cycles, overhead, pct);
      char line[160];
      std::snprintf(line, sizeof(line), "%s,%u,%.1f,%.1f,%.1f,%.2f\n", name,
                    regions, row.baseline_cycles, row.carat_cycles, overhead,
                    pct);
      csv += line;
    }
  }
  std::printf(
      "\n(the trap's ~600-950-cycle hardware entry dominates, so the "
      "~7-guard handler costs 0.5-3%% on the modern machine — but the "
      "old machine pays 6-16%%, and every added region costs more: FPVM "
      "under CARAT KOP wants a small policy or the §3.1 lookup "
      "structures)\n");
  WriteResultsFile("ext2_fpvm.csv", csv);
  return 0;
}
