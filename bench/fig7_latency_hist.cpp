// Figure 7: CARAT KOP effect on packet launch latency (R350, 2 regions,
// 128 B packets). Histogram of cycles spent in sendmsg(); outliers
// (>10M cycles: ring full, descheduled) are excluded from the plot but
// included in the medians, as in the paper. Expected: closely matched
// histograms, medians ~694 (carat) vs ~686 (baseline).
#include <algorithm>
#include <cstdio>

#include "common/experiment.hpp"

int main(int argc, char** argv) {
  using namespace kop::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.packets < 50000) args.packets = 50000;  // histograms need mass
  const auto machine = kop::sim::MachineModel::R350();

  PrintFigureHeader("Figure 7", "CARAT KOP effect on packet launch latency",
                    machine.name + ", 2 regions, 128 B packets, " +
                        std::to_string(args.packets) + " launches");

  constexpr double kOutlierCutoff = 1e7;
  kop::sim::Histogram histograms[2] = {
      kop::sim::Histogram(450, 1250, 32),
      kop::sim::Histogram(450, 1250, 32),
  };
  double medians[2] = {0, 0};
  uint64_t outliers[2] = {0, 0};

  for (Technique technique : {Technique::kBaseline, Technique::kCarat}) {
    RigConfig config;
    config.machine = machine;
    config.technique = technique;
    config.regions = 2;
    config.seed = 41;  // common random numbers
    Rig rig(config);
    std::vector<double> latencies = rig.LatencyTrial(args.packets, 128);
    const int index = technique == Technique::kCarat ? 1 : 0;
    for (double latency : latencies) {
      if (latency > kOutlierCutoff) ++outliers[index];
      histograms[index].Add(latency);  // cutoff handled by overflow bin
    }
    // Medians include the outliers (the paper notes this explicitly).
    std::sort(latencies.begin(), latencies.end());
    medians[index] = latencies[latencies.size() / 2];
  }

  std::string csv = "bin_lo,bin_hi,base_count,carat_count\n";
  std::printf("%-9s %-9s %-12s %s\n", "bin_lo", "bin_hi", "base_count",
              "carat_count");
  for (size_t i = 0; i < histograms[0].bins(); ++i) {
    std::printf("%-9.0f %-9.0f %-12llu %llu\n", histograms[0].bin_lo(i),
                histograms[0].bin_hi(i),
                static_cast<unsigned long long>(histograms[0].bin_count(i)),
                static_cast<unsigned long long>(histograms[1].bin_count(i)));
    char line[96];
    std::snprintf(line, sizeof(line), "%.0f,%.0f,%llu,%llu\n",
                  histograms[0].bin_lo(i), histograms[0].bin_hi(i),
                  static_cast<unsigned long long>(histograms[0].bin_count(i)),
                  static_cast<unsigned long long>(histograms[1].bin_count(i)));
    csv += line;
  }

  std::printf("\nmedian latency baseline: %.0f cycles (paper: 686)\n",
              medians[0]);
  std::printf("median latency carat:    %.0f cycles (paper: 694)\n",
              medians[1]);
  std::printf("outliers excluded from plot: baseline %llu, carat %llu "
              "(>10M cycles when the ring fills)\n",
              static_cast<unsigned long long>(outliers[0]),
              static_cast<unsigned long long>(outliers[1]));
  WriteResultsFile("fig7_latency_hist.csv", csv);
  return 0;
}
