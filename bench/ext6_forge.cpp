// Extension 6: what the forge campaign costs and buys. Two questions:
//
//   1. Parallel scaling. The same seeded campaign runs at --jobs 1 and
//      --jobs 8; the reports must be byte-identical (the serial report
//      is the oracle) and the 8-way leg must actually buy wall-clock
//      throughput. The paper-facing acceptance is >= 5.3x trials/sec at
//      8 hardware threads; hosts with fewer cores cannot express that
//      speedup, so the default gate scales with hardware_concurrency
//      and KOP_EXT6_GATE overrides it outright (same convention as
//      KOP_ABL6_GATE: a loosening knob for noisy shared runners, the
//      built-in default is the local acceptance).
//
//   2. Coverage dispatch cost. The VM's edge hooks are compiled in by
//      default (-DKOP_COVERAGE_ENABLED=ON) but disarmed unless a trial
//      arms a ScopedCoverage sink. This bench drives the forge target
//      module's branchy loop directly and prices the hooks in both
//      states: disarmed (the tax every non-forge workload pays for a
//      coverage-capable build) and armed (what a fuzzing trial pays).
//      Two gates: the virtual clock is the contract — coverage observes
//      the clock and never advances it, so cycles/call must be
//      IDENTICAL between the legs (and identical to a
//      -DKOP_COVERAGE_ENABLED=OFF build of this same bench, which CI
//      cross-checks by diffing the printed cycles) — and the armed
//      wall-time overhead must stay within KOP_EXT6_COV_GATE (default
//      5%). When the build compiles the hooks out, both legs are the
//      same object code and the delta is 0% by construction.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kop/fault/forge.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kir/coverage.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/compiler.hpp"

#include "common/experiment.hpp"

namespace {

using WallClock = std::chrono::steady_clock;
using kop::fault::ForgeConfig;
using kop::fault::ForgeReport;
using kop::fault::PolicyFamily;
using kop::kernel::ExecEngine;
using kop::kernel::Kernel;
using kop::kernel::LoadedModule;
using kop::kernel::ModuleLoader;

double GateEnv(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double value = std::atof(env);
    if (value > 0.0) return value;
  }
  return fallback;
}

double Seconds(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

/// One guarded testbed around the forge target module, bytecode engine
/// (the only engine with coverage hooks).
struct DispatchRig {
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<kop::policy::PolicyModule> policy;
  std::unique_ptr<ModuleLoader> loader;
  LoadedModule* module = nullptr;

  bool Build() {
    kernel = std::make_unique<Kernel>();
    auto inserted = kop::policy::PolicyModule::Insert(
        kernel.get(), nullptr, kop::policy::PolicyMode::kDefaultAllow);
    if (!inserted.ok()) return false;
    policy = std::move(*inserted);
    kop::signing::Keyring keyring;
    keyring.Trust(kop::signing::SigningKey::DevelopmentKey());
    loader = std::make_unique<ModuleLoader>(kernel.get(), std::move(keyring));
    loader->set_engine(ExecEngine::kBytecode);
    auto compiled =
        kop::transform::CompileModuleText(kop::fault::ForgeTargetSource());
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   compiled.status().ToString().c_str());
      return false;
    }
    auto loaded = loader->Insmod(kop::signing::SignModule(
        compiled->text, compiled->attestation,
        kop::signing::SigningKey::DevelopmentKey()));
    if (!loaded.ok()) {
      std::fprintf(stderr, "insmod failed: %s\n",
                   loaded.status().ToString().c_str());
      return false;
    }
    module = *loaded;
    return module->Call("fg_init", {}).ok();
  }

  // The branchy loop: fg_mix takes 8 iterations with a data-dependent
  // branch each, so every call crosses ~20 control-flow edges — the
  // densest coverage traffic the target offers.
  bool Calls(uint64_t calls) {
    for (uint64_t i = 0; i < calls; ++i) {
      if (!module->Call("fg_mix", {i * 3 + 1, 0xa5}).ok()) return false;
    }
    return true;
  }
};

struct DispatchLeg {
  double wall_ns_per_call = 0.0;
  double cycles_per_call = 0.0;
  bool ok = false;
};

DispatchLeg MeasureDispatch(kop::kir::CoverageMap* sink, uint64_t calls,
                            int rounds) {
  DispatchLeg leg;
  DispatchRig rig;
  if (!rig.Build()) return leg;
  if (!rig.Calls(calls / 4 + 1)) return leg;  // warmup
  kop::kir::ScopedCoverage arm(sink);
  // Cycles from round 1 (deterministic, directly comparable across
  // legs and builds); later rounds only chase the best wall time.
  for (int r = 0; r < rounds; ++r) {
    const double cycles_before = rig.kernel->clock().MaxCycles();
    const auto start = WallClock::now();
    if (!rig.Calls(calls)) return leg;
    const double wall_ns = Seconds(start) * 1e9 / calls;
    if (!leg.ok) {
      leg.cycles_per_call =
          (rig.kernel->clock().MaxCycles() - cycles_before) / calls;
      leg.wall_ns_per_call = wall_ns;
      leg.ok = true;
    } else {
      leg.wall_ns_per_call = std::min(leg.wall_ns_per_call, wall_ns);
    }
  }
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t trials =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 192;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 3;
  const uint64_t calls = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4000;
  bool failed = false;
  std::string csv = "leg,jobs,trials_per_sec,speedup,identical\n";

  // ---- Leg 1: campaign throughput, serial vs 8-way -------------------
  ForgeConfig config;
  config.seed = 7;
  config.trials = trials;
  config.policy = PolicyFamily::kHardened;
  config.minimize = false;

  std::printf("%-10s %5s %16s %9s %10s\n", "leg", "jobs", "trials_per_sec",
              "speedup", "identical");
  double serial_tps = 0.0;
  std::string oracle;
  for (const uint32_t jobs : {1u, 8u}) {
    config.jobs = jobs;
    double best = 0.0;
    std::string json;
    for (int r = 0; r < rounds; ++r) {
      const auto start = WallClock::now();
      ForgeReport report = RunForge(config);
      const double tps = trials / Seconds(start);
      best = std::max(best, tps);
      json = report.ToJson();
    }
    const bool identical = jobs == 1 ? true : json == oracle;
    if (jobs == 1) {
      oracle = json;
      serial_tps = best;
    } else if (!identical) {
      std::fprintf(stderr,
                   "ACCEPTANCE MISS: jobs=8 report diverged from the serial "
                   "oracle\n");
      failed = true;
    }
    const double speedup = jobs == 1 ? 1.0 : best / serial_tps;
    std::printf("%-10s %5u %16.1f %8.2fx %10s\n", "campaign", jobs, best,
                speedup, identical ? "yes" : "NO");
    char line[128];
    std::snprintf(line, sizeof(line), "campaign,%u,%.1f,%.3f,%d\n", jobs, best,
                  speedup, identical ? 1 : 0);
    csv += line;
    if (jobs == 8) {
      // Paper-facing acceptance: >= 5.3x at 8 hardware threads. Hosts
      // with fewer cores cannot express it; scale the default down to
      // two-thirds of the parallelism that physically exists (floor
      // 0.5: 8 workers on one core must at least not collapse).
      const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
      const double scaled =
          hc >= 8 ? 5.3 : std::max(0.5, 0.66 * static_cast<double>(hc));
      const double gate = GateEnv("KOP_EXT6_GATE", scaled);
      if (speedup < gate) {
        std::fprintf(stderr,
                     "ACCEPTANCE MISS: 8-way speedup %.2fx < %.2fx gate "
                     "(%u hardware threads)\n",
                     speedup, gate, hc);
        failed = true;
      }
    }
  }

  // ---- Leg 2: coverage dispatch cost, disarmed vs armed --------------
  kop::kir::CoverageMap map;
  const DispatchLeg disarmed = MeasureDispatch(nullptr, calls, rounds);
  const DispatchLeg armed = MeasureDispatch(&map, calls, rounds);
  if (!disarmed.ok || !armed.ok) {
    std::fprintf(stderr, "dispatch measurement failed\n");
    return 1;
  }
  const double overhead_pct =
      (armed.wall_ns_per_call - disarmed.wall_ns_per_call) /
      disarmed.wall_ns_per_call * 100.0;
  std::printf("\n%-10s %16s %16s %13s\n", "coverage", "wall_ns_call",
              "cycles_call", "overhead_pct");
  std::printf("%-10s %16.1f %16.1f %+12.2f%%\n", "disarmed",
              disarmed.wall_ns_per_call, disarmed.cycles_per_call, 0.0);
  std::printf("%-10s %16.1f %16.1f %+12.2f%%\n", "armed",
              armed.wall_ns_per_call, armed.cycles_per_call, overhead_pct);
  csv += "leg,state,wall_ns_per_call,cycles_per_call,overhead_pct\n";
  char line[160];
  std::snprintf(line, sizeof(line), "coverage,disarmed,%.1f,%.1f,0.000\n",
                disarmed.wall_ns_per_call, disarmed.cycles_per_call);
  csv += line;
  std::snprintf(line, sizeof(line), "coverage,armed,%.1f,%.1f,%.3f\n",
                armed.wall_ns_per_call, armed.cycles_per_call, overhead_pct);
  csv += line;

  // The virtual clock is the contract: hooks observe it, never charge.
  if (disarmed.cycles_per_call != armed.cycles_per_call) {
    std::fprintf(stderr,
                 "ACCEPTANCE MISS: coverage hooks moved the virtual clock "
                 "(%.1f vs %.1f cycles/call)\n",
                 disarmed.cycles_per_call, armed.cycles_per_call);
    failed = true;
  }
  const double cov_gate = GateEnv("KOP_EXT6_COV_GATE", 5.0);
  if (kop::kir::CoverageCompiledIn() && overhead_pct > cov_gate) {
    std::fprintf(stderr,
                 "ACCEPTANCE MISS: armed coverage overhead %.2f%% exceeds "
                 "the %.1f%% budget\n",
                 overhead_pct, cov_gate);
    failed = true;
  }
#if !KOP_COVERAGE_ENABLED
  std::printf("(KOP_COVERAGE_ENABLED=OFF: both legs are the same object "
              "code)\n");
#endif

  kop::bench::WriteResultsFile("ext6_forge.csv", csv);
  return failed ? 1 : 0;
}
