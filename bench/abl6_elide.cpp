// Ablation 6: proof-driven guard elision + inline fast-path guards.
// PR goal: close the guarded/unguarded gap on the knic xmit hot path to
// <= 1.3x on the bytecode engine (from ~2.45x with every guard taking
// the out-of-line external-call path).
//
// Two parts come out of one binary:
//
//  - xmit ratio: the abl4 harness (direct-wired engines over a shared
//    kernel/NIC/policy floor) extended with the inline-guard fast path:
//    the resolver forwards PinGuardFrame / FastGuard / FastGuardRange to
//    the real PolicyEngine exactly the way the module loader's resolver
//    does, so recognized guard calls run as a pinned-frame range check
//    inside the engine and only deopts pay the external-call slow path.
//    Variants: {interp, bytecode} x {unguarded, guarded KOP_ELIDE=off,
//    guarded KOP_ELIDE=on}. The acceptance ratio is guarded-elide /
//    unguarded per engine.
//
//  - smp sweep: the ext4 harness (insmod + per-CPU contexts) on a
//    guard-dense kernel whose duplicate same-base loads the elision pass
//    widens into covers, at 1 and 8 CPUs, elision on/off. Guards per
//    kilocycle on the virtual clock is the contract number; the elided
//    counter in the CSV proves subsumed members stay accounted (they
//    fold across CPUs like every other stat).
//
// The flight recorder stays at its always-on default for the smp sweep
// (that is the shipping configuration). The xmit ratio is measured
// spans-off: ext5_flight prices the recorder separately, and the ratio
// is about guard cost, not tracing cost — both numerator and denominator
// shed the same per-span work.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kir/bytecode.hpp"
#include "kop/kir/engine.hpp"
#include "kop/kir/interp.hpp"
#include "kop/kir/parser.hpp"
#include "kop/kir/vm.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/engine.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/signing/signer.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/smp/executor.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/util/carat_abi.hpp"

#include "common/experiment.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using kop::kernel::ExecEngine;
using kop::kernel::Kernel;
using kop::kernel::LoadedModule;
using kop::kernel::ModuleLoader;

// ------------------------------------------------------------ xmit part --

/// kir memory over the kernel address space, charging the machine model
/// like the module loader's adapter does (same as abl4).
class KernelMemory final : public kop::kir::MemoryInterface {
 public:
  explicit KernelMemory(Kernel* kernel) : kernel_(kernel) {}

  kop::Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_read_cycles);
    switch (size) {
      case 1: {
        auto v = kernel_->mem().Read8(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 2: {
        auto v = kernel_->mem().Read16(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 4: {
        auto v = kernel_->mem().Read32(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      default:
        return kernel_->mem().Read64(addr);
    }
  }

  kop::Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_write_cycles);
    switch (size) {
      case 1:
        return kernel_->mem().Write8(addr, static_cast<uint8_t>(value));
      case 2:
        return kernel_->mem().Write16(addr, static_cast<uint16_t>(value));
      case 4:
        return kernel_->mem().Write32(addr, static_cast<uint32_t>(value));
      default:
        return kernel_->mem().Write64(addr, value);
    }
  }

 private:
  Kernel* kernel_;
};

/// Guard calls go to the real policy engine. Unlike abl4's resolver this
/// one also wires the inline fast path: PinGuardFrame / FastGuard /
/// FastGuardRange forward straight to the engine (PolicyEngine implements
/// GuardFastOps), so the engines execute kGuardInline / kGuardRange as
/// pinned-frame checks and only deopts land in CallExternal/CallBound.
class FastGuardResolver final : public kop::kir::ExternalResolver {
 public:
  explicit FastGuardResolver(kop::policy::PolicyEngine* engine)
      : engine_(engine) {}

  kop::Result<uint64_t> CallExternal(const std::string& name,
                                     const std::vector<uint64_t>& args)
      override {
    return CallExternal(name, args, 0);
  }

  kop::Result<uint64_t> CallExternal(const std::string& name,
                                     const std::vector<uint64_t>& args,
                                     uint64_t /*call_ordinal*/) override {
    if (name == kop::kCaratGuardSymbol && args.size() == 3) {
      return uint64_t{engine_->Guard(args[0], args[1], args[2]) ? 1u : 0u};
    }
    if (name == kop::kCaratGuardRangeSymbol && args.size() == 4) {
      return uint64_t{
          engine_->GuardRange(args[0], args[1], args[2], args[3]) ? 1u : 0u};
    }
    if (name == kop::kCaratIntrinsicGuardSymbol && args.size() == 1) {
      return uint64_t{engine_->IntrinsicGuard(args[0]) ? 1u : 0u};
    }
    return kop::NotFound("undefined symbol in bench harness: " + name);
  }

  std::optional<uint64_t> BindExternal(const std::string& name) override {
    if (name == kop::kCaratGuardSymbol) return uint64_t{0};
    if (name == kop::kCaratIntrinsicGuardSymbol) return uint64_t{1};
    if (name == kop::kCaratGuardRangeSymbol) return uint64_t{2};
    return std::nullopt;
  }

  kop::Result<uint64_t> CallBound(uint64_t handle,
                                  const std::vector<uint64_t>& args,
                                  uint64_t /*call_ordinal*/) override {
    if (handle == 0 && args.size() == 3) {
      return uint64_t{engine_->Guard(args[0], args[1], args[2]) ? 1u : 0u};
    }
    if (handle == 1 && args.size() == 1) {
      return uint64_t{engine_->IntrinsicGuard(args[0]) ? 1u : 0u};
    }
    if (handle == 2 && args.size() == 4) {
      return uint64_t{
          engine_->GuardRange(args[0], args[1], args[2], args[3]) ? 1u : 0u};
    }
    return kop::Internal("bad bound handle in bench harness");
  }

  bool PinGuardFrame() override { return engine_->PinFrame(); }
  void UnpinGuardFrame() override { engine_->UnpinFrame(); }
  bool FastGuard(uint64_t addr, uint64_t size, uint64_t flags,
                 uint64_t /*call_ordinal*/) override {
    return engine_->FastGuard(addr, size, flags, 0);
  }
  bool FastGuardRange(uint64_t addr, uint64_t size, uint64_t flags,
                      uint64_t elided, uint64_t /*call_ordinal*/) override {
    return engine_->FastGuardRange(addr, size, flags, elided, 0);
  }

 private:
  kop::policy::PolicyEngine* engine_;
};

/// One engine wired to its own kernel + device + policy (same layout as
/// abl4's harness; kept alive across interleaved timing rounds).
struct XmitHarness {
  const char* label;
  bool bytecode;
  bool guards;
  bool elide;

  std::unique_ptr<kop::kir::Module> module{};
  std::unique_ptr<Kernel> kernel{};
  std::unique_ptr<kop::policy::PolicyEngine> policy{};
  std::unique_ptr<kop::nic::CountingSink> sink{};
  std::unique_ptr<kop::nic::E1000Device> device{};
  std::unique_ptr<KernelMemory> memory{};
  std::unique_ptr<FastGuardResolver> resolver{};
  std::unique_ptr<kop::kir::ExecutionEngine> engine{};

  double best_ns = 0.0;

  void Build(const std::string& text) {
    auto parsed = kop::kir::ParseModule(text);
    if (!parsed.ok()) std::abort();
    module = std::move(*parsed);

    kernel = std::make_unique<Kernel>();
    policy = std::make_unique<kop::policy::PolicyEngine>(
        kernel.get(), std::make_unique<kop::policy::RegionTable64>(),
        kop::policy::PolicyMode::kDefaultAllow);
    sink = std::make_unique<kop::nic::CountingSink>();
    device =
        std::make_unique<kop::nic::E1000Device>(&kernel->mem(), sink.get());
    if (!device->MapAt(kop::kernel::kVmallocBase).ok()) std::abort();

    std::unordered_map<std::string, uint64_t> globals;
    for (const auto& global : module->globals()) {
      auto addr = kernel->module_area().Kmalloc(
          std::max<uint64_t>(global->size_bytes(), 8));
      if (!addr.ok()) std::abort();
      globals[global->name()] = *addr;
    }
    auto stack = kernel->module_area().Kmalloc(64 * 1024);
    if (!stack.ok()) std::abort();
    kop::kir::InterpConfig config;
    config.stack_base = *stack;
    config.stack_size = 64 * 1024;
    config.max_steps = ~uint64_t{0};

    memory = std::make_unique<KernelMemory>(kernel.get());
    resolver = std::make_unique<FastGuardResolver>(policy.get());
    if (bytecode) {
      auto compiled = kop::kir::CompileToBytecode(*module);
      if (!compiled.ok()) std::abort();
      auto vm = kop::kir::VM::Create(std::move(*compiled), *memory, *resolver,
                                     globals, config);
      if (!vm.ok()) std::abort();
      engine = std::move(*vm);
    } else {
      engine = std::make_unique<kop::kir::Interpreter>(
          *module, *memory, *resolver, globals, config);
    }
  }

  double TimeCall(const std::string& fn, const std::vector<uint64_t>& args,
                  uint64_t calls) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < calls; ++i) (void)engine->Call(fn, args);
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  }

  void KeepBest(double ns) {
    best_ns = best_ns == 0.0 ? ns : std::min(best_ns, ns);
  }
};

std::string CompileKnic(bool guards, bool elide) {
  kop::transform::CompileOptions options;
  options.inject_guards = guards;
  options.elide_guards = elide;
  auto compiled =
      kop::transform::CompileModuleText(kop::kirmods::KnicSource(), options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n", compiled.status().ToString().c_str());
    std::abort();
  }
  return compiled->text;
}

// ------------------------------------------------------------- smp part --

/// Guard-dense kernel with a same-block duplicate-load cluster: the
/// elision pass widens the two %addr load guards into one covering
/// carat_guard_range (elided = 1), so the elide leg runs 2 policy checks
/// per iteration where the no-elide leg runs 3, and the subsumed member
/// lands in the elided counter instead of vanishing.
const char* kSmpSource = R"(module "abl6_smp"

func @pump(ptr %addr, i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %a = load i64, %addr
  %b = load i64, %addr
  %v = add i64 %a, %b
  %v1 = xor i64 %v, %i
  store i64 %v1, %addr
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret i64 %i
}
)";

constexpr uint32_t kMaxCpus = 8;
constexpr uint64_t kStripeBytes = 512;

struct SmpRig {
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<kop::policy::PolicyModule> policy;
  std::unique_ptr<ModuleLoader> loader;
  LoadedModule* module = nullptr;
  uint64_t stripes[kMaxCpus] = {};

  bool Build(ExecEngine engine, uint32_t cpus,
             const kop::signing::SignedModule& image) {
    kernel = std::make_unique<Kernel>();
    auto inserted = kop::policy::PolicyModule::Insert(
        kernel.get(), nullptr, kop::policy::PolicyMode::kDefaultAllow);
    if (!inserted.ok()) return false;
    policy = std::move(*inserted);
    for (uint32_t cpu = 0; cpu < kMaxCpus; ++cpu) {
      auto addr = kernel->heap().Kmalloc(kStripeBytes, 64);
      if (!addr.ok()) return false;
      stripes[cpu] = *addr;
      if (!policy->engine()
               .store()
               .Add({*addr, kStripeBytes, kop::policy::kProtRW})
               .ok()) {
        return false;
      }
    }
    kop::signing::Keyring keyring;
    keyring.Trust(kop::signing::SigningKey::DevelopmentKey());
    loader = std::make_unique<ModuleLoader>(kernel.get(), std::move(keyring));
    loader->set_engine(engine);
    auto loaded = loader->Insmod(image);
    if (!loaded.ok()) {
      std::fprintf(stderr, "insmod failed: %s\n",
                   loaded.status().ToString().c_str());
      return false;
    }
    module = *loaded;
    if (cpus > 1 && !loader->PrepareCpus(cpus).ok()) return false;
    kop::trace::GlobalTracer().ring().SetShards(cpus);
    return true;
  }
};

struct SmpMeasurement {
  uint64_t guards = 0;
  uint64_t elided = 0;
  double max_cycles = 0;
  double wall_ns = 0;

  double GuardsPerKcycle() const {
    // Covers stand in for their subsumed members: charge them to the
    // throughput numerator so elide/no-elide move the same access count.
    return max_cycles > 0 ? (guards + elided) / max_cycles * 1000.0 : 0.0;
  }
};

bool RunSmpCalls(LoadedModule* module, uint64_t stripe, uint64_t calls,
                 uint64_t iters) {
  for (uint64_t c = 0; c < calls; ++c) {
    auto result = module->Call("pump", {stripe, iters});
    if (!result.ok()) {
      std::fprintf(stderr, "pump failed: %s\n",
                   result.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

SmpMeasurement MeasureSmp(SmpRig& rig, uint32_t cpus, uint64_t calls,
                          uint64_t iters) {
  auto& engine = rig.policy->engine();
  auto& clock = rig.kernel->clock();
  const kop::policy::GuardStats before = engine.stats();
  const double max_before = clock.MaxCycles();
  const auto start = Clock::now();
  std::vector<bool> ok(cpus, false);
  kop::smp::RunOnCpus(cpus, [&](uint32_t cpu) {
    ok[cpu] = RunSmpCalls(rig.module, rig.stripes[cpu], calls, iters);
  });
  SmpMeasurement m;
  m.wall_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  for (uint32_t cpu = 0; cpu < cpus; ++cpu) {
    if (!ok[cpu]) return m;  // guards = 0 marks the failure
  }
  const kop::policy::GuardStats after = engine.stats();
  m.guards = after.guard_calls - before.guard_calls;
  m.elided = after.elided - before.elided;
  m.max_cycles = clock.MaxCycles() - max_before;
  return m;
}

kop::signing::SignedModule SignSmp(bool elide) {
  kop::transform::CompileOptions options;
  options.elide_guards = elide;
  auto compiled = kop::transform::CompileModuleText(kSmpSource, options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n", compiled.status().ToString().c_str());
    std::abort();
  }
  return kop::signing::SignModule(compiled->text, compiled->attestation,
                                  kop::signing::SigningKey::DevelopmentKey());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint64_t sends = std::clamp<uint64_t>(args.packets / 4, 1000, 10000);
  // Min-of-rounds estimator: each extra round can only lower the kept
  // time, so more rounds tighten the ratio against co-tenant noise.
  const int rounds = 25;

  PrintFigureHeader(
      "Ablation 6",
      "Guard elision + inline fast-path guards vs the unguarded floor",
      "kop_knic xmit, " + std::to_string(sends) + " sends per round, " +
          std::to_string(rounds) + " interleaved rounds; smp sweep at 1/8 "
          "CPUs on the virtual clock");

  // ------------------------------------------------------- xmit ratio --
  kop::trace::GlobalSpans().SetEnabled(false);
  XmitHarness variants[] = {
      {"interp-unguarded", false, false, false},
      {"interp-noelide", false, true, false},
      {"interp-elide", false, true, true},
      {"bytecode-unguarded", true, false, false},
      {"bytecode-noelide", true, true, false},
      {"bytecode-elide", true, true, true},
  };
  const uint64_t mmio = kop::kernel::kVmallocBase;
  for (XmitHarness& h : variants) {
    h.Build(CompileKnic(h.guards, h.elide));
    (void)h.engine->Call("knic_init", {mmio});
    (void)h.engine->Call("knic_fill", {64, 0x20});
    (void)h.TimeCall("knic_send", {mmio, 64}, sends / 4 + 1);  // warmup
  }
  // Interleaved rounds, min kept: a noisy co-tenant burst lands on every
  // variant equally instead of skewing one column.
  for (int r = 0; r < rounds; ++r) {
    for (XmitHarness& h : variants) {
      h.KeepBest(h.TimeCall("knic_send", {mmio, 64}, sends));
    }
  }
  // Correctness anchor: every variant moved the same frames.
  uint64_t sent0 = 0;
  for (XmitHarness& h : variants) {
    auto result = h.engine->Call("knic_sent_hw", {mmio});
    const uint64_t sent = result.ok() ? *result : 0;
    if (sent0 == 0) sent0 = sent;
    if (sent != sent0 || h.sink->packets() != variants[0].sink->packets()) {
      std::fprintf(stderr, "variant %s changed module behaviour!\n", h.label);
      return 1;
    }
  }
  kop::trace::GlobalSpans().SetEnabled(true);

  std::printf("%-20s %14s %12s %12s\n", "variant", "ns_per_send",
              "guard_calls", "elided");
  std::string csv =
      "workload,engine,elide,guards,cpus,unit,value,guard_calls,elided\n";
  for (XmitHarness& h : variants) {
    const double ns_per_send = h.best_ns / static_cast<double>(sends);
    const auto stats = h.policy->stats();
    std::printf("%-20s %14.1f %12llu %12llu\n", h.label, ns_per_send,
                static_cast<unsigned long long>(stats.guard_calls),
                static_cast<unsigned long long>(stats.elided));
    char line[192];
    std::snprintf(line, sizeof(line), "xmit,%s,%s,%s,1,ns_per_send,%.1f,%llu,%llu\n",
                  h.bytecode ? "bytecode" : "interp", h.elide ? "on" : "off",
                  h.guards ? "on" : "off", ns_per_send,
                  static_cast<unsigned long long>(stats.guard_calls),
                  static_cast<unsigned long long>(stats.elided));
    csv += line;
  }

  const double interp_ratio_off = variants[1].best_ns / variants[0].best_ns;
  const double interp_ratio_on = variants[2].best_ns / variants[0].best_ns;
  const double bytecode_ratio_off = variants[4].best_ns / variants[3].best_ns;
  const double bytecode_ratio_on = variants[5].best_ns / variants[3].best_ns;
  std::printf(
      "\nguarded/unguarded xmit ratio: interp %.3f (elide off) -> %.3f "
      "(on), bytecode %.3f (elide off) -> %.3f (on)\n",
      interp_ratio_off, interp_ratio_on, bytecode_ratio_off,
      bytecode_ratio_on);

  // -------------------------------------------------------- smp sweep --
  const uint64_t calls = 200;
  const uint64_t iters = 500;
  const int smp_rounds = 3;
  const ExecEngine engines[] = {ExecEngine::kBytecode, ExecEngine::kInterp};
  const uint32_t cpu_points[] = {1, 8};

  std::printf("\n%-9s %-6s %4s %12s %10s %16s\n", "engine", "elide", "cpus",
              "guards", "elided", "accesses_per_kc");
  for (ExecEngine engine : engines) {
    const std::string engine_str(kop::kernel::ExecEngineName(engine));
    for (int elide = 0; elide < 2; ++elide) {
      const auto image = SignSmp(elide != 0);
      for (uint32_t cpus : cpu_points) {
        SmpRig rig;
        if (!rig.Build(engine, cpus, image)) return 1;
        kop::smp::RunOnCpus(cpus, [&](uint32_t cpu) {
          (void)RunSmpCalls(rig.module, rig.stripes[cpu], calls / 4 + 1,
                            iters);
        });
        SmpMeasurement best;
        for (int r = 0; r < smp_rounds; ++r) {
          SmpMeasurement m = MeasureSmp(rig, cpus, calls, iters);
          if (m.guards == 0) return 1;
          if (best.guards == 0 || m.wall_ns < best.wall_ns) best = m;
        }
        std::printf("%-9s %-6s %4u %12llu %10llu %16.3f\n",
                    engine_str.c_str(), elide ? "on" : "off", cpus,
                    static_cast<unsigned long long>(best.guards),
                    static_cast<unsigned long long>(best.elided),
                    best.GuardsPerKcycle());
        char line[192];
        std::snprintf(line, sizeof(line),
                      "smp,%s,%s,on,%u,accesses_per_kcycle,%.3f,%llu,%llu\n",
                      engine_str.c_str(), elide ? "on" : "off", cpus,
                      best.GuardsPerKcycle(),
                      static_cast<unsigned long long>(best.guards),
                      static_cast<unsigned long long>(best.elided));
        csv += line;
      }
    }
  }

  char line[256];
  std::snprintf(line, sizeof(line),
                "# ratio_interp_noelide,%.3f\n# ratio_interp_elide,%.3f\n"
                "# ratio_bytecode_noelide,%.3f\n# ratio_bytecode_elide,%.3f\n",
                interp_ratio_off, interp_ratio_on, bytecode_ratio_off,
                bytecode_ratio_on);
  csv += line;
  WriteResultsFile("abl6_elide.csv", csv);

  // Acceptance: bytecode guarded-with-elision within 1.3x of unguarded.
  // KOP_ABL6_GATE loosens the wall-clock gate for noisy shared runners
  // (CI smoke); the default 1.3 is the paper-facing local acceptance.
  double gate = 1.3;
  if (const char* env = std::getenv("KOP_ABL6_GATE")) {
    gate = std::atof(env);
    if (gate <= 0.0) gate = 1.3;
  }
  if (bytecode_ratio_on > gate) {
    std::fprintf(stderr,
                 "ACCEPTANCE MISS: bytecode guarded/unguarded ratio %.3f > "
                 "%.2f\n",
                 bytecode_ratio_on, gate);
    return 1;
  }
  return 0;
}
