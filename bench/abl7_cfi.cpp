// Ablation 7: the price of indirect-call gating (kop::cfi).
// PR goal: CFI checks on the guarded knic xmit hot path cost <= 5% on
// the bytecode engine versus the same guarded module compiled with
// KOP_CFI=off.
//
// Harness shape follows abl6's xmit half: direct-wired engines over a
// shared kernel/policy floor, resolver forwarding both the guard fast
// ops and the CFI fast op (FastCfiCheck) to the real PolicyEngine, so a
// recognized kCfiCheck runs as a pinned-frame binary search and only
// deopts pay the external-call slow path — exactly the module loader's
// wiring. The workload is an indirect-dispatch transmit: every xmit
// resolves its op handler through a vtable (one icall, one CFI check
// when gating is on) and the handler fills the tx buffer with a guarded
// store loop (~64 guards). That 1:64 check-to-guard density is the knic
// shape the acceptance bound prices.
//
// Variants: {interp, bytecode} x {cfi-off, cfi-on}, guards on in all
// four. The acceptance ratio is bytecode cfi-on / cfi-off.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kir/bytecode.hpp"
#include "kop/kir/engine.hpp"
#include "kop/kir/interp.hpp"
#include "kop/kir/module.hpp"
#include "kop/kir/parser.hpp"
#include "kop/kir/vm.hpp"
#include "kop/policy/engine.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/trace/span.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/util/carat_abi.hpp"

#include "common/experiment.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using kop::kernel::Kernel;

/// kir memory over the kernel address space, charging the machine model
/// like the module loader's adapter does (same as abl4/abl6).
class KernelMemory final : public kop::kir::MemoryInterface {
 public:
  explicit KernelMemory(Kernel* kernel) : kernel_(kernel) {}

  kop::Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_read_cycles);
    switch (size) {
      case 1: {
        auto v = kernel_->mem().Read8(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 2: {
        auto v = kernel_->mem().Read16(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 4: {
        auto v = kernel_->mem().Read32(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      default:
        return kernel_->mem().Read64(addr);
    }
  }

  kop::Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_write_cycles);
    switch (size) {
      case 1:
        return kernel_->mem().Write8(addr, static_cast<uint8_t>(value));
      case 2:
        return kernel_->mem().Write16(addr, static_cast<uint16_t>(value));
      case 4:
        return kernel_->mem().Write32(addr, static_cast<uint32_t>(value));
      default:
        return kernel_->mem().Write64(addr, value);
    }
  }

 private:
  Kernel* kernel_;
};

/// Guard and CFI calls go to the real policy engine, fast paths
/// included: PinGuardFrame / FastGuard / FastGuardRange / FastCfiCheck
/// forward straight to the engine the way the module loader's resolver
/// does, so kCfiCheck resolves as a pinned-frame membership test and
/// only deopts land in CallExternal/CallBound.
class CfiGuardResolver final : public kop::kir::ExternalResolver {
 public:
  explicit CfiGuardResolver(kop::policy::PolicyEngine* engine)
      : engine_(engine) {}

  kop::Result<uint64_t> CallExternal(const std::string& name,
                                     const std::vector<uint64_t>& args)
      override {
    return CallExternal(name, args, 0);
  }

  kop::Result<uint64_t> CallExternal(const std::string& name,
                                     const std::vector<uint64_t>& args,
                                     uint64_t /*call_ordinal*/) override {
    if (name == kop::kCaratGuardSymbol && args.size() == 3) {
      return uint64_t{engine_->Guard(args[0], args[1], args[2]) ? 1u : 0u};
    }
    if (name == kop::kCaratGuardRangeSymbol && args.size() == 4) {
      return uint64_t{
          engine_->GuardRange(args[0], args[1], args[2], args[3]) ? 1u : 0u};
    }
    if (name == kop::kCaratIntrinsicGuardSymbol && args.size() == 1) {
      return uint64_t{engine_->IntrinsicGuard(args[0]) ? 1u : 0u};
    }
    if (name == kop::kCaratCfiCheckSymbol && args.size() == 2) {
      return uint64_t{engine_->CfiCheck(args[0], args[1]) ? 1u : 0u};
    }
    return kop::NotFound("undefined symbol in bench harness: " + name);
  }

  std::optional<uint64_t> BindExternal(const std::string& name) override {
    if (name == kop::kCaratGuardSymbol) return uint64_t{0};
    if (name == kop::kCaratIntrinsicGuardSymbol) return uint64_t{1};
    if (name == kop::kCaratGuardRangeSymbol) return uint64_t{2};
    if (name == kop::kCaratCfiCheckSymbol) return uint64_t{3};
    return std::nullopt;
  }

  kop::Result<uint64_t> CallBound(uint64_t handle,
                                  const std::vector<uint64_t>& args,
                                  uint64_t /*call_ordinal*/) override {
    if (handle == 0 && args.size() == 3) {
      return uint64_t{engine_->Guard(args[0], args[1], args[2]) ? 1u : 0u};
    }
    if (handle == 1 && args.size() == 1) {
      return uint64_t{engine_->IntrinsicGuard(args[0]) ? 1u : 0u};
    }
    if (handle == 2 && args.size() == 4) {
      return uint64_t{
          engine_->GuardRange(args[0], args[1], args[2], args[3]) ? 1u : 0u};
    }
    if (handle == 3 && args.size() == 2) {
      return uint64_t{engine_->CfiCheck(args[0], args[1]) ? 1u : 0u};
    }
    return kop::Internal("bad bound handle in bench harness");
  }

  bool PinGuardFrame() override { return engine_->PinFrame(); }
  void UnpinGuardFrame() override { engine_->UnpinFrame(); }
  bool FastGuard(uint64_t addr, uint64_t size, uint64_t flags,
                 uint64_t /*call_ordinal*/) override {
    return engine_->FastGuard(addr, size, flags, 0);
  }
  bool FastGuardRange(uint64_t addr, uint64_t size, uint64_t flags,
                      uint64_t elided, uint64_t /*call_ordinal*/) override {
    return engine_->FastGuardRange(addr, size, flags, elided, 0);
  }
  bool FastCfiCheck(uint64_t target, uint64_t set_id,
                    uint64_t /*call_ordinal*/) override {
    return engine_->FastCfiCheck(target, set_id, 0);
  }

 private:
  kop::policy::PolicyEngine* engine_;
};

/// Indirect-dispatch transmit: xmit resolves the op handler through a
/// vtable (the icall the CFI pass gates) and @op_copy fills the tx
/// buffer with a byte-store loop the guard pass instruments. @op_drop
/// is address-taken too, so the legal-target set at the dispatch has two
/// members and membership is a real search, not a constant fold.
const char* kKnicSource = R"(module "abl7_knic"

global @vtable size 16 rw
global @txbuf size 256 rw
global @sent size 8 rw

func @op_copy(i64 %len, i64 %pattern) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %len
  br %done, out, body
body:
  %p = gep @txbuf, i64 %i, 1, 0
  %v0 = add i64 %i, %pattern
  %v = trunc i64 %v0 to i8
  store i8 %v, %p
  %i1 = add i64 %i, 1
  jmp loop
out:
  %s = load i64, @sent
  %s1 = add i64 %s, 1
  store i64 %s1, @sent
  ret i64 %len
}

func @op_drop(i64 %len, i64 %pattern) -> i64 {
entry:
  ret i64 0
}

func @knic_init() -> i64 {
entry:
  %f0 = funcaddr @op_copy
  %i0 = ptrtoint ptr %f0 to i64
  %p0 = gep @vtable, i64 0, 8, 0
  store i64 %i0, %p0
  %f1 = funcaddr @op_drop
  %i1 = ptrtoint ptr %f1 to i64
  %p1 = gep @vtable, i64 1, 8, 0
  store i64 %i1, %p1
  store i64 0, @sent
  ret i64 2
}

func @knic_xmit(i64 %op, i64 %len, i64 %pattern) -> i64 {
entry:
  %slot = gep @vtable, i64 %op, 8, 0
  %raw = load i64, %slot
  %f = inttoptr i64 %raw to ptr
  %r = icall i64 %f(i64 %len, i64 %pattern)
  ret i64 %r
}

func @knic_sent() -> i64 {
entry:
  %v = load i64, @sent
  ret i64 %v
}
)";

/// One engine wired to its own kernel + policy (kept alive across
/// interleaved timing rounds). CFI-on legs register the attested
/// legal-target sets with the engine the way insmod does: member names
/// resolve to simulated function addresses through the module's own
/// function table.
struct XmitHarness {
  const char* label;
  bool bytecode;
  bool cfi;

  std::unique_ptr<kop::kir::Module> module{};
  std::unique_ptr<Kernel> kernel{};
  std::unique_ptr<kop::policy::PolicyEngine> policy{};
  std::unique_ptr<KernelMemory> memory{};
  std::unique_ptr<CfiGuardResolver> resolver{};
  std::unique_ptr<kop::kir::ExecutionEngine> engine{};

  double best_ns = 0.0;

  void Build() {
    kop::transform::CompileOptions options;
    options.inject_cfi_checks = cfi;
    auto compiled = kop::transform::CompileModuleText(kKnicSource, options);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile: %s\n",
                   compiled.status().ToString().c_str());
      std::abort();
    }
    auto parsed = kop::kir::ParseModule(compiled->text);
    if (!parsed.ok()) std::abort();
    module = std::move(*parsed);

    kernel = std::make_unique<Kernel>();
    policy = std::make_unique<kop::policy::PolicyEngine>(
        kernel.get(), std::make_unique<kop::policy::RegionTable64>(),
        kop::policy::PolicyMode::kDefaultAllow);

    if (cfi) {
      // Insmod's registration step, inlined: attested member names ->
      // simulated function addresses -> engine-global set table. A
      // fresh engine rebases to 0, which matches the set ids the
      // compiler burned into the checks.
      std::vector<std::vector<uint64_t>> sets;
      for (const auto& set : compiled->attestation.cfi_sets) {
        std::vector<uint64_t> members;
        for (const std::string& name : set.members) {
          const int index = module->FunctionIndex(name);
          if (index < 0) std::abort();
          members.push_back(kop::kir::FunctionAddressForIndex(
              static_cast<size_t>(index)));
        }
        sets.push_back(std::move(members));
      }
      if (policy->RegisterCfiSets(sets) != 0) std::abort();
    }

    std::unordered_map<std::string, uint64_t> globals;
    for (const auto& global : module->globals()) {
      auto addr = kernel->module_area().Kmalloc(
          std::max<uint64_t>(global->size_bytes(), 8));
      if (!addr.ok()) std::abort();
      globals[global->name()] = *addr;
    }
    auto stack = kernel->module_area().Kmalloc(64 * 1024);
    if (!stack.ok()) std::abort();
    kop::kir::InterpConfig config;
    config.stack_base = *stack;
    config.stack_size = 64 * 1024;
    config.max_steps = ~uint64_t{0};

    memory = std::make_unique<KernelMemory>(kernel.get());
    resolver = std::make_unique<CfiGuardResolver>(policy.get());
    if (bytecode) {
      auto bc = kop::kir::CompileToBytecode(*module);
      if (!bc.ok()) std::abort();
      auto vm = kop::kir::VM::Create(std::move(*bc), *memory, *resolver,
                                     globals, config);
      if (!vm.ok()) std::abort();
      engine = std::move(*vm);
    } else {
      engine = std::make_unique<kop::kir::Interpreter>(
          *module, *memory, *resolver, globals, config);
    }
  }

  double TimeCall(uint64_t calls) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < calls; ++i) {
      auto result = engine->Call("knic_xmit", {0, 64, 0x5A});
      if (!result.ok() || *result != 64) {
        std::fprintf(stderr, "%s: xmit failed\n", label);
        std::abort();
      }
    }
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  }

  void KeepBest(double ns) {
    best_ns = best_ns == 0.0 ? ns : std::min(best_ns, ns);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint64_t sends = std::clamp<uint64_t>(args.packets / 4, 1000, 10000);
  // Min-of-rounds estimator, interleaved so co-tenant noise lands on
  // every variant equally (same rig as abl6).
  const int rounds = 25;

  PrintFigureHeader(
      "Ablation 7",
      "Indirect-call gating (kop::cfi) on the guarded xmit hot path",
      "abl7_knic vtable xmit, " + std::to_string(sends) +
          " sends per round, " + std::to_string(rounds) +
          " interleaved rounds; acceptance = bytecode cfi-on / cfi-off");

  kop::trace::GlobalSpans().SetEnabled(false);
  XmitHarness variants[] = {
      {"interp-cfi-off", false, false},
      {"interp-cfi-on", false, true},
      {"bytecode-cfi-off", true, false},
      {"bytecode-cfi-on", true, true},
  };
  for (XmitHarness& h : variants) {
    h.Build();
    auto init = h.engine->Call("knic_init", {});
    if (!init.ok()) {
      std::fprintf(stderr, "%s: init failed: %s\n", h.label,
                   init.status().ToString().c_str());
      return 1;
    }
    (void)h.TimeCall(sends / 4 + 1);  // warmup
  }
  for (int r = 0; r < rounds; ++r) {
    for (XmitHarness& h : variants) {
      h.KeepBest(h.TimeCall(sends));
    }
  }
  // Correctness anchor: gating must be behaviourally invisible on the
  // honest module — every variant transmitted the same frame count.
  uint64_t sent0 = 0;
  for (XmitHarness& h : variants) {
    auto result = h.engine->Call("knic_sent", {});
    const uint64_t sent = result.ok() ? *result : 0;
    if (sent0 == 0) sent0 = sent;
    if (sent == 0 || sent != sent0) {
      std::fprintf(stderr, "variant %s changed module behaviour!\n", h.label);
      return 1;
    }
  }
  kop::trace::GlobalSpans().SetEnabled(true);

  std::printf("%-20s %14s %12s %12s %12s\n", "variant", "ns_per_xmit",
              "guard_calls", "cfi_checks", "cfi_denied");
  std::string csv =
      "workload,engine,cfi,unit,value,guard_calls,cfi_checks,cfi_denied\n";
  for (XmitHarness& h : variants) {
    const double ns_per_xmit = h.best_ns / static_cast<double>(sends);
    const auto stats = h.policy->stats();
    // Any denial here is a harness bug: the module is honest and the
    // sets were registered, so checks must all pass.
    if (stats.cfi_denied != 0) {
      std::fprintf(stderr, "%s: unexpected CFI denial\n", h.label);
      return 1;
    }
    if (h.cfi && stats.cfi_checks == 0) {
      std::fprintf(stderr, "%s: CFI leg ran zero checks\n", h.label);
      return 1;
    }
    std::printf("%-20s %14.1f %12llu %12llu %12llu\n", h.label, ns_per_xmit,
                static_cast<unsigned long long>(stats.guard_calls),
                static_cast<unsigned long long>(stats.cfi_checks),
                static_cast<unsigned long long>(stats.cfi_denied));
    char line[192];
    std::snprintf(line, sizeof(line), "xmit,%s,%s,ns_per_xmit,%.1f,%llu,%llu,%llu\n",
                  h.bytecode ? "bytecode" : "interp", h.cfi ? "on" : "off",
                  ns_per_xmit,
                  static_cast<unsigned long long>(stats.guard_calls),
                  static_cast<unsigned long long>(stats.cfi_checks),
                  static_cast<unsigned long long>(stats.cfi_denied));
    csv += line;
  }

  const double interp_ratio = variants[1].best_ns / variants[0].best_ns;
  const double bytecode_ratio = variants[3].best_ns / variants[2].best_ns;
  std::printf("\ncfi-on/cfi-off xmit ratio: interp %.3f, bytecode %.3f\n",
              interp_ratio, bytecode_ratio);

  char line[128];
  std::snprintf(line, sizeof(line),
                "# ratio_interp_cfi,%.3f\n# ratio_bytecode_cfi,%.3f\n",
                interp_ratio, bytecode_ratio);
  csv += line;
  WriteResultsFile("abl7_cfi.csv", csv);

  // Acceptance: bytecode CFI overhead on guarded xmit <= 5%.
  // KOP_ABL7_GATE loosens the wall-clock gate for noisy shared runners
  // (CI smoke); the default 1.05 is the paper-facing local acceptance.
  double gate = 1.05;
  if (const char* env = std::getenv("KOP_ABL7_GATE")) {
    gate = std::atof(env);
    if (gate <= 0.0) gate = 1.05;
  }
  if (bytecode_ratio > gate) {
    std::fprintf(stderr,
                 "ACCEPTANCE MISS: bytecode cfi-on/cfi-off ratio %.3f > "
                 "%.2f\n",
                 bytecode_ratio, gate);
    return 1;
  }
  return 0;
}
