// Figure 5: effect on throughput of varying the number of regions in the
// CARAT KOP policy (R350, 128 B packets). Series: carat (n=2), carat16,
// carat64, baseline. Expected shape: baseline >= carat >= carat16 >=
// carat64 at the median, worst delta <1% — "the effect exists, but is
// small".
#include <cstdio>

#include "common/figures.hpp"

int main(int argc, char** argv) {
  using namespace kop::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const auto machine = kop::sim::MachineModel::R350();

  PrintFigureHeader("Figure 5",
                    "Effect of the number of policy regions on throughput",
                    machine.name + ", 128 B packets, " +
                        std::to_string(args.trials) + " trials x " +
                        std::to_string(args.packets) + " packets");

  struct Config {
    const char* label;
    Technique technique;
    uint32_t regions;
  };
  const Config configs[] = {
      {"carat", Technique::kCarat, 2},
      {"carat16", Technique::kCarat, 16},
      {"carat64", Technique::kCarat, 64},
      {"baseline", Technique::kBaseline, 2},
  };

  std::vector<CdfSeries> series;
  for (const Config& config : configs) {
    RigConfig rig_config;
    rig_config.machine = machine;
    rig_config.technique = config.technique;
    rig_config.regions = config.regions;
    rig_config.seed = 21;  // common random numbers across series
    Rig rig(rig_config);
    CdfSeries s;
    s.label = config.label;
    for (uint32_t trial = 0; trial < args.trials; ++trial) {
      s.trial_pps.push_back(rig.ThroughputTrial(args.packets, 128, trial));
    }
    series.push_back(std::move(s));
  }

  const std::string table = EngineAnnotation() + RenderCdfTable(series);
  std::fputs(table.c_str(), stdout);

  std::printf("\nmedians:\n");
  double baseline_median = 0.0;
  for (const CdfSeries& s : series) {
    const auto summary = kop::sim::Summarize(s.trial_pps);
    if (s.label == std::string("baseline")) baseline_median = summary.median;
    std::printf("  %-9s %.0f pps\n", s.label.c_str(), summary.median);
  }
  std::printf("\nrelative median delta vs baseline:\n");
  for (const CdfSeries& s : series) {
    const auto summary = kop::sim::Summarize(s.trial_pps);
    std::printf("  %-9s %.3f%%\n", s.label.c_str(),
                (baseline_median - summary.median) / baseline_median * 100.0);
  }
  std::printf("(paper: small but significant effect; worst case <1%%)\n");

  WriteResultsFile("fig5_regions_sweep.csv", table);
  return 0;
}
