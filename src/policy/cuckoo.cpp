#include "kop/policy/cuckoo.hpp"

namespace kop::policy {
namespace {

uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CuckooFilter::CuckooFilter(size_t capacity, uint64_t seed)
    : seed_(seed), kick_state_(seed ^ 0x9e3779b97f4a7c15ULL) {
  size_t buckets = 1;
  while (buckets * kSlotsPerBucket < capacity) buckets <<= 1;
  bucket_count_ = buckets;
  slots_.assign(bucket_count_ * kSlotsPerBucket, 0);
}

uint16_t CuckooFilter::Fingerprint(uint64_t key) const {
  // Never zero (zero marks an empty slot).
  const uint16_t fp = static_cast<uint16_t>(Mix(key ^ seed_) & 0xffff);
  return fp == 0 ? 1 : fp;
}

size_t CuckooFilter::IndexOf(uint64_t key) const {
  return Mix(key + seed_) & (bucket_count_ - 1);
}

size_t CuckooFilter::AltIndex(size_t index, uint16_t fingerprint) const {
  // Partial-key cuckoo hashing: the alternate bucket depends only on the
  // current bucket and the fingerprint, so relocation needs no key.
  return (index ^ Mix(fingerprint)) & (bucket_count_ - 1);
}

bool CuckooFilter::ContainsAt(size_t index, uint16_t fingerprint) const {
  const uint16_t* bucket = &slots_[index * kSlotsPerBucket];
  for (unsigned slot = 0; slot < kSlotsPerBucket; ++slot) {
    if (bucket[slot] == fingerprint) return true;
  }
  return false;
}

bool CuckooFilter::InsertAt(size_t index, uint16_t fingerprint) {
  uint16_t* bucket = &slots_[index * kSlotsPerBucket];
  for (unsigned slot = 0; slot < kSlotsPerBucket; ++slot) {
    if (bucket[slot] == 0) {
      bucket[slot] = fingerprint;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::RemoveAt(size_t index, uint16_t fingerprint) {
  uint16_t* bucket = &slots_[index * kSlotsPerBucket];
  for (unsigned slot = 0; slot < kSlotsPerBucket; ++slot) {
    if (bucket[slot] == fingerprint) {
      bucket[slot] = 0;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::Insert(uint64_t key) {
  const uint16_t fingerprint = Fingerprint(key);
  const size_t i1 = IndexOf(key);
  const size_t i2 = AltIndex(i1, fingerprint);
  if (InsertAt(i1, fingerprint) || InsertAt(i2, fingerprint)) {
    ++count_;
    return true;
  }
  // Relocate: kick random victims between their two homes.
  size_t index = (kick_state_ & 1) ? i1 : i2;
  uint16_t carried = fingerprint;
  for (unsigned kick = 0; kick < kMaxKicks; ++kick) {
    kick_state_ = Mix(kick_state_ + kick);
    const unsigned victim =
        static_cast<unsigned>(kick_state_ % kSlotsPerBucket);
    uint16_t* bucket = &slots_[index * kSlotsPerBucket];
    std::swap(carried, bucket[victim]);
    index = AltIndex(index, carried);
    if (InsertAt(index, carried)) {
      ++count_;
      return true;
    }
  }
  // Give up: restore nothing (the carried fingerprint was displaced from
  // the table; put it back where a slot opened... there is none, so the
  // filter stays a superset minus one — unacceptable). To stay a safe
  // summary, re-insert the carried fingerprint by overwriting is not
  // possible; report failure and let the caller degrade. Note: `carried`
  // may differ from `fingerprint` (some other key's print was dropped),
  // which is exactly why callers must stop trusting negatives.
  return false;
}

bool CuckooFilter::Contains(uint64_t key) const {
  const uint16_t fingerprint = Fingerprint(key);
  const size_t i1 = IndexOf(key);
  if (ContainsAt(i1, fingerprint)) return true;
  return ContainsAt(AltIndex(i1, fingerprint), fingerprint);
}

bool CuckooFilter::Delete(uint64_t key) {
  const uint16_t fingerprint = Fingerprint(key);
  const size_t i1 = IndexOf(key);
  if (RemoveAt(i1, fingerprint)) {
    --count_;
    return true;
  }
  if (RemoveAt(AltIndex(i1, fingerprint), fingerprint)) {
    --count_;
    return true;
  }
  return false;
}

void CuckooFilter::Clear() {
  std::fill(slots_.begin(), slots_.end(), 0);
  count_ = 0;
}

// ------------------------------------------------------ CuckooFrontStore --

Status CuckooFrontStore::DoAdd(const Region& region) {
  KOP_RETURN_IF_ERROR(inner_->Add(region));
  const uint64_t first = region.base >> kPageShift;
  const uint64_t last = (region.base + region.len - 1) >> kPageShift;
  for (uint64_t page = first;; ++page) {
    if (!filter_.Insert(page)) degraded_ = true;
    if (page == last) break;
  }
  return OkStatus();
}

Status CuckooFrontStore::DoRemove(uint64_t base) {
  // Find the region first so its pages can be deleted from the filter.
  Region removed{};
  bool found = false;
  for (const Region& region : inner_->Snapshot()) {
    if (region.base == base) {
      removed = region;
      found = true;
      break;
    }
  }
  KOP_RETURN_IF_ERROR(inner_->Remove(base));
  if (found && !degraded_) {
    const uint64_t first = removed.base >> kPageShift;
    const uint64_t last = (removed.base + removed.len - 1) >> kPageShift;
    for (uint64_t page = first;; ++page) {
      (void)filter_.Delete(page);
      if (page == last) break;
    }
  }
  return OkStatus();
}

void CuckooFrontStore::DoClear() {
  inner_->Clear();
  filter_.Clear();
  degraded_ = false;
}

std::optional<uint32_t> CuckooFrontStore::Lookup(uint64_t addr,
                                                 uint64_t size) const {
  ++stats_.lookups;
  if (!degraded_) {
    // A region covering [addr, addr+size) necessarily covers addr's
    // page, so one filter probe decides the definitive miss.
    if (!filter_.Contains(addr >> kPageShift)) {
      ++stats_.fast_path_hits;
      return std::nullopt;
    }
  }
  return inner_->Lookup(addr, size);
}

}  // namespace kop::policy
