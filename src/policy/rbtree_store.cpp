#include "kop/policy/rbtree_store.hpp"

namespace kop::policy {

Status RbTreeRegionStore::DoAdd(const Region& region) {
  if (region.len == 0) return InvalidArgument("empty region");
  if (region.base + region.len < region.base) {
    return InvalidArgument("region wraps the address space");
  }
  auto next = regions_.lower_bound(region.base);
  if (next != regions_.end() && next->second.Overlaps(region)) {
    return InvalidArgument("overlapping region not representable: " +
                           next->second.ToString());
  }
  if (next != regions_.begin() &&
      std::prev(next)->second.Overlaps(region)) {
    return InvalidArgument("overlapping region not representable: " +
                           std::prev(next)->second.ToString());
  }
  regions_.emplace(region.base, region);
  return OkStatus();
}

Status RbTreeRegionStore::DoRemove(uint64_t base) {
  if (regions_.erase(base) == 0) return NotFound("no region with that base");
  return OkStatus();
}

std::optional<uint32_t> RbTreeRegionStore::Lookup(uint64_t addr,
                                                  uint64_t size) const {
  ++stats_.lookups;
  auto next = regions_.upper_bound(addr);
  if (next == regions_.begin()) return std::nullopt;
  const Region& candidate = std::prev(next)->second;
  ++stats_.entries_scanned;
  if (candidate.Contains(addr, size)) return candidate.prot;
  return std::nullopt;
}

std::vector<Region> RbTreeRegionStore::DoSnapshot() const {
  std::vector<Region> out;
  out.reserve(regions_.size());
  for (const auto& [base, region] : regions_) out.push_back(region);
  return out;
}

}  // namespace kop::policy
