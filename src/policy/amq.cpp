#include "kop/policy/amq.hpp"

#include <cmath>

#include "kop/util/bits.hpp"

namespace kop::policy {
namespace {

uint64_t Mix(uint64_t x) {
  // SplitMix64 finalizer: cheap, well-distributed.
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(size_t bits, unsigned hashes) {
  size_t rounded = 64;
  while (rounded < bits) rounded <<= 1;
  words_.assign(rounded / 64, 0);
  mask_ = rounded - 1;
  hashes_ = hashes < 1 ? 1 : (hashes > 8 ? 8 : hashes);
}

uint64_t BloomFilter::HashN(uint64_t key, unsigned n) const {
  // Kirsch-Mitzenmacher double hashing.
  const uint64_t h1 = Mix(key);
  const uint64_t h2 = Mix(key ^ 0x9e3779b97f4a7c15ULL) | 1;
  return (h1 + n * h2) & mask_;
}

void BloomFilter::Insert(uint64_t key) {
  for (unsigned n = 0; n < hashes_; ++n) {
    const uint64_t bit = HashN(key, n);
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  ++insertions_;
}

bool BloomFilter::MaybeContains(uint64_t key) const {
  for (unsigned n = 0; n < hashes_; ++n) {
    const uint64_t bit = HashN(key, n);
    if ((words_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
  insertions_ = 0;
}

double BloomFilter::EstimatedFalsePositiveRate() const {
  const double m = static_cast<double>(bit_count());
  const double k = static_cast<double>(hashes_);
  const double n = static_cast<double>(insertions_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace kop::policy
