#include "kop/policy/splay_store.hpp"

#include <vector>

namespace kop::policy {

SplayRegionTree::~SplayRegionTree() { DestroySubtree(root_); }

void SplayRegionTree::DestroySubtree(Node* node) {
  // Iterative to avoid deep recursion on degenerate shapes.
  std::vector<Node*> stack;
  if (node != nullptr) stack.push_back(node);
  while (!stack.empty()) {
    Node* cur = stack.back();
    stack.pop_back();
    if (cur->left != nullptr) stack.push_back(cur->left);
    if (cur->right != nullptr) stack.push_back(cur->right);
    delete cur;
  }
}

void SplayRegionTree::DoClear() {
  DestroySubtree(root_);
  root_ = nullptr;
  size_ = 0;
}

void SplayRegionTree::RotateUp(Node* node) const {
  Node* parent = node->parent;
  Node* grandparent = parent->parent;
  if (parent->left == node) {
    parent->left = node->right;
    if (node->right != nullptr) node->right->parent = parent;
    node->right = parent;
  } else {
    parent->right = node->left;
    if (node->left != nullptr) node->left->parent = parent;
    node->left = parent;
  }
  parent->parent = node;
  node->parent = grandparent;
  if (grandparent != nullptr) {
    if (grandparent->left == parent) {
      grandparent->left = node;
    } else {
      grandparent->right = node;
    }
  } else {
    root_ = node;
  }
}

void SplayRegionTree::Splay(Node* node) const {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    Node* grandparent = parent->parent;
    if (grandparent == nullptr) {
      RotateUp(node);  // zig
    } else if ((grandparent->left == parent) == (parent->left == node)) {
      RotateUp(parent);  // zig-zig
      RotateUp(node);
    } else {
      RotateUp(node);  // zig-zag
      RotateUp(node);
    }
  }
}

SplayRegionTree::Node* SplayRegionTree::FindCandidate(uint64_t addr) const {
  Node* node = root_;
  Node* candidate = nullptr;
  while (node != nullptr) {
    ++stats_.entries_scanned;
    if (node->region.base <= addr) {
      candidate = node;
      node = node->right;
    } else {
      node = node->left;
    }
  }
  return candidate;
}

Status SplayRegionTree::DoAdd(const Region& region) {
  if (region.len == 0) return InvalidArgument("empty region");
  if (region.base + region.len < region.base) {
    return InvalidArgument("region wraps the address space");
  }
  // Overlap check against neighbours.
  Node* below = FindCandidate(region.base);
  if (below != nullptr && below->region.Overlaps(region)) {
    return InvalidArgument("overlapping region not representable: " +
                           below->region.ToString());
  }
  // Successor: smallest base > region.base.
  Node* node = root_;
  Node* above = nullptr;
  while (node != nullptr) {
    if (node->region.base > region.base) {
      above = node;
      node = node->left;
    } else {
      node = node->right;
    }
  }
  if (above != nullptr && above->region.Overlaps(region)) {
    return InvalidArgument("overlapping region not representable: " +
                           above->region.ToString());
  }
  if (below != nullptr && below->region.base == region.base) {
    return AlreadyExists("region with that base exists");
  }

  // Plain BST insert, then splay the new node.
  auto* fresh = new Node{region, nullptr, nullptr, nullptr};
  if (root_ == nullptr) {
    root_ = fresh;
  } else {
    Node* cur = root_;
    while (true) {
      if (region.base < cur->region.base) {
        if (cur->left == nullptr) {
          cur->left = fresh;
          fresh->parent = cur;
          break;
        }
        cur = cur->left;
      } else {
        if (cur->right == nullptr) {
          cur->right = fresh;
          fresh->parent = cur;
          break;
        }
        cur = cur->right;
      }
    }
    Splay(fresh);
  }
  ++size_;
  return OkStatus();
}

Status SplayRegionTree::DoRemove(uint64_t base) {
  Node* candidate = FindCandidate(base);
  if (candidate == nullptr || candidate->region.base != base) {
    return NotFound("no region with that base");
  }
  Splay(candidate);
  // Standard splay delete: join left and right subtrees.
  Node* left = candidate->left;
  Node* right = candidate->right;
  if (left != nullptr) left->parent = nullptr;
  if (right != nullptr) right->parent = nullptr;
  delete candidate;
  --size_;
  if (left == nullptr) {
    root_ = right;
    return OkStatus();
  }
  // Splay the max of the left subtree to its root, then hang right off it.
  Node* max = left;
  while (max->right != nullptr) max = max->right;
  root_ = left;
  Splay(max);
  max->right = right;
  if (right != nullptr) right->parent = max;
  root_ = max;
  return OkStatus();
}

std::optional<uint32_t> SplayRegionTree::Lookup(uint64_t addr,
                                                uint64_t size) const {
  ++stats_.lookups;
  Node* candidate = FindCandidate(addr);
  if (candidate == nullptr) return std::nullopt;
  // Splay even on misses-within-candidate: the access pattern shapes the
  // tree either way.
  Splay(candidate);
  if (candidate->region.Contains(addr, size)) return candidate->region.prot;
  return std::nullopt;
}

std::vector<Region> SplayRegionTree::DoSnapshot() const {
  std::vector<Region> out;
  out.reserve(size_);
  // Iterative in-order walk.
  std::vector<Node*> stack;
  Node* node = root_;
  while (node != nullptr || !stack.empty()) {
    while (node != nullptr) {
      stack.push_back(node);
      node = node->left;
    }
    node = stack.back();
    stack.pop_back();
    out.push_back(node->region);
    node = node->right;
  }
  return out;
}

size_t SplayRegionTree::ProbeDepth(uint64_t addr) const {
  size_t depth = 0;
  Node* node = root_;
  while (node != nullptr) {
    ++depth;
    if (node->region.base <= addr) {
      if (node->region.Contains(addr, 1)) return depth;
      node = node->right;
    } else {
      node = node->left;
    }
  }
  return depth;
}

}  // namespace kop::policy
