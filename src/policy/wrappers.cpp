#include "kop/policy/wrappers.hpp"

namespace kop::policy {

Status SingleEntryCacheStore::DoAdd(const Region& region) {
  cache_valid_ = false;
  return inner_->Add(region);
}

Status SingleEntryCacheStore::DoRemove(uint64_t base) {
  cache_valid_ = false;
  return inner_->Remove(base);
}

void SingleEntryCacheStore::DoClear() {
  cache_valid_ = false;
  inner_->Clear();
}

std::optional<uint32_t> SingleEntryCacheStore::Lookup(uint64_t addr,
                                                      uint64_t size) const {
  ++stats_.lookups;
  if (cache_valid_ && cached_.Contains(addr, size)) {
    ++stats_.fast_path_hits;
    return cached_.prot;
  }
  auto result = inner_->Lookup(addr, size);
  if (result.has_value()) {
    // Re-find the matching region to cache its bounds. Snapshot order for
    // the linear table is table order, so the first container matches the
    // inner first-match answer.
    for (const Region& region : inner_->Snapshot()) {
      if (region.Contains(addr, size)) {
        cached_ = region;
        cache_valid_ = true;
        break;
      }
    }
  }
  return result;
}

void BloomFrontStore::InsertRegionPages(const Region& region) {
  const uint64_t first = region.base >> kPageShift;
  const uint64_t last = (region.base + region.len - 1) >> kPageShift;
  for (uint64_t page = first;; ++page) {
    filter_.Insert(page);
    if (page == last) break;
  }
}

Status BloomFrontStore::DoAdd(const Region& region) {
  KOP_RETURN_IF_ERROR(inner_->Add(region));
  InsertRegionPages(region);
  return OkStatus();
}

Status BloomFrontStore::DoRemove(uint64_t base) {
  KOP_RETURN_IF_ERROR(inner_->Remove(base));
  // Bloom filters cannot delete; rebuild from the survivors.
  filter_.Clear();
  for (const Region& region : inner_->Snapshot()) InsertRegionPages(region);
  return OkStatus();
}

void BloomFrontStore::DoClear() {
  inner_->Clear();
  filter_.Clear();
}

std::optional<uint32_t> BloomFrontStore::Lookup(uint64_t addr,
                                                uint64_t size) const {
  ++stats_.lookups;
  const uint64_t first = addr >> kPageShift;
  const uint64_t last = (addr + (size == 0 ? 1 : size) - 1) >> kPageShift;
  bool any_maybe = false;
  for (uint64_t page = first;; ++page) {
    if (filter_.MaybeContains(page)) {
      any_maybe = true;
      break;
    }
    if (page == last) break;
  }
  if (!any_maybe) {
    ++stats_.fast_path_hits;  // definitive miss, no inner walk
    return std::nullopt;
  }
  return inner_->Lookup(addr, size);
}

}  // namespace kop::policy
