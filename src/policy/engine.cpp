#include "kop/policy/engine.hpp"

#include <algorithm>
#include <mutex>

#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::policy {

PolicyEngine::PolicyEngine(kernel::Kernel* kernel,
                           std::unique_ptr<PolicyStore> store, PolicyMode mode)
    : kernel_(kernel),
      store_(std::move(store)),
      mode_(mode),
      latency_hist_(
          trace::GlobalMetrics().GetHistogram("guard.latency_cycles")),
      lookup_depth_hist_(
          trace::GlobalMetrics().GetHistogram("policy.lookup_depth")),
      denied_counter_(trace::GlobalMetrics().GetCounter("guard.denied")) {}

std::unique_ptr<PolicyStore> PolicyEngine::SwapStore(
    std::unique_ptr<PolicyStore> store) {
  std::lock_guard<Spinlock> guard(lock_);
  std::unique_ptr<PolicyStore> old = std::move(store_);
  store_ = std::move(store);
  // Carry the regions over so a live swap preserves the policy.
  for (const Region& region : old->Snapshot()) {
    (void)store_->Add(region);
  }
  return old;
}

bool PolicyEngine::Check(uint64_t addr, uint64_t size,
                         uint64_t access_flags) const {
  std::lock_guard<Spinlock> guard(lock_);
  const std::optional<uint32_t> prot = store_->Lookup(addr, size);
  if (prot.has_value()) {
    return (*prot & access_flags) == access_flags;
  }
  return mode_ == PolicyMode::kDefaultAllow;
}

bool PolicyEngine::Guard(uint64_t addr, uint64_t size,
                         uint64_t access_flags) {
  const uint64_t site = trace::CurrentGuardSite();
  bool allowed;
  {
    std::lock_guard<Spinlock> guard(lock_);
    ++stats_.guard_calls;
    const double guard_cycles =
        kernel_->machine().GuardCycles(static_cast<uint32_t>(store_->Size()));
    if (charge_cycles_) kernel_->clock().Advance(guard_cycles);
    latency_hist_->Observe(guard_cycles);

    const uint64_t scanned_before = store_->stats().entries_scanned;
    const std::optional<uint32_t> prot = store_->Lookup(addr, size);
    const uint64_t depth = store_->stats().entries_scanned - scanned_before;
    lookup_depth_hist_->Observe(static_cast<double>(depth));
    KOP_TRACE(kPolicyLookup, depth, store_->Size());

    allowed = prot.has_value()
                  ? (*prot & access_flags) == access_flags
                  : mode_ == PolicyMode::kDefaultAllow;
    if (site == force_deny_site_) [[unlikely]] allowed = false;
    HotSite& row = SiteRow(site);
    row.site = site;
    ++row.hits;
    if (allowed) {
      ++stats_.allowed;
    } else {
      ++stats_.denied;
      ++row.denied;
      violations_.push(ViolationRecord{addr, size, access_flags,
                                       stats_.guard_calls, false, site});
    }
  }
  KOP_TRACE(kGuardCheck, addr, size, access_flags, site);
  if (allowed) return true;
  KOP_TRACE(kGuardDeny, addr, size, access_flags, site);
  denied_counter_->Add();
  const char* kind =
      (access_flags & kGuardAccessWrite)
          ? ((access_flags & kGuardAccessRead) ? "read-write" : "write")
          : "read";
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden %s access to 0x%llx (size %llu) blocked by policy",
      kind, static_cast<unsigned long long>(addr),
      static_cast<unsigned long long>(size));
  if (action_ == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP guard violation");  // throws KernelPanic
  }
  if (action_ == ViolationAction::kQuarantine) {
    throw GuardViolation(addr, size, access_flags, site);
  }
  return false;
}

bool PolicyEngine::IntrinsicGuard(uint64_t intrinsic_id) {
  const uint64_t site = trace::CurrentGuardSite();
  bool allowed;
  {
    std::lock_guard<Spinlock> guard(lock_);
    ++stats_.intrinsic_calls;
    if (intrinsic_denied_.count(intrinsic_id)) {
      allowed = false;
    } else if (intrinsic_allowed_.count(intrinsic_id)) {
      allowed = true;
    } else {
      allowed = intrinsic_default_allow_;
    }
    HotSite& row = SiteRow(site);
    row.site = site;
    ++row.hits;
    if (!allowed) {
      ++stats_.intrinsic_denied;
      ++row.denied;
      violations_.push(ViolationRecord{intrinsic_id, 0, 0,
                                       stats_.intrinsic_calls, true, site});
    }
  }
  KOP_TRACE(kIntrinsicCheck, intrinsic_id, allowed ? 1 : 0, 0, site);
  if (allowed) return true;
  denied_counter_->Add();
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden privileged intrinsic %llu blocked by policy",
      static_cast<unsigned long long>(intrinsic_id));
  if (action_ == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP privileged-intrinsic violation");
  }
  return false;
}

void PolicyEngine::AllowIntrinsic(uint64_t intrinsic_id) {
  std::lock_guard<Spinlock> guard(lock_);
  intrinsic_denied_.erase(intrinsic_id);
  intrinsic_allowed_.insert(intrinsic_id);
}

void PolicyEngine::DenyIntrinsic(uint64_t intrinsic_id) {
  std::lock_guard<Spinlock> guard(lock_);
  intrinsic_allowed_.erase(intrinsic_id);
  intrinsic_denied_.insert(intrinsic_id);
}

GuardStats PolicyEngine::stats() const {
  std::lock_guard<Spinlock> guard(lock_);
  return stats_;
}

void PolicyEngine::ResetStats() {
  std::lock_guard<Spinlock> guard(lock_);
  stats_ = GuardStats();
  store_->ResetStats();
  violations_.clear();
  site_table_.clear();
}

std::vector<ViolationRecord> PolicyEngine::RecentViolations() const {
  std::lock_guard<Spinlock> guard(lock_);
  return violations_.snapshot();
}

std::vector<HotSite> PolicyEngine::HotSites() const {
  std::vector<HotSite> out;
  {
    std::lock_guard<Spinlock> guard(lock_);
    out.reserve(site_table_.size());
    for (const HotSite& row : site_table_) {
      if (row.hits != 0) out.push_back(row);
    }
  }
  std::sort(out.begin(), out.end(), [](const HotSite& a, const HotSite& b) {
    return a.hits != b.hits ? a.hits > b.hits : a.site < b.site;
  });
  return out;
}

}  // namespace kop::policy
