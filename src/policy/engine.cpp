#include "kop/policy/engine.hpp"

#include <algorithm>
#include <mutex>

#include "kop/trace/site.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::policy {

PolicyEngine::PolicyEngine(kernel::Kernel* kernel,
                           std::unique_ptr<PolicyStore> store, PolicyMode mode)
    : kernel_(kernel),
      store_(std::move(store)),
      store_ptr_(store_.get()),
      mode_(mode),
      latency_hist_(
          trace::GlobalMetrics().GetHistogram("guard.latency_cycles")),
      lookup_depth_hist_(
          trace::GlobalMetrics().GetHistogram("policy.lookup_depth")),
      denied_counter_(trace::GlobalMetrics().GetCounter("guard.denied")) {}

PolicyEngine::~PolicyEngine() {
  // No guard may be in flight at destruction. Retired frames drain in
  // the RCU domain's destructor; the live frame is ours to free.
  delete frame_.load(std::memory_order_acquire);
}

const PolicyFrame* PolicyEngine::CurrentFrame() const {
  const PolicyFrame* frame = frame_.load(std::memory_order_acquire);
  if (frame != nullptr &&
      frame->store_generation ==
          store_ptr_.load(std::memory_order_acquire)->generation() &&
      frame->config_generation ==
          config_generation_.load(std::memory_order_acquire)) {
    return frame;
  }
  return RepublishFrame();
}

const PolicyFrame* PolicyEngine::RepublishFrame() const {
  std::lock_guard<Spinlock> guard(writer_lock_);
  // Re-check under the writer lock: the CPU that beat us here may have
  // already published exactly the frame we came to build.
  const uint64_t store_gen = store_->generation();
  const uint64_t config_gen =
      config_generation_.load(std::memory_order_acquire);
  const PolicyFrame* frame = frame_.load(std::memory_order_acquire);
  if (frame != nullptr && frame->store_generation == store_gen &&
      frame->config_generation == config_gen) {
    return frame;
  }

  auto* fresh = new PolicyFrame;
  fresh->regions = store_->Snapshot();
  fresh->store_size = fresh->regions.size();
  fresh->store_generation = store_gen;
  fresh->config_generation = config_gen;
  fresh->intrinsic_allowed.assign(intrinsic_allowed_.begin(),
                                  intrinsic_allowed_.end());
  fresh->intrinsic_denied.assign(intrinsic_denied_.begin(),
                                 intrinsic_denied_.end());
  fresh->intrinsic_default_allow = intrinsic_default_allow_;

  frame_.store(fresh, std::memory_order_release);
  frames_published_.fetch_add(1, std::memory_order_acq_rel);
  // We are inside the calling guard's read section, so Retire must not
  // block; the old frame is freed once every section that could have
  // loaded it has closed.
  if (frame != nullptr) rcu_.Retire(frame);
  return fresh;
}

std::optional<uint32_t> PolicyEngine::FrameLookup(const PolicyFrame& frame,
                                                  uint64_t addr, uint64_t size,
                                                  uint64_t* depth) {
  uint64_t scanned = 0;
  for (const Region& region : frame.regions) {
    ++scanned;
    if (region.Contains(addr, size)) {
      *depth = scanned;
      return region.prot;
    }
  }
  *depth = scanned;
  return std::nullopt;
}

std::unique_ptr<PolicyStore> PolicyEngine::SwapStore(
    std::unique_ptr<PolicyStore> store) {
  std::unique_ptr<PolicyStore> old;
  {
    std::lock_guard<Spinlock> guard(writer_lock_);
    old = std::move(store_);
    store_ = std::move(store);
    store_ptr_.store(store_.get(), std::memory_order_release);
    // Carry the regions over so a live swap preserves the policy.
    for (const Region& region : old->Snapshot()) {
      (void)store_->Add(region);
    }
    // The frame's store_generation was drawn from the OLD store's
    // counter; bumping the config generation forces republish even if
    // the new store's counter happens to coincide.
    config_generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Grace period: once every in-flight guard has left its read section,
  // no CPU can still be comparing generations against the old store, and
  // the caller may destroy it.
  rcu_.Synchronize();
  return old;
}

bool PolicyEngine::Check(uint64_t addr, uint64_t size,
                         uint64_t access_flags) const {
  smp::RcuDomain::ReadGuard rcu(rcu_);
  const PolicyFrame* frame = CurrentFrame();
  uint64_t depth = 0;
  const std::optional<uint32_t> prot =
      FrameLookup(*frame, addr, size, &depth);
  if (prot.has_value()) {
    return (*prot & access_flags) == access_flags;
  }
  return mode() == PolicyMode::kDefaultAllow;
}

void PolicyEngine::NoteSite(uint64_t site, bool allowed) {
  SiteShard& shard = site_shards_.Mine();
  std::lock_guard<Spinlock> guard(shard.lock);
  if (site >= shard.rows.size()) {
    shard.rows.resize(static_cast<size_t>(site) + 1);
  }
  HotSite& row = shard.rows[static_cast<size_t>(site)];
  row.site = site;
  ++row.hits;
  if (!allowed) ++row.denied;
}

uint64_t PolicyEngine::FoldGuardCalls() const {
  uint64_t total = 0;
  cpu_stats_.ForEach([&total](uint32_t, const CpuStats& slot) {
    total += slot.guard_calls.load(std::memory_order_relaxed);
  });
  return total;
}

uint64_t PolicyEngine::FoldIntrinsicCalls() const {
  uint64_t total = 0;
  cpu_stats_.ForEach([&total](uint32_t, const CpuStats& slot) {
    total += slot.intrinsic_calls.load(std::memory_order_relaxed);
  });
  return total;
}

void PolicyEngine::RecordViolation(const ViolationRecord& record) {
  std::lock_guard<Spinlock> guard(violations_lock_);
  violations_.push(record);
}

bool PolicyEngine::Guard(uint64_t addr, uint64_t size,
                         uint64_t access_flags) {
  KOP_SPAN(kGuardDecision, addr);
  const uint64_t site = trace::CurrentGuardSite();
  bool allowed;
  {
    smp::RcuDomain::ReadGuard rcu(rcu_);
    const PolicyFrame* frame = CurrentFrame();
    CpuStats& my = cpu_stats_.Mine();
    my.guard_calls.fetch_add(1, std::memory_order_relaxed);
    const double guard_cycles = kernel_->machine().GuardCycles(
        static_cast<uint32_t>(frame->store_size));
    if (charge_cycles_.load(std::memory_order_relaxed)) {
      kernel_->clock().Advance(guard_cycles);
    }
    latency_hist_->Observe(guard_cycles);

    uint64_t depth = 0;
    const std::optional<uint32_t> prot =
        FrameLookup(*frame, addr, size, &depth);
    lookup_depth_hist_->Observe(static_cast<double>(depth));
    KOP_TRACE(kPolicyLookup, depth, frame->store_size);

    allowed = prot.has_value()
                  ? (*prot & access_flags) == access_flags
                  : mode() == PolicyMode::kDefaultAllow;
    if (site == force_deny_site_.load(std::memory_order_relaxed))
        [[unlikely]] {
      allowed = false;
    }
    NoteSite(site, allowed);
    if (allowed) {
      my.allowed.fetch_add(1, std::memory_order_relaxed);
    } else {
      my.denied.fetch_add(1, std::memory_order_relaxed);
      RecordViolation(ViolationRecord{addr, size, access_flags,
                                      FoldGuardCalls(), false, site});
    }
  }
  KOP_TRACE(kGuardCheck, addr, size, access_flags, site);
  if (allowed) return true;
  KOP_TRACE(kGuardDeny, addr, size, access_flags, site);
  denied_counter_->Add();
  const char* kind =
      (access_flags & kGuardAccessWrite)
          ? ((access_flags & kGuardAccessRead) ? "read-write" : "write")
          : "read";
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden %s access to 0x%llx (size %llu) blocked by policy",
      kind, static_cast<unsigned long long>(addr),
      static_cast<unsigned long long>(size));
  const ViolationAction action = violation_action();
  if (action == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP guard violation");  // throws KernelPanic
  }
  if (action == ViolationAction::kQuarantine) {
    throw GuardViolation(addr, size, access_flags, site);
  }
  return false;
}

bool PolicyEngine::IntrinsicGuard(uint64_t intrinsic_id) {
  const uint64_t site = trace::CurrentGuardSite();
  bool allowed;
  {
    smp::RcuDomain::ReadGuard rcu(rcu_);
    const PolicyFrame* frame = CurrentFrame();
    CpuStats& my = cpu_stats_.Mine();
    my.intrinsic_calls.fetch_add(1, std::memory_order_relaxed);
    if (std::binary_search(frame->intrinsic_denied.begin(),
                           frame->intrinsic_denied.end(), intrinsic_id)) {
      allowed = false;
    } else if (std::binary_search(frame->intrinsic_allowed.begin(),
                                  frame->intrinsic_allowed.end(),
                                  intrinsic_id)) {
      allowed = true;
    } else {
      allowed = frame->intrinsic_default_allow;
    }
    NoteSite(site, allowed);
    if (!allowed) {
      my.intrinsic_denied.fetch_add(1, std::memory_order_relaxed);
      RecordViolation(ViolationRecord{intrinsic_id, 0, 0,
                                      FoldIntrinsicCalls(), true, site});
    }
  }
  KOP_TRACE(kIntrinsicCheck, intrinsic_id, allowed ? 1 : 0, 0, site);
  if (allowed) return true;
  denied_counter_->Add();
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden privileged intrinsic %llu blocked by policy",
      static_cast<unsigned long long>(intrinsic_id));
  if (violation_action() == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP privileged-intrinsic violation");
  }
  return false;
}

void PolicyEngine::AllowIntrinsic(uint64_t intrinsic_id) {
  std::lock_guard<Spinlock> guard(writer_lock_);
  intrinsic_denied_.erase(intrinsic_id);
  intrinsic_allowed_.insert(intrinsic_id);
  config_generation_.fetch_add(1, std::memory_order_acq_rel);
}

void PolicyEngine::DenyIntrinsic(uint64_t intrinsic_id) {
  std::lock_guard<Spinlock> guard(writer_lock_);
  intrinsic_allowed_.erase(intrinsic_id);
  intrinsic_denied_.insert(intrinsic_id);
  config_generation_.fetch_add(1, std::memory_order_acq_rel);
}

void PolicyEngine::SetIntrinsicDefaultAllow(bool allow) {
  std::lock_guard<Spinlock> guard(writer_lock_);
  intrinsic_default_allow_ = allow;
  config_generation_.fetch_add(1, std::memory_order_acq_rel);
}

GuardStats PolicyEngine::stats() const {
  GuardStats out;
  cpu_stats_.ForEach([&out](uint32_t, const CpuStats& slot) {
    out.guard_calls += slot.guard_calls.load(std::memory_order_relaxed);
    out.allowed += slot.allowed.load(std::memory_order_relaxed);
    out.denied += slot.denied.load(std::memory_order_relaxed);
    out.intrinsic_calls +=
        slot.intrinsic_calls.load(std::memory_order_relaxed);
    out.intrinsic_denied +=
        slot.intrinsic_denied.load(std::memory_order_relaxed);
  });
  return out;
}

GuardStats PolicyEngine::PerCpuStats(uint32_t cpu) const {
  const CpuStats& slot = cpu_stats_.Get(cpu);
  GuardStats out;
  out.guard_calls = slot.guard_calls.load(std::memory_order_relaxed);
  out.allowed = slot.allowed.load(std::memory_order_relaxed);
  out.denied = slot.denied.load(std::memory_order_relaxed);
  out.intrinsic_calls = slot.intrinsic_calls.load(std::memory_order_relaxed);
  out.intrinsic_denied =
      slot.intrinsic_denied.load(std::memory_order_relaxed);
  return out;
}

void PolicyEngine::ResetStats() {
  cpu_stats_.ForEach([](uint32_t, CpuStats& slot) {
    slot.guard_calls.store(0, std::memory_order_relaxed);
    slot.allowed.store(0, std::memory_order_relaxed);
    slot.denied.store(0, std::memory_order_relaxed);
    slot.intrinsic_calls.store(0, std::memory_order_relaxed);
    slot.intrinsic_denied.store(0, std::memory_order_relaxed);
  });
  store_->ResetStats();
  {
    std::lock_guard<Spinlock> guard(violations_lock_);
    violations_.clear();
  }
  site_shards_.ForEach([](uint32_t, SiteShard& shard) {
    std::lock_guard<Spinlock> guard(shard.lock);
    shard.rows.clear();
  });
}

std::vector<ViolationRecord> PolicyEngine::RecentViolations() const {
  std::lock_guard<Spinlock> guard(violations_lock_);
  return violations_.snapshot();
}

std::vector<Region> PolicyEngine::FrameSnapshot() const {
  smp::RcuDomain::ReadGuard rcu(rcu_);
  return CurrentFrame()->regions;
}

std::vector<HotSite> PolicyEngine::HotSites() const {
  // Fold the per-CPU shards: same token on different CPUs merges.
  std::vector<HotSite> merged;
  site_shards_.ForEach([&merged](uint32_t, SiteShard& shard) {
    std::lock_guard<Spinlock> guard(shard.lock);
    for (const HotSite& row : shard.rows) {
      if (row.hits == 0) continue;
      if (row.site >= merged.size()) {
        merged.resize(static_cast<size_t>(row.site) + 1);
      }
      HotSite& out = merged[static_cast<size_t>(row.site)];
      out.site = row.site;
      out.hits += row.hits;
      out.denied += row.denied;
    }
  });
  std::vector<HotSite> out;
  out.reserve(merged.size());
  for (const HotSite& row : merged) {
    if (row.hits != 0) out.push_back(row);
  }
  std::sort(out.begin(), out.end(), [](const HotSite& a, const HotSite& b) {
    return a.hits != b.hits ? a.hits > b.hits : a.site < b.site;
  });
  return out;
}

}  // namespace kop::policy
