#include "kop/policy/engine.hpp"

#include <algorithm>
#include <mutex>

#include "kop/trace/site.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::policy {

PolicyEngine::PolicyEngine(kernel::Kernel* kernel,
                           std::unique_ptr<PolicyStore> store, PolicyMode mode)
    : kernel_(kernel),
      store_(std::move(store)),
      store_ptr_(store_.get()),
      mode_(mode),
      latency_hist_(
          trace::GlobalMetrics().GetHistogram("guard.latency_cycles")),
      lookup_depth_hist_(
          trace::GlobalMetrics().GetHistogram("policy.lookup_depth")),
      denied_counter_(trace::GlobalMetrics().GetCounter("guard.denied")),
      elided_counter_(trace::GlobalMetrics().GetCounter("guard.elided")),
      deopt_counter_(trace::GlobalMetrics().GetCounter("guard.deopt")) {
  // Store mutations tick the engine's combined mutation clock so pinned
  // inline guards see them with a single generation load.
  store_->AttachMutationCell(&mutation_gen_);
}

PolicyEngine::~PolicyEngine() {
  // No guard may be in flight at destruction. Retired frames drain in
  // the RCU domain's destructor; the live frame is ours to free.
  delete frame_.load(std::memory_order_acquire);
}

const PolicyFrame* PolicyEngine::CurrentFrame() const {
  const PolicyFrame* frame = frame_.load(std::memory_order_acquire);
  if (frame != nullptr &&
      frame->store_generation ==
          store_ptr_.load(std::memory_order_acquire)->generation() &&
      frame->config_generation ==
          config_generation_.load(std::memory_order_acquire)) {
    return frame;
  }
  return RepublishFrame();
}

const PolicyFrame* PolicyEngine::RepublishFrame() const {
  std::lock_guard<Spinlock> guard(writer_lock_);
  // Re-check under the writer lock: the CPU that beat us here may have
  // already published exactly the frame we came to build.
  const uint64_t store_gen = store_->generation();
  const uint64_t config_gen =
      config_generation_.load(std::memory_order_acquire);
  const PolicyFrame* frame = frame_.load(std::memory_order_acquire);
  if (frame != nullptr && frame->store_generation == store_gen &&
      frame->config_generation == config_gen) {
    return frame;
  }

  auto* fresh = new PolicyFrame;
  fresh->regions = store_->Snapshot();
  fresh->store_size = fresh->regions.size();
  fresh->store_generation = store_gen;
  fresh->config_generation = config_gen;
  fresh->intrinsic_allowed.assign(intrinsic_allowed_.begin(),
                                  intrinsic_allowed_.end());
  fresh->intrinsic_denied.assign(intrinsic_denied_.begin(),
                                 intrinsic_denied_.end());
  fresh->intrinsic_default_allow = intrinsic_default_allow_;
  fresh->cfi_sets = cfi_sets_;

  frame_.store(fresh, std::memory_order_release);
  frames_published_.fetch_add(1, std::memory_order_acq_rel);
  // We are inside the calling guard's read section, so Retire must not
  // block; the old frame is freed once every section that could have
  // loaded it has closed.
  if (frame != nullptr) rcu_.Retire(frame);
  return fresh;
}

std::optional<uint32_t> PolicyEngine::FrameLookup(const PolicyFrame& frame,
                                                  uint64_t addr, uint64_t size,
                                                  uint64_t* depth) {
  uint64_t scanned = 0;
  for (const Region& region : frame.regions) {
    ++scanned;
    if (region.Contains(addr, size)) {
      *depth = scanned;
      return region.prot;
    }
  }
  *depth = scanned;
  return std::nullopt;
}

std::unique_ptr<PolicyStore> PolicyEngine::SwapStore(
    std::unique_ptr<PolicyStore> store) {
  std::unique_ptr<PolicyStore> old;
  {
    std::lock_guard<Spinlock> guard(writer_lock_);
    old = std::move(store_);
    store_ = std::move(store);
    store_ptr_.store(store_.get(), std::memory_order_release);
    // The outgoing store keeps living in the caller's hands; its future
    // mutations are no longer policy and must not tick our clock.
    old->AttachMutationCell(nullptr);
    store_->AttachMutationCell(&mutation_gen_);
    // Carry the regions over so a live swap preserves the policy.
    for (const Region& region : old->Snapshot()) {
      (void)store_->Add(region);
    }
    // The frame's store_generation was drawn from the OLD store's
    // counter; bumping the config generation forces republish even if
    // the new store's counter happens to coincide.
    config_generation_.fetch_add(1, std::memory_order_acq_rel);
    mutation_gen_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Grace period: once every in-flight guard has left its read section,
  // no CPU can still be comparing generations against the old store, and
  // the caller may destroy it.
  rcu_.Synchronize();
  return old;
}

bool PolicyEngine::Check(uint64_t addr, uint64_t size,
                         uint64_t access_flags) const {
  smp::RcuDomain::ReadGuard rcu(rcu_);
  const PolicyFrame* frame = CurrentFrame();
  uint64_t depth = 0;
  const std::optional<uint32_t> prot =
      FrameLookup(*frame, addr, size, &depth);
  if (prot.has_value()) {
    return (*prot & access_flags) == access_flags;
  }
  return mode() == PolicyMode::kDefaultAllow;
}

void PolicyEngine::GrowSiteTable(SiteShard& shard, uint64_t site) {
  std::lock_guard<Spinlock> guard(shard.lock);
  SiteTable* old = shard.table.load(std::memory_order_relaxed);
  if (old != nullptr && site < old->capacity) return;  // raced a growth
  auto grown = std::make_unique<SiteTable>();
  grown->capacity = std::max<size_t>(64, static_cast<size_t>(site) + 1);
  if (old != nullptr) grown->capacity = std::max(grown->capacity,
                                                 old->capacity * 2);
  grown->rows = std::make_unique<SiteRow[]>(grown->capacity);
  if (old != nullptr) {
    for (size_t i = 0; i < old->capacity; ++i) {
      const SiteRow& from = old->rows[i];
      SiteRow& to = grown->rows[i];
      to.site.store(from.site.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      to.hits.store(from.hits.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      to.denied.store(from.denied.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      to.elided.store(from.elided.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
  }
  shard.table.store(grown.get(), std::memory_order_release);
  // Freeing the old table here is safe: the only lock-free readers are
  // on the shard's own CPU — the thread running this growth — and every
  // cross-CPU access (folds, resets) holds the shard lock.
  shard.storage = std::move(grown);
}

namespace {
/// Single-writer counter bump: plain load+store compiles to a plain
/// increment (no lock prefix); the atomic type only keeps concurrent
/// readers (folds) race-free.
inline void BumpRelaxed(std::atomic<uint64_t>& counter, uint64_t n = 1) {
  counter.store(counter.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
}
}  // namespace

void PolicyEngine::NoteSiteIn(SiteShard& shard, uint64_t site, bool allowed,
                              uint64_t elided) {
  SiteTable* table = shard.table.load(std::memory_order_acquire);
  if (table == nullptr || site >= table->capacity) [[unlikely]] {
    GrowSiteTable(shard, site);
    table = shard.table.load(std::memory_order_acquire);
  }
  SiteRow& row = table->rows[static_cast<size_t>(site)];
  row.site.store(site, std::memory_order_relaxed);
  BumpRelaxed(row.hits);
  if (elided != 0) BumpRelaxed(row.elided, elided);
  if (!allowed) BumpRelaxed(row.denied);
}

void PolicyEngine::NoteSite(uint64_t site, bool allowed, uint64_t elided) {
  NoteSiteIn(site_shards_.Mine(), site, allowed, elided);
}

uint64_t PolicyEngine::FoldGuardCalls() const {
  uint64_t total = 0;
  cpu_stats_.ForEach([&total](uint32_t, const CpuStats& slot) {
    total += slot.guard_calls.load(std::memory_order_relaxed);
  });
  return total;
}

uint64_t PolicyEngine::FoldIntrinsicCalls() const {
  uint64_t total = 0;
  cpu_stats_.ForEach([&total](uint32_t, const CpuStats& slot) {
    total += slot.intrinsic_calls.load(std::memory_order_relaxed);
  });
  return total;
}

void PolicyEngine::RecordViolation(const ViolationRecord& record) {
  std::lock_guard<Spinlock> guard(violations_lock_);
  violations_.push(record);
}

bool PolicyEngine::Guard(uint64_t addr, uint64_t size,
                         uint64_t access_flags) {
  KOP_SPAN(kGuardDecision, addr);
  const uint64_t site = trace::CurrentGuardSite();
  bool allowed;
  {
    smp::RcuDomain::ReadGuard rcu(rcu_);
    const PolicyFrame* frame = CurrentFrame();
    CpuStats& my = cpu_stats_.Mine();
    my.guard_calls.fetch_add(1, std::memory_order_relaxed);
    const double guard_cycles = kernel_->machine().GuardCycles(
        static_cast<uint32_t>(frame->store_size));
    if (charge_cycles_.load(std::memory_order_relaxed)) {
      kernel_->clock().Advance(guard_cycles);
    }
    latency_hist_->Observe(guard_cycles);

    uint64_t depth = 0;
    const std::optional<uint32_t> prot =
        FrameLookup(*frame, addr, size, &depth);
    lookup_depth_hist_->Observe(static_cast<double>(depth));
    KOP_TRACE(kPolicyLookup, depth, frame->store_size);

    allowed = prot.has_value()
                  ? (*prot & access_flags) == access_flags
                  : mode() == PolicyMode::kDefaultAllow;
    if (site == force_deny_site_.load(std::memory_order_relaxed))
        [[unlikely]] {
      allowed = false;
    }
    NoteSite(site, allowed);
    if (allowed) {
      my.allowed.fetch_add(1, std::memory_order_relaxed);
    } else {
      my.denied.fetch_add(1, std::memory_order_relaxed);
      RecordViolation(ViolationRecord{addr, size, access_flags,
                                      FoldGuardCalls(), false, site, false});
    }
  }
  KOP_TRACE(kGuardCheck, addr, size, access_flags, site);
  if (allowed) return true;
  KOP_TRACE(kGuardDeny, addr, size, access_flags, site);
  denied_counter_->Add();
  const char* kind =
      (access_flags & kGuardAccessWrite)
          ? ((access_flags & kGuardAccessRead) ? "read-write" : "write")
          : "read";
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden %s access to 0x%llx (size %llu) blocked by policy",
      kind, static_cast<unsigned long long>(addr),
      static_cast<unsigned long long>(size));
  const ViolationAction action = violation_action();
  if (action == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP guard violation");  // throws KernelPanic
  }
  if (action == ViolationAction::kQuarantine) {
    throw GuardViolation(addr, size, access_flags, site);
  }
  return false;
}

bool PolicyEngine::GuardRange(uint64_t addr, uint64_t size,
                              uint64_t access_flags, uint64_t elided) {
  KOP_SPAN(kGuardDecision, addr);
  const uint64_t site = trace::CurrentGuardSite();
  bool allowed;
  {
    smp::RcuDomain::ReadGuard rcu(rcu_);
    const PolicyFrame* frame = CurrentFrame();
    CpuStats& my = cpu_stats_.Mine();
    my.guard_calls.fetch_add(1, std::memory_order_relaxed);
    const double guard_cycles = kernel_->machine().GuardCycles(
        static_cast<uint32_t>(frame->store_size));
    if (charge_cycles_.load(std::memory_order_relaxed)) {
      kernel_->clock().Advance(guard_cycles);
    }
    latency_hist_->Observe(guard_cycles);

    uint64_t depth = 0;
    const std::optional<uint32_t> prot =
        FrameLookup(*frame, addr, size, &depth);
    lookup_depth_hist_->Observe(static_cast<double>(depth));
    KOP_TRACE(kPolicyLookup, depth, frame->store_size);

    allowed = prot.has_value()
                  ? (*prot & access_flags) == access_flags
                  : mode() == PolicyMode::kDefaultAllow;
    if (site == force_deny_site_.load(std::memory_order_relaxed))
        [[unlikely]] {
      allowed = false;
    }
    if (allowed) {
      // The cover proved `elided` member accesses beyond itself; they
      // count as elided, not as guard calls — guard_calls + elided is
      // what an unelided build would have reported.
      NoteSite(site, true, elided);
      my.allowed.fetch_add(1, std::memory_order_relaxed);
      if (elided != 0) {
        my.elided.fetch_add(elided, std::memory_order_relaxed);
        elided_counter_->Add(elided);
      }
    } else {
      // A denied cover credits no elided members: the violation is the
      // whole cluster's, attributed to the cover site with the
      // interval's address and span.
      NoteSite(site, false);
      my.denied.fetch_add(1, std::memory_order_relaxed);
      RecordViolation(ViolationRecord{addr, size, access_flags,
                                      FoldGuardCalls(), false, site, false});
    }
  }
  KOP_TRACE(kGuardCheck, addr, size, access_flags, site);
  if (allowed) return true;
  KOP_TRACE(kGuardDeny, addr, size, access_flags, site);
  denied_counter_->Add();
  const char* kind =
      (access_flags & kGuardAccessWrite)
          ? ((access_flags & kGuardAccessRead) ? "read-write" : "write")
          : "read";
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden %s access to 0x%llx (size %llu) blocked by policy",
      kind, static_cast<unsigned long long>(addr),
      static_cast<unsigned long long>(size));
  const ViolationAction action = violation_action();
  if (action == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP guard violation");  // throws KernelPanic
  }
  if (action == ViolationAction::kQuarantine) {
    throw GuardViolation(addr, size, access_flags, site);
  }
  return false;
}

bool PolicyEngine::CfiCheck(uint64_t target, uint64_t set_id) {
  KOP_SPAN(kGuardDecision, target);
  const uint64_t site = trace::CurrentGuardSite();
  bool allowed;
  {
    smp::RcuDomain::ReadGuard rcu(rcu_);
    const PolicyFrame* frame = CurrentFrame();
    CpuStats& my = cpu_stats_.Mine();
    my.cfi_checks.fetch_add(1, std::memory_order_relaxed);
    // A CFI decision is a guard decision: same machine-model cost, same
    // latency histogram, so CFI-on vs CFI-off deltas are visible in the
    // virtual clock the benches read.
    const double guard_cycles = kernel_->machine().GuardCycles(
        static_cast<uint32_t>(frame->store_size));
    if (charge_cycles_.load(std::memory_order_relaxed)) {
      kernel_->clock().Advance(guard_cycles);
    }
    latency_hist_->Observe(guard_cycles);

    // Membership in the attested legal-target set. An out-of-range set
    // id (a module that skipped registration, or a forged rebase) denies:
    // unknown provenance is never a licence to jump.
    allowed = set_id < frame->cfi_sets.size() &&
              std::binary_search(frame->cfi_sets[set_id].begin(),
                                 frame->cfi_sets[set_id].end(), target);
    if (site == force_deny_site_.load(std::memory_order_relaxed))
        [[unlikely]] {
      allowed = false;
    }
    NoteSite(site, allowed);
    if (!allowed) {
      my.cfi_denied.fetch_add(1, std::memory_order_relaxed);
      RecordViolation(ViolationRecord{target, set_id, 0, FoldGuardCalls(),
                                      false, site, true});
    }
  }
  KOP_TRACE(kGuardCheck, target, set_id, 0, site);
  if (allowed) return true;
  KOP_TRACE(kGuardDeny, target, set_id, 0, site);
  denied_counter_->Add();
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden indirect call to 0x%llx (set %llu) blocked by "
      "policy",
      static_cast<unsigned long long>(target),
      static_cast<unsigned long long>(set_id));
  const ViolationAction action = violation_action();
  if (action == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP cfi violation");  // throws KernelPanic
  }
  if (action == ViolationAction::kQuarantine) {
    throw GuardViolation(target, set_id, 0, site, /*is_cfi=*/true);
  }
  return false;
}

uint64_t PolicyEngine::RegisterCfiSets(
    const std::vector<std::vector<uint64_t>>& sets) {
  std::lock_guard<Spinlock> guard(writer_lock_);
  const uint64_t base = cfi_sets_.size();
  for (const std::vector<uint64_t>& set : sets) {
    std::vector<uint64_t> sorted = set;
    std::sort(sorted.begin(), sorted.end());
    cfi_sets_.push_back(std::move(sorted));
  }
  // Same protocol as the intrinsic mutators: the frame's CFI copy went
  // stale, so the next check republishes and pinned calls deopt once.
  config_generation_.fetch_add(1, std::memory_order_acq_rel);
  mutation_gen_.fetch_add(1, std::memory_order_acq_rel);
  return base;
}

size_t PolicyEngine::CfiSetCount() const {
  std::lock_guard<Spinlock> guard(writer_lock_);
  return cfi_sets_.size();
}

bool PolicyEngine::PinFrame() {
  PinSlot& pin = pin_slots_.Mine();
  if (pin.depth++ == 0) {
    pin.rcu.emplace(rcu_);
    // Resolve the CPU-slot pointers once: every inline guard in the call
    // then runs without a per-guard CPU-slot lookup.
    pin.stats = &cpu_stats_.Mine();
    pin.sites = &site_shards_.Mine();
    pin.clock_cell = &kernel_->clock().MyCell();
    pin.spans = &trace::GlobalSpans();
    RefreshPin(pin);
  }
  return true;
}

void PolicyEngine::UnpinFrame() {
  PinSlot& pin = pin_slots_.Mine();
  if (pin.depth == 0) return;  // unbalanced close: tolerate, stay slow
  if (--pin.depth == 0) {
    if (pin.elided_batch != 0) {
      elided_counter_->Add(pin.elided_batch);
      pin.elided_batch = 0;
    }
    pin.frame = nullptr;
    pin.rcu.reset();
  }
}

void PolicyEngine::RefreshPin(PinSlot& pin) {
  // Snapshot the mutation clock BEFORE resolving the frame: a mutation
  // that lands between the two reads leaves the snapshot behind the live
  // clock, so the next inline guard deopts and refreshes — a spurious
  // deopt, never a stale allow. (Store mutators bump their structural
  // generation before ticking our cell, so a caught-up snapshot implies
  // CurrentFrame below sees the new store generation too.)
  pin.mutation_gen = mutation_gen_.load(std::memory_order_acquire);
  // Caller holds the slot's read section, so CurrentFrame's result stays
  // valid for the remainder of the pin even if another CPU republishes.
  const PolicyFrame* frame = CurrentFrame();
  pin.frame = frame;
  pin.guard_cycles = kernel_->machine().GuardCycles(
      static_cast<uint32_t>(frame->store_size));
  // Mode is config: SetMode bumps the mutation clock, so this snapshot
  // can only go stale together with a clock mismatch.
  pin.default_allow = mode() == PolicyMode::kDefaultAllow;
}

bool PolicyEngine::FastGuard(uint64_t addr, uint64_t size,
                             uint64_t access_flags, uint64_t site) {
  PinSlot& pin = pin_slots_.Mine();
  if (pin.depth == 0) [[unlikely]] {
    return false;  // not pinned: fast path unavailable, not a deopt
  }
  if (pin.mutation_gen !=
      mutation_gen_.load(std::memory_order_acquire)) [[unlikely]] {
    // Policy moved mid-call (store mutation, swap, or config change all
    // tick the one clock): refresh so later guards in this call are fast
    // again, and let this one re-decide out of line.
    deopt_counter_->Add();
    RefreshPin(pin);
    return false;
  }
  if (site == force_deny_site_.load(std::memory_order_relaxed)) [[unlikely]] {
    deopt_counter_->Add();
    return false;  // fault injection: slow path owns the spurious denial
  }
  // The flight recorder sees inline decisions too: the span opens after
  // the deopt checks, so a deopted guard is recorded once, by Guard().
  // Hand-rolled (vs KOP_SPAN) to use the pinned recorder pointer: a
  // disabled recorder costs one relaxed load, no out-of-line call.
#if KOP_SPANS_ENABLED
  const bool span_active = pin.spans->enabled();
  const uint64_t span_begin = span_active ? pin.spans->BeginSpan() : 0;
#endif
  uint64_t depth = 0;
  const std::optional<uint32_t> prot =
      FrameLookup(*pin.frame, addr, size, &depth);
  const bool allowed = prot.has_value()
                           ? (*prot & access_flags) == access_flags
                           : pin.default_allow;
#if KOP_SPANS_ENABLED
  if (span_active) {
    pin.spans->EndSpan(trace::SpanKind::kGuardDecision, span_begin, addr);
  }
#endif
  if (!allowed) [[unlikely]] {
    deopt_counter_->Add();
    return false;  // slow path re-decides with full violation semantics
  }
  BumpRelaxed(pin.stats->guard_calls);
  BumpRelaxed(pin.stats->allowed);
  NoteSiteIn(*pin.sites, site, true, 0);
  if (charge_cycles_.load(std::memory_order_relaxed)) {
    pin.clock_cell->store(
        pin.clock_cell->load(std::memory_order_relaxed) + pin.guard_cycles,
        std::memory_order_relaxed);
  }
  return true;
}

bool PolicyEngine::FastGuardRange(uint64_t addr, uint64_t size,
                                  uint64_t access_flags, uint64_t elided,
                                  uint64_t site) {
  PinSlot& pin = pin_slots_.Mine();
  if (pin.depth == 0) [[unlikely]] {
    return false;
  }
  if (pin.mutation_gen !=
      mutation_gen_.load(std::memory_order_acquire)) [[unlikely]] {
    deopt_counter_->Add();
    RefreshPin(pin);
    return false;
  }
  if (site == force_deny_site_.load(std::memory_order_relaxed)) [[unlikely]] {
    deopt_counter_->Add();
    return false;
  }
#if KOP_SPANS_ENABLED
  const bool span_active = pin.spans->enabled();
  const uint64_t span_begin = span_active ? pin.spans->BeginSpan() : 0;
#endif
  uint64_t depth = 0;
  const std::optional<uint32_t> prot =
      FrameLookup(*pin.frame, addr, size, &depth);
  const bool allowed = prot.has_value()
                           ? (*prot & access_flags) == access_flags
                           : pin.default_allow;
#if KOP_SPANS_ENABLED
  if (span_active) {
    pin.spans->EndSpan(trace::SpanKind::kGuardDecision, span_begin, addr);
  }
#endif
  if (!allowed) [[unlikely]] {
    deopt_counter_->Add();
    return false;
  }
  BumpRelaxed(pin.stats->guard_calls);
  BumpRelaxed(pin.stats->allowed);
  NoteSiteIn(*pin.sites, site, true, elided);
  if (elided != 0) {
    BumpRelaxed(pin.stats->elided, elided);
    pin.elided_batch += elided;
  }
  if (charge_cycles_.load(std::memory_order_relaxed)) {
    pin.clock_cell->store(
        pin.clock_cell->load(std::memory_order_relaxed) + pin.guard_cycles,
        std::memory_order_relaxed);
  }
  return true;
}

bool PolicyEngine::FastCfiCheck(uint64_t target, uint64_t set_id,
                                uint64_t site) {
  PinSlot& pin = pin_slots_.Mine();
  if (pin.depth == 0) [[unlikely]] {
    return false;  // not pinned: fast path unavailable, not a deopt
  }
  if (pin.mutation_gen !=
      mutation_gen_.load(std::memory_order_acquire)) [[unlikely]] {
    deopt_counter_->Add();
    RefreshPin(pin);
    return false;
  }
  if (site == force_deny_site_.load(std::memory_order_relaxed)) [[unlikely]] {
    deopt_counter_->Add();
    return false;  // fault injection: slow path owns the spurious denial
  }
#if KOP_SPANS_ENABLED
  const bool span_active = pin.spans->enabled();
  const uint64_t span_begin = span_active ? pin.spans->BeginSpan() : 0;
#endif
  const std::vector<std::vector<uint64_t>>& sets = pin.frame->cfi_sets;
  const bool allowed =
      set_id < sets.size() &&
      std::binary_search(sets[set_id].begin(), sets[set_id].end(), target);
#if KOP_SPANS_ENABLED
  if (span_active) {
    pin.spans->EndSpan(trace::SpanKind::kGuardDecision, span_begin, target);
  }
#endif
  if (!allowed) [[unlikely]] {
    deopt_counter_->Add();
    return false;  // slow path re-decides with full violation semantics
  }
  BumpRelaxed(pin.stats->cfi_checks);
  NoteSiteIn(*pin.sites, site, true, 0);
  if (charge_cycles_.load(std::memory_order_relaxed)) {
    pin.clock_cell->store(
        pin.clock_cell->load(std::memory_order_relaxed) + pin.guard_cycles,
        std::memory_order_relaxed);
  }
  return true;
}

bool PolicyEngine::IntrinsicGuard(uint64_t intrinsic_id) {
  const uint64_t site = trace::CurrentGuardSite();
  bool allowed;
  {
    smp::RcuDomain::ReadGuard rcu(rcu_);
    const PolicyFrame* frame = CurrentFrame();
    CpuStats& my = cpu_stats_.Mine();
    my.intrinsic_calls.fetch_add(1, std::memory_order_relaxed);
    if (std::binary_search(frame->intrinsic_denied.begin(),
                           frame->intrinsic_denied.end(), intrinsic_id)) {
      allowed = false;
    } else if (std::binary_search(frame->intrinsic_allowed.begin(),
                                  frame->intrinsic_allowed.end(),
                                  intrinsic_id)) {
      allowed = true;
    } else {
      allowed = frame->intrinsic_default_allow;
    }
    NoteSite(site, allowed);
    if (!allowed) {
      my.intrinsic_denied.fetch_add(1, std::memory_order_relaxed);
      RecordViolation(ViolationRecord{intrinsic_id, 0, 0,
                                      FoldIntrinsicCalls(), true, site,
                                      false});
    }
  }
  KOP_TRACE(kIntrinsicCheck, intrinsic_id, allowed ? 1 : 0, 0, site);
  if (allowed) return true;
  denied_counter_->Add();
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden privileged intrinsic %llu blocked by policy",
      static_cast<unsigned long long>(intrinsic_id));
  if (violation_action() == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP privileged-intrinsic violation");
  }
  return false;
}

void PolicyEngine::AllowIntrinsic(uint64_t intrinsic_id) {
  std::lock_guard<Spinlock> guard(writer_lock_);
  intrinsic_denied_.erase(intrinsic_id);
  intrinsic_allowed_.insert(intrinsic_id);
  config_generation_.fetch_add(1, std::memory_order_acq_rel);
  mutation_gen_.fetch_add(1, std::memory_order_acq_rel);
}

void PolicyEngine::DenyIntrinsic(uint64_t intrinsic_id) {
  std::lock_guard<Spinlock> guard(writer_lock_);
  intrinsic_allowed_.erase(intrinsic_id);
  intrinsic_denied_.insert(intrinsic_id);
  config_generation_.fetch_add(1, std::memory_order_acq_rel);
  mutation_gen_.fetch_add(1, std::memory_order_acq_rel);
}

void PolicyEngine::SetIntrinsicDefaultAllow(bool allow) {
  std::lock_guard<Spinlock> guard(writer_lock_);
  intrinsic_default_allow_ = allow;
  config_generation_.fetch_add(1, std::memory_order_acq_rel);
  mutation_gen_.fetch_add(1, std::memory_order_acq_rel);
}

GuardStats PolicyEngine::stats() const {
  GuardStats out;
  cpu_stats_.ForEach([&out](uint32_t, const CpuStats& slot) {
    out.guard_calls += slot.guard_calls.load(std::memory_order_relaxed);
    out.allowed += slot.allowed.load(std::memory_order_relaxed);
    out.denied += slot.denied.load(std::memory_order_relaxed);
    out.intrinsic_calls +=
        slot.intrinsic_calls.load(std::memory_order_relaxed);
    out.intrinsic_denied +=
        slot.intrinsic_denied.load(std::memory_order_relaxed);
    out.elided += slot.elided.load(std::memory_order_relaxed);
    out.cfi_checks += slot.cfi_checks.load(std::memory_order_relaxed);
    out.cfi_denied += slot.cfi_denied.load(std::memory_order_relaxed);
  });
  return out;
}

GuardStats PolicyEngine::PerCpuStats(uint32_t cpu) const {
  const CpuStats& slot = cpu_stats_.Get(cpu);
  GuardStats out;
  out.guard_calls = slot.guard_calls.load(std::memory_order_relaxed);
  out.allowed = slot.allowed.load(std::memory_order_relaxed);
  out.denied = slot.denied.load(std::memory_order_relaxed);
  out.intrinsic_calls = slot.intrinsic_calls.load(std::memory_order_relaxed);
  out.intrinsic_denied =
      slot.intrinsic_denied.load(std::memory_order_relaxed);
  out.elided = slot.elided.load(std::memory_order_relaxed);
  out.cfi_checks = slot.cfi_checks.load(std::memory_order_relaxed);
  out.cfi_denied = slot.cfi_denied.load(std::memory_order_relaxed);
  return out;
}

void PolicyEngine::ResetStats() {
  cpu_stats_.ForEach([](uint32_t, CpuStats& slot) {
    slot.guard_calls.store(0, std::memory_order_relaxed);
    slot.allowed.store(0, std::memory_order_relaxed);
    slot.denied.store(0, std::memory_order_relaxed);
    slot.intrinsic_calls.store(0, std::memory_order_relaxed);
    slot.intrinsic_denied.store(0, std::memory_order_relaxed);
    slot.elided.store(0, std::memory_order_relaxed);
    slot.cfi_checks.store(0, std::memory_order_relaxed);
    slot.cfi_denied.store(0, std::memory_order_relaxed);
  });
  store_->ResetStats();
  {
    std::lock_guard<Spinlock> guard(violations_lock_);
    violations_.clear();
  }
  site_shards_.ForEach([](uint32_t, SiteShard& shard) {
    // Zero in place rather than freeing: another CPU's inline path may
    // hold the table pointer lock-free, so the allocation must survive.
    std::lock_guard<Spinlock> guard(shard.lock);
    SiteTable* table = shard.table.load(std::memory_order_relaxed);
    if (table == nullptr) return;
    for (size_t i = 0; i < table->capacity; ++i) {
      SiteRow& row = table->rows[i];
      row.site.store(0, std::memory_order_relaxed);
      row.hits.store(0, std::memory_order_relaxed);
      row.denied.store(0, std::memory_order_relaxed);
      row.elided.store(0, std::memory_order_relaxed);
    }
  });
}

std::vector<ViolationRecord> PolicyEngine::RecentViolations() const {
  std::lock_guard<Spinlock> guard(violations_lock_);
  return violations_.snapshot();
}

std::vector<Region> PolicyEngine::FrameSnapshot() const {
  smp::RcuDomain::ReadGuard rcu(rcu_);
  return CurrentFrame()->regions;
}

std::vector<HotSite> PolicyEngine::HotSites() const {
  // Fold the per-CPU shards: same token on different CPUs merges.
  std::vector<HotSite> merged;
  site_shards_.ForEach([&merged](uint32_t, SiteShard& shard) {
    std::lock_guard<Spinlock> guard(shard.lock);
    const SiteTable* table = shard.table.load(std::memory_order_acquire);
    if (table == nullptr) return;
    for (size_t i = 0; i < table->capacity; ++i) {
      const SiteRow& row = table->rows[i];
      const uint64_t hits = row.hits.load(std::memory_order_relaxed);
      if (hits == 0) continue;
      const uint64_t site = row.site.load(std::memory_order_relaxed);
      if (site >= merged.size()) {
        merged.resize(static_cast<size_t>(site) + 1);
      }
      HotSite& out = merged[static_cast<size_t>(site)];
      out.site = site;
      out.hits += hits;
      out.denied += row.denied.load(std::memory_order_relaxed);
      out.elided += row.elided.load(std::memory_order_relaxed);
    }
  });
  std::vector<HotSite> out;
  out.reserve(merged.size());
  for (const HotSite& row : merged) {
    if (row.hits != 0) out.push_back(row);
  }
  std::sort(out.begin(), out.end(), [](const HotSite& a, const HotSite& b) {
    return a.hits != b.hits ? a.hits > b.hits : a.site < b.site;
  });
  return out;
}

}  // namespace kop::policy
