#include "kop/policy/engine.hpp"

#include <mutex>

#include "kop/util/carat_abi.hpp"

namespace kop::policy {

PolicyEngine::PolicyEngine(kernel::Kernel* kernel,
                           std::unique_ptr<PolicyStore> store, PolicyMode mode)
    : kernel_(kernel), store_(std::move(store)), mode_(mode) {}

std::unique_ptr<PolicyStore> PolicyEngine::SwapStore(
    std::unique_ptr<PolicyStore> store) {
  std::lock_guard<Spinlock> guard(lock_);
  std::unique_ptr<PolicyStore> old = std::move(store_);
  store_ = std::move(store);
  // Carry the regions over so a live swap preserves the policy.
  for (const Region& region : old->Snapshot()) {
    (void)store_->Add(region);
  }
  return old;
}

bool PolicyEngine::Check(uint64_t addr, uint64_t size,
                         uint64_t access_flags) const {
  std::lock_guard<Spinlock> guard(lock_);
  const std::optional<uint32_t> prot = store_->Lookup(addr, size);
  if (prot.has_value()) {
    return (*prot & access_flags) == access_flags;
  }
  return mode_ == PolicyMode::kDefaultAllow;
}

bool PolicyEngine::Guard(uint64_t addr, uint64_t size,
                         uint64_t access_flags) {
  ++stats_.guard_calls;
  if (charge_cycles_) {
    kernel_->clock().Advance(kernel_->machine().GuardCycles(
        static_cast<uint32_t>(store_->Size())));
  }
  if (Check(addr, size, access_flags)) {
    ++stats_.allowed;
    return true;
  }
  ++stats_.denied;
  {
    std::lock_guard<Spinlock> guard(lock_);
    violations_.push(ViolationRecord{addr, size, access_flags,
                                     stats_.guard_calls, false});
  }
  const char* kind =
      (access_flags & kGuardAccessWrite)
          ? ((access_flags & kGuardAccessRead) ? "read-write" : "write")
          : "read";
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden %s access to 0x%llx (size %llu) blocked by policy",
      kind, static_cast<unsigned long long>(addr),
      static_cast<unsigned long long>(size));
  if (action_ == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP guard violation");  // throws KernelPanic
  }
  if (action_ == ViolationAction::kQuarantine) {
    throw GuardViolation(addr, size, access_flags);
  }
  return false;
}

bool PolicyEngine::IntrinsicGuard(uint64_t intrinsic_id) {
  ++stats_.intrinsic_calls;
  bool allowed;
  {
    std::lock_guard<Spinlock> guard(lock_);
    if (intrinsic_denied_.count(intrinsic_id)) {
      allowed = false;
    } else if (intrinsic_allowed_.count(intrinsic_id)) {
      allowed = true;
    } else {
      allowed = intrinsic_default_allow_;
    }
  }
  if (allowed) return true;
  ++stats_.intrinsic_denied;
  {
    std::lock_guard<Spinlock> guard(lock_);
    violations_.push(ViolationRecord{intrinsic_id, 0, 0,
                                     stats_.intrinsic_calls, true});
  }
  kernel_->log().Printk(
      kernel::KernLevel::kAlert,
      "CARAT KOP: forbidden privileged intrinsic %llu blocked by policy",
      static_cast<unsigned long long>(intrinsic_id));
  if (action_ == ViolationAction::kPanic) {
    kernel_->Panic("CARAT KOP privileged-intrinsic violation");
  }
  return false;
}

void PolicyEngine::AllowIntrinsic(uint64_t intrinsic_id) {
  std::lock_guard<Spinlock> guard(lock_);
  intrinsic_denied_.erase(intrinsic_id);
  intrinsic_allowed_.insert(intrinsic_id);
}

void PolicyEngine::DenyIntrinsic(uint64_t intrinsic_id) {
  std::lock_guard<Spinlock> guard(lock_);
  intrinsic_allowed_.erase(intrinsic_id);
  intrinsic_denied_.insert(intrinsic_id);
}

void PolicyEngine::ResetStats() {
  stats_ = GuardStats();
  store_->ResetStats();
  std::lock_guard<Spinlock> guard(lock_);
  violations_.clear();
}

std::vector<ViolationRecord> PolicyEngine::RecentViolations() const {
  std::lock_guard<Spinlock> guard(lock_);
  return violations_.snapshot();
}

}  // namespace kop::policy
