#include "kop/policy/procfs.hpp"

#include <cstdio>

#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"

namespace kop::policy {

std::string ProcGuardStats(const PolicyEngine& engine) {
  const GuardStats stats = engine.stats();
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line), "guard_calls:      %llu\n",
                static_cast<unsigned long long>(stats.guard_calls));
  out += line;
  std::snprintf(line, sizeof(line), "allowed:          %llu\n",
                static_cast<unsigned long long>(stats.allowed));
  out += line;
  std::snprintf(line, sizeof(line), "denied:           %llu\n",
                static_cast<unsigned long long>(stats.denied));
  out += line;
  std::snprintf(line, sizeof(line), "intrinsic_calls:  %llu\n",
                static_cast<unsigned long long>(stats.intrinsic_calls));
  out += line;
  std::snprintf(line, sizeof(line), "intrinsic_denied: %llu\n",
                static_cast<unsigned long long>(stats.intrinsic_denied));
  out += line;
  std::snprintf(line, sizeof(line), "elided:           %llu\n",
                static_cast<unsigned long long>(stats.elided));
  out += line;
  std::snprintf(line, sizeof(line), "cfi_checks:       %llu\n",
                static_cast<unsigned long long>(stats.cfi_checks));
  out += line;
  std::snprintf(line, sizeof(line), "cfi_denied:       %llu\n",
                static_cast<unsigned long long>(stats.cfi_denied));
  out += line;
  std::snprintf(line, sizeof(line), "cfi_sets:         %zu\n",
                engine.CfiSetCount());
  out += line;
  std::snprintf(line, sizeof(line), "deopts:           %llu\n",
                static_cast<unsigned long long>(
                    trace::GlobalMetrics().GetCounter("guard.deopt")->value()));
  out += line;
  std::snprintf(line, sizeof(line), "recent_violations: %zu\n",
                engine.RecentViolations().size());
  out += line;

  for (const char* name : {"guard.latency_cycles", "policy.lookup_depth"}) {
    const trace::Log2Histogram* hist =
        trace::GlobalMetrics().GetHistogram(name);
    std::snprintf(line, sizeof(line), "%s: n=%llu mean=%.3g\n", name,
                  static_cast<unsigned long long>(hist->count()),
                  hist->mean());
    out += line;
    for (size_t i = 0; i < trace::Log2Histogram::kBuckets; ++i) {
      if (hist->bucket(i) == 0) continue;
      std::snprintf(line, sizeof(line), "  [%11.4g, %11.4g) %llu\n",
                    trace::Log2Histogram::BucketLo(i),
                    trace::Log2Histogram::BucketLo(i + 1),
                    static_cast<unsigned long long>(hist->bucket(i)));
      out += line;
    }
  }
  return out;
}

std::string ProcHotSites(const PolicyEngine& engine) {
  std::string out = "site     hits     denied   elided   location\n";
  char line[256];
  for (const HotSite& row : engine.HotSites()) {
    const std::string label = trace::GlobalSites().Label(row.site);
    std::string detail;
    if (auto info = trace::GlobalSites().Find(row.site); info.has_value()) {
      detail = info->detail;
    }
    std::snprintf(line, sizeof(line), "%-8llu %-8llu %-8llu %-8llu %s%s%s\n",
                  static_cast<unsigned long long>(row.site),
                  static_cast<unsigned long long>(row.hits),
                  static_cast<unsigned long long>(row.denied),
                  static_cast<unsigned long long>(row.elided), label.c_str(),
                  detail.empty() ? "" : "  ", detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace kop::policy
