// The guard runtime: decides each access against the region policy,
// charges the machine model's guard cost on the virtual clock, and on a
// forbidden access logs to printk and panics the kernel (paper §3.1 —
// "we currently do not cleanly handle forbidden accesses, and instead log
// that they occur and cause a kernel panic").
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>

#include "kop/kernel/kernel.hpp"
#include "kop/policy/store.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/util/ring_buffer.hpp"
#include "kop/util/spinlock.hpp"

namespace kop::policy {

/// Default-allow or default-deny (paper §1: "using default allow or
/// default deny policies").
enum class PolicyMode {
  /// No covering region -> denied. Covering region must grant the flags.
  kDefaultDeny,
  /// No covering region -> allowed. A covering region acts as a
  /// restriction: the access must stay within its granted flags.
  kDefaultAllow,
};

/// What a failed guard does.
///  - kPanic: the paper's choice — log and halt the machine ("a kernel
///    panic is actually a reasonable response for the HPC use cases").
///  - kQuarantine: the alternative the paper discusses and rejects as
///    dangerous to do *forcibly* (§3.1: a killed module may hold locks).
///    Here the violating call unwinds via GuardViolation and the module
///    loader refuses to run the module again — the module is never
///    forcibly ejected, so the deadlock hazard is acknowledged, not
///    hidden: any lock the module held at unwind time stays held.
///  - kLogOnly: audit mode for tests and what-would-break dry runs.
enum class ViolationAction { kPanic, kQuarantine, kLogOnly };

// GuardViolation (thrown under kQuarantine) lives in kop/kernel/panic.hpp
// next to KernelPanic so the module loader can catch it without a
// dependency cycle.
using kernel::GuardViolation;

struct GuardStats {
  uint64_t guard_calls = 0;
  uint64_t allowed = 0;
  uint64_t denied = 0;
  uint64_t intrinsic_calls = 0;
  uint64_t intrinsic_denied = 0;
};

/// One denied access, kept in the engine's forensic ring (most recent
/// violations survive even in log-only audit runs).
struct ViolationRecord {
  uint64_t addr = 0;
  uint64_t size = 0;
  uint64_t access_flags = 0;
  uint64_t sequence = 0;   // nth guard call overall when this fired
  bool intrinsic = false;  // true for privileged-intrinsic denials
  uint64_t site = 0;       // guard-site token (trace::GlobalSites)
};

/// Per-guard-site attribution row — the "perf annotate" view: which exact
/// injected guard (module / function / instruction) is hot or violating.
struct HotSite {
  uint64_t site = 0;  // trace::GlobalSites token; 0 = unattributed
  uint64_t hits = 0;
  uint64_t denied = 0;
};

class PolicyEngine {
 public:
  PolicyEngine(kernel::Kernel* kernel, std::unique_ptr<PolicyStore> store,
               PolicyMode mode = PolicyMode::kDefaultDeny);

  PolicyMode mode() const { return mode_; }
  void SetMode(PolicyMode mode) { mode_ = mode; }
  ViolationAction violation_action() const { return action_; }
  void SetViolationAction(ViolationAction action) { action_ = action; }

  PolicyStore& store() { return *store_; }
  const PolicyStore& store() const { return *store_; }

  /// Swap the policy structure without touching protected modules — the
  /// point of the single-symbol guard interface (§3.2).
  std::unique_ptr<PolicyStore> SwapStore(std::unique_ptr<PolicyStore> store);

  /// Pure decision, no logging/panic/accounting.
  bool Check(uint64_t addr, uint64_t size, uint64_t access_flags) const;

  /// The guard itself: carat_guard(addr, size, access_flags). Returns
  /// true when allowed; on denial logs and (by default) panics.
  bool Guard(uint64_t addr, uint64_t size, uint64_t access_flags);

  /// §5 extension: privileged-intrinsic permission check.
  bool IntrinsicGuard(uint64_t intrinsic_id);
  void AllowIntrinsic(uint64_t intrinsic_id);
  void DenyIntrinsic(uint64_t intrinsic_id);
  void SetIntrinsicDefaultAllow(bool allow) { intrinsic_default_allow_ = allow; }

  /// Snapshot of the counters, taken under the engine lock. Returned by
  /// value: Guard() mutates these concurrently, so handing out a
  /// reference would let readers observe torn counter sets.
  GuardStats stats() const;
  void ResetStats();

  /// The most recent denials, oldest first (capacity 64).
  std::vector<ViolationRecord> RecentViolations() const;

  /// Per-site hit/deny table, hottest first (ties by token). Sites are
  /// trace::GlobalSites tokens; token 0 collects unattributed guards
  /// (direct probes, natively-built drivers without site context).
  std::vector<HotSite> HotSites() const;

  /// When false, Guard() skips virtual-clock charging (used by benches
  /// that account guard cost themselves).
  void SetChargeCycles(bool charge) { charge_cycles_ = charge; }

  /// Fault-injection hook (kop::fault): guards firing from this
  /// trace-site token deny unconditionally — a spurious violation, as a
  /// corrupted guard table would produce. kNoForcedSite disarms.
  static constexpr uint64_t kNoForcedSite = ~uint64_t{0};
  void ForceDenyAtSite(uint64_t site) { force_deny_site_ = site; }
  uint64_t forced_deny_site() const { return force_deny_site_; }

 private:
  kernel::Kernel* kernel_;
  std::unique_ptr<PolicyStore> store_;
  PolicyMode mode_;
  ViolationAction action_ = ViolationAction::kPanic;
  bool charge_cycles_ = true;
  uint64_t force_deny_site_ = kNoForcedSite;
  bool intrinsic_default_allow_ = false;
  std::set<uint64_t> intrinsic_allowed_;
  std::set<uint64_t> intrinsic_denied_;
  GuardStats stats_;
  RingBuffer<ViolationRecord> violations_{64};
  // Per-site rows indexed directly by trace site token: the registry
  // hands out small sequential tokens (0 = unattributed), so a dense
  // vector replaces the hash probe on the guard hot path. A row is live
  // iff hits > 0. Callers must hold lock_.
  std::vector<HotSite> site_table_;
  HotSite& SiteRow(uint64_t site) {
    if (site >= site_table_.size()) {
      site_table_.resize(static_cast<size_t>(site) + 1);
    }
    return site_table_[static_cast<size_t>(site)];
  }
  mutable Spinlock lock_;
  // Registered once in the constructor; registry pointers are stable, so
  // the hot path skips the name lookup.
  trace::Log2Histogram* latency_hist_;
  trace::Log2Histogram* lookup_depth_hist_;
  trace::Counter* denied_counter_;
};

}  // namespace kop::policy
