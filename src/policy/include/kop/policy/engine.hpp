// The guard runtime: decides each access against the region policy,
// charges the machine model's guard cost on the virtual clock, and on a
// forbidden access logs to printk and panics the kernel (paper §3.1 —
// "we currently do not cleanly handle forbidden accesses, and instead log
// that they occur and cause a kernel panic").
//
// SMP read path: guards never take the engine lock. Each guard enters an
// RCU read section and decides against an immutable PolicyFrame — a
// flattened copy-published snapshot of the active PolicyStore plus the
// intrinsic permission sets. Mutators (store Add/Remove/Clear, intrinsic
// config, store swaps) bump generation counters; the next guard that
// notices a stale frame republishes a fresh one under the writer lock and
// retires the old frame to the RCU domain, which frees it only after
// every in-flight guard that could hold it has left. An in-flight guard
// therefore always decides against a policy that was atomically current
// at some point during its execution — fully-old-or-fully-new, never a
// half-applied update. Counters are per-CPU (folded on read), per-site
// attribution is per-CPU-sharded, and the forensic violation ring has its
// own lock, so concurrent guards on different CPUs share no cache line on
// the allow path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>

#include "kop/kernel/guard_fast.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/policy/store.hpp"
#include "kop/smp/percpu.hpp"
#include "kop/smp/rcu.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/span.hpp"
#include "kop/util/ring_buffer.hpp"
#include "kop/util/spinlock.hpp"

namespace kop::policy {

/// Default-allow or default-deny (paper §1: "using default allow or
/// default deny policies").
enum class PolicyMode {
  /// No covering region -> denied. Covering region must grant the flags.
  kDefaultDeny,
  /// No covering region -> allowed. A covering region acts as a
  /// restriction: the access must stay within its granted flags.
  kDefaultAllow,
};

/// What a failed guard does.
///  - kPanic: the paper's choice — log and halt the machine ("a kernel
///    panic is actually a reasonable response for the HPC use cases").
///  - kQuarantine: the alternative the paper discusses and rejects as
///    dangerous to do *forcibly* (§3.1: a killed module may hold locks).
///    Here the violating call unwinds via GuardViolation and the module
///    loader refuses to run the module again — the module is never
///    forcibly ejected, so the deadlock hazard is acknowledged, not
///    hidden: any lock the module held at unwind time stays held.
///  - kLogOnly: audit mode for tests and what-would-break dry runs.
enum class ViolationAction { kPanic, kQuarantine, kLogOnly };

// GuardViolation (thrown under kQuarantine) lives in kop/kernel/panic.hpp
// next to KernelPanic so the module loader can catch it without a
// dependency cycle.
using kernel::GuardViolation;

struct GuardStats {
  uint64_t guard_calls = 0;
  uint64_t allowed = 0;
  uint64_t denied = 0;
  uint64_t intrinsic_calls = 0;
  uint64_t intrinsic_denied = 0;
  /// Member accesses proven by a covering-interval guard without a guard
  /// call of their own (the elision pass's carat_guard_range `elided`
  /// argument, accumulated per successful cover). guard_calls + elided is
  /// the access count an unelided build would have reported for
  /// widening-only modules.
  uint64_t elided = 0;
  /// kop::cfi: carat_cfi_check decisions (slow path + inline fast path).
  uint64_t cfi_checks = 0;
  uint64_t cfi_denied = 0;
};

/// One denied access, kept in the engine's forensic ring (most recent
/// violations survive even in log-only audit runs).
struct ViolationRecord {
  uint64_t addr = 0;
  uint64_t size = 0;
  uint64_t access_flags = 0;
  uint64_t sequence = 0;   // nth guard call overall when this fired
  bool intrinsic = false;  // true for privileged-intrinsic denials
  uint64_t site = 0;       // guard-site token (trace::GlobalSites)
  /// True for CFI denials: addr holds the rejected indirect-call target,
  /// size the engine-global target-set id, access_flags 0.
  bool cfi = false;
};

/// Per-guard-site attribution row — the "perf annotate" view: which exact
/// injected guard (module / function / instruction) is hot or violating.
struct HotSite {
  uint64_t site = 0;  // trace::GlobalSites token; 0 = unattributed
  uint64_t hits = 0;
  uint64_t denied = 0;
  /// Elided member accesses credited to this (covering) site — the
  /// guards that vanished from the IR still show up in attribution here.
  uint64_t elided = 0;
};

/// Immutable snapshot the lock-free guard path decides against. Regions
/// are flattened into first-match scan order (the linear table's
/// semantics: overlaps resolve to the earliest insertion), intrinsic
/// permissions into sorted vectors for binary search. Published via an
/// atomic pointer, reclaimed through the RCU domain.
struct PolicyFrame {
  std::vector<Region> regions;
  size_t store_size = 0;
  uint64_t store_generation = 0;
  uint64_t config_generation = 0;
  std::vector<uint64_t> intrinsic_allowed;  // sorted
  std::vector<uint64_t> intrinsic_denied;   // sorted
  bool intrinsic_default_allow = false;
  /// kop::cfi legal-target sets, indexed by engine-global set id; each is
  /// a sorted vector of simulated function addresses for binary search.
  /// Registration only appends (ids stay stable for the module lifetime),
  /// so a frame's copy is never narrower than what a pinned caller saw.
  std::vector<std::vector<uint64_t>> cfi_sets;
};

class PolicyEngine : public kernel::GuardFastOps {
 public:
  PolicyEngine(kernel::Kernel* kernel, std::unique_ptr<PolicyStore> store,
               PolicyMode mode = PolicyMode::kDefaultDeny);
  ~PolicyEngine();
  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  PolicyMode mode() const { return mode_.load(std::memory_order_acquire); }
  void SetMode(PolicyMode mode) {
    mode_.store(mode, std::memory_order_release);
    // The mode is part of the frame config: pinned calls snapshot it, so
    // a change must move the config generation and deopt inline guards.
    config_generation_.fetch_add(1, std::memory_order_acq_rel);
    mutation_gen_.fetch_add(1, std::memory_order_acq_rel);
  }
  ViolationAction violation_action() const {
    return action_.load(std::memory_order_acquire);
  }
  void SetViolationAction(ViolationAction action) {
    action_.store(action, std::memory_order_release);
  }

  /// The active store. Mutations through this reference are picked up by
  /// concurrent guards at their next frame-freshness check (the store's
  /// own generation counter). Must not race SwapStore.
  PolicyStore& store() { return *store_; }
  const PolicyStore& store() const { return *store_; }

  /// Swap the policy structure without touching protected modules — the
  /// point of the single-symbol guard interface (§3.2). Blocks for an
  /// RCU grace period: when it returns, no in-flight guard references
  /// pre-swap policy and the returned store is safe to destroy.
  std::unique_ptr<PolicyStore> SwapStore(std::unique_ptr<PolicyStore> store);

  /// Pure decision, no logging/panic/accounting.
  bool Check(uint64_t addr, uint64_t size, uint64_t access_flags) const;

  /// The guard itself: carat_guard(addr, size, access_flags). Returns
  /// true when allowed; on denial logs and (by default) panics.
  bool Guard(uint64_t addr, uint64_t size, uint64_t access_flags);

  /// carat_guard_range(addr, size, access_flags, elided): the covering
  /// check the elision pass emits for a widened cluster of same-base
  /// accesses. One decision over the whole interval; on success `elided`
  /// member accesses are credited to guard.elided (global counter,
  /// per-CPU stats slice, and the cover's hot-site row). A denial is
  /// attributed to the cover site with the interval's address and span.
  bool GuardRange(uint64_t addr, uint64_t size, uint64_t access_flags,
                  uint64_t elided);

  /// §5 extension: privileged-intrinsic permission check.
  bool IntrinsicGuard(uint64_t intrinsic_id);
  void AllowIntrinsic(uint64_t intrinsic_id);
  void DenyIntrinsic(uint64_t intrinsic_id);
  void SetIntrinsicDefaultAllow(bool allow);

  /// kop::cfi: carat_cfi_check(target, set_id) — the out-of-line slow
  /// path. Returns true when `target` is a member of legal-target set
  /// `set_id`; a miss (or an out-of-range set id) is a violation with the
  /// same logging / panic / quarantine semantics as a memory guard, with
  /// GuardViolation.is_cfi set so the loader contains it under the "cfi"
  /// reason. Decides against the RCU-published frame, lock-free.
  bool CfiCheck(uint64_t target, uint64_t set_id);

  /// Number of registered legal-target sets (test/procfs introspection).
  size_t CfiSetCount() const;

  /// Counter totals folded across the per-CPU slots. Returned by value:
  /// concurrent Guard()s keep mutating their own slots, so a reference
  /// would let readers observe torn counter sets.
  GuardStats stats() const;
  /// One simulated CPU's share of the counters (the concurrency battery
  /// proves these sum to stats()).
  GuardStats PerCpuStats(uint32_t cpu) const;
  void ResetStats();

  /// The most recent denials, oldest first (capacity 64).
  std::vector<ViolationRecord> RecentViolations() const;

  /// Per-site hit/deny table, hottest first (ties by token), folded
  /// across the per-CPU shards. Sites are trace::GlobalSites tokens;
  /// token 0 collects unattributed guards (direct probes, natively-built
  /// drivers without site context).
  std::vector<HotSite> HotSites() const;

  /// When false, Guard() skips virtual-clock charging (used by benches
  /// that account guard cost themselves).
  void SetChargeCycles(bool charge) {
    charge_cycles_.store(charge, std::memory_order_release);
  }

  /// Fault-injection hook (kop::fault): guards firing from this
  /// trace-site token deny unconditionally — a spurious violation, as a
  /// corrupted guard table would produce. kNoForcedSite disarms.
  static constexpr uint64_t kNoForcedSite = ~uint64_t{0};
  void ForceDenyAtSite(uint64_t site) {
    force_deny_site_.store(site, std::memory_order_release);
  }
  uint64_t forced_deny_site() const {
    return force_deny_site_.load(std::memory_order_acquire);
  }

  /// Frames published since construction (first guard publishes one).
  /// Test introspection for update-atomicity proofs.
  uint64_t frames_published() const {
    return frames_published_.load(std::memory_order_acquire);
  }

  /// Copy of the region list in the frame a guard running right now
  /// would decide against (taken inside an RCU read section). The
  /// concurrency battery uses this to prove policy updates land
  /// fully-old-or-fully-new: every snapshot equals one published
  /// configuration in its entirety, never a mix.
  std::vector<Region> FrameSnapshot() const;

  // ------------------------------------------------------------------
  // Inline-guard fast path (kernel::GuardFastOps, DESIGN.md §15). A pin
  // captures the published PolicyFrame once per outermost module call on
  // the calling CPU: one RCU read section held for the call, the frame
  // pointer, both generations, and the precomputed guard-cycle charge.
  // Every inline check then runs against the immutable region index with
  // no RCU entry, no histogram updates, and no trace events. Any outcome
  // other than a proven allow deopts (returns false) to Guard()/
  // GuardRange(), which owns all violation and containment semantics.
  //
  // Holding the read section for the whole call means SwapStore's grace
  // period waits for in-flight module calls to finish — the documented
  // cost of whole-call pinning (updates between calls are unaffected).
  // ------------------------------------------------------------------

  /// Open (or nest) the calling CPU's frame pin. Always succeeds.
  bool PinFrame() override;
  /// Close one nesting level; outermost close leaves the read section.
  void UnpinFrame() override;
  /// True = allowed against the pinned frame and fully accounted.
  /// False = deopt: not pinned, frame generation moved (the pin is
  /// refreshed so later guards in the call are fast again), the
  /// fault-injection forced-deny is armed, or the check failed.
  bool FastGuard(uint64_t addr, uint64_t size, uint64_t access_flags,
                 uint64_t site) override;
  bool FastGuardRange(uint64_t addr, uint64_t size, uint64_t access_flags,
                      uint64_t elided, uint64_t site) override;
  /// Append a module's attested legal-target sets (insmod time). Each set
  /// is sorted on registration; the returned base rebases the module's
  /// local set ids to engine-global ids. Sets are never unregistered —
  /// ids stay stable and stale frames stay decidable — matching the
  /// append-only guard-site token space.
  uint64_t RegisterCfiSets(
      const std::vector<std::vector<uint64_t>>& sets) override;
  /// Inline CFI membership check against the pinned frame. Same deopt
  /// ladder as FastGuard; false sends the caller to CfiCheck(), which
  /// owns violation semantics.
  bool FastCfiCheck(uint64_t target, uint64_t set_id, uint64_t site) override;

 private:
  struct CpuStats {
    std::atomic<uint64_t> guard_calls{0};
    std::atomic<uint64_t> allowed{0};
    std::atomic<uint64_t> denied{0};
    std::atomic<uint64_t> intrinsic_calls{0};
    std::atomic<uint64_t> intrinsic_denied{0};
    std::atomic<uint64_t> elided{0};
    std::atomic<uint64_t> cfi_checks{0};
    std::atomic<uint64_t> cfi_denied{0};
  };

  /// One row of a shard's site-attribution table. Counters are relaxed
  /// atomics written with plain load+store: each shard has exactly one
  /// writer (its own CPU), the atomics only make cross-CPU folds and
  /// resets race-free.
  struct SiteRow {
    std::atomic<uint64_t> site{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> denied{0};
    std::atomic<uint64_t> elided{0};
  };
  struct SiteTable {
    size_t capacity = 0;
    std::unique_ptr<SiteRow[]> rows;
  };

  /// Per-CPU slice of the site-attribution table, dense-indexed by trace
  /// site token. The hot path bumps an existing row without the lock
  /// (single writer per shard); the lock serializes growth, folds, and
  /// resets. Growth frees the old table immediately — safe because only
  /// the owning CPU reads rows lock-free and it is the one growing.
  struct SiteShard {
    Spinlock lock;
    std::atomic<SiteTable*> table{nullptr};
    std::unique_ptr<SiteTable> storage;
  };

  /// One CPU's frame pin. `rcu` holds the read section open for the
  /// whole outermost module call so `frame` stays valid; the captured
  /// mutation clock tells FastGuard when the pinned frame went stale
  /// (deopt + refresh). `depth` counts nesting (module-to-module calls).
  /// The stats / sites / clock / span fields are resolved once per pin so
  /// the inline path runs no per-guard CPU-slot lookups; `default_allow`
  /// may go stale only together with `mutation_gen` (SetMode bumps it),
  /// which deopts the guard first.
  struct PinSlot {
    uint32_t depth = 0;
    std::optional<smp::RcuDomain::ReadGuard> rcu;
    const PolicyFrame* frame = nullptr;
    uint64_t mutation_gen = 0;
    double guard_cycles = 0.0;
    bool default_allow = false;
    CpuStats* stats = nullptr;
    SiteShard* sites = nullptr;
    // This CPU's clock accumulator, resolved once at pin time so inline
    // guards charge cycles with one load+store instead of a slot lookup.
    std::atomic<double>* clock_cell = nullptr;
    // The global span recorder, cached so the fast path's guard-decision
    // span costs one relaxed enabled-load instead of an out-of-line
    // GlobalSpans() call per guard.
    trace::SpanRecorder* spans = nullptr;
    // Elision credits accumulated over the pinned call and flushed to the
    // global guard.elided counter at unpin: one fetch_add per call instead
    // of one per covering guard. Per-CPU stats stay exact per cover.
    uint64_t elided_batch = 0;
  };

  /// Current frame if fresh, else republish. Called inside an RCU read
  /// section; the returned pointer is valid until the section ends.
  const PolicyFrame* CurrentFrame() const;
  const PolicyFrame* RepublishFrame() const;

  /// First-match linear scan, the linear table's exact semantics (depth
  /// counts every entry examined, including the match).
  static std::optional<uint32_t> FrameLookup(const PolicyFrame& frame,
                                             uint64_t addr, uint64_t size,
                                             uint64_t* depth);

  void NoteSite(uint64_t site, bool allowed, uint64_t elided = 0);
  /// Shard-directed variant for the inline path (shard resolved at pin
  /// time). Lock-free when the row exists; takes the shard lock only to
  /// grow the table.
  void NoteSiteIn(SiteShard& shard, uint64_t site, bool allowed,
                  uint64_t elided);
  static void GrowSiteTable(SiteShard& shard, uint64_t site);
  /// Re-capture the pinned frame after its generations moved (called
  /// with the slot's read section still open, which keeps the refresh
  /// race-free against reclamation).
  void RefreshPin(PinSlot& slot);
  uint64_t FoldGuardCalls() const;
  uint64_t FoldIntrinsicCalls() const;
  void RecordViolation(const ViolationRecord& record);

  kernel::Kernel* kernel_;
  std::unique_ptr<PolicyStore> store_;
  // Lock-free alias of store_.get() for the guard path's freshness
  // check: SwapStore reseats store_ while guards are in flight, so the
  // pointer read must be atomic. Dereferencing is safe because guards
  // hold an RCU read section and SwapStore synchronizes before the old
  // store can be destroyed.
  std::atomic<PolicyStore*> store_ptr_{nullptr};
  std::atomic<PolicyMode> mode_;
  std::atomic<ViolationAction> action_{ViolationAction::kPanic};
  std::atomic<bool> charge_cycles_{true};
  std::atomic<uint64_t> force_deny_site_{kNoForcedSite};

  // Copy-publish machinery. writer_lock_ serializes republish, store
  // swaps, and intrinsic-config mutation; config_generation_ covers
  // everything in the frame that is not the store's own contents.
  mutable Spinlock writer_lock_;
  mutable std::atomic<const PolicyFrame*> frame_{nullptr};
  mutable smp::RcuDomain rcu_;
  std::atomic<uint64_t> config_generation_{0};
  // Combined mutation clock for the inline fast path: bumped by every
  // config change here AND by store mutators through the attached cell
  // (PolicyStore::AttachMutationCell), so a pinned guard validates its
  // frame with ONE generation load instead of two — the store half of
  // the old check chased store_ptr_ to reach the store's counter.
  std::atomic<uint64_t> mutation_gen_{0};
  mutable std::atomic<uint64_t> frames_published_{0};

  // Intrinsic master sets (guarded by writer_lock_; guards read the
  // frame's sorted copies).
  bool intrinsic_default_allow_ = false;
  std::set<uint64_t> intrinsic_allowed_;
  std::set<uint64_t> intrinsic_denied_;
  // CFI master table (guarded by writer_lock_; checks read the frame's
  // copy). Append-only — see RegisterCfiSets.
  std::vector<std::vector<uint64_t>> cfi_sets_;

  smp::PerCpu<CpuStats> cpu_stats_;
  smp::PerCpu<PinSlot> pin_slots_;
  mutable smp::PerCpu<SiteShard> site_shards_;

  mutable Spinlock violations_lock_;
  RingBuffer<ViolationRecord> violations_{64};

  // Registered once in the constructor; registry pointers are stable, so
  // the hot path skips the name lookup.
  trace::Log2Histogram* latency_hist_;
  trace::Log2Histogram* lookup_depth_hist_;
  trace::Counter* denied_counter_;
  trace::Counter* elided_counter_;
  trace::Counter* deopt_counter_;
};

}  // namespace kop::policy
