// PolicyStore: the data structure behind the guard's permission check.
// The paper ships the 64-entry linear table and discusses a zoo of
// alternatives (§3.1, §4.2); each is implemented here behind this
// interface so bench/abl1_policy_structures can race them and the policy
// module can swap them without touching protected modules.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "kop/policy/region.hpp"
#include "kop/util/spinlock.hpp"
#include "kop/util/status.hpp"

namespace kop::policy {

struct StoreStats {
  uint64_t lookups = 0;
  uint64_t entries_scanned = 0;  // structure-specific work counter
  uint64_t fast_path_hits = 0;   // cache/AMQ short-circuits
};

class PolicyStore {
 public:
  virtual ~PolicyStore() = default;

  virtual std::string_view name() const = 0;

  /// Insert a region. Implementations that cannot represent overlapping
  /// regions reject them (the paper's noted tradeoff); the linear table
  /// accepts overlaps with first-match-wins semantics.
  ///
  /// Mutators are non-virtual template methods: they serialize under the
  /// store's structural lock and bump generation() on success, so every
  /// caller — the policy module's ioctl path, tests poking
  /// engine.store().Add() directly — invalidates published policy frames
  /// without knowing frames exist.
  Status Add(const Region& region) {
    std::lock_guard<Spinlock> guard(lock_);
    Status status = DoAdd(region);
    if (status.ok()) BumpGeneration();
    return status;
  }

  /// Remove the region with this exact base. kNotFound when absent.
  Status Remove(uint64_t base) {
    std::lock_guard<Spinlock> guard(lock_);
    Status status = DoRemove(base);
    if (status.ok()) BumpGeneration();
    return status;
  }

  void Clear() {
    std::lock_guard<Spinlock> guard(lock_);
    DoClear();
    BumpGeneration();
  }

  /// Attach (or detach, with nullptr) an external mutation clock that
  /// mutators bump alongside the structural generation. The engine
  /// attaches its own cell to the active store so pinned inline guards
  /// can detect BOTH store mutations and config changes with a single
  /// generation load instead of two (one of them a pointer chase).
  void AttachMutationCell(std::atomic<uint64_t>* cell) {
    std::lock_guard<Spinlock> guard(lock_);
    mutation_cell_ = cell;
  }

  size_t Size() const {
    std::lock_guard<Spinlock> guard(lock_);
    return DoSize();
  }

  /// All regions, in the structure's iteration order.
  std::vector<Region> Snapshot() const {
    std::lock_guard<Spinlock> guard(lock_);
    return DoSnapshot();
  }

  /// Monotonic mutation counter. A policy frame published at generation G
  /// is current while generation() == G; guards republish on mismatch.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Find the protection that applies to [addr, addr+size): the matching
  /// region's prot, or nullopt when no region covers the whole range.
  /// NOT synchronized against mutators (lookups may restructure — the
  /// splay tree — or fill caches): direct callers are single-threaded
  /// benches and tests; the engine's concurrent guard path reads
  /// immutable frames instead and never calls this.
  virtual std::optional<uint32_t> Lookup(uint64_t addr,
                                         uint64_t size) const = 0;

  const StoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StoreStats(); }

 protected:
  virtual Status DoAdd(const Region& region) = 0;
  virtual Status DoRemove(uint64_t base) = 0;
  virtual void DoClear() = 0;
  virtual size_t DoSize() const = 0;
  virtual std::vector<Region> DoSnapshot() const = 0;

  mutable StoreStats stats_;

 private:
  // Callers hold lock_.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_release);
    if (mutation_cell_ != nullptr) {
      mutation_cell_->fetch_add(1, std::memory_order_acq_rel);
    }
  }

  mutable Spinlock lock_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t>* mutation_cell_ = nullptr;  // guarded by lock_
};

}  // namespace kop::policy
