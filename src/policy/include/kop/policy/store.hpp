// PolicyStore: the data structure behind the guard's permission check.
// The paper ships the 64-entry linear table and discusses a zoo of
// alternatives (§3.1, §4.2); each is implemented here behind this
// interface so bench/abl1_policy_structures can race them and the policy
// module can swap them without touching protected modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "kop/policy/region.hpp"
#include "kop/util/status.hpp"

namespace kop::policy {

struct StoreStats {
  uint64_t lookups = 0;
  uint64_t entries_scanned = 0;  // structure-specific work counter
  uint64_t fast_path_hits = 0;   // cache/AMQ short-circuits
};

class PolicyStore {
 public:
  virtual ~PolicyStore() = default;

  virtual std::string_view name() const = 0;

  /// Insert a region. Implementations that cannot represent overlapping
  /// regions reject them (the paper's noted tradeoff); the linear table
  /// accepts overlaps with first-match-wins semantics.
  virtual Status Add(const Region& region) = 0;

  /// Remove the region with this exact base. kNotFound when absent.
  virtual Status Remove(uint64_t base) = 0;

  virtual void Clear() = 0;
  virtual size_t Size() const = 0;

  /// Find the protection that applies to [addr, addr+size): the matching
  /// region's prot, or nullopt when no region covers the whole range.
  virtual std::optional<uint32_t> Lookup(uint64_t addr,
                                         uint64_t size) const = 0;

  /// All regions, in the structure's iteration order.
  virtual std::vector<Region> Snapshot() const = 0;

  const StoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StoreStats(); }

 protected:
  mutable StoreStats stats_;
};

}  // namespace kop::policy
