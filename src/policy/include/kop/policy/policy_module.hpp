// The CARAT KOP policy module (paper §3.1): "this module is inserted into
// the kernel and provides a single symbol, carat_guard, which is invoked
// by modules which have been transformed by the compiler." On insertion
// it exports carat_guard (and the §5 carat_intrinsic_guard), registers
// /dev/carat, and serves ioctls from the policy-manager tool.
#pragma once

#include <memory>

#include "kop/kernel/kernel.hpp"
#include "kop/policy/engine.hpp"
#include "kop/policy/ioctl_abi.hpp"

namespace kop::policy {

class PolicyModule {
 public:
  /// Insert the policy module into the kernel. `store` defaults to the
  /// paper's 64-entry linear table when null.
  static Result<std::unique_ptr<PolicyModule>> Insert(
      kernel::Kernel* kernel, std::unique_ptr<PolicyStore> store = nullptr,
      PolicyMode mode = PolicyMode::kDefaultDeny);

  /// Unexports the symbols and removes /dev/carat (rmmod).
  ~PolicyModule();
  PolicyModule(const PolicyModule&) = delete;
  PolicyModule& operator=(const PolicyModule&) = delete;

  PolicyEngine& engine() { return *engine_; }
  const PolicyEngine& engine() const { return *engine_; }

 private:
  explicit PolicyModule(kernel::Kernel* kernel);

  Status HandleIoctl(uint32_t cmd, std::vector<uint8_t>& arg);

  kernel::Kernel* kernel_;
  std::unique_ptr<PolicyEngine> engine_;
  bool installed_ = false;
};

}  // namespace kop::policy
