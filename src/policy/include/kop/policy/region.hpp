// Memory-region policy entries (paper §3.1): "Each entry stores a
// region's lower bound, length, and protection flags."
#pragma once

#include <cstdint>
#include <string>

#include "kop/util/bits.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::policy {

/// Protection flags use the same bit meanings as guard access_flags.
inline constexpr uint32_t kProtRead = static_cast<uint32_t>(kGuardAccessRead);
inline constexpr uint32_t kProtWrite =
    static_cast<uint32_t>(kGuardAccessWrite);
inline constexpr uint32_t kProtRW = kProtRead | kProtWrite;
inline constexpr uint32_t kProtNone = 0;

struct Region {
  uint64_t base = 0;
  uint64_t len = 0;
  uint32_t prot = kProtNone;

  bool Contains(uint64_t addr, uint64_t size) const {
    return RangeContains(base, len, addr, size == 0 ? 1 : size);
  }
  bool Overlaps(const Region& other) const {
    return RangesOverlap(base, len, other.base, other.len);
  }
  bool Allows(uint64_t access_flags) const {
    return (prot & access_flags) == access_flags;
  }

  std::string ToString() const;
};

}  // namespace kop::policy
