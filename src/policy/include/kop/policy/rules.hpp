// The policy rules language: the paper frames region policies as
// "what amount to firewall rules" set by the operator — this makes that
// literal. A small line-oriented config compiles to a policy-engine
// state (mode + region table + intrinsic permissions):
//
//   # comments and blank lines are fine
//   mode deny                      # or: mode allow
//   allow kernel-half rw           # named range
//   deny  user-half                # prot none
//   allow 0xffff888000000000 +0x100000 r     # base +len
//   allow 0x1000-0x2000 w                    # base-end (end exclusive)
//   intrinsic allow wrmsr
//   intrinsic deny  cli
//
// Named ranges come from the kernel's memory map. Rules are applied in
// file order, which is match order for first-match stores (the paper's
// linear table) — exactly like firewall rule files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/policy/engine.hpp"
#include "kop/util/status.hpp"

namespace kop::policy {

struct IntrinsicRule {
  uint64_t intrinsic_id = 0;
  bool allow = false;
};

/// A parsed policy file: what ApplyPolicySpec feeds into an engine.
struct PolicySpec {
  PolicyMode mode = PolicyMode::kDefaultDeny;
  bool mode_set = false;
  std::vector<Region> regions;  // in file order
  std::vector<IntrinsicRule> intrinsics;
};

/// Named address ranges resolvable in rule files.
using NamedRanges = std::map<std::string, Region>;

/// The standard names for a kernel's memory map: kernel-half, user-half,
/// direct-map, kernel-text, module-area, vmalloc.
NamedRanges DefaultNamedRanges(const kernel::Kernel& kernel);

/// Parse rule text. Errors carry the line number.
Result<PolicySpec> ParsePolicyRules(const std::string& text,
                                    const NamedRanges& names);

/// Clear the engine's table and apply the spec (mode, regions in order,
/// intrinsic permissions).
Status ApplyPolicySpec(const PolicySpec& spec, PolicyEngine& engine);

/// Render an engine's current policy back as rule text (round-trips
/// through ParsePolicyRules for table-backed engines).
std::string RenderPolicyRules(const PolicyEngine& engine);

/// Policy synthesis: the "what would this module need?" audit workflow.
/// Run the module under default-deny + log-only, then feed the recorded
/// violations here to get the minimal page-granular default-deny policy
/// that would have allowed exactly those accesses (adjacent/overlapping
/// pages coalesce into regions; flags union per region; intrinsic
/// denials become intrinsic-allow rules). The operator reviews the
/// generated rules before applying them — synthesis proposes, the human
/// disposes.
PolicySpec SynthesizePolicy(const std::vector<ViolationRecord>& trace,
                            uint64_t granularity = 4096);

}  // namespace kop::policy
