// /proc-style views over the guard runtime: the operator-facing text
// renderings of guard statistics and the per-guard-site profile (the
// "perf annotate" table for injected guards). Pure renderers, no state.
#pragma once

#include <string>

#include "kop/policy/engine.hpp"

namespace kop::policy {

/// guard counters, violation ring summary, and the guard-latency /
/// lookup-depth histograms from the global metrics registry.
std::string ProcGuardStats(const PolicyEngine& engine);

/// Per-guard-site hit/deny table, hottest first, labeled via
/// trace::GlobalSites ("module:@fn+inst  hits  denied  detail").
std::string ProcHotSites(const PolicyEngine& engine);

}  // namespace kop::policy
