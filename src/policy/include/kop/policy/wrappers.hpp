// Decorator stores: the CARAT-CAKE-style single-entry cache and the
// AMQ/Bloom front filter (§3.1, §4.2 speculation). Both wrap any inner
// PolicyStore and preserve its semantics exactly — fast paths only ever
// short-circuit to the same answer the inner store would give.
#pragma once

#include <memory>

#include "kop/policy/amq.hpp"
#include "kop/policy/store.hpp"

namespace kop::policy {

/// "a simple cache over the region data structure (as done in CARAT
/// CAKE)" — remembers the last matching region; the common case of
/// consecutive guards hitting the same region answers without touching
/// the inner structure.
class SingleEntryCacheStore : public PolicyStore {
 public:
  explicit SingleEntryCacheStore(std::unique_ptr<PolicyStore> inner)
      : inner_(std::move(inner)) {}

  std::string_view name() const override { return "single-entry-cache"; }
  std::optional<uint32_t> Lookup(uint64_t addr, uint64_t size) const override;

  const PolicyStore& inner() const { return *inner_; }

 protected:
  Status DoAdd(const Region& region) override;
  Status DoRemove(uint64_t base) override;
  void DoClear() override;
  size_t DoSize() const override { return inner_->Size(); }
  std::vector<Region> DoSnapshot() const override { return inner_->Snapshot(); }

 private:
  std::unique_ptr<PolicyStore> inner_;
  mutable Region cached_{};
  mutable bool cache_valid_ = false;
};

/// Bloom pre-filter over the 4 KiB pages covered by any region. A
/// negative answer proves no region covers the page, skipping the inner
/// lookup entirely — the paper's AMQ idea for default-allow policies
/// where most accesses fall outside every (restricting) region, and for
/// fast definitive misses in general.
class BloomFrontStore : public PolicyStore {
 public:
  static constexpr uint64_t kPageShift = 12;

  explicit BloomFrontStore(std::unique_ptr<PolicyStore> inner,
                           size_t filter_bits = 1 << 16)
      : inner_(std::move(inner)), filter_(filter_bits) {}

  std::string_view name() const override { return "bloom-front"; }
  std::optional<uint32_t> Lookup(uint64_t addr, uint64_t size) const override;

  const BloomFilter& filter() const { return filter_; }

 protected:
  Status DoAdd(const Region& region) override;
  Status DoRemove(uint64_t base) override;  // rebuilds the filter
  void DoClear() override;
  size_t DoSize() const override { return inner_->Size(); }
  std::vector<Region> DoSnapshot() const override { return inner_->Snapshot(); }

 private:
  void InsertRegionPages(const Region& region);

  std::unique_ptr<PolicyStore> inner_;
  BloomFilter filter_;
};

}  // namespace kop::policy
