// The paper's suggested first upgrade (§4.2): "simply ... sort the
// regions in the policy in order, and then do a binary search over the
// table instead of a linear scan." Non-overlapping regions only.
#pragma once

#include "kop/policy/store.hpp"

namespace kop::policy {

class SortedRegionTable : public PolicyStore {
 public:
  std::string_view name() const override { return "sorted-binary-search"; }

  std::optional<uint32_t> Lookup(uint64_t addr, uint64_t size) const override;

 protected:
  Status DoAdd(const Region& region) override;
  Status DoRemove(uint64_t base) override;
  void DoClear() override { regions_.clear(); }
  size_t DoSize() const override { return regions_.size(); }
  std::vector<Region> DoSnapshot() const override { return regions_; }

 private:
  std::vector<Region> regions_;  // sorted by base, non-overlapping
};

}  // namespace kop::policy
