// Approximate-membership-query filter (paper §3.1: "Probabilistic
// structures, like any of a variety of AMQ-filters, may very well improve
// average performance, as we expect modules to be compliant with policies
// for nearly every access"). A classic blocked Bloom filter over
// page-granular keys; false positives only ever cause a (safe) full
// lookup, never a wrong answer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kop::policy {

class BloomFilter {
 public:
  /// `bits` is rounded up to a power of two; `hashes` in [1, 8].
  explicit BloomFilter(size_t bits = 1 << 16, unsigned hashes = 3);

  void Insert(uint64_t key);
  bool MaybeContains(uint64_t key) const;
  void Clear();

  size_t bit_count() const { return words_.size() * 64; }
  uint64_t insertions() const { return insertions_; }

  /// Expected false-positive rate for the current load.
  double EstimatedFalsePositiveRate() const;

 private:
  uint64_t HashN(uint64_t key, unsigned n) const;

  std::vector<uint64_t> words_;
  uint64_t mask_;
  unsigned hashes_;
  uint64_t insertions_ = 0;
};

}  // namespace kop::policy
