// The structure the paper *didn't* pick: "the Linux kernel's red-black
// tree (even though the tree would have O(log n) time complexity)" —
// rejected for pointer chasing at small n (§3.1). Backed by std::map
// (a red-black tree in every mainstream implementation), keyed by base.
// Non-overlapping regions only.
#pragma once

#include <map>

#include "kop/policy/store.hpp"

namespace kop::policy {

class RbTreeRegionStore : public PolicyStore {
 public:
  std::string_view name() const override { return "rbtree"; }

  std::optional<uint32_t> Lookup(uint64_t addr, uint64_t size) const override;

 protected:
  Status DoAdd(const Region& region) override;
  Status DoRemove(uint64_t base) override;
  void DoClear() override { regions_.clear(); }
  size_t DoSize() const override { return regions_.size(); }
  std::vector<Region> DoSnapshot() const override;

 private:
  std::map<uint64_t, Region> regions_;  // base -> region
};

}  // namespace kop::policy
