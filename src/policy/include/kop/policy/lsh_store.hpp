// Locality-sensitive bucket table (paper §3.1): "Modification of the
// table to use a locality-sensitive hash function, thus finding the
// 'closest bucket' of policy-defined regions to an arbitrary address in
// constant time." Addresses are bucketed by their high bits (the LSH for
// 1-D addresses is plain quantisation); each bucket lists the regions
// overlapping its span, so a lookup scans one — usually tiny — bucket.
#pragma once

#include <unordered_map>

#include "kop/policy/store.hpp"

namespace kop::policy {

class LshBucketStore : public PolicyStore {
 public:
  /// `bucket_shift`: log2 of the bucket span (default 1 MiB buckets).
  explicit LshBucketStore(unsigned bucket_shift = 20)
      : bucket_shift_(bucket_shift) {}

  std::string_view name() const override { return "lsh-buckets"; }

  std::optional<uint32_t> Lookup(uint64_t addr, uint64_t size) const override;

  /// Number of buckets currently populated (tests / bench reporting).
  size_t BucketCount() const { return buckets_.size(); }

 protected:
  Status DoAdd(const Region& region) override;
  Status DoRemove(uint64_t base) override;
  void DoClear() override;
  size_t DoSize() const override { return regions_.size(); }
  std::vector<Region> DoSnapshot() const override;

 private:
  uint64_t BucketOf(uint64_t addr) const { return addr >> bucket_shift_; }

  unsigned bucket_shift_;
  // Insertion-ordered master list (first-match-wins like the table).
  std::vector<Region> regions_;
  // bucket id -> indices into regions_, in insertion order.
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
};

}  // namespace kop::policy
