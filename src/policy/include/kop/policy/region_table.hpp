// The paper's policy structure: a fixed table of at most 64 regions,
// scanned linearly. "A table was chosen in order to minimize pointer
// chasing ... optimized for cache-friendly search of a small number of
// regions" (§3.1, §4.2). First match wins, so overlapping regions are
// representable (the tradeoff the fancier structures give up).
#pragma once

#include <array>

#include "kop/policy/store.hpp"

namespace kop::policy {

class RegionTable64 : public PolicyStore {
 public:
  static constexpr size_t kMaxRegions = 64;

  std::string_view name() const override { return "linear-table-64"; }

  std::optional<uint32_t> Lookup(uint64_t addr, uint64_t size) const override;

 protected:
  Status DoAdd(const Region& region) override;
  Status DoRemove(uint64_t base) override;
  void DoClear() override { count_ = 0; }
  size_t DoSize() const override { return count_; }
  std::vector<Region> DoSnapshot() const override;

 private:
  std::array<Region, kMaxRegions> regions_{};
  size_t count_ = 0;
};

}  // namespace kop::policy
