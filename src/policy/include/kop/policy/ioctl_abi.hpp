// The /dev/carat ioctl ABI shared between the policy module and the
// userspace policy-manager tool (paper Figure 1: "A server owner can
// configure the CARAT KOP policy through the ioctl interface").
// Arguments are fixed-layout PODs copied through the arg buffer, like
// copy_from_user/copy_to_user of a userspace struct.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace kop::policy {

inline constexpr const char* kCaratDevicePath = "/dev/carat";

enum CaratIoctl : uint32_t {
  KOP_IOCTL_ADD_REGION = 0x4b01,
  KOP_IOCTL_REMOVE_REGION = 0x4b02,
  KOP_IOCTL_CLEAR_REGIONS = 0x4b03,
  KOP_IOCTL_SET_MODE = 0x4b04,        // arg: CaratModeArg
  KOP_IOCTL_GET_STATS = 0x4b05,       // out: CaratStatsArg
  KOP_IOCTL_COUNT_REGIONS = 0x4b06,   // out: CaratCountArg
  KOP_IOCTL_LIST_REGIONS = 0x4b07,    // out: CaratListArg
  KOP_IOCTL_ALLOW_INTRINSIC = 0x4b08, // arg: CaratIntrinsicArg
  KOP_IOCTL_DENY_INTRINSIC = 0x4b09,  // arg: CaratIntrinsicArg
  KOP_IOCTL_RESET_STATS = 0x4b0a,
  KOP_IOCTL_GET_VIOLATIONS = 0x4b0b,  // out: CaratViolationsArg
  KOP_IOCTL_READ_TRACE = 0x4b0c,      // out: CaratTraceArg
  KOP_IOCTL_GET_HOT_SITES = 0x4b0d,   // out: CaratHotSitesArg
  KOP_IOCTL_READ_POSTMORTEM = 0x4b0e, // out: CaratPostmortemArg
};

// The paper spells the ioctl names CARAT_IOC_*; keep those as aliases so
// code written against the paper reads naturally.
inline constexpr uint32_t CARAT_IOC_GET_STATS = KOP_IOCTL_GET_STATS;
inline constexpr uint32_t CARAT_IOC_GET_VIOLATIONS = KOP_IOCTL_GET_VIOLATIONS;
inline constexpr uint32_t CARAT_IOC_READ_TRACE = KOP_IOCTL_READ_TRACE;
inline constexpr uint32_t CARAT_IOC_GET_HOT_SITES = KOP_IOCTL_GET_HOT_SITES;
inline constexpr uint32_t CARAT_IOC_READ_POSTMORTEM =
    KOP_IOCTL_READ_POSTMORTEM;

struct CaratRegionArg {
  uint64_t base = 0;
  uint64_t len = 0;
  uint32_t prot = 0;
  uint32_t pad = 0;
};

struct CaratModeArg {
  uint32_t default_allow = 0;  // 0 = default deny, 1 = default allow
  uint32_t pad = 0;
};

struct CaratStatsArg {
  uint64_t guard_calls = 0;
  uint64_t allowed = 0;
  uint64_t denied = 0;
  uint64_t intrinsic_calls = 0;
  uint64_t intrinsic_denied = 0;
  /// Accesses proven by a covering-interval guard (appended field; older
  /// readers that unpack the shorter struct still see the ones above).
  uint64_t elided = 0;
  /// kop::cfi decisions/denials (appended fields, same compatibility
  /// rule as `elided`).
  uint64_t cfi_checks = 0;
  uint64_t cfi_denied = 0;
};

struct CaratCountArg {
  uint64_t count = 0;
};

struct CaratIntrinsicArg {
  uint64_t intrinsic_id = 0;
};

struct CaratListArg {
  static constexpr uint32_t kMax = 64;
  uint32_t count = 0;
  uint32_t pad = 0;
  CaratRegionArg regions[kMax] = {};
};

struct CaratViolationArg {
  uint64_t addr = 0;
  uint64_t size = 0;
  uint64_t access_flags = 0;
  uint64_t sequence = 0;
  uint32_t intrinsic = 0;
  uint32_t pad = 0;
};

struct CaratViolationsArg {
  static constexpr uint32_t kMax = 64;
  uint32_t count = 0;
  uint32_t pad = 0;
  CaratViolationArg records[kMax] = {};
};

/// One tracepoint record as copied out to userspace (mirrors
/// trace::TraceRecord without the C++ enum).
struct CaratTraceRecordArg {
  uint64_t tsc = 0;
  uint64_t seq = 0;
  uint32_t event = 0;  // trace::EventId value
  uint32_t cpu = 0;    // simulated CPU the record was appended on
  uint64_t args[4] = {};
};

struct CaratTraceArg {
  static constexpr uint32_t kMax = 64;
  uint32_t count = 0;
  uint32_t pad = 0;
  uint64_t total = 0;    // records ever appended
  uint64_t dropped = 0;  // overwritten before this read
  CaratTraceRecordArg records[kMax] = {};  // newest kMax, oldest first
};

struct CaratHotSiteArg {
  uint64_t site = 0;  // trace::GlobalSites token; 0 = unattributed
  uint64_t hits = 0;
  uint64_t denied = 0;
  uint64_t elided = 0;  // member accesses this covering site proved
  char label[96] = {};  // "module:@fn+inst" rendered kernel-side
};

struct CaratHotSitesArg {
  static constexpr uint32_t kMax = 64;
  uint32_t count = 0;
  uint32_t pad = 0;
  CaratHotSiteArg sites[kMax] = {};  // hottest first
};

/// The newest flight-recorder postmortem bundle, rendered kernel-side as
/// deterministic JSON. `present` = 0 when no incident has been captured;
/// bundles larger than the buffer are truncated (`truncated` = 1,
/// `total_len` the untruncated length).
struct CaratPostmortemArg {
  static constexpr uint32_t kMax = 8192;
  uint32_t present = 0;
  uint32_t truncated = 0;
  uint64_t total_len = 0;
  uint64_t incidents = 0;  // lifetime incident count
  char json[kMax] = {};    // NUL-terminated
};

/// Pack a POD into an ioctl arg buffer.
template <typename T>
std::vector<uint8_t> PackArg(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

/// Unpack; false when the buffer is too small.
template <typename T>
bool UnpackArg(const std::vector<uint8_t>& buffer, T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (buffer.size() < sizeof(T)) return false;
  std::memcpy(out, buffer.data(), sizeof(T));
  return true;
}

}  // namespace kop::policy
