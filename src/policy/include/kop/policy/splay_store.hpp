// Popularity-adaptive lookup (paper §4.2): "with a large enough number of
// regions, a popularity-based data structure such as a splay tree ...
// might be able to do better than a logarithmic search in the common
// case." A hand-written bottom-up splay tree keyed by region base; every
// hit splays the matched region to the root, so hot regions answer in
// O(1) amortized. Non-overlapping regions only.
#pragma once

#include <memory>

#include "kop/policy/store.hpp"

namespace kop::policy {

class SplayRegionTree : public PolicyStore {
 public:
  SplayRegionTree() = default;
  ~SplayRegionTree() override;
  SplayRegionTree(const SplayRegionTree&) = delete;
  SplayRegionTree& operator=(const SplayRegionTree&) = delete;

  std::string_view name() const override { return "splay-tree"; }

  std::optional<uint32_t> Lookup(uint64_t addr, uint64_t size) const override;

  /// Depth of the current root-path for `addr` without splaying (tests).
  size_t ProbeDepth(uint64_t addr) const;

 protected:
  Status DoAdd(const Region& region) override;
  Status DoRemove(uint64_t base) override;
  void DoClear() override;
  size_t DoSize() const override { return size_; }
  std::vector<Region> DoSnapshot() const override;

 private:
  struct Node {
    Region region;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
  };

  void RotateUp(Node* node) const;
  void Splay(Node* node) const;
  Node* FindCandidate(uint64_t addr) const;  // last node with base <= addr
  static void DestroySubtree(Node* node);

  mutable Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace kop::policy
