// Cuckoo filter (Fan et al., CoNEXT '14) — the second AMQ family the
// paper cites for the guard fast path (§3.1). Unlike the Bloom filter it
// supports deletion, so removing a policy region does not force a filter
// rebuild. Partial-key cuckoo hashing: 16-bit fingerprints, 4-way
// buckets, two candidate buckets per key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "kop/policy/store.hpp"

namespace kop::policy {

class CuckooFilter {
 public:
  static constexpr unsigned kSlotsPerBucket = 4;
  static constexpr unsigned kMaxKicks = 500;

  /// Capacity is rounded up to a power-of-two bucket count holding at
  /// least `capacity` fingerprints at full load.
  explicit CuckooFilter(size_t capacity = 4096, uint64_t seed = 0x5eed);

  /// False when the filter is too full (relocation gave up) — callers
  /// fall back to always consulting the backing store.
  bool Insert(uint64_t key);
  bool Contains(uint64_t key) const;
  /// True when a matching fingerprint was found and removed. Only delete
  /// keys that were actually inserted (standard cuckoo-filter contract).
  bool Delete(uint64_t key);

  void Clear();
  size_t Size() const { return count_; }
  size_t BucketCount() const { return bucket_count_; }
  double LoadFactor() const {
    return static_cast<double>(count_) /
           static_cast<double>(bucket_count_ * kSlotsPerBucket);
  }

 private:
  uint16_t Fingerprint(uint64_t key) const;
  size_t IndexOf(uint64_t key) const;
  size_t AltIndex(size_t index, uint16_t fingerprint) const;
  bool InsertAt(size_t index, uint16_t fingerprint);
  bool RemoveAt(size_t index, uint16_t fingerprint);
  bool ContainsAt(size_t index, uint16_t fingerprint) const;

  size_t bucket_count_;
  uint64_t seed_;
  uint64_t kick_state_;
  std::vector<uint16_t> slots_;  // bucket_count_ * kSlotsPerBucket; 0=empty
  size_t count_ = 0;
};

/// AMQ front over any PolicyStore using a cuckoo filter of the 4 KiB
/// pages covered by regions. Functionally identical to BloomFrontStore,
/// but Remove() deletes the region's pages instead of rebuilding.
class CuckooFrontStore : public PolicyStore {
 public:
  static constexpr uint64_t kPageShift = 12;

  explicit CuckooFrontStore(std::unique_ptr<PolicyStore> inner,
                            size_t filter_capacity = 1 << 14)
      : inner_(std::move(inner)), filter_(filter_capacity) {}

  std::string_view name() const override { return "cuckoo-front"; }
  std::optional<uint32_t> Lookup(uint64_t addr, uint64_t size) const override;

  const CuckooFilter& filter() const { return filter_; }

 protected:
  Status DoAdd(const Region& region) override;
  Status DoRemove(uint64_t base) override;
  void DoClear() override;
  size_t DoSize() const override { return inner_->Size(); }
  std::vector<Region> DoSnapshot() const override { return inner_->Snapshot(); }

 private:
  /// A page may be covered by several regions; reference-count inserts
  /// so deleting one region keeps shared pages present.
  std::unique_ptr<PolicyStore> inner_;
  CuckooFilter filter_;
  /// When the filter ever refused an insert, it is no longer a complete
  /// summary: disable the fast path until Clear().
  bool degraded_ = false;
};

}  // namespace kop::policy
