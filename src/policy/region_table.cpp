#include "kop/policy/region_table.hpp"

#include <cstdio>

namespace kop::policy {

std::string Region::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[0x%llx, +0x%llx) %s%s",
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(len),
                (prot & kProtRead) ? "r" : "-",
                (prot & kProtWrite) ? "w" : "-");
  return buf;
}

Status RegionTable64::DoAdd(const Region& region) {
  if (region.len == 0) return InvalidArgument("empty region");
  if (region.base + region.len < region.base) {
    return InvalidArgument("region wraps the address space");
  }
  if (count_ == kMaxRegions) {
    return NoSpace("region table full (" + std::to_string(kMaxRegions) + ")");
  }
  for (size_t i = 0; i < count_; ++i) {
    if (regions_[i].base == region.base && regions_[i].len == region.len) {
      return AlreadyExists("identical region already present");
    }
  }
  regions_[count_++] = region;
  return OkStatus();
}

Status RegionTable64::DoRemove(uint64_t base) {
  for (size_t i = 0; i < count_; ++i) {
    if (regions_[i].base == base) {
      // Preserve table order (first-match semantics depend on it).
      for (size_t j = i + 1; j < count_; ++j) regions_[j - 1] = regions_[j];
      --count_;
      return OkStatus();
    }
  }
  return NotFound("no region with that base");
}

std::optional<uint32_t> RegionTable64::Lookup(uint64_t addr,
                                              uint64_t size) const {
  ++stats_.lookups;
  // The paper's O(n) walk: branch-predictable, no pointer chasing.
  for (size_t i = 0; i < count_; ++i) {
    ++stats_.entries_scanned;
    if (regions_[i].Contains(addr, size)) return regions_[i].prot;
  }
  return std::nullopt;
}

std::vector<Region> RegionTable64::DoSnapshot() const {
  return std::vector<Region>(regions_.begin(), regions_.begin() + count_);
}

}  // namespace kop::policy
