#include "kop/policy/policy_module.hpp"

#include <cstdio>
#include <cstring>

#include "kop/flight/postmortem.hpp"
#include "kop/policy/region_table.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::policy {

PolicyModule::PolicyModule(kernel::Kernel* kernel) : kernel_(kernel) {}

Result<std::unique_ptr<PolicyModule>> PolicyModule::Insert(
    kernel::Kernel* kernel, std::unique_ptr<PolicyStore> store,
    PolicyMode mode) {
  if (store == nullptr) store = std::make_unique<RegionTable64>();
  auto module = std::unique_ptr<PolicyModule>(new PolicyModule(kernel));
  module->engine_ =
      std::make_unique<PolicyEngine>(kernel, std::move(store), mode);

  PolicyEngine* engine = module->engine_.get();
  KOP_RETURN_IF_ERROR(kernel->symbols().ExportFunction(
      kCaratGuardSymbol,
      [engine](const std::vector<uint64_t>& args) -> uint64_t {
        // void carat_guard(void* addr, size_t size, int access_flags)
        const uint64_t addr = args.size() > 0 ? args[0] : 0;
        const uint64_t size = args.size() > 1 ? args[1] : 0;
        const uint64_t flags = args.size() > 2 ? args[2] : 0;
        return engine->Guard(addr, size, flags) ? 1 : 0;
      }));
  KOP_RETURN_IF_ERROR(kernel->symbols().ExportFunction(
      kCaratGuardRangeSymbol,
      [engine](const std::vector<uint64_t>& args) -> uint64_t {
        // void carat_guard_range(void* addr, size_t size, int access_flags,
        //                        size_t elided)
        const uint64_t addr = args.size() > 0 ? args[0] : 0;
        const uint64_t size = args.size() > 1 ? args[1] : 0;
        const uint64_t flags = args.size() > 2 ? args[2] : 0;
        const uint64_t elided = args.size() > 3 ? args[3] : 0;
        return engine->GuardRange(addr, size, flags, elided) ? 1 : 0;
      }));
  KOP_RETURN_IF_ERROR(kernel->symbols().ExportFunction(
      kCaratIntrinsicGuardSymbol,
      [engine](const std::vector<uint64_t>& args) -> uint64_t {
        return engine->IntrinsicGuard(args.empty() ? 0 : args[0]) ? 1 : 0;
      }));
  KOP_RETURN_IF_ERROR(kernel->symbols().ExportFunction(
      kCaratCfiCheckSymbol,
      [engine](const std::vector<uint64_t>& args) -> uint64_t {
        // int carat_cfi_check(void* target, size_t set_id)
        const uint64_t target = args.size() > 0 ? args[0] : 0;
        const uint64_t set_id = args.size() > 1 ? args[1] : 0;
        return engine->CfiCheck(target, set_id) ? 1 : 0;
      }));

  // Publish the inline-guard fast path. Engines reach it through the
  // kernel facade (kernel::GuardFastOps), never through kop::policy —
  // clearing it at removal restores the all-slow-path world exactly.
  kernel->SetGuardFastOps(engine);

  PolicyModule* raw = module.get();
  KOP_RETURN_IF_ERROR(kernel->devices().Register(
      kCaratDevicePath,
      [raw](uint32_t cmd, std::vector<uint8_t>& arg) {
        return raw->HandleIoctl(cmd, arg);
      }));

  // Register the flight-recorder providers: postmortem bundles captured
  // while this policy module is inserted carry its frame generation and
  // guard-site heatmap. The destructor clears them — a bundle captured
  // after removal reports policy.present = false.
  flight::SetPolicyProvider([engine]() {
    flight::PolicyInfo info;
    info.present = true;
    info.frames_published = engine->frames_published();
    info.store_generation = engine->store().generation();
    info.store_size = engine->store().Size();
    info.mode = engine->mode() == PolicyMode::kDefaultAllow ? "default-allow"
                                                            : "default-deny";
    return info;
  });
  flight::SetHeatmapProvider([engine]() {
    std::vector<flight::HeatSite> out;
    for (const HotSite& row : engine->HotSites()) {
      flight::HeatSite site;
      site.site = row.site != 0 ? trace::GlobalSites().Label(row.site)
                                : "(unattributed)";
      site.hits = row.hits;
      site.denied = row.denied;
      out.push_back(std::move(site));
    }
    return out;
  });

  module->installed_ = true;
  kernel->log().Printk(kernel::KernLevel::kInfo,
                       "carat_kop: policy module loaded (%s, %s)",
                       std::string(engine->store().name()).c_str(),
                       mode == PolicyMode::kDefaultDeny ? "default-deny"
                                                        : "default-allow");
  return module;
}

PolicyModule::~PolicyModule() {
  if (!installed_) return;
  kernel_->SetGuardFastOps(nullptr);
  flight::SetPolicyProvider(nullptr);
  flight::SetHeatmapProvider(nullptr);
  (void)kernel_->symbols().Unexport(kCaratGuardSymbol);
  (void)kernel_->symbols().Unexport(kCaratGuardRangeSymbol);
  (void)kernel_->symbols().Unexport(kCaratIntrinsicGuardSymbol);
  (void)kernel_->symbols().Unexport(kCaratCfiCheckSymbol);
  (void)kernel_->devices().Unregister(kCaratDevicePath);
}

Status PolicyModule::HandleIoctl(uint32_t cmd, std::vector<uint8_t>& arg) {
  switch (cmd) {
    case KOP_IOCTL_ADD_REGION: {
      CaratRegionArg request;
      if (!UnpackArg(arg, &request)) return InvalidArgument("short arg");
      return engine_->store().Add(
          Region{request.base, request.len, request.prot});
    }
    case KOP_IOCTL_REMOVE_REGION: {
      CaratRegionArg request;
      if (!UnpackArg(arg, &request)) return InvalidArgument("short arg");
      return engine_->store().Remove(request.base);
    }
    case KOP_IOCTL_CLEAR_REGIONS:
      engine_->store().Clear();
      return OkStatus();
    case KOP_IOCTL_SET_MODE: {
      CaratModeArg request;
      if (!UnpackArg(arg, &request)) return InvalidArgument("short arg");
      engine_->SetMode(request.default_allow != 0 ? PolicyMode::kDefaultAllow
                                                  : PolicyMode::kDefaultDeny);
      return OkStatus();
    }
    case KOP_IOCTL_GET_STATS: {
      const GuardStats stats = engine_->stats();
      CaratStatsArg reply;
      reply.guard_calls = stats.guard_calls;
      reply.allowed = stats.allowed;
      reply.denied = stats.denied;
      reply.intrinsic_calls = stats.intrinsic_calls;
      reply.intrinsic_denied = stats.intrinsic_denied;
      reply.elided = stats.elided;
      reply.cfi_checks = stats.cfi_checks;
      reply.cfi_denied = stats.cfi_denied;
      arg = PackArg(reply);
      return OkStatus();
    }
    case KOP_IOCTL_COUNT_REGIONS: {
      CaratCountArg reply{engine_->store().Size()};
      arg = PackArg(reply);
      return OkStatus();
    }
    case KOP_IOCTL_LIST_REGIONS: {
      CaratListArg reply;
      const std::vector<Region> regions = engine_->store().Snapshot();
      for (const Region& region : regions) {
        if (reply.count == CaratListArg::kMax) break;
        reply.regions[reply.count++] =
            CaratRegionArg{region.base, region.len, region.prot, 0};
      }
      arg = PackArg(reply);
      return OkStatus();
    }
    case KOP_IOCTL_ALLOW_INTRINSIC: {
      CaratIntrinsicArg request;
      if (!UnpackArg(arg, &request)) return InvalidArgument("short arg");
      engine_->AllowIntrinsic(request.intrinsic_id);
      return OkStatus();
    }
    case KOP_IOCTL_DENY_INTRINSIC: {
      CaratIntrinsicArg request;
      if (!UnpackArg(arg, &request)) return InvalidArgument("short arg");
      engine_->DenyIntrinsic(request.intrinsic_id);
      return OkStatus();
    }
    case KOP_IOCTL_GET_VIOLATIONS: {
      CaratViolationsArg reply;
      for (const ViolationRecord& record : engine_->RecentViolations()) {
        if (reply.count == CaratViolationsArg::kMax) break;
        reply.records[reply.count++] =
            CaratViolationArg{record.addr, record.size, record.access_flags,
                              record.sequence,
                              record.intrinsic ? 1u : 0u, 0};
      }
      arg = PackArg(reply);
      return OkStatus();
    }
    case KOP_IOCTL_READ_TRACE: {
      CaratTraceArg reply;
      const trace::TraceRing& ring = trace::GlobalTracer().ring();
      reply.total = ring.total_appended();
      reply.dropped = ring.dropped();
      const std::vector<trace::TraceRecord> records = ring.Snapshot();
      // Newest kMax, oldest first — how dmesg-style readers expect it.
      const size_t start = records.size() > CaratTraceArg::kMax
                               ? records.size() - CaratTraceArg::kMax
                               : 0;
      for (size_t i = start; i < records.size(); ++i) {
        CaratTraceRecordArg& out = reply.records[reply.count++];
        out.tsc = records[i].tsc;
        out.seq = records[i].seq;
        out.event = static_cast<uint32_t>(records[i].event);
        out.cpu = records[i].cpu;
        for (int a = 0; a < 4; ++a) out.args[a] = records[i].args[a];
      }
      arg = PackArg(reply);
      return OkStatus();
    }
    case KOP_IOCTL_GET_HOT_SITES: {
      CaratHotSitesArg reply;
      for (const HotSite& row : engine_->HotSites()) {
        if (reply.count == CaratHotSitesArg::kMax) break;
        CaratHotSiteArg& out = reply.sites[reply.count++];
        out.site = row.site;
        out.hits = row.hits;
        out.denied = row.denied;
        out.elided = row.elided;
        const std::string label = trace::GlobalSites().Label(row.site);
        std::snprintf(out.label, sizeof(out.label), "%s", label.c_str());
      }
      arg = PackArg(reply);
      return OkStatus();
    }
    case KOP_IOCTL_READ_POSTMORTEM: {
      CaratPostmortemArg reply;
      reply.incidents = flight::GlobalPostmortems().incidents();
      flight::PostmortemBundle bundle;
      if (flight::GlobalPostmortems().Latest(&bundle)) {
        reply.present = 1;
        const std::string json = bundle.ToJson();
        reply.total_len = json.size();
        if (json.size() >= CaratPostmortemArg::kMax) {
          reply.truncated = 1;
          std::memcpy(reply.json, json.data(), CaratPostmortemArg::kMax - 1);
        } else {
          std::memcpy(reply.json, json.data(), json.size());
        }
      }
      arg = PackArg(reply);
      return OkStatus();
    }
    case KOP_IOCTL_RESET_STATS:
      engine_->ResetStats();
      return OkStatus();
    default:
      return InvalidArgument("unknown carat ioctl 0x" + std::to_string(cmd));
  }
}

}  // namespace kop::policy
