#include "kop/policy/rules.hpp"

#include <cstdio>
#include <sstream>

#include "kop/transform/privileged.hpp"

namespace kop::policy {
namespace {

Status LineError(size_t line, const std::string& message) {
  return InvalidArgument("policy rules line " + std::to_string(line) + ": " +
                         message);
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 0);
  return end != nullptr && *end == '\0';
}

/// Parse one or two tokens into a range: "<name>" | "<base> +<len>" |
/// "<base>-<end>". Returns the number of tokens consumed (0 on error).
size_t ParseRange(const std::vector<std::string>& tokens, size_t at,
                  const NamedRanges& names, Region* out) {
  if (at >= tokens.size()) return 0;
  auto named = names.find(tokens[at]);
  if (named != names.end()) {
    out->base = named->second.base;
    out->len = named->second.len;
    return 1;
  }
  // base-end in a single token?
  const size_t dash = tokens[at].find('-', 1);
  if (dash != std::string::npos) {
    uint64_t base = 0;
    uint64_t end = 0;
    if (!ParseU64(tokens[at].substr(0, dash), &base) ||
        !ParseU64(tokens[at].substr(dash + 1), &end) || end <= base) {
      return 0;
    }
    out->base = base;
    out->len = end - base;
    return 1;
  }
  // base +len as two tokens.
  uint64_t base = 0;
  if (!ParseU64(tokens[at], &base)) return 0;
  if (at + 1 >= tokens.size() || tokens[at + 1][0] != '+') return 0;
  uint64_t len = 0;
  if (!ParseU64(tokens[at + 1].substr(1), &len) || len == 0) return 0;
  out->base = base;
  out->len = len;
  return 2;
}

bool ParseProtWord(const std::string& word, uint32_t* out) {
  if (word == "r") { *out = kProtRead; return true; }
  if (word == "w") { *out = kProtWrite; return true; }
  if (word == "rw" || word == "wr") { *out = kProtRW; return true; }
  if (word == "none") { *out = kProtNone; return true; }
  return false;
}

bool ParseIntrinsicName(const std::string& word, uint64_t* out) {
  if (ParseU64(word, out)) return true;
  // Accept both "cli" and "kir.cli".
  const std::string name = word.rfind("kir.", 0) == 0 ? word : "kir." + word;
  auto intrinsic = transform::PrivilegedIntrinsicFromName(name);
  if (!intrinsic) return false;
  *out = static_cast<uint64_t>(*intrinsic);
  return true;
}

}  // namespace

NamedRanges DefaultNamedRanges(const kernel::Kernel& kernel) {
  NamedRanges names;
  names["kernel-half"] =
      Region{kernel::kKernelHalfBase, ~uint64_t{0} - kernel::kKernelHalfBase,
             kProtNone};
  names["user-half"] = Region{0, kernel::kUserSpaceEnd, kProtNone};
  names["direct-map"] =
      Region{kernel.direct_map_base(), kernel.direct_map_size(), kProtNone};
  names["kernel-text"] =
      Region{kernel.kernel_text_base(), kernel.kernel_text_size(), kProtNone};
  names["module-area"] =
      Region{kernel.module_area_base(), kernel.module_area_size(), kProtNone};
  names["vmalloc"] =
      Region{kernel::kVmallocBase, 1ull << 32, kProtNone};
  return names;
}

Result<PolicySpec> ParsePolicyRules(const std::string& text,
                                    const NamedRanges& names) {
  PolicySpec spec;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "mode") {
      if (tokens.size() != 2 ||
          (tokens[1] != "allow" && tokens[1] != "deny")) {
        return LineError(line_number, "expected 'mode allow' or 'mode deny'");
      }
      spec.mode = tokens[1] == "allow" ? PolicyMode::kDefaultAllow
                                       : PolicyMode::kDefaultDeny;
      spec.mode_set = true;
      continue;
    }

    if (keyword == "allow" || keyword == "deny" || keyword == "restrict") {
      Region region;
      const size_t consumed = ParseRange(tokens, 1, names, &region);
      if (consumed == 0) {
        return LineError(line_number,
                         "expected a named range, '<base> +<len>' or "
                         "'<base>-<end>'");
      }
      size_t at = 1 + consumed;
      if (keyword == "deny") {
        region.prot = kProtNone;
        if (at != tokens.size()) {
          return LineError(line_number, "'deny' takes no protection word");
        }
      } else {
        region.prot = kProtRW;  // default for 'allow'
        if (at < tokens.size()) {
          if (!ParseProtWord(tokens[at], &region.prot)) {
            return LineError(line_number,
                             "bad protection '" + tokens[at] +
                                 "' (want r|w|rw|none)");
          }
          ++at;
        } else if (keyword == "restrict") {
          return LineError(line_number,
                           "'restrict' requires a protection word");
        }
        if (at != tokens.size()) {
          return LineError(line_number, "trailing tokens");
        }
      }
      spec.regions.push_back(region);
      continue;
    }

    if (keyword == "intrinsic") {
      if (tokens.size() != 3 ||
          (tokens[1] != "allow" && tokens[1] != "deny")) {
        return LineError(line_number,
                         "expected 'intrinsic allow|deny <name|id>'");
      }
      IntrinsicRule rule;
      rule.allow = tokens[1] == "allow";
      if (!ParseIntrinsicName(tokens[2], &rule.intrinsic_id)) {
        return LineError(line_number,
                         "unknown intrinsic '" + tokens[2] + "'");
      }
      spec.intrinsics.push_back(rule);
      continue;
    }

    return LineError(line_number, "unknown keyword '" + keyword + "'");
  }
  return spec;
}

Status ApplyPolicySpec(const PolicySpec& spec, PolicyEngine& engine) {
  if (spec.mode_set) engine.SetMode(spec.mode);
  engine.store().Clear();
  for (const Region& region : spec.regions) {
    KOP_RETURN_IF_ERROR(engine.store().Add(region));
  }
  for (const IntrinsicRule& rule : spec.intrinsics) {
    if (rule.allow) {
      engine.AllowIntrinsic(rule.intrinsic_id);
    } else {
      engine.DenyIntrinsic(rule.intrinsic_id);
    }
  }
  return OkStatus();
}

std::string RenderPolicyRules(const PolicyEngine& engine) {
  std::string out = "mode ";
  out += engine.mode() == PolicyMode::kDefaultAllow ? "allow" : "deny";
  out += "\n";
  char line[96];
  for (const Region& region : engine.store().Snapshot()) {
    const char* prot = region.prot == kProtRW      ? "rw"
                       : region.prot == kProtRead  ? "r"
                       : region.prot == kProtWrite ? "w"
                                                   : "none";
    if (region.prot == kProtNone) {
      std::snprintf(line, sizeof(line), "deny 0x%llx +0x%llx\n",
                    static_cast<unsigned long long>(region.base),
                    static_cast<unsigned long long>(region.len));
    } else {
      std::snprintf(line, sizeof(line), "allow 0x%llx +0x%llx %s\n",
                    static_cast<unsigned long long>(region.base),
                    static_cast<unsigned long long>(region.len), prot);
    }
    out += line;
  }
  return out;
}

PolicySpec SynthesizePolicy(const std::vector<ViolationRecord>& trace,
                            uint64_t granularity) {
  PolicySpec spec;
  spec.mode = PolicyMode::kDefaultDeny;
  spec.mode_set = true;

  // Page-granular access map: page -> union of required flags.
  std::map<uint64_t, uint32_t> pages;
  std::map<uint64_t, bool> intrinsics_seen;
  for (const ViolationRecord& record : trace) {
    if (record.intrinsic) {
      intrinsics_seen[record.addr] = true;
      continue;
    }
    const uint64_t first = record.addr / granularity;
    const uint64_t last =
        (record.addr + (record.size == 0 ? 1 : record.size) - 1) /
        granularity;
    for (uint64_t page = first;; ++page) {
      pages[page] |= static_cast<uint32_t>(record.access_flags);
      if (page == last) break;
    }
  }

  // Coalesce runs of adjacent pages with identical flags.
  auto it = pages.begin();
  while (it != pages.end()) {
    const uint64_t start = it->first;
    const uint32_t prot = it->second;
    uint64_t end = start;
    auto run = std::next(it);
    while (run != pages.end() && run->first == end + 1 &&
           run->second == prot) {
      end = run->first;
      ++run;
    }
    spec.regions.push_back(Region{start * granularity,
                                  (end - start + 1) * granularity, prot});
    it = run;
  }

  for (const auto& [intrinsic_id, seen] : intrinsics_seen) {
    if (seen) spec.intrinsics.push_back(IntrinsicRule{intrinsic_id, true});
  }
  return spec;
}

}  // namespace kop::policy
