#include "kop/policy/lsh_store.hpp"

#include <algorithm>

namespace kop::policy {

Status LshBucketStore::DoAdd(const Region& region) {
  if (region.len == 0) return InvalidArgument("empty region");
  if (region.base + region.len < region.base) {
    return InvalidArgument("region wraps the address space");
  }
  for (const Region& existing : regions_) {
    if (existing.base == region.base && existing.len == region.len) {
      return AlreadyExists("identical region already present");
    }
  }
  const size_t index = regions_.size();
  regions_.push_back(region);
  const uint64_t first = BucketOf(region.base);
  const uint64_t last = BucketOf(region.base + region.len - 1);
  for (uint64_t bucket = first;; ++bucket) {
    buckets_[bucket].push_back(index);
    if (bucket == last) break;
  }
  return OkStatus();
}

Status LshBucketStore::DoRemove(uint64_t base) {
  auto pos = std::find_if(regions_.begin(), regions_.end(),
                          [&](const Region& r) { return r.base == base; });
  if (pos == regions_.end()) return NotFound("no region with that base");
  const size_t removed = static_cast<size_t>(pos - regions_.begin());
  regions_.erase(pos);
  // Rebuild bucket index (indices shifted); removal is rare and cheap at
  // policy scale.
  buckets_.clear();
  for (size_t i = 0; i < regions_.size(); ++i) {
    const Region& region = regions_[i];
    const uint64_t first = BucketOf(region.base);
    const uint64_t last = BucketOf(region.base + region.len - 1);
    for (uint64_t bucket = first;; ++bucket) {
      buckets_[bucket].push_back(i);
      if (bucket == last) break;
    }
  }
  (void)removed;
  return OkStatus();
}

void LshBucketStore::DoClear() {
  regions_.clear();
  buckets_.clear();
}

std::optional<uint32_t> LshBucketStore::Lookup(uint64_t addr,
                                               uint64_t size) const {
  ++stats_.lookups;
  auto it = buckets_.find(BucketOf(addr));
  if (it == buckets_.end()) return std::nullopt;
  // First match in insertion order within the closest bucket. A region
  // containing addr necessarily overlaps addr's bucket, so the bucket
  // list is a complete candidate set.
  size_t best = SIZE_MAX;
  for (size_t index : it->second) {
    ++stats_.entries_scanned;
    if (regions_[index].Contains(addr, size)) {
      best = std::min(best, index);
    }
  }
  if (best == SIZE_MAX) return std::nullopt;
  return regions_[best].prot;
}

std::vector<Region> LshBucketStore::DoSnapshot() const { return regions_; }

}  // namespace kop::policy
