#include "kop/policy/sorted_table.hpp"

#include <algorithm>

namespace kop::policy {

Status SortedRegionTable::DoAdd(const Region& region) {
  if (region.len == 0) return InvalidArgument("empty region");
  if (region.base + region.len < region.base) {
    return InvalidArgument("region wraps the address space");
  }
  auto pos = std::lower_bound(
      regions_.begin(), regions_.end(), region.base,
      [](const Region& r, uint64_t base) { return r.base < base; });
  // The sorted table cannot maintain overlapped regions (the paper's
  // stated tradeoff for the fancier structures).
  if (pos != regions_.end() && pos->Overlaps(region)) {
    return InvalidArgument("overlapping region not representable: " +
                           pos->ToString());
  }
  if (pos != regions_.begin() && std::prev(pos)->Overlaps(region)) {
    return InvalidArgument("overlapping region not representable: " +
                           std::prev(pos)->ToString());
  }
  regions_.insert(pos, region);
  return OkStatus();
}

Status SortedRegionTable::DoRemove(uint64_t base) {
  auto pos = std::lower_bound(
      regions_.begin(), regions_.end(), base,
      [](const Region& r, uint64_t b) { return r.base < b; });
  if (pos == regions_.end() || pos->base != base) {
    return NotFound("no region with that base");
  }
  regions_.erase(pos);
  return OkStatus();
}

std::optional<uint32_t> SortedRegionTable::Lookup(uint64_t addr,
                                                  uint64_t size) const {
  ++stats_.lookups;
  // Binary search for the last region with base <= addr.
  size_t lo = 0;
  size_t hi = regions_.size();
  while (lo < hi) {
    ++stats_.entries_scanned;
    const size_t mid = lo + (hi - lo) / 2;
    if (regions_[mid].base <= addr) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return std::nullopt;
  const Region& candidate = regions_[lo - 1];
  if (candidate.Contains(addr, size)) return candidate.prot;
  return std::nullopt;
}

}  // namespace kop::policy
