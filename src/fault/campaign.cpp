#include "kop/fault/campaign.hpp"

#include <map>
#include <sstream>

#include "kop/analysis/diagnostics.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/rng.hpp"
#include "trial_harness.hpp"

namespace kop::fault {
namespace {

using internal::Calibration;
using internal::RunTrial;

// Adversarial-content hardening: trial targets and invariant messages
// embed module-controlled strings (site labels, status text), so every
// string field goes through the shared analysis::JsonEscape — quotes,
// backslashes and control bytes included — and the field order below is
// pinned (DESIGN.md §17): reports must parse and diff cleanly no matter
// what a fuzzed module smuggles into a label.
std::string JsonEscape(const std::string& in) {
  return analysis::JsonEscape(in);
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSpuriousViolation: return "spurious-violation";
    case FaultKind::kGuardTableCorrupt: return "guard-table-corrupt";
    case FaultKind::kStoreBitFlip: return "store-bit-flip";
    case FaultKind::kLoadBitFlip: return "load-bit-flip";
    case FaultKind::kKmallocFail: return "kmalloc-fail";
    case FaultKind::kWatchdogExpiry: return "watchdog-expiry";
    case FaultKind::kNicTxError: return "nic-tx-error";
    case FaultKind::kNicQueueDma: return "nic-queue-dma";
    case FaultKind::kNicDoorbellRange: return "nic-doorbell-range";
    case FaultKind::kCallTargetFlip: return "call-target-flip";
    case FaultKind::kCallTargetForge: return "call-target-forge";
    case FaultKind::kNoFault: return "none";
  }
  return "?";
}

std::string FaultTargetSource() {
  return R"(module "kop_faulty"

global @slots size 64 rw
global @count size 8 rw
global @acc size 8 rw

extern func @kmalloc(i64) -> i64
extern func @kfree(i64) -> i64

func @init() -> i64 {
entry:
  store i64 0, @count
  store i64 0, @acc
  ret i64 1
}

func @grab(i64 %bytes) -> i64 {
entry:
  %a = call i64 @kmalloc(i64 %bytes)
  %z = icmp eq i64 %a, 0
  br %z, fail, keep
keep:
  %c = load i64, @count
  %slot = gep @slots, i64 %c, 8, 0
  store i64 %a, %slot
  %c1 = add i64 %c, 1
  store i64 %c1, @count
  ret i64 %a
fail:
  ret i64 0
}

func @drop() -> i64 {
entry:
  %c = load i64, @count
  %z = icmp eq i64 %c, 0
  br %z, none, free
free:
  %c1 = sub i64 %c, 1
  %slot = gep @slots, i64 %c1, 8, 0
  %a = load i64, %slot
  %r = call i64 @kfree(i64 %a)
  store i64 0, %slot
  store i64 %c1, @count
  ret i64 1
none:
  ret i64 0
}

func @poke(ptr %addr, i64 %value) -> i64 {
entry:
  store i64 %value, %addr
  %v = load i64, %addr
  ret i64 %v
}

func @churn(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %v = load i64, @acc
  %v1 = add i64 %v, %i
  store i64 %v1, @acc
  %i1 = add i64 %i, 1
  jmp loop
out:
  %r = load i64, @acc
  ret i64 %r
}
)";
}

CampaignReport RunCampaign(const CampaignConfig& config) {
  CampaignReport report;
  report.seed = config.seed;
  report.engine = std::string(kernel::ExecEngineName(config.engine));
  report.recovery =
      std::string(resilience::RecoveryPolicyName(config.recovery));

  // Calibration pass: one fault-free trial per scenario (watchdog budget
  // 0 disables the watchdog) measures the injection-point spaces.
  const std::vector<std::string> scenarios = {"ringbuf", "faulty", "knic",
                                              "knic_mq", "icall"};
  std::map<std::string, Calibration> calibration;
  for (const std::string& scenario : scenarios) {
    FaultPlan warmup{FaultKind::kWatchdogExpiry, scenario, 0, 0};
    Calibration measured;
    TrialResult dry = RunTrial(config, warmup, &measured);
    if (!dry.invariant_failures.empty() || dry.contained) {
      TrialResult& bad = report.trials.emplace_back(std::move(dry));
      bad.outcome = "calibration trial misbehaved: " + bad.outcome;
      ++report.invariant_violations;
    }
    calibration[scenario] = measured;
  }

  // Materialize the plan list from the seeded RNG. Everything random is
  // drawn HERE, in a fixed order, so the plan list (and therefore the
  // whole campaign) replays bit-identically for a given seed.
  Xoshiro256 rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<FaultPlan> plans;
  for (const std::string& scenario : scenarios) {
    for (uint64_t site = 0; site < calibration[scenario].sites; ++site) {
      plans.push_back({FaultKind::kSpuriousViolation, scenario, site, 0});
    }
    for (uint64_t g = 0; g < 3; ++g) {
      plans.push_back({FaultKind::kGuardTableCorrupt, scenario, g, 0});
    }
  }
  for (const std::string& scenario : {std::string("ringbuf"),
                                      std::string("faulty")}) {
    const Calibration& cal = calibration[scenario];
    for (int i = 0; i < 30 && cal.stores > 0; ++i) {
      plans.push_back({FaultKind::kStoreBitFlip, scenario,
                       rng.NextInRange(1, cal.stores), rng.NextBelow(64)});
    }
    for (int i = 0; i < 20 && cal.loads > 0; ++i) {
      plans.push_back({FaultKind::kLoadBitFlip, scenario,
                       rng.NextInRange(1, cal.loads), rng.NextBelow(64)});
    }
  }
  for (uint64_t call = 1; call <= 3; ++call) {
    plans.push_back({FaultKind::kKmallocFail, "faulty", call, 0});
  }
  for (uint64_t budget : {1ull, 2ull, 5ull, 10ull, 20ull, 50ull, 100ull,
                          200ull, 500ull, 1000ull, 2000ull, 5000ull,
                          2000000ull}) {
    plans.push_back({FaultKind::kWatchdogExpiry, "faulty", budget, 0});
  }
  for (uint64_t budget : {1ull, 5ull, 25ull, 125ull, 625ull, 3125ull}) {
    plans.push_back({FaultKind::kWatchdogExpiry, "ringbuf", budget, 0});
  }
  {
    const Calibration& cal = calibration["knic"];
    for (int i = 0; i < 20 && cal.stores > 0; ++i) {
      plans.push_back({FaultKind::kNicTxError, "knic",
                       rng.NextInRange(1, cal.stores), rng.NextBelow(64)});
    }
  }
  // Multi-queue NIC family, parameterized by queue: bit flips confined
  // to one queue's ring slots and doorbell (the mq workload's per-queue
  // store space is 13 deep), plus the PR-4 spin-bug regression on every
  // queue — the Nth TDT write forced out of range must wedge that queue
  // only, never spin the driver or leak a descriptor.
  for (uint64_t q = 0; q < 4; ++q) {
    for (int i = 0; i < 5; ++i) {
      plans.push_back({FaultKind::kNicQueueDma, "knic_mq", q,
                       (rng.NextInRange(1, 13) << 6) | rng.NextBelow(64)});
    }
    plans.push_back({FaultKind::kNicDoorbellRange, "knic_mq", q,
                     rng.NextInRange(1, 3)});
  }
  // Control-flow corruption family: every vtable pointer load of the
  // icall workload flipped at a seed-chosen bit (plus extra seed-chosen
  // load/bit pairs), and every vtable slot force-fed each forged target
  // (NULL, wild, and a real-but-illegal function).
  for (uint64_t nth = 1; nth <= 9; ++nth) {
    plans.push_back(
        {FaultKind::kCallTargetFlip, "icall", nth, rng.NextBelow(64)});
  }
  for (int i = 0; i < 12; ++i) {
    plans.push_back({FaultKind::kCallTargetFlip, "icall",
                     rng.NextInRange(1, 9), rng.NextBelow(64)});
  }
  for (uint64_t nth = 1; nth <= 3; ++nth) {
    for (uint64_t forge = 0; forge < 3; ++forge) {
      plans.push_back({FaultKind::kCallTargetForge, "icall", nth, forge});
    }
  }
  // Pad with extra bit flips until the campaign reaches its floor.
  size_t round_robin = 0;
  while (plans.size() < config.min_trials) {
    const std::string& scenario = scenarios[round_robin++ % scenarios.size()];
    const Calibration& cal = calibration[scenario];
    if (cal.stores == 0) continue;
    const bool nic_scenario = scenario.rfind("knic", 0) == 0;
    plans.push_back({nic_scenario ? FaultKind::kNicTxError
                                  : FaultKind::kStoreBitFlip,
                     scenario, rng.NextInRange(1, cal.stores),
                     rng.NextBelow(64)});
  }

  for (const FaultPlan& plan : plans) {
    TrialResult result = RunTrial(config, plan, nullptr);
    result.index = static_cast<uint32_t>(report.trials.size());
    if (result.contained) {
      ++report.contained;
    } else {
      ++report.absorbed;
    }
    if (!result.invariant_failures.empty()) ++report.invariant_violations;
    report.trials.push_back(std::move(result));
  }
  return report;
}

Result<flight::PostmortemBundle> RunPostmortemDemo(
    const CampaignConfig& config) {
  const FaultPlan plan{FaultKind::kSpuriousViolation, "ringbuf", config.seed,
                       0};
  // The bundle embeds the flight-recorder tails, so the demo's
  // determinism contract (same seed -> same bundle, any process) needs
  // the recorder surfaces cleared of whatever ran before us.
  trace::GlobalTracer().Reset();
  trace::GlobalTracer().ring().SetShards(1);
  trace::GlobalSpans().Reset();
  const TrialResult trial = RunTrial(config, plan, nullptr);
  flight::PostmortemBundle bundle;
  if (!flight::GlobalPostmortems().Latest(&bundle)) {
    return Internal("postmortem demo produced no bundle (outcome: " +
                    trial.outcome + ")");
  }
  return bundle;
}

std::string CampaignReport::ToJson() const {
  std::ostringstream out;
  out << "{\"seed\":" << seed << ",\"engine\":\"" << JsonEscape(engine)
      << "\",\"recovery\":\"" << JsonEscape(recovery)
      << "\",\"trials\":" << trials.size() << ",\"contained\":" << contained
      << ",\"absorbed\":" << absorbed
      << ",\"invariant_violations\":" << invariant_violations
      << ",\"results\":[";
  for (size_t i = 0; i < trials.size(); ++i) {
    const TrialResult& trial = trials[i];
    if (i != 0) out << ",";
    out << "{\"i\":" << trial.index << ",\"kind\":\""
        << FaultKindName(trial.plan.kind) << "\",\"scenario\":\""
        << JsonEscape(trial.plan.scenario)
        << "\",\"point\":" << trial.plan.point
        << ",\"detail\":" << trial.plan.detail << ",\"target\":\""
        << JsonEscape(trial.target) << "\",\"contained\":"
        << (trial.contained ? "true" : "false") << ",\"postmortem\":"
        << (trial.postmortem ? "true" : "false") << ",\"outcome\":\""
        << JsonEscape(trial.outcome) << "\",\"invariant_failures\":[";
    for (size_t f = 0; f < trial.invariant_failures.size(); ++f) {
      if (f != 0) out << ",";
      out << "\"" << JsonEscape(trial.invariant_failures[f]) << "\"";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string CampaignReport::ToText() const {
  std::ostringstream out;
  out << "fault campaign: seed " << seed << ", engine " << engine
      << ", recovery " << recovery << "\n";
  out << trials.size() << " trials: " << contained << " contained, "
      << absorbed << " absorbed, " << invariant_violations
      << " invariant violation(s)\n";
  std::map<std::string, std::pair<uint32_t, uint32_t>> by_kind;
  for (const TrialResult& trial : trials) {
    auto& row = by_kind[std::string(FaultKindName(trial.plan.kind))];
    ++row.first;
    if (trial.contained) ++row.second;
  }
  for (const auto& [kind, row] : by_kind) {
    out << "  " << kind << ": " << row.second << "/" << row.first
        << " contained\n";
  }
  for (const TrialResult& trial : trials) {
    for (const std::string& failure : trial.invariant_failures) {
      out << "  INVARIANT #" << trial.index << " ["
          << FaultKindName(trial.plan.kind) << " " << trial.plan.scenario
          << " " << trial.target << "]: " << failure << "\n";
    }
  }
  return out.str();
}

}  // namespace kop::fault
