#include "kop/fault/campaign.hpp"

#include <cstring>
#include <map>
#include <memory>
#include <sstream>

#include "kop/kernel/kernel.hpp"
#include "kop/kir/module.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/nic/packet_sink.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/util/rng.hpp"

namespace kop::fault {
namespace {

using kernel::Kernel;
using kernel::LoadedModule;
using kernel::ModuleLoader;

std::string SourceFor(const std::string& scenario) {
  if (scenario == "ringbuf") return kirmods::RingbufSource();
  if (scenario == "knic") return kirmods::KnicSource();
  if (scenario == "icall") return kirmods::IcallSource();
  return FaultTargetSource();
}

/// Injection-point space of one scenario, measured by a fault-free
/// calibration trial (identical across engines: the interpreter and the
/// VM issue the same load/store sequence by construction).
struct Calibration {
  size_t sites = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
};

/// Trials run under a deliberately small kernel: hundreds of fresh
/// kernels are built per campaign, and the address-space zeroing cost
/// dominates wall clock at the default sizes.
kernel::KernelConfig TrialKernelConfig() {
  kernel::KernelConfig config;
  config.ram_bytes = 4ull << 20;
  config.kernel_text_bytes = 1ull << 20;
  config.module_area_bytes = 4ull << 20;
  config.user_bytes = 1ull << 20;
  return config;
}

struct TrialContext {
  CampaignConfig config;
  FaultPlan plan;
  Kernel kernel{TrialKernelConfig()};
  std::unique_ptr<policy::PolicyModule> policy;
  std::unique_ptr<ModuleLoader> loader;
  LoadedModule* mod = nullptr;
  std::unique_ptr<nic::CountingSink> sink;
  std::unique_ptr<nic::E1000Device> nic;
  uint64_t heap_baseline = 0;
  std::vector<policy::Region> policy_baseline;
  bool check_rollback_bytes = false;
  bool saw_error = false;
  TrialResult result;
};

Status Setup(TrialContext& ctx) {
  auto policy = policy::PolicyModule::Insert(&ctx.kernel, nullptr,
                                             policy::PolicyMode::kDefaultAllow);
  if (!policy.ok()) return policy.status();
  ctx.policy = std::move(*policy);
  ctx.policy->engine().SetViolationAction(policy::ViolationAction::kQuarantine);
  KOP_RETURN_IF_ERROR(ctx.policy->engine().store().Add(
      policy::Region{0, kernel::kUserSpaceEnd, policy::kProtNone}));

  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  ctx.loader = std::make_unique<ModuleLoader>(&ctx.kernel, std::move(keyring));
  ctx.loader->set_engine(ctx.config.engine);
  ctx.loader->set_recovery_policy(ctx.config.recovery);

  if (ctx.plan.scenario == "knic") {
    ctx.sink = std::make_unique<nic::CountingSink>();
    ctx.nic =
        std::make_unique<nic::E1000Device>(&ctx.kernel.mem(), ctx.sink.get());
    KOP_RETURN_IF_ERROR(ctx.nic->MapAt(kernel::kVmallocBase));
  }

  ctx.heap_baseline = ctx.kernel.heap().Stats().allocation_count;

  auto compiled = transform::CompileModuleText(SourceFor(ctx.plan.scenario));
  if (!compiled.ok()) return compiled.status();
  const auto image =
      signing::SignModule(compiled->text, compiled->attestation,
                          signing::SigningKey::DevelopmentKey());
  auto loaded = ctx.loader->Insmod(image);
  if (!loaded.ok()) return loaded.status();
  ctx.mod = *loaded;
  if (ctx.plan.scenario == "knic") {
    ctx.mod->set_restart_entry("knic_init", {kernel::kVmallocBase});
  }
  return OkStatus();
}

/// Arm the planned fault. Plans are fully materialized up front (point
/// and bit chosen from the seeded RNG at planning time), so injection
/// itself draws no randomness — a prerequisite for replay determinism.
Status Inject(TrialContext& ctx) {
  const FaultPlan& plan = ctx.plan;
  switch (plan.kind) {
    case FaultKind::kSpuriousViolation: {
      const std::vector<uint64_t>& tokens = ctx.mod->site_tokens();
      if (tokens.empty()) return Internal("scenario has no guard sites");
      const uint64_t token = tokens[plan.point % tokens.size()];
      ctx.policy->engine().ForceDenyAtSite(token);
      ctx.result.target = trace::GlobalSites().Label(token);
      return OkStatus();
    }
    case FaultKind::kGuardTableCorrupt: {
      const auto& globals = ctx.mod->ir().globals();
      if (globals.empty()) return Internal("scenario has no globals");
      const auto& global = globals[plan.point % globals.size()];
      auto addr = ctx.mod->GlobalAddress(global->name());
      if (!addr.ok()) return addr.status();
      KOP_RETURN_IF_ERROR(ctx.policy->engine().store().Add(
          policy::Region{*addr, global->size_bytes(), policy::kProtNone}));
      ctx.result.target = "@" + global->name();
      return OkStatus();
    }
    case FaultKind::kStoreBitFlip:
    case FaultKind::kLoadBitFlip:
    case FaultKind::kNicTxError: {
      const bool store_side = plan.kind != FaultKind::kLoadBitFlip;
      const uint64_t nth = plan.point;
      const uint64_t bit = plan.detail;
      auto seen = std::make_shared<uint64_t>(0);
      ctx.mod->journaled_memory().SetFaultHook(
          [store_side, nth, bit, seen](bool is_store, uint64_t /*ordinal*/,
                                       uint64_t /*addr*/, uint64_t value,
                                       uint32_t size) -> uint64_t {
            if (is_store != store_side) return value;
            if (++*seen != nth) return value;
            return value ^ (uint64_t{1} << (bit % (size * 8)));
          });
      ctx.result.target = std::string(store_side ? "store" : "load") + " #" +
                          std::to_string(nth) + " bit " + std::to_string(bit);
      return OkStatus();
    }
    case FaultKind::kKmallocFail: {
      // Replace the kernel's kmalloc export with one that fails (returns
      // NULL) exactly at the Nth call of this trial.
      KOP_RETURN_IF_ERROR(ctx.kernel.symbols().Unexport("kmalloc"));
      Kernel* kernel = &ctx.kernel;
      auto calls = std::make_shared<uint64_t>(0);
      const uint64_t fail_at = plan.point;
      KOP_RETURN_IF_ERROR(ctx.kernel.symbols().ExportFunction(
          "kmalloc",
          [kernel, calls, fail_at](const std::vector<uint64_t>& args)
              -> uint64_t {
            if (++*calls == fail_at) return 0;
            auto addr = kernel->heap().Kmalloc(args.empty() ? 0 : args[0]);
            return addr.ok() ? *addr : 0;
          }));
      ctx.result.target = "kmalloc call #" + std::to_string(fail_at);
      return OkStatus();
    }
    case FaultKind::kWatchdogExpiry: {
      ctx.mod->set_watchdog_steps(plan.point);
      ctx.result.target = "budget " + std::to_string(plan.point) + " steps";
      return OkStatus();
    }
    case FaultKind::kCallTargetFlip:
    case FaultKind::kCallTargetForge: {
      // Control-flow corruption: the fault hook watches only memory ops
      // landing inside @vtable — the module's function-pointer table —
      // and corrupts the Nth one. A flip mutates the pointer the
      // dispatcher loads; a forge rewrites the pointer as it is stored.
      uint64_t vt_base = 0;
      uint64_t vt_end = 0;
      for (const auto& global : ctx.mod->ir().globals()) {
        if (global->name() != "vtable") continue;
        auto addr = ctx.mod->GlobalAddress(global->name());
        if (!addr.ok()) return addr.status();
        vt_base = *addr;
        vt_end = *addr + global->size_bytes();
      }
      if (vt_end == 0) return Internal("scenario has no @vtable");
      const bool flip = plan.kind == FaultKind::kCallTargetFlip;
      const uint64_t nth = plan.point;
      uint64_t payload = plan.detail;  // flip: bit index
      std::string label;
      if (flip) {
        label = "vtable load #" + std::to_string(nth) + " bit " +
                std::to_string(payload);
      } else {
        switch (plan.detail % 3) {
          case 0:
            payload = 0;
            label = "NULL";
            break;
          case 1:
            payload = 0xdead4bad0f0full;
            label = "0xdead4bad0f0f";
            break;
          default: {
            // A real, signature-compatible function that is never
            // address-taken — the precise hijack CFI exists to refuse.
            const int index = ctx.mod->ir().FunctionIndex("h_spare");
            if (index < 0) return Internal("icall scenario lost @h_spare");
            payload = kir::FunctionAddressForIndex(
                static_cast<size_t>(index));
            label = "@h_spare";
            break;
          }
        }
        label = "vtable store #" + std::to_string(nth) + " <- " + label;
      }
      auto seen = std::make_shared<uint64_t>(0);
      ctx.mod->journaled_memory().SetFaultHook(
          [flip, vt_base, vt_end, nth, payload, seen](
              bool is_store, uint64_t /*ordinal*/, uint64_t addr,
              uint64_t value, uint32_t size) -> uint64_t {
            if (is_store == flip) return value;
            if (addr < vt_base || addr >= vt_end) return value;
            if (++*seen != nth) return value;
            if (flip) return value ^ (uint64_t{1} << (payload % (size * 8)));
            return payload;
          });
      ctx.result.target = label;
      return OkStatus();
    }
  }
  return Internal("corrupt fault kind");
}

/// Byte image of every module global, read through the host mapping
/// (invisible to the simulated clock).
std::vector<std::vector<uint8_t>> SnapshotGlobals(TrialContext& ctx) {
  std::vector<std::vector<uint8_t>> out;
  for (const auto& global : ctx.mod->ir().globals()) {
    auto addr = ctx.mod->GlobalAddress(global->name());
    if (!addr.ok()) {
      out.emplace_back();
      continue;
    }
    const uint8_t* host =
        ctx.kernel.mem().RawHostPointer(*addr, global->size_bytes());
    if (host == nullptr) {
      out.emplace_back();
      continue;
    }
    out.emplace_back(host, host + global->size_bytes());
  }
  return out;
}

/// One workload call, bracketed by the containment checks: when the call
/// is contained (a rollback ran), kernel memory the module can name must
/// be byte-identical to call entry, and the containment must be visible
/// in the metrics.
Result<uint64_t> TrialCall(TrialContext& ctx, const std::string& fn,
                           const std::vector<uint64_t>& args) {
  std::vector<std::vector<uint8_t>> before;
  if (ctx.check_rollback_bytes) before = SnapshotGlobals(ctx);
  const uint64_t rollbacks_before =
      ctx.mod->journaled_memory().journal().total_rollbacks();
  const uint64_t metric_before =
      trace::GlobalMetrics().GetCounter("resilience.rollbacks")->value();

  Result<uint64_t> result = [&]() -> Result<uint64_t> {
    try {
      return ctx.mod->Call(fn, args);
    } catch (const kernel::KernelPanic& panic) {
      return Internal(std::string("kernel panic escaped containment: ") +
                      panic.what());
    }
  }();
  if (!result.ok()) ctx.saw_error = true;

  const uint64_t rollbacks =
      ctx.mod->journaled_memory().journal().total_rollbacks() -
      rollbacks_before;
  if (rollbacks > 0) {
    ctx.result.contained = true;
    if (trace::GlobalMetrics().GetCounter("resilience.rollbacks")->value() ==
        metric_before) {
      ctx.result.invariant_failures.push_back(
          "containment at @" + fn + " not visible in metrics");
    }
    if (ctx.check_rollback_bytes) {
      const auto after = SnapshotGlobals(ctx);
      if (after != before) {
        ctx.result.invariant_failures.push_back(
            "rollback residue: module globals differ from entry of @" + fn);
      }
    }
  }
  return result;
}

void RunWorkload(TrialContext& ctx) {
  const std::string& scenario = ctx.plan.scenario;
  if (scenario == "ringbuf") {
    (void)TrialCall(ctx, "rb_init", {});
    for (uint64_t i = 0; i < 12; ++i) {
      (void)TrialCall(ctx, "rb_push", {i * 7 + 1});
    }
    for (int i = 0; i < 6; ++i) (void)TrialCall(ctx, "rb_pop", {});
    (void)TrialCall(ctx, "rb_size", {});
    return;
  }
  if (scenario == "knic") {
    (void)TrialCall(ctx, "knic_init", {kernel::kVmallocBase});
    (void)TrialCall(ctx, "knic_fill", {64, ctx.config.seed & 0xff});
    for (int i = 0; i < 8; ++i) {
      (void)TrialCall(ctx, "knic_send", {kernel::kVmallocBase, 64});
    }
    (void)TrialCall(ctx, "knic_sent_hw", {kernel::kVmallocBase});
    return;
  }
  if (scenario == "icall") {
    (void)TrialCall(ctx, "vt_init", {});
    for (uint64_t i = 0; i < 9; ++i) {
      (void)TrialCall(ctx, "vt_call", {i % 3, i * 5 + 3, i + 1});
    }
    (void)TrialCall(ctx, "vt_pick", {0, 7, 2});
    (void)TrialCall(ctx, "vt_pick", {1, 7, 2});
    // Direct call so h_spare's guard sites fire too: the spurious-
    // violation family picks a random site token and its forced deny
    // must be reachable in every scenario.
    (void)TrialCall(ctx, "h_spare", {11, 4});
    (void)TrialCall(ctx, "vt_acc", {});
    return;
  }
  // "faulty": heap churn through the kernel's kmalloc/kfree exports.
  (void)TrialCall(ctx, "init", {});
  auto a = TrialCall(ctx, "grab", {96});
  if (a.ok() && *a != 0) {
    (void)TrialCall(ctx, "poke", {*a, 0x1111});
  }
  auto b = TrialCall(ctx, "grab", {160});
  if (b.ok() && *b != 0) {
    (void)TrialCall(ctx, "poke", {*b, 0x2222});
  }
  (void)TrialCall(ctx, "grab", {224});
  (void)TrialCall(ctx, "churn", {96});
  for (int i = 0; i < 3; ++i) (void)TrialCall(ctx, "drop", {});
}

bool SameRegions(const std::vector<policy::Region>& a,
                 const std::vector<policy::Region>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].base != b[i].base || a[i].len != b[i].len ||
        a[i].prot != b[i].prot) {
      return false;
    }
  }
  return true;
}

void CheckEndInvariants(TrialContext& ctx) {
  auto& fails = ctx.result.invariant_failures;
  if (ctx.kernel.panicked()) fails.push_back("kernel panicked");
  if (ctx.mod->journaled_memory().journal().active()) {
    fails.push_back("write journal left open after workload");
  }
  if (!SameRegions(ctx.policy->engine().store().Snapshot(),
                   ctx.policy_baseline)) {
    fails.push_back("policy table mutated by the workload");
  }

  // Teardown + leak accounting: after rmmod the simulated heap must be
  // back to its pre-insmod allocation count (quarantine/restart/dtor
  // reclaim paths all feed this).
  ctx.mod->journaled_memory().ClearFaultHook();
  const std::string name = ctx.mod->name();
  if (Status rm = ctx.loader->Rmmod(name); !rm.ok()) {
    fails.push_back("rmmod failed: " + rm.ToString());
  }
  ctx.mod = nullptr;
  const uint64_t allocs = ctx.kernel.heap().Stats().allocation_count;
  if (allocs != ctx.heap_baseline) {
    fails.push_back("leaked " +
                    std::to_string(allocs > ctx.heap_baseline
                                       ? allocs - ctx.heap_baseline
                                       : ctx.heap_baseline - allocs) +
                    " heap allocation(s)");
  }
}

TrialResult RunTrial(const CampaignConfig& config, const FaultPlan& plan,
                     Calibration* calibration_out) {
  // Fresh incident store per trial: the present-iff-contained invariant
  // below must see only THIS trial's captures.
  flight::GlobalPostmortems().Reset();
  auto ctx = std::make_unique<TrialContext>();
  ctx->config = config;
  ctx->plan = plan;
  ctx->result.plan = plan;
  // Under restart recovery a contained call legitimately re-inits the
  // globals, so the byte-identical check only pins quarantine trials.
  ctx->check_rollback_bytes =
      config.recovery == resilience::RecoveryPolicy::kQuarantine;

  if (Status setup = Setup(*ctx); !setup.ok()) {
    ctx->result.invariant_failures.push_back("setup failed: " +
                                             setup.ToString());
    return ctx->result;
  }
  if (Status armed = Inject(*ctx); !armed.ok()) {
    ctx->result.invariant_failures.push_back("injection failed: " +
                                             armed.ToString());
    return ctx->result;
  }
  ctx->policy_baseline = ctx->policy->engine().store().Snapshot();

  RunWorkload(*ctx);

  // Flight-recorder invariant: every contained trial leaves a postmortem
  // bundle, and no bundle appears without containment.
  ctx->result.postmortem = flight::GlobalPostmortems().incidents() > 0;
  if (ctx->result.postmortem != ctx->result.contained) {
    ctx->result.invariant_failures.push_back(
        ctx->result.contained
            ? "contained trial captured no postmortem bundle"
            : "postmortem bundle captured without containment");
  }

  // Control-flow containment must be attributed as such: the postmortem
  // of a flipped/forged call target names "cfi", not a generic guard
  // violation. (With KOP_CFI=off the checks are never injected — the
  // corruption is an oops the module observes, never a containment — so
  // the attribution claim is vacuous there.)
  if ((plan.kind == FaultKind::kCallTargetFlip ||
       plan.kind == FaultKind::kCallTargetForge) &&
      ctx->result.contained && transform::DefaultCfiChecks()) {
    // Under restart recovery the corruption persists across re-inits, so
    // the FINAL bundle of an exhausted module is "restart-exhausted";
    // the cfi attribution lives in the earlier per-incident bundles.
    flight::PostmortemBundle bundle;
    if (!flight::GlobalPostmortems().Latest(&bundle) ||
        (bundle.reason != "cfi" && bundle.reason != "restart-exhausted")) {
      ctx->result.invariant_failures.push_back(
          "control-flow containment attributed to \"" +
          (bundle.reason.empty() ? std::string("?") : bundle.reason) +
          "\" instead of \"cfi\"");
    }
  }

  if (calibration_out != nullptr) {
    calibration_out->sites = ctx->mod->site_tokens().size();
    calibration_out->loads = ctx->mod->exec_stats().loads;
    calibration_out->stores = ctx->mod->exec_stats().stores;
  }

  ctx->result.outcome =
      ctx->result.contained
          ? "contained (" +
                std::string(ctx->mod != nullptr
                                ? resilience::ModuleStateName(
                                      ctx->mod->state())
                                : "?") +
                ")"
          : (ctx->saw_error ? "absorbed (call error, no containment)"
                            : "absorbed (no containment)");

  CheckEndInvariants(*ctx);
  return ctx->result;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSpuriousViolation: return "spurious-violation";
    case FaultKind::kGuardTableCorrupt: return "guard-table-corrupt";
    case FaultKind::kStoreBitFlip: return "store-bit-flip";
    case FaultKind::kLoadBitFlip: return "load-bit-flip";
    case FaultKind::kKmallocFail: return "kmalloc-fail";
    case FaultKind::kWatchdogExpiry: return "watchdog-expiry";
    case FaultKind::kNicTxError: return "nic-tx-error";
    case FaultKind::kCallTargetFlip: return "call-target-flip";
    case FaultKind::kCallTargetForge: return "call-target-forge";
  }
  return "?";
}

std::string FaultTargetSource() {
  return R"(module "kop_faulty"

global @slots size 64 rw
global @count size 8 rw
global @acc size 8 rw

extern func @kmalloc(i64) -> i64
extern func @kfree(i64) -> i64

func @init() -> i64 {
entry:
  store i64 0, @count
  store i64 0, @acc
  ret i64 1
}

func @grab(i64 %bytes) -> i64 {
entry:
  %a = call i64 @kmalloc(i64 %bytes)
  %z = icmp eq i64 %a, 0
  br %z, fail, keep
keep:
  %c = load i64, @count
  %slot = gep @slots, i64 %c, 8, 0
  store i64 %a, %slot
  %c1 = add i64 %c, 1
  store i64 %c1, @count
  ret i64 %a
fail:
  ret i64 0
}

func @drop() -> i64 {
entry:
  %c = load i64, @count
  %z = icmp eq i64 %c, 0
  br %z, none, free
free:
  %c1 = sub i64 %c, 1
  %slot = gep @slots, i64 %c1, 8, 0
  %a = load i64, %slot
  %r = call i64 @kfree(i64 %a)
  store i64 0, %slot
  store i64 %c1, @count
  ret i64 1
none:
  ret i64 0
}

func @poke(ptr %addr, i64 %value) -> i64 {
entry:
  store i64 %value, %addr
  %v = load i64, %addr
  ret i64 %v
}

func @churn(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %v = load i64, @acc
  %v1 = add i64 %v, %i
  store i64 %v1, @acc
  %i1 = add i64 %i, 1
  jmp loop
out:
  %r = load i64, @acc
  ret i64 %r
}
)";
}

CampaignReport RunCampaign(const CampaignConfig& config) {
  CampaignReport report;
  report.seed = config.seed;
  report.engine = std::string(kernel::ExecEngineName(config.engine));
  report.recovery =
      std::string(resilience::RecoveryPolicyName(config.recovery));

  // Calibration pass: one fault-free trial per scenario (watchdog budget
  // 0 disables the watchdog) measures the injection-point spaces.
  const std::vector<std::string> scenarios = {"ringbuf", "faulty", "knic",
                                              "icall"};
  std::map<std::string, Calibration> calibration;
  for (const std::string& scenario : scenarios) {
    FaultPlan warmup{FaultKind::kWatchdogExpiry, scenario, 0, 0};
    Calibration measured;
    TrialResult dry = RunTrial(config, warmup, &measured);
    if (!dry.invariant_failures.empty() || dry.contained) {
      TrialResult& bad = report.trials.emplace_back(std::move(dry));
      bad.outcome = "calibration trial misbehaved: " + bad.outcome;
      ++report.invariant_violations;
    }
    calibration[scenario] = measured;
  }

  // Materialize the plan list from the seeded RNG. Everything random is
  // drawn HERE, in a fixed order, so the plan list (and therefore the
  // whole campaign) replays bit-identically for a given seed.
  Xoshiro256 rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<FaultPlan> plans;
  for (const std::string& scenario : scenarios) {
    for (uint64_t site = 0; site < calibration[scenario].sites; ++site) {
      plans.push_back({FaultKind::kSpuriousViolation, scenario, site, 0});
    }
    for (uint64_t g = 0; g < 3; ++g) {
      plans.push_back({FaultKind::kGuardTableCorrupt, scenario, g, 0});
    }
  }
  for (const std::string& scenario : {std::string("ringbuf"),
                                      std::string("faulty")}) {
    const Calibration& cal = calibration[scenario];
    for (int i = 0; i < 30 && cal.stores > 0; ++i) {
      plans.push_back({FaultKind::kStoreBitFlip, scenario,
                       rng.NextInRange(1, cal.stores), rng.NextBelow(64)});
    }
    for (int i = 0; i < 20 && cal.loads > 0; ++i) {
      plans.push_back({FaultKind::kLoadBitFlip, scenario,
                       rng.NextInRange(1, cal.loads), rng.NextBelow(64)});
    }
  }
  for (uint64_t call = 1; call <= 3; ++call) {
    plans.push_back({FaultKind::kKmallocFail, "faulty", call, 0});
  }
  for (uint64_t budget : {1ull, 2ull, 5ull, 10ull, 20ull, 50ull, 100ull,
                          200ull, 500ull, 1000ull, 2000ull, 5000ull,
                          2000000ull}) {
    plans.push_back({FaultKind::kWatchdogExpiry, "faulty", budget, 0});
  }
  for (uint64_t budget : {1ull, 5ull, 25ull, 125ull, 625ull, 3125ull}) {
    plans.push_back({FaultKind::kWatchdogExpiry, "ringbuf", budget, 0});
  }
  {
    const Calibration& cal = calibration["knic"];
    for (int i = 0; i < 20 && cal.stores > 0; ++i) {
      plans.push_back({FaultKind::kNicTxError, "knic",
                       rng.NextInRange(1, cal.stores), rng.NextBelow(64)});
    }
  }
  // Control-flow corruption family: every vtable pointer load of the
  // icall workload flipped at a seed-chosen bit (plus extra seed-chosen
  // load/bit pairs), and every vtable slot force-fed each forged target
  // (NULL, wild, and a real-but-illegal function).
  for (uint64_t nth = 1; nth <= 9; ++nth) {
    plans.push_back(
        {FaultKind::kCallTargetFlip, "icall", nth, rng.NextBelow(64)});
  }
  for (int i = 0; i < 12; ++i) {
    plans.push_back({FaultKind::kCallTargetFlip, "icall",
                     rng.NextInRange(1, 9), rng.NextBelow(64)});
  }
  for (uint64_t nth = 1; nth <= 3; ++nth) {
    for (uint64_t forge = 0; forge < 3; ++forge) {
      plans.push_back({FaultKind::kCallTargetForge, "icall", nth, forge});
    }
  }
  // Pad with extra bit flips until the campaign reaches its floor.
  size_t round_robin = 0;
  while (plans.size() < config.min_trials) {
    const std::string& scenario = scenarios[round_robin++ % scenarios.size()];
    const Calibration& cal = calibration[scenario];
    if (cal.stores == 0) continue;
    plans.push_back({scenario == "knic" ? FaultKind::kNicTxError
                                        : FaultKind::kStoreBitFlip,
                     scenario, rng.NextInRange(1, cal.stores),
                     rng.NextBelow(64)});
  }

  for (const FaultPlan& plan : plans) {
    TrialResult result = RunTrial(config, plan, nullptr);
    result.index = static_cast<uint32_t>(report.trials.size());
    if (result.contained) {
      ++report.contained;
    } else {
      ++report.absorbed;
    }
    if (!result.invariant_failures.empty()) ++report.invariant_violations;
    report.trials.push_back(std::move(result));
  }
  return report;
}

Result<flight::PostmortemBundle> RunPostmortemDemo(
    const CampaignConfig& config) {
  const FaultPlan plan{FaultKind::kSpuriousViolation, "ringbuf", config.seed,
                       0};
  // The bundle embeds the flight-recorder tails, so the demo's
  // determinism contract (same seed -> same bundle, any process) needs
  // the recorder surfaces cleared of whatever ran before us.
  trace::GlobalTracer().Reset();
  trace::GlobalTracer().ring().SetShards(1);
  trace::GlobalSpans().Reset();
  const TrialResult trial = RunTrial(config, plan, nullptr);
  flight::PostmortemBundle bundle;
  if (!flight::GlobalPostmortems().Latest(&bundle)) {
    return Internal("postmortem demo produced no bundle (outcome: " +
                    trial.outcome + ")");
  }
  return bundle;
}

std::string CampaignReport::ToJson() const {
  std::ostringstream out;
  out << "{\"seed\":" << seed << ",\"engine\":\"" << engine
      << "\",\"recovery\":\"" << recovery
      << "\",\"trials\":" << trials.size() << ",\"contained\":" << contained
      << ",\"absorbed\":" << absorbed
      << ",\"invariant_violations\":" << invariant_violations
      << ",\"results\":[";
  for (size_t i = 0; i < trials.size(); ++i) {
    const TrialResult& trial = trials[i];
    if (i != 0) out << ",";
    out << "{\"i\":" << trial.index << ",\"kind\":\""
        << FaultKindName(trial.plan.kind) << "\",\"scenario\":\""
        << trial.plan.scenario << "\",\"point\":" << trial.plan.point
        << ",\"detail\":" << trial.plan.detail << ",\"target\":\""
        << JsonEscape(trial.target) << "\",\"contained\":"
        << (trial.contained ? "true" : "false") << ",\"postmortem\":"
        << (trial.postmortem ? "true" : "false") << ",\"outcome\":\""
        << JsonEscape(trial.outcome) << "\",\"invariant_failures\":[";
    for (size_t f = 0; f < trial.invariant_failures.size(); ++f) {
      if (f != 0) out << ",";
      out << "\"" << JsonEscape(trial.invariant_failures[f]) << "\"";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string CampaignReport::ToText() const {
  std::ostringstream out;
  out << "fault campaign: seed " << seed << ", engine " << engine
      << ", recovery " << recovery << "\n";
  out << trials.size() << " trials: " << contained << " contained, "
      << absorbed << " absorbed, " << invariant_violations
      << " invariant violation(s)\n";
  std::map<std::string, std::pair<uint32_t, uint32_t>> by_kind;
  for (const TrialResult& trial : trials) {
    auto& row = by_kind[std::string(FaultKindName(trial.plan.kind))];
    ++row.first;
    if (trial.contained) ++row.second;
  }
  for (const auto& [kind, row] : by_kind) {
    out << "  " << kind << ": " << row.second << "/" << row.first
        << " contained\n";
  }
  for (const TrialResult& trial : trials) {
    for (const std::string& failure : trial.invariant_failures) {
      out << "  INVARIANT #" << trial.index << " ["
          << FaultKindName(trial.plan.kind) << " " << trial.plan.scenario
          << " " << trial.target << "]: " << failure << "\n";
    }
  }
  return out.str();
}

}  // namespace kop::fault
