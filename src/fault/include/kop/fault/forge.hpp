// kop::forge — the coverage-guided adversarial campaign over the fault
// harness: the ACHyb-style loop closing ROADMAP's "adversarial
// co-pilot" item.
//
//   static analysis  ->  kop::analysis flags suspicious paths (stores it
//                        cannot prove, provenance warnings, unwrapped
//                        privileged calls) and its compare constants
//                        seed the mutation dictionary;
//   fuzzing          ->  a deterministic, seeded mutation engine over
//                        module entry-point arguments, input-buffer
//                        words and FaultPlan parameters drives those
//                        paths, guided by bytecode-VM edge coverage
//                        (kop/kir/coverage.hpp), with trials running in
//                        parallel across kop::smp CPUs;
//   confirmation     ->  an invariant-violating trial is shrunk by
//                        delta debugging to a minimal mutation trail
//                        that replays via `kopcc forge --replay`, and
//                        the corpus is distilled to the smallest
//                        covering seed set;
//   hardening        ->  confirmed unsafe reaches emit policy
//                        tightenings in policy_manager syntax, each
//                        verified by replaying the repro under the
//                        patched policy.
//
// Determinism contract: everything random is drawn from the seeded RNG
// in the serial batch-construction phase, workers draw nothing, and
// results/coverage merge in trial-index order — so the report is
// byte-identical for a given seed and config regardless of --jobs (the
// serial report is the oracle; CI diffs --jobs 1 against --jobs 8).
// The job count is therefore deliberately absent from the report.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kop/fault/campaign.hpp"

namespace kop::fault {

/// Policy family a forge campaign runs under. The hardened family denies
/// the protected kernel object (the PR-4-style policy); the weak family
/// deliberately omits that region — the planted vulnerability the CI
/// forge leg must find, minimize, and synthesize the fix for.
enum class PolicyFamily : uint8_t { kHardened, kWeak };

std::string_view PolicyFamilyName(PolicyFamily family);

/// One mutation step. A forge case is a base seed plus an ordered trail
/// of these; delta debugging minimizes the trail.
enum class MutOpKind : uint8_t {
  kSetArg,     // args[slot] = value (dictionary substitution)
  kFlipBit,    // args[slot] ^= 1 << (value % 64)
  kAddDelta,   // args[slot] += value (wrapping; value may encode -delta)
  kSetByte,    // byte (value >> 8) % 8 of args[slot] = value & 0xff
  kPlanKind,   // plan.kind = mutable-kind table [value % size]
  kPlanPoint,  // plan.point = value
  kPlanDetail, // plan.detail = value
};

std::string_view MutOpKindName(MutOpKind kind);

struct MutOp {
  MutOpKind kind = MutOpKind::kSetArg;
  uint8_t slot = 0;
  uint64_t value = 0;

  bool operator==(const MutOp&) const = default;
};

/// Fuzzed input width: [0]=latch key, [1]=stash address, [2]=stash
/// value, [3..4]=mix operands, [5..7]=input-buffer words.
inline constexpr size_t kForgeArgCount = 8;

struct ForgeCase {
  uint32_t base_seed = 0;     // index into the campaign's base-seed set
  std::vector<MutOp> trail;   // mutations applied to the base, in order

  bool operator==(const ForgeCase&) const = default;
};

struct ForgeConfig {
  uint64_t seed = 1;
  uint32_t trials = 96;
  uint32_t jobs = 1;          // worker CPUs; never serialized
  kernel::ExecEngine engine = kernel::DefaultExecEngine();
  resilience::RecoveryPolicy recovery =
      resilience::RecoveryPolicy::kQuarantine;
  PolicyFamily policy = PolicyFamily::kHardened;
  bool minimize = true;
};

/// One executed fuzz trial, merged into the report in index order.
struct ForgeTrialRow {
  uint32_t index = 0;
  ForgeCase input;
  FaultPlan plan;  // materialized (base + trail applied)
  std::array<uint64_t, kForgeArgCount> args{};
  TrialResult result;
  bool reached_flagged = false;  // the analysis-flagged store executed
  bool scribbled = false;        // protected kernel object overwritten
  uint64_t covered = 0;          // edge slots this trial covered
  uint32_t new_edges = 0;        // fresh vs the merged map, in index order
  bool in_corpus = false;        // kept as a mutation seed
};

struct MinimizedRepro {
  uint32_t trial = 0;     // index of the violating trial it shrinks
  uint32_t steps = 0;     // minimized mutation-trail length
  uint32_t probes = 0;    // delta-debugging re-executions spent
  bool replays = false;   // executed twice with identical outcome
  std::string failure;    // the invariant failure it reproduces
  std::string token;      // replay handle (kopcc forge --replay <token>)
};

struct PolicySuggestion {
  uint64_t base = 0;
  uint64_t len = 0;
  std::string reason;
  std::string manager_command;  // policy_manager `add` syntax
  bool verified = false;  // repro re-run under the patch => contained
};

struct ForgeReport {
  uint64_t seed = 0;
  uint32_t trials = 0;
  std::string engine;
  std::string recovery;
  std::string policy;  // "hardened" | "weak"
  bool coverage_compiled_in = false;
  uint32_t contained = 0;
  uint32_t absorbed = 0;
  uint32_t invariant_violations = 0;
  uint32_t flagged_reached = 0;   // trials that drove a flagged path
  uint64_t covered_edges = 0;     // merged-map covered slots
  uint64_t coverage_digest = 0;   // order-independent covered-set hash
  std::vector<std::string> analysis_targets;  // flagged "analysis:@fn/block"
  std::vector<uint64_t> dictionary;  // harvested constants + landmarks
  std::vector<ForgeTrialRow> rows;
  std::vector<uint32_t> corpus;     // row indices kept as seeds
  std::vector<uint32_t> distilled;  // greedy smallest covering subset
  std::vector<MinimizedRepro> repros;
  std::vector<PolicySuggestion> suggestions;

  bool ok() const { return invariant_violations == 0; }
  /// Deterministic serializations: pinned field order, every string
  /// escaped, no timestamps/pointers/host state, and no job count.
  std::string ToJson() const;
  std::string ToText() const;
};

ForgeReport RunForge(const ForgeConfig& config);

/// Execute one replay token (family/seed/base/trail) serially and return
/// its row. config.engine/recovery still apply; the token's policy
/// family and seed override config's.
Result<ForgeTrialRow> ReplayForge(const ForgeConfig& config,
                                  const std::string& token);

std::string EncodeForgeToken(PolicyFamily family, uint64_t seed,
                             const ForgeCase& forge_case);
Result<std::pair<PolicyFamily, std::pair<uint64_t, ForgeCase>>>
ParseForgeToken(const std::string& token);

/// The forge fuzz target (KIR source, "kop_forge"): a latch opened by a
/// three-byte-compare staircase (the coverage-guided unlock), an
/// analysis-flagged store through an integer-materialized pointer
/// behind it (the provenance warning the campaign exists to reach), a
/// small input buffer, and a branchy mixer.
std::string ForgeTargetSource();

}  // namespace kop::fault
