// kop::fault — deterministic fault-injection campaign harness.
//
// The resilience layer (transactional module calls, watchdog, recovery
// policies) makes a containment promise; this library is the adversary
// that earns it. A campaign enumerates injection points from the loaded
// module's registered guard sites and from the journaled memory-op
// ordinal space, injects one fault per trial into a fresh simulated
// kernel, runs a fixed workload, and checks the kernel invariants:
//
//   - the kernel never panics,
//   - the policy table is exactly what it was before the workload,
//   - a contained call leaves kernel memory byte-identical to call entry
//     (no journal residue) and is visible in the metrics/trace,
//   - the write journal is closed after every call,
//   - no heap allocation leaks past rmmod.
//
// Everything is seeded: two campaigns with the same seed, engine, and
// recovery policy produce byte-identical reports (the CI smoke runs the
// campaign twice and diffs the JSON). Exposed via `kopcc faultcamp`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "kop/flight/postmortem.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/resilience/recovery.hpp"

namespace kop::fault {

enum class FaultKind : uint8_t {
  kSpuriousViolation,  // policy engine forced to deny at one guard site
  kGuardTableCorrupt,  // bogus deny region inserted over module state
  kStoreBitFlip,       // single-bit flip on the Nth store's value
  kLoadBitFlip,        // single-bit flip on the Nth load's result
  kKmallocFail,        // kernel kmalloc returns NULL at the Nth call
  kWatchdogExpiry,     // per-call step budget far below the call's need
  kNicTxError,         // TX descriptor/doorbell store corrupted mid-send
  kNicQueueDma,        // one queue's ring/doorbell stores corrupted (MQ)
  kNicDoorbellRange,   // one queue's Nth TDT write forced out of range
  kCallTargetFlip,     // single-bit flip on the Nth vtable pointer load
  kCallTargetForge,    // Nth vtable store replaced with a forged target
  kNoFault,            // honest kernel — forge fuzzes inputs alone too
};

std::string_view FaultKindName(FaultKind kind);

/// One planned injection. `point` is kind-specific: a guard-site index,
/// a memory-op ordinal, a kmalloc call index, a step budget, or — for
/// the per-queue NIC kinds — the TX queue index. `detail` carries the
/// bit index for flips, the forged-target selector for kCallTargetForge
/// (0 = NULL, 1 = wild constant, 2 = a real function outside every
/// legal-target set), (nth << 6) | bit for kNicQueueDma, or the Nth
/// doorbell for kNicDoorbellRange.
struct FaultPlan {
  FaultKind kind = FaultKind::kSpuriousViolation;
  std::string scenario;  // "ringbuf" | "faulty" | "knic" | "knic_mq" |
                         // "icall" | "forge"
  uint64_t point = 0;
  uint64_t detail = 0;
};

struct TrialResult {
  uint32_t index = 0;
  FaultPlan plan;
  std::string target;  // human-readable injection point (site label, ...)
  bool contained = false;  // a rollback ran (the call was contained)
  bool postmortem = false;  // a flight-recorder bundle was captured
  std::string outcome;
  std::vector<std::string> invariant_failures;  // empty = all held
};

struct CampaignConfig {
  uint64_t seed = 1;
  uint32_t min_trials = 200;
  kernel::ExecEngine engine = kernel::DefaultExecEngine();
  resilience::RecoveryPolicy recovery =
      resilience::RecoveryPolicy::kQuarantine;
};

struct CampaignReport {
  uint64_t seed = 0;
  std::string engine;
  std::string recovery;
  uint32_t contained = 0;
  uint32_t absorbed = 0;
  uint32_t invariant_violations = 0;
  std::vector<TrialResult> trials;

  bool ok() const { return invariant_violations == 0; }
  /// Deterministic serializations: no timestamps, pointers, host state.
  std::string ToJson() const;
  std::string ToText() const;
};

CampaignReport RunCampaign(const CampaignConfig& config);

/// One forced-violation trial (a spurious guard deny at a seed-chosen
/// site of the ringbuf scenario) run to containment, returning the
/// flight-recorder bundle the containment captured. Deterministic for a
/// given config — the backing for `kopcc postmortem` and the bundle
/// acceptance tests.
Result<flight::PostmortemBundle> RunPostmortemDemo(
    const CampaignConfig& config);

/// The campaign's kmalloc-exercising target module (KIR source): grabs
/// heap blocks, writes through the returned pointers, and runs a bounded
/// store loop (the watchdog target).
std::string FaultTargetSource();

}  // namespace kop::fault
