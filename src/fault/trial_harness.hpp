// Internal trial harness shared by the enumerated fault campaign
// (campaign.cpp) and the coverage-guided forge campaign (forge.cpp).
// One trial = one fresh simulated kernel + policy module + signed
// module insmod, one armed fault, one workload, and the kernel
// invariant checks (rollback byte-identity, metrics visibility, closed
// journal, unmutated policy table, leak-free rmmod, postmortem
// present-iff-contained).
//
// This header is library-private (it lives next to the sources, not in
// include/): the public surfaces are kop/fault/campaign.hpp and
// kop/fault/forge.hpp. Default-constructed hooks reproduce the PR-4
// campaign behaviour bit for bit — the enumerated campaign's replay
// contract is the regression oracle for this refactor.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kop/fault/campaign.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kir/coverage.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/nic/packet_sink.hpp"
#include "kop/policy/policy_module.hpp"

namespace kop::fault::internal {

/// Injection-point space of one scenario, measured by a fault-free
/// calibration trial (identical across engines: the interpreter and the
/// VM issue the same load/store sequence by construction).
struct Calibration {
  size_t sites = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
};

/// Trials run under a deliberately small kernel: hundreds of fresh
/// kernels are built per campaign, and the address-space zeroing cost
/// dominates wall clock at the default sizes.
kernel::KernelConfig TrialKernelConfig();

/// KIR source for a scenario name ("ringbuf" | "knic" | "icall" |
/// "forge" | anything else = the kmalloc-churning "faulty" module).
std::string SourceFor(const std::string& scenario);

struct TrialContext;

/// Forge-side parametrization of a trial. The defaults reproduce the
/// enumerated campaign exactly.
struct TrialHooks {
  /// Allocate a harness-owned "protected core-kernel object" (a kernel
  /// heap block the module is handed a pointer to but must never
  /// write); its bytes are checked at trial end.
  bool want_sentinel = false;
  /// Policy family: true adds a deny region over the sentinel (the
  /// hardened policy); false ships the deliberately weak policy the
  /// forge CI leg exists to catch.
  bool harden_sentinel = true;
  /// Extra deny regions installed after the family policy — how forge
  /// verifies a synthesized policy suggestion actually re-contains the
  /// minimized repro before reporting it.
  std::vector<policy::Region> extra_regions;
  /// Replaces the fixed per-scenario call script when set.
  std::function<void(TrialContext&)> workload;
  /// Armed as the thread's coverage sink for the workload only.
  kir::CoverageMap* coverage = nullptr;

  // Out-params (valid after RunTrial returns): copied from the trial
  // context so callers see forge-specific outcomes without the context.
  bool reached_flagged_out = false;
  bool sentinel_scribbled_out = false;
};

inline constexpr uint64_t kSentinelBytes = 64;

struct TrialContext {
  CampaignConfig config;
  FaultPlan plan;
  kernel::Kernel kernel{TrialKernelConfig()};
  std::unique_ptr<policy::PolicyModule> policy;
  std::unique_ptr<kernel::ModuleLoader> loader;
  kernel::LoadedModule* mod = nullptr;
  std::unique_ptr<nic::CountingSink> sink;
  std::unique_ptr<nic::E1000Device> nic;
  uint64_t heap_baseline = 0;
  std::vector<policy::Region> policy_baseline;
  bool check_rollback_bytes = false;
  bool saw_error = false;
  TrialHooks* hooks = nullptr;

  // Forge sentinel state (zero / empty when hooks.want_sentinel unset).
  uint64_t sentinel_addr = 0;
  std::vector<uint8_t> sentinel_image;
  bool sentinel_scribbled = false;

  // Set by forge workloads when the analysis-flagged path executed.
  bool reached_flagged = false;

  TrialResult result;
};

Status Setup(TrialContext& ctx);
Status Inject(TrialContext& ctx);

/// One workload call, bracketed by the containment checks.
Result<uint64_t> TrialCall(TrialContext& ctx, const std::string& fn,
                           const std::vector<uint64_t>& args);

/// Full trial: setup, inject, workload (fixed script or hooks.workload),
/// invariant checks, teardown. `calibration_out` receives the measured
/// injection-point space when non-null.
TrialResult RunTrial(const CampaignConfig& config, const FaultPlan& plan,
                     Calibration* calibration_out,
                     TrialHooks* hooks = nullptr);

}  // namespace kop::fault::internal
