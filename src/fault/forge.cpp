#include "kop/fault/forge.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>

#include "kop/analysis/diagnostics.hpp"
#include "kop/analysis/privileged_lint.hpp"
#include "kop/analysis/provenance.hpp"
#include "kop/flight/postmortem.hpp"
#include "kop/kir/coverage.hpp"
#include "kop/kir/module.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/smp/executor.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/util/rng.hpp"
#include "trial_harness.hpp"

namespace kop::fault {
namespace {

using internal::kSentinelBytes;
using internal::TrialContext;
using internal::TrialHooks;

/// Batch width of the fuzz loop. Fixed (and independent of --jobs) so
/// the RNG draw sequence — all of it in the serial construction phase —
/// is identical whatever the worker count.
constexpr uint32_t kBatch = 32;
constexpr uint32_t kProbeBudget = 64;   // ddmin re-executions per repro
constexpr uint32_t kMaxRepros = 3;

/// Fault kinds the mutator may select. Deliberately excludes the kinds
/// that need scenario-specific structure (@vtable, the NIC) — the forge
/// target has neither.
constexpr std::array<FaultKind, 6> kMutableKinds = {
    FaultKind::kNoFault,        FaultKind::kWatchdogExpiry,
    FaultKind::kStoreBitFlip,   FaultKind::kSpuriousViolation,
    FaultKind::kLoadBitFlip,    FaultKind::kKmallocFail,
};

std::string Hex(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, value);
  return buf;
}

std::string JsonEscape(const std::string& in) {
  return analysis::JsonEscape(in);
}

/// Deterministic addresses every trial sees (fresh kernels allocate
/// identically), measured once by the landmark probe.
struct Landmarks {
  uint64_t sentinel = 0;  // the protected kernel object
  uint64_t scratch = 0;   // @scratch — a harmless stash destination
  uint64_t jar = 0;       // @jar
};

struct BaseSeed {
  std::array<uint64_t, kForgeArgCount> args{};
  FaultPlan plan;
};

/// A (slot, value) substitution the mutator favours: per-argument
/// dictionary entries derived from the analysis stage and the landmark
/// probe (staircase keys for the latch argument, interesting addresses
/// for the stash-pointer argument).
struct Hint {
  uint8_t slot = 0;
  uint64_t value = 0;
};

struct CampaignContext {
  ForgeConfig config;
  std::vector<BaseSeed> bases;
  std::vector<std::string> targets;
  std::vector<uint64_t> dictionary;
  std::vector<Hint> hints;
  Landmarks landmarks;
  internal::Calibration calibration;
};

std::array<uint64_t, kForgeArgCount> BenignArgs(const Landmarks& lm) {
  // Latch locked (key 0), stash aimed at the module's own @scratch,
  // small mixer operands, three arbitrary input-buffer words.
  return {0, lm.scratch, 0x1234, 3, 0b1010, 7, 11, 13};
}

void ForgeWorkload(TrialContext& ctx,
                   const std::array<uint64_t, kForgeArgCount>& args) {
  (void)internal::TrialCall(ctx, "fg_init", {});
  (void)internal::TrialCall(ctx, "fg_fill", {0, args[5]});
  (void)internal::TrialCall(ctx, "fg_fill", {1, args[6]});
  (void)internal::TrialCall(ctx, "fg_fill", {2, args[7]});
  (void)internal::TrialCall(ctx, "fg_latch", {args[0]});
  auto stash = internal::TrialCall(ctx, "fg_stash", {args[1], args[2]});
  if (stash.ok() && *stash == 1) {
    // The analysis-flagged store executed and was allowed.
    ctx.reached_flagged = true;
  } else {
    // Or it executed and was denied: the containment bundle names the
    // function the violation fired in.
    flight::PostmortemBundle bundle;
    if (flight::GlobalPostmortems().Latest(&bundle) &&
        (bundle.vm.function == "fg_stash" ||
         bundle.site_label.find("fg_stash") != std::string::npos)) {
      ctx.reached_flagged = true;
    }
  }
  (void)internal::TrialCall(ctx, "fg_mix", {args[3], args[4]});
}

void ApplyOp(const MutOp& op, std::array<uint64_t, kForgeArgCount>& args,
             FaultPlan& plan) {
  const size_t slot = op.slot % kForgeArgCount;
  switch (op.kind) {
    case MutOpKind::kSetArg:
      args[slot] = op.value;
      break;
    case MutOpKind::kFlipBit:
      args[slot] ^= uint64_t{1} << (op.value % 64);
      break;
    case MutOpKind::kAddDelta:
      args[slot] += op.value;
      break;
    case MutOpKind::kSetByte: {
      const unsigned byte = static_cast<unsigned>((op.value >> 8) % 8);
      args[slot] &= ~(uint64_t{0xff} << (byte * 8));
      args[slot] |= (op.value & 0xff) << (byte * 8);
      break;
    }
    case MutOpKind::kPlanKind:
      plan.kind = kMutableKinds[op.value % kMutableKinds.size()];
      break;
    case MutOpKind::kPlanPoint:
      plan.point = op.value;
      break;
    case MutOpKind::kPlanDetail:
      plan.detail = op.value;
      break;
  }
}

std::pair<std::array<uint64_t, kForgeArgCount>, FaultPlan> Materialize(
    const std::vector<BaseSeed>& bases, const ForgeCase& input) {
  const BaseSeed& base = bases[input.base_seed % bases.size()];
  auto args = base.args;
  FaultPlan plan = base.plan;
  for (const MutOp& op : input.trail) ApplyOp(op, args, plan);
  return {args, plan};
}

/// Execute one forge case against a fresh simulated kernel. Pure in the
/// campaign sense: same case + same context => same row, whichever
/// thread runs it.
ForgeTrialRow ExecuteCase(const CampaignContext& cc, const ForgeCase& input,
                          uint32_t index, PolicyFamily family,
                          kir::CoverageMap* coverage,
                          const std::vector<policy::Region>& extra_regions) {
  ForgeTrialRow row;
  row.index = index;
  row.input = input;
  auto [args, plan] = Materialize(cc.bases, input);
  row.args = args;
  row.plan = plan;

  TrialHooks hooks;
  hooks.want_sentinel = true;
  hooks.harden_sentinel = family == PolicyFamily::kHardened;
  hooks.extra_regions = extra_regions;
  hooks.coverage = coverage;
  const auto workload_args = args;
  hooks.workload = [workload_args](TrialContext& ctx) {
    ForgeWorkload(ctx, workload_args);
  };

  CampaignConfig trial_config;
  trial_config.seed = cc.config.seed;
  trial_config.engine = cc.config.engine;
  trial_config.recovery = cc.config.recovery;
  row.result = internal::RunTrial(trial_config, plan, nullptr, &hooks);
  row.result.index = index;
  row.reached_flagged = hooks.reached_flagged_out;
  row.scribbled = hooks.sentinel_scribbled_out;
  if (coverage != nullptr) row.covered = coverage->CoveredSlots();
  return row;
}

void PushUnique(std::vector<uint64_t>& values, uint64_t value) {
  if (std::find(values.begin(), values.end(), value) == values.end()) {
    values.push_back(value);
  }
}

/// Analysis + landmark stage: compile the target once, harvest flagged
/// paths and icmp constants, and run one fault-free probe to measure
/// addresses and the memory-op space. Everything here is deterministic,
/// so replay tokens can rebuild the identical base-seed set.
Status Prepare(CampaignContext& cc) {
  auto compiled = transform::CompileModuleText(ForgeTargetSource());
  if (!compiled.ok()) return compiled.status();

  analysis::AnalysisReport report;
  analysis::CheckProvenance(*compiled->module, report);
  analysis::CheckPrivileged(*compiled->module, report);
  for (const auto& diag : report.diagnostics) {
    if (diag.severity == analysis::Severity::kNote) continue;
    const std::string target =
        diag.analysis + ":@" + diag.function + "/" + diag.block;
    if (std::find(cc.targets.begin(), cc.targets.end(), target) ==
        cc.targets.end()) {
      cc.targets.push_back(target);
    }
  }

  // Compare harvesting: every icmp constant joins the dictionary, and a
  // function whose equality compares are a run of byte-sized constants
  // (the fg_latch staircase shape) contributes the packed little-endian
  // key — the "magic value" an arg must hold to walk the whole ladder.
  std::vector<uint64_t> keys;
  for (const auto& fn : compiled->module->functions()) {
    uint64_t packed = 0;
    unsigned rungs = 0;
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() != kir::Opcode::kICmp) continue;
        for (const kir::Value* operand : inst->operands()) {
          if (operand == nullptr ||
              operand->kind() != kir::ValueKind::kConstant) {
            continue;
          }
          const uint64_t bits =
              static_cast<const kir::Constant*>(operand)->bits();
          PushUnique(cc.dictionary, bits);
          if (inst->icmp_pred() == kir::ICmpPred::kEq && bits > 0 &&
              bits < 256 && rungs < 8) {
            packed |= bits << (8 * rungs);
            ++rungs;
          }
        }
      }
    }
    if (rungs >= 2) keys.push_back(packed);
  }

  Landmarks lm;
  TrialHooks hooks;
  hooks.want_sentinel = true;
  hooks.harden_sentinel = cc.config.policy == PolicyFamily::kHardened;
  hooks.workload = [&lm](TrialContext& ctx) {
    lm.sentinel = ctx.sentinel_addr;
    if (auto addr = ctx.mod->GlobalAddress("scratch"); addr.ok()) {
      lm.scratch = *addr;
    }
    if (auto addr = ctx.mod->GlobalAddress("jar"); addr.ok()) lm.jar = *addr;
    ForgeWorkload(ctx, BenignArgs(lm));
  };
  CampaignConfig probe_config;
  probe_config.seed = cc.config.seed;
  probe_config.engine = cc.config.engine;
  probe_config.recovery = cc.config.recovery;
  const FaultPlan probe{FaultKind::kWatchdogExpiry, "forge", 0, 0};
  TrialResult probed =
      internal::RunTrial(probe_config, probe, &cc.calibration, &hooks);
  if (!probed.invariant_failures.empty()) {
    return Internal("forge landmark probe misbehaved: " +
                    probed.invariant_failures.front());
  }
  cc.landmarks = lm;

  for (uint64_t key : keys) PushUnique(cc.dictionary, key);
  PushUnique(cc.dictionary, lm.sentinel);
  PushUnique(cc.dictionary, lm.sentinel + 8);
  PushUnique(cc.dictionary, lm.scratch);
  PushUnique(cc.dictionary, lm.jar);
  PushUnique(cc.dictionary, 0);
  PushUnique(cc.dictionary, kernel::kUserSpaceEnd - 8);
  PushUnique(cc.dictionary, kernel::kVmallocBase);

  for (uint64_t key : keys) cc.hints.push_back({0, key});
  cc.hints.push_back({1, lm.sentinel});
  cc.hints.push_back({1, lm.sentinel + 8});
  cc.hints.push_back({1, lm.scratch});
  cc.hints.push_back({1, lm.jar});
  cc.hints.push_back({1, kernel::kUserSpaceEnd - 8});

  BaseSeed benign;
  benign.args = BenignArgs(lm);
  benign.plan = FaultPlan{FaultKind::kNoFault, "forge", 0, 0};
  cc.bases.push_back(benign);
  // One directed base per staircase key: the analysis stage has already
  // opened the latch, so a single dictionary substitution of the stash
  // pointer separates these from the flagged store's worst case.
  for (uint64_t key : keys) {
    BaseSeed directed = benign;
    directed.args[0] = key;
    cc.bases.push_back(directed);
  }
  BaseSeed starved = benign;
  starved.plan = FaultPlan{FaultKind::kWatchdogExpiry, "forge", 200, 0};
  cc.bases.push_back(starved);
  return OkStatus();
}

MutOp RandomOp(Xoshiro256& rng, const CampaignContext& cc) {
  MutOp op;
  const uint64_t roll = rng.NextBelow(100);
  if (roll < 30 && !cc.hints.empty()) {
    const Hint& hint = cc.hints[rng.NextBelow(cc.hints.size())];
    op.kind = MutOpKind::kSetArg;
    op.slot = hint.slot;
    op.value = hint.value;
  } else if (roll < 50 && !cc.dictionary.empty()) {
    op.kind = MutOpKind::kSetArg;
    op.slot = static_cast<uint8_t>(rng.NextBelow(kForgeArgCount));
    op.value = cc.dictionary[rng.NextBelow(cc.dictionary.size())];
  } else if (roll < 65) {
    op.kind = MutOpKind::kFlipBit;
    op.slot = static_cast<uint8_t>(rng.NextBelow(kForgeArgCount));
    op.value = rng.NextBelow(64);
  } else if (roll < 75) {
    op.kind = MutOpKind::kAddDelta;
    op.slot = static_cast<uint8_t>(rng.NextBelow(kForgeArgCount));
    const uint64_t magnitude = rng.NextInRange(1, 16);
    op.value = rng.NextBelow(2) == 0 ? magnitude : ~magnitude + 1;
  } else if (roll < 85) {
    op.kind = MutOpKind::kSetByte;
    op.slot = static_cast<uint8_t>(rng.NextBelow(kForgeArgCount));
    op.value = (rng.NextBelow(8) << 8) | rng.NextBelow(256);
  } else if (roll < 90) {
    op.kind = MutOpKind::kPlanKind;
    op.value = rng.NextBelow(kMutableKinds.size());
  } else if (roll < 95) {
    op.kind = MutOpKind::kPlanPoint;
    op.value =
        rng.NextInRange(1, std::max<uint64_t>(1, cc.calibration.stores));
  } else {
    op.kind = MutOpKind::kPlanDetail;
    op.value = rng.NextBelow(64);
  }
  return op;
}

std::string EncodeTrail(const std::vector<MutOp>& trail) {
  std::ostringstream out;
  for (size_t i = 0; i < trail.size(); ++i) {
    if (i != 0) out << ";";
    char code = '?';
    switch (trail[i].kind) {
      case MutOpKind::kSetArg: code = 'a'; break;
      case MutOpKind::kFlipBit: code = 'f'; break;
      case MutOpKind::kAddDelta: code = 'd'; break;
      case MutOpKind::kSetByte: code = 'b'; break;
      case MutOpKind::kPlanKind: code = 'K'; break;
      case MutOpKind::kPlanPoint: code = 'P'; break;
      case MutOpKind::kPlanDetail: code = 'D'; break;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%c%u.%" PRIx64, code,
                  static_cast<unsigned>(trail[i].slot), trail[i].value);
    out << buf;
  }
  return out.str();
}

/// Delta-debugging (ddmin) over the mutation trail: find a minimal
/// sub-trail that still violates an invariant, within a fixed probe
/// budget. Returns the minimized case alongside the repro record so the
/// policy-synthesis stage can re-verify against it.
std::pair<MinimizedRepro, ForgeCase> MinimizeRow(const CampaignContext& cc,
                                                 const ForgeTrialRow& row) {
  MinimizedRepro repro;
  repro.trial = row.index;
  repro.failure = row.result.invariant_failures.empty()
                      ? std::string()
                      : row.result.invariant_failures.front();
  uint32_t probes = 0;
  auto violates = [&](const ForgeCase& candidate) -> bool {
    ++probes;
    const ForgeTrialRow probe =
        ExecuteCase(cc, candidate, row.index, cc.config.policy, nullptr, {});
    return !probe.result.invariant_failures.empty();
  };

  ForgeCase best = row.input;
  // The base alone may already violate (trail length 0 is minimal).
  if (!best.trail.empty() && probes < kProbeBudget) {
    ForgeCase bare{best.base_seed, {}};
    if (violates(bare)) best = bare;
  }
  size_t n = 2;
  while (best.trail.size() >= 2 && probes < kProbeBudget) {
    const size_t chunk = (best.trail.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0;
         start < best.trail.size() && probes < kProbeBudget;
         start += chunk) {
      ForgeCase candidate = best;
      const size_t end = std::min(start + chunk, candidate.trail.size());
      candidate.trail.erase(candidate.trail.begin() + start,
                            candidate.trail.begin() + end);
      if (candidate.trail.empty()) continue;
      if (violates(candidate)) {
        best = candidate;
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= best.trail.size()) break;
      n = std::min(n * 2, best.trail.size());
    }
  }

  repro.steps = static_cast<uint32_t>(best.trail.size());
  repro.probes = probes;
  repro.token = EncodeForgeToken(cc.config.policy, cc.config.seed, best);
  // Determinism proof: the minimized case replays twice with identical
  // outcome and failure set.
  const ForgeTrialRow a =
      ExecuteCase(cc, best, row.index, cc.config.policy, nullptr, {});
  const ForgeTrialRow b =
      ExecuteCase(cc, best, row.index, cc.config.policy, nullptr, {});
  repro.replays = !a.result.invariant_failures.empty() &&
                  a.result.outcome == b.result.outcome &&
                  a.result.invariant_failures == b.result.invariant_failures;
  return {repro, best};
}

/// Corpus distillation: greedy set cover of every covered slot by the
/// fewest corpus rows (ties to the earliest trial).
std::vector<uint32_t> Distill(
    const std::vector<uint32_t>& corpus,
    const std::vector<std::vector<uint32_t>>& slots) {
  std::set<uint32_t> uncovered;
  for (const auto& list : slots) uncovered.insert(list.begin(), list.end());
  std::vector<uint32_t> picked;
  std::vector<bool> used(corpus.size(), false);
  while (!uncovered.empty()) {
    size_t best = corpus.size();
    size_t best_gain = 0;
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (used[i]) continue;
      size_t gain = 0;
      for (uint32_t slot : slots[i]) gain += uncovered.count(slot);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == corpus.size()) break;
    used[best] = true;
    picked.push_back(corpus[best]);
    for (uint32_t slot : slots[best]) uncovered.erase(slot);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace

std::string_view PolicyFamilyName(PolicyFamily family) {
  switch (family) {
    case PolicyFamily::kHardened: return "hardened";
    case PolicyFamily::kWeak: return "weak";
  }
  return "?";
}

std::string_view MutOpKindName(MutOpKind kind) {
  switch (kind) {
    case MutOpKind::kSetArg: return "set-arg";
    case MutOpKind::kFlipBit: return "flip-bit";
    case MutOpKind::kAddDelta: return "add-delta";
    case MutOpKind::kSetByte: return "set-byte";
    case MutOpKind::kPlanKind: return "plan-kind";
    case MutOpKind::kPlanPoint: return "plan-point";
    case MutOpKind::kPlanDetail: return "plan-detail";
  }
  return "?";
}

std::string ForgeTargetSource() {
  return R"(module "kop_forge"

global @latch size 8 rw
global @jar size 8 rw
global @book size 24 rw
global @scratch size 8 rw
global @acc size 8 rw

func @fg_init() -> i64 {
entry:
  store i64 0, @latch
  store i64 0, @jar
  store i64 0, @acc
  store i64 7, @scratch
  ret i64 1
}

func @fg_fill(i64 %i, i64 %v) -> i64 {
entry:
  %m = urem i64 %i, 3
  %slot = gep @book, i64 %m, 8, 0
  store i64 %v, %slot
  ret i64 %m
}

func @fg_latch(i64 %k) -> i64 {
entry:
  %b0 = and i64 %k, 255
  %is0 = icmp eq i64 %b0, 90
  br %is0, s1, no
s1:
  %r1 = lshr i64 %k, 8
  %b1 = and i64 %r1, 255
  %is1 = icmp eq i64 %b1, 195
  br %is1, s2, no
s2:
  %r2 = lshr i64 %k, 16
  %b2 = and i64 %r2, 255
  %is2 = icmp eq i64 %b2, 126
  br %is2, open, no
open:
  store i64 3, @latch
  ret i64 3
no:
  store i64 0, @latch
  ret i64 0
}

func @fg_stash(i64 %addr, i64 %value) -> i64 {
entry:
  %k = load i64, @latch
  %open = icmp eq i64 %k, 3
  br %open, go, locked
go:
  store i64 %value, @jar
  %p = inttoptr i64 %addr to ptr
  store i64 %value, %p
  ret i64 1
locked:
  ret i64 0
}

func @fg_mix(i64 %a, i64 %b) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, next ]
  %acc = phi i64 [ %a, entry ], [ %acc2, next ]
  %done = icmp uge i64 %i, 8
  br %done, out, body
body:
  %sh = lshr i64 %b, %i
  %bit = and i64 %sh, 1
  %odd = icmp eq i64 %bit, 1
  br %odd, grow, fold
grow:
  %t1 = add i64 %acc, %i
  jmp next
fold:
  %t2 = mul i64 %acc, 3
  jmp next
next:
  %acc2 = phi i64 [ %t1, grow ], [ %t2, fold ]
  %i1 = add i64 %i, 1
  jmp loop
out:
  store i64 %acc, @acc
  ret i64 %acc
}
)";
}

std::string EncodeForgeToken(PolicyFamily family, uint64_t seed,
                             const ForgeCase& forge_case) {
  std::ostringstream out;
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof(seed_hex), "%" PRIx64, seed);
  out << "forge.v1:" << PolicyFamilyName(family) << ":" << seed_hex << ":"
      << forge_case.base_seed << ":" << EncodeTrail(forge_case.trail);
  return out.str();
}

Result<std::pair<PolicyFamily, std::pair<uint64_t, ForgeCase>>>
ParseForgeToken(const std::string& token) {
  auto fail = [](const std::string& why) {
    return Internal("bad forge token: " + why);
  };
  std::vector<std::string> parts;
  size_t start = 0;
  while (parts.size() < 4) {
    const size_t colon = token.find(':', start);
    if (colon == std::string::npos) return fail("expected 5 ':'-fields");
    parts.push_back(token.substr(start, colon - start));
    start = colon + 1;
  }
  parts.push_back(token.substr(start));

  if (parts[0] != "forge.v1") return fail("unknown version tag");
  PolicyFamily family = PolicyFamily::kHardened;
  if (parts[1] == "weak") {
    family = PolicyFamily::kWeak;
  } else if (parts[1] != "hardened") {
    return fail("unknown policy family '" + parts[1] + "'");
  }
  if (parts[2].empty()) return fail("empty seed");
  char* end = nullptr;
  const uint64_t seed = std::strtoull(parts[2].c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return fail("malformed seed");
  if (parts[3].empty()) return fail("empty base index");
  const uint64_t base = std::strtoull(parts[3].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fail("malformed base index");

  ForgeCase forge_case;
  forge_case.base_seed = static_cast<uint32_t>(base);
  std::string trail = parts[4];
  size_t cursor = 0;
  while (cursor < trail.size()) {
    size_t sep = trail.find(';', cursor);
    if (sep == std::string::npos) sep = trail.size();
    const std::string op_text = trail.substr(cursor, sep - cursor);
    cursor = sep + 1;
    if (op_text.size() < 4) return fail("truncated op '" + op_text + "'");
    MutOp op;
    switch (op_text[0]) {
      case 'a': op.kind = MutOpKind::kSetArg; break;
      case 'f': op.kind = MutOpKind::kFlipBit; break;
      case 'd': op.kind = MutOpKind::kAddDelta; break;
      case 'b': op.kind = MutOpKind::kSetByte; break;
      case 'K': op.kind = MutOpKind::kPlanKind; break;
      case 'P': op.kind = MutOpKind::kPlanPoint; break;
      case 'D': op.kind = MutOpKind::kPlanDetail; break;
      default: return fail("unknown op code '" + op_text.substr(0, 1) + "'");
    }
    const size_t dot = op_text.find('.');
    if (dot == std::string::npos || dot < 2) {
      return fail("op missing slot.value in '" + op_text + "'");
    }
    const uint64_t slot =
        std::strtoull(op_text.substr(1, dot - 1).c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return fail("malformed op slot");
    op.slot = static_cast<uint8_t>(slot);
    op.value = std::strtoull(op_text.substr(dot + 1).c_str(), &end, 16);
    if (end == nullptr || *end != '\0') return fail("malformed op value");
    forge_case.trail.push_back(op);
  }
  return std::make_pair(family, std::make_pair(seed, forge_case));
}

ForgeReport RunForge(const ForgeConfig& config) {
  ForgeReport report;
  report.seed = config.seed;
  report.engine = std::string(kernel::ExecEngineName(config.engine));
  report.recovery =
      std::string(resilience::RecoveryPolicyName(config.recovery));
  report.policy = std::string(PolicyFamilyName(config.policy));
  report.coverage_compiled_in = kir::CoverageCompiledIn();

  CampaignContext cc;
  cc.config = config;
  if (Status prep = Prepare(cc); !prep.ok()) {
    ForgeTrialRow row;
    row.result.outcome = "prepare failed";
    row.result.invariant_failures.push_back(prep.ToString());
    report.rows.push_back(std::move(row));
    report.invariant_violations = 1;
    report.trials = 1;
    return report;
  }
  report.analysis_targets = cc.targets;
  report.dictionary = cc.dictionary;

  const uint32_t jobs = std::clamp<uint32_t>(config.jobs, 1, smp::kMaxCpus);
  // Each worker is a distinct simulated CPU with its own single-writer
  // trace-ring lane; restored below so later callers see the old layout.
  auto& ring = trace::GlobalTracer().ring();
  const uint32_t prior_shards = ring.shards();
  ring.SetShards(jobs);

  Xoshiro256 rng(config.seed ^ 0x6b6f703a666f7267ULL);  // "kop:forg"
  kir::CoverageMap merged;
  std::vector<ForgeCase> pool;
  for (uint32_t i = 0; i < cc.bases.size(); ++i) {
    pool.push_back(ForgeCase{i, {}});
  }
  std::vector<std::vector<uint32_t>> corpus_slots;
  uint32_t constructed = 0;

  while (report.rows.size() < config.trials) {
    const uint32_t batch_size = std::min<uint32_t>(
        kBatch, config.trials - static_cast<uint32_t>(report.rows.size()));
    const uint32_t batch_base = static_cast<uint32_t>(report.rows.size());

    // Serial construction: every RNG draw happens here, never in a
    // worker — the whole campaign is one fixed draw sequence.
    std::vector<ForgeCase> batch;
    for (uint32_t b = 0; b < batch_size; ++b) {
      if (constructed < cc.bases.size()) {
        batch.push_back(ForgeCase{constructed, {}});
      } else {
        ForgeCase child = pool[rng.NextBelow(pool.size())];
        const uint64_t extra = 1 + rng.NextBelow(3);
        for (uint64_t e = 0; e < extra; ++e) {
          child.trail.push_back(RandomOp(rng, cc));
        }
        batch.push_back(std::move(child));
      }
      ++constructed;
    }

    // Parallel execution: workers pull trial indices from a shared
    // cursor; each runs under a private flight surface so postmortem
    // capture/reset and the policy/heatmap providers never interleave.
    std::vector<ForgeTrialRow> rows(batch_size);
    std::vector<std::unique_ptr<kir::CoverageMap>> maps(batch_size);
    if (kir::CoverageCompiledIn()) {
      for (auto& map : maps) map = std::make_unique<kir::CoverageMap>();
    }
    std::atomic<uint32_t> cursor{0};
    smp::RunOnCpus(jobs, [&](uint32_t) {
      flight::ScopedFlightIsolation isolation;
      for (;;) {
        const uint32_t i = cursor.fetch_add(1);
        if (i >= batch_size) break;
        rows[i] = ExecuteCase(cc, batch[i], batch_base + i, config.policy,
                              maps[i].get(), {});
      }
    });

    // Serial merge, strictly in trial-index order: corpus admission and
    // new-edge counting depend on merge order, so the order is pinned.
    for (uint32_t i = 0; i < batch_size; ++i) {
      ForgeTrialRow& row = rows[i];
      if (maps[i] != nullptr) {
        row.new_edges =
            static_cast<uint32_t>(merged.MergeCountingNew(*maps[i]));
        if (row.new_edges > 0) {
          row.in_corpus = true;
          pool.push_back(row.input);
          report.corpus.push_back(row.index);
          corpus_slots.push_back(maps[i]->Slots());
        }
      }
      if (row.result.contained) {
        ++report.contained;
      } else {
        ++report.absorbed;
      }
      if (!row.result.invariant_failures.empty()) {
        ++report.invariant_violations;
      }
      if (row.reached_flagged) ++report.flagged_reached;
      report.rows.push_back(std::move(row));
    }
  }
  ring.SetShards(prior_shards);

  report.trials = static_cast<uint32_t>(report.rows.size());
  report.covered_edges = merged.CoveredSlots();
  report.coverage_digest = merged.Digest();
  report.distilled = Distill(report.corpus, corpus_slots);

  // Crash minimization + policy synthesis (serial; each probe is one
  // fresh-kernel execution).
  std::vector<std::pair<uint32_t, ForgeCase>> repro_cases;
  if (config.minimize) {
    for (const ForgeTrialRow& row : report.rows) {
      if (row.result.invariant_failures.empty()) continue;
      if (report.repros.size() >= kMaxRepros) break;
      auto [repro, minimized] = MinimizeRow(cc, row);
      repro_cases.emplace_back(row.index, minimized);
      report.repros.push_back(std::move(repro));
    }
  }

  std::set<uint64_t> suggested;
  for (const ForgeTrialRow& row : report.rows) {
    if (!row.scribbled) continue;
    if (!suggested.insert(cc.landmarks.sentinel).second) continue;
    PolicySuggestion suggestion;
    suggestion.base = cc.landmarks.sentinel;
    suggestion.len = kSentinelBytes;
    suggestion.reason =
        "trial #" + std::to_string(row.index) +
        " overwrote the protected kernel object" +
        (cc.targets.empty() ? std::string()
                            : " via " + cc.targets.front());
    suggestion.manager_command = "policy_manager add " + Hex(suggestion.base) +
                                 " " + Hex(suggestion.len) + " none";
    // Verification: replay the (minimized, if available) offending case
    // under the weak family plus the suggested region — the scribble
    // must become a contained violation.
    ForgeCase against = row.input;
    for (const auto& [index, minimized] : repro_cases) {
      if (index == row.index) against = minimized;
    }
    const ForgeTrialRow check = ExecuteCase(
        cc, against, row.index, PolicyFamily::kWeak, nullptr,
        {policy::Region{suggestion.base, suggestion.len, policy::kProtNone}});
    suggestion.verified =
        !check.scribbled && check.result.invariant_failures.empty();
    report.suggestions.push_back(std::move(suggestion));
  }
  return report;
}

Result<ForgeTrialRow> ReplayForge(const ForgeConfig& config,
                                  const std::string& token) {
  auto parsed = ParseForgeToken(token);
  if (!parsed.ok()) return parsed.status();
  CampaignContext cc;
  cc.config = config;
  cc.config.policy = parsed->first;
  cc.config.seed = parsed->second.first;
  KOP_RETURN_IF_ERROR(Prepare(cc));
  std::unique_ptr<kir::CoverageMap> map;
  if (kir::CoverageCompiledIn()) map = std::make_unique<kir::CoverageMap>();
  ForgeTrialRow row = ExecuteCase(cc, parsed->second.second, 0,
                                  cc.config.policy, map.get(), {});
  if (map != nullptr) row.new_edges = static_cast<uint32_t>(row.covered);
  return row;
}

std::string ForgeReport::ToJson() const {
  std::ostringstream out;
  out << "{\"seed\":" << seed << ",\"engine\":\"" << JsonEscape(engine)
      << "\",\"recovery\":\"" << JsonEscape(recovery) << "\",\"policy\":\""
      << JsonEscape(policy) << "\",\"coverage_compiled_in\":"
      << (coverage_compiled_in ? "true" : "false") << ",\"trials\":" << trials
      << ",\"contained\":" << contained << ",\"absorbed\":" << absorbed
      << ",\"invariant_violations\":" << invariant_violations
      << ",\"flagged_reached\":" << flagged_reached
      << ",\"covered_edges\":" << covered_edges
      << ",\"coverage_digest\":" << coverage_digest
      << ",\"analysis_targets\":[";
  for (size_t i = 0; i < analysis_targets.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << JsonEscape(analysis_targets[i]) << "\"";
  }
  out << "],\"dictionary\":[";
  for (size_t i = 0; i < dictionary.size(); ++i) {
    if (i != 0) out << ",";
    out << dictionary[i];
  }
  out << "],\"corpus\":[";
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (i != 0) out << ",";
    out << corpus[i];
  }
  out << "],\"distilled\":[";
  for (size_t i = 0; i < distilled.size(); ++i) {
    if (i != 0) out << ",";
    out << distilled[i];
  }
  out << "],\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ForgeTrialRow& row = rows[i];
    if (i != 0) out << ",";
    out << "{\"i\":" << row.index << ",\"base\":" << row.input.base_seed
        << ",\"trail\":\"" << JsonEscape(EncodeTrail(row.input.trail))
        << "\",\"kind\":\"" << FaultKindName(row.plan.kind)
        << "\",\"scenario\":\"" << JsonEscape(row.plan.scenario)
        << "\",\"point\":" << row.plan.point
        << ",\"detail\":" << row.plan.detail << ",\"args\":[";
    for (size_t a = 0; a < row.args.size(); ++a) {
      if (a != 0) out << ",";
      out << row.args[a];
    }
    out << "],\"target\":\"" << JsonEscape(row.result.target)
        << "\",\"contained\":" << (row.result.contained ? "true" : "false")
        << ",\"postmortem\":" << (row.result.postmortem ? "true" : "false")
        << ",\"flagged\":" << (row.reached_flagged ? "true" : "false")
        << ",\"scribbled\":" << (row.scribbled ? "true" : "false")
        << ",\"covered\":" << row.covered
        << ",\"new_edges\":" << row.new_edges << ",\"corpus\":"
        << (row.in_corpus ? "true" : "false") << ",\"outcome\":\""
        << JsonEscape(row.result.outcome) << "\",\"invariant_failures\":[";
    for (size_t f = 0; f < row.result.invariant_failures.size(); ++f) {
      if (f != 0) out << ",";
      out << "\"" << JsonEscape(row.result.invariant_failures[f]) << "\"";
    }
    out << "]}";
  }
  out << "],\"repros\":[";
  for (size_t i = 0; i < repros.size(); ++i) {
    const MinimizedRepro& repro = repros[i];
    if (i != 0) out << ",";
    out << "{\"trial\":" << repro.trial << ",\"steps\":" << repro.steps
        << ",\"probes\":" << repro.probes << ",\"replays\":"
        << (repro.replays ? "true" : "false") << ",\"failure\":\""
        << JsonEscape(repro.failure) << "\",\"token\":\""
        << JsonEscape(repro.token) << "\"}";
  }
  out << "],\"suggestions\":[";
  for (size_t i = 0; i < suggestions.size(); ++i) {
    const PolicySuggestion& suggestion = suggestions[i];
    if (i != 0) out << ",";
    out << "{\"base\":\"" << Hex(suggestion.base)
        << "\",\"len\":" << suggestion.len << ",\"reason\":\""
        << JsonEscape(suggestion.reason) << "\",\"manager_command\":\""
        << JsonEscape(suggestion.manager_command) << "\",\"verified\":"
        << (suggestion.verified ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

std::string ForgeReport::ToText() const {
  std::ostringstream out;
  out << "forge campaign: seed " << seed << ", engine " << engine
      << ", recovery " << recovery << ", policy " << policy << "\n";
  out << trials << " trials: " << contained << " contained, " << absorbed
      << " absorbed, " << invariant_violations << " invariant violation(s)\n";
  if (coverage_compiled_in) {
    out << "coverage: " << covered_edges << " edge slot(s), corpus "
        << corpus.size() << " seed(s), distilled to " << distilled.size()
        << "\n";
  } else {
    out << "coverage: not compiled in (undirected mutation)\n";
  }
  out << "flagged paths: " << analysis_targets.size() << " target(s), reached in "
      << flagged_reached << " trial(s)\n";
  for (const std::string& target : analysis_targets) {
    out << "  target " << target << "\n";
  }
  for (const MinimizedRepro& repro : repros) {
    out << "repro: trial #" << repro.trial << " -> " << repro.steps
        << " step(s) (" << repro.probes << " probes, replays: "
        << (repro.replays ? "yes" : "NO") << ")\n  token " << repro.token
        << "\n";
  }
  for (const PolicySuggestion& suggestion : suggestions) {
    out << "suggest: " << suggestion.manager_command << " ("
        << (suggestion.verified ? "verified" : "UNVERIFIED") << ": "
        << suggestion.reason << ")\n";
  }
  for (const ForgeTrialRow& row : rows) {
    for (const std::string& failure : row.result.invariant_failures) {
      out << "  INVARIANT #" << row.index << " ["
          << FaultKindName(row.plan.kind) << " base " << row.input.base_seed
          << " trail " << EncodeTrail(row.input.trail) << "]: " << failure
          << "\n";
    }
  }
  return out.str();
}

}  // namespace kop::fault
