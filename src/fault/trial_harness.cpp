#include "trial_harness.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

#include "kop/fault/forge.hpp"
#include "kop/kir/module.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/signing/signer.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"
#include "kop/transform/compiler.hpp"

namespace kop::fault::internal {
namespace {

using kernel::Kernel;

std::string HexAddr(uint64_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, addr);
  return buf;
}

/// Byte image of every module global, read through the host mapping
/// (invisible to the simulated clock).
std::vector<std::vector<uint8_t>> SnapshotGlobals(TrialContext& ctx) {
  std::vector<std::vector<uint8_t>> out;
  for (const auto& global : ctx.mod->ir().globals()) {
    auto addr = ctx.mod->GlobalAddress(global->name());
    if (!addr.ok()) {
      out.emplace_back();
      continue;
    }
    const uint8_t* host =
        ctx.kernel.mem().RawHostPointer(*addr, global->size_bytes());
    if (host == nullptr) {
      out.emplace_back();
      continue;
    }
    out.emplace_back(host, host + global->size_bytes());
  }
  return out;
}

bool SameRegions(const std::vector<policy::Region>& a,
                 const std::vector<policy::Region>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].base != b[i].base || a[i].len != b[i].len ||
        a[i].prot != b[i].prot) {
      return false;
    }
  }
  return true;
}

void RunWorkload(TrialContext& ctx) {
  if (ctx.hooks != nullptr && ctx.hooks->workload) {
    ctx.hooks->workload(ctx);
    return;
  }
  const std::string& scenario = ctx.plan.scenario;
  if (scenario == "ringbuf") {
    (void)TrialCall(ctx, "rb_init", {});
    for (uint64_t i = 0; i < 12; ++i) {
      (void)TrialCall(ctx, "rb_push", {i * 7 + 1});
    }
    for (int i = 0; i < 6; ++i) (void)TrialCall(ctx, "rb_pop", {});
    (void)TrialCall(ctx, "rb_size", {});
    return;
  }
  if (scenario == "knic") {
    (void)TrialCall(ctx, "knic_init", {kernel::kVmallocBase});
    (void)TrialCall(ctx, "knic_fill", {64, ctx.config.seed & 0xff});
    for (int i = 0; i < 8; ++i) {
      (void)TrialCall(ctx, "knic_send", {kernel::kVmallocBase, 64});
    }
    (void)TrialCall(ctx, "knic_sent_hw", {kernel::kVmallocBase});
    return;
  }
  if (scenario == "knic_mq") {
    (void)TrialCall(ctx, "mq_init", {kernel::kVmallocBase, 4});
    (void)TrialCall(ctx, "mq_fill", {64, ctx.config.seed & 0xff});
    for (uint64_t q = 0; q < 4; ++q) {
      (void)TrialCall(ctx, "mq_send", {kernel::kVmallocBase, q, 64});
      (void)TrialCall(ctx, "mq_send", {kernel::kVmallocBase, q, 64});
    }
    for (uint64_t q = 0; q < 4; ++q) {
      (void)TrialCall(ctx, "mq_send_batch", {kernel::kVmallocBase, q, 64, 3});
    }
    for (uint64_t q = 0; q < 4; ++q) (void)TrialCall(ctx, "mq_sent", {q});
    (void)TrialCall(ctx, "mq_sent_hw", {kernel::kVmallocBase});
    return;
  }
  if (scenario == "icall") {
    (void)TrialCall(ctx, "vt_init", {});
    for (uint64_t i = 0; i < 9; ++i) {
      (void)TrialCall(ctx, "vt_call", {i % 3, i * 5 + 3, i + 1});
    }
    (void)TrialCall(ctx, "vt_pick", {0, 7, 2});
    (void)TrialCall(ctx, "vt_pick", {1, 7, 2});
    // Direct call so h_spare's guard sites fire too: the spurious-
    // violation family picks a random site token and its forced deny
    // must be reachable in every scenario.
    (void)TrialCall(ctx, "h_spare", {11, 4});
    (void)TrialCall(ctx, "vt_acc", {});
    return;
  }
  // "faulty": heap churn through the kernel's kmalloc/kfree exports.
  (void)TrialCall(ctx, "init", {});
  auto a = TrialCall(ctx, "grab", {96});
  if (a.ok() && *a != 0) {
    (void)TrialCall(ctx, "poke", {*a, 0x1111});
  }
  auto b = TrialCall(ctx, "grab", {160});
  if (b.ok() && *b != 0) {
    (void)TrialCall(ctx, "poke", {*b, 0x2222});
  }
  (void)TrialCall(ctx, "grab", {224});
  (void)TrialCall(ctx, "churn", {96});
  for (int i = 0; i < 3; ++i) (void)TrialCall(ctx, "drop", {});
}

void CheckEndInvariants(TrialContext& ctx) {
  auto& fails = ctx.result.invariant_failures;
  if (ctx.kernel.panicked()) fails.push_back("kernel panicked");
  if (ctx.mod->journaled_memory().journal().active()) {
    fails.push_back("write journal left open after workload");
  }
  if (!SameRegions(ctx.policy->engine().store().Snapshot(),
                   ctx.policy_baseline)) {
    fails.push_back("policy table mutated by the workload");
  }

  // Forge sentinel: the protected kernel object the module was handed a
  // pointer to must be byte-identical to its pre-workload image. Under
  // the hardened policy the deny region + rollback guarantee it; under
  // the weak family a scribble here IS the vulnerability the campaign
  // exists to find (and then minimize and patch).
  if (ctx.sentinel_addr != 0) {
    const uint8_t* host =
        ctx.kernel.mem().RawHostPointer(ctx.sentinel_addr, kSentinelBytes);
    if (host == nullptr ||
        !std::equal(ctx.sentinel_image.begin(), ctx.sentinel_image.end(),
                    host)) {
      ctx.sentinel_scribbled = true;
      fails.push_back("protected kernel object at " +
                      HexAddr(ctx.sentinel_addr) +
                      " scribbled by the module");
    }
  }

  // Teardown + leak accounting: after rmmod the simulated heap must be
  // back to its pre-insmod allocation count (quarantine/restart/dtor
  // reclaim paths all feed this).
  ctx.mod->journaled_memory().ClearFaultHook();
  const std::string name = ctx.mod->name();
  if (Status rm = ctx.loader->Rmmod(name); !rm.ok()) {
    fails.push_back("rmmod failed: " + rm.ToString());
  }
  ctx.mod = nullptr;
  const uint64_t allocs = ctx.kernel.heap().Stats().allocation_count;
  if (allocs != ctx.heap_baseline) {
    fails.push_back("leaked " +
                    std::to_string(allocs > ctx.heap_baseline
                                       ? allocs - ctx.heap_baseline
                                       : ctx.heap_baseline - allocs) +
                    " heap allocation(s)");
  }
}

}  // namespace

kernel::KernelConfig TrialKernelConfig() {
  kernel::KernelConfig config;
  config.ram_bytes = 4ull << 20;
  config.kernel_text_bytes = 1ull << 20;
  config.module_area_bytes = 4ull << 20;
  config.user_bytes = 1ull << 20;
  return config;
}

std::string SourceFor(const std::string& scenario) {
  if (scenario == "ringbuf") return kirmods::RingbufSource();
  if (scenario == "knic") return kirmods::KnicSource();
  if (scenario == "knic_mq") return kirmods::KnicMqSource();
  if (scenario == "icall") return kirmods::IcallSource();
  if (scenario == "forge") return ForgeTargetSource();
  return FaultTargetSource();
}

Status Setup(TrialContext& ctx) {
  auto policy = policy::PolicyModule::Insert(&ctx.kernel, nullptr,
                                             policy::PolicyMode::kDefaultAllow);
  if (!policy.ok()) return policy.status();
  ctx.policy = std::move(*policy);
  ctx.policy->engine().SetViolationAction(policy::ViolationAction::kQuarantine);
  KOP_RETURN_IF_ERROR(ctx.policy->engine().store().Add(
      policy::Region{0, kernel::kUserSpaceEnd, policy::kProtNone}));

  if (ctx.hooks != nullptr && ctx.hooks->want_sentinel) {
    // The "protected core-kernel object": a kernel-owned heap block
    // whose address the workload hands the module (the read-only
    // contract the paper's protection story is about). Allocated before
    // the heap baseline so the leak check is indifferent to it.
    auto sentinel = ctx.kernel.heap().Kmalloc(kSentinelBytes);
    if (!sentinel.ok()) return sentinel.status();
    ctx.sentinel_addr = *sentinel;
    ctx.sentinel_image.resize(kSentinelBytes);
    for (uint64_t i = 0; i < kSentinelBytes; ++i) {
      ctx.sentinel_image[i] = static_cast<uint8_t>(0xa5 ^ (i * 7));
    }
    KOP_RETURN_IF_ERROR(ctx.kernel.mem().Write(
        ctx.sentinel_addr, ctx.sentinel_image.data(), kSentinelBytes));
    if (ctx.hooks->harden_sentinel) {
      KOP_RETURN_IF_ERROR(ctx.policy->engine().store().Add(policy::Region{
          ctx.sentinel_addr, kSentinelBytes, policy::kProtNone}));
    }
  }
  if (ctx.hooks != nullptr) {
    for (const policy::Region& region : ctx.hooks->extra_regions) {
      KOP_RETURN_IF_ERROR(ctx.policy->engine().store().Add(region));
    }
  }

  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  ctx.loader =
      std::make_unique<kernel::ModuleLoader>(&ctx.kernel, std::move(keyring));
  ctx.loader->set_engine(ctx.config.engine);
  ctx.loader->set_recovery_policy(ctx.config.recovery);

  if (ctx.plan.scenario == "knic" || ctx.plan.scenario == "knic_mq") {
    ctx.sink = std::make_unique<nic::CountingSink>();
    ctx.nic =
        std::make_unique<nic::E1000Device>(&ctx.kernel.mem(), ctx.sink.get());
    KOP_RETURN_IF_ERROR(ctx.nic->MapAt(kernel::kVmallocBase));
  }

  ctx.heap_baseline = ctx.kernel.heap().Stats().allocation_count;

  auto compiled = transform::CompileModuleText(SourceFor(ctx.plan.scenario));
  if (!compiled.ok()) return compiled.status();
  const auto image =
      signing::SignModule(compiled->text, compiled->attestation,
                          signing::SigningKey::DevelopmentKey());
  auto loaded = ctx.loader->Insmod(image);
  if (!loaded.ok()) return loaded.status();
  ctx.mod = *loaded;
  if (ctx.plan.scenario == "knic") {
    ctx.mod->set_restart_entry("knic_init", {kernel::kVmallocBase});
  }
  if (ctx.plan.scenario == "knic_mq") {
    ctx.mod->set_restart_entry("mq_init", {kernel::kVmallocBase, 4});
  }
  return OkStatus();
}

/// Arm the planned fault. Plans are fully materialized up front (point
/// and bit chosen from the seeded RNG at planning time), so injection
/// itself draws no randomness — a prerequisite for replay determinism.
Status Inject(TrialContext& ctx) {
  const FaultPlan& plan = ctx.plan;
  switch (plan.kind) {
    case FaultKind::kNoFault: {
      // Fault-free trial: the forge campaign fuzzes inputs under an
      // honest kernel too — a module bug must not need a fault to be
      // found.
      ctx.result.target = "none";
      return OkStatus();
    }
    case FaultKind::kSpuriousViolation: {
      const std::vector<uint64_t>& tokens = ctx.mod->site_tokens();
      if (tokens.empty()) return Internal("scenario has no guard sites");
      const uint64_t token = tokens[plan.point % tokens.size()];
      ctx.policy->engine().ForceDenyAtSite(token);
      ctx.result.target = trace::GlobalSites().Label(token);
      return OkStatus();
    }
    case FaultKind::kGuardTableCorrupt: {
      const auto& globals = ctx.mod->ir().globals();
      if (globals.empty()) return Internal("scenario has no globals");
      const auto& global = globals[plan.point % globals.size()];
      auto addr = ctx.mod->GlobalAddress(global->name());
      if (!addr.ok()) return addr.status();
      KOP_RETURN_IF_ERROR(ctx.policy->engine().store().Add(
          policy::Region{*addr, global->size_bytes(), policy::kProtNone}));
      ctx.result.target = "@" + global->name();
      return OkStatus();
    }
    case FaultKind::kStoreBitFlip:
    case FaultKind::kLoadBitFlip:
    case FaultKind::kNicTxError: {
      const bool store_side = plan.kind != FaultKind::kLoadBitFlip;
      const uint64_t nth = plan.point;
      const uint64_t bit = plan.detail;
      auto seen = std::make_shared<uint64_t>(0);
      ctx.mod->journaled_memory().SetFaultHook(
          [store_side, nth, bit, seen](bool is_store, uint64_t /*ordinal*/,
                                       uint64_t /*addr*/, uint64_t value,
                                       uint32_t size) -> uint64_t {
            if (is_store != store_side) return value;
            if (++*seen != nth) return value;
            return value ^ (uint64_t{1} << (bit % (size * 8)));
          });
      ctx.result.target = std::string(store_side ? "store" : "load") + " #" +
                          std::to_string(nth) + " bit " + std::to_string(bit);
      return OkStatus();
    }
    case FaultKind::kNicQueueDma: {
      // Bit flip confined to one queue's TX datapath: ring-slot stores
      // within @txrings[q] and that queue's TDT doorbell.
      const uint64_t queue = plan.point % 4;
      const uint64_t nth = (plan.detail >> 6) == 0 ? 1 : (plan.detail >> 6);
      const uint64_t bit = plan.detail & 63;
      auto ring_base = ctx.mod->GlobalAddress("txrings");
      if (!ring_base.ok()) return ring_base.status();
      const uint64_t ring_lo = *ring_base + queue * 128;
      const uint64_t ring_hi = ring_lo + 128;
      const uint64_t tdt =
          kernel::kVmallocBase + nic::QReg(nic::REG_TDT, uint32_t(queue));
      auto seen = std::make_shared<uint64_t>(0);
      ctx.mod->journaled_memory().SetFaultHook(
          [ring_lo, ring_hi, tdt, nth, bit, seen](
              bool is_store, uint64_t /*ordinal*/, uint64_t addr,
              uint64_t value, uint32_t size) -> uint64_t {
            if (!is_store) return value;
            const bool in_ring = addr >= ring_lo && addr < ring_hi;
            if (!in_ring && addr != tdt) return value;
            if (++*seen != nth) return value;
            return value ^ (uint64_t{1} << (bit % (size * 8)));
          });
      ctx.result.target = "queue " + std::to_string(queue) + " tx store #" +
                          std::to_string(nth) + " bit " + std::to_string(bit);
      return OkStatus();
    }
    case FaultKind::kNicDoorbellRange: {
      // The PR-4 spin-bug regression, per queue: the Nth doorbell write
      // on queue `point` lands far outside the ring. The device must
      // wedge that queue (bad_doorbells) rather than chase the tail,
      // and the driver must terminate, leak nothing, and keep the other
      // queues transmitting.
      const uint64_t queue = plan.point % 4;
      const uint64_t nth = plan.detail == 0 ? 1 : plan.detail;
      const uint64_t tdt =
          kernel::kVmallocBase + nic::QReg(nic::REG_TDT, uint32_t(queue));
      auto seen = std::make_shared<uint64_t>(0);
      ctx.mod->journaled_memory().SetFaultHook(
          [tdt, nth, seen](bool is_store, uint64_t /*ordinal*/,
                           uint64_t addr, uint64_t value,
                           uint32_t /*size*/) -> uint64_t {
            if (!is_store || addr != tdt) return value;
            if (++*seen != nth) return value;
            return 999;  // 8-slot ring: unambiguously out of range
          });
      ctx.result.target = "queue " + std::to_string(queue) + " doorbell #" +
                          std::to_string(nth) + " -> 999";
      return OkStatus();
    }
    case FaultKind::kKmallocFail: {
      // Replace the kernel's kmalloc export with one that fails (returns
      // NULL) exactly at the Nth call of this trial.
      KOP_RETURN_IF_ERROR(ctx.kernel.symbols().Unexport("kmalloc"));
      Kernel* kernel = &ctx.kernel;
      auto calls = std::make_shared<uint64_t>(0);
      const uint64_t fail_at = plan.point;
      KOP_RETURN_IF_ERROR(ctx.kernel.symbols().ExportFunction(
          "kmalloc",
          [kernel, calls, fail_at](const std::vector<uint64_t>& args)
              -> uint64_t {
            if (++*calls == fail_at) return 0;
            auto addr = kernel->heap().Kmalloc(args.empty() ? 0 : args[0]);
            return addr.ok() ? *addr : 0;
          }));
      ctx.result.target = "kmalloc call #" + std::to_string(fail_at);
      return OkStatus();
    }
    case FaultKind::kWatchdogExpiry: {
      ctx.mod->set_watchdog_steps(plan.point);
      ctx.result.target = "budget " + std::to_string(plan.point) + " steps";
      return OkStatus();
    }
    case FaultKind::kCallTargetFlip:
    case FaultKind::kCallTargetForge: {
      // Control-flow corruption: the fault hook watches only memory ops
      // landing inside @vtable — the module's function-pointer table —
      // and corrupts the Nth one. A flip mutates the pointer the
      // dispatcher loads; a forge rewrites the pointer as it is stored.
      uint64_t vt_base = 0;
      uint64_t vt_end = 0;
      for (const auto& global : ctx.mod->ir().globals()) {
        if (global->name() != "vtable") continue;
        auto addr = ctx.mod->GlobalAddress(global->name());
        if (!addr.ok()) return addr.status();
        vt_base = *addr;
        vt_end = *addr + global->size_bytes();
      }
      if (vt_end == 0) return Internal("scenario has no @vtable");
      const bool flip = plan.kind == FaultKind::kCallTargetFlip;
      const uint64_t nth = plan.point;
      uint64_t payload = plan.detail;  // flip: bit index
      std::string label;
      if (flip) {
        label = "vtable load #" + std::to_string(nth) + " bit " +
                std::to_string(payload);
      } else {
        switch (plan.detail % 3) {
          case 0:
            payload = 0;
            label = "NULL";
            break;
          case 1:
            payload = 0xdead4bad0f0full;
            label = "0xdead4bad0f0f";
            break;
          default: {
            // A real, signature-compatible function that is never
            // address-taken — the precise hijack CFI exists to refuse.
            const int index = ctx.mod->ir().FunctionIndex("h_spare");
            if (index < 0) return Internal("icall scenario lost @h_spare");
            payload = kir::FunctionAddressForIndex(
                static_cast<size_t>(index));
            label = "@h_spare";
            break;
          }
        }
        label = "vtable store #" + std::to_string(nth) + " <- " + label;
      }
      auto seen = std::make_shared<uint64_t>(0);
      ctx.mod->journaled_memory().SetFaultHook(
          [flip, vt_base, vt_end, nth, payload, seen](
              bool is_store, uint64_t /*ordinal*/, uint64_t addr,
              uint64_t value, uint32_t size) -> uint64_t {
            if (is_store == flip) return value;
            if (addr < vt_base || addr >= vt_end) return value;
            if (++*seen != nth) return value;
            if (flip) return value ^ (uint64_t{1} << (payload % (size * 8)));
            return payload;
          });
      ctx.result.target = label;
      return OkStatus();
    }
  }
  return Internal("corrupt fault kind");
}

/// One workload call, bracketed by the containment checks: when the call
/// is contained (a rollback ran), kernel memory the module can name must
/// be byte-identical to call entry, and the containment must be visible
/// in the metrics.
Result<uint64_t> TrialCall(TrialContext& ctx, const std::string& fn,
                           const std::vector<uint64_t>& args) {
  std::vector<std::vector<uint8_t>> before;
  if (ctx.check_rollback_bytes) before = SnapshotGlobals(ctx);
  const uint64_t rollbacks_before =
      ctx.mod->journaled_memory().journal().total_rollbacks();
  const uint64_t metric_before =
      trace::GlobalMetrics().GetCounter("resilience.rollbacks")->value();

  Result<uint64_t> result = [&]() -> Result<uint64_t> {
    try {
      return ctx.mod->Call(fn, args);
    } catch (const kernel::KernelPanic& panic) {
      return Internal(std::string("kernel panic escaped containment: ") +
                      panic.what());
    }
  }();
  if (!result.ok()) ctx.saw_error = true;

  const uint64_t rollbacks =
      ctx.mod->journaled_memory().journal().total_rollbacks() -
      rollbacks_before;
  if (rollbacks > 0) {
    ctx.result.contained = true;
    if (trace::GlobalMetrics().GetCounter("resilience.rollbacks")->value() ==
        metric_before) {
      // The counter is a process-global atomic that only ever grows, so
      // concurrent forge workers can only mask this check for each
      // other, never fail it spuriously; the serial report (the merge
      // oracle) checks it with full strength.
      ctx.result.invariant_failures.push_back(
          "containment at @" + fn + " not visible in metrics");
    }
    if (ctx.check_rollback_bytes) {
      const auto after = SnapshotGlobals(ctx);
      if (after != before) {
        ctx.result.invariant_failures.push_back(
            "rollback residue: module globals differ from entry of @" + fn);
      }
    }
  }
  return result;
}

TrialResult RunTrial(const CampaignConfig& config, const FaultPlan& plan,
                     Calibration* calibration_out, TrialHooks* hooks) {
  // Fresh incident store per trial: the present-iff-contained invariant
  // below must see only THIS trial's captures. (Forge workers run under
  // ScopedFlightIsolation, so this reset is thread-private there.)
  flight::GlobalPostmortems().Reset();
  auto ctx = std::make_unique<TrialContext>();
  ctx->config = config;
  ctx->plan = plan;
  ctx->hooks = hooks;
  ctx->result.plan = plan;
  // Under restart recovery a contained call legitimately re-inits the
  // globals, so the byte-identical check only pins quarantine trials.
  ctx->check_rollback_bytes =
      config.recovery == resilience::RecoveryPolicy::kQuarantine;

  if (Status setup = Setup(*ctx); !setup.ok()) {
    ctx->result.invariant_failures.push_back("setup failed: " +
                                             setup.ToString());
    return ctx->result;
  }
  if (Status armed = Inject(*ctx); !armed.ok()) {
    ctx->result.invariant_failures.push_back("injection failed: " +
                                             armed.ToString());
    return ctx->result;
  }
  ctx->policy_baseline = ctx->policy->engine().store().Snapshot();

  {
    kir::ScopedCoverage coverage(hooks != nullptr ? hooks->coverage
                                                  : nullptr);
    RunWorkload(*ctx);
  }

  // Flight-recorder invariant: every contained trial leaves a postmortem
  // bundle, and no bundle appears without containment.
  ctx->result.postmortem = flight::GlobalPostmortems().incidents() > 0;
  if (ctx->result.postmortem != ctx->result.contained) {
    ctx->result.invariant_failures.push_back(
        ctx->result.contained
            ? "contained trial captured no postmortem bundle"
            : "postmortem bundle captured without containment");
  }

  // Control-flow containment must be attributed as such: the postmortem
  // of a flipped/forged call target names "cfi", not a generic guard
  // violation. (With KOP_CFI=off the checks are never injected — the
  // corruption is an oops the module observes, never a containment — so
  // the attribution claim is vacuous there.)
  if ((plan.kind == FaultKind::kCallTargetFlip ||
       plan.kind == FaultKind::kCallTargetForge) &&
      ctx->result.contained && transform::DefaultCfiChecks()) {
    // Under restart recovery the corruption persists across re-inits, so
    // the FINAL bundle of an exhausted module is "restart-exhausted";
    // the cfi attribution lives in the earlier per-incident bundles.
    flight::PostmortemBundle bundle;
    if (!flight::GlobalPostmortems().Latest(&bundle) ||
        (bundle.reason != "cfi" && bundle.reason != "restart-exhausted")) {
      ctx->result.invariant_failures.push_back(
          "control-flow containment attributed to \"" +
          (bundle.reason.empty() ? std::string("?") : bundle.reason) +
          "\" instead of \"cfi\"");
    }
  }

  if (calibration_out != nullptr) {
    calibration_out->sites = ctx->mod->site_tokens().size();
    calibration_out->loads = ctx->mod->exec_stats().loads;
    calibration_out->stores = ctx->mod->exec_stats().stores;
  }

  ctx->result.outcome =
      ctx->result.contained
          ? "contained (" +
                std::string(ctx->mod != nullptr
                                ? resilience::ModuleStateName(
                                      ctx->mod->state())
                                : "?") +
                ")"
          : (ctx->saw_error ? "absorbed (call error, no containment)"
                            : "absorbed (no containment)");

  CheckEndInvariants(*ctx);
  if (hooks != nullptr) {
    hooks->reached_flagged_out = ctx->reached_flagged;
    hooks->sentinel_scribbled_out = ctx->sentinel_scribbled;
  }
  return ctx->result;
}

}  // namespace kop::fault::internal
