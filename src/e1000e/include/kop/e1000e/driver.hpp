// The e1000e-style network driver — the protected module of the paper's
// evaluation (§4). One source, templated on the memory-access policy:
// Driver<RawMemOps> is the baseline build, Driver<GuardedMemOps> the
// CARAT KOP build. Every piece of driver state (adapter struct, buffer
// info array, descriptor ring, bounce buffer) lives in *simulated* kernel
// memory and is touched only through Ops — so the guarded build guards
// exactly the accesses the real transformed driver would: its own
// bookkeeping, the descriptor ring, and MMIO registers. Frame payload
// moves by device DMA, unguarded, as on real hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "kop/e1000e/memops.hpp"
#include "kop/nic/e1000_regs.hpp"

namespace kop::e1000e {

/// Ethernet constants.
inline constexpr uint32_t kEthZlen = 60;     // minimum payload before FCS
inline constexpr uint32_t kEthFrameLen = 1514;
inline constexpr uint32_t kBounceBytes = 2048;

/// TX copybreak: frames shorter than this are copied by the driver into a
/// pre-mapped bounce buffer instead of being DMA-mapped individually (the
/// classic small-frame optimization; it also satisfies the hardware's
/// minimum-frame padding in the same pass). This per-byte driver copy is
/// the only CPU-side data touching in the transmit path — and thus where
/// CARAT KOP's per-size effect (Figure 6) concentrates.
inline constexpr uint32_t kTxCopybreak = 128;

/// Layout of the adapter structure in simulated kernel memory. Offsets
/// are explicit because the driver reads/writes fields through Ops (the
/// simulated address space), not through host pointers.
namespace adapter {
inline constexpr uint64_t kMmioBase = 0x00;      // u64
inline constexpr uint64_t kTxRingBase = 0x08;    // u64
inline constexpr uint64_t kTxRingCount = 0x10;   // u32
inline constexpr uint64_t kNextToUse = 0x14;     // u32
inline constexpr uint64_t kNextToClean = 0x18;   // u32
inline constexpr uint64_t kFlags = 0x1c;         // u32
inline constexpr uint64_t kTxPackets = 0x20;     // u64
inline constexpr uint64_t kTxBytes = 0x28;       // u64
inline constexpr uint64_t kTxBusy = 0x30;        // u64
inline constexpr uint64_t kTxCleaned = 0x38;     // u64
inline constexpr uint64_t kBounceBuf = 0x40;     // u64
inline constexpr uint64_t kBufferInfo = 0x48;    // u64
inline constexpr uint64_t kWatchdogStamp = 0x50; // u64
inline constexpr uint64_t kRxRingBase = 0x58;    // u64
inline constexpr uint64_t kRxRingCount = 0x60;   // u32
inline constexpr uint64_t kRxNextToClean = 0x64; // u32
inline constexpr uint64_t kRxBuffers = 0x68;     // u64
inline constexpr uint64_t kRxPackets = 0x70;     // u64
inline constexpr uint64_t kRxBytes = 0x78;       // u64
inline constexpr uint64_t kSize = 0x80;
}  // namespace adapter

/// Size of each driver-armed RX buffer (matches the device's fixed
/// RCTL.BSIZE of 2 KiB).
inline constexpr uint32_t kRxBufferBytes = 2048;

/// Per-descriptor buffer bookkeeping (buffer_info[] in the real driver).
namespace bufinfo {
inline constexpr uint64_t kSkbAddr = 0x00;  // u64
inline constexpr uint64_t kLength = 0x08;   // u32
inline constexpr uint64_t kInUse = 0x0c;    // u32
inline constexpr uint64_t kStride = 0x10;
}  // namespace bufinfo

struct DriverCounters {
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t tx_busy = 0;     // xmit attempts that found the ring full
  uint64_t tx_cleaned = 0;  // descriptors reclaimed
  uint64_t rx_packets = 0;
  uint64_t rx_bytes = 0;
};

/// One frame of a descriptor batch: payload address + length in
/// simulated memory.
struct TxFrame {
  uint64_t addr = 0;
  uint32_t len = 0;
};

template <typename Ops>
class Driver {
 public:
  /// Probe: allocate adapter state + ring + bounce buffer in simulated
  /// kernel memory, reset and bring up the device. `ops` is copied; it is
  /// cheap (two pointers).
  static Result<Driver> Probe(Ops ops, uint64_t mmio_base,
                              uint32_t ring_entries = 256);

  /// Multi-queue probe: the legacy probe for queue 0, then a private
  /// adapter block + TX/RX rings per extra queue, MSI-X vector routing
  /// (TX queue q → vector q, RX queue q → vector q+8) with `itr_cycles`
  /// of EITR mitigation per vector, and RSS spreading RX across the
  /// queues. Queue 0's datapath stays byte-identical to `Probe`'s.
  static Result<Driver> ProbeMq(Ops ops, uint64_t mmio_base,
                                uint32_t ring_entries, uint32_t num_queues,
                                uint32_t itr_cycles = 0);

  /// Tear down: disable the transmitter and free simulated allocations
  /// (all queues' when probed multi-queue).
  Status Remove();

  /// The hot path (e1000_xmit_frame): queue one frame whose payload
  /// already sits in simulated memory at `frame_addr`. kBusy when the
  /// ring is full even after reclaim — the caller (socket layer) blocks.
  Status XmitFrame(uint64_t frame_addr, uint32_t len);

  /// Reclaim completed descriptors (e1000_clean_tx_irq). Returns the
  /// number reclaimed.
  Result<uint32_t> CleanTxRing();

  /// Poll the RX ring for one completed frame (e1000_clean_rx_irq, one
  /// iteration). True when `out` was filled with a received frame; false
  /// when no descriptor is done. The payload handoff to the stack is an
  /// unguarded core-kernel copy, as on real Linux; the driver's own
  /// descriptor/counter accesses go through Ops and are guarded on the
  /// carat build.
  Result<bool> ReceiveFrame(std::vector<uint8_t>* out);

  /// Netdev counters, read from adapter memory (guarded on carat builds).
  /// Queue 0's for the legacy probe; one queue's via CountersOn.
  Result<DriverCounters> Counters();

  /// Netdev counters for a specific queue.
  Result<DriverCounters> CountersOn(uint32_t queue);

  /// Device-side counters via MMIO (GPTC / GOTC).
  Result<uint64_t> HwGoodPacketsTransmitted();

  // ------------------------------------------------------ multi-queue --

  /// XmitFrame on a specific TX queue (queue 0 == XmitFrame exactly).
  Status XmitFrameOn(uint32_t queue, uint64_t frame_addr, uint32_t len);

  /// CleanTxRing on a specific queue.
  Result<uint32_t> CleanTxRingOn(uint32_t queue);

  /// ReceiveFrame from a specific RX queue.
  Result<bool> ReceiveFrameFrom(uint32_t queue, std::vector<uint8_t>* out);

  /// Doorbell batching: stage up to `count` descriptors on `queue` and
  /// ring TDT once for the whole batch — the hot fields are loaded once
  /// and the tail/counter stores amortize across the batch, so the
  /// guarded cost per packet drops from 17 accesses to ~6. Frames must
  /// be at least kEthZlen (the batch path has no bounce buffer: one
  /// shared bounce cannot back several in-flight descriptors). Stops
  /// early (reporting how many were queued via `queued`) when the ring
  /// fills even after one reclaim attempt.
  Status XmitBatch(uint32_t queue, const TxFrame* frames, uint32_t count,
                   uint32_t* queued);

  /// One NAPI poll iteration on `queue`: mask the queue's vectors,
  /// reclaim completed TX descriptors, drain up to `budget` received
  /// frames (appended to `frames` when non-null), and — exactly like
  /// napi_complete_done — re-enable the vectors only when the poll ran
  /// under budget. Returns RX frames drained + TX descriptors reclaimed.
  Result<uint32_t> NapiPoll(uint32_t queue, uint32_t budget,
                            std::vector<std::vector<uint8_t>>* frames);

  uint64_t adapter_addr() const { return adapter_; }
  uint32_t ring_entries() const { return ring_entries_; }
  uint32_t num_queues() const { return num_queues_; }
  Ops& ops() { return ops_; }

 private:
  Driver(Ops ops, uint64_t adapter, uint32_t ring_entries)
      : ops_(ops), adapter_(adapter), ring_entries_(ring_entries) {
    queue_adapter_[0] = adapter;
  }

  // Register helpers (er32/ew32 in the real driver).
  Result<uint32_t> Er32(uint64_t mmio_base, uint64_t reg) {
    return ops_.MmioRead32(mmio_base + reg);
  }
  Status Ew32(uint64_t mmio_base, uint64_t reg, uint32_t value) {
    return ops_.MmioWrite32(mmio_base + reg, value);
  }

  // The single-queue entry points delegate to these with queue 0's
  // adapter block and the legacy register offsets, so the guarded access
  // sequence of the legacy datapath is unchanged by the refactor.
  Status XmitOn(uint64_t qadapter, uint64_t tdt_reg, uint64_t frame_addr,
                uint32_t len);
  Result<uint32_t> CleanTxOn(uint64_t qadapter);
  Result<bool> ReceiveOn(uint64_t qadapter, uint64_t rdt_reg,
                         std::vector<uint8_t>* out);

  Ops ops_;
  uint64_t adapter_ = 0;
  uint32_t ring_entries_ = 0;
  uint32_t num_queues_ = 1;
  /// Per-queue adapter block addresses ([0] == adapter_). Host-side
  /// bookkeeping only, like adapter_ itself: all the state behind the
  /// addresses lives in simulated memory and is accessed through Ops.
  uint64_t queue_adapter_[nic::kMaxQueues] = {};
};

// The driver is header-declared, source-defined; both instantiations are
// emitted by driver.cpp ("two builds of the same source").
extern template class Driver<RawMemOps>;
extern template class Driver<GuardedMemOps>;

using BaselineDriver = Driver<RawMemOps>;
using CaratDriver = Driver<GuardedMemOps>;

}  // namespace kop::e1000e
