// The e1000e-style network driver — the protected module of the paper's
// evaluation (§4). One source, templated on the memory-access policy:
// Driver<RawMemOps> is the baseline build, Driver<GuardedMemOps> the
// CARAT KOP build. Every piece of driver state (adapter struct, buffer
// info array, descriptor ring, bounce buffer) lives in *simulated* kernel
// memory and is touched only through Ops — so the guarded build guards
// exactly the accesses the real transformed driver would: its own
// bookkeeping, the descriptor ring, and MMIO registers. Frame payload
// moves by device DMA, unguarded, as on real hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "kop/e1000e/memops.hpp"
#include "kop/nic/e1000_regs.hpp"

namespace kop::e1000e {

/// Ethernet constants.
inline constexpr uint32_t kEthZlen = 60;     // minimum payload before FCS
inline constexpr uint32_t kEthFrameLen = 1514;
inline constexpr uint32_t kBounceBytes = 2048;

/// TX copybreak: frames shorter than this are copied by the driver into a
/// pre-mapped bounce buffer instead of being DMA-mapped individually (the
/// classic small-frame optimization; it also satisfies the hardware's
/// minimum-frame padding in the same pass). This per-byte driver copy is
/// the only CPU-side data touching in the transmit path — and thus where
/// CARAT KOP's per-size effect (Figure 6) concentrates.
inline constexpr uint32_t kTxCopybreak = 128;

/// Layout of the adapter structure in simulated kernel memory. Offsets
/// are explicit because the driver reads/writes fields through Ops (the
/// simulated address space), not through host pointers.
namespace adapter {
inline constexpr uint64_t kMmioBase = 0x00;      // u64
inline constexpr uint64_t kTxRingBase = 0x08;    // u64
inline constexpr uint64_t kTxRingCount = 0x10;   // u32
inline constexpr uint64_t kNextToUse = 0x14;     // u32
inline constexpr uint64_t kNextToClean = 0x18;   // u32
inline constexpr uint64_t kFlags = 0x1c;         // u32
inline constexpr uint64_t kTxPackets = 0x20;     // u64
inline constexpr uint64_t kTxBytes = 0x28;       // u64
inline constexpr uint64_t kTxBusy = 0x30;        // u64
inline constexpr uint64_t kTxCleaned = 0x38;     // u64
inline constexpr uint64_t kBounceBuf = 0x40;     // u64
inline constexpr uint64_t kBufferInfo = 0x48;    // u64
inline constexpr uint64_t kWatchdogStamp = 0x50; // u64
inline constexpr uint64_t kRxRingBase = 0x58;    // u64
inline constexpr uint64_t kRxRingCount = 0x60;   // u32
inline constexpr uint64_t kRxNextToClean = 0x64; // u32
inline constexpr uint64_t kRxBuffers = 0x68;     // u64
inline constexpr uint64_t kRxPackets = 0x70;     // u64
inline constexpr uint64_t kRxBytes = 0x78;       // u64
inline constexpr uint64_t kSize = 0x80;
}  // namespace adapter

/// Size of each driver-armed RX buffer (matches the device's fixed
/// RCTL.BSIZE of 2 KiB).
inline constexpr uint32_t kRxBufferBytes = 2048;

/// Per-descriptor buffer bookkeeping (buffer_info[] in the real driver).
namespace bufinfo {
inline constexpr uint64_t kSkbAddr = 0x00;  // u64
inline constexpr uint64_t kLength = 0x08;   // u32
inline constexpr uint64_t kInUse = 0x0c;    // u32
inline constexpr uint64_t kStride = 0x10;
}  // namespace bufinfo

struct DriverCounters {
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t tx_busy = 0;     // xmit attempts that found the ring full
  uint64_t tx_cleaned = 0;  // descriptors reclaimed
  uint64_t rx_packets = 0;
  uint64_t rx_bytes = 0;
};

template <typename Ops>
class Driver {
 public:
  /// Probe: allocate adapter state + ring + bounce buffer in simulated
  /// kernel memory, reset and bring up the device. `ops` is copied; it is
  /// cheap (two pointers).
  static Result<Driver> Probe(Ops ops, uint64_t mmio_base,
                              uint32_t ring_entries = 256);

  /// Tear down: disable the transmitter and free simulated allocations.
  Status Remove();

  /// The hot path (e1000_xmit_frame): queue one frame whose payload
  /// already sits in simulated memory at `frame_addr`. kBusy when the
  /// ring is full even after reclaim — the caller (socket layer) blocks.
  Status XmitFrame(uint64_t frame_addr, uint32_t len);

  /// Reclaim completed descriptors (e1000_clean_tx_irq). Returns the
  /// number reclaimed.
  Result<uint32_t> CleanTxRing();

  /// Poll the RX ring for one completed frame (e1000_clean_rx_irq, one
  /// iteration). True when `out` was filled with a received frame; false
  /// when no descriptor is done. The payload handoff to the stack is an
  /// unguarded core-kernel copy, as on real Linux; the driver's own
  /// descriptor/counter accesses go through Ops and are guarded on the
  /// carat build.
  Result<bool> ReceiveFrame(std::vector<uint8_t>* out);

  /// Netdev counters, read from adapter memory (guarded on carat builds).
  Result<DriverCounters> Counters();

  /// Device-side counters via MMIO (GPTC / GOTC).
  Result<uint64_t> HwGoodPacketsTransmitted();

  uint64_t adapter_addr() const { return adapter_; }
  uint32_t ring_entries() const { return ring_entries_; }
  Ops& ops() { return ops_; }

 private:
  Driver(Ops ops, uint64_t adapter, uint32_t ring_entries)
      : ops_(ops), adapter_(adapter), ring_entries_(ring_entries) {}

  // Register helpers (er32/ew32 in the real driver).
  Result<uint32_t> Er32(uint64_t mmio_base, uint64_t reg) {
    return ops_.MmioRead32(mmio_base + reg);
  }
  Status Ew32(uint64_t mmio_base, uint64_t reg, uint32_t value) {
    return ops_.MmioWrite32(mmio_base + reg, value);
  }

  Ops ops_;
  uint64_t adapter_ = 0;
  uint32_t ring_entries_ = 0;
};

// The driver is header-declared, source-defined; both instantiations are
// emitted by driver.cpp ("two builds of the same source").
extern template class Driver<RawMemOps>;
extern template class Driver<GuardedMemOps>;

using BaselineDriver = Driver<RawMemOps>;
using CaratDriver = Driver<GuardedMemOps>;

}  // namespace kop::e1000e
