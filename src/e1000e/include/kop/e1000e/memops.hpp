// Compatibility alias: MemOps began life with the e1000e driver and is
// now the shared module runtime (kop::modrt). Existing call sites keep
// the e1000e spelling.
#pragma once

#include "kop/modrt/memops.hpp"  // IWYU pragma: export

namespace kop::e1000e {
using modrt::GuardedMemOps;
using modrt::MemOpsStats;
using modrt::RawMemOps;
}  // namespace kop::e1000e
