#include "kop/e1000e/driver.hpp"

#include <algorithm>

#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/bits.hpp"

namespace kop::e1000e {

using nic::kTxDescBytes;

template <typename Ops>
Result<Driver<Ops>> Driver<Ops>::Probe(Ops ops, uint64_t mmio_base,
                                       uint32_t ring_entries) {
  if (ring_entries < 8 || !IsPowerOfTwo(ring_entries)) {
    return InvalidArgument("ring_entries must be a power of two >= 8");
  }
  kernel::Kernel* kernel = ops.kernel();

  // Allocate adapter state, descriptor ring (16-byte aligned, length a
  // multiple of 128 as the hardware requires), buffer_info array and the
  // short-frame bounce buffer — all in simulated kernel memory.
  KOP_ASSIGN_OR_RETURN(uint64_t adapter,
                       kernel->heap().Kmalloc(adapter::kSize, 64));
  KOP_ASSIGN_OR_RETURN(
      uint64_t ring,
      kernel->heap().Kmalloc(uint64_t{ring_entries} * kTxDescBytes, 128));
  KOP_ASSIGN_OR_RETURN(
      uint64_t bufinfo_base,
      kernel->heap().Kmalloc(uint64_t{ring_entries} * bufinfo::kStride, 64));
  KOP_ASSIGN_OR_RETURN(uint64_t bounce,
                       kernel->heap().Kmalloc(kBounceBytes, 64));
  KOP_ASSIGN_OR_RETURN(
      uint64_t rx_ring,
      kernel->heap().Kmalloc(uint64_t{ring_entries} * nic::kRxDescBytes,
                             128));
  KOP_ASSIGN_OR_RETURN(
      uint64_t rx_buffers,
      kernel->heap().Kmalloc(uint64_t{ring_entries} * kRxBufferBytes, 64));

  Driver driver(ops, adapter, ring_entries);
  Ops& o = driver.ops_;

  // Zero the ring (unguarded init-time memset in the real driver happens
  // via dma_alloc_coherent which returns zeroed memory).
  KOP_RETURN_IF_ERROR(kernel->mem().Memset(
      ring, 0, uint64_t{ring_entries} * kTxDescBytes));
  KOP_RETURN_IF_ERROR(kernel->mem().Memset(
      bufinfo_base, 0, uint64_t{ring_entries} * bufinfo::kStride));
  KOP_RETURN_IF_ERROR(kernel->mem().Memset(
      rx_ring, 0, uint64_t{ring_entries} * nic::kRxDescBytes));

  // Populate adapter fields (guarded stores on the carat build — module
  // init is transformed like everything else).
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kMmioBase, mmio_base, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kTxRingBase, ring, 8));
  KOP_RETURN_IF_ERROR(
      o.Store(adapter + adapter::kTxRingCount, ring_entries, 4));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kNextToUse, 0, 4));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kNextToClean, 0, 4));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kFlags, 0, 4));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kTxPackets, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kTxBytes, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kTxBusy, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kTxCleaned, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kBounceBuf, bounce, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kBufferInfo, bufinfo_base, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kWatchdogStamp, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kRxRingBase, rx_ring, 8));
  KOP_RETURN_IF_ERROR(
      o.Store(adapter + adapter::kRxRingCount, ring_entries, 4));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kRxNextToClean, 0, 4));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kRxBuffers, rx_buffers, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kRxPackets, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(adapter + adapter::kRxBytes, 0, 8));

  // Arm every RX descriptor with its buffer (guarded stores).
  for (uint32_t i = 0; i < ring_entries; ++i) {
    const uint64_t desc = rx_ring + uint64_t{i} * nic::kRxDescBytes;
    KOP_RETURN_IF_ERROR(
        o.Store(desc + 0, rx_buffers + uint64_t{i} * kRxBufferBytes, 8));
    KOP_RETURN_IF_ERROR(o.Store(desc + 12, 0, 1));  // status = 0
  }

  // Device bring-up: reset, link up, program the ring, enable transmit.
  using namespace nic;
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_CTRL, CTRL_RST));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_CTRL, CTRL_SLU));
  KOP_ASSIGN_OR_RETURN(uint32_t status, driver.Er32(mmio_base, REG_STATUS));
  if ((status & STATUS_LU) == 0) {
    return Internal("e1000e: link did not come up after CTRL.SLU");
  }
  KOP_RETURN_IF_ERROR(
      driver.Ew32(mmio_base, REG_TDBAL, static_cast<uint32_t>(ring)));
  KOP_RETURN_IF_ERROR(
      driver.Ew32(mmio_base, REG_TDBAH, static_cast<uint32_t>(ring >> 32)));
  KOP_RETURN_IF_ERROR(
      driver.Ew32(mmio_base, REG_TDLEN, ring_entries * kTxDescBytes));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_TDH, 0));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_TDT, 0));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_TIPG, 0x00602006));
  KOP_RETURN_IF_ERROR(
      driver.Ew32(mmio_base, REG_TCTL, TCTL_EN | TCTL_PSP));

  // Read the factory MAC from the NVM word by word through EERD and
  // program the receive-address registers (e1000_read_mac_addr).
  uint32_t mac_words[3] = {0, 0, 0};
  for (uint32_t word = 0; word < 3; ++word) {
    KOP_RETURN_IF_ERROR(driver.Ew32(
        mmio_base, REG_EERD, EERD_START | (word << EERD_ADDR_SHIFT)));
    KOP_ASSIGN_OR_RETURN(uint32_t eerd, driver.Er32(mmio_base, REG_EERD));
    if ((eerd & EERD_DONE) == 0) {
      return Internal("e1000e: EEPROM read did not complete");
    }
    mac_words[word] = eerd >> EERD_DATA_SHIFT;
  }
  KOP_RETURN_IF_ERROR(driver.Ew32(
      mmio_base, REG_RAL0, mac_words[0] | (mac_words[1] << 16)));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_RAH0, mac_words[2]));

  // Receive side: program the RX ring, leave the classic one-slot gap
  // (RDT = count-1 hands descriptors 0..count-2 to hardware).
  KOP_RETURN_IF_ERROR(
      driver.Ew32(mmio_base, REG_RDBAL, static_cast<uint32_t>(rx_ring)));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_RDBAH,
                                  static_cast<uint32_t>(rx_ring >> 32)));
  KOP_RETURN_IF_ERROR(
      driver.Ew32(mmio_base, REG_RDLEN, ring_entries * nic::kRxDescBytes));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_RDH, 0));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_RDT, ring_entries - 1));
  KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, REG_RCTL, RCTL_EN | RCTL_BAM));

  KOP_RETURN_IF_ERROR(driver.Ew32(
      mmio_base, REG_IMS, ICR_TXDW | ICR_LSC | ICR_RXT0 | ICR_RXO));

  return driver;
}

template <typename Ops>
Status Driver<Ops>::Remove() {
  kernel::Kernel* kernel = ops_.kernel();
  KOP_ASSIGN_OR_RETURN(uint64_t mmio_base,
                       ops_.Load(adapter_ + adapter::kMmioBase, 8));
  KOP_RETURN_IF_ERROR(Ew32(mmio_base, nic::REG_TCTL, 0));
  KOP_ASSIGN_OR_RETURN(uint64_t ring,
                       ops_.Load(adapter_ + adapter::kTxRingBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t bounce,
                       ops_.Load(adapter_ + adapter::kBounceBuf, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t bufinfo_base,
                       ops_.Load(adapter_ + adapter::kBufferInfo, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t rx_ring,
                       ops_.Load(adapter_ + adapter::kRxRingBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t rx_buffers,
                       ops_.Load(adapter_ + adapter::kRxBuffers, 8));
  KOP_RETURN_IF_ERROR(Ew32(mmio_base, nic::REG_RCTL, 0));
  KOP_RETURN_IF_ERROR(kernel->heap().Kfree(ring));
  KOP_RETURN_IF_ERROR(kernel->heap().Kfree(bounce));
  KOP_RETURN_IF_ERROR(kernel->heap().Kfree(bufinfo_base));
  KOP_RETURN_IF_ERROR(kernel->heap().Kfree(rx_ring));
  KOP_RETURN_IF_ERROR(kernel->heap().Kfree(rx_buffers));
  // Extra queues from ProbeMq: each block records its own allocations.
  for (uint32_t q = 1; q < num_queues_; ++q) {
    const uint64_t qa = queue_adapter_[q];
    KOP_ASSIGN_OR_RETURN(uint64_t q_ring,
                         ops_.Load(qa + adapter::kTxRingBase, 8));
    KOP_ASSIGN_OR_RETURN(uint64_t q_bounce,
                         ops_.Load(qa + adapter::kBounceBuf, 8));
    KOP_ASSIGN_OR_RETURN(uint64_t q_bufinfo,
                         ops_.Load(qa + adapter::kBufferInfo, 8));
    KOP_ASSIGN_OR_RETURN(uint64_t q_rx_ring,
                         ops_.Load(qa + adapter::kRxRingBase, 8));
    KOP_ASSIGN_OR_RETURN(uint64_t q_rx_buffers,
                         ops_.Load(qa + adapter::kRxBuffers, 8));
    KOP_RETURN_IF_ERROR(kernel->heap().Kfree(q_ring));
    KOP_RETURN_IF_ERROR(kernel->heap().Kfree(q_bounce));
    KOP_RETURN_IF_ERROR(kernel->heap().Kfree(q_bufinfo));
    KOP_RETURN_IF_ERROR(kernel->heap().Kfree(q_rx_ring));
    KOP_RETURN_IF_ERROR(kernel->heap().Kfree(q_rx_buffers));
    KOP_RETURN_IF_ERROR(kernel->heap().Kfree(qa));
    queue_adapter_[q] = 0;
  }
  num_queues_ = 1;
  KOP_RETURN_IF_ERROR(kernel->heap().Kfree(adapter_));
  adapter_ = 0;
  return OkStatus();
}

template <typename Ops>
Result<uint32_t> Driver<Ops>::CleanTxRing() {
  return CleanTxOn(adapter_);
}

template <typename Ops>
Result<uint32_t> Driver<Ops>::CleanTxOn(uint64_t qadapter) {
  // e1000_clean_tx_irq: walk from next_to_clean, reclaim DD descriptors.
  KOP_ASSIGN_OR_RETURN(uint64_t ring,
                       ops_.Load(qadapter + adapter::kTxRingBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t count64,
                       ops_.Load(qadapter + adapter::kTxRingCount, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t ntc64,
                       ops_.Load(qadapter + adapter::kNextToClean, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t ntu64,
                       ops_.Load(qadapter + adapter::kNextToUse, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t bufinfo_base,
                       ops_.Load(qadapter + adapter::kBufferInfo, 8));
  const uint32_t count = static_cast<uint32_t>(count64);
  uint32_t ntc = static_cast<uint32_t>(ntc64);
  const uint32_t ntu = static_cast<uint32_t>(ntu64);

  uint32_t cleaned = 0;
  while (ntc != ntu) {
    const uint64_t desc = ring + uint64_t{ntc} * kTxDescBytes;
    KOP_ASSIGN_OR_RETURN(uint64_t status_byte, ops_.Load(desc + 12, 1));
    if ((status_byte & nic::TXD_STAT_DD) == 0) break;  // not done yet
    KOP_RETURN_IF_ERROR(ops_.Store(desc + 12, 0, 1));  // clear status
    const uint64_t info = bufinfo_base + uint64_t{ntc} * bufinfo::kStride;
    KOP_RETURN_IF_ERROR(ops_.Store(info + bufinfo::kInUse, 0, 4));
    ntc = (ntc + 1) & (count - 1);
    ++cleaned;
  }

  if (cleaned > 0) {
    KOP_RETURN_IF_ERROR(ops_.Store(qadapter + adapter::kNextToClean, ntc, 4));
    KOP_ASSIGN_OR_RETURN(uint64_t total,
                         ops_.Load(qadapter + adapter::kTxCleaned, 8));
    KOP_RETURN_IF_ERROR(
        ops_.Store(qadapter + adapter::kTxCleaned, total + cleaned, 8));
  }
  return cleaned;
}

template <typename Ops>
Status Driver<Ops>::XmitFrame(uint64_t frame_addr, uint32_t len) {
  return XmitOn(adapter_, nic::REG_TDT, frame_addr, len);
}

// The body of the legacy XmitFrame, verbatim, parameterized only by the
// queue's adapter block and tail register: queue 0 compiles to the exact
// pre-multi-queue guarded access sequence (pinned at 17 per packet).
template <typename Ops>
Status Driver<Ops>::XmitOn(uint64_t qadapter, uint64_t tdt_reg,
                           uint64_t frame_addr, uint32_t len) {
  if (len == 0 || len > kEthFrameLen) {
    return InvalidArgument("frame length out of range");
  }

  // Load the hot adapter fields (e1000_xmit_frame prologue).
  KOP_ASSIGN_OR_RETURN(uint64_t mmio_base,
                       ops_.Load(qadapter + adapter::kMmioBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t ring,
                       ops_.Load(qadapter + adapter::kTxRingBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t count64,
                       ops_.Load(qadapter + adapter::kTxRingCount, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t ntu64,
                       ops_.Load(qadapter + adapter::kNextToUse, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t ntc64,
                       ops_.Load(qadapter + adapter::kNextToClean, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t bufinfo_base,
                       ops_.Load(qadapter + adapter::kBufferInfo, 8));
  const uint32_t count = static_cast<uint32_t>(count64);
  uint32_t ntu = static_cast<uint32_t>(ntu64);
  uint32_t ntc = static_cast<uint32_t>(ntc64);

  // Ring-full check; try to reclaim once before reporting BUSY.
  if (((ntu + 1) & (count - 1)) == ntc) {
    KOP_ASSIGN_OR_RETURN(uint32_t reclaimed, CleanTxOn(qadapter));
    if (reclaimed == 0) {
      KOP_ASSIGN_OR_RETURN(uint64_t busy,
                           ops_.Load(qadapter + adapter::kTxBusy, 8));
      KOP_RETURN_IF_ERROR(
          ops_.Store(qadapter + adapter::kTxBusy, busy + 1, 8));
      return Busy("TX ring full");
    }
    KOP_ASSIGN_OR_RETURN(uint64_t ntc_reload,
                         ops_.Load(qadapter + adapter::kNextToClean, 4));
    ntc = static_cast<uint32_t>(ntc_reload);
  }

  // Small frames take the copybreak/bounce path: the driver copies the
  // payload into a pre-mapped bounce buffer (padding to the hardware
  // minimum as it goes). These are per-byte *driver* stores — the only
  // per-byte CPU work in the transmit path, and the reason Figure 6's
  // slowdown concentrates on small packets (guards on this rarely-trained
  // path enjoy none of the prediction that makes hot-path guards free).
  uint64_t dma_addr = frame_addr;
  uint32_t dma_len = len;
  if (len < kTxCopybreak) {
    KOP_ASSIGN_OR_RETURN(uint64_t bounce,
                         ops_.Load(qadapter + adapter::kBounceBuf, 8));
    for (uint32_t i = 0; i < len; ++i) {
      KOP_ASSIGN_OR_RETURN(uint64_t byte,
                           ops_.LoadSlowPath(frame_addr + i, 1));
      KOP_RETURN_IF_ERROR(ops_.StoreSlowPath(bounce + i, byte, 1));
    }
    for (uint32_t i = len; i < kEthZlen; ++i) {
      KOP_RETURN_IF_ERROR(ops_.StoreSlowPath(bounce + i, 0, 1));
    }
    dma_addr = bounce;
    dma_len = std::max(len, kEthZlen);
  }

  // Fill the legacy descriptor: one 8-byte store for the buffer address,
  // one composed 8-byte store for length/cso/cmd/status/css/special.
  const uint64_t desc = ring + uint64_t{ntu} * kTxDescBytes;
  KOP_RETURN_IF_ERROR(ops_.Store(desc + 0, dma_addr, 8));
  const uint64_t word2 =
      uint64_t{dma_len} |
      (uint64_t{nic::TXD_CMD_EOP | nic::TXD_CMD_IFCS | nic::TXD_CMD_RS}
       << 24);
  KOP_RETURN_IF_ERROR(ops_.Store(desc + 8, word2, 8));

  // Buffer bookkeeping (buffer_info[ntu]).
  const uint64_t info = bufinfo_base + uint64_t{ntu} * bufinfo::kStride;
  KOP_RETURN_IF_ERROR(ops_.Store(info + bufinfo::kSkbAddr, frame_addr, 8));
  KOP_RETURN_IF_ERROR(ops_.Store(info + bufinfo::kLength, dma_len, 4));
  KOP_RETURN_IF_ERROR(ops_.Store(info + bufinfo::kInUse, 1, 4));

  // Advance next_to_use and update netdev stats.
  ntu = (ntu + 1) & (count - 1);
  KOP_RETURN_IF_ERROR(ops_.Store(qadapter + adapter::kNextToUse, ntu, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t packets,
                       ops_.Load(qadapter + adapter::kTxPackets, 8));
  KOP_RETURN_IF_ERROR(
      ops_.Store(qadapter + adapter::kTxPackets, packets + 1, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t bytes,
                       ops_.Load(qadapter + adapter::kTxBytes, 8));
  KOP_RETURN_IF_ERROR(
      ops_.Store(qadapter + adapter::kTxBytes, bytes + dma_len, 8));

  // Kick the hardware: posted MMIO write to the tail register.
  KOP_TRACE(kXmitFrame, dma_len, ntu);
  KOP_RETURN_IF_ERROR(Ew32(mmio_base, tdt_reg, ntu));
  return OkStatus();
}

template <typename Ops>
Result<bool> Driver<Ops>::ReceiveFrame(std::vector<uint8_t>* out) {
  return ReceiveOn(adapter_, nic::REG_RDT, out);
}

template <typename Ops>
Result<bool> Driver<Ops>::ReceiveOn(uint64_t qadapter, uint64_t rdt_reg,
                                    std::vector<uint8_t>* out) {
  KOP_ASSIGN_OR_RETURN(uint64_t rx_ring,
                       ops_.Load(qadapter + adapter::kRxRingBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t count64,
                       ops_.Load(qadapter + adapter::kRxRingCount, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t ntc64,
                       ops_.Load(qadapter + adapter::kRxNextToClean, 4));
  const uint32_t count = static_cast<uint32_t>(count64);
  const uint32_t ntc = static_cast<uint32_t>(ntc64);

  const uint64_t desc = rx_ring + uint64_t{ntc} * nic::kRxDescBytes;
  KOP_ASSIGN_OR_RETURN(uint64_t status_byte, ops_.Load(desc + 12, 1));
  if ((status_byte & nic::RXD_STAT_DD) == 0) return false;  // nothing yet

  KOP_ASSIGN_OR_RETURN(uint64_t length64, ops_.Load(desc + 8, 2));
  KOP_ASSIGN_OR_RETURN(uint64_t buffer, ops_.Load(desc + 0, 8));
  const uint32_t length = static_cast<uint32_t>(length64);

  // Hand the payload to the stack: an unguarded core-kernel copy, but
  // the cycles are charged like any other per-byte copy.
  out->resize(length);
  kernel::Kernel* kernel = ops_.kernel();
  KOP_RETURN_IF_ERROR(kernel->mem().Read(buffer, out->data(), length));
  kernel->clock().Advance(kernel->machine().copy_cycles_per_byte * length);

  // Re-arm the descriptor and return the slot to hardware (RDT = slot
  // just freed, preserving the one-slot gap).
  KOP_RETURN_IF_ERROR(ops_.Store(desc + 12, 0, 1));
  KOP_RETURN_IF_ERROR(
      ops_.Store(qadapter + adapter::kRxNextToClean,
                 (ntc + 1) & (count - 1), 4));
  KOP_ASSIGN_OR_RETURN(uint64_t mmio_base,
                       ops_.Load(qadapter + adapter::kMmioBase, 8));
  KOP_RETURN_IF_ERROR(Ew32(mmio_base, rdt_reg, ntc));

  // Netdev RX counters.
  KOP_ASSIGN_OR_RETURN(uint64_t packets,
                       ops_.Load(qadapter + adapter::kRxPackets, 8));
  KOP_RETURN_IF_ERROR(
      ops_.Store(qadapter + adapter::kRxPackets, packets + 1, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t bytes,
                       ops_.Load(qadapter + adapter::kRxBytes, 8));
  KOP_RETURN_IF_ERROR(
      ops_.Store(qadapter + adapter::kRxBytes, bytes + length, 8));
  return true;
}

template <typename Ops>
Result<DriverCounters> Driver<Ops>::Counters() {
  return CountersOn(0);
}

template <typename Ops>
Result<DriverCounters> Driver<Ops>::CountersOn(uint32_t queue) {
  if (queue >= num_queues_) return InvalidArgument("no such queue");
  const uint64_t qadapter = queue_adapter_[queue];
  DriverCounters out;
  KOP_ASSIGN_OR_RETURN(out.tx_packets,
                       ops_.Load(qadapter + adapter::kTxPackets, 8));
  KOP_ASSIGN_OR_RETURN(out.tx_bytes,
                       ops_.Load(qadapter + adapter::kTxBytes, 8));
  KOP_ASSIGN_OR_RETURN(out.tx_busy,
                       ops_.Load(qadapter + adapter::kTxBusy, 8));
  KOP_ASSIGN_OR_RETURN(out.tx_cleaned,
                       ops_.Load(qadapter + adapter::kTxCleaned, 8));
  KOP_ASSIGN_OR_RETURN(out.rx_packets,
                       ops_.Load(qadapter + adapter::kRxPackets, 8));
  KOP_ASSIGN_OR_RETURN(out.rx_bytes,
                       ops_.Load(qadapter + adapter::kRxBytes, 8));
  return out;
}

template <typename Ops>
Result<uint64_t> Driver<Ops>::HwGoodPacketsTransmitted() {
  KOP_ASSIGN_OR_RETURN(uint64_t mmio_base,
                       ops_.Load(adapter_ + adapter::kMmioBase, 8));
  KOP_ASSIGN_OR_RETURN(uint32_t gptc, Er32(mmio_base, nic::REG_GPTC));
  return uint64_t{gptc};
}

// --------------------------------------------------------- multi-queue --

template <typename Ops>
Result<Driver<Ops>> Driver<Ops>::ProbeMq(Ops ops, uint64_t mmio_base,
                                         uint32_t ring_entries,
                                         uint32_t num_queues,
                                         uint32_t itr_cycles) {
  if (num_queues == 0 || num_queues > nic::kMaxQueues) {
    return InvalidArgument("num_queues must be 1..8");
  }
  KOP_ASSIGN_OR_RETURN(Driver driver, Probe(ops, mmio_base, ring_entries));
  kernel::Kernel* kernel = driver.ops_.kernel();
  Ops& o = driver.ops_;
  using namespace nic;

  for (uint32_t q = 1; q < num_queues; ++q) {
    KOP_ASSIGN_OR_RETURN(uint64_t qadapter,
                         kernel->heap().Kmalloc(adapter::kSize, 64));
    KOP_ASSIGN_OR_RETURN(
        uint64_t ring,
        kernel->heap().Kmalloc(uint64_t{ring_entries} * kTxDescBytes, 128));
    KOP_ASSIGN_OR_RETURN(
        uint64_t bufinfo_base,
        kernel->heap().Kmalloc(uint64_t{ring_entries} * bufinfo::kStride,
                               64));
    KOP_ASSIGN_OR_RETURN(uint64_t bounce,
                         kernel->heap().Kmalloc(kBounceBytes, 64));
    KOP_ASSIGN_OR_RETURN(
        uint64_t rx_ring,
        kernel->heap().Kmalloc(uint64_t{ring_entries} * nic::kRxDescBytes,
                               128));
    KOP_ASSIGN_OR_RETURN(
        uint64_t rx_buffers,
        kernel->heap().Kmalloc(uint64_t{ring_entries} * kRxBufferBytes, 64));

    KOP_RETURN_IF_ERROR(kernel->mem().Memset(
        ring, 0, uint64_t{ring_entries} * kTxDescBytes));
    KOP_RETURN_IF_ERROR(kernel->mem().Memset(
        bufinfo_base, 0, uint64_t{ring_entries} * bufinfo::kStride));
    KOP_RETURN_IF_ERROR(kernel->mem().Memset(
        rx_ring, 0, uint64_t{ring_entries} * nic::kRxDescBytes));

    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kMmioBase, mmio_base, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kTxRingBase, ring, 8));
    KOP_RETURN_IF_ERROR(
        o.Store(qadapter + adapter::kTxRingCount, ring_entries, 4));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kNextToUse, 0, 4));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kNextToClean, 0, 4));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kFlags, q, 4));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kTxPackets, 0, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kTxBytes, 0, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kTxBusy, 0, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kTxCleaned, 0, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kBounceBuf, bounce, 8));
    KOP_RETURN_IF_ERROR(
        o.Store(qadapter + adapter::kBufferInfo, bufinfo_base, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kWatchdogStamp, 0, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kRxRingBase, rx_ring, 8));
    KOP_RETURN_IF_ERROR(
        o.Store(qadapter + adapter::kRxRingCount, ring_entries, 4));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kRxNextToClean, 0, 4));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kRxBuffers, rx_buffers, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kRxPackets, 0, 8));
    KOP_RETURN_IF_ERROR(o.Store(qadapter + adapter::kRxBytes, 0, 8));

    for (uint32_t i = 0; i < ring_entries; ++i) {
      const uint64_t desc = rx_ring + uint64_t{i} * nic::kRxDescBytes;
      KOP_RETURN_IF_ERROR(
          o.Store(desc + 0, rx_buffers + uint64_t{i} * kRxBufferBytes, 8));
      KOP_RETURN_IF_ERROR(o.Store(desc + 12, 0, 1));  // status = 0
    }

    // Program the queue's TX/RX register blocks at the 0x100 stride.
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_TDBAL, q),
                                    static_cast<uint32_t>(ring)));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_TDBAH, q),
                                    static_cast<uint32_t>(ring >> 32)));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_TDLEN, q),
                                    ring_entries * kTxDescBytes));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_TDH, q), 0));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_TDT, q), 0));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_RDBAL, q),
                                    static_cast<uint32_t>(rx_ring)));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_RDBAH, q),
                                    static_cast<uint32_t>(rx_ring >> 32)));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_RDLEN, q),
                                    ring_entries * nic::kRxDescBytes));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, QReg(REG_RDH, q), 0));
    KOP_RETURN_IF_ERROR(
        driver.Ew32(mmio_base, QReg(REG_RDT, q), ring_entries - 1));

    driver.queue_adapter_[q] = qadapter;
  }

  // MSI-X routing: TX queue q fires vector q, RX queue q fires vector
  // q+8. EITR programs the per-vector mitigation window; EIMS unmasks.
  for (uint32_t q = 0; q < num_queues; ++q) {
    const uint32_t tx_vec = IVAR_VALID | q;
    const uint32_t rx_vec = IVAR_VALID | (q + 8);
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, IVAR(q),
                                    (tx_vec << IVAR_TX_SHIFT) | rx_vec));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, EITR(q), itr_cycles));
    KOP_RETURN_IF_ERROR(driver.Ew32(mmio_base, EITR(q + 8), itr_cycles));
    KOP_RETURN_IF_ERROR(driver.Ew32(
        mmio_base, REG_EIMS, (1u << q) | (1u << (q + 8))));
  }
  if (num_queues > 1) {
    KOP_RETURN_IF_ERROR(driver.Ew32(
        mmio_base, REG_MRQC,
        MRQC_ENABLE | (num_queues << MRQC_QUEUES_SHIFT)));
  }
  driver.num_queues_ = num_queues;
  return driver;
}

template <typename Ops>
Status Driver<Ops>::XmitFrameOn(uint32_t queue, uint64_t frame_addr,
                                uint32_t len) {
  if (queue >= num_queues_) return InvalidArgument("no such queue");
  return XmitOn(queue_adapter_[queue], nic::QReg(nic::REG_TDT, queue),
                frame_addr, len);
}

template <typename Ops>
Result<uint32_t> Driver<Ops>::CleanTxRingOn(uint32_t queue) {
  if (queue >= num_queues_) return InvalidArgument("no such queue");
  return CleanTxOn(queue_adapter_[queue]);
}

template <typename Ops>
Result<bool> Driver<Ops>::ReceiveFrameFrom(uint32_t queue,
                                           std::vector<uint8_t>* out) {
  if (queue >= num_queues_) return InvalidArgument("no such queue");
  return ReceiveOn(queue_adapter_[queue], nic::QReg(nic::REG_RDT, queue),
                   out);
}

template <typename Ops>
Status Driver<Ops>::XmitBatch(uint32_t queue, const TxFrame* frames,
                              uint32_t count, uint32_t* queued) {
  if (queued != nullptr) *queued = 0;
  if (queue >= num_queues_) return InvalidArgument("no such queue");
  if (count == 0) return OkStatus();
  for (uint32_t i = 0; i < count; ++i) {
    // No bounce buffer on the batch path: one shared bounce cannot back
    // several in-flight descriptors, so frames arrive pre-padded.
    if (frames[i].len < kEthZlen || frames[i].len > kEthFrameLen) {
      return InvalidArgument("batch frames must be kEthZlen..kEthFrameLen");
    }
  }
  KOP_SPAN(kXmitBatch, count);
  const uint64_t qadapter = queue_adapter_[queue];
  const uint64_t tdt_reg = nic::QReg(nic::REG_TDT, queue);

  // Hot fields load once for the whole batch — this is the point of
  // doorbell batching: the 17-access per-packet sequence amortizes to
  // the 5 stores that stage each descriptor.
  KOP_ASSIGN_OR_RETURN(uint64_t mmio_base,
                       ops_.Load(qadapter + adapter::kMmioBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t ring,
                       ops_.Load(qadapter + adapter::kTxRingBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t count64,
                       ops_.Load(qadapter + adapter::kTxRingCount, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t ntu64,
                       ops_.Load(qadapter + adapter::kNextToUse, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t ntc64,
                       ops_.Load(qadapter + adapter::kNextToClean, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t bufinfo_base,
                       ops_.Load(qadapter + adapter::kBufferInfo, 8));
  const uint32_t ring_count = static_cast<uint32_t>(count64);
  uint32_t ntu = static_cast<uint32_t>(ntu64);
  uint32_t ntc = static_cast<uint32_t>(ntc64);

  uint32_t staged = 0;
  uint64_t staged_bytes = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (((ntu + 1) & (ring_count - 1)) == ntc) {
      // Ring full mid-batch: flush what we have with one doorbell, try
      // one reclaim, and stop if the ring is still full.
      KOP_ASSIGN_OR_RETURN(uint32_t reclaimed, CleanTxOn(qadapter));
      if (reclaimed == 0) break;
      KOP_ASSIGN_OR_RETURN(uint64_t ntc_reload,
                           ops_.Load(qadapter + adapter::kNextToClean, 4));
      ntc = static_cast<uint32_t>(ntc_reload);
      if (((ntu + 1) & (ring_count - 1)) == ntc) break;
    }
    const uint64_t desc = ring + uint64_t{ntu} * kTxDescBytes;
    KOP_RETURN_IF_ERROR(ops_.Store(desc + 0, frames[i].addr, 8));
    const uint64_t word2 =
        uint64_t{frames[i].len} |
        (uint64_t{nic::TXD_CMD_EOP | nic::TXD_CMD_IFCS | nic::TXD_CMD_RS}
         << 24);
    KOP_RETURN_IF_ERROR(ops_.Store(desc + 8, word2, 8));
    const uint64_t info = bufinfo_base + uint64_t{ntu} * bufinfo::kStride;
    KOP_RETURN_IF_ERROR(ops_.Store(info + bufinfo::kSkbAddr,
                                   frames[i].addr, 8));
    KOP_RETURN_IF_ERROR(ops_.Store(info + bufinfo::kLength,
                                   frames[i].len, 4));
    KOP_RETURN_IF_ERROR(ops_.Store(info + bufinfo::kInUse, 1, 4));
    ntu = (ntu + 1) & (ring_count - 1);
    ++staged;
    staged_bytes += frames[i].len;
  }

  if (staged > 0) {
    KOP_RETURN_IF_ERROR(ops_.Store(qadapter + adapter::kNextToUse, ntu, 4));
    KOP_ASSIGN_OR_RETURN(uint64_t packets,
                         ops_.Load(qadapter + adapter::kTxPackets, 8));
    KOP_RETURN_IF_ERROR(
        ops_.Store(qadapter + adapter::kTxPackets, packets + staged, 8));
    KOP_ASSIGN_OR_RETURN(uint64_t bytes,
                         ops_.Load(qadapter + adapter::kTxBytes, 8));
    KOP_RETURN_IF_ERROR(ops_.Store(qadapter + adapter::kTxBytes,
                                   bytes + staged_bytes, 8));
    // One posted doorbell for the whole batch.
    KOP_TRACE(kXmitFrame, staged_bytes, ntu);
    KOP_RETURN_IF_ERROR(Ew32(mmio_base, tdt_reg, ntu));
  }
  if (queued != nullptr) *queued = staged;
  return OkStatus();
}

template <typename Ops>
Result<uint32_t> Driver<Ops>::NapiPoll(uint32_t queue, uint32_t budget,
                                       std::vector<std::vector<uint8_t>>* frames) {
  if (queue >= num_queues_) return InvalidArgument("no such queue");
  KOP_SPAN(kNapiPoll, queue);
  const uint64_t qadapter = queue_adapter_[queue];
  const uint64_t rdt_reg = nic::QReg(nic::REG_RDT, queue);
  const uint32_t vector_mask = (1u << queue) | (1u << (queue + 8));

  KOP_ASSIGN_OR_RETURN(uint64_t mmio_base,
                       ops_.Load(qadapter + adapter::kMmioBase, 8));
  // The irq handler's half of NAPI: mask this queue's vectors while the
  // poll runs.
  KOP_RETURN_IF_ERROR(Ew32(mmio_base, nic::REG_EIMC, vector_mask));

  // TX side: batch-reclaim completed descriptors.
  KOP_ASSIGN_OR_RETURN(uint32_t cleaned, CleanTxOn(qadapter));

  // RX side: drain up to `budget` completed frames with the hot fields
  // held in registers and a single RDT/counter update at the end.
  KOP_ASSIGN_OR_RETURN(uint64_t rx_ring,
                       ops_.Load(qadapter + adapter::kRxRingBase, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t count64,
                       ops_.Load(qadapter + adapter::kRxRingCount, 4));
  KOP_ASSIGN_OR_RETURN(uint64_t ntc64,
                       ops_.Load(qadapter + adapter::kRxNextToClean, 4));
  const uint32_t ring_count = static_cast<uint32_t>(count64);
  uint32_t ntc = static_cast<uint32_t>(ntc64);

  kernel::Kernel* kernel = ops_.kernel();
  uint32_t drained = 0;
  uint32_t last_slot = 0;
  uint64_t drained_bytes = 0;
  while (drained < budget) {
    const uint64_t desc = rx_ring + uint64_t{ntc} * nic::kRxDescBytes;
    KOP_ASSIGN_OR_RETURN(uint64_t status_byte, ops_.Load(desc + 12, 1));
    if ((status_byte & nic::RXD_STAT_DD) == 0) break;
    KOP_ASSIGN_OR_RETURN(uint64_t length64, ops_.Load(desc + 8, 2));
    KOP_ASSIGN_OR_RETURN(uint64_t buffer, ops_.Load(desc + 0, 8));
    const uint32_t length = static_cast<uint32_t>(length64);
    if (frames != nullptr) {
      std::vector<uint8_t> frame(length);
      KOP_RETURN_IF_ERROR(kernel->mem().Read(buffer, frame.data(), length));
      frames->push_back(std::move(frame));
    }
    kernel->clock().Advance(kernel->machine().copy_cycles_per_byte * length);
    KOP_RETURN_IF_ERROR(ops_.Store(desc + 12, 0, 1));  // re-arm
    last_slot = ntc;
    ntc = (ntc + 1) & (ring_count - 1);
    ++drained;
    drained_bytes += length;
  }
  if (drained > 0) {
    KOP_RETURN_IF_ERROR(
        ops_.Store(qadapter + adapter::kRxNextToClean, ntc, 4));
    KOP_RETURN_IF_ERROR(Ew32(mmio_base, rdt_reg, last_slot));
    KOP_ASSIGN_OR_RETURN(uint64_t packets,
                         ops_.Load(qadapter + adapter::kRxPackets, 8));
    KOP_RETURN_IF_ERROR(
        ops_.Store(qadapter + adapter::kRxPackets, packets + drained, 8));
    KOP_ASSIGN_OR_RETURN(uint64_t bytes,
                         ops_.Load(qadapter + adapter::kRxBytes, 8));
    KOP_RETURN_IF_ERROR(ops_.Store(qadapter + adapter::kRxBytes,
                                   bytes + drained_bytes, 8));
  }

  const uint32_t work = drained + cleaned;
  if (drained < budget) {
    // napi_complete_done: under budget means the queue is quiet — ack
    // the latched causes and re-enable the vectors.
    KOP_RETURN_IF_ERROR(Ew32(mmio_base, nic::REG_EICR, vector_mask));
    KOP_RETURN_IF_ERROR(Ew32(mmio_base, nic::REG_EIMS, vector_mask));
  }
  return work;
}

template class Driver<RawMemOps>;
template class Driver<GuardedMemOps>;

}  // namespace kop::e1000e
