// Virtual cycle clock. All simulated work (syscalls, driver memory ops,
// MMIO, guard checks, blocking waits) charges cycles here; throughput and
// latency are computed from clock deltas, never from wall time, so every
// experiment is deterministic and machine-independent.
//
// The clock is per-CPU: each simulated CPU accumulates cycles in its own
// cache-line-padded slot, indexed by smp::CurrentCpu(). Single-threaded
// code only ever touches CPU 0, so NowCycles()/Advance() behave exactly
// as the scalar clock did. SMP experiments read two aggregate views:
// MaxCycles() — wall-clock-equivalent elapsed time when CPUs run in
// parallel — and TotalCycles() — the serialized baseline the same work
// would cost on one CPU.
#pragma once

#include <atomic>
#include <cstdint>

#include "kop/smp/cpu.hpp"
#include "kop/smp/percpu.hpp"

namespace kop::sim {

class VirtualClock {
 public:
  VirtualClock() = default;

  /// Charge `cycles` of simulated work to the calling CPU. Fractional
  /// cycles are legal: they represent amortized cost of superscalar
  /// execution (e.g. a predicted guard branch costing 0.09 cycles).
  void Advance(double cycles) {
    std::atomic<double>& mine = cycles_.Mine();
    mine.store(mine.load(std::memory_order_relaxed) + cycles,
               std::memory_order_relaxed);
  }

  /// The calling CPU's simulated time in cycles (fractional).
  double NowCycles() const {
    return cycles_.Mine().load(std::memory_order_relaxed);
  }

  /// The calling CPU's accumulator cell. Single-writer: only the owning
  /// CPU stores through it. Pinned fast paths cache this pointer once per
  /// call so each inline guard charges cycles without a per-CPU lookup.
  std::atomic<double>& MyCell() { return cycles_.Mine(); }

  /// One specific CPU's simulated time.
  double CpuCycles(uint32_t cpu) const {
    return cycles_.Get(cpu).load(std::memory_order_relaxed);
  }

  /// Elapsed time of an SMP run: CPUs advance in parallel, so the run is
  /// as long as its busiest CPU.
  double MaxCycles() const {
    double max = 0.0;
    cycles_.ForEach([&max](uint32_t, const std::atomic<double>& slot) {
      const double value = slot.load(std::memory_order_relaxed);
      if (value > max) max = value;
    });
    return max;
  }

  /// Serialized baseline: the same work run back-to-back on one CPU.
  double TotalCycles() const {
    double total = 0.0;
    cycles_.ForEach([&total](uint32_t, const std::atomic<double>& slot) {
      total += slot.load(std::memory_order_relaxed);
    });
    return total;
  }

  /// Current simulated time read the way the paper reads rdtsc: truncated
  /// to an integer cycle count.
  uint64_t ReadTsc() const { return static_cast<uint64_t>(NowCycles()); }

  /// Convert a cycle count to seconds at the given core frequency.
  static double CyclesToSeconds(double cycles, double freq_hz) {
    return cycles / freq_hz;
  }

  void Reset() {
    cycles_.ForEach([](uint32_t, std::atomic<double>& slot) {
      slot.store(0.0, std::memory_order_relaxed);
    });
  }

 private:
  smp::PerCpu<std::atomic<double>> cycles_;
};

}  // namespace kop::sim
