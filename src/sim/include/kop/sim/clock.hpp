// Virtual cycle clock. All simulated work (syscalls, driver memory ops,
// MMIO, guard checks, blocking waits) charges cycles here; throughput and
// latency are computed from clock deltas, never from wall time, so every
// experiment is deterministic and machine-independent.
#pragma once

#include <cstdint>

namespace kop::sim {

class VirtualClock {
 public:
  VirtualClock() = default;

  /// Charge `cycles` of simulated work. Fractional cycles are legal: they
  /// represent amortized cost of superscalar execution (e.g. a predicted
  /// guard branch costing 0.09 cycles on average).
  void Advance(double cycles) { cycles_ += cycles; }

  /// Current simulated time in cycles (fractional).
  double NowCycles() const { return cycles_; }

  /// Current simulated time read the way the paper reads rdtsc: truncated
  /// to an integer cycle count.
  uint64_t ReadTsc() const { return static_cast<uint64_t>(cycles_); }

  /// Convert a cycle count to seconds at the given core frequency.
  static double CyclesToSeconds(double cycles, double freq_hz) {
    return cycles / freq_hz;
  }

  void Reset() { cycles_ = 0.0; }

 private:
  double cycles_ = 0.0;
};

}  // namespace kop::sim
