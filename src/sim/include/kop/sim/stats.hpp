// Statistics used by the benchmark harness: summaries (min/mean/median/
// percentiles), empirical CDFs (Figures 3-5), and fixed-width histograms
// (Figure 7). All operate on double samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kop::sim {

/// Streaming mean/variance (Welford) plus min/max.
class Accumulator {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1); zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample set.
struct Summary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  std::string ToString() const;
};

/// Linear-interpolated quantile of an unsorted sample vector, q in [0,1].
double Quantile(std::vector<double> samples, double q);

/// Quantile of an already ascending-sorted vector (no copy).
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Build a Summary from samples.
Summary Summarize(std::vector<double> samples);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double percentile = 0.0;  // in [0, 100]
};

/// Empirical CDF of the samples, downsampled to at most `max_points`
/// evenly spaced percentile steps (enough to plot the paper's curves).
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples,
                                   size_t max_points = 200);

/// Fixed-width histogram over [lo, hi); samples outside are counted
/// separately (the paper excludes >10M-cycle outliers from Figure 7's
/// plot but keeps them in the medians).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t bins() const { return counts_.size(); }
  uint64_t bin_count(size_t i) const { return counts_[i]; }
  double bin_lo(size_t i) const { return lo_ + i * width_; }
  double bin_hi(size_t i) const { return lo_ + (i + 1) * width_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }

  /// Render rows "bin_lo,bin_hi,count" for the bench harness.
  std::string ToCsv() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace kop::sim
