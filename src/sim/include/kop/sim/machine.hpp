// Machine cost models standing in for the paper's two testbeds:
//   R415: dual 2.2 GHz AMD Opteron 4122 (old microarchitecture — weak
//         branch prediction, small caches: guards are relatively costly).
//   R350: 2.8 GHz Intel Xeon E-2378G (modern — guards almost free because
//         the guard branch is perfectly predicted and the region table is
//         cache resident).
//
// The model charges cycles for each simulated operation. It is calibrated
// so the *shapes* of the paper's Figures 3-7 reproduce: who wins, by what
// factor, and where the effect concentrates. See DESIGN.md §5 and
// EXPERIMENTS.md for the calibration targets and rationale.
#pragma once

#include <cstdint>
#include <string>

namespace kop::sim {

struct MachineModel {
  std::string name;
  double freq_hz = 2.8e9;

  // ---- sendmsg() interior costs (what Figure 7 measures) ----
  /// Fixed syscall entry/exit + socket layer dispatch.
  double syscall_cycles = 400.0;
  /// Copying the payload from user space into the skb, per byte.
  double copy_cycles_per_byte = 2.0;
  /// Plain driver-side memory read/write (descriptor ring, adapter state).
  double mem_read_cycles = 0.5;
  double mem_write_cycles = 0.7;
  /// MMIO register access (uncached, posted write / serialized read).
  double mmio_read_cycles = 120.0;
  double mmio_write_cycles = 60.0;
  /// Hardware exception/trap entry+exit round trip (ring transition,
  /// frame push/pop) — what FPVM-style trap delivery pays before any
  /// handler code runs.
  double trap_entry_cycles = 600.0;

  // ---- guard costs (carat builds only) ----
  /// Amortized dispatch cost of one carat_guard call (call + flag checks),
  /// assuming warm caches and a predicted branch.
  double guard_base_cycles = 0.09;
  /// Per-region cost of the linear policy-table scan inside one guard.
  double guard_per_region_cycles = 0.021;

  // ---- costs outside sendmsg() (what Figures 3-6 additionally see) ----
  /// Amortized inter-call overhead per packet: userspace loop, kernel
  /// housekeeping, TX-complete interrupt handling, and the amortized share
  /// of blocking waits when the socket send budget is exhausted. This is
  /// why a ~700-cycle sendmsg sustains only ~110k packets/s in the paper.
  double inter_call_cycles = 21000.0;

  // ---- noise model ----
  /// Per-trial multiplicative jitter (std-dev as a fraction): frequency
  /// scaling, background daemons, cache state. Gives the CDF its width.
  double trial_jitter_sigma = 0.07;
  /// Per-packet lognormal sigma applied to the sendmsg interior.
  double packet_noise_sigma = 0.08;
  /// Probability that a packet hits the slow secondary path (cache-miss
  /// refill on skb/descriptor structures) and its extra cost. Produces the
  /// right-hand shoulder of the Figure 7 histogram.
  double slowpath_prob = 0.22;
  double slowpath_extra_cycles = 280.0;
  /// Probability and cost of a ring-full deschedule outlier (>10M cycles
  /// in the paper; excluded from the Figure 7 plot, included in medians).
  double outlier_prob = 2e-5;
  double outlier_cycles = 1.2e7;

  // ---- short-frame path (Figure 6's small-packet concentration) ----
  /// Frames shorter than this take the driver's pad/bounce path, in which
  /// padding bytes are written (and guarded) one store at a time. Mirrors
  /// e1000e's explicit short-frame padding.
  uint32_t short_frame_cutoff = 128;
  /// Guarded-store cost per padded byte on the carat build (a cold guard
  /// per byte: this path is rare, so never predicted/cached well).
  double pad_guard_cycles_per_byte = 8.0;

  /// The paper's outdated AMD box.
  static MachineModel R415();
  /// The paper's current Intel box.
  static MachineModel R350();

  /// Effective cost of one guard invocation against an n-region policy.
  double GuardCycles(uint32_t n_regions) const {
    return guard_base_cycles + guard_per_region_cycles * n_regions;
  }
};

}  // namespace kop::sim
