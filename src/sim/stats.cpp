#include "kop/sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace kop::sim {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double QuantileSorted(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return QuantileSorted(samples, q);
}

Summary Summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  Accumulator acc;
  for (double x : samples) acc.Add(x);
  s.count = samples.size();
  s.min = acc.min();
  s.max = acc.max();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.median = QuantileSorted(samples, 0.50);
  s.p05 = QuantileSorted(samples, 0.05);
  s.p25 = QuantileSorted(samples, 0.25);
  s.p75 = QuantileSorted(samples, 0.75);
  s.p95 = QuantileSorted(samples, 0.95);
  s.p99 = QuantileSorted(samples, 0.99);
  return s;
}

std::string Summary::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.2f p05=%.2f median=%.2f mean=%.2f p95=%.2f "
                "max=%.2f stddev=%.2f",
                count, min, p05, median, mean, p95, max, stddev);
  return buf;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples,
                                   size_t max_points) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const size_t points = std::min(max_points, samples.size());
  out.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const double q =
        points == 1 ? 1.0
                    : static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({QuantileSorted(samples, q), q * 100.0});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  size_t bin = static_cast<size_t>((x - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // guard float edge cases
  ++counts_[bin];
}

std::string Histogram::ToCsv() const {
  std::string out;
  char line[96];
  for (size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(line, sizeof(line), "%.1f,%.1f,%llu\n", bin_lo(i), bin_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace kop::sim
