#include "kop/sim/machine.hpp"

namespace kop::sim {

// Calibration targets (paper §4.2):
//  - R415 Fig 3: baseline median ~118k pps (range 105k-130k), carat median
//    lower by ~1000 pps (<0.8%), 2 regions, 128 B packets.
//  - R350 Fig 4: baseline median ~112k pps (range 90k-130k), carat delta
//    <0.1% (almost unmeasurable).
//  - R350 Fig 5: same guard count for n=2/16/64; worst median delta <1%.
//  - R350 Fig 6: slowdown <=~1.025, concentrated below 128 B, ~1.00 above.
//  - R350 Fig 7: sendmsg medians 686 (base) vs 694 (carat) cycles,
//    histogram mass between ~500 and ~1200 cycles.
//
// The e1000e xmit hot path in this repository executes 17 guarded
// accesses per 128 B packet, plus ~2.3 amortized from the periodic
// descriptor-ring reclaim — ~19.3 total at steady state (measured by
// tests/e1000e_test.cpp and the fig benches), so:
//   R350 guard overhead n=2: ~19.3 * (0.35 + 2*0.03) ~= 8 cycles
//     -> latency delta ~8 cycles (Fig 7: 694 vs 686), throughput delta
//        ~0.03% (Fig 4, "almost unmeasurable")
//   R350 n=16: ~19.3 * 0.83 ~= 16 cycles; n=64: ~19.3 * 2.27 ~= 44
//     cycles -> ~0.18%, under the paper's <1% worst case (Fig 5)
//   R415 n=2: ~19.3 * (6.8 + 2*0.2) ~= 139 cycles -> ~0.75% (Fig 3)
//   64 B frames take the copybreak path: ~128 extra cold-path accesses
//     at pad_guard_cycles_per_byte -> ~+2.3% on R350 (Fig 6's peak)

MachineModel MachineModel::R415() {
  MachineModel m;
  m.name = "R415 (2.2 GHz AMD Opteron 4122)";
  m.freq_hz = 2.2e9;
  m.syscall_cycles = 520.0;
  m.copy_cycles_per_byte = 2.4;
  m.mem_read_cycles = 0.9;
  m.mem_write_cycles = 1.1;
  m.mmio_read_cycles = 160.0;
  m.mmio_write_cycles = 90.0;
  m.trap_entry_cycles = 950.0;
  m.guard_base_cycles = 6.8;        // weak branch prediction, small L1
  m.guard_per_region_cycles = 0.2;
  m.inter_call_cycles = 17700.0;    // -> baseline ~118k pps
  m.trial_jitter_sigma = 0.04;      // Fig 3 range 105k-130k
  m.packet_noise_sigma = 0.10;
  m.slowpath_prob = 0.25;
  m.slowpath_extra_cycles = 380.0;
  m.pad_guard_cycles_per_byte = 9.0;
  return m;
}

MachineModel MachineModel::R350() {
  MachineModel m;
  m.name = "R350 (2.8 GHz Intel Xeon E-2378G)";
  m.freq_hz = 2.8e9;
  m.syscall_cycles = 340.0;
  m.copy_cycles_per_byte = 2.0;
  m.mem_read_cycles = 0.5;
  m.mem_write_cycles = 0.7;
  m.mmio_read_cycles = 120.0;
  m.mmio_write_cycles = 60.0;
  m.trap_entry_cycles = 600.0;
  m.guard_base_cycles = 0.35;       // predicted branch, cache-resident table
  m.guard_per_region_cycles = 0.03;
  m.inter_call_cycles = 24100.0;    // -> baseline ~112k pps
  m.trial_jitter_sigma = 0.07;      // Fig 4 range 90k-130k
  m.packet_noise_sigma = 0.08;
  m.slowpath_prob = 0.22;
  m.slowpath_extra_cycles = 280.0;
  m.pad_guard_cycles_per_byte = 4.0;
  return m;
}

}  // namespace kop::sim
