#include "kop/trace/site.hpp"

#include <cstdio>
#include <mutex>

namespace kop::trace {
namespace {

// Per-thread: each simulated CPU runs on its own host thread, and a
// guard site is an attribute of the call executing on THAT cpu.
thread_local uint64_t g_current_site = kUnknownSite;

}  // namespace

std::string SiteInfo::Label() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s:%s+%u", module_name.c_str(),
                function.c_str(), inst_index);
  return buf;
}

uint64_t SiteRegistry::Register(SiteInfo info) {
  std::lock_guard<Spinlock> guard(lock_);
  info.token = sites_.size() + 1;
  sites_.push_back(std::move(info));
  return sites_.back().token;
}

std::optional<SiteInfo> SiteRegistry::Find(uint64_t token) const {
  std::lock_guard<Spinlock> guard(lock_);
  if (token == kUnknownSite || token > sites_.size()) return std::nullopt;
  return sites_[token - 1];
}

std::string SiteRegistry::Label(uint64_t token) const {
  if (token == kUnknownSite) return "<unattributed>";
  if (auto info = Find(token); info.has_value()) return info->Label();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "site#%llu",
                static_cast<unsigned long long>(token));
  return buf;
}

size_t SiteRegistry::size() const {
  std::lock_guard<Spinlock> guard(lock_);
  return sites_.size();
}

SiteRegistry& GlobalSites() {
  static SiteRegistry registry;
  return registry;
}

uint64_t CurrentGuardSite() { return g_current_site; }

ScopedGuardSite::ScopedGuardSite(uint64_t token) : prev_(g_current_site) {
  g_current_site = token;
}

ScopedGuardSite::~ScopedGuardSite() { g_current_site = prev_; }

}  // namespace kop::trace
