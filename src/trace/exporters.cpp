#include "kop/trace/exporters.hpp"

#include <cinttypes>
#include <cstdio>

namespace kop::trace {
namespace {

void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceRecord>& records,
                              const ChromeTraceOptions& options) {
  return ExportChromeTrace(records, std::vector<SpanEvent>{}, options);
}

std::string ExportChromeTrace(const std::vector<TraceRecord>& records,
                              const std::vector<SpanEvent>& spans,
                              const ChromeTraceOptions& options) {
  std::string out;
  out.reserve((records.size() + spans.size()) * 140 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":"
         "{\"name\":\"";
  AppendEscaped(&out, options.process_name);
  out += "\"}}";
  char buf[128];
  for (const TraceRecord& record : records) {
    out += ",{\"name\":\"";
    AppendEscaped(&out, EventName(record.event));
    out += "\",\"cat\":\"";
    AppendEscaped(&out, EventCategory(record.event));
    // Instant events, thread-scoped; tid is the simulated CPU.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"args\":{\"seq\":%" PRIu64,
                  static_cast<unsigned>(record.cpu),
                  static_cast<double>(record.tsc) / options.cycles_per_us,
                  record.seq);
    out += buf;
    const auto arg_names = EventArgNames(record.event);
    for (size_t i = 0; i < arg_names.size(); ++i) {
      if (arg_names[i] == nullptr) continue;
      std::snprintf(buf, sizeof(buf), ",\"%s\":\"0x%" PRIx64 "\"",
                    arg_names[i], record.args[i]);
      out += buf;
    }
    out += "}}";
  }
  for (const SpanEvent& span : spans) {
    out += ",{\"name\":\"";
    AppendEscaped(&out, SpanKindName(span.kind));
    // Complete ("X") events carry their real duration; begin/end both
    // came from the recording CPU's virtual clock.
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"seq\":%" PRIu64
                  ",\"depth\":%u,\"arg\":\"0x%" PRIx64 "\"}}",
                  static_cast<unsigned>(span.cpu),
                  static_cast<double>(span.begin_tsc) / options.cycles_per_us,
                  static_cast<double>(span.duration()) / options.cycles_per_us,
                  span.seq, static_cast<unsigned>(span.depth), span.arg);
    out += buf;
  }
  out += "]}";
  return out;
}

std::string ExportChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options) {
  return ExportChromeTrace(tracer.ring().Snapshot(), options);
}

std::string ExportTraceCsv(const std::vector<TraceRecord>& records) {
  std::string out = "seq,tsc,event,category,arg0,arg1,arg2,arg3\n";
  char buf[192];
  for (const TraceRecord& record : records) {
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu64 ",%" PRIu64
                  ",%s,%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                  record.seq, record.tsc,
                  std::string(EventName(record.event)).c_str(),
                  std::string(EventCategory(record.event)).c_str(),
                  record.args[0], record.args[1], record.args[2],
                  record.args[3]);
    out += buf;
  }
  return out;
}

}  // namespace kop::trace
