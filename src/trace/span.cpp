#include "kop/trace/span.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "kop/sim/clock.hpp"
#include "kop/trace/trace.hpp"

namespace kop::trace {
namespace {

constexpr const char* kSpanKinds[kSpanKindCount] = {
    "span.module_call",   "span.engine_dispatch", "span.guard_decision",
    "span.journal_commit", "span.journal_rollback", "span.recovery",
    "span.napi_poll",     "span.xmit_batch",
};

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

size_t Index(SpanKind kind) {
  const size_t i = static_cast<size_t>(kind);
  return i < kSpanKindCount ? i : 0;
}

uint64_t NowTsc() {
  const sim::VirtualClock* clock = GlobalTracer().clock();
  return clock != nullptr ? clock->ReadTsc() : 0;
}

}  // namespace

std::string_view SpanKindName(SpanKind kind) { return kSpanKinds[Index(kind)]; }

SpanRecorder::SpanRecorder(size_t per_cpu_capacity)
    : per_cpu_capacity_(RoundUpPow2(per_cpu_capacity)),
      mask_(per_cpu_capacity_ - 1) {
  for (auto& cpu : cpus_) {
    cpu = std::make_unique<Cpu>();
    cpu->slots.resize(per_cpu_capacity_);
  }
}

SpanRecorder::Cpu& SpanRecorder::Mine() {
  const uint32_t cpu = smp::CurrentCpu();
  return *cpus_[cpu < cpus_.size() ? cpu : cpu % cpus_.size()];
}

uint64_t SpanRecorder::BeginSpan() {
  Cpu& cpu = Mine();
  {
    std::lock_guard<Spinlock> guard(cpu.lock);
    ++cpu.depth;
  }
  return NowTsc();
}

void SpanRecorder::EndSpan(SpanKind kind, uint64_t begin_tsc, uint64_t arg) {
  SpanEvent event;
  event.begin_tsc = begin_tsc;
  event.end_tsc = NowTsc();
  event.seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
  event.arg = arg;
  event.kind = kind;
  event.cpu = static_cast<uint16_t>(smp::CurrentCpu());
  Cpu& cpu = Mine();
  std::lock_guard<Spinlock> guard(cpu.lock);
  if (cpu.depth > 0) --cpu.depth;
  event.depth = cpu.depth;
  cpu.slots[cpu.count & mask_] = event;
  ++cpu.count;
  cpu.hist[Index(kind)].Observe(static_cast<double>(event.duration()));
}

std::vector<SpanEvent> SpanRecorder::Snapshot() const {
  std::vector<SpanEvent> out;
  for (const auto& cpu : cpus_) {
    std::lock_guard<Spinlock> guard(cpu->lock);
    const uint64_t retained =
        std::min<uint64_t>(cpu->count, per_cpu_capacity_);
    for (uint64_t i = cpu->count - retained; i < cpu->count; ++i) {
      out.push_back(cpu->slots[i & mask_]);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.begin_tsc != b.begin_tsc ? a.begin_tsc < b.begin_tsc
                                      : a.seq < b.seq;
  });
  return out;
}

std::vector<SpanEvent> SpanRecorder::Tail(uint32_t cpu_index, size_t n) const {
  std::vector<SpanEvent> out;
  if (cpu_index >= cpus_.size()) return out;
  const Cpu& cpu = *cpus_[cpu_index];
  std::lock_guard<Spinlock> guard(cpu.lock);
  uint64_t retained = std::min<uint64_t>(cpu.count, per_cpu_capacity_);
  retained = std::min<uint64_t>(retained, n);
  for (uint64_t i = cpu.count - retained; i < cpu.count; ++i) {
    out.push_back(cpu.slots[i & mask_]);
  }
  return out;
}

SpanStats SpanRecorder::Stats(SpanKind kind) const {
  std::array<uint64_t, Log2Histogram::kBuckets> folded{};
  SpanStats stats;
  const size_t k = Index(kind);
  for (const auto& cpu : cpus_) {
    const Log2Histogram& hist = cpu->hist[k];
    for (size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
      folded[i] += hist.bucket(i);
    }
    stats.sum += hist.sum();
  }
  for (uint64_t b : folded) stats.count += b;
  stats.p50 = Log2Histogram::PercentileFromBuckets(folded, 50.0);
  stats.p90 = Log2Histogram::PercentileFromBuckets(folded, 90.0);
  stats.p99 = Log2Histogram::PercentileFromBuckets(folded, 99.0);
  stats.p999 = Log2Histogram::PercentileFromBuckets(folded, 99.9);
  return stats;
}

uint64_t SpanRecorder::CpuCount(uint32_t cpu_index, SpanKind kind) const {
  if (cpu_index >= cpus_.size()) return 0;
  return cpus_[cpu_index]->hist[Index(kind)].count();
}

std::string SpanRecorder::RenderText() const {
  std::string out =
      "span                     count        mean         p50         p90"
      "         p99        p999\n";
  char line[192];
  for (size_t k = 0; k < kSpanKindCount; ++k) {
    const SpanStats stats = Stats(static_cast<SpanKind>(k));
    std::snprintf(line, sizeof(line),
                  "%-22s %8llu %11.4g %11.4g %11.4g %11.4g %11.4g\n",
                  kSpanKinds[k], static_cast<unsigned long long>(stats.count),
                  stats.count == 0
                      ? 0.0
                      : stats.sum / static_cast<double>(stats.count),
                  stats.p50, stats.p90, stats.p99, stats.p999);
    out += line;
  }
  return out;
}

std::string SpanRecorder::RenderPrometheus() const {
  std::string out = "# TYPE kop_span_duration_cycles summary\n";
  char line[192];
  constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
  for (size_t k = 0; k < kSpanKindCount; ++k) {
    const SpanStats stats = Stats(static_cast<SpanKind>(k));
    const double q[] = {stats.p50, stats.p90, stats.p99, stats.p999};
    for (size_t i = 0; i < 4; ++i) {
      std::snprintf(line, sizeof(line),
                    "kop_span_duration_cycles{span=\"%s\",quantile=\"%g\"} "
                    "%.6g\n",
                    kSpanKinds[k], kQuantiles[i], q[i]);
      out += line;
    }
    std::snprintf(line, sizeof(line),
                  "kop_span_duration_cycles_sum{span=\"%s\"} %.6g\n"
                  "kop_span_duration_cycles_count{span=\"%s\"} %llu\n",
                  kSpanKinds[k], stats.sum, kSpanKinds[k],
                  static_cast<unsigned long long>(stats.count));
    out += line;
  }
  return out;
}

void SpanRecorder::Reset() {
  next_seq_.store(0, std::memory_order_release);
  for (const auto& cpu : cpus_) {
    std::lock_guard<Spinlock> guard(cpu->lock);
    cpu->count = 0;
    cpu->depth = 0;
    std::fill(cpu->slots.begin(), cpu->slots.end(), SpanEvent{});
    for (auto& hist : cpu->hist) hist.Reset();
  }
}

SpanRecorder& GlobalSpans() {
  static SpanRecorder recorder;
  return recorder;
}

}  // namespace kop::trace
