#include "kop/trace/trace.hpp"

#include <algorithm>
#include <mutex>

namespace kop::trace {
namespace {

struct EventDesc {
  const char* name;
  const char* category;
  std::array<const char*, 4> args;
};

constexpr EventDesc kEvents[kEventCount] = {
    {"none", "none", {nullptr, nullptr, nullptr, nullptr}},
    {"guard.check", "guard", {"addr", "size", "flags", "site"}},
    {"guard.deny", "guard", {"addr", "size", "flags", "site"}},
    {"guard.intrinsic", "guard", {"intrinsic", "allowed", nullptr, "site"}},
    {"policy.lookup", "guard", {"scanned", "regions", nullptr, nullptr}},
    {"module.verify", "loader", {"ok", nullptr, nullptr, nullptr}},
    {"module.load", "loader", {"insts", "guards", nullptr, nullptr}},
    {"module.quarantine", "loader", {"addr", "size", "site", nullptr}},
    {"module.static_reject", "loader", {"errors", "insts", nullptr, nullptr}},
    {"module.rollback", "resilience", {"entries", "bytes", "reason", nullptr}},
    {"module.timeout", "resilience", {"steps", "budget", nullptr, nullptr}},
    {"module.restart", "resilience", {"attempt", "ok", nullptr, nullptr}},
    {"fault.injected", "fault", {"kind", "point", "detail", nullptr}},
    {"nic.desc_fetch", "nic", {"desc_addr", "head", nullptr, nullptr}},
    {"nic.xmit", "nic", {"bytes", "occupancy", nullptr, nullptr}},
    {"e1000e.xmit_frame", "nic", {"bytes", "slot", nullptr, nullptr}},
    {"kernel.panic", "kernel", {nullptr, nullptr, nullptr, nullptr}},
    {"dev.ioctl", "ioctl", {"cmd", nullptr, nullptr, nullptr}},
    {"flight.postmortem", "flight", {"reason", "incidents", "cpu", nullptr}},
};

size_t Index(EventId id) {
  const size_t i = static_cast<size_t>(id);
  return i < kEventCount ? i : 0;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view EventName(EventId id) { return kEvents[Index(id)].name; }

std::string_view EventCategory(EventId id) {
  return kEvents[Index(id)].category;
}

std::array<const char*, 4> EventArgNames(EventId id) {
  return kEvents[Index(id)].args;
}

TraceRing::TraceRing(size_t capacity)
    : per_shard_capacity_(RoundUpPow2(capacity)),
      mask_(per_shard_capacity_ - 1) {
  SetShards(1);
}

void TraceRing::SetShards(uint32_t shards) {
  if (shards == 0) shards = 1;
  if (shards > smp::kMaxCpus) shards = smp::kMaxCpus;
  shards_.clear();
  for (uint32_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->slots.resize(per_shard_capacity_);
    shards_.push_back(std::move(shard));
  }
  next_.store(0, std::memory_order_release);
}

TraceRing::Shard& TraceRing::MyShard() {
  const uint32_t cpu = smp::CurrentCpu();
  return *shards_[cpu < shards_.size() ? cpu : cpu % shards_.size()];
}

void TraceRing::Append(TraceRecord record) {
  record.seq = next_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = MyShard();
  std::lock_guard<Spinlock> guard(shard.lock);
  shard.slots[shard.count & mask_] = record;
  ++shard.count;
}

uint64_t TraceRing::dropped() const {
  const uint64_t total = total_appended();
  uint64_t retained = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<Spinlock> guard(shard->lock);
    retained += std::min<uint64_t>(shard->count, per_shard_capacity_);
  }
  return total > retained ? total - retained : 0;
}

std::vector<TraceRecord> TraceRing::Snapshot() const {
  std::vector<TraceRecord> out;
  for (const auto& shard : shards_) {
    std::lock_guard<Spinlock> guard(shard->lock);
    const uint64_t retained =
        std::min<uint64_t>(shard->count, per_shard_capacity_);
    for (uint64_t i = shard->count - retained; i < shard->count; ++i) {
      out.push_back(shard->slots[i & mask_]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.tsc != b.tsc ? a.tsc < b.tsc : a.seq < b.seq;
            });
  return out;
}

void TraceRing::Clear() {
  next_.store(0, std::memory_order_release);
  for (const auto& shard : shards_) {
    std::lock_guard<Spinlock> guard(shard->lock);
    shard->count = 0;
    std::fill(shard->slots.begin(), shard->slots.end(), TraceRecord{});
  }
}

void Tracer::Record(EventId event, uint64_t a0, uint64_t a1, uint64_t a2,
                    uint64_t a3) {
  if (!enabled()) return;
  counts_[Index(event)].fetch_add(1, std::memory_order_relaxed);
  TraceRecord record;
  const sim::VirtualClock* clock = clock_.load(std::memory_order_acquire);
  record.tsc = clock != nullptr ? clock->ReadTsc() : 0;
  record.cpu = static_cast<uint16_t>(smp::CurrentCpu());
  record.event = event;
  record.args[0] = a0;
  record.args[1] = a1;
  record.args[2] = a2;
  record.args[3] = a3;
  ring_.Append(record);
}

void Tracer::Reset() {
  ring_.Clear();
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
}

Tracer& GlobalTracer() {
  static Tracer tracer;
  return tracer;
}

}  // namespace kop::trace
